#!/bin/sh
# Verification gate: build everything, run the full test suite, then run
# the race detector over the packages with concurrent paths (the store,
# the engine's sharded scans / batch ingest, and the overlapped feature
# extraction). CI and pre-commit should run exactly this.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test ./...
go test -race -count=1 ./internal/shapedb/... ./internal/core/... ./internal/features/...
# Two-stage search gate: the exact-vs-two-stage equivalence suite, the
# coarse-bound safety property, and the columnar-store coherence test
# (CommitNotify-driven refresh under concurrent mutation), with the race
# detector, never cached.
go test -race -count=1 ./internal/colstore/...
go test -race -count=1 -run 'TwoStage|CoarseBound|ScanWorker' ./internal/core/... ./internal/colstore/...
# Benchrunner smoke: the perf figure at toy sizes must produce a
# BENCH_perf.json that parses with every expected series.
BENCH_SMOKE="$(mktemp -d)"
go run ./cmd/benchrunner -fig perf -perf-sizes 500,2000 -perf-out "$BENCH_SMOKE/BENCH_perf.json" > /dev/null
go run ./cmd/benchrunner -check-perf "$BENCH_SMOKE/BENCH_perf.json"
rm -rf "$BENCH_SMOKE"
# Durability gate: the fault-injection crash matrix and faultfs harness
# under the race detector, never cached.
go test -race -count=1 -run 'Crash|Fault|Torn|Recovery' ./internal/shapedb/... ./internal/faultfs/...
# Self-healing gate: the chaos soak (bit-flips under live traffic must
# all be found and quarantined), the triggered-compaction crash matrix,
# and the maintenance-vs-traffic mixed-ops test, under the race detector.
go test -race -count=1 ./internal/scrub/...
# Replication gate: protocol + node state machine + network fault
# injector under the race detector, then the end-to-end suite in the
# server package — twin live servers, chaos failover mid-ingest (zero
# acknowledged-write loss), promotion crash matrix, idempotent retries
# (incl. the replay sync-ack gate), ack-offset clamping, the peer-secret
# gate, commit-wake long-polling, drain/resume — never cached.
go test -race -count=1 ./internal/replica/...
go test -race -count=1 -run 'Replication|Chaos|Standby|Fencing|Drain|Readyz|Idempoten|InflatedAck|Failover|CommitNotify' ./internal/server/... ./internal/shapedb/...
# Cluster gate: scatter-gather correctness — consistent-hash ring
# properties, the shard client's retry/hedge/deadline machinery, the
# merge-equivalence suite (coordinator answers bit-identical to a
# single-node scan across shard counts, weights, and scan modes), and the
# chaos suite (dead/partitioned/straggling shards degrade to partial
# results, never errors), under the race detector, never cached.
go test -race -count=1 ./internal/scatter/...
go test -race -count=1 -run 'Cluster|Chaos|Coordinator|Shard|RetryAfter' ./internal/server/...
# Benchrunner cluster smoke: the scatter figure at a toy corpus size must
# produce a BENCH_cluster.json whose degradation contract held (every
# degraded answer partial, none an error).
CLUSTER_SMOKE="$(mktemp -d)"
go run ./cmd/benchrunner -fig cluster -cluster-size 400 -cluster-out "$CLUSTER_SMOKE/BENCH_cluster.json" > /dev/null
go run ./cmd/benchrunner -check-cluster "$CLUSTER_SMOKE/BENCH_cluster.json"
rm -rf "$CLUSTER_SMOKE"
# Hostile-input gate: a short live-fuzz pass over each mesh parser (the
# checked-in seeds alone run in the normal suite; this explores beyond
# them). 5s per target keeps the gate fast while still catching
# shallow parser regressions.
go test -run '^$' -fuzz '^FuzzReadOFF$' -fuzztime 5s ./internal/geom
go test -run '^$' -fuzz '^FuzzReadOBJ$' -fuzztime 5s ./internal/geom
go test -run '^$' -fuzz '^FuzzReadSTL$' -fuzztime 5s ./internal/geom
# Brownout gate: the degradation ladder (tier selection from gate depth
# + latency EWMA, truthful X-Degraded marking, the no-read-5xx churn
# property), the result cache (ETag revalidation, bit-identical hits,
# partial cluster answers never cached, coordinator write invalidation),
# bounded-staleness replica reads with the read-split client, and the
# scatter circuit breaker (open/half-open/close, probe recovery, hedge
# goroutine hygiene), under the race detector, never cached.
go test -race -count=1 -run 'Breaker|Probe|AttemptHedged' ./internal/scatter/...
go test -race -count=1 -run 'Tier|Cache|Brownout|Partial|Staleness|ReadSplit|StandbyRefuses|ReplicaReads|ETag' ./internal/server/...
# Rebalance gate: versioned ring-epoch transitions and fencing (the
# scatter package already ran raced above), the migration primitives
# (byte-exact export/import, corrupt-frame refusal before any apply,
# durable batched deletes), and the end-to-end live-rebalance suite —
# per-phase bit-identical equivalence, crash-resume at a higher term,
# 409 epoch self-healing both ways, the admin endpoint, write-ring
# insert routing, and the chaos acceptance (driver killed mid-copy,
# partitions mid-verify and during cutover under live traffic) — under
# the race detector, never cached.
go test -race -count=1 -run 'ExportImport|ImportRejects|ContentCRC|RecordCRCs|DeleteMany|ExportRefuses' ./internal/shapedb/...
go test -race -count=1 -run 'TestRebalance|TestChaosRebalance' ./internal/server/...
# Benchrunner rebalance smoke: a toy live 4→6 migration under query
# load must move records, keep answering throughout, finalize the ring,
# and produce a BENCH_rebalance.json with zero 5xx answers.
REBAL_SMOKE="$(mktemp -d)"
go run ./cmd/benchrunner -fig rebalance -rebalance-size 400 -rebalance-out "$REBAL_SMOKE/BENCH_rebalance.json" > /dev/null
go run ./cmd/benchrunner -check-rebalance "$REBAL_SMOKE/BENCH_rebalance.json"
rm -rf "$REBAL_SMOKE"
# Disaster-recovery gate: the backup package (resumable crash-matrix
# capture, point-in-time cuts, bit-rot refusal naming the frame,
# ring-fenced cluster backup, N→M reshard restore, search-equivalence
# property), the ENOSPC read-only fence at the store layer (zero
# acked-write loss, clean-tail rollback, compaction heal) and at the
# server layer (503 + Retry-After writes, 2xx reads, readyz/stats
# reporting under live mixed traffic), and the client's Retry-After
# honoring — under the race detector, never cached.
go test -race -count=1 ./internal/backup/...
go test -race -count=1 -run 'Enospc|Fenced|ReadJournalServes' ./internal/shapedb/...
go test -race -count=1 -run 'FailWritesWith' ./internal/faultfs/...
go test -race -count=1 -run 'Backup|Enospc|RetryAfter|Retargets' ./internal/server/...
