package threedess_test

import (
	"fmt"
	"log"

	"threedess"
	"threedess/internal/geom"
)

// Example demonstrates the core flow: store shapes, query by example.
func Example() {
	sys, err := threedess.Open("", threedess.Options{VoxelResolution: 20})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Two similar plates and a cube.
	if _, err := sys.Insert("plate-a", 1, geom.Box(geom.V(0, 0, 0), geom.V(10, 6, 1))); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Insert("plate-b", 1, geom.Box(geom.V(0, 0, 0), geom.V(10.4, 6.2, 1.05))); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Insert("cube", 2, geom.Box(geom.V(0, 0, 0), geom.V(4, 4, 4))); err != nil {
		log.Fatal(err)
	}

	// Query with a rotated third plate.
	query := geom.Box(geom.V(0, 0, 0), geom.V(10.2, 6.1, 1.02))
	query.Rotate(geom.RotationZ(0.8)).Translate(geom.V(50, -20, 7))
	results, err := sys.QueryByExample(query, threedess.Search{
		Feature: threedess.PrincipalMoments,
		K:       2,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Println(r.Name)
	}
	// Output:
	// plate-a
	// plate-b
}

// ExampleSystem_MultiStepByID shows the §4.2 multi-step strategy through
// the public API.
func ExampleSystem_MultiStepByID() {
	sys, err := threedess.Open("", threedess.Options{VoxelResolution: 20})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	ids := make([]int64, 0, 4)
	for _, part := range []struct {
		name string
		mesh *threedess.Mesh
	}{
		{"bar-a", geom.Box(geom.V(0, 0, 0), geom.V(12, 1, 1))},
		{"bar-b", geom.Box(geom.V(0, 0, 0), geom.V(12.5, 1.04, 1.02))},
		{"slab", geom.Box(geom.V(0, 0, 0), geom.V(8, 6, 1))},
		{"cube", geom.Box(geom.V(0, 0, 0), geom.V(3, 3, 3))},
	} {
		id, err := sys.Insert(part.name, 0, part.mesh)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}
	spec := threedess.RecommendedMultiStep()
	spec.K = 1
	res, err := sys.MultiStepByID(ids[0], spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res[0].Name)
	// Output:
	// bar-b
}
