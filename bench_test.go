package threedess_test

// Benchmark harness: one benchmark per figure of the paper's evaluation
// section (run with `go test -bench=. -benchmem`), plus performance
// benchmarks for each pipeline stage. cmd/benchrunner prints the actual
// figure data; these benchmarks measure the cost of regenerating it.

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"threedess"
	"threedess/internal/core"
	"threedess/internal/dataset"
	"threedess/internal/eval"
	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/rtree"
	"threedess/internal/shapedb"
	"threedess/internal/skeleton"
	"threedess/internal/skelgraph"
	"threedess/internal/voxel"
)

var (
	benchOnce   sync.Once
	benchCorpus *eval.Corpus
	benchErr    error
)

func corpus(b *testing.B) *eval.Corpus {
	b.Helper()
	benchOnce.Do(func() {
		benchCorpus, benchErr = eval.BuildCorpus(42, features.Options{}, nil)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchCorpus
}

// BenchmarkFig04GroupSizes regenerates the Figure 4 group-size census.
func BenchmarkFig04GroupSizes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sizes := dataset.GroupSizesAscending()
		total := 0
		for _, s := range sizes {
			total += s
		}
		if total != 86 {
			b.Fatalf("group total = %d", total)
		}
	}
}

// BenchmarkFig07ThresholdQuery runs the Figure 7 example (moment
// invariants, similarity ≥ 0.85).
func BenchmarkFig07ThresholdQuery(b *testing.B) {
	c := corpus(b)
	qid := c.DB.GroupMembers(3)[0] // a five-member group
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := c.ThresholdQueryExample(qid, features.MomentInvariants, 0.85); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig08to12PRCurves sweeps the full precision-recall curves for
// the five representative queries across all four feature vectors.
func BenchmarkFig08to12PRCurves(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.PRCurves(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13MultiStepExample runs the Figure 13/14 one-shot vs
// multi-step comparison for one query.
func BenchmarkFig13MultiStepExample(b *testing.B) {
	c := corpus(b)
	qid := c.GroupQueryIDs()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunMultiStepExample(qid, features.PrincipalMoments, eval.MultiStepMIGP()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15AverageRecall runs the full Figure 15/16 experiment: all
// five strategies over the 26 group queries under both retrieval policies.
func BenchmarkFig15AverageRecall(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := c.AverageEffectiveness(nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig16PrecisionAt10 isolates the |R| = 10 policy of Figure 16
// for the best one-shot strategy.
func BenchmarkFig16PrecisionAt10(b *testing.B) {
	c := corpus(b)
	queries := c.GroupQueryIDs()
	strat := eval.Strategy{Name: "pm", Kind: features.PrincipalMoments}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, qid := range queries {
			res, err := c.Retrieve(qid, strat, 10)
			if err != nil {
				b.Fatal(err)
			}
			eval.PrecisionRecall(resIDs(res), c.RelevantSet(qid))
		}
	}
}

func resIDs(res []core.Result) []int64 {
	out := make([]int64, len(res))
	for i, r := range res {
		out[i] = r.ID
	}
	return out
}

var searchTop10 = core.Options{Feature: features.PrincipalMoments, K: 10}

var multiStepOpts = core.MultiStepOptions{Steps: eval.MultiStepPMEig(), CandidateSize: 30, K: 10}

// BenchmarkRTreeKNNReal measures k-NN node accesses on the real 113-shape
// index (§2.3, "almost optimal for small real databases").
func BenchmarkRTreeKNNReal(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RTreeRealEfficiency(features.PrincipalMoments, 10, 10, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTreeKNNSynthetic measures k-NN over large synthetic databases
// (§2.3, "efficient for large synthetic databases").
func BenchmarkRTreeKNNSynthetic(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := make([]rtree.BulkItem, 100_000)
	for i := range items {
		items[i] = rtree.BulkItem{ID: int64(i), Point: rtree.Point{
			rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100,
		}}
	}
	tr, err := rtree.BulkLoad(3, rtree.DefaultMaxEntries, items)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := rtree.Point{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		if got := tr.NearestNeighbors(10, q); len(got) != 10 {
			b.Fatalf("results = %d", len(got))
		}
	}
}

// --- pipeline-stage performance benchmarks ---

func benchMesh() *geom.Mesh {
	m := geom.Box(geom.V(0, 0, 0), geom.V(4, 1, 1))
	m.Merge(geom.Box(geom.V(0, 1, 0), geom.V(1, 3, 1)))
	return m
}

// BenchmarkFeatureExtractionAll measures the full §3 pipeline (all four
// core descriptors) for one shape.
func BenchmarkFeatureExtractionAll(b *testing.B) {
	ext := features.NewExtractor(features.Options{})
	m := benchMesh()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ext.Extract(m, features.CoreKinds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtractionMoments measures the moment-based descriptors
// only (no voxel/skeleton work).
func BenchmarkFeatureExtractionMoments(b *testing.B) {
	ext := features.NewExtractor(features.Options{})
	m := benchMesh()
	kinds := []features.Kind{features.MomentInvariants, features.PrincipalMoments, features.GeometricParams}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ext.Extract(m, kinds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVoxelization measures solid voxelization at the pipeline's
// default resolution.
func BenchmarkVoxelization(b *testing.B) {
	m := benchMesh()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := voxel.Voxelize(m, 32); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSkeletonization measures topology-preserving thinning.
func BenchmarkSkeletonization(b *testing.B) {
	m := benchMesh()
	g, err := voxel.Voxelize(m, 32)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		skeleton.Thin(g, skeleton.DefaultOptions())
	}
}

// BenchmarkSkeletalGraph measures graph construction + eigen signature.
func BenchmarkSkeletalGraph(b *testing.B) {
	m := benchMesh()
	g, err := voxel.Voxelize(m, 32)
	if err != nil {
		b.Fatal(err)
	}
	sk := skeleton.Thin(g, skeleton.DefaultOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sg := skelgraph.Build(sk)
		sg.EigenvalueSignature(8)
	}
}

// BenchmarkSearchTopK measures an indexed top-10 query on the corpus.
func BenchmarkSearchTopK(b *testing.B) {
	c := corpus(b)
	qid := c.GroupQueryIDs()[0]
	query, err := c.Engine.QueryFeatures(qid)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Engine.SearchTopK(context.Background(), query, searchTop10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiStepSearch measures the recommended multi-step strategy.
func BenchmarkMultiStepSearch(b *testing.B) {
	c := corpus(b)
	qid := c.GroupQueryIDs()[0]
	query, err := c.Engine.QueryFeatures(qid)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Engine.SearchMultiStep(context.Background(), query, multiStepOpts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusteringComparison measures the §2.2 clustering comparison
// (k-means vs SOM vs GA at k = 26 over the corpus).
func BenchmarkClusteringComparison(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.CompareClusterings(features.PrincipalMoments, dataset.NumGroups, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiStepKeepAblation measures the Keep-parameter sweep.
func BenchmarkMultiStepKeepAblation(b *testing.B) {
	c := corpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.MultiStepKeepAblation([]int{10, 15, 22}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionDescriptors measures extraction of the two extension
// descriptors (higher-order invariants + D2 shape distribution).
func BenchmarkExtensionDescriptors(b *testing.B) {
	ext := features.NewExtractor(features.Options{})
	m := benchMesh()
	kinds := []features.Kind{features.HigherOrder, features.ShapeDistribution}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ext.Extract(m, kinds); err != nil {
			b.Fatal(err)
		}
	}
}

// --- parallel execution benchmarks ---

// BenchmarkParallelIngest compares bulk ingest throughput with a single
// worker against the full worker pool (one worker per logical CPU). The
// extraction fan-out is embarrassingly parallel, so on a machine with
// GOMAXPROCS ≥ 4 the parallel case should ingest at least 2× faster
// while producing bit-identical IDs and features (see
// TestInsertBatchDeterministicAcrossWorkers).
func BenchmarkParallelIngest(b *testing.B) {
	shapes := ingestShapes(b, 24)
	run := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys, err := threedess.Open("", threedess.Options{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := sys.InsertBatch(shapes); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				sys.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(len(shapes)*b.N)/b.Elapsed().Seconds(), "shapes/sec")
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(0)) // 0 = one worker per logical CPU
}

func ingestShapes(b *testing.B, n int) []threedess.Shape {
	b.Helper()
	out := make([]threedess.Shape, n)
	for i := range out {
		m := geom.Box(geom.V(0, 0, 0), geom.V(2+float64(i%5), 1, 1))
		m.Merge(geom.Box(geom.V(0, 1, 0), geom.V(1, 2+float64(i%3), 1)))
		out[i] = threedess.Shape{Name: "bench", Group: i % 4, Mesh: m}
	}
	return out
}

// BenchmarkWeightedScanParallel compares the weighted full-scan search
// (the non-indexed path, which cannot use the R-trees) with one worker
// against the sharded scan across the full pool, over a synthetic
// database large enough to cross the parallelism threshold.
func BenchmarkWeightedScanParallel(b *testing.B) {
	db, err := shapedb.Open("", features.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	opts := db.Options()
	dim := opts.Dim(features.PrincipalMoments)
	m := benchMesh()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 5000; i++ {
		set := features.Set{}
		for _, k := range features.CoreKinds {
			v := make(features.Vector, opts.Dim(k))
			for d := range v {
				v[d] = rng.NormFloat64() * 10
			}
			set[k] = v
		}
		if _, err := db.Insert("s", i%26, m, set); err != nil {
			b.Fatal(err)
		}
	}
	query := features.Set{features.PrincipalMoments: make(features.Vector, dim)}
	weights := make([]float64, dim)
	for i := range weights {
		weights[i] = 1 + float64(i)
	}
	searchOpts := core.Options{Feature: features.PrincipalMoments, Weights: weights, K: 10}
	run := func(workers int) func(*testing.B) {
		return func(b *testing.B) {
			e := core.NewEngine(db).SetWorkers(workers)
			for i := 0; i < b.N; i++ {
				res, err := e.SearchTopK(context.Background(), query, searchOpts)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) != 10 {
					b.Fatalf("results = %d", len(res))
				}
			}
			b.ReportMetric(float64(db.Len()*b.N)/b.Elapsed().Seconds(), "shapes/sec")
		}
	}
	b.Run("serial", run(1))
	b.Run("parallel", run(0))
}

// BenchmarkJournalInsert measures a durable insert (journal append +
// fsync + index update).
func BenchmarkJournalInsert(b *testing.B) {
	dir := b.TempDir()
	db, err := shapedb.Open(dir, features.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	ext := features.NewExtractor(features.Options{})
	m := benchMesh()
	set, err := ext.Extract(m, []features.Kind{features.PrincipalMoments, features.MomentInvariants, features.GeometricParams})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Insert("bench", 0, m, set); err != nil {
			b.Fatal(err)
		}
	}
}
