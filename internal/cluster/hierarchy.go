package cluster

import (
	"fmt"
	"math/rand"
)

// HierarchyNode is one node of the browse hierarchy: a set of item indices
// plus child nodes produced by recursive bisecting k-means. Leaves have no
// children. The paper's INTERFACE tier lets a user "drill down the
// hierarchical organization of the shapes" — this is that organization.
type HierarchyNode struct {
	Items    []int // indices into the original point slice
	Centroid []float64
	Children []*HierarchyNode
}

// IsLeaf reports whether the node has no children.
func (n *HierarchyNode) IsLeaf() bool { return len(n.Children) == 0 }

// Depth returns the height of the subtree rooted at n (a leaf has depth 1).
func (n *HierarchyNode) Depth() int {
	best := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > best {
			best = d
		}
	}
	return best + 1
}

// CountLeaves returns the number of leaves under n.
func (n *HierarchyNode) CountLeaves() int {
	if n.IsLeaf() {
		return 1
	}
	total := 0
	for _, c := range n.Children {
		total += c.CountLeaves()
	}
	return total
}

// HierarchyOptions configure BuildHierarchy.
type HierarchyOptions struct {
	Branch   int // children per split (default 2: bisecting)
	LeafSize int // stop splitting below this many items (default 4)
	MaxDepth int // hard depth bound (default 10)
}

// BuildHierarchy recursively clusters points into a browse tree using
// repeated k-means splits.
func BuildHierarchy(points [][]float64, opts HierarchyOptions, rng *rand.Rand) (*HierarchyNode, error) {
	if _, err := validate(points, 1); err != nil {
		return nil, err
	}
	if opts.Branch < 2 {
		opts.Branch = 2
	}
	if opts.LeafSize < 1 {
		opts.LeafSize = 4
	}
	if opts.MaxDepth < 1 {
		opts.MaxDepth = 10
	}
	items := make([]int, len(points))
	for i := range items {
		items[i] = i
	}
	root := &HierarchyNode{Items: items, Centroid: meanOf(points, items)}
	if err := splitNode(root, points, opts, rng, 1); err != nil {
		return nil, err
	}
	return root, nil
}

func splitNode(n *HierarchyNode, points [][]float64, opts HierarchyOptions, rng *rand.Rand, depth int) error {
	if len(n.Items) <= opts.LeafSize || depth >= opts.MaxDepth {
		return nil
	}
	k := opts.Branch
	if k > len(n.Items) {
		k = len(n.Items)
	}
	sub := make([][]float64, len(n.Items))
	for i, idx := range n.Items {
		sub[i] = points[idx]
	}
	res, err := KMeans(sub, k, rng, 50)
	if err != nil {
		return fmt.Errorf("cluster: hierarchy split: %w", err)
	}
	buckets := make([][]int, k)
	for i, a := range res.Assignments {
		buckets[a] = append(buckets[a], n.Items[i])
	}
	nonEmpty := 0
	for _, b := range buckets {
		if len(b) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		return nil // cannot make progress; leave as a leaf
	}
	for c, b := range buckets {
		if len(b) == 0 {
			continue
		}
		child := &HierarchyNode{Items: b, Centroid: res.Centroids[c]}
		n.Children = append(n.Children, child)
		// A child identical to the parent cannot be split further.
		if len(b) == len(n.Items) {
			continue
		}
		if err := splitNode(child, points, opts, rng, depth+1); err != nil {
			return err
		}
	}
	return nil
}

func meanOf(points [][]float64, items []int) []float64 {
	if len(items) == 0 {
		return nil
	}
	dim := len(points[items[0]])
	m := make([]float64, dim)
	for _, idx := range items {
		for d := 0; d < dim; d++ {
			m[d] += points[idx][d]
		}
	}
	for d := range m {
		m[d] /= float64(len(items))
	}
	return m
}
