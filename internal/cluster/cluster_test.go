package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// gaussianBlobs generates k well-separated Gaussian clusters and returns
// points plus ground-truth labels.
func gaussianBlobs(k, perCluster, dim int, sep float64, rng *rand.Rand) (points [][]float64, labels []int) {
	for c := 0; c < k; c++ {
		center := make([]float64, dim)
		for d := range center {
			center[d] = float64(c) * sep * float64(d%2*2-1) // alternate directions
		}
		center[0] = float64(c) * sep
		for i := 0; i < perCluster; i++ {
			p := make([]float64, dim)
			for d := range p {
				p[d] = center[d] + rng.NormFloat64()*0.3
			}
			points = append(points, p)
			labels = append(labels, c)
		}
	}
	return points, labels
}

func TestKMeansSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	points, labels := gaussianBlobs(4, 30, 3, 10, rng)
	res, err := KMeans(points, 4, rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p := Purity(res.Assignments, labels); p < 0.99 {
		t.Errorf("k-means purity on separated blobs = %v", p)
	}
	if s := Silhouette(points, res.Assignments); s < 0.7 {
		t.Errorf("k-means silhouette = %v", s)
	}
}

func TestKMeansAssignmentsAreNearestCentroid(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	points, _ := gaussianBlobs(3, 25, 4, 5, rng)
	res, err := KMeans(points, 3, rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		own := sqDist(p, res.Centroids[res.Assignments[i]])
		for c := range res.Centroids {
			if sqDist(p, res.Centroids[c]) < own-1e-9 {
				t.Fatalf("point %d assigned to %d but %d is closer", i, res.Assignments[i], c)
			}
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	if _, err := KMeans(nil, 2, rng, 10); err == nil {
		t.Error("empty input accepted")
	}
	pts := [][]float64{{1, 2}, {3, 4}}
	if _, err := KMeans(pts, 0, rng, 10); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans(pts, 5, rng, 10); err == nil {
		t.Error("k>n accepted")
	}
	ragged := [][]float64{{1, 2}, {3}}
	if _, err := KMeans(ragged, 1, rng, 10); err == nil {
		t.Error("ragged input accepted")
	}
}

func TestKMeansKeepsAllClustersAlive(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	points, _ := gaussianBlobs(2, 40, 2, 8, rng)
	res, err := KMeans(points, 5, rng, 100)
	if err != nil {
		t.Fatal(err)
	}
	for c, s := range res.Sizes() {
		if s == 0 {
			t.Errorf("cluster %c empty", c)
		}
	}
}

func TestKMeansDeterministicGivenSeed(t *testing.T) {
	points, _ := gaussianBlobs(3, 20, 3, 6, rand.New(rand.NewSource(84)))
	a, err := KMeans(points, 3, rand.New(rand.NewSource(7)), 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, 3, rand.New(rand.NewSource(7)), 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestSOMSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	points, labels := gaussianBlobs(3, 25, 3, 12, rng)
	res, err := SOM(points, SOMOptions{Rows: 2, Cols: 2, Epochs: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.K() < 2 {
		t.Fatalf("SOM collapsed to %d clusters", res.K())
	}
	if p := Purity(res.Assignments, labels); p < 0.9 {
		t.Errorf("SOM purity = %v", p)
	}
}

func TestSOMValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	if _, err := SOM(nil, SOMOptions{Rows: 2, Cols: 2}, rng); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := SOM([][]float64{{1}}, SOMOptions{Rows: 0, Cols: 2}, rng); err == nil {
		t.Error("zero lattice accepted")
	}
}

func TestGASeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	points, labels := gaussianBlobs(3, 20, 2, 10, rng)
	res, err := GA(points, GAOptions{K: 3, Population: 20, Generations: 40}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p := Purity(res.Assignments, labels); p < 0.95 {
		t.Errorf("GA purity = %v", p)
	}
}

func TestGAElitismNeverWorsens(t *testing.T) {
	// GA with many generations must do at least as well as with few
	// (elitism makes best-so-far monotone in generations for a fixed
	// seed sequence prefix — we check the weaker property that the final
	// SSE is no worse than a k-means baseline by a large factor).
	rng := rand.New(rand.NewSource(88))
	points, _ := gaussianBlobs(4, 20, 3, 8, rng)
	ga, err := GA(points, GAOptions{K: 4, Population: 30, Generations: 80}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	km, err := KMeans(points, 4, rand.New(rand.NewSource(1)), 100)
	if err != nil {
		t.Fatal(err)
	}
	if ga.SSE(points) > 3*km.SSE(points)+1e-9 {
		t.Errorf("GA SSE %v ≫ k-means SSE %v", ga.SSE(points), km.SSE(points))
	}
}

func TestGAValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	if _, err := GA(nil, GAOptions{K: 2}, rng); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := GA([][]float64{{1}, {2}}, GAOptions{K: 0}, rng); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestBuildHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	points, _ := gaussianBlobs(4, 20, 3, 10, rng)
	root, err := BuildHierarchy(points, HierarchyOptions{Branch: 2, LeafSize: 5}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Items) != len(points) {
		t.Errorf("root has %d items, want %d", len(root.Items), len(points))
	}
	if root.IsLeaf() {
		t.Fatal("80 points with leaf size 5 should split")
	}
	if d := root.Depth(); d < 3 {
		t.Errorf("hierarchy depth = %d, want ≥3", d)
	}
	// Every point appears in exactly one leaf.
	seen := map[int]int{}
	var walk func(n *HierarchyNode)
	walk = func(n *HierarchyNode) {
		if n.IsLeaf() {
			for _, it := range n.Items {
				seen[it]++
			}
			return
		}
		// Children partition the parent's items.
		totalChild := 0
		for _, c := range n.Children {
			totalChild += len(c.Items)
			walk(c)
		}
		if totalChild != len(n.Items) {
			t.Errorf("children items %d != parent items %d", totalChild, len(n.Items))
		}
	}
	walk(root)
	if len(seen) != len(points) {
		t.Errorf("leaves cover %d of %d points", len(seen), len(points))
	}
	for idx, c := range seen {
		if c != 1 {
			t.Errorf("point %d appears in %d leaves", idx, c)
		}
	}
	if got := root.CountLeaves(); got < 4 {
		t.Errorf("leaf count = %d, want ≥4", got)
	}
}

func TestBuildHierarchySmallInput(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	points := [][]float64{{1, 1}, {2, 2}}
	root, err := BuildHierarchy(points, HierarchyOptions{LeafSize: 4}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !root.IsLeaf() {
		t.Error("2 points with leaf size 4 should stay a single leaf")
	}
	if _, err := BuildHierarchy(nil, HierarchyOptions{}, rng); err == nil {
		t.Error("empty input accepted")
	}
}

func TestBuildHierarchyIdenticalPoints(t *testing.T) {
	// All-identical points can never split; must terminate as one leaf.
	rng := rand.New(rand.NewSource(92))
	points := make([][]float64, 20)
	for i := range points {
		points[i] = []float64{3, 3, 3}
	}
	root, err := BuildHierarchy(points, HierarchyOptions{LeafSize: 2, MaxDepth: 6}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d := root.Depth(); d > 6 {
		t.Errorf("identical points produced depth %d", d)
	}
}

func TestPurity(t *testing.T) {
	if p := Purity([]int{0, 0, 1, 1}, []int{5, 5, 7, 7}); p != 1 {
		t.Errorf("perfect purity = %v", p)
	}
	if p := Purity([]int{0, 0, 0, 0}, []int{1, 1, 2, 2}); p != 0.5 {
		t.Errorf("merged purity = %v", p)
	}
	if p := Purity(nil, nil); p != 0 {
		t.Errorf("empty purity = %v", p)
	}
	if p := Purity([]int{0}, []int{0, 1}); p != 0 {
		t.Errorf("mismatched purity = %v", p)
	}
}

func TestSilhouette(t *testing.T) {
	// Two tight distant pairs: silhouette near 1.
	points := [][]float64{{0, 0}, {0.1, 0}, {10, 10}, {10.1, 10}}
	if s := Silhouette(points, []int{0, 0, 1, 1}); s < 0.9 {
		t.Errorf("separated silhouette = %v", s)
	}
	// Mixed assignment: much worse.
	if s := Silhouette(points, []int{0, 1, 0, 1}); s > 0 {
		t.Errorf("shuffled silhouette = %v, want ≤0", s)
	}
	// Single cluster: zero.
	if s := Silhouette(points, []int{0, 0, 0, 0}); s != 0 {
		t.Errorf("single-cluster silhouette = %v", s)
	}
	if s := Silhouette(nil, nil); s != 0 {
		t.Errorf("empty silhouette = %v", s)
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{
		Assignments: []int{0, 1, 1},
		Centroids:   [][]float64{{0, 0}, {5, 5}},
	}
	if r.K() != 2 {
		t.Errorf("K = %d", r.K())
	}
	sizes := r.Sizes()
	if sizes[0] != 1 || sizes[1] != 2 {
		t.Errorf("Sizes = %v", sizes)
	}
	points := [][]float64{{0, 0}, {5, 5}, {5, 6}}
	if sse := r.SSE(points); math.Abs(sse-1) > 1e-12 {
		t.Errorf("SSE = %v, want 1", sse)
	}
}
