package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// SOMOptions configure Self-Organizing Map training.
type SOMOptions struct {
	Rows, Cols int     // lattice size; Rows×Cols units
	Epochs     int     // full passes over the data (default 50)
	LearnRate  float64 // initial learning rate (default 0.5)
	Radius     float64 // initial neighborhood radius (default max(Rows,Cols)/2)
}

// SOM trains a 2D self-organizing map on the points and returns a flat
// clustering: each point is assigned to its best-matching unit, and unit
// weight vectors act as centroids. Empty units are dropped from the
// result, so the number of clusters is at most Rows×Cols.
func SOM(points [][]float64, opts SOMOptions, rng *rand.Rand) (*Result, error) {
	if opts.Rows <= 0 || opts.Cols <= 0 {
		return nil, fmt.Errorf("cluster: SOM lattice must be positive, got %d×%d", opts.Rows, opts.Cols)
	}
	dim, err := validate(points, 1)
	if err != nil {
		return nil, err
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 50
	}
	if opts.LearnRate <= 0 {
		opts.LearnRate = 0.5
	}
	if opts.Radius <= 0 {
		opts.Radius = math.Max(float64(opts.Rows), float64(opts.Cols)) / 2
	}
	units := opts.Rows * opts.Cols
	// Initialize unit weights from random input points.
	w := make([][]float64, units)
	for u := range w {
		w[u] = append([]float64(nil), points[rng.Intn(len(points))]...)
	}
	pos := func(u int) (r, c int) { return u / opts.Cols, u % opts.Cols }

	total := opts.Epochs * len(points)
	step := 0
	order := rng.Perm(len(points))
	for e := 0; e < opts.Epochs; e++ {
		// Reshuffle the presentation order each epoch.
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, pi := range order {
			p := points[pi]
			// Exponentially decaying learning rate and radius.
			frac := float64(step) / float64(total)
			lr := opts.LearnRate * math.Exp(-3*frac)
			rad := opts.Radius * math.Exp(-3*frac)
			if rad < 0.5 {
				rad = 0.5
			}
			// Best-matching unit.
			bmu, bestD := 0, math.Inf(1)
			for u := range w {
				if d := sqDist(p, w[u]); d < bestD {
					bmu, bestD = u, d
				}
			}
			br, bc := pos(bmu)
			// Update the neighborhood with a Gaussian kernel.
			for u := range w {
				ur, uc := pos(u)
				dr, dc := float64(ur-br), float64(uc-bc)
				latt2 := dr*dr + dc*dc
				if latt2 > 9*rad*rad {
					continue
				}
				h := lr * math.Exp(-latt2/(2*rad*rad))
				for d := 0; d < dim; d++ {
					w[u][d] += h * (p[d] - w[u][d])
				}
			}
			step++
		}
	}
	// Assign points to BMUs; compact away empty units.
	rawAssign := make([]int, len(points))
	used := map[int]int{}
	for i, p := range points {
		bmu, bestD := 0, math.Inf(1)
		for u := range w {
			if d := sqDist(p, w[u]); d < bestD {
				bmu, bestD = u, d
			}
		}
		rawAssign[i] = bmu
		if _, ok := used[bmu]; !ok {
			used[bmu] = len(used)
		}
	}
	centroids := make([][]float64, len(used))
	for u, c := range used {
		centroids[c] = w[u]
	}
	assign := make([]int, len(points))
	for i, u := range rawAssign {
		assign[i] = used[u]
	}
	return &Result{Assignments: assign, Centroids: centroids}, nil
}
