package cluster

import "math"

// Quality metrics for comparing clustering algorithms against each other
// and against ground-truth labels.

// Silhouette returns the mean silhouette coefficient of the clustering
// over the points: (b−a)/max(a,b) averaged over all points, where a is
// the mean intra-cluster distance and b the mean distance to the nearest
// other cluster. Values near 1 indicate tight, well-separated clusters.
// Singleton clusters contribute 0.
func Silhouette(points [][]float64, assignments []int) float64 {
	n := len(points)
	if n == 0 || len(assignments) != n {
		return 0
	}
	k := 0
	for _, a := range assignments {
		if a+1 > k {
			k = a + 1
		}
	}
	if k < 2 {
		return 0
	}
	total := 0.0
	for i := range points {
		// Mean distance to each cluster.
		sum := make([]float64, k)
		cnt := make([]int, k)
		for j := range points {
			if j == i {
				continue
			}
			sum[assignments[j]] += math.Sqrt(sqDist(points[i], points[j]))
			cnt[assignments[j]]++
		}
		own := assignments[i]
		if cnt[own] == 0 {
			continue // singleton: contributes 0
		}
		a := sum[own] / float64(cnt[own])
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || cnt[c] == 0 {
				continue
			}
			if m := sum[c] / float64(cnt[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(n)
}

// Purity returns the weighted purity of the clustering against the
// ground-truth labels: for each cluster, the fraction belonging to its
// majority label, weighted by cluster size. 1.0 means every cluster is
// label-pure.
func Purity(assignments, labels []int) float64 {
	if len(assignments) == 0 || len(assignments) != len(labels) {
		return 0
	}
	counts := map[int]map[int]int{}
	for i, a := range assignments {
		if counts[a] == nil {
			counts[a] = map[int]int{}
		}
		counts[a][labels[i]]++
	}
	correct := 0
	for _, byLabel := range counts {
		best := 0
		for _, c := range byLabel {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assignments))
}
