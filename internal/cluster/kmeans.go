// Package cluster implements the three clustering algorithms the paper's
// SERVER tier uses to organize the shape database for hierarchical
// browsing (§2.2): k-means, Self-Organizing Maps, and Genetic-Algorithm
// clustering, plus the bisecting hierarchy used by the browse interface
// and quality metrics for comparing them.
package cluster

import (
	"fmt"
	"math"
	"math/rand"
)

// Result is a flat clustering: an assignment of each input point to one of
// k clusters and the cluster centroids.
type Result struct {
	Assignments []int
	Centroids   [][]float64
}

// K returns the number of clusters.
func (r *Result) K() int { return len(r.Centroids) }

// Sizes returns the number of points in each cluster.
func (r *Result) Sizes() []int {
	sizes := make([]int, len(r.Centroids))
	for _, a := range r.Assignments {
		sizes[a]++
	}
	return sizes
}

// SSE returns the within-cluster sum of squared distances of the result on
// the given points.
func (r *Result) SSE(points [][]float64) float64 {
	total := 0.0
	for i, p := range points {
		total += sqDist(p, r.Centroids[r.Assignments[i]])
	}
	return total
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func validate(points [][]float64, k int) (dim int, err error) {
	if len(points) == 0 {
		return 0, fmt.Errorf("cluster: no points")
	}
	if k <= 0 {
		return 0, fmt.Errorf("cluster: k must be positive, got %d", k)
	}
	if k > len(points) {
		return 0, fmt.Errorf("cluster: k=%d exceeds %d points", k, len(points))
	}
	dim = len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return 0, fmt.Errorf("cluster: point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	return dim, nil
}

// KMeans clusters points into k groups with Lloyd's algorithm seeded by
// k-means++. It is deterministic given the random source.
func KMeans(points [][]float64, k int, rng *rand.Rand, maxIter int) (*Result, error) {
	dim, err := validate(points, k)
	if err != nil {
		return nil, err
	}
	if maxIter <= 0 {
		maxIter = 100
	}
	centroids := seedPlusPlus(points, k, rng)
	assign := make([]int, len(points))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			counts[assign[i]]++
			for d := range p {
				sums[assign[i]][d] += p[d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid, a standard fix that keeps k clusters alive.
				far, farD := 0, -1.0
				for i, p := range points {
					if d := sqDist(p, centroids[assign[i]]); d > farD {
						far, farD = i, d
					}
				}
				centroids[c] = append([]float64(nil), points[far]...)
				assign[far] = c
				changed = true
				continue
			}
			for d := 0; d < dim; d++ {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	return &Result{Assignments: assign, Centroids: centroids}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ scheme.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := rng.Intn(len(points))
	centroids = append(centroids, append([]float64(nil), points[first]...))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var next int
		if total <= 0 {
			next = rng.Intn(len(points))
		} else {
			r := rng.Float64() * total
			acc := 0.0
			next = len(points) - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					next = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[next]...))
	}
	return centroids
}
