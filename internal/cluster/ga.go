package cluster

import (
	"math"
	"math/rand"
	"sort"
)

// GAOptions configure genetic-algorithm clustering.
type GAOptions struct {
	K           int     // number of clusters
	Population  int     // chromosomes per generation (default 30)
	Generations int     // evolution steps (default 60)
	MutationStd float64 // Gaussian mutation scale relative to data spread (default 0.1)
	Elitism     int     // chromosomes copied unchanged (default 2)
}

// GA clusters points by evolving centroid sets: a chromosome is a flat
// list of k centroids, fitness is negative SSE, selection is binary
// tournament, crossover swaps whole centroids, and mutation adds Gaussian
// noise. Elitism guarantees the best solution never regresses.
func GA(points [][]float64, opts GAOptions, rng *rand.Rand) (*Result, error) {
	dim, err := validate(points, opts.K)
	if err != nil {
		return nil, err
	}
	if opts.Population <= 0 {
		opts.Population = 30
	}
	if opts.Generations <= 0 {
		opts.Generations = 60
	}
	if opts.MutationStd <= 0 {
		opts.MutationStd = 0.1
	}
	if opts.Elitism <= 0 {
		opts.Elitism = 2
	}
	if opts.Elitism > opts.Population {
		opts.Elitism = opts.Population
	}
	k := opts.K

	// Data spread per dimension scales mutation noise.
	spread := make([]float64, dim)
	for d := 0; d < dim; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, p := range points {
			lo = math.Min(lo, p[d])
			hi = math.Max(hi, p[d])
		}
		spread[d] = hi - lo
		if spread[d] == 0 {
			spread[d] = 1
		}
	}

	type chromosome struct {
		centroids [][]float64
		sse       float64
	}
	clone := func(cs [][]float64) [][]float64 {
		out := make([][]float64, len(cs))
		for i := range cs {
			out[i] = append([]float64(nil), cs[i]...)
		}
		return out
	}
	evaluate := func(cs [][]float64) float64 {
		total := 0.0
		for _, p := range points {
			best := math.Inf(1)
			for _, c := range cs {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			total += best
		}
		return total
	}
	newChromosome := func() chromosome {
		cs := make([][]float64, k)
		perm := rng.Perm(len(points))
		for i := 0; i < k; i++ {
			cs[i] = append([]float64(nil), points[perm[i%len(perm)]]...)
		}
		return chromosome{centroids: cs, sse: evaluate(cs)}
	}

	pop := make([]chromosome, opts.Population)
	for i := range pop {
		pop[i] = newChromosome()
	}
	byFitness := func() {
		sort.Slice(pop, func(i, j int) bool { return pop[i].sse < pop[j].sse })
	}
	byFitness()

	tournament := func() chromosome {
		a, b := rng.Intn(len(pop)), rng.Intn(len(pop))
		if pop[a].sse <= pop[b].sse {
			return pop[a]
		}
		return pop[b]
	}

	for g := 0; g < opts.Generations; g++ {
		next := make([]chromosome, 0, opts.Population)
		for e := 0; e < opts.Elitism; e++ {
			next = append(next, chromosome{centroids: clone(pop[e].centroids), sse: pop[e].sse})
		}
		for len(next) < opts.Population {
			p1, p2 := tournament(), tournament()
			child := clone(p1.centroids)
			// Uniform centroid-level crossover.
			for c := 0; c < k; c++ {
				if rng.Intn(2) == 1 {
					copy(child[c], p2.centroids[c])
				}
			}
			// Gaussian mutation.
			for c := 0; c < k; c++ {
				if rng.Float64() < 0.3 {
					for d := 0; d < dim; d++ {
						child[c][d] += rng.NormFloat64() * opts.MutationStd * spread[d]
					}
				}
			}
			next = append(next, chromosome{centroids: child, sse: evaluate(child)})
		}
		pop = next
		byFitness()
	}

	best := pop[0]
	assign := make([]int, len(points))
	for i, p := range points {
		bi, bd := 0, math.Inf(1)
		for c := range best.centroids {
			if d := sqDist(p, best.centroids[c]); d < bd {
				bi, bd = c, d
			}
		}
		assign[i] = bi
	}
	return &Result{Assignments: assign, Centroids: best.centroids}, nil
}
