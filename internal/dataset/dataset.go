package dataset

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"threedess/internal/geom"
)

// Shape is one corpus model: a mesh plus its ground-truth group label.
type Shape struct {
	Name  string
	Group int // 1..NumGroups for family members, 0 for noise shapes
	Mesh  *geom.Mesh
}

// NumGroups is the number of similarity groups (26 in the paper).
const NumGroups = 26

// NumNoise is the number of ungrouped noisy shapes (27 in the paper).
const NumNoise = 27

// TotalShapes is the corpus size (113 in the paper).
const TotalShapes = 86 + NumNoise

// groupSizes assigns the member count of each group (index = group-1).
// Sorted ascending the sizes are 2×10, 3×8, 4×3, 5×3, 7, 8 — 26 groups in
// [2, 8] summing to 86, reproducing Figure 4's distribution.
var groupSizes = []int{
	8, 7, 5, 5, 5, 4, 4, 4,
	3, 3, 3, 3, 3, 3, 3, 3,
	2, 2, 2, 2, 2, 2, 2, 2, 2, 2,
}

// GroupSize returns the ground-truth size of group g (1-based).
func GroupSize(g int) (int, error) {
	if g < 1 || g > NumGroups {
		return 0, fmt.Errorf("dataset: group %d out of range 1..%d", g, NumGroups)
	}
	return groupSizes[g-1], nil
}

// GroupSizesAscending returns the 26 group sizes in ascending order, the
// series plotted in Figure 4.
func GroupSizesAscending() []int {
	out := append([]int(nil), groupSizes...)
	sort.Ints(out)
	return out
}

// Generate builds the full 113-shape corpus deterministically from seed.
// Shapes 0..85 belong to groups (consecutive runs per group in group-id
// order); shapes 86..112 are noise.
func Generate(seed int64) ([]Shape, error) {
	if len(groupSizes) != NumGroups {
		panic("dataset: group size table corrupt")
	}
	total := 0
	for _, s := range groupSizes {
		total += s
	}
	if total+NumNoise != TotalShapes {
		panic("dataset: group size table does not sum to corpus size")
	}
	shapes := make([]Shape, 0, TotalShapes)
	for g := 1; g <= NumGroups; g++ {
		fam := families[g-1]
		for v := 0; v < groupSizes[g-1]; v++ {
			// One deterministic stream per (seed, group, variant).
			rng := rand.New(rand.NewSource(seed*1_000_003 + int64(g)*1_009 + int64(v)))
			mesh, err := fam.gen(rng)
			if err != nil {
				return nil, fmt.Errorf("dataset: group %d (%s) variant %d: %w", g, fam.name, v, err)
			}
			if err := prepare(mesh, rng); err != nil {
				return nil, fmt.Errorf("dataset: group %d (%s) variant %d: %w", g, fam.name, v, err)
			}
			shapes = append(shapes, Shape{
				Name:  fmt.Sprintf("%s-%02d", fam.name, v+1),
				Group: g,
				Mesh:  mesh,
			})
		}
	}
	for i := 0; i < NumNoise; i++ {
		rng := rand.New(rand.NewSource(seed*1_000_003 + 900_001 + int64(i)*7))
		mesh, err := noiseShape(i, rng)
		if err != nil {
			return nil, fmt.Errorf("dataset: noise shape %d: %w", i, err)
		}
		if err := prepare(mesh, rng); err != nil {
			return nil, fmt.Errorf("dataset: noise shape %d: %w", i, err)
		}
		shapes = append(shapes, Shape{
			Name:  fmt.Sprintf("noise-%02d", i+1),
			Group: 0,
			Mesh:  mesh,
		})
	}
	return shapes, nil
}

// prepare validates a generated mesh and applies a random rigid pose, so
// the corpus exercises the normalization pipeline the way arbitrarily
// saved CAD files would.
func prepare(mesh *geom.Mesh, rng *rand.Rand) error {
	if err := mesh.Validate(); err != nil {
		return err
	}
	if v := mesh.Volume(); v <= 0 {
		return fmt.Errorf("generated mesh has volume %g", v)
	}
	// A global size jitter on top of the family's proportion jitters:
	// rigid-invariant descriptors ignore it, size-sensitive ones (the
	// geometric parameters) see realistic within-group spread.
	mesh.ScaleUniform(jitter(rng, 1, 0.21))
	axis := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	if axis.Len() < 1e-9 {
		axis = geom.V(0, 0, 1)
	}
	mesh.Transform(geom.Transform{
		R: geom.RotationAxisAngle(axis, rng.Float64()*6.28318),
		T: geom.V(rng.NormFloat64()*20, rng.NormFloat64()*20, rng.NormFloat64()*20),
	})
	return nil
}

// RepresentativeQueries returns the corpus indices of five query shapes
// from five distinct groups — the Figure 6 role (one member each of the
// plate, bracket, shaft, gear, and elbow families).
func RepresentativeQueries(shapes []Shape) []int {
	wanted := []int{1, 2, 4, 7, 8} // group ids: plate, L-bracket, stepped shaft, gear, pipe elbow
	var out []int
	for _, g := range wanted {
		for i, s := range shapes {
			if s.Group == g {
				out = append(out, i)
				break
			}
		}
	}
	return out
}

// GroupMembers returns the corpus indices of every member of group g.
func GroupMembers(shapes []Shape, g int) []int {
	var out []int
	for i, s := range shapes {
		if s.Group == g {
			out = append(out, i)
		}
	}
	return out
}

// WriteCorpus saves every shape as an OFF file under dir plus a
// classification map file ("name group" per line) — the on-disk form the
// shapegen tool produces.
func WriteCorpus(dir string, shapes []Shape) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var manifest []byte
	for _, s := range shapes {
		path := filepath.Join(dir, s.Name+".off")
		if err := geom.WriteMeshFile(path, s.Mesh); err != nil {
			return fmt.Errorf("dataset: writing %s: %w", path, err)
		}
		manifest = append(manifest, []byte(fmt.Sprintf("%s %d\n", s.Name, s.Group))...)
	}
	return os.WriteFile(filepath.Join(dir, "classification.map"), manifest, 0o644)
}
