// Package dataset procedurally generates the evaluation corpus standing in
// for the paper's 113 real engineering shapes: 86 models in 26 similarity
// groups (sizes 2–8, matching Figure 4) plus 27 one-off "noisy" shapes
// that belong to no group. Each group is a parametric part family —
// brackets, flanges, gears, pipes, fasteners — whose members differ by the
// dimension changes a manual classifier would still call "similar".
//
// Generation is deterministic for a given seed.
package dataset

import (
	"math"
	"math/rand"

	"threedess/internal/geom"
)

// partFamily generates variant i of a family; variation comes from rng.
type partFamily struct {
	name string
	gen  func(rng *rand.Rand) (*geom.Mesh, error)
}

// jitter returns base scaled by a uniform factor in [1−spread, 1+spread].
func jitter(rng *rand.Rand, base, spread float64) float64 {
	return base * (1 + (rng.Float64()*2-1)*spread)
}

// segments returns the angular tessellation used across families.
const segs = 28

// families lists the 26 part families in group-id order (1-based group id
// = index + 1). Group sizes are assigned in dataset.go.
var families = []partFamily{
	{"rect-plate-holes", genRectPlateHoles},
	{"l-bracket", genLBracket},
	{"u-channel", genUChannel},
	{"stepped-shaft", genSteppedShaft},
	{"washer", genWasher},
	{"hex-nut", genHexNut},
	{"gear", genGear},
	{"pipe-elbow", genPipeElbow},
	{"i-beam", genIBeam},
	{"t-section", genTSection},
	{"flange", genFlange},
	{"bushing", genBushing},
	{"pulley", genPulley},
	{"bolt", genBolt},
	{"ring", genRing},
	{"handle", genHandle},
	{"spring", genSpring},
	{"pipe-tee", genPipeTee},
	{"cone-adapter", genConeAdapter},
	{"knob", genKnob},
	{"square-tube", genSquareTube},
	{"angle-bracket", genAngleBracket},
	{"slotted-plate", genSlottedPlate},
	{"spacer-block", genSpacerBlock},
	{"disc", genDisc},
	{"cross-pipe", genCrossPipe},
}

func genRectPlateHoles(rng *rand.Rand) (*geom.Mesh, error) {
	w := jitter(rng, 40, 0.07)
	h := jitter(rng, 24, 0.07)
	t := jitter(rng, 3, 0.07)
	r := jitter(rng, 3, 0.07)
	nHoles := 2 + rng.Intn(3)
	outer := geom.RectPolygon(0, 0, w, h)
	var holes []geom.Polygon
	for i := 0; i < nHoles; i++ {
		cx := w * (0.2 + 0.6*float64(i)/float64(maxi(nHoles-1, 1)))
		cy := h * (0.35 + 0.3*rng.Float64())
		holes = append(holes, geom.CirclePolygon(geom.Vec2{X: cx, Y: cy}, r, 20, rng.Float64()))
	}
	return geom.Extrude(outer, holes, 0, t)
}

func genLBracket(rng *rand.Rand) (*geom.Mesh, error) {
	a := jitter(rng, 30, 0.07) // leg 1 length
	b := jitter(rng, 22, 0.07) // leg 2 length
	t := jitter(rng, 4, 0.09)  // thickness
	w := jitter(rng, 16, 0.07) // width (extrusion depth)
	profile := geom.Poly(0, 0, a, 0, a, t, t, t, t, b, 0, b)
	return geom.Extrude(profile, nil, 0, w)
}

func genUChannel(rng *rand.Rand) (*geom.Mesh, error) {
	w := jitter(rng, 20, 0.07)
	h := jitter(rng, 14, 0.07)
	t := jitter(rng, 2.5, 0.07)
	length := jitter(rng, 50, 0.09)
	profile := geom.Poly(0, 0, w, 0, w, h, w-t, h, w-t, t, t, t, t, h, 0, h)
	return geom.Extrude(profile, nil, 0, length)
}

func genSteppedShaft(rng *rand.Rand) (*geom.Mesh, error) {
	r1 := jitter(rng, 6, 0.07)
	r2 := jitter(rng, 4, 0.07)
	r3 := jitter(rng, 2.5, 0.07)
	l1 := jitter(rng, 12, 0.07)
	l2 := jitter(rng, 14, 0.07)
	l3 := jitter(rng, 10, 0.07)
	profile := geom.Poly(0, 0, r1, 0, r1, l1, r2, l1, r2, l1+l2, r3, l1+l2, r3, l1+l2+l3, 0, l1+l2+l3)
	return geom.Lathe(profile, segs)
}

func genWasher(rng *rand.Rand) (*geom.Mesh, error) {
	ri := jitter(rng, 5, 0.07)
	ro := ri + jitter(rng, 10, 0.09)
	t := jitter(rng, 3, 0.07)
	return geom.Tube(ri, ro, t, segs)
}

func genHexNut(rng *rand.Rand) (*geom.Mesh, error) {
	af := jitter(rng, 12, 0.07)
	h := jitter(rng, 5, 0.09)
	hole := af * jitter(rng, 0.35, 0.1)
	return geom.HexPrism(af, h, []geom.Polygon{geom.CirclePolygon(geom.Vec2{}, hole, 18, 0)})
}

func genGear(rng *rand.Rand) (*geom.Mesh, error) {
	teeth := 8 + rng.Intn(6)
	rRoot := jitter(rng, 14, 0.07)
	rTip := rRoot * jitter(rng, 1.25, 0.07)
	t := jitter(rng, 3.5, 0.07)
	bore := rRoot * 0.3
	n := teeth * 4
	outer := make(geom.Polygon, 0, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		// Square-wave tooth profile.
		r := rRoot
		if (i/2)%2 == 0 {
			r = rTip
		}
		outer = append(outer, geom.Vec2{X: r * math.Cos(a), Y: r * math.Sin(a)})
	}
	hole := geom.CirclePolygon(geom.Vec2{}, bore, 16, 0)
	return geom.Extrude(outer, []geom.Polygon{hole}, 0, t)
}

func genPipeElbow(rng *rand.Rand) (*geom.Mesh, error) {
	bend := jitter(rng, 20, 0.07)      // bend radius
	r := jitter(rng, 4, 0.07)          // pipe radius
	sweep := jitter(rng, math.Pi/2, 0) // 90° elbow
	n := 24
	path := make([]geom.Vec3, 0, n+1)
	for i := 0; i <= n; i++ {
		a := sweep * float64(i) / float64(n)
		path = append(path, geom.V(bend*math.Cos(a), bend*math.Sin(a), 0))
	}
	return geom.TubeAlongPath(path, r, 20, false)
}

func genIBeam(rng *rand.Rand) (*geom.Mesh, error) {
	w := jitter(rng, 20, 0.07)   // flange width
	h := jitter(rng, 16, 0.07)   // total height
	tf := jitter(rng, 3, 0.07)   // flange thickness
	tw := jitter(rng, 2.5, 0.07) // web thickness
	length := jitter(rng, 50, 0.09)
	x0 := (w - tw) / 2
	x1 := (w + tw) / 2
	profile := geom.Poly(0, 0, w, 0, w, tf, x1, tf, x1, h-tf, w, h-tf, w, h, 0, h, 0, h-tf, x0, h-tf, x0, tf, 0, tf)
	return geom.Extrude(profile, nil, 0, length)
}

func genTSection(rng *rand.Rand) (*geom.Mesh, error) {
	w := jitter(rng, 20, 0.07)
	h := jitter(rng, 15, 0.07)
	t := jitter(rng, 3.5, 0.07)
	length := jitter(rng, 50, 0.09)
	x0 := (w - t) / 2
	x1 := (w + t) / 2
	profile := geom.Poly(x0, 0, x1, 0, x1, h-t, w, h-t, w, h, 0, h, 0, h-t, x0, h-t)
	return geom.Extrude(profile, nil, 0, length)
}

func genFlange(rng *rand.Rand) (*geom.Mesh, error) {
	rOuter := jitter(rng, 18, 0.07)
	rBore := jitter(rng, 6, 0.07)
	t := jitter(rng, 4, 0.07)
	nBolts := 4 + rng.Intn(3)
	rBoltCircle := (rOuter + rBore) / 2
	rBolt := jitter(rng, 1.8, 0.07)
	outer := geom.CirclePolygon(geom.Vec2{}, rOuter, 36, 0)
	holes := []geom.Polygon{geom.CirclePolygon(geom.Vec2{}, rBore, 24, 0)}
	for i := 0; i < nBolts; i++ {
		a := 2 * math.Pi * float64(i) / float64(nBolts)
		c := geom.Vec2{X: rBoltCircle * math.Cos(a), Y: rBoltCircle * math.Sin(a)}
		holes = append(holes, geom.CirclePolygon(c, rBolt, 12, a))
	}
	return geom.Extrude(outer, holes, 0, t)
}

func genBushing(rng *rand.Rand) (*geom.Mesh, error) {
	ri := jitter(rng, 4, 0.07)
	ro := ri + jitter(rng, 2.5, 0.09)
	h := jitter(rng, 14, 0.09)
	return geom.Tube(ri, ro, h, segs)
}

func genPulley(rng *rand.Rand) (*geom.Mesh, error) {
	r := jitter(rng, 14, 0.07)     // outer radius
	groove := jitter(rng, 3, 0.07) // groove depth
	w := jitter(rng, 8, 0.07)      // width
	bore := jitter(rng, 3, 0.07)
	profile := geom.Poly(bore, 0, r, 0, r, w*0.25, r-groove, w*0.5, r, w*0.75, r, w, bore, w)
	return geom.Lathe(profile, segs)
}

func genBolt(rng *rand.Rand) (*geom.Mesh, error) {
	rShank := jitter(rng, 3, 0.07)
	lShank := jitter(rng, 20, 0.09)
	afHead := rShank * jitter(rng, 3.2, 0.1)
	hHead := jitter(rng, 4, 0.07)
	head, err := geom.HexPrism(afHead, hHead, nil)
	if err != nil {
		return nil, err
	}
	shank := geom.Cylinder(rShank, lShank, 20)
	shank.Translate(geom.V(0, 0, hHead))
	return head.Merge(shank), nil
}

func genRing(rng *rand.Rand) (*geom.Mesh, error) {
	major := jitter(rng, 14, 0.07)
	minor := major * jitter(rng, 0.22, 0.07)
	return geom.Torus(major, minor, 32, 16)
}

func genHandle(rng *rand.Rand) (*geom.Mesh, error) {
	// A U-shaped grab handle: straight–arc–straight path.
	leg := jitter(rng, 15, 0.07)
	span := jitter(rng, 25, 0.07)
	r := jitter(rng, 2.5, 0.07)
	var path []geom.Vec3
	path = append(path, geom.V(0, 0, 0), geom.V(0, 0, leg))
	n := 12
	for i := 1; i < n; i++ {
		a := math.Pi * float64(i) / float64(n)
		path = append(path, geom.V(span/2-span/2*math.Cos(a), 0, leg+span/2*math.Sin(a)*0.8))
	}
	path = append(path, geom.V(span, 0, leg), geom.V(span, 0, 0))
	return geom.TubeAlongPath(path, r, 16, false)
}

func genSpring(rng *rand.Rand) (*geom.Mesh, error) {
	coils := 3 + rng.Intn(3)
	rCoil := jitter(rng, 10, 0.07)
	rWire := jitter(rng, 1.6, 0.07)
	pitch := jitter(rng, 6, 0.07)
	n := coils * 16
	path := make([]geom.Vec3, 0, n+1)
	for i := 0; i <= n; i++ {
		a := 2 * math.Pi * float64(coils) * float64(i) / float64(n)
		path = append(path, geom.V(rCoil*math.Cos(a), rCoil*math.Sin(a), pitch*float64(coils)*float64(i)/float64(n)))
	}
	return geom.TubeAlongPath(path, rWire, 12, false)
}

func genPipeTee(rng *rand.Rand) (*geom.Mesh, error) {
	// Two overlapping solid cylinders forming a T. Signed integrals count
	// the small overlap twice; winding-based voxelization fills it once.
	r := jitter(rng, 4, 0.07)
	lMain := jitter(rng, 36, 0.07)
	lBranch := jitter(rng, 18, 0.07)
	main := geom.Cylinder(r, lMain, 20)
	branch := geom.Cylinder(r, lBranch, 20)
	branch.Rotate(geom.RotationY(math.Pi / 2))
	branch.Translate(geom.V(0, 0, lMain/2))
	return main.Merge(branch), nil
}

func genConeAdapter(rng *rand.Rand) (*geom.Mesh, error) {
	r0 := jitter(rng, 12, 0.07)
	r1 := jitter(rng, 6, 0.07)
	h := jitter(rng, 16, 0.07)
	wall := jitter(rng, 2, 0.07)
	profile := geom.Poly(r0-wall, 0, r0, 0, r1, h, r1-wall, h)
	return geom.Lathe(profile, segs)
}

func genKnob(rng *rand.Rand) (*geom.Mesh, error) {
	rBase := jitter(rng, 10, 0.07)
	hBase := jitter(rng, 4, 0.07)
	rNeck := jitter(rng, 4, 0.07)
	hNeck := jitter(rng, 6, 0.07)
	rTop := jitter(rng, 7, 0.07)
	profile := geom.Poly(0, 0, rBase, 0, rBase, hBase, rNeck, hBase, rNeck, hBase+hNeck, rTop, hBase+hNeck+rTop*0.6, rTop*0.7, hBase+hNeck+rTop*1.3, 0, hBase+hNeck+rTop*1.5)
	return geom.Lathe(profile, segs)
}

func genSquareTube(rng *rand.Rand) (*geom.Mesh, error) {
	w := jitter(rng, 18, 0.07)
	t := jitter(rng, 2, 0.07)
	length := jitter(rng, 50, 0.09)
	outer := geom.RectPolygon(0, 0, w, w)
	inner := geom.RectPolygon(t, t, w-t, w-t)
	return geom.Extrude(outer, []geom.Polygon{inner}, 0, length)
}

func genAngleBracket(rng *rand.Rand) (*geom.Mesh, error) {
	a := jitter(rng, 30, 0.07)
	t := jitter(rng, 4, 0.07)
	w := jitter(rng, 16, 0.07)
	rHole := jitter(rng, 2.5, 0.07)
	// Horizontal leg with two holes, then a vertical leg merged on.
	leg1, err := geom.Extrude(geom.RectPolygon(0, 0, a, w), []geom.Polygon{
		geom.CirclePolygon(geom.Vec2{X: a * 0.4, Y: w / 2}, rHole, 14, 0),
		geom.CirclePolygon(geom.Vec2{X: a * 0.8, Y: w / 2}, rHole, 14, 0.5),
	}, 0, t)
	if err != nil {
		return nil, err
	}
	b := jitter(rng, 22, 0.07)
	leg2, err := geom.Extrude(geom.RectPolygon(0, 0, t, w), nil, 0, b)
	if err != nil {
		return nil, err
	}
	leg2.Translate(geom.V(0, 0, t))
	return leg1.Merge(leg2), nil
}

func genSlottedPlate(rng *rand.Rand) (*geom.Mesh, error) {
	w := jitter(rng, 40, 0.07)
	h := jitter(rng, 24, 0.07)
	t := jitter(rng, 3, 0.07)
	slotW := jitter(rng, 20, 0.07)
	slotH := jitter(rng, 5, 0.07)
	outer := geom.RectPolygon(0, 0, w, h)
	// A rounded slot approximated by a stadium polygon.
	cx, cy := w/2, h/2
	slot := stadiumPolygon(geom.Vec2{X: cx, Y: cy}, slotW, slotH, 8)
	return geom.Extrude(outer, []geom.Polygon{slot}, 0, t)
}

// stadiumPolygon returns a slot outline (rectangle with semicircular ends).
func stadiumPolygon(c geom.Vec2, width, height float64, arcSegs int) geom.Polygon {
	r := height / 2
	half := width/2 - r
	if half < 0 {
		half = 0
	}
	var p geom.Polygon
	// Right cap (bottom to top).
	for i := 0; i <= arcSegs; i++ {
		a := -math.Pi/2 + math.Pi*float64(i)/float64(arcSegs)
		p = append(p, geom.Vec2{X: c.X + half + r*math.Cos(a), Y: c.Y + r*math.Sin(a)})
	}
	// Left cap (top to bottom).
	for i := 0; i <= arcSegs; i++ {
		a := math.Pi/2 + math.Pi*float64(i)/float64(arcSegs)
		p = append(p, geom.Vec2{X: c.X - half + r*math.Cos(a), Y: c.Y + r*math.Sin(a)})
	}
	return p
}

func genSpacerBlock(rng *rand.Rand) (*geom.Mesh, error) {
	w := jitter(rng, 13, 0.07)
	d := jitter(rng, 13, 0.07)
	h := jitter(rng, 5, 0.09)
	rHole := jitter(rng, 4, 0.07)
	outer := geom.RectPolygon(0, 0, w, d)
	hole := geom.CirclePolygon(geom.Vec2{X: w / 2, Y: d / 2}, rHole, 18, 0)
	return geom.Extrude(outer, []geom.Polygon{hole}, 0, h)
}

func genDisc(rng *rand.Rand) (*geom.Mesh, error) {
	r := jitter(rng, 16, 0.07)
	t := jitter(rng, 4, 0.07)
	return geom.Cylinder(r, t, 36), nil
}

func genCrossPipe(rng *rand.Rand) (*geom.Mesh, error) {
	r := jitter(rng, 3.5, 0.07)
	l := jitter(rng, 30, 0.07)
	a := geom.Cylinder(r, l, 18)
	a.Translate(geom.V(0, 0, -l/2))
	b := geom.Cylinder(r, l, 18)
	b.Rotate(geom.RotationY(math.Pi / 2))
	b.Translate(geom.V(-l/2, 0, 0))
	return a.Merge(b), nil
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// noiseShape generates the i-th one-off noisy shape.
func noiseShape(i int, rng *rand.Rand) (*geom.Mesh, error) {
	switch i % 9 {
	case 0: // random slab
		return geom.Box(geom.Vec3{}, geom.V(jitter(rng, 30, 0.5), jitter(rng, 18, 0.5), jitter(rng, 6, 0.5))), nil
	case 1: // squashed ellipsoid (scaled sphere)
		m := geom.Sphere(jitter(rng, 10, 0.3), 12, 18)
		m.Transform(geom.Transform{R: geom.Mat3{
			{jitter(rng, 1.6, 0.3), 0, 0},
			{0, jitter(rng, 1.0, 0.3), 0},
			{0, 0, jitter(rng, 0.5, 0.3)},
		}})
		return m, nil
	case 2: // tall cone
		return geom.Cone(jitter(rng, 8, 0.3), jitter(rng, 2, 0.5), jitter(rng, 26, 0.3), 20)
	case 3: // fat torus
		major := jitter(rng, 10, 0.2)
		return geom.Torus(major, major*jitter(rng, 0.45, 0.1), 24, 14)
	case 4: // two stacked boxes
		a := geom.Box(geom.Vec3{}, geom.V(jitter(rng, 20, 0.3), jitter(rng, 20, 0.3), jitter(rng, 5, 0.3)))
		b := geom.Box(geom.Vec3{}, geom.V(jitter(rng, 8, 0.3), jitter(rng, 8, 0.3), jitter(rng, 14, 0.3)))
		b.Translate(geom.V(2, 2, 5))
		return a.Merge(b), nil
	case 5: // random wedge (extruded triangle)
		return geom.Extrude(geom.Poly(0, 0, jitter(rng, 25, 0.3), 0, jitter(rng, 8, 0.5), jitter(rng, 16, 0.3)), nil, 0, jitter(rng, 8, 0.3))
	case 6: // random bent pipe (135°)
		bend := jitter(rng, 15, 0.3)
		n := 20
		path := make([]geom.Vec3, 0, n+1)
		for j := 0; j <= n; j++ {
			a := 0.75 * math.Pi * float64(j) / float64(n)
			path = append(path, geom.V(bend*math.Cos(a), bend*math.Sin(a), jitter(rng, 4, 0.5)*float64(j)/float64(n)))
		}
		return geom.TubeAlongPath(path, jitter(rng, 2.5, 0.3), 14, false)
	case 7: // pyramid-ish frustum prism
		w := jitter(rng, 20, 0.3)
		return geom.Extrude(geom.Poly(0, 0, w, 0, w*0.8, w*0.6, w*0.2, w*0.6), nil, 0, jitter(rng, 10, 0.4))
	default: // hockey-puck with off-center hole
		r := jitter(rng, 12, 0.3)
		hole := geom.CirclePolygon(geom.Vec2{X: r * 0.4, Y: 0}, r*jitter(rng, 0.2, 0.3), 14, 0)
		return geom.Extrude(geom.CirclePolygon(geom.Vec2{}, r, 28, 0), []geom.Polygon{hole}, 0, jitter(rng, 5, 0.4))
	}
}
