package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"threedess/internal/geom"
)

func TestGroupSizeTableMatchesFigure4(t *testing.T) {
	sizes := GroupSizesAscending()
	if len(sizes) != NumGroups {
		t.Fatalf("groups = %d, want %d", len(sizes), NumGroups)
	}
	sum := 0
	for i, s := range sizes {
		if s < 2 || s > 8 {
			t.Errorf("group size %d out of the paper's 2..8 range", s)
		}
		if i > 0 && s < sizes[i-1] {
			t.Error("sizes not ascending")
		}
		sum += s
	}
	if sum != 86 {
		t.Errorf("grouped shapes = %d, want 86", sum)
	}
	if sum+NumNoise != TotalShapes || TotalShapes != 113 {
		t.Errorf("corpus size = %d, want 113", sum+NumNoise)
	}
}

func TestGroupSize(t *testing.T) {
	if _, err := GroupSize(0); err == nil {
		t.Error("group 0 accepted")
	}
	if _, err := GroupSize(27); err == nil {
		t.Error("group 27 accepted")
	}
	s, err := GroupSize(1)
	if err != nil {
		t.Fatal(err)
	}
	if s != 8 {
		t.Errorf("group 1 size = %d, want 8", s)
	}
}

func TestGenerateCorpus(t *testing.T) {
	shapes, err := Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(shapes) != TotalShapes {
		t.Fatalf("generated %d shapes, want %d", len(shapes), TotalShapes)
	}
	// Group populations match the table; every mesh is valid with
	// positive volume.
	counts := map[int]int{}
	names := map[string]bool{}
	for i, s := range shapes {
		counts[s.Group]++
		if names[s.Name] {
			t.Errorf("duplicate name %q", s.Name)
		}
		names[s.Name] = true
		if err := s.Mesh.Validate(); err != nil {
			t.Errorf("shape %d (%s): %v", i, s.Name, err)
		}
		if v := s.Mesh.Volume(); v <= 0 {
			t.Errorf("shape %d (%s): volume %v", i, s.Name, v)
		}
		if len(s.Mesh.Faces) < 8 {
			t.Errorf("shape %d (%s): only %d faces", i, s.Name, len(s.Mesh.Faces))
		}
	}
	if counts[0] != NumNoise {
		t.Errorf("noise count = %d, want %d", counts[0], NumNoise)
	}
	for g := 1; g <= NumGroups; g++ {
		want, _ := GroupSize(g)
		if counts[g] != want {
			t.Errorf("group %d count = %d, want %d", g, counts[g], want)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Group != b[i].Group {
			t.Fatalf("shape %d metadata differs", i)
		}
		if len(a[i].Mesh.Vertices) != len(b[i].Mesh.Vertices) {
			t.Fatalf("shape %d vertex count differs", i)
		}
		if a[i].Mesh.Vertices[0] != b[i].Mesh.Vertices[0] {
			t.Fatalf("shape %d geometry differs", i)
		}
	}
	c, err := Generate(8)
	if err != nil {
		t.Fatal(err)
	}
	differ := false
	for i := range a {
		if len(a[i].Mesh.Vertices) > 0 && len(c[i].Mesh.Vertices) > 0 &&
			a[i].Mesh.Vertices[0] != c[i].Mesh.Vertices[0] {
			differ = true
			break
		}
	}
	if !differ {
		t.Error("different seeds produced identical corpora")
	}
}

func TestGeneratedMeshesAreClosed(t *testing.T) {
	shapes, err := Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range shapes {
		if !s.Mesh.IsClosed() {
			t.Errorf("%s is not closed", s.Name)
		}
	}
}

func TestIntraGroupVariation(t *testing.T) {
	// Members of a group must be similar but not identical: volumes within
	// a factor, but not equal.
	shapes, err := Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	for g := 1; g <= NumGroups; g++ {
		members := GroupMembers(shapes, g)
		if len(members) < 2 {
			t.Fatalf("group %d has %d members", g, len(members))
		}
		v0 := shapes[members[0]].Mesh.Volume()
		v1 := shapes[members[1]].Mesh.Volume()
		if v0 == v1 {
			t.Errorf("group %d members 0 and 1 have identical volume %v", g, v0)
		}
		ratio := v0 / v1
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > 8 {
			t.Errorf("group %d volumes differ by %.1f× — not a similarity group", g, ratio)
		}
	}
}

func TestRepresentativeQueries(t *testing.T) {
	shapes, err := Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	q := RepresentativeQueries(shapes)
	if len(q) != 5 {
		t.Fatalf("queries = %d, want 5", len(q))
	}
	seen := map[int]bool{}
	for _, idx := range q {
		g := shapes[idx].Group
		if g == 0 {
			t.Errorf("query %d is a noise shape", idx)
		}
		if seen[g] {
			t.Errorf("two queries from group %d", g)
		}
		seen[g] = true
	}
}

func TestWriteCorpus(t *testing.T) {
	shapes, err := Generate(42)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCorpus(dir, shapes[:5]); err != nil {
		t.Fatal(err)
	}
	// Files exist and round-trip.
	back, err := geom.ReadMeshFile(filepath.Join(dir, shapes[0].Name+".off"))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Faces) != len(shapes[0].Mesh.Faces) {
		t.Errorf("round trip faces %d vs %d", len(back.Faces), len(shapes[0].Mesh.Faces))
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "classification.map"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(manifest)), "\n")
	if len(lines) != 5 {
		t.Errorf("manifest lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], shapes[0].Name+" ") {
		t.Errorf("manifest line %q", lines[0])
	}
}

func TestGenerateMultiSeedRobustness(t *testing.T) {
	// The generator must produce structurally sound corpora for any seed,
	// not just the evaluation default.
	for _, seed := range []int64{1, 7, 99, 12345} {
		shapes, err := Generate(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(shapes) != TotalShapes {
			t.Fatalf("seed %d: %d shapes", seed, len(shapes))
		}
		for _, s := range shapes {
			if err := s.Mesh.Validate(); err != nil {
				t.Errorf("seed %d %s: %v", seed, s.Name, err)
			}
			if !s.Mesh.IsClosed() {
				t.Errorf("seed %d %s: not closed", seed, s.Name)
			}
			if v := s.Mesh.Volume(); v <= 0 {
				t.Errorf("seed %d %s: volume %v", seed, s.Name, v)
			}
		}
	}
}
