// Package skeleton extracts curve skeletons from binary voxel models by
// topology-preserving thinning (§3.3 of the paper). Border voxels are
// peeled in six directional subiterations; a voxel is only removed when it
// is *simple* — its deletion provably preserves the topology of the object
// (Bertrand/Malandain characterization) — and not a curve endpoint, so the
// skeleton retains both the connectivity and the elongation structure that
// the skeletal graph stage (internal/skelgraph) consumes.
package skeleton

import (
	"threedess/internal/voxel"
)

// Options control thinning behaviour.
type Options struct {
	// PreserveEndpoints keeps curve endpoints (voxels with at most one
	// object neighbor), producing a curve skeleton. Without it, every
	// object without cavities or tunnels shrinks to a single voxel.
	PreserveEndpoints bool
	// MaxPasses bounds the number of full 6-direction cycles (0 = no
	// bound). Thinning always terminates — every pass deletes at least
	// one voxel or stops — so the bound exists only as a safety valve.
	MaxPasses int
}

// DefaultOptions returns the configuration used by the feature pipeline.
func DefaultOptions() Options {
	return Options{PreserveEndpoints: true}
}

// Thin returns the curve skeleton of g. The input grid is not modified.
func Thin(g *voxel.Grid, opts Options) *voxel.Grid {
	s := g.Clone()
	// The six peeling directions: a voxel is a border point of direction d
	// when its d-neighbor is background.
	directions := [6][3]int{
		{0, 0, 1}, {0, 0, -1}, // up, down
		{0, 1, 0}, {0, -1, 0}, // north, south
		{1, 0, 0}, {-1, 0, 0}, // east, west
	}
	pass := 0
	for {
		deletedInCycle := 0
		for _, d := range directions {
			// Collect directional border candidates first, then delete
			// sequentially with the simple-point test re-evaluated, so the
			// result is guaranteed topology-preserving.
			var candidates [][3]int
			s.ForEachSet(func(i, j, k int) {
				if s.Get(i+d[0], j+d[1], k+d[2]) {
					return // not a border point of this direction
				}
				if opts.PreserveEndpoints && countObjectNeighbors(s, i, j, k) <= 1 {
					return
				}
				if IsSimple(s, i, j, k) {
					candidates = append(candidates, [3]int{i, j, k})
				}
			})
			for _, c := range candidates {
				i, j, k := c[0], c[1], c[2]
				// Conditions may have changed after earlier deletions in
				// this subiteration; re-verify.
				if opts.PreserveEndpoints && countObjectNeighbors(s, i, j, k) <= 1 {
					continue
				}
				if !IsSimple(s, i, j, k) {
					continue
				}
				s.Set(i, j, k, false)
				deletedInCycle++
			}
		}
		pass++
		if deletedInCycle == 0 {
			break
		}
		if opts.MaxPasses > 0 && pass >= opts.MaxPasses {
			break
		}
	}
	return s
}

// countObjectNeighbors returns the number of set voxels in the
// 26-neighborhood of (i, j, k).
func countObjectNeighbors(g *voxel.Grid, i, j, k int) int {
	n := 0
	for _, d := range voxel.Neighbors26 {
		if g.Get(i+d[0], j+d[1], k+d[2]) {
			n++
		}
	}
	return n
}

// IsSimple reports whether the set voxel at (i, j, k) is a simple point:
// deleting it preserves the object topology. The standard (26, 6)
// characterization is used:
//
//  1. the object voxels of the 26-neighborhood form exactly one
//     26-connected component, and
//  2. the background voxels of the 18-neighborhood that are 6-adjacent to
//     the center form exactly one 6-connected component within N18.
func IsSimple(g *voxel.Grid, i, j, k int) bool {
	// Load the 3×3×3 neighborhood (center excluded from tests below).
	var nb [3][3][3]bool
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nb[dz+1][dy+1][dx+1] = g.Get(i+dx, j+dy, k+dz)
			}
		}
	}
	return objectComponents26(&nb) == 1 && backgroundComponents6InN18(&nb) == 1
}

// objectComponents26 counts 26-connected components of object voxels in
// the 26-neighborhood (center excluded).
func objectComponents26(nb *[3][3][3]bool) int {
	var visited [3][3][3]bool
	count := 0
	var stack [][3]int
	for z := 0; z < 3; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				if (x == 1 && y == 1 && z == 1) || !nb[z][y][x] || visited[z][y][x] {
					continue
				}
				count++
				stack = append(stack[:0], [3]int{x, y, z})
				visited[z][y][x] = true
				for len(stack) > 0 {
					p := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for dz := -1; dz <= 1; dz++ {
						for dy := -1; dy <= 1; dy++ {
							for dx := -1; dx <= 1; dx++ {
								nx, ny, nz := p[0]+dx, p[1]+dy, p[2]+dz
								if nx < 0 || nx > 2 || ny < 0 || ny > 2 || nz < 0 || nz > 2 {
									continue
								}
								if nx == 1 && ny == 1 && nz == 1 {
									continue
								}
								if nb[nz][ny][nx] && !visited[nz][ny][nx] {
									visited[nz][ny][nx] = true
									stack = append(stack, [3]int{nx, ny, nz})
								}
							}
						}
					}
				}
			}
		}
	}
	return count
}

// backgroundComponents6InN18 counts the 6-connected components of
// background voxels within the 18-neighborhood that contain at least one
// face neighbor of the center.
func backgroundComponents6InN18(nb *[3][3][3]bool) int {
	inN18 := func(x, y, z int) bool {
		dx, dy, dz := abs(x-1), abs(y-1), abs(z-1)
		s := dx + dy + dz
		return s >= 1 && s <= 2 // face or edge neighbor
	}
	isFaceNeighbor := func(x, y, z int) bool {
		dx, dy, dz := abs(x-1), abs(y-1), abs(z-1)
		return dx+dy+dz == 1
	}
	var visited [3][3][3]bool
	count := 0
	var stack [][3]int
	for z := 0; z < 3; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				if !inN18(x, y, z) || nb[z][y][x] || visited[z][y][x] {
					continue
				}
				if !isFaceNeighbor(x, y, z) {
					continue // seed components only from face neighbors
				}
				count++
				stack = append(stack[:0], [3]int{x, y, z})
				visited[z][y][x] = true
				for len(stack) > 0 {
					p := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, d := range voxel.Neighbors6 {
						nx, ny, nz := p[0]+d[0], p[1]+d[1], p[2]+d[2]
						if nx < 0 || nx > 2 || ny < 0 || ny > 2 || nz < 0 || nz > 2 {
							continue
						}
						if !inN18(nx, ny, nz) || nb[nz][ny][nx] || visited[nz][ny][nx] {
							continue
						}
						visited[nz][ny][nx] = true
						stack = append(stack, [3]int{nx, ny, nz})
					}
				}
			}
		}
	}
	return count
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
