package skeleton

import (
	"testing"

	"threedess/internal/geom"
	"threedess/internal/voxel"
)

func solidBlock(nx, ny, nz int) *voxel.Grid {
	g := voxel.MustNewGrid(nx+4, ny+4, nz+4, geom.Vec3{}, 1)
	for k := 2; k < nz+2; k++ {
		for j := 2; j < ny+2; j++ {
			for i := 2; i < nx+2; i++ {
				g.Set(i, j, k, true)
			}
		}
	}
	return g
}

func TestIsSimpleInteriorIsNot(t *testing.T) {
	g := solidBlock(5, 5, 5)
	// A fully interior voxel has no background face-neighbor component, so
	// it is not simple.
	if IsSimple(g, 4, 4, 4) {
		t.Error("interior voxel reported simple")
	}
}

func TestIsSimpleCornerIs(t *testing.T) {
	g := solidBlock(3, 3, 3)
	if !IsSimple(g, 2, 2, 2) {
		t.Error("block corner voxel should be simple")
	}
}

func TestIsSimpleIsolatedIsNot(t *testing.T) {
	g := voxel.MustNewGrid(5, 5, 5, geom.Vec3{}, 1)
	g.Set(2, 2, 2, true)
	// An isolated voxel has zero object components in its neighborhood —
	// deleting it destroys a component.
	if IsSimple(g, 2, 2, 2) {
		t.Error("isolated voxel reported simple")
	}
}

func TestIsSimpleBridgeIsNot(t *testing.T) {
	// Two blobs joined by a single voxel: the bridge voxel is not simple
	// (its neighborhood has two object components).
	g := voxel.MustNewGrid(9, 5, 5, geom.Vec3{}, 1)
	g.Set(1, 2, 2, true)
	g.Set(2, 2, 2, true)
	g.Set(3, 2, 2, true) // bridge
	g.Set(4, 2, 2, true)
	g.Set(5, 2, 2, true)
	if IsSimple(g, 3, 2, 2) {
		t.Error("bridge voxel reported simple")
	}
}

func thinned(t *testing.T, g *voxel.Grid) *voxel.Grid {
	t.Helper()
	return Thin(g, DefaultOptions())
}

func TestThinPreservesComponentCount(t *testing.T) {
	g := voxel.MustNewGrid(20, 10, 10, geom.Vec3{}, 1)
	// Two separate blocks.
	for i := 2; i < 6; i++ {
		for j := 2; j < 6; j++ {
			for k := 2; k < 6; k++ {
				g.Set(i, j, k, true)
				g.Set(i+10, j, k, true)
			}
		}
	}
	before, _ := g.Components(26)
	s := thinned(t, g)
	after, _ := s.Components(26)
	if before != after {
		t.Errorf("components changed: %d -> %d", before, after)
	}
	if s.Count() == 0 {
		t.Error("skeleton empty")
	}
	if s.Count() >= g.Count() {
		t.Errorf("no thinning happened: %d -> %d", g.Count(), s.Count())
	}
}

func TestThinSkeletonIsSubset(t *testing.T) {
	g := solidBlock(6, 4, 4)
	s := thinned(t, g)
	ok := true
	s.ForEachSet(func(i, j, k int) {
		if !g.Get(i, j, k) {
			ok = false
		}
	})
	if !ok {
		t.Error("skeleton contains voxels outside the object")
	}
}

func TestThinElongatedBoxGivesCurve(t *testing.T) {
	// A long thin bar should thin to (roughly) a 1-voxel-wide curve.
	g := voxel.MustNewGrid(44, 8, 8, geom.Vec3{}, 1)
	for i := 2; i < 42; i++ {
		for j := 2; j < 6; j++ {
			for k := 2; k < 6; k++ {
				g.Set(i, j, k, true)
			}
		}
	}
	s := thinned(t, g)
	if n, _ := s.Components(26); n != 1 {
		t.Fatalf("skeleton components = %d", n)
	}
	// The curve should span most of the bar length but be thin: voxel
	// count close to the length, far below the volume.
	if s.Count() < 30 || s.Count() > 80 {
		t.Errorf("skeleton size = %d, want ≈40 for a 40-long bar", s.Count())
	}
	// Almost all skeleton voxels should have ≤2 neighbors (a curve).
	thick := 0
	s.ForEachSet(func(i, j, k int) {
		if countObjectNeighbors(s, i, j, k) > 2 {
			thick++
		}
	})
	if thick > s.Count()/4 {
		t.Errorf("%d of %d skeleton voxels are thick", thick, s.Count())
	}
}

func TestThinTorusKeepsLoop(t *testing.T) {
	// A voxelized torus must thin to a closed loop: one component, no
	// endpoints, and every voxel with exactly two neighbors.
	mesh, err := geom.Torus(3, 1, 48, 24)
	if err != nil {
		t.Fatal(err)
	}
	g, err := voxel.Voxelize(mesh, 32)
	if err != nil {
		t.Fatal(err)
	}
	s := thinned(t, g)
	if n, _ := s.Components(26); n != 1 {
		t.Fatalf("torus skeleton components = %d", n)
	}
	endpoints := 0
	s.ForEachSet(func(i, j, k int) {
		if countObjectNeighbors(s, i, j, k) <= 1 {
			endpoints++
		}
	})
	if endpoints != 0 {
		t.Errorf("torus skeleton has %d endpoints, want 0 (closed loop)", endpoints)
	}
	if s.Count() < 10 {
		t.Errorf("torus skeleton suspiciously small: %d voxels", s.Count())
	}
}

func TestThinSphereWithoutEndpointPreservation(t *testing.T) {
	// Without endpoint preservation a solid ball collapses to a point (or
	// a tiny cluster).
	mesh := geom.Sphere(1, 12, 16)
	g, err := voxel.Voxelize(mesh, 20)
	if err != nil {
		t.Fatal(err)
	}
	s := Thin(g, Options{PreserveEndpoints: false})
	if s.Count() == 0 {
		t.Fatal("ball vanished entirely")
	}
	if s.Count() > 8 {
		t.Errorf("ball skeleton = %d voxels, want a near-point", s.Count())
	}
	if n, _ := s.Components(26); n != 1 {
		t.Errorf("ball skeleton components = %d", n)
	}
}

func TestThinNeverEmptiesObject(t *testing.T) {
	g := voxel.MustNewGrid(5, 5, 5, geom.Vec3{}, 1)
	g.Set(2, 2, 2, true)
	s := thinned(t, g)
	if s.Count() != 1 {
		t.Errorf("single voxel object: skeleton count = %d, want 1", s.Count())
	}
}

func TestThinMaxPassesBound(t *testing.T) {
	g := solidBlock(10, 10, 10)
	s := Thin(g, Options{PreserveEndpoints: true, MaxPasses: 1})
	// One cycle must have deleted something but not everything.
	if s.Count() >= g.Count() || s.Count() == 0 {
		t.Errorf("bounded thinning: %d -> %d", g.Count(), s.Count())
	}
}

func TestThinDoesNotModifyInput(t *testing.T) {
	g := solidBlock(4, 4, 4)
	before := g.Count()
	_ = thinned(t, g)
	if g.Count() != before {
		t.Error("Thin modified its input grid")
	}
}
