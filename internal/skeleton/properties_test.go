package skeleton

import (
	"math/rand"
	"testing"

	"threedess/internal/geom"
	"threedess/internal/voxel"
)

// Property: thinning preserves the number of 26-connected components for
// random multi-component objects.
func TestQuickThinningPreservesComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(250))
	for trial := 0; trial < 10; trial++ {
		g := voxel.MustNewGrid(40, 20, 20, geom.Vec3{}, 1)
		// Drop 2-4 random solid blocks, possibly touching.
		nBlocks := 2 + rng.Intn(3)
		for b := 0; b < nBlocks; b++ {
			x0, y0, z0 := 2+rng.Intn(25), 2+rng.Intn(10), 2+rng.Intn(10)
			dx, dy, dz := 3+rng.Intn(8), 3+rng.Intn(6), 3+rng.Intn(6)
			for i := x0; i < minI(x0+dx, 38); i++ {
				for j := y0; j < minI(y0+dy, 18); j++ {
					for k := z0; k < minI(z0+dz, 18); k++ {
						g.Set(i, j, k, true)
					}
				}
			}
		}
		before, _ := g.Components(26)
		s := Thin(g, DefaultOptions())
		after, _ := s.Components(26)
		if before != after {
			t.Fatalf("trial %d: components %d -> %d", trial, before, after)
		}
		// Skeleton must be a subset and non-empty.
		if s.Count() == 0 || s.Count() > g.Count() {
			t.Fatalf("trial %d: count %d -> %d", trial, g.Count(), s.Count())
		}
		bad := false
		s.ForEachSet(func(i, j, k int) {
			if !g.Get(i, j, k) {
				bad = true
			}
		})
		if bad {
			t.Fatalf("trial %d: skeleton escaped the object", trial)
		}
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Property: thinning is idempotent — thinning a skeleton changes nothing.
func TestThinningIdempotent(t *testing.T) {
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(12, 3, 3))
	g, err := voxel.Voxelize(mesh, 36)
	if err != nil {
		t.Fatal(err)
	}
	s1 := Thin(g, DefaultOptions())
	s2 := Thin(s1, DefaultOptions())
	if !s1.Equal(s2) {
		t.Errorf("thinning not idempotent: %d -> %d voxels", s1.Count(), s2.Count())
	}
}

// A plate with two holes must keep its two tunnels: the skeleton contains
// cycles (verified via its cycle rank |E|−|V|+|C| in the voxel adjacency
// graph being ≥ 2... here we simply check the two holes remain unfilled
// and the skeleton stays one component).
func TestThinningKeepsTunnels(t *testing.T) {
	outer := geom.RectPolygon(0, 0, 20, 10)
	holes := []geom.Polygon{
		geom.CirclePolygon(geom.XY(6, 5), 2, 20, 0),
		geom.CirclePolygon(geom.XY(14, 5), 2, 20, 0.4),
	}
	mesh, err := geom.Extrude(outer, holes, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := voxel.Voxelize(mesh, 40)
	if err != nil {
		t.Fatal(err)
	}
	s := Thin(g, DefaultOptions())
	if n, _ := s.Components(26); n != 1 {
		t.Fatalf("skeleton components = %d", n)
	}
	// Cycle rank of the skeleton's 26-adjacency graph ≥ 2 (two loops).
	V := s.Count()
	E := 0
	s.ForEachSet(func(i, j, k int) {
		for _, d := range voxel.Neighbors26 {
			if s.Get(i+d[0], j+d[1], k+d[2]) {
				E++
			}
		}
	})
	E /= 2
	cycleRank := E - V + 1
	if cycleRank < 2 {
		t.Errorf("skeleton cycle rank = %d, want ≥ 2 (two tunnels)", cycleRank)
	}
}
