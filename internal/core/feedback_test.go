package core

import (
	"context"
	"math"
	"testing"

	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/shapedb"
)

// shapedbDB aliases the store type for test helpers.
type shapedbDB = shapedb.DB

func openMemDB() (*shapedb.DB, error) { return shapedb.Open("", features.Options{}) }

func memMesh() *geom.Mesh { return geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)) }

func TestReconstructQueryMovesTowardRelevant(t *testing.T) {
	db, ids := synthDB(t)
	e := NewEngine(db)
	q := queryAt(t, db, 10, 10)
	fb := Feedback{Relevant: []int64{ids[0], ids[1]}} // pm ≈ 0, 1
	out, err := e.ReconstructQuery(q, features.PrincipalMoments, fb, RocchioParams{Alpha: 0, Beta: 1, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Pure-relevant reconstruction: q' = mean(relevant) = 0.5 per dim.
	for i, v := range out[features.PrincipalMoments] {
		if math.Abs(v-0.5) > 1e-12 {
			t.Errorf("dim %d = %v, want 0.5", i, v)
		}
	}
	// Other kinds untouched.
	for i, v := range out[features.GeometricParams] {
		if v != q[features.GeometricParams][i] {
			t.Error("unrelated feature modified")
		}
	}
	// Input not modified.
	if q[features.PrincipalMoments][0] != 10 {
		t.Error("input query modified")
	}
}

func TestReconstructQueryPushesFromIrrelevant(t *testing.T) {
	db, ids := synthDB(t)
	e := NewEngine(db)
	q := queryAt(t, db, 0, 0)
	fb := Feedback{Irrelevant: []int64{ids[5]}} // pm = 80
	out, err := e.ReconstructQuery(q, features.PrincipalMoments, fb, RocchioParams{Alpha: 1, Beta: 0, Gamma: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out[features.PrincipalMoments] {
		if math.Abs(v-(-8)) > 1e-12 {
			t.Errorf("dim %d = %v, want -8", i, v)
		}
	}
}

func TestReconstructQueryNoFeedbackIsClone(t *testing.T) {
	db, _ := synthDB(t)
	e := NewEngine(db)
	q := queryAt(t, db, 3, 4)
	out, err := e.ReconstructQuery(q, features.PrincipalMoments, Feedback{}, DefaultRocchio)
	if err != nil {
		t.Fatal(err)
	}
	out[features.PrincipalMoments][0] = 999
	if q[features.PrincipalMoments][0] == 999 {
		t.Error("clone shares storage")
	}
}

func TestReconstructQueryErrors(t *testing.T) {
	db, ids := synthDB(t)
	e := NewEngine(db)
	q := queryAt(t, db, 0, 0)
	if _, err := e.ReconstructQuery(q, features.HigherOrder, Feedback{Relevant: ids[:1]}, DefaultRocchio); err == nil {
		t.Error("missing query feature accepted")
	}
	if _, err := e.ReconstructQuery(q, features.PrincipalMoments, Feedback{Relevant: []int64{9999}}, DefaultRocchio); err == nil {
		t.Error("unknown relevant id accepted")
	}
}

func TestReconstructionImprovesRetrieval(t *testing.T) {
	// A query landing between two groups is pulled into the right one by
	// positive feedback.
	db, ids := synthDB(t)
	e := NewEngine(db)
	q := queryAt(t, db, 21, 21) // between group 1 (≈0-2) and group 2 (≈40)
	fb := Feedback{Relevant: []int64{ids[3]}, Irrelevant: []int64{ids[0]}}
	q2, err := e.ReconstructQuery(q, features.PrincipalMoments, fb, DefaultRocchio)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.SearchTopK(context.Background(), q2, Options{Feature: features.PrincipalMoments, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Group != 2 || res[1].Group != 2 {
		t.Errorf("after feedback, top-2 groups = %d,%d, want group 2", res[0].Group, res[1].Group)
	}
}

func TestReconfigureWeights(t *testing.T) {
	db, relevant := weightTestDB(t)
	e := NewEngine(db)
	w, err := e.ReconfigureWeights(features.PrincipalMoments, Feedback{Relevant: relevant})
	if err != nil {
		t.Fatal(err)
	}
	// Relevant shapes agree on dim 0 (variance ~0) and disagree on dim 1:
	// weight(dim0) ≫ weight(dim1).
	if w[0] <= w[1] {
		t.Errorf("weights = %v, want w[0] > w[1]", w)
	}
	// Normalized to mean 1.
	sum := 0.0
	for _, x := range w {
		sum += x
	}
	if math.Abs(sum/float64(len(w))-1) > 1e-9 {
		t.Errorf("weights mean = %v, want 1", sum/float64(len(w)))
	}
}

// weightTestDB builds a DB whose "relevant" shapes agree on dimension 0
// of the principal-moments vector but scatter on the others.
func weightTestDB(t *testing.T) (db *shapedbDB, relevant []int64) {
	t.Helper()
	d, err := openMemDB()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	opts := d.Options()
	mesh := memMesh()
	for i := 0; i < 3; i++ {
		v := make(features.Vector, opts.Dim(features.PrincipalMoments))
		v[0] = 5                // perfectly agreed
		v[1] = float64(i) * 10  // scattered
		v[2] = float64(i%2) * 3 // mildly scattered
		id, err := d.Insert("r", 1, mesh, features.Set{features.PrincipalMoments: v})
		if err != nil {
			t.Fatal(err)
		}
		relevant = append(relevant, id)
	}
	return d, relevant
}

func TestReconfigureWeightsErrors(t *testing.T) {
	db, ids := synthDB(t)
	e := NewEngine(db)
	if _, err := e.ReconfigureWeights(features.PrincipalMoments, Feedback{Relevant: ids[:1]}); err == nil {
		t.Error("single relevant shape accepted")
	}
	if _, err := e.ReconfigureWeights(features.PrincipalMoments, Feedback{Relevant: []int64{9998, 9999}}); err == nil {
		t.Error("unknown ids accepted")
	}
}

func TestReconfigureWeightsUniformWhenIdentical(t *testing.T) {
	db, ids := synthDB(t)
	e := NewEngine(db)
	// a0 compared with itself twice: zero variance everywhere → uniform.
	w, err := e.ReconfigureWeights(features.PrincipalMoments, Feedback{Relevant: []int64{ids[0], ids[0]}})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range w {
		if x != 1 {
			t.Errorf("weights = %v, want all 1", w)
		}
	}
}

func TestReconfigureFeatureWeights(t *testing.T) {
	db, ids := synthDB(t)
	e := NewEngine(db)
	// Query matches group 1 in pm space (distance ≈ 0) but is far in gp
	// space → pm gets more weight.
	q := queryAt(t, db, 1, 100)
	w, err := e.ReconfigureFeatureWeights(q,
		[]features.Kind{features.PrincipalMoments, features.GeometricParams},
		Feedback{Relevant: []int64{ids[0], ids[1], ids[2]}})
	if err != nil {
		t.Fatal(err)
	}
	if w[features.PrincipalMoments] <= w[features.GeometricParams] {
		t.Errorf("feature weights = %v, want pm > gp", w)
	}
	sum := w[features.PrincipalMoments] + w[features.GeometricParams]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum = %v", sum)
	}
	if _, err := e.ReconfigureFeatureWeights(q, nil, Feedback{}); err == nil {
		t.Error("empty feedback accepted")
	}
}
