package core

import (
	"fmt"
	"math"

	"threedess/internal/features"
)

// Feedback carries one round of relevance judgments: the shapes a user
// marked relevant and irrelevant on the result interface (§2.2).
type Feedback struct {
	Relevant   []int64
	Irrelevant []int64
}

// RocchioParams are the mixing coefficients of query reconstruction:
// q' = Alpha·q + Beta·mean(relevant) − Gamma·mean(irrelevant).
type RocchioParams struct {
	Alpha, Beta, Gamma float64
}

// DefaultRocchio keeps Alpha + Beta − Gamma = 1, so the reconstructed
// query is an affine combination that stays inside the data region. (The
// classic IR parameterization (1.0, 0.75, 0.15) assumes cosine similarity
// over normalized vectors; under a Euclidean metric it inflates the query
// magnitude by ~75% and pushes it away from every stored shape.)
var DefaultRocchio = RocchioParams{Alpha: 0.4, Beta: 0.7, Gamma: 0.1}

// ReconstructQuery implements the paper's query-reconstruction feedback
// mechanism: the query vector of the given feature kind is moved toward
// the centroid of the relevant shapes and away from the centroid of the
// irrelevant ones. It returns a new query set (the input is not
// modified); other feature kinds are carried over unchanged.
func (e *Engine) ReconstructQuery(query features.Set, kind features.Kind, fb Feedback, p RocchioParams) (features.Set, error) {
	qv, ok := query[kind]
	if !ok {
		return nil, fmt.Errorf("core: query has no %v vector", kind)
	}
	if len(fb.Relevant) == 0 && len(fb.Irrelevant) == 0 {
		return query.Clone(), nil
	}
	relMean, err := e.meanVector(kind, fb.Relevant)
	if err != nil {
		return nil, err
	}
	irrMean, err := e.meanVector(kind, fb.Irrelevant)
	if err != nil {
		return nil, err
	}
	out := query.Clone()
	nv := make(features.Vector, len(qv))
	for i := range qv {
		nv[i] = p.Alpha * qv[i]
		if relMean != nil {
			nv[i] += p.Beta * relMean[i]
		}
		if irrMean != nil {
			nv[i] -= p.Gamma * irrMean[i]
		}
	}
	out[kind] = nv
	return out, nil
}

// meanVector averages the stored vectors of the given shapes (nil for an
// empty id list).
func (e *Engine) meanVector(kind features.Kind, ids []int64) (features.Vector, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	var mean features.Vector
	count := 0
	for _, id := range ids {
		rec, ok := e.db.Get(id)
		if !ok {
			return nil, fmt.Errorf("core: feedback references unknown shape %d", id)
		}
		v, ok := rec.Features[kind]
		if !ok {
			return nil, fmt.Errorf("core: shape %d has no %v vector", id, kind)
		}
		if mean == nil {
			mean = make(features.Vector, len(v))
		}
		for i := range v {
			mean[i] += v[i]
		}
		count++
	}
	for i := range mean {
		mean[i] /= float64(count)
	}
	return mean, nil
}

// ReconfigureWeights implements the paper's weight-reconfiguration
// feedback mechanism for one feature kind: dimensions on which the
// relevant shapes agree receive high weight, dimensions with large spread
// receive low weight. Agreement is measured on a common scale — each
// dimension's variance is normalized by that dimension's database-wide
// range — so a dimension with tiny absolute magnitude (and therefore tiny
// absolute variance) cannot capture all the weight. Weights are normalized
// to mean 1 so Equation 4.4's dmax scale stays meaningful. At least two
// relevant shapes are required.
func (e *Engine) ReconfigureWeights(kind features.Kind, fb Feedback) ([]float64, error) {
	if len(fb.Relevant) < 2 {
		return nil, fmt.Errorf("core: weight reconfiguration needs ≥2 relevant shapes, got %d", len(fb.Relevant))
	}
	mean, err := e.meanVector(kind, fb.Relevant)
	if err != nil {
		return nil, err
	}
	dim := len(mean)
	variance := make([]float64, dim)
	for _, id := range fb.Relevant {
		rec, _ := e.db.Get(id)
		v := rec.Features[kind]
		for i := range v {
			d := v[i] - mean[i]
			variance[i] += d * d
		}
	}
	ranges := e.db.DimRanges(kind)
	maxRel := 0.0
	for i := range variance {
		variance[i] /= float64(len(fb.Relevant))
		// Relative variance: spread of the relevant set as a fraction of
		// the feature space's extent along this dimension.
		if ranges != nil && ranges[i] > 1e-300 {
			variance[i] /= ranges[i] * ranges[i]
		}
		if variance[i] > maxRel {
			maxRel = variance[i]
		}
	}
	// Floor each relative variance at a fraction of the largest so one
	// fully-agreed dimension cannot take all the weight.
	floor := maxRel * 1e-2
	if floor == 0 {
		// All dimensions identical across relevant shapes: keep uniform.
		w := make([]float64, dim)
		for i := range w {
			w[i] = 1
		}
		return w, nil
	}
	w := make([]float64, dim)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Max(variance[i], floor)
		sum += w[i]
	}
	for i := range w {
		w[i] *= float64(dim) / sum // normalize to mean 1
	}
	return w, nil
}

// ReconfigureFeatureWeights computes per-feature weights for SearchCombined
// from feedback: a feature kind whose metric keeps the relevant shapes
// close to the query (relative to dmax) is trusted more. Returns weights
// normalized to sum 1 over the given kinds.
func (e *Engine) ReconfigureFeatureWeights(query features.Set, kinds []features.Kind, fb Feedback) (map[features.Kind]float64, error) {
	if len(fb.Relevant) == 0 {
		return nil, fmt.Errorf("core: feature weight reconfiguration needs relevant shapes")
	}
	raw := make(map[features.Kind]float64, len(kinds))
	sum := 0.0
	for _, kind := range kinds {
		qv, ok := query[kind]
		if !ok {
			return nil, fmt.Errorf("core: query has no %v vector", kind)
		}
		dmax := e.db.DMax(kind)
		total := 0.0
		for _, id := range fb.Relevant {
			rec, ok := e.db.Get(id)
			if !ok {
				return nil, fmt.Errorf("core: feedback references unknown shape %d", id)
			}
			v, ok := rec.Features[kind]
			if !ok {
				return nil, fmt.Errorf("core: shape %d has no %v vector", id, kind)
			}
			total += WeightedDistance(qv, v, nil) / dmax
		}
		meanDist := total / float64(len(fb.Relevant))
		w := 1 / (meanDist + 1e-6)
		raw[kind] = w
		sum += w
	}
	for k := range raw {
		raw[k] /= sum
	}
	return raw, nil
}
