// Package core is the 3DESS search engine — the paper's primary
// contribution. It ties the feature-extraction pipeline, the shape
// database, and the R-tree indexes into the query flows of §2.4:
// query-by-example with a chosen feature vector, threshold (similarity)
// search under the weighted Euclidean measure of Equations 4.3–4.4, top-k
// search, the multi-step refinement strategy of §4.2, relevance feedback
// (query reconstruction and weight reconfiguration, §2.2), and
// cluster-based browsing.
package core

import (
	"fmt"
	"math"
	"sort"

	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/rtree"
	"threedess/internal/shapedb"
)

// Engine executes shape queries against a database.
type Engine struct {
	db        *shapedb.DB
	extractor *features.Extractor
}

// NewEngine builds an engine over db, extracting query features with the
// database's feature options.
func NewEngine(db *shapedb.DB) *Engine {
	return &Engine{
		db:        db,
		extractor: features.NewExtractor(db.Options()),
	}
}

// DB returns the underlying database.
func (e *Engine) DB() *shapedb.DB { return e.db }

// Extractor returns the query feature extractor.
func (e *Engine) Extractor() *features.Extractor { return e.extractor }

// Result is one retrieved shape.
type Result struct {
	ID         int64
	Name       string
	Group      int
	Distance   float64 // weighted Euclidean distance (Equation 4.3)
	Similarity float64 // 1 − d/dmax (Equation 4.4), clamped to [0, 1]
}

// Options configure a single-feature search.
type Options struct {
	// Feature selects which descriptor drives the search.
	Feature features.Kind
	// Weights are per-dimension weights of Equation 4.3. Nil means
	// uniform. Non-uniform weights bypass the R-tree (whose metric is
	// unweighted) and scan, exactly like the prototype's reconfigured
	// queries.
	Weights []float64
	// Threshold is the minimum similarity for SearchThreshold (0..1).
	Threshold float64
	// K is the result count for SearchTopK.
	K int
}

// WeightedDistance evaluates Equation 4.3.
func WeightedDistance(q, x features.Vector, w []float64) float64 {
	sum := 0.0
	for i := range q {
		d := q[i] - x[i]
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		sum += wi * d * d
	}
	return math.Sqrt(sum)
}

// Similarity evaluates Equation 4.4 for a distance under the given dmax,
// clamping to [0, 1].
func Similarity(dist, dmax float64) float64 {
	if dmax <= 0 {
		return 0
	}
	s := 1 - dist/dmax
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func (e *Engine) checkOptions(opt *Options, query features.Set) (features.Vector, error) {
	if !opt.Feature.Valid() {
		return nil, fmt.Errorf("core: invalid feature kind %v", opt.Feature)
	}
	qv, ok := query[opt.Feature]
	if !ok {
		return nil, fmt.Errorf("core: query has no %v vector", opt.Feature)
	}
	if opt.Weights != nil && len(opt.Weights) != len(qv) {
		return nil, fmt.Errorf("core: %d weights for %d-dimensional feature %v",
			len(opt.Weights), len(qv), opt.Feature)
	}
	if opt.Weights != nil {
		for i, w := range opt.Weights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("core: invalid weight %g at dimension %d", w, i)
			}
		}
	}
	return qv, nil
}

// ExtractQuery runs feature extraction on a query mesh for the given
// kinds (nil = the four core descriptors).
func (e *Engine) ExtractQuery(mesh *geom.Mesh, kinds []features.Kind) (features.Set, error) {
	if kinds == nil {
		kinds = features.CoreKinds
	}
	return e.extractor.Extract(mesh, kinds)
}

// QueryFeatures returns the stored feature set of a database shape, for
// query-by-browsing ("pick a model and submit it as an initial query").
func (e *Engine) QueryFeatures(id int64) (features.Set, error) {
	rec, ok := e.db.Get(id)
	if !ok {
		return nil, fmt.Errorf("core: no shape with id %d", id)
	}
	return rec.Features, nil
}

// SearchThreshold returns every shape whose similarity to the query meets
// opt.Threshold, most similar first (the paper's §4.1 query mode).
func (e *Engine) SearchThreshold(query features.Set, opt Options) ([]Result, error) {
	qv, err := e.checkOptions(&opt, query)
	if err != nil {
		return nil, err
	}
	if opt.Threshold < 0 || opt.Threshold > 1 {
		return nil, fmt.Errorf("core: threshold %g outside [0, 1]", opt.Threshold)
	}
	dmax := e.db.DMax(opt.Feature)
	if opt.Weights == nil {
		// Equation 4.4: similarity ≥ t ⇔ distance ≤ (1−t)·dmax. Serve
		// through the index.
		radius := (1 - opt.Threshold) * dmax
		nn, err := e.db.WithinRadius(opt.Feature, qv, radius)
		if err != nil {
			return nil, err
		}
		return e.toResults(nn, dmax), nil
	}
	return e.scan(qv, opt, func(r Result) bool { return r.Similarity >= opt.Threshold }, 0, dmax)
}

// SearchTopK returns the opt.K most similar shapes, most similar first.
func (e *Engine) SearchTopK(query features.Set, opt Options) ([]Result, error) {
	qv, err := e.checkOptions(&opt, query)
	if err != nil {
		return nil, err
	}
	if opt.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", opt.K)
	}
	dmax := e.db.DMax(opt.Feature)
	if opt.Weights == nil {
		nn, err := e.db.KNN(opt.Feature, qv, opt.K)
		if err != nil {
			return nil, err
		}
		return e.toResults(nn, dmax), nil
	}
	return e.scan(qv, opt, nil, opt.K, dmax)
}

// scan is the weighted-distance fallback: a full scan ranked by Equation
// 4.3. keep filters results (nil keeps everything); k > 0 truncates.
func (e *Engine) scan(qv features.Vector, opt Options, keep func(Result) bool, k int, dmax float64) ([]Result, error) {
	var out []Result
	var scanErr error
	e.db.ForEach(func(rec *shapedb.Record) {
		if scanErr != nil {
			return
		}
		xv, ok := rec.Features[opt.Feature]
		if !ok {
			return
		}
		if len(xv) != len(qv) {
			scanErr = fmt.Errorf("core: stored feature %v of shape %d has dimension %d, query %d",
				opt.Feature, rec.ID, len(xv), len(qv))
			return
		}
		d := WeightedDistance(qv, xv, opt.Weights)
		r := Result{
			ID:         rec.ID,
			Name:       rec.Name,
			Group:      rec.Group,
			Distance:   d,
			Similarity: Similarity(d, dmax),
		}
		if keep == nil || keep(r) {
			out = append(out, r)
		}
	})
	if scanErr != nil {
		return nil, scanErr
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

func (e *Engine) toResults(nn []rtree.Neighbor, dmax float64) []Result {
	out := make([]Result, 0, len(nn))
	for _, n := range nn {
		rec, ok := e.db.Get(n.ID)
		if !ok {
			continue
		}
		out = append(out, Result{
			ID:         n.ID,
			Name:       rec.Name,
			Group:      rec.Group,
			Distance:   n.Dist,
			Similarity: Similarity(n.Dist, dmax),
		})
	}
	return out
}

// ExcludeID filters a result list in place, dropping the given id (used to
// drop the query shape itself when querying by a database member, since
// "it is guaranteed to be retrieved").
func ExcludeID(results []Result, id int64) []Result {
	out := results[:0]
	for _, r := range results {
		if r.ID != id {
			out = append(out, r)
		}
	}
	return out
}
