// Package core is the 3DESS search engine — the paper's primary
// contribution. It ties the feature-extraction pipeline, the shape
// database, and the R-tree indexes into the query flows of §2.4:
// query-by-example with a chosen feature vector, threshold (similarity)
// search under the weighted Euclidean measure of Equations 4.3–4.4, top-k
// search, the multi-step refinement strategy of §4.2, relevance feedback
// (query reconstruction and weight reconfiguration, §2.2), and
// cluster-based browsing.
package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"threedess/internal/colstore"
	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/rtree"
	"threedess/internal/shapedb"
	"threedess/internal/workpool"
)

// Engine executes shape queries against a database.
type Engine struct {
	db        *shapedb.DB
	extractor *features.Extractor
	// workers bounds the pool used by bulk ingest and sharded scans
	// (≤ 0 = one per logical CPU). It never changes results, only
	// throughput.
	workers int
	// cstore holds per-kind columnar descriptor copies for the two-stage
	// weighted search path; mode is the engine-wide default ScanMode.
	// Neither changes results — two-stage search is exact — only how a
	// weighted query executes.
	cstore *colstore.Manager
	mode   ScanMode
}

// NewEngine builds an engine over db, extracting query features with the
// database's feature options. The worker-pool size is taken from the
// database's feature options (Options.Workers).
func NewEngine(db *shapedb.DB) *Engine {
	return &Engine{
		db:        db,
		extractor: features.NewExtractor(db.Options()),
		workers:   db.Options().Workers,
		cstore:    colstore.NewManager(db),
	}
}

// SetWorkers overrides the engine's worker-pool size (≤ 0 = one worker
// per logical CPU) and returns the engine. Results are identical at every
// setting; only throughput changes.
func (e *Engine) SetWorkers(n int) *Engine {
	e.workers = n
	return e
}

// DB returns the underlying database.
func (e *Engine) DB() *shapedb.DB { return e.db }

// Extractor returns the query feature extractor.
func (e *Engine) Extractor() *features.Extractor { return e.extractor }

// Result is one retrieved shape.
type Result struct {
	ID         int64
	Name       string
	Group      int
	Distance   float64 // weighted Euclidean distance (Equation 4.3)
	Similarity float64 // 1 − d/dmax (Equation 4.4), clamped to [0, 1]
}

// Options configure a single-feature search.
type Options struct {
	// Feature selects which descriptor drives the search.
	Feature features.Kind
	// Weights are per-dimension weights of Equation 4.3. Nil means
	// uniform. Non-uniform weights bypass the R-tree (whose metric is
	// unweighted) and scan, exactly like the prototype's reconfigured
	// queries.
	Weights []float64
	// Threshold is the minimum similarity for SearchThreshold (0..1).
	Threshold float64
	// K is the result count for SearchTopK.
	K int
	// Mode selects how a weighted search executes: ScanAuto (default)
	// defers to the engine's configured mode, ScanExact forces the
	// exhaustive scan, ScanTwoStage forces the columnar filter-and-refine
	// path. Every mode returns identical results.
	Mode ScanMode
	// DMax overrides the Equation-4.4 normalizer (0 = derive it from this
	// database's feature-space bounding box, the default). A scatter-gather
	// coordinator passes the cluster-global diagonal here so every shard's
	// similarity values — and threshold cutoffs — agree with a single node
	// holding the whole corpus.
	DMax float64
}

// WeightedDistance evaluates Equation 4.3.
func WeightedDistance(q, x features.Vector, w []float64) float64 {
	sum := 0.0
	for i := range q {
		d := q[i] - x[i]
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		sum += wi * d * d
	}
	return math.Sqrt(sum)
}

// Similarity evaluates Equation 4.4 for a distance under the given dmax,
// clamping to [0, 1].
func Similarity(dist, dmax float64) float64 {
	if dmax <= 0 {
		return 0
	}
	s := 1 - dist/dmax
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

func (e *Engine) checkOptions(opt *Options, query features.Set) (features.Vector, error) {
	if !opt.Feature.Valid() {
		return nil, fmt.Errorf("core: invalid feature kind %v", opt.Feature)
	}
	qv, ok := query[opt.Feature]
	if !ok {
		return nil, fmt.Errorf("core: query has no %v vector", opt.Feature)
	}
	for i, x := range qv {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("core: query %v vector has non-finite coordinate %g at dimension %d", opt.Feature, x, i)
		}
	}
	if opt.Weights != nil && len(opt.Weights) != len(qv) {
		return nil, fmt.Errorf("core: %d weights for %d-dimensional feature %v",
			len(opt.Weights), len(qv), opt.Feature)
	}
	if opt.Weights != nil {
		for i, w := range opt.Weights {
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, fmt.Errorf("core: invalid weight %g at dimension %d", w, i)
			}
		}
	}
	if opt.DMax < 0 || math.IsNaN(opt.DMax) || math.IsInf(opt.DMax, 0) {
		return nil, fmt.Errorf("core: invalid dmax override %g", opt.DMax)
	}
	return qv, nil
}

// dmax resolves the Equation-4.4 normalizer for a search: the explicit
// override when one was supplied, the database's own bounding-box diagonal
// otherwise.
func (e *Engine) dmax(opt Options) float64 {
	if opt.DMax > 0 {
		return opt.DMax
	}
	return e.db.DMax(opt.Feature)
}

// ExtractQuery runs feature extraction on a query mesh for the given
// kinds (nil = the four core descriptors).
func (e *Engine) ExtractQuery(mesh *geom.Mesh, kinds []features.Kind) (features.Set, error) {
	if kinds == nil {
		kinds = features.CoreKinds
	}
	return e.extractor.Extract(mesh, kinds)
}

// QueryFeatures returns the stored feature set of a database shape, for
// query-by-browsing ("pick a model and submit it as an initial query").
func (e *Engine) QueryFeatures(id int64) (features.Set, error) {
	rec, ok := e.db.Get(id)
	if !ok {
		return nil, fmt.Errorf("core: no shape with id %d", id)
	}
	return rec.Features, nil
}

// SearchThreshold returns every shape whose similarity to the query meets
// opt.Threshold, most similar first (the paper's §4.1 query mode). ctx
// cancellation (request timeout, client gone, server drain) aborts the
// sharded scan between records and returns the context error.
func (e *Engine) SearchThreshold(ctx context.Context, query features.Set, opt Options) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	qv, err := e.checkOptions(&opt, query)
	if err != nil {
		return nil, err
	}
	if opt.Threshold < 0 || opt.Threshold > 1 {
		return nil, fmt.Errorf("core: threshold %g outside [0, 1]", opt.Threshold)
	}
	dmax := e.dmax(opt)
	if opt.Weights == nil {
		// Equation 4.4: similarity ≥ t ⇔ distance ≤ (1−t)·dmax. Serve
		// through the index.
		radius := (1 - opt.Threshold) * dmax
		nn, err := e.db.WithinRadius(opt.Feature, qv, radius)
		if err != nil {
			return nil, err
		}
		return e.toResults(nn, dmax), nil
	}
	switch mode, forced := e.resolveScanMode(opt); mode {
	case ScanCoarse:
		// Coarse is approximate by design; a forced request surfaces
		// errors so the caller can fall back to exact and drop its
		// degraded marking, never mislabel.
		out, err := e.coarseThreshold(ctx, qv, opt, dmax)
		if err == nil || forced || ctx.Err() != nil {
			return out, err
		}
	case ScanTwoStage:
		out, err := e.twoStageThreshold(ctx, qv, opt, dmax)
		if err == nil || forced || ctx.Err() != nil {
			return out, err
		}
		// Auto-selected two-stage could not serve (store build failure);
		// degrade to the exact scan rather than failing the query.
	}
	return e.scan(ctx, qv, opt, func(r Result) bool { return r.Similarity >= opt.Threshold }, 0, dmax)
}

// SearchTopK returns the opt.K most similar shapes, most similar first.
// ctx cancellation aborts the weighted scan path between records; the
// indexed path checks it once up front.
func (e *Engine) SearchTopK(ctx context.Context, query features.Set, opt Options) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	qv, err := e.checkOptions(&opt, query)
	if err != nil {
		return nil, err
	}
	if opt.K <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", opt.K)
	}
	dmax := e.dmax(opt)
	if opt.Weights == nil {
		nn, err := e.db.KNN(opt.Feature, qv, opt.K)
		if err != nil {
			return nil, err
		}
		return e.toResults(nn, dmax), nil
	}
	switch mode, forced := e.resolveScanMode(opt); mode {
	case ScanCoarse:
		out, err := e.coarseTopK(ctx, qv, opt, dmax)
		if err == nil || forced || ctx.Err() != nil {
			return out, err
		}
	case ScanTwoStage:
		out, err := e.twoStageTopK(ctx, qv, opt, dmax)
		if err == nil || forced || ctx.Err() != nil {
			return out, err
		}
	}
	return e.scan(ctx, qv, opt, nil, opt.K, dmax)
}

// minParallelScan is the snapshot size below which the sharded scan is
// not worth its goroutine fan-out and the scan stays on one worker.
// Goroutine spawn, WaitGroup synchronization, and the partial merge cost
// on the order of a thousand ranked records, so small corpora scan inline.
const minParallelScan = 1024

// scan is the weighted-distance fallback: a full scan ranked by Equation
// 4.3. keep filters results (nil keeps everything); k > 0 truncates.
//
// The scan iterates a lock-free snapshot (shapedb.Snapshot) partitioned
// into contiguous shards across the engine's worker pool; each worker
// ranks its shard into a local partial result (truncated to its own top-k
// when k > 0), and the partials are merged and re-ranked at the end. The
// final (distance, ID) ordering makes the output independent of the shard
// layout, so serial and parallel scans return identical results. A scan
// that resolves to one shard runs on the calling goroutine: spawning a
// worker and merging a single partial only adds latency.
func (e *Engine) scan(ctx context.Context, qv features.Vector, opt Options, keep func(Result) bool, k int, dmax float64) ([]Result, error) {
	recs := e.db.Snapshot()
	workers := workpool.Resolve(e.workers)
	if len(recs) < minParallelScan {
		workers = 1
	}
	shards := workpool.Shards(workers, len(recs))
	partials := make([][]Result, len(shards))
	errs := make([]error, len(shards))
	if len(shards) == 1 {
		partials[0], errs[0] = e.scanShard(ctx, recs, qv, opt, keep, k, dmax)
	} else {
		var wg sync.WaitGroup
		for si, s := range shards {
			wg.Add(1)
			go func(si int, s workpool.Shard) {
				defer wg.Done()
				partials[si], errs[si] = e.scanShard(ctx, recs[s.Lo:s.Hi], qv, opt, keep, k, dmax)
			}(si, s)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var out []Result
	for _, p := range partials {
		out = append(out, p...)
	}
	sortResults(out)
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}

// scanShard ranks one contiguous slice of a snapshot. With k > 0 the
// shard's result is pre-truncated to its local top-k, bounding the merge
// cost at workers·k rows.
func (e *Engine) scanShard(ctx context.Context, recs []*shapedb.Record, qv features.Vector, opt Options, keep func(Result) bool, k int, dmax float64) ([]Result, error) {
	var out []Result
	for i, rec := range recs {
		// Cancellation check amortized over a small block of records so
		// an aborted request stops scanning promptly without paying a
		// per-record synchronization cost.
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		xv, ok := rec.Features[opt.Feature]
		if !ok {
			continue
		}
		if len(xv) != len(qv) {
			return nil, fmt.Errorf("core: stored feature %v of shape %d has dimension %d, query %d",
				opt.Feature, rec.ID, len(xv), len(qv))
		}
		d := WeightedDistance(qv, xv, opt.Weights)
		r := batchResult(rec, d, dmax)
		if keep == nil || keep(r) {
			out = append(out, r)
		}
	}
	if k > 0 && len(out) > k {
		sortResults(out)
		out = out[:k]
	}
	return out, nil
}

// sortResults orders by ascending distance, breaking ties by ID — the
// canonical result order every search path produces.
func sortResults(out []Result) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID < out[j].ID
	})
}

// toResults resolves neighbor IDs to result rows with one GetMany lock
// round-trip instead of a Get per neighbor.
func (e *Engine) toResults(nn []rtree.Neighbor, dmax float64) []Result {
	ids := make([]int64, len(nn))
	for i, n := range nn {
		ids[i] = n.ID
	}
	recs := e.db.GetMany(ids)
	out := make([]Result, 0, len(nn))
	for i, n := range nn {
		rec := recs[i]
		if rec == nil {
			continue
		}
		out = append(out, Result{
			ID:         n.ID,
			Name:       rec.Name,
			Group:      rec.Group,
			Distance:   n.Dist,
			Similarity: Similarity(n.Dist, dmax),
		})
	}
	return out
}

// ExcludeID filters a result list in place, dropping the given id (used to
// drop the query shape itself when querying by a database member, since
// "it is guaranteed to be retrieved").
func ExcludeID(results []Result, id int64) []Result {
	out := results[:0]
	for _, r := range results {
		if r.ID != id {
			out = append(out, r)
		}
	}
	return out
}
