package core

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/shapedb"
)

// randomScanDB fills an in-memory DB with n records whose principal-moment
// vectors sit on a coarse integer grid (so exact-distance ties occur
// constantly) and sprinkles in records that lack the kind entirely, which
// both search paths must skip identically.
func randomScanDB(t *testing.T, rng *rand.Rand, n int) *shapedb.DB {
	t.Helper()
	db, err := shapedb.Open("", features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	opts := db.Options()
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	pmDim := opts.Dim(features.PrincipalMoments)
	gpDim := opts.Dim(features.GeometricParams)
	for i := 0; i < n; i++ {
		set := features.Set{}
		if i%11 == 3 {
			// No principal moments: invisible to a PM search on every path.
			v := make(features.Vector, gpDim)
			for d := range v {
				v[d] = rng.Float64() * 10
			}
			set[features.GeometricParams] = v
		} else {
			v := make(features.Vector, pmDim)
			for d := range v {
				v[d] = float64(rng.Intn(8))
			}
			set[features.PrincipalMoments] = v
		}
		if _, err := db.Insert("r", i%7, mesh, set); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func pmQuery(rng *rand.Rand, db *shapedb.DB) (features.Set, []float64) {
	dim := db.Options().Dim(features.PrincipalMoments)
	v := make(features.Vector, dim)
	w := make([]float64, dim)
	for d := range v {
		v[d] = rng.Float64() * 8
		w[d] = rng.Float64() * 3
	}
	if rng.Intn(4) == 0 {
		w[rng.Intn(dim)] = 0
	}
	return features.Set{features.PrincipalMoments: v}, w
}

// TestTwoStageTopKMatchesExactScan is the equivalence gate for the
// two-stage path: across random corpora, weights, worker counts, and K
// (including K far beyond the corpus), the forced two-stage search must
// return exactly the ranked results of the exhaustive scan — same IDs,
// same order, and bitwise-identical distances and similarities.
func TestTwoStageTopKMatchesExactScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := []int{0, 1, 2, 37, 180, 700}[trial%6]
		if trial == 24 {
			n = 3000 // spills past one coarse block
		}
		db := randomScanDB(t, rng, n)
		e := NewEngine(db).SetWorkers(1 + trial%3)
		query, w := pmQuery(rng, db)
		for _, k := range []int{1, 3, 10, n + 10} {
			opt := Options{Feature: features.PrincipalMoments, Weights: w, K: k}
			opt.Mode = ScanExact
			exact, err := e.SearchTopK(context.Background(), query, opt)
			if err != nil {
				t.Fatalf("trial %d k=%d exact: %v", trial, k, err)
			}
			opt.Mode = ScanTwoStage
			two, err := e.SearchTopK(context.Background(), query, opt)
			if err != nil {
				t.Fatalf("trial %d k=%d two-stage: %v", trial, k, err)
			}
			if !reflect.DeepEqual(exact, two) {
				t.Fatalf("trial %d n=%d k=%d: two-stage diverged\nexact:     %+v\ntwo-stage: %+v",
					trial, n, k, exact, two)
			}
		}
	}
}

// TestTwoStageThresholdMatchesExactScan covers the similarity-threshold
// form, including both boundary thresholds: t=0 must keep every record
// (clamped similarity is never negative) and t=1 keeps only exact hits.
func TestTwoStageThresholdMatchesExactScan(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 12; trial++ {
		db := randomScanDB(t, rng, 150+rng.Intn(300))
		e := NewEngine(db).SetWorkers(1 + trial%3)
		query, w := pmQuery(rng, db)
		for _, th := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			opt := Options{Feature: features.PrincipalMoments, Weights: w, Threshold: th}
			opt.Mode = ScanExact
			exact, err := e.SearchThreshold(context.Background(), query, opt)
			if err != nil {
				t.Fatalf("trial %d t=%g exact: %v", trial, th, err)
			}
			opt.Mode = ScanTwoStage
			two, err := e.SearchThreshold(context.Background(), query, opt)
			if err != nil {
				t.Fatalf("trial %d t=%g two-stage: %v", trial, th, err)
			}
			if !reflect.DeepEqual(exact, two) {
				t.Fatalf("trial %d t=%g: two-stage diverged (%d vs %d results)\nexact:     %+v\ntwo-stage: %+v",
					trial, th, len(exact), len(two), exact, two)
			}
		}
	}
}

// TestTwoStageSurvivesMutations interleaves searches with inserts and
// deletes so the columnar store must rebuild/append between queries, and
// checks equivalence after every mutation batch.
func TestTwoStageSurvivesMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	db := randomScanDB(t, rng, 200)
	e := NewEngine(db).SetWorkers(2)
	check := func(stage string) {
		t.Helper()
		query, w := pmQuery(rng, db)
		opt := Options{Feature: features.PrincipalMoments, Weights: w, K: 12}
		opt.Mode = ScanExact
		exact, err := e.SearchTopK(context.Background(), query, opt)
		if err != nil {
			t.Fatalf("%s exact: %v", stage, err)
		}
		opt.Mode = ScanTwoStage
		two, err := e.SearchTopK(context.Background(), query, opt)
		if err != nil {
			t.Fatalf("%s two-stage: %v", stage, err)
		}
		if !reflect.DeepEqual(exact, two) {
			t.Fatalf("%s: two-stage diverged\nexact:     %+v\ntwo-stage: %+v", stage, exact, two)
		}
	}
	check("initial")

	opts := db.Options()
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	dim := opts.Dim(features.PrincipalMoments)
	for i := 0; i < 40; i++ {
		v := make(features.Vector, dim)
		for d := range v {
			// Far outside the original quantization grid: the append path
			// must clamp into the half-infinite edge cells safely.
			v[d] = 100 + rng.Float64()*50
		}
		if _, err := db.Insert("late", 3, mesh, features.Set{features.PrincipalMoments: v}); err != nil {
			t.Fatal(err)
		}
	}
	check("after out-of-grid appends")

	for _, id := range db.IDs()[:30] {
		if _, err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	check("after deletes")
}

// trippingCtx reports itself alive for the first Err call (the engine's
// entry check) and cancelled afterwards, so cancellation lands inside the
// two-stage block scan rather than before it.
type trippingCtx struct {
	context.Context
	calls atomic.Int32
}

func (c *trippingCtx) Err() error {
	if c.calls.Add(1) > 1 {
		return context.Canceled
	}
	return nil
}

func TestTwoStageHonorsMidScanCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	db := randomScanDB(t, rng, 2500) // > one coarse block
	e := NewEngine(db)
	query, w := pmQuery(rng, db)
	ctx := &trippingCtx{Context: context.Background()}
	_, err := e.SearchTopK(ctx, query, Options{
		Feature: features.PrincipalMoments, Weights: w, K: 5, Mode: ScanTwoStage,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-scan cancel: err = %v, want context.Canceled", err)
	}
}

func TestParseScanMode(t *testing.T) {
	for in, want := range map[string]ScanMode{
		"": ScanAuto, "auto": ScanAuto, "exact": ScanExact,
		"two-stage": ScanTwoStage, "twostage": ScanTwoStage,
	} {
		got, err := ParseScanMode(in)
		if err != nil || got != want {
			t.Errorf("ParseScanMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseScanMode("bogus"); err == nil {
		t.Error("ParseScanMode(bogus) accepted")
	}
	if ScanTwoStage.String() != "two-stage" || ScanExact.String() != "exact" || ScanAuto.String() != "auto" {
		t.Error("ScanMode.String mismatch")
	}
}

// TestScanWorkerCountInvariance pins the satellite fix: the single-shard
// inline scan and the multi-worker sharded scan return identical results.
func TestScanWorkerCountInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	db := randomScanDB(t, rng, 2100) // above minParallelScan
	query, w := pmQuery(rng, db)
	opt := Options{Feature: features.PrincipalMoments, Weights: w, K: 15, Mode: ScanExact}
	base, err := NewEngine(db).SetWorkers(1).SearchTopK(context.Background(), query, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, err := NewEngine(db).SetWorkers(workers).SearchTopK(context.Background(), query, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d scan diverged from serial", workers)
		}
	}
}
