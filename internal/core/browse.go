package core

import (
	"fmt"
	"math"
	"math/rand"

	"threedess/internal/cluster"
	"threedess/internal/features"
)

// BrowseNode is one node of the search-by-browsing hierarchy: the shape
// IDs it covers and its children. Leaves list concrete shapes; drilling
// down follows children.
type BrowseNode struct {
	IDs      []int64
	Children []*BrowseNode
}

// IsLeaf reports whether the node has no children.
func (n *BrowseNode) IsLeaf() bool { return len(n.Children) == 0 }

// ClusterAlgorithm selects which §2.2 algorithm organizes the database.
type ClusterAlgorithm int

const (
	// AlgoKMeans uses k-means++ (the default).
	AlgoKMeans ClusterAlgorithm = iota
	// AlgoSOM uses a self-organizing map.
	AlgoSOM
	// AlgoGA uses genetic-algorithm clustering.
	AlgoGA
)

// String implements fmt.Stringer.
func (a ClusterAlgorithm) String() string {
	switch a {
	case AlgoKMeans:
		return "kmeans"
	case AlgoSOM:
		return "som"
	case AlgoGA:
		return "ga"
	}
	return "unknown"
}

// featureMatrix gathers the stored vectors of one kind plus the matching
// IDs from a lock-free snapshot, skipping shapes without that kind.
func (e *Engine) featureMatrix(kind features.Kind) (points [][]float64, ids []int64) {
	for _, rec := range e.db.Snapshot() {
		v, ok := rec.Features[kind]
		if !ok {
			continue
		}
		points = append(points, []float64(v))
		ids = append(ids, rec.ID)
	}
	return points, ids
}

// ClusterShapes groups every stored shape by the chosen feature and
// algorithm, returning cluster assignments keyed by shape ID plus the
// result object. The paper builds one classification map per feature
// vector; call this once per kind.
func (e *Engine) ClusterShapes(kind features.Kind, algo ClusterAlgorithm, k int, seed int64) (map[int64]int, *cluster.Result, error) {
	points, ids := e.featureMatrix(kind)
	if len(points) == 0 {
		return nil, nil, fmt.Errorf("core: no shapes carry feature %v", kind)
	}
	rng := rand.New(rand.NewSource(seed))
	var res *cluster.Result
	var err error
	switch algo {
	case AlgoKMeans:
		res, err = cluster.KMeans(points, k, rng, 100)
	case AlgoSOM:
		rows := 1
		for rows*rows < k {
			rows++
		}
		res, err = cluster.SOM(points, cluster.SOMOptions{Rows: rows, Cols: (k + rows - 1) / rows}, rng)
	case AlgoGA:
		res, err = cluster.GA(points, cluster.GAOptions{K: k}, rng)
	default:
		return nil, nil, fmt.Errorf("core: unknown clustering algorithm %v", algo)
	}
	if err != nil {
		return nil, nil, err
	}
	byID := make(map[int64]int, len(ids))
	for i, id := range ids {
		byID[id] = res.Assignments[i]
	}
	return byID, res, nil
}

// BuildBrowseHierarchy organizes the database into the drill-down tree of
// the browsing interface, clustering recursively on the given feature.
func (e *Engine) BuildBrowseHierarchy(kind features.Kind, seed int64) (*BrowseNode, error) {
	return e.BuildBrowseHierarchyWeighted(kind, nil, seed)
}

// BuildBrowseHierarchyWeighted builds a *user-specific* browse hierarchy
// (the "dynamic, user-specific classification hierarchy" the paper's §2.2
// names as the better approach): per-dimension weights — typically from
// ReconfigureWeights after feedback — reshape the metric the clustering
// runs under, so the drill-down tree reflects that user's similarity view.
// Nil weights give the uniform metric.
func (e *Engine) BuildBrowseHierarchyWeighted(kind features.Kind, weights []float64, seed int64) (*BrowseNode, error) {
	points, ids := e.featureMatrix(kind)
	if len(points) == 0 {
		return nil, fmt.Errorf("core: no shapes carry feature %v", kind)
	}
	if weights != nil {
		if len(weights) != len(points[0]) {
			return nil, fmt.Errorf("core: %d weights for %d-dimensional feature %v",
				len(weights), len(points[0]), kind)
		}
		// Weighted Euclidean distance = plain Euclidean distance in the
		// space scaled by √w per dimension.
		scaled := make([][]float64, len(points))
		for i, p := range points {
			sp := make([]float64, len(p))
			for d := range p {
				if weights[d] < 0 {
					return nil, fmt.Errorf("core: negative weight at dimension %d", d)
				}
				sp[d] = p[d] * math.Sqrt(weights[d])
			}
			scaled[i] = sp
		}
		points = scaled
	}
	rng := rand.New(rand.NewSource(seed))
	root, err := cluster.BuildHierarchy(points, cluster.HierarchyOptions{Branch: 3, LeafSize: 6}, rng)
	if err != nil {
		return nil, err
	}
	return toBrowseNode(root, ids), nil
}

func toBrowseNode(n *cluster.HierarchyNode, ids []int64) *BrowseNode {
	out := &BrowseNode{IDs: make([]int64, len(n.Items))}
	for i, item := range n.Items {
		out.IDs[i] = ids[item]
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, toBrowseNode(c, ids))
	}
	return out
}
