package core

import (
	"context"
	"fmt"
	"sort"

	"threedess/internal/features"
)

// Step is one stage of a multi-step search: a feature vector, optional
// per-dimension weights, and an optional candidate cut. After the step
// re-orders the surviving candidates by its feature distance, only the
// best Keep candidates survive to the next step (Keep ≤ 0 keeps all) —
// the "filter previous results" operation of the paper's query-processing
// flow chart (Figure 2).
type Step struct {
	Feature features.Kind
	Weights []float64
	Keep    int
}

// MultiStepOptions configure the §4.2 strategy: the first step retrieves
// CandidateSize shapes by its feature; every later step re-orders the
// surviving candidates by its own feature distance; the final K results
// are presented. This mirrors the paper's experiment: "the system first
// retrieves thirty shapes based on moment invariants, uses the geometric
// parameters to reorder these thirty shapes and then presents ten most
// similar shapes".
type MultiStepOptions struct {
	Steps         []Step
	CandidateSize int // default 30
	K             int // default 10
}

// DefaultMultiStepOptions returns the paper's experiment configuration for
// the given step sequence.
func DefaultMultiStepOptions(steps ...Step) MultiStepOptions {
	return MultiStepOptions{Steps: steps, CandidateSize: 30, K: 10}
}

// SearchMultiStep runs the multi-step strategy and returns the final K
// results ordered by the last step's distance. ctx covers the whole
// pipeline: the candidate retrieval honors it, and every re-ranking step
// checks it before touching the store.
func (e *Engine) SearchMultiStep(ctx context.Context, query features.Set, opt MultiStepOptions) ([]Result, error) {
	if len(opt.Steps) == 0 {
		return nil, fmt.Errorf("core: multi-step search needs at least one step")
	}
	if opt.CandidateSize <= 0 {
		opt.CandidateSize = 30
	}
	if opt.K <= 0 {
		opt.K = 10
	}
	// Step 1: retrieve the candidate set.
	first := opt.Steps[0]
	candidates, err := e.SearchTopK(ctx, query, Options{
		Feature: first.Feature,
		Weights: first.Weights,
		K:       opt.CandidateSize,
	})
	if err != nil {
		return nil, fmt.Errorf("core: multi-step step 1 (%v): %w", first.Feature, err)
	}
	if first.Keep > 0 && len(candidates) > first.Keep {
		candidates = candidates[:first.Keep]
	}
	// Later steps: re-rank the surviving candidates by their own feature.
	for si, step := range opt.Steps[1:] {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		qv, ok := query[step.Feature]
		if !ok {
			return nil, fmt.Errorf("core: multi-step step %d: query has no %v vector", si+2, step.Feature)
		}
		if step.Weights != nil && len(step.Weights) != len(qv) {
			return nil, fmt.Errorf("core: multi-step step %d: %d weights for %d dims",
				si+2, len(step.Weights), len(qv))
		}
		dmax := e.db.DMax(step.Feature)
		ids := make([]int64, len(candidates))
		for i, c := range candidates {
			ids[i] = c.ID
		}
		recs := e.db.GetMany(ids)
		rescored := candidates[:0]
		for ci, c := range candidates {
			rec := recs[ci]
			if rec == nil {
				continue
			}
			xv, ok := rec.Features[step.Feature]
			if !ok || len(xv) != len(qv) {
				continue
			}
			d := WeightedDistance(qv, xv, step.Weights)
			c.Distance = d
			c.Similarity = Similarity(d, dmax)
			rescored = append(rescored, c)
		}
		candidates = rescored
		sort.Slice(candidates, func(i, j int) bool {
			if candidates[i].Distance != candidates[j].Distance {
				return candidates[i].Distance < candidates[j].Distance
			}
			return candidates[i].ID < candidates[j].ID
		})
		if step.Keep > 0 && len(candidates) > step.Keep {
			candidates = candidates[:step.Keep]
		}
	}
	if len(candidates) > opt.K {
		candidates = candidates[:opt.K]
	}
	return candidates, nil
}

// SearchCombined ranks shapes by a weighted sum of per-feature normalized
// distances — the "combined feature vectors" baseline the paper contrasts
// with multi-step search. featureWeights maps each kind to its weight in
// the linear combination of dmax-normalized distances (the linear
// combination §3.5.3 mentions for overall similarity).
func (e *Engine) SearchCombined(ctx context.Context, query features.Set, featureWeights map[features.Kind]float64, k int) ([]Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(featureWeights) == 0 {
		return nil, fmt.Errorf("core: combined search needs feature weights")
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: K must be positive, got %d", k)
	}
	type kw struct {
		kind   features.Kind
		weight float64
		qv     features.Vector
		dmax   float64
	}
	var kinds []kw
	for kind, w := range featureWeights {
		if w < 0 {
			return nil, fmt.Errorf("core: negative weight for %v", kind)
		}
		qv, ok := query[kind]
		if !ok {
			return nil, fmt.Errorf("core: query has no %v vector", kind)
		}
		kinds = append(kinds, kw{kind, w, qv, e.db.DMax(kind)})
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].kind < kinds[j].kind })

	var out []Result
	for i, rec := range e.db.Snapshot() {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		score := 0.0
		scorable := true
		for _, f := range kinds {
			xv, ok := rec.Features[f.kind]
			if !ok || len(xv) != len(f.qv) {
				scorable = false
				break
			}
			score += f.weight * WeightedDistance(f.qv, xv, nil) / f.dmax
		}
		if !scorable {
			continue
		}
		out = append(out, Result{
			ID:         rec.ID,
			Name:       rec.Name,
			Group:      rec.Group,
			Distance:   score,
			Similarity: Similarity(score, 1), // score is already normalized
		})
	}
	sortResults(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
