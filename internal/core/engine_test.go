package core

import (
	"context"
	"math"
	"testing"

	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/shapedb"
)

// synthDB builds an in-memory DB with hand-placed feature vectors so
// search behaviour is exactly predictable. Group 1 sits near the origin
// of principal-moment space; group 2 sits far away; geometric params
// reverse the ordering so re-ranking is observable.
func synthDB(t *testing.T) (*shapedb.DB, []int64) {
	t.Helper()
	db, err := shapedb.Open("", features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	opts := db.Options()
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))

	mk := func(pm, gp float64) features.Set {
		set := features.Set{}
		for _, k := range features.CoreKinds {
			v := make(features.Vector, opts.Dim(k))
			base := pm
			if k == features.GeometricParams {
				base = gp
			}
			for i := range v {
				v[i] = base
			}
			set[k] = v
		}
		return set
	}
	var ids []int64
	// Group 1: pm near 0 (0, 1, 2), gp reversed (20, 10, 0).
	specs := []struct {
		pm, gp float64
		group  int
		name   string
	}{
		{0, 20, 1, "a0"},
		{1, 10, 1, "a1"},
		{2, 0, 1, "a2"},
		{40, 40, 2, "b0"},
		{41, 41, 2, "b1"},
		{80, 80, 0, "noise"},
	}
	for _, s := range specs {
		id, err := db.Insert(s.name, s.group, mesh, mk(s.pm, s.gp))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	return db, ids
}

func queryAt(t *testing.T, db *shapedb.DB, pm, gp float64) features.Set {
	t.Helper()
	opts := db.Options()
	set := features.Set{}
	for _, k := range features.CoreKinds {
		v := make(features.Vector, opts.Dim(k))
		base := pm
		if k == features.GeometricParams {
			base = gp
		}
		for i := range v {
			v[i] = base
		}
		set[k] = v
	}
	return set
}

func TestSimilarityFunction(t *testing.T) {
	if s := Similarity(0, 10); s != 1 {
		t.Errorf("Similarity(0) = %v", s)
	}
	if s := Similarity(10, 10); s != 0 {
		t.Errorf("Similarity(dmax) = %v", s)
	}
	if s := Similarity(5, 10); s != 0.5 {
		t.Errorf("Similarity(half) = %v", s)
	}
	if s := Similarity(20, 10); s != 0 {
		t.Errorf("Similarity(>dmax) = %v, want clamp 0", s)
	}
	if s := Similarity(1, 0); s != 0 {
		t.Errorf("Similarity(dmax=0) = %v", s)
	}
}

func TestWeightedDistance(t *testing.T) {
	q := features.Vector{0, 0}
	x := features.Vector{3, 4}
	if d := WeightedDistance(q, x, nil); d != 5 {
		t.Errorf("unweighted = %v", d)
	}
	if d := WeightedDistance(q, x, []float64{1, 0}); d != 3 {
		t.Errorf("weighted = %v", d)
	}
	if d := WeightedDistance(q, x, []float64{4, 0}); d != 6 {
		t.Errorf("weighted×4 = %v", d)
	}
}

func TestSearchTopK(t *testing.T) {
	db, ids := synthDB(t)
	e := NewEngine(db)
	q := queryAt(t, db, 0.4, 0)
	res, err := e.SearchTopK(context.Background(), q, Options{Feature: features.PrincipalMoments, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].ID != ids[0] || res[1].ID != ids[1] || res[2].ID != ids[2] {
		t.Errorf("order = %v %v %v, want %v %v %v",
			res[0].ID, res[1].ID, res[2].ID, ids[0], ids[1], ids[2])
	}
	// Distances ascending, similarity descending in [0, 1].
	for i := range res {
		if res[i].Similarity < 0 || res[i].Similarity > 1 {
			t.Errorf("similarity %v outside [0,1]", res[i].Similarity)
		}
		if i > 0 && res[i].Distance < res[i-1].Distance {
			t.Error("distances not ascending")
		}
	}
	// Metadata populated.
	if res[0].Name != "a0" || res[0].Group != 1 {
		t.Errorf("metadata = %+v", res[0])
	}
}

func TestSearchThreshold(t *testing.T) {
	db, _ := synthDB(t)
	e := NewEngine(db)
	q := queryAt(t, db, 0, 0)
	// dmax for principal moments = span 80 in 3 dims = 80√3 ≈ 138.6.
	// Group-1 shapes lie within distance 2√3 ≈ 3.46; threshold 0.9 ⇒
	// radius ≈ 13.9 ⇒ exactly the three group-1 shapes.
	res, err := e.SearchThreshold(context.Background(), q, Options{Feature: features.PrincipalMoments, Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("threshold 0.9 returned %d results: %+v", len(res), res)
	}
	for _, r := range res {
		if r.Group != 1 {
			t.Errorf("unexpected group %d in results", r.Group)
		}
		if r.Similarity < 0.9 {
			t.Errorf("similarity %v below threshold", r.Similarity)
		}
	}
	// Threshold 0 returns everything.
	all, err := e.SearchThreshold(context.Background(), q, Options{Feature: features.PrincipalMoments, Threshold: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != db.Len() {
		t.Errorf("threshold 0 returned %d of %d", len(all), db.Len())
	}
}

func TestSearchWithWeights(t *testing.T) {
	db, err := shapedb.Open("", features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	opts := db.Options()
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	mk := func(a, b float64) features.Set {
		v := make(features.Vector, opts.Dim(features.PrincipalMoments))
		v[0], v[1] = a, b
		return features.Set{features.PrincipalMoments: v}
	}
	idA, _ := db.Insert("A", 0, mesh, mk(1, 0)) // near in dim0
	idB, _ := db.Insert("B", 0, mesh, mk(0, 2)) // near in dim1
	e := NewEngine(db)
	q := features.Set{features.PrincipalMoments: make(features.Vector, opts.Dim(features.PrincipalMoments))}

	// Unweighted: A (dist 1) before B (dist 2).
	res, err := e.SearchTopK(context.Background(), q, Options{Feature: features.PrincipalMoments, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != idA {
		t.Errorf("unweighted first = %v, want %v", res[0].ID, idA)
	}
	// Weight dim0 heavily: B wins.
	w := make([]float64, opts.Dim(features.PrincipalMoments))
	for i := range w {
		w[i] = 1
	}
	w[0] = 100
	res, err = e.SearchTopK(context.Background(), q, Options{Feature: features.PrincipalMoments, K: 2, Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != idB {
		t.Errorf("weighted first = %v, want %v", res[0].ID, idB)
	}
}

func TestSearchValidation(t *testing.T) {
	db, _ := synthDB(t)
	e := NewEngine(db)
	q := queryAt(t, db, 0, 0)
	if _, err := e.SearchTopK(context.Background(), q, Options{Feature: features.Kind(99), K: 3}); err == nil {
		t.Error("invalid kind accepted")
	}
	if _, err := e.SearchTopK(context.Background(), q, Options{Feature: features.PrincipalMoments, K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := e.SearchTopK(context.Background(), q, Options{Feature: features.HigherOrder, K: 1}); err == nil {
		t.Error("missing feature vector accepted")
	}
	if _, err := e.SearchThreshold(context.Background(), q, Options{Feature: features.PrincipalMoments, Threshold: 1.5}); err == nil {
		t.Error("threshold > 1 accepted")
	}
	if _, err := e.SearchTopK(context.Background(), q, Options{Feature: features.PrincipalMoments, K: 1, Weights: []float64{1}}); err == nil {
		t.Error("wrong weight count accepted")
	}
	if _, err := e.SearchTopK(context.Background(), q, Options{Feature: features.PrincipalMoments, K: 1, Weights: []float64{-1, 1, 1}}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestQueryFeatures(t *testing.T) {
	db, ids := synthDB(t)
	e := NewEngine(db)
	set, err := e.QueryFeatures(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != len(features.CoreKinds) {
		t.Errorf("feature set size = %d", len(set))
	}
	if _, err := e.QueryFeatures(9999); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestExcludeID(t *testing.T) {
	rs := []Result{{ID: 1}, {ID: 2}, {ID: 3}}
	out := ExcludeID(rs, 2)
	if len(out) != 2 || out[0].ID != 1 || out[1].ID != 3 {
		t.Errorf("ExcludeID = %+v", out)
	}
	out = ExcludeID(out, 99)
	if len(out) != 2 {
		t.Errorf("ExcludeID noop = %+v", out)
	}
}

func TestMultiStepReranks(t *testing.T) {
	db, ids := synthDB(t)
	e := NewEngine(db)
	// Query near group 1 in pm space, but whose gp matches a2 best
	// (gp=0). Step 1 (pm) retrieves group 1 in order a0,a1,a2; step 2
	// (gp) re-orders to a2,a1,a0.
	q := queryAt(t, db, 0, 0)
	res, err := e.SearchMultiStep(context.Background(), q, MultiStepOptions{
		Steps: []Step{
			{Feature: features.PrincipalMoments},
			{Feature: features.GeometricParams},
		},
		CandidateSize: 3,
		K:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].ID != ids[2] || res[1].ID != ids[1] || res[2].ID != ids[0] {
		t.Errorf("re-ranked order = %v,%v,%v want %v,%v,%v",
			res[0].ID, res[1].ID, res[2].ID, ids[2], ids[1], ids[0])
	}
}

func TestMultiStepDefaultsAndValidation(t *testing.T) {
	db, _ := synthDB(t)
	e := NewEngine(db)
	q := queryAt(t, db, 0, 0)
	if _, err := e.SearchMultiStep(context.Background(), q, MultiStepOptions{}); err == nil {
		t.Error("no steps accepted")
	}
	// Defaults: candidate 30 (> DB size fine), K 10.
	res, err := e.SearchMultiStep(context.Background(), q, MultiStepOptions{
		Steps: []Step{{Feature: features.PrincipalMoments}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != db.Len() { // 6 shapes < K=10
		t.Errorf("results = %d, want %d", len(res), db.Len())
	}
	_, err = e.SearchMultiStep(context.Background(), q, MultiStepOptions{
		Steps: []Step{
			{Feature: features.PrincipalMoments},
			{Feature: features.HigherOrder}, // not in query
		},
	})
	if err == nil {
		t.Error("missing second-step feature accepted")
	}
}

func TestSearchCombined(t *testing.T) {
	db, ids := synthDB(t)
	e := NewEngine(db)
	q := queryAt(t, db, 0, 0)
	res, err := e.SearchCombined(context.Background(), q, map[features.Kind]float64{
		features.PrincipalMoments: 0.5,
		features.GeometricParams:  0.5,
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	// a1 (pm=1, gp=10) combined beats a0 (pm=0, gp=20)? Distances:
	// pm dmax=80√3, gp dmax=80√3. a0: (0 + 20√3/80√3·0.5)=0.125;
	// a1: 0.5·(√3/80√3)+0.5·(10√3/80√3) = 0.5/80·(1+10)=0.06875;
	// a2: 0.5·2/80 + 0 = 0.0125 → order a2, a1, a0.
	if res[0].ID != ids[2] || res[1].ID != ids[1] || res[2].ID != ids[0] {
		t.Errorf("combined order = %v,%v,%v", res[0].ID, res[1].ID, res[2].ID)
	}
	if _, err := e.SearchCombined(context.Background(), q, nil, 3); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := e.SearchCombined(context.Background(), q, map[features.Kind]float64{features.PrincipalMoments: 1}, 0); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := e.SearchCombined(context.Background(), q, map[features.Kind]float64{features.PrincipalMoments: -1}, 1); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := e.SearchCombined(context.Background(), q, map[features.Kind]float64{features.HigherOrder: 1}, 1); err == nil {
		t.Error("missing feature accepted")
	}
}

// End-to-end pipeline: real meshes through extraction, storage, and
// search — similar shapes must rank before dissimilar ones.
func TestEndToEndPipeline(t *testing.T) {
	db, err := shapedb.Open("", features.Options{VoxelResolution: 24})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	e := NewEngine(db)
	ext := e.Extractor()

	insert := func(name string, group int, mesh *geom.Mesh) int64 {
		t.Helper()
		set, err := ext.Extract(mesh, features.CoreKinds)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		id, err := db.Insert(name, group, mesh, set)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return id
	}
	// Two similar slabs, one cube, one long bar.
	slabA := insert("slabA", 1, geom.Box(geom.V(0, 0, 0), geom.V(10, 6, 1)))
	_ = insert("slabB", 1, geom.Box(geom.V(0, 0, 0), geom.V(11, 6.5, 1.1)))
	_ = insert("cube", 2, geom.Box(geom.V(0, 0, 0), geom.V(4, 4, 4)))
	_ = insert("bar", 3, geom.Box(geom.V(0, 0, 0), geom.V(20, 1, 1)))

	qmesh := geom.Box(geom.V(0, 0, 0), geom.V(10.5, 6.2, 1.05))
	// Rotate the query arbitrarily: results must be pose-independent.
	qmesh.Rotate(geom.RotationAxisAngle(geom.V(1, 2, 3), 1.1)).Translate(geom.V(5, -3, 9))
	qset, err := e.ExtractQuery(qmesh, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []features.Kind{features.PrincipalMoments, features.MomentInvariants} {
		res, err := e.SearchTopK(context.Background(), qset, Options{Feature: kind, K: 2})
		if err != nil {
			t.Fatal(err)
		}
		if res[0].ID != slabA && res[0].Group != 1 {
			t.Errorf("%v: top result = %+v, want a slab", kind, res[0])
		}
		if res[0].Group != 1 || res[1].Group != 1 {
			t.Errorf("%v: top-2 groups = %d,%d, want slabs first", kind, res[0].Group, res[1].Group)
		}
	}
}

func TestSimilarityMonotoneInDistance(t *testing.T) {
	db, _ := synthDB(t)
	e := NewEngine(db)
	q := queryAt(t, db, 0, 0)
	res, err := e.SearchTopK(context.Background(), q, Options{Feature: features.PrincipalMoments, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Similarity > res[i-1].Similarity+1e-12 {
			t.Error("similarity not monotone with rank")
		}
	}
	// The farthest stored point participates in dmax, so its similarity
	// is bounded but non-negative.
	last := res[len(res)-1]
	if last.Similarity < 0 || math.IsNaN(last.Similarity) {
		t.Errorf("worst similarity = %v", last.Similarity)
	}
}
