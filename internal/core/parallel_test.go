package core

import (
	"context"
	"math"
	"sync"
	"testing"

	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/shapedb"
)

// synthScanDB builds a DB large enough to cross the parallel-scan
// threshold, with deterministic but scattered principal-moment vectors.
func synthScanDB(t *testing.T, n int) *shapedb.DB {
	t.Helper()
	db, err := shapedb.Open("", features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	opts := db.Options()
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	for i := 0; i < n; i++ {
		set := features.Set{}
		for _, k := range features.CoreKinds {
			v := make(features.Vector, opts.Dim(k))
			for d := range v {
				v[d] = 10 * math.Sin(float64(i*31+d*7+int(k)*13))
			}
			set[k] = v
		}
		if _, err := db.Insert("s", i%5, mesh, set); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestScanParallelMatchesSerial asserts the sharded weighted scan returns
// exactly the serial scan's results (IDs, distances, order) for top-k and
// threshold searches at several worker counts.
func TestScanParallelMatchesSerial(t *testing.T) {
	db := synthScanDB(t, 300)
	opts := db.Options()
	dim := opts.Dim(features.PrincipalMoments)
	query := features.Set{features.PrincipalMoments: make(features.Vector, dim)}
	weights := make([]float64, dim)
	for i := range weights {
		weights[i] = 1 + float64(i)
	}
	topOpt := Options{Feature: features.PrincipalMoments, Weights: weights, K: 17}
	thOpt := Options{Feature: features.PrincipalMoments, Weights: weights, Threshold: 0.4}

	serial := NewEngine(db).SetWorkers(1)
	wantTop, err := serial.SearchTopK(context.Background(), query, topOpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(wantTop) != 17 {
		t.Fatalf("serial top-k returned %d", len(wantTop))
	}
	wantTh, err := serial.SearchThreshold(context.Background(), query, thOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		par := NewEngine(db).SetWorkers(workers)
		gotTop, err := par.SearchTopK(context.Background(), query, topOpt)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotTop) != len(wantTop) {
			t.Fatalf("workers=%d: top-k %d results, want %d", workers, len(gotTop), len(wantTop))
		}
		for i := range wantTop {
			if gotTop[i] != wantTop[i] {
				t.Errorf("workers=%d: top-k[%d] = %+v, want %+v", workers, i, gotTop[i], wantTop[i])
			}
		}
		gotTh, err := par.SearchThreshold(context.Background(), query, thOpt)
		if err != nil {
			t.Fatal(err)
		}
		if len(gotTh) != len(wantTh) {
			t.Fatalf("workers=%d: threshold %d results, want %d", workers, len(gotTh), len(wantTh))
		}
		for i := range wantTh {
			if gotTh[i] != wantTh[i] {
				t.Errorf("workers=%d: threshold[%d] = %+v, want %+v", workers, i, gotTh[i], wantTh[i])
			}
		}
	}
}

// TestScanShardErrorPropagates plants a wrong-dimension vector and checks
// the parallel scan still surfaces the error.
func TestScanShardErrorPropagates(t *testing.T) {
	db := synthScanDB(t, 100)
	dim := db.Options().Dim(features.PrincipalMoments)
	weights := make([]float64, dim)
	e := NewEngine(db).SetWorkers(4)
	// Force the dimension check to trip by searching with a short query
	// vector but matching weights length (checkOptions validates weights
	// against the query, the scan validates stored vectors against it).
	shortQ := features.Set{features.PrincipalMoments: make(features.Vector, dim-1)}
	shortW := weights[:dim-1]
	if _, err := e.SearchTopK(context.Background(), shortQ, Options{Feature: features.PrincipalMoments, Weights: shortW, K: 5}); err == nil {
		t.Error("dimension mismatch not reported by parallel scan")
	}
}

// TestConcurrentInsertSearchDelete runs Insert, SearchTopK (both the
// indexed and the sharded weighted-scan path), and Delete concurrently;
// under -race this is the engine's concurrency smoke test.
func TestConcurrentInsertSearchDelete(t *testing.T) {
	db := synthScanDB(t, 150)
	e := NewEngine(db).SetWorkers(4)
	opts := db.Options()
	dim := opts.Dim(features.PrincipalMoments)
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	query := features.Set{features.PrincipalMoments: make(features.Vector, dim)}
	weights := make([]float64, dim)
	for i := range weights {
		weights[i] = 2
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: inserts with fresh feature sets.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				set := features.Set{}
				for _, k := range features.CoreKinds {
					v := make(features.Vector, opts.Dim(k))
					for d := range v {
						v[d] = float64(w*1000 + i + d)
					}
					set[k] = v
				}
				if _, err := db.Insert("w", 0, mesh, set); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Deleter: removes some of the seed records.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, id := range db.IDs()[:40] {
			if _, err := db.Delete(id); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Searchers: indexed and weighted-scan paths.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.SearchTopK(context.Background(), query, Options{Feature: features.PrincipalMoments, K: 5}); err != nil {
					t.Error(err)
					return
				}
				if _, err := e.SearchTopK(context.Background(), query, Options{Feature: features.PrincipalMoments, Weights: weights, K: 5}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if want := 150 + 2*40 - 40; db.Len() != want {
		t.Errorf("Len = %d, want %d", db.Len(), want)
	}
}

// TestInsertBatchDeterministicAcrossWorkers runs a real-extraction batch
// at workers=1 and workers=8 and asserts bit-identical IDs and feature
// sets (the reproducibility guarantee of the parallel ingest path).
func TestInsertBatchDeterministicAcrossWorkers(t *testing.T) {
	var shapes []IngestShape
	for i := 0; i < 5; i++ {
		m := geom.Box(geom.V(0, 0, 0), geom.V(1+float64(i), 1, 1))
		m.Merge(geom.Box(geom.V(0, 1, 0), geom.V(1, 2+float64(i%2), 1)))
		shapes = append(shapes, IngestShape{Name: "part", Group: i % 3, Mesh: m})
	}
	run := func(workers int) (*shapedb.DB, []int64) {
		db, err := shapedb.Open("", features.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { db.Close() })
		ids, err := NewEngine(db).InsertBatch(context.Background(), shapes, nil)
		if err != nil {
			t.Fatal(err)
		}
		return db, ids
	}
	db1, ids1 := run(1)
	db8, ids8 := run(8)
	if len(ids1) != len(shapes) || len(ids8) != len(shapes) {
		t.Fatalf("ids = %d / %d, want %d", len(ids1), len(ids8), len(shapes))
	}
	for i := range ids1 {
		if ids1[i] != ids8[i] {
			t.Errorf("id[%d]: workers=1 %d, workers=8 %d", i, ids1[i], ids8[i])
		}
		r1, ok1 := db1.Get(ids1[i])
		r8, ok8 := db8.Get(ids8[i])
		if !ok1 || !ok8 {
			t.Fatalf("record %d missing", i)
		}
		if len(r1.Features) != len(r8.Features) {
			t.Fatalf("feature sets differ in size at %d", i)
		}
		for k, v1 := range r1.Features {
			v8 := r8.Features[k]
			if len(v1) != len(v8) {
				t.Fatalf("%v dim differs at %d", k, i)
			}
			for d := range v1 {
				if v1[d] != v8[d] {
					t.Errorf("shape %d %v[%d]: workers=1 %v, workers=8 %v", i, k, d, v1[d], v8[d])
				}
			}
		}
	}
}

// TestInsertBatchExtractionError asserts a bad mesh fails the whole batch
// before anything is stored.
func TestInsertBatchExtractionError(t *testing.T) {
	db, err := shapedb.Open("", features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	good := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	shapes := []IngestShape{
		{Name: "ok", Mesh: good},
		{Name: "bad", Mesh: nil},
	}
	if _, err := NewEngine(db).InsertBatch(context.Background(), shapes, nil); err == nil {
		t.Fatal("nil mesh accepted")
	}
	if db.Len() != 0 {
		t.Errorf("partial batch stored: Len = %d", db.Len())
	}
}
