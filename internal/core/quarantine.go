package core

import (
	"fmt"
	"math"

	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/shapedb"
)

// Ingest quarantine: every mesh entering the engine from an untrusted
// source (HTTP upload, batch ingest, CLI file, query-by-example) passes
// through structural validation with a weld-repair fallback, and every
// extracted feature vector is checked finite before it can reach the
// record store or an R-tree. A single NaN coordinate admitted past this
// boundary would silently corrupt MBR invariants and weighted-distance
// ordering for every future query.

// SanitizeMesh validates an untrusted mesh, returning a mesh safe to hand
// to the extraction pipeline. Unrepairable defects — no geometry,
// non-finite vertices, face indices out of range — are rejected outright.
// Degenerate (repeated-index) faces, common in sloppy exports, get one
// repair attempt: coincident vertices are welded on a copy (dropping faces
// that collapse) and the result is revalidated. The input mesh is never
// modified; the returned mesh is the input when it was already sound.
func SanitizeMesh(mesh *geom.Mesh) (*geom.Mesh, error) {
	if mesh == nil {
		return nil, fmt.Errorf("core: nil mesh")
	}
	if len(mesh.Vertices) == 0 || len(mesh.Faces) == 0 {
		return nil, fmt.Errorf("core: empty mesh (%d vertices, %d faces)", len(mesh.Vertices), len(mesh.Faces))
	}
	nv := len(mesh.Vertices)
	for i, v := range mesh.Vertices {
		if !v.IsFinite() {
			return nil, fmt.Errorf("core: vertex %d is not finite: %v", i, v)
		}
	}
	for i, f := range mesh.Faces {
		for _, idx := range f {
			if idx < 0 || idx >= nv {
				return nil, fmt.Errorf("core: face %d references vertex %d (have %d vertices)", i, idx, nv)
			}
		}
	}
	if mesh.Validate() == nil {
		return mesh, nil
	}
	// Only degenerate faces remain possible here. Welding merges the
	// coincident duplicates that usually cause them and drops faces that
	// stay collapsed.
	welded := mesh.Clone().WeldVertices(0)
	if err := welded.Validate(); err != nil {
		return nil, fmt.Errorf("core: mesh invalid after weld repair: %w", err)
	}
	if len(welded.Faces) == 0 {
		return nil, fmt.Errorf("core: no faces survive weld repair")
	}
	return welded, nil
}

// CheckFinite rejects feature sets containing NaN or ±Inf coordinates.
func CheckFinite(set features.Set) error {
	for k, v := range set {
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("core: feature %v has non-finite coordinate %g at dimension %d", k, x, i)
			}
		}
	}
	return nil
}

// ExtractUntrusted runs the full quarantine pipeline on an untrusted mesh:
// sanitize (validate + weld fallback), extract with per-kind degradation,
// retry once after orientation repair when extraction fails outright
// (inverted or incoherent winding is routine for STL/OBJ uploads from
// mixed toolchains), and verify every produced vector is finite. It
// returns the extracted set, the per-kind degradation report, and the
// sanitized mesh that should be stored alongside the set.
func (e *Engine) ExtractUntrusted(mesh *geom.Mesh, kinds []features.Kind) (features.Set, features.Degradation, *geom.Mesh, error) {
	if kinds == nil {
		kinds = features.CoreKinds
	}
	m, err := SanitizeMesh(mesh)
	if err != nil {
		return nil, nil, nil, err
	}
	set, deg, err := e.extractor.ExtractAvailable(m, kinds)
	if err != nil {
		// Whole-shape failure: repair winding on a copy and retry once.
		repaired := m.Clone()
		if _, rerr := repaired.OrientConsistently(); rerr != nil {
			return nil, nil, nil, err // report the original extraction failure
		}
		var rerr error
		set, deg, rerr = e.extractor.ExtractAvailable(repaired, kinds)
		if rerr != nil {
			return nil, nil, nil, err
		}
		m = repaired
	}
	if err := CheckFinite(set); err != nil {
		return nil, nil, nil, err
	}
	return set, deg, m, nil
}

// IngestResult reports one quarantined insert: the assigned id and the
// stable names of any feature kinds skipped by per-kind degradation.
type IngestResult struct {
	ID       int64
	Degraded []string
}

// IngestMesh runs the quarantine pipeline on one untrusted shape and
// stores it with its degradation flags. A mesh whose skeletal-graph
// branch fails is still stored and searchable through its remaining
// descriptors; a mesh that fails sanitation or whole-shape extraction is
// rejected with nothing stored.
func (e *Engine) IngestMesh(name string, group int, mesh *geom.Mesh, kinds []features.Kind) (IngestResult, error) {
	return e.IngestMeshKeyed(name, group, mesh, kinds, "")
}

// IngestMeshKeyed is IngestMesh attributed to a client idempotency key
// ("" = none): the key is journaled with the record, so a retried insert —
// even one replayed against a freshly promoted standby — can be answered
// with the original ID via shapedb.IdempotentIDs instead of storing a
// duplicate.
func (e *Engine) IngestMeshKeyed(name string, group int, mesh *geom.Mesh, kinds []features.Kind, key string) (IngestResult, error) {
	return e.IngestMeshWith(name, group, mesh, kinds, IngestOpts{Key: key})
}

// IngestOpts carries the optional fields of IngestMeshWith: the client
// idempotency key ("" = none) and an explicit record id (0 = sequential;
// see shapedb.InsertOpts.ID).
type IngestOpts struct {
	Key string
	ID  int64
}

// IngestMeshWith is the full single-shape ingest entry point: the
// quarantine pipeline plus idempotency attribution and cluster-routed
// explicit ids.
func (e *Engine) IngestMeshWith(name string, group int, mesh *geom.Mesh, kinds []features.Kind, o IngestOpts) (IngestResult, error) {
	set, deg, m, err := e.ExtractUntrusted(mesh, kinds)
	if err != nil {
		return IngestResult{}, err
	}
	id, err := e.db.InsertWith(name, group, m, set, shapedb.InsertOpts{
		Degraded: deg.Names(), IdemKey: o.Key, IdemIndex: 0, IdemCount: 1, ID: o.ID,
	})
	if err != nil {
		return IngestResult{}, err
	}
	return IngestResult{ID: id, Degraded: deg.Names()}, nil
}
