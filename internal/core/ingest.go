package core

import (
	"context"
	"fmt"

	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/shapedb"
	"threedess/internal/workpool"
)

// IngestShape is one item of a bulk insert: the same (name, group, mesh)
// triple Insert takes, carried in a slice so extraction can fan out. ID
// requests an explicit record id (0 = sequential); sharded corpus loads
// use it so every node agrees on the global id space.
type IngestShape struct {
	Name  string
	Group int
	Mesh  *geom.Mesh
	ID    int64
}

// InsertBatch runs the quarantine pipeline (sanitize, extract with
// per-kind degradation, finiteness check) for every shape on the engine's
// worker pool, then inserts the shapes in input order, so assigned IDs and
// stored feature sets are identical regardless of the worker count. The
// returned ids align with shapes. On the first quarantine failure the
// whole batch is abandoned before anything is stored; an insert failure
// partway through leaves the earlier shapes stored and reports how many
// via the error. A cancelled ctx aborts extraction between meshes
// (nothing stored) and the insert loop between shapes (earlier inserts
// remain, like any partial failure).
func (e *Engine) InsertBatch(ctx context.Context, shapes []IngestShape, kinds []features.Kind) ([]int64, error) {
	res, err := e.IngestBatch(ctx, shapes, kinds)
	ids := make([]int64, len(res))
	for i, r := range res {
		ids[i] = r.ID
	}
	return ids, err
}

// IngestBatch is InsertBatch with per-shape degradation reports: every
// shape passes the same quarantine as IngestMesh, and the result rows
// carry the assigned id plus the names of any feature kinds the extractor
// had to skip. Error semantics match InsertBatch.
func (e *Engine) IngestBatch(ctx context.Context, shapes []IngestShape, kinds []features.Kind) ([]IngestResult, error) {
	return e.IngestBatchKeyed(ctx, shapes, kinds, "")
}

// IngestBatchKeyed is IngestBatch attributed to a client idempotency key
// ("" = none): every record of the batch is journaled with the key and its
// position/size within the batch, so a retried batch is answerable with
// the original IDs only when all of them are still present (a partial
// insert is never replayed as if complete). Error semantics match
// IngestBatch.
func (e *Engine) IngestBatchKeyed(ctx context.Context, shapes []IngestShape, kinds []features.Kind, key string) ([]IngestResult, error) {
	if len(shapes) == 0 {
		return nil, nil
	}
	if kinds == nil {
		kinds = features.CoreKinds
	}
	sets := make([]features.Set, len(shapes))
	degs := make([]features.Degradation, len(shapes))
	meshes := make([]*geom.Mesh, len(shapes))
	errs := make([]error, len(shapes))
	if err := workpool.ForEachNCtx(ctx, e.workers, len(shapes), func(i int) {
		sets[i], degs[i], meshes[i], errs[i] = e.ExtractUntrusted(shapes[i].Mesh, kinds)
	}); err != nil {
		return nil, fmt.Errorf("core: batch extraction aborted: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: extracting %q (batch index %d): %w", shapes[i].Name, i, err)
		}
	}
	out := make([]IngestResult, len(shapes))
	for i, sh := range shapes {
		if err := ctx.Err(); err != nil {
			return out[:i], fmt.Errorf("core: insert aborted after %d of %d shapes: %w", i, len(shapes), err)
		}
		id, err := e.db.InsertWith(sh.Name, sh.Group, meshes[i], sets[i], shapedb.InsertOpts{
			Degraded: degs[i].Names(), IdemKey: key, IdemIndex: i, IdemCount: len(shapes),
			ID: sh.ID,
		})
		if err != nil {
			return out[:i], fmt.Errorf("core: inserting %q after %d of %d shapes: %w", sh.Name, i, len(shapes), err)
		}
		out[i] = IngestResult{ID: id, Degraded: degs[i].Names()}
	}
	return out, nil
}

// ExtractBatch runs feature extraction for many meshes on the engine's
// worker pool without storing anything; out[i] is the set for meshes[i].
// A cancelled ctx stops handing meshes to workers and returns its error.
func (e *Engine) ExtractBatch(ctx context.Context, meshes []*geom.Mesh, kinds []features.Kind) ([]features.Set, error) {
	if kinds == nil {
		kinds = features.CoreKinds
	}
	sets := make([]features.Set, len(meshes))
	errs := make([]error, len(meshes))
	if err := workpool.ForEachNCtx(ctx, e.workers, len(meshes), func(i int) {
		sets[i], errs[i] = e.extractor.Extract(meshes[i], kinds)
	}); err != nil {
		return nil, fmt.Errorf("core: batch extraction aborted: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: extracting batch index %d: %w", i, err)
		}
	}
	return sets, nil
}

// batchResults converts records already resolved from a snapshot into
// Result rows (shared by the sharded scan workers).
func batchResult(rec *shapedb.Record, dist, dmax float64) Result {
	return Result{
		ID:         rec.ID,
		Name:       rec.Name,
		Group:      rec.Group,
		Distance:   dist,
		Similarity: Similarity(dist, dmax),
	}
}
