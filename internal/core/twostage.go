package core

import (
	"context"
	"fmt"
	"math"

	"threedess/internal/colstore"
	"threedess/internal/features"
)

// ScanMode selects how weighted searches execute.
type ScanMode int

const (
	// ScanAuto picks two-stage search when the corpus is large enough to
	// repay the coarse pass and the columnar store is healthy, exact scan
	// otherwise. In Options it additionally means "defer to the engine
	// default".
	ScanAuto ScanMode = iota
	// ScanExact forces the exhaustive weighted scan — the escape hatch if
	// the two-stage path is ever in doubt.
	ScanExact
	// ScanTwoStage forces the two-stage path: quantized columnar filter
	// plus R-tree bound seeding, then exact re-ranking of survivors.
	ScanTwoStage
	// ScanCoarse serves the two-stage filter stage AS the answer — rows
	// ranked by their quantized lower bounds with the exact re-rank
	// skipped. Results are approximate (distances read low, ranking may
	// differ near ties); it exists for brownout serving, where the caller
	// must mark the response degraded. Never chosen by ScanAuto.
	ScanCoarse
)

func (m ScanMode) String() string {
	switch m {
	case ScanAuto:
		return "auto"
	case ScanExact:
		return "exact"
	case ScanTwoStage:
		return "two-stage"
	case ScanCoarse:
		return "coarse"
	default:
		return fmt.Sprintf("ScanMode(%d)", int(m))
	}
}

// ParseScanMode maps the user-facing flag values onto a ScanMode.
func ParseScanMode(s string) (ScanMode, error) {
	switch s {
	case "", "auto":
		return ScanAuto, nil
	case "exact":
		return ScanExact, nil
	case "two-stage", "twostage", "two_stage":
		return ScanTwoStage, nil
	case "coarse":
		return ScanCoarse, nil
	default:
		return ScanAuto, fmt.Errorf("core: unknown scan mode %q (want auto, exact, two-stage, or coarse)", s)
	}
}

// autoTwoStageMin is the corpus size from which ScanAuto prefers the
// two-stage path. Below it the exact scan finishes before the coarse pass
// could pay for its lookup-table setup.
const autoTwoStageMin = 4096

// SetSearchMode sets the engine-wide default scan mode for weighted
// searches (requests may still override it per query via Options.Mode)
// and returns the engine.
func (e *Engine) SetSearchMode(m ScanMode) *Engine {
	e.mode = m
	return e
}

// SearchMode returns the engine-wide default scan mode, for operator
// surfaces (/api/stats) that report which execution path serves queries.
func (e *Engine) SearchMode() ScanMode { return e.mode }

// ColStore exposes the engine's columnar store manager so servers can run
// its Watch loop and tests can inspect staleness behavior.
func (e *Engine) ColStore() *colstore.Manager { return e.cstore }

// resolveScanMode folds the per-query mode, the engine default, and the
// auto heuristic into a final decision. forced reports that two-stage was
// explicitly requested, so its errors must surface instead of silently
// degrading to the exact scan.
func (e *Engine) resolveScanMode(opt Options) (mode ScanMode, forced bool) {
	m := opt.Mode
	if m == ScanAuto {
		m = e.mode
	} else {
		forced = true
	}
	if m == ScanAuto {
		if e.db.Len() >= autoTwoStageMin {
			return ScanTwoStage, false
		}
		return ScanExact, false
	}
	return m, forced
}

// twoStageTopK serves a weighted top-k query from the columnar store:
// R-tree k-NN seeds a pruning bound, the quantized columns filter rows
// whose lower bound already exceeds the running k-th distance, and only
// survivors reach the exact Equation-4.3 kernel. The result is
// bit-identical to the exhaustive scan — same rows, same order, same
// distances.
func (e *Engine) twoStageTopK(ctx context.Context, qv features.Vector, opt Options, dmax float64) ([]Result, error) {
	st, err := e.cstore.Store(opt.Feature)
	if err != nil {
		return nil, err
	}
	cands, _, err := st.SearchTopK(ctx, qv, opt.Weights, opt.K, e.workers)
	if err != nil {
		return nil, err
	}
	// var (not make) so an empty result is nil, exactly like the scan path.
	var out []Result
	for _, c := range cands {
		out = append(out, batchResult(c.Rec, c.Dist, dmax))
	}
	return out, nil
}

// twoStageThreshold serves a weighted similarity-threshold query from the
// columnar store. The prune radius converts the threshold through
// Equation 4.4 with a hair of slack (the exact path compares similarities,
// not distances, and the two predicates can disagree by an ulp at the
// boundary); every survivor is then re-checked with the exact similarity
// predicate, so the output matches the exhaustive scan bit for bit.
func (e *Engine) twoStageThreshold(ctx context.Context, qv features.Vector, opt Options, dmax float64) ([]Result, error) {
	st, err := e.cstore.Store(opt.Feature)
	if err != nil {
		return nil, err
	}
	radius := math.Inf(1)
	if opt.Threshold > 0 {
		// Relative slack covers d ≤ (1−t)·dmax rounding; the additive
		// dmax term covers thresholds so close to 1 that tiny distances
		// still round to similarity 1.
		radius = (1-opt.Threshold)*dmax*(1+1e-9) + dmax*1e-12
	}
	cands, _, err := st.SearchRadius(ctx, qv, opt.Weights, radius, e.workers)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, c := range cands {
		r := batchResult(c.Rec, c.Dist, dmax)
		if r.Similarity >= opt.Threshold {
			out = append(out, r)
		}
	}
	return out, nil
}
