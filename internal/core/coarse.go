package core

import (
	"context"
	"math"

	"threedess/internal/features"
)

// Coarse serving (ScanCoarse): the brownout search path. Answers come
// from the columnar store's quantized filter stage alone — no exact
// re-rank — so they cost a fraction of a full scan but are approximate:
// distances are lower bounds (similarities read high) and ranking near
// ties may differ from the exact scan. Callers are responsible for
// marking responses produced this way as degraded (X-Degraded: coarse);
// the engine never picks this mode on its own (ScanAuto excludes it).

// coarseTopK serves a weighted top-k query from the quantized columns
// only. Requires the columnar store; errors surface to the caller, which
// decides whether to fall back to an exact mode (and drop the degraded
// marking) or fail.
func (e *Engine) coarseTopK(ctx context.Context, qv features.Vector, opt Options, dmax float64) ([]Result, error) {
	st, err := e.cstore.Store(opt.Feature)
	if err != nil {
		return nil, err
	}
	cands, _, err := st.SearchCoarseTopK(ctx, qv, opt.Weights, opt.K, e.workers)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, c := range cands {
		out = append(out, batchResult(c.Rec, c.Dist, dmax))
	}
	return out, nil
}

// coarseThreshold serves a weighted similarity-threshold query from the
// quantized columns only. The radius conversion matches the two-stage
// path; because coarse distances are lower bounds the result can only
// over-include relative to the exact answer, never miss.
func (e *Engine) coarseThreshold(ctx context.Context, qv features.Vector, opt Options, dmax float64) ([]Result, error) {
	st, err := e.cstore.Store(opt.Feature)
	if err != nil {
		return nil, err
	}
	radius := math.Inf(1)
	if opt.Threshold > 0 {
		radius = (1-opt.Threshold)*dmax*(1+1e-9) + dmax*1e-12
	}
	cands, _, err := st.SearchCoarseRadius(ctx, qv, opt.Weights, radius, e.workers)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, c := range cands {
		r := batchResult(c.Rec, c.Dist, dmax)
		if r.Similarity >= opt.Threshold {
			out = append(out, r)
		}
	}
	return out, nil
}
