package core

import (
	"context"
	"math"
	"strings"
	"testing"

	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/shapedb"
)

// degradedEngine returns an engine whose skeletal-graph branch always
// fails (VoxelResolution 1 survives option defaulting but is rejected by
// the voxelizer), so per-kind degradation is deterministic.
func degradedEngine(t *testing.T) *Engine {
	t.Helper()
	db, err := shapedb.Open("", features.Options{VoxelResolution: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return NewEngine(db)
}

func healthyEngine(t *testing.T) *Engine {
	t.Helper()
	db, err := shapedb.Open("", features.Options{VoxelResolution: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return NewEngine(db)
}

func TestSanitizeMeshRejectsUnrepairable(t *testing.T) {
	box := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))

	if _, err := SanitizeMesh(nil); err == nil {
		t.Error("nil mesh accepted")
	}
	if _, err := SanitizeMesh(geom.NewMesh(0, 0)); err == nil {
		t.Error("empty mesh accepted")
	}

	nan := box.Clone()
	nan.Vertices[0].X = math.NaN()
	if _, err := SanitizeMesh(nan); err == nil {
		t.Error("NaN vertex accepted")
	}

	oob := box.Clone()
	oob.Faces[0][2] = len(oob.Vertices) + 5
	if _, err := SanitizeMesh(oob); err == nil {
		t.Error("out-of-range face index accepted")
	}
}

func TestSanitizeMeshWeldRepairsDegenerateFaces(t *testing.T) {
	box := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	dirty := box.Clone()
	dirty.AddFace(0, 0, 1) // the degenerate face sloppy exporters emit
	facesBefore := len(dirty.Faces)

	clean, err := SanitizeMesh(dirty)
	if err != nil {
		t.Fatalf("SanitizeMesh: %v", err)
	}
	if clean == dirty {
		t.Fatal("repair returned the input mesh instead of a copy")
	}
	if len(clean.Faces) != len(box.Faces) {
		t.Errorf("repaired mesh has %d faces, want %d", len(clean.Faces), len(box.Faces))
	}
	if err := clean.Validate(); err != nil {
		t.Errorf("repaired mesh invalid: %v", err)
	}
	if len(dirty.Faces) != facesBefore {
		t.Error("SanitizeMesh mutated its input")
	}

	// A sound mesh passes through unchanged, no copy.
	same, err := SanitizeMesh(box)
	if err != nil {
		t.Fatalf("SanitizeMesh(valid): %v", err)
	}
	if same != box {
		t.Error("valid mesh was copied")
	}
}

func TestCheckFinite(t *testing.T) {
	set := features.Set{features.MomentInvariants: {1, 2, 3}}
	if err := CheckFinite(set); err != nil {
		t.Errorf("finite set rejected: %v", err)
	}
	set[features.MomentInvariants][1] = math.Inf(-1)
	if err := CheckFinite(set); err == nil {
		t.Error("Inf accepted")
	}
	set[features.MomentInvariants][1] = math.NaN()
	if err := CheckFinite(set); err == nil {
		t.Error("NaN accepted")
	}
}

func TestIngestMeshStoresDegradationFlags(t *testing.T) {
	e := degradedEngine(t)
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(2, 1, 1))
	res, err := e.IngestMesh("nasty", 1, mesh, nil)
	if err != nil {
		t.Fatalf("IngestMesh: %v", err)
	}
	if len(res.Degraded) != 1 || res.Degraded[0] != "eigenvalues" {
		t.Fatalf("Degraded = %v, want [eigenvalues]", res.Degraded)
	}
	rec, ok := e.DB().Get(res.ID)
	if !ok {
		t.Fatal("ingested record missing")
	}
	if len(rec.Degraded) != 1 || rec.Degraded[0] != "eigenvalues" {
		t.Errorf("stored Degraded = %v", rec.Degraded)
	}
	if _, ok := rec.Features[features.Eigenvalues]; ok {
		t.Error("degraded kind stored anyway")
	}

	// The shape is searchable through every descriptor it does carry.
	q, err := e.QueryFeatures(res.ID)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.SearchTopK(context.Background(), q, Options{Feature: features.MomentInvariants, K: 1})
	if err != nil {
		t.Fatalf("search on surviving descriptor: %v", err)
	}
	if len(out) != 1 || out[0].ID != res.ID {
		t.Fatalf("search = %v", out)
	}
}

func TestIngestMeshRejectsHostileMesh(t *testing.T) {
	e := healthyEngine(t)
	bad := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	bad.Vertices[3] = geom.V(math.NaN(), 0, 0)
	if _, err := e.IngestMesh("hostile", 0, bad, nil); err == nil {
		t.Fatal("NaN-vertex mesh ingested")
	}
	if e.DB().Len() != 0 {
		t.Fatalf("db has %d records after rejected ingest", e.DB().Len())
	}
}

func TestIngestBatchQuarantinesEveryShape(t *testing.T) {
	e := healthyEngine(t)
	dirty := geom.Box(geom.V(0, 0, 0), geom.V(1, 2, 3))
	dirty.AddFace(0, 0, 1)
	shapes := []IngestShape{
		{Name: "clean", Group: 1, Mesh: geom.Box(geom.V(0, 0, 0), geom.V(2, 1, 1))},
		{Name: "dirty", Group: 1, Mesh: dirty},
	}
	res, err := e.IngestBatch(context.Background(), shapes, nil)
	if err != nil {
		t.Fatalf("IngestBatch: %v", err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	rec, ok := e.DB().Get(res[1].ID)
	if !ok {
		t.Fatal("repaired shape missing")
	}
	if err := rec.Mesh.Validate(); err != nil {
		t.Errorf("stored mesh invalid: %v", err)
	}

	// One hostile shape aborts the batch before anything is stored.
	before := e.DB().Len()
	bad := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	bad.Vertices[0] = geom.V(0, math.Inf(1), 0)
	_, err = e.IngestBatch(context.Background(), []IngestShape{
		{Name: "ok", Mesh: geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 2))},
		{Name: "bad", Mesh: bad},
	}, nil)
	if err == nil {
		t.Fatal("hostile batch accepted")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error %q does not name the hostile shape", err)
	}
	if e.DB().Len() != before {
		t.Errorf("db grew from %d to %d on a failed batch", before, e.DB().Len())
	}
}

func TestExtractUntrustedRepairsInvertedWinding(t *testing.T) {
	e := healthyEngine(t)
	inverted := geom.Box(geom.V(0, 0, 0), geom.V(2, 1, 1))
	for i, f := range inverted.Faces {
		inverted.Faces[i] = [3]int{f[0], f[2], f[1]}
	}
	set, _, m, err := e.ExtractUntrusted(inverted, []features.Kind{features.MomentInvariants})
	if err != nil {
		t.Fatalf("ExtractUntrusted on inverted mesh: %v", err)
	}
	if len(set[features.MomentInvariants]) == 0 {
		t.Fatal("no descriptor extracted")
	}
	if m.Volume() <= 0 {
		t.Errorf("returned mesh volume %g, want positive after repair", m.Volume())
	}
}

func TestSearchRejectsNonFiniteQuery(t *testing.T) {
	db, ids := synthDB(t)
	e := NewEngine(db)
	q, err := e.QueryFeatures(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	bad := q.Clone()
	bad[features.PrincipalMoments][0] = math.NaN()
	if _, err := e.SearchTopK(context.Background(), bad, Options{Feature: features.PrincipalMoments, K: 3}); err == nil {
		t.Error("NaN query vector accepted by SearchTopK")
	}
	if _, err := e.SearchThreshold(context.Background(), bad, Options{Feature: features.PrincipalMoments, Threshold: 0.5}); err == nil {
		t.Error("NaN query vector accepted by SearchThreshold")
	}
}
