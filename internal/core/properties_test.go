package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/shapedb"
)

// randomFeatureDB builds a DB with n shapes at random principal-moment
// positions.
func randomFeatureDB(t *testing.T, n int, rng *rand.Rand) *shapedb.DB {
	t.Helper()
	db, err := shapedb.Open("", features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	dim := db.Options().Dim(features.PrincipalMoments)
	for i := 0; i < n; i++ {
		v := make(features.Vector, dim)
		for d := range v {
			v[d] = rng.Float64() * 100
		}
		if _, err := db.Insert("s", 1+i%5, mesh, features.Set{features.PrincipalMoments: v}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func randomQuery(db *shapedb.DB, rng *rand.Rand) features.Set {
	dim := db.Options().Dim(features.PrincipalMoments)
	v := make(features.Vector, dim)
	for d := range v {
		v[d] = rng.Float64() * 100
	}
	return features.Set{features.PrincipalMoments: v}
}

// Property: SearchThreshold(t) returns exactly the shapes from
// SearchThreshold(0) whose similarity is ≥ t.
func TestQuickThresholdEqualsFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(230))
	db := randomFeatureDB(t, 120, rng)
	e := NewEngine(db)
	for trial := 0; trial < 25; trial++ {
		q := randomQuery(db, rng)
		all, err := e.SearchThreshold(context.Background(), q, Options{Feature: features.PrincipalMoments, Threshold: 0})
		if err != nil {
			t.Fatal(err)
		}
		th := rng.Float64()
		got, err := e.SearchThreshold(context.Background(), q, Options{Feature: features.PrincipalMoments, Threshold: th})
		if err != nil {
			t.Fatal(err)
		}
		want := map[int64]bool{}
		for _, r := range all {
			if r.Similarity >= th {
				want[r.ID] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d t=%v: got %d, want %d", trial, th, len(got), len(want))
		}
		for _, r := range got {
			if !want[r.ID] {
				t.Fatalf("trial %d: unexpected id %d", trial, r.ID)
			}
		}
	}
}

// Property: SearchTopK(k) is a prefix of SearchTopK(k+m).
func TestQuickTopKPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	db := randomFeatureDB(t, 100, rng)
	e := NewEngine(db)
	for trial := 0; trial < 25; trial++ {
		q := randomQuery(db, rng)
		k := 1 + rng.Intn(20)
		m := 1 + rng.Intn(20)
		small, err := e.SearchTopK(context.Background(), q, Options{Feature: features.PrincipalMoments, K: k})
		if err != nil {
			t.Fatal(err)
		}
		large, err := e.SearchTopK(context.Background(), q, Options{Feature: features.PrincipalMoments, K: k + m})
		if err != nil {
			t.Fatal(err)
		}
		for i := range small {
			if small[i].ID != large[i].ID {
				t.Fatalf("trial %d: rank %d differs: %d vs %d", trial, i, small[i].ID, large[i].ID)
			}
		}
	}
}

// Property: uniform weights w are equivalent to unweighted search scaled
// by √w in distance (and identical in ranking).
func TestQuickUniformWeightEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(232))
	db := randomFeatureDB(t, 80, rng)
	e := NewEngine(db)
	dim := db.Options().Dim(features.PrincipalMoments)
	for trial := 0; trial < 15; trial++ {
		q := randomQuery(db, rng)
		w := 0.5 + rng.Float64()*4
		weights := make([]float64, dim)
		for d := range weights {
			weights[d] = w
		}
		plain, err := e.SearchTopK(context.Background(), q, Options{Feature: features.PrincipalMoments, K: 20})
		if err != nil {
			t.Fatal(err)
		}
		weighted, err := e.SearchTopK(context.Background(), q, Options{Feature: features.PrincipalMoments, K: 20, Weights: weights})
		if err != nil {
			t.Fatal(err)
		}
		for i := range plain {
			if plain[i].ID != weighted[i].ID {
				t.Fatalf("trial %d: uniform weights changed ranking at %d", trial, i)
			}
			if math.Abs(weighted[i].Distance-plain[i].Distance*math.Sqrt(w)) > 1e-9*(1+plain[i].Distance) {
				t.Fatalf("trial %d: distance scaling wrong: %v vs %v·√%v",
					trial, weighted[i].Distance, plain[i].Distance, w)
			}
		}
	}
}

// Property: a multi-step search whose later steps repeat the first
// feature is equivalent to the one-shot search truncated to K.
func TestQuickMultiStepIdempotentFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(233))
	db := randomFeatureDB(t, 90, rng)
	e := NewEngine(db)
	for trial := 0; trial < 15; trial++ {
		q := randomQuery(db, rng)
		oneShot, err := e.SearchTopK(context.Background(), q, Options{Feature: features.PrincipalMoments, K: 10})
		if err != nil {
			t.Fatal(err)
		}
		multi, err := e.SearchMultiStep(context.Background(), q, MultiStepOptions{
			Steps: []Step{
				{Feature: features.PrincipalMoments},
				{Feature: features.PrincipalMoments},
			},
			CandidateSize: 30,
			K:             10,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(multi) != len(oneShot) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(multi), len(oneShot))
		}
		for i := range multi {
			if multi[i].ID != oneShot[i].ID {
				t.Fatalf("trial %d: rank %d differs", trial, i)
			}
		}
	}
}

// Property: multi-step Keep=1 after the first step returns at most one
// result regardless of K.
func TestMultiStepKeepOne(t *testing.T) {
	rng := rand.New(rand.NewSource(234))
	db := randomFeatureDB(t, 40, rng)
	e := NewEngine(db)
	q := randomQuery(db, rng)
	res, err := e.SearchMultiStep(context.Background(), q, MultiStepOptions{
		Steps: []Step{
			{Feature: features.PrincipalMoments, Keep: 1},
			{Feature: features.PrincipalMoments},
		},
		CandidateSize: 30,
		K:             10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("Keep=1 returned %d results", len(res))
	}
}
