package core

import (
	"testing"

	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/shapedb"
)

// clusteredDB builds a DB with two well-separated blobs in principal-
// moment space.
func clusteredDB(t *testing.T, perBlob int) (*shapedb.DB, []int64) {
	t.Helper()
	db, err := shapedb.Open("", features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	opts := db.Options()
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	var ids []int64
	for blob := 0; blob < 2; blob++ {
		for i := 0; i < perBlob; i++ {
			v := make(features.Vector, opts.Dim(features.PrincipalMoments))
			for d := range v {
				v[d] = float64(blob)*100 + float64(i)
			}
			id, err := db.Insert("s", blob+1, mesh, features.Set{features.PrincipalMoments: v})
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
	}
	return db, ids
}

func TestClusterShapesAllAlgorithms(t *testing.T) {
	db, _ := clusteredDB(t, 10)
	e := NewEngine(db)
	for _, algo := range []ClusterAlgorithm{AlgoKMeans, AlgoSOM, AlgoGA} {
		byID, res, err := e.ClusterShapes(features.PrincipalMoments, algo, 2, 7)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(byID) != db.Len() {
			t.Errorf("%v: assignments = %d", algo, len(byID))
		}
		if res.K() < 2 {
			t.Errorf("%v: clusters = %d", algo, res.K())
		}
		// The two blobs must not be merged: shapes of group 1 and group 2
		// should mostly land in different clusters.
		counts := map[[2]int]int{}
		db.ForEach(func(rec *shapedb.Record) {
			counts[[2]int{rec.Group, byID[rec.ID]}]++
		})
		// Majority cluster per group must differ.
		maj := func(g int) int {
			best, bestN := -1, -1
			for key, n := range counts {
				if key[0] == g && n > bestN {
					best, bestN = key[1], n
				}
			}
			return best
		}
		if maj(1) == maj(2) {
			t.Errorf("%v merged the two blobs", algo)
		}
	}
}

func TestClusterShapesErrors(t *testing.T) {
	db, _ := clusteredDB(t, 5)
	e := NewEngine(db)
	if _, _, err := e.ClusterShapes(features.HigherOrder, AlgoKMeans, 2, 1); err == nil {
		t.Error("missing feature accepted")
	}
	if _, _, err := e.ClusterShapes(features.PrincipalMoments, ClusterAlgorithm(9), 2, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if ClusterAlgorithm(9).String() != "unknown" {
		t.Error("unknown algorithm string")
	}
	if AlgoKMeans.String() != "kmeans" || AlgoSOM.String() != "som" || AlgoGA.String() != "ga" {
		t.Error("algorithm strings wrong")
	}
}

func TestBuildBrowseHierarchy(t *testing.T) {
	db, ids := clusteredDB(t, 15)
	e := NewEngine(db)
	root, err := e.BuildBrowseHierarchy(features.PrincipalMoments, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.IDs) != len(ids) {
		t.Fatalf("root covers %d of %d", len(root.IDs), len(ids))
	}
	if root.IsLeaf() {
		t.Fatal("30 shapes should split")
	}
	// Drill down: every ID reachable exactly once through leaves.
	seen := map[int64]int{}
	var walk func(n *BrowseNode)
	walk = func(n *BrowseNode) {
		if n.IsLeaf() {
			for _, id := range n.IDs {
				seen[id]++
			}
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	for _, id := range ids {
		if seen[id] != 1 {
			t.Errorf("id %d appears %d times in leaves", id, seen[id])
		}
	}
}

func TestBuildBrowseHierarchyEmpty(t *testing.T) {
	db, err := shapedb.Open("", features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	e := NewEngine(db)
	if _, err := e.BuildBrowseHierarchy(features.PrincipalMoments, 1); err == nil {
		t.Error("empty DB accepted")
	}
}

func TestBuildBrowseHierarchyWeighted(t *testing.T) {
	db, ids := clusteredDB(t, 12)
	e := NewEngine(db)
	dim := db.Options().Dim(features.PrincipalMoments)
	w := make([]float64, dim)
	for i := range w {
		w[i] = 2
	}
	root, err := e.BuildBrowseHierarchyWeighted(features.PrincipalMoments, w, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.IDs) != len(ids) {
		t.Errorf("weighted root covers %d of %d", len(root.IDs), len(ids))
	}
	// Uniform weights give the same tree as unweighted clustering.
	plain, err := e.BuildBrowseHierarchy(features.PrincipalMoments, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Children) != len(root.Children) {
		t.Errorf("uniform weights changed the split: %d vs %d children",
			len(root.Children), len(plain.Children))
	}
	// Validation.
	if _, err := e.BuildBrowseHierarchyWeighted(features.PrincipalMoments, []float64{1}, 7); err == nil {
		t.Error("wrong weight count accepted")
	}
	if _, err := e.BuildBrowseHierarchyWeighted(features.PrincipalMoments, append([]float64{-1}, w[1:]...), 7); err == nil {
		t.Error("negative weight accepted")
	}
}
