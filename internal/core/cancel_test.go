package core

import (
	"context"
	"errors"
	"testing"

	"threedess/internal/features"
	"threedess/internal/geom"
)

// cancelled returns an already-dead context.
func cancelled() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

func TestSearchesRejectCancelledContext(t *testing.T) {
	db, _ := synthDB(t)
	e := NewEngine(db)
	q := queryAt(t, db, 0, 0)
	ctx := cancelled()

	if _, err := e.SearchTopK(ctx, q, Options{Feature: features.PrincipalMoments, K: 3}); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchTopK err = %v", err)
	}
	if _, err := e.SearchThreshold(ctx, q, Options{Feature: features.PrincipalMoments, Threshold: 0.5}); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchThreshold err = %v", err)
	}
	if _, err := e.SearchMultiStep(ctx, q, MultiStepOptions{
		Steps: []Step{{Feature: features.PrincipalMoments}},
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchMultiStep err = %v", err)
	}
	if _, err := e.SearchCombined(ctx, q, map[features.Kind]float64{features.PrincipalMoments: 1}, 3); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchCombined err = %v", err)
	}
}

// TestScanHonorsCancellationOnLargeCorpus fills the store past the
// parallel-scan threshold and cancels mid-scan via the weighted (indexless)
// path, which walks every record.
func TestScanHonorsCancellationOnLargeCorpus(t *testing.T) {
	db, _ := synthDB(t)
	e := NewEngine(db)
	opts := db.Options()
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	dim := opts.Dim(features.PrincipalMoments)
	for i := 0; i < 300; i++ {
		set := features.Set{}
		for _, k := range features.CoreKinds {
			v := make(features.Vector, opts.Dim(k))
			for d := range v {
				v[d] = float64(i % 17)
			}
			set[k] = v
		}
		if _, err := db.Insert("bulk", 5, mesh, set); err != nil {
			t.Fatal(err)
		}
	}
	q := queryAt(t, db, 0, 0)
	weights := make([]float64, dim)
	for i := range weights {
		weights[i] = 1
	}
	// Weighted search forces the sharded scan rather than the index.
	_, err := e.SearchTopK(cancelled(), q, Options{Feature: features.PrincipalMoments, K: 5, Weights: weights})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("weighted scan under dead ctx: err = %v", err)
	}
}

func TestInsertBatchCancelledStoresNothing(t *testing.T) {
	db, _ := synthDB(t)
	e := NewEngine(db)
	before := db.Len()
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(2, 1, 1))
	shapes := []IngestShape{
		{Name: "x0", Group: 1, Mesh: mesh},
		{Name: "x1", Group: 1, Mesh: mesh},
	}
	ids, err := e.InsertBatch(cancelled(), shapes, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(ids) != 0 {
		t.Errorf("ids = %v for a cancelled batch", ids)
	}
	if db.Len() != before {
		t.Errorf("cancelled batch stored %d shapes", db.Len()-before)
	}
}

func TestExtractBatchCancelled(t *testing.T) {
	db, _ := synthDB(t)
	e := NewEngine(db)
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(2, 1, 1))
	if _, err := e.ExtractBatch(cancelled(), []*geom.Mesh{mesh, mesh}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
