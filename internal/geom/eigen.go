package geom

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym3 computes the eigen-decomposition of the symmetric 3×3 matrix m
// using cyclic Jacobi rotations. It returns the eigenvalues in descending
// order and the matching unit eigenvectors as the columns of the returned
// matrix. The decomposition satisfies m ≈ V · diag(λ) · Vᵀ.
//
// EigenSym3 reads only the upper triangle of m; the strict lower triangle
// is ignored, so slightly asymmetric inputs (from floating-point noise) are
// handled gracefully.
func EigenSym3(m Mat3) (vals [3]float64, vecs Mat3) {
	a := [][]float64{
		{m[0][0], m[0][1], m[0][2]},
		{m[0][1], m[1][1], m[1][2]},
		{m[0][2], m[1][2], m[2][2]},
	}
	w, v := jacobiEigen(a)
	// Sort eigenpairs in descending eigenvalue order.
	idx := []int{0, 1, 2}
	sort.Slice(idx, func(i, j int) bool { return w[idx[i]] > w[idx[j]] })
	for k, id := range idx {
		vals[k] = w[id]
		vecs[0][k] = v[0][id]
		vecs[1][k] = v[1][id]
		vecs[2][k] = v[2][id]
	}
	return vals, vecs
}

// EigenSymN computes the eigenvalues (descending) of the symmetric n×n
// matrix a using cyclic Jacobi rotations. The input is not modified. It
// returns an error when a is not square or is empty.
//
// Jacobi iteration is O(n³) per sweep, which is appropriate here: skeletal
// graphs have at most a few dozen nodes.
func EigenSymN(a [][]float64) ([]float64, error) {
	n := len(a)
	if n == 0 {
		return nil, fmt.Errorf("geom: EigenSymN on empty matrix")
	}
	for i := range a {
		if len(a[i]) != n {
			return nil, fmt.Errorf("geom: EigenSymN on non-square matrix (row %d has %d cols, want %d)", i, len(a[i]), n)
		}
	}
	work := make([][]float64, n)
	for i := range work {
		work[i] = make([]float64, n)
		copy(work[i], a[i])
	}
	w, _ := jacobiEigen(work)
	sort.Sort(sort.Reverse(sort.Float64Slice(w)))
	return w, nil
}

// jacobiEigen runs cyclic Jacobi sweeps on the symmetric matrix a (which is
// destroyed) and returns the eigenvalues and the accumulated rotation
// (eigenvectors as columns).
func jacobiEigen(a [][]float64) (vals []float64, vecs [][]float64) {
	n := len(a)
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-30 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a[p][q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				// Compute the Jacobi rotation that annihilates a[p][q].
				theta := (a[q][q] - a[p][p]) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				tau := s / (1 + c)

				app, aqq := a[p][p], a[q][q]
				a[p][p] = app - t*apq
				a[q][q] = aqq + t*apq
				a[p][q] = 0
				a[q][p] = 0
				for i := 0; i < n; i++ {
					if i != p && i != q {
						aip, aiq := a[i][p], a[i][q]
						a[i][p] = aip - s*(aiq+tau*aip)
						a[p][i] = a[i][p]
						a[i][q] = aiq + s*(aip-tau*aiq)
						a[q][i] = a[i][q]
					}
					vip, viq := v[i][p], v[i][q]
					v[i][p] = vip - s*(viq+tau*vip)
					v[i][q] = viq + s*(vip-tau*viq)
				}
			}
		}
	}
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = a[i][i]
	}
	return vals, v
}
