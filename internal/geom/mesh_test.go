package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestBoxVolumeAreaCentroid(t *testing.T) {
	m := Box(V(1, 2, 3), V(3, 5, 7)) // 2×3×4 box
	if got := m.Volume(); !almostEq(got, 24, 1e-12) {
		t.Errorf("Volume = %v, want 24", got)
	}
	want := 2 * (2*3 + 3*4 + 2*4)
	if got := m.SurfaceArea(); !almostEq(got, float64(want), 1e-12) {
		t.Errorf("SurfaceArea = %v, want %v", got, want)
	}
	if got := m.Centroid(); !got.NearEqual(V(2, 3.5, 5), 1e-12) {
		t.Errorf("Centroid = %v, want (2, 3.5, 5)", got)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if !m.IsClosed() {
		t.Error("box should be closed")
	}
	if got := m.EulerCharacteristic(); got != 2 {
		t.Errorf("Euler characteristic = %d, want 2", got)
	}
}

func TestMeshBoundsExtent(t *testing.T) {
	m := Box(V(-1, -2, -3), V(4, 5, 6))
	min, max := m.Bounds()
	if min != V(-1, -2, -3) || max != V(4, 5, 6) {
		t.Errorf("Bounds = %v, %v", min, max)
	}
	if got := m.Extent(); got != V(5, 7, 9) {
		t.Errorf("Extent = %v", got)
	}
	longAR, midAR := m.AspectRatios()
	if !almostEq(longAR, 9.0/5, 1e-12) || !almostEq(midAR, 7.0/5, 1e-12) {
		t.Errorf("AspectRatios = %v, %v", longAR, midAR)
	}
}

func TestEmptyMeshProperties(t *testing.T) {
	m := NewMesh(0, 0)
	if got := m.Volume(); got != 0 {
		t.Errorf("empty volume = %v", got)
	}
	min, max := m.Bounds()
	if min != (Vec3{}) || max != (Vec3{}) {
		t.Errorf("empty bounds = %v %v", min, max)
	}
	if m.IsClosed() {
		t.Error("empty mesh must not report closed")
	}
	if got := m.VertexCentroid(); got != (Vec3{}) {
		t.Errorf("empty VertexCentroid = %v", got)
	}
}

func TestMeshTransformRigid(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for i := 0; i < 50; i++ {
		m := Box(V(0, 0, 0), V(2, 3, 4))
		vol, area := m.Volume(), m.SurfaceArea()
		tr := Transform{R: randomRotation(rng), T: randomVec(rng)}
		m.Transform(tr)
		if !almostEq(m.Volume(), vol, 1e-9*vol) {
			t.Fatalf("rigid transform changed volume: %v vs %v", m.Volume(), vol)
		}
		if !almostEq(m.SurfaceArea(), area, 1e-9*area) {
			t.Fatalf("rigid transform changed area: %v vs %v", m.SurfaceArea(), area)
		}
	}
}

func TestMeshScaleVolume(t *testing.T) {
	m := Box(V(0, 0, 0), V(1, 1, 1))
	m.ScaleUniform(3)
	if got := m.Volume(); !almostEq(got, 27, 1e-9) {
		t.Errorf("scaled volume = %v, want 27", got)
	}
}

func TestMeshReflectionKeepsPositiveVolume(t *testing.T) {
	m := Box(V(0, 0, 0), V(1, 2, 3))
	reflect := Mat3{{-1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	m.Transform(Rotation(reflect))
	if got := m.Volume(); !almostEq(got, 6, 1e-9) {
		t.Errorf("reflected volume = %v, want 6 (winding should flip)", got)
	}
	if !m.IsClosed() {
		t.Error("reflected mesh should stay closed")
	}
}

func TestFlipFacesNegatesVolume(t *testing.T) {
	m := Box(V(0, 0, 0), V(1, 1, 1))
	m.FlipFaces()
	if got := m.Volume(); !almostEq(got, -1, 1e-12) {
		t.Errorf("flipped volume = %v, want -1", got)
	}
}

func TestMeshMerge(t *testing.T) {
	a := Box(V(0, 0, 0), V(1, 1, 1))
	b := Box(V(5, 5, 5), V(6, 7, 8))
	a.Merge(b)
	if got := a.Volume(); !almostEq(got, 1+6, 1e-9) {
		t.Errorf("merged volume = %v, want 7", got)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("Validate after merge: %v", err)
	}
	if !a.IsClosed() {
		t.Error("merged disjoint solids should be closed")
	}
}

func TestMergeWithFlippedInnerSubtractsVolume(t *testing.T) {
	// A cavity: inner flipped box inside outer box.
	outer := Box(V(0, 0, 0), V(4, 4, 4))
	inner := Box(V(1, 1, 1), V(2, 2, 2)).FlipFaces()
	outer.Merge(inner)
	if got := outer.Volume(); !almostEq(got, 64-1, 1e-9) {
		t.Errorf("cavity volume = %v, want 63", got)
	}
}

func TestMeshValidateCatchesErrors(t *testing.T) {
	m := NewMesh(0, 0)
	m.AddVertex(V(0, 0, 0))
	m.AddVertex(V(1, 0, 0))
	m.AddVertex(V(0, 1, 0))
	m.AddFace(0, 1, 5)
	if err := m.Validate(); err == nil {
		t.Error("out-of-range face index not caught")
	}
	m.Faces[0] = [3]int{0, 1, 1}
	if err := m.Validate(); err == nil {
		t.Error("degenerate face not caught")
	}
	m.Faces[0] = [3]int{0, 1, 2}
	m.Vertices[0] = V(math.NaN(), 0, 0)
	if err := m.Validate(); err == nil {
		t.Error("NaN vertex not caught")
	}
}

func TestMeshIsClosedDetectsHole(t *testing.T) {
	m := Box(V(0, 0, 0), V(1, 1, 1))
	m.Faces = m.Faces[:len(m.Faces)-1] // remove one triangle
	if m.IsClosed() {
		t.Error("mesh with missing face reported closed")
	}
}

func TestWeldVertices(t *testing.T) {
	m := NewMesh(0, 0)
	a := m.AddVertex(V(0, 0, 0))
	b := m.AddVertex(V(1, 0, 0))
	c := m.AddVertex(V(0, 1, 0))
	d := m.AddVertex(V(1e-12, 0, 0)) // duplicate of a
	m.AddFace(a, b, c)
	m.AddFace(d, b, c) // becomes duplicate of first face but not degenerate
	m.WeldVertices(1e-9)
	if len(m.Vertices) != 3 {
		t.Errorf("welded vertex count = %d, want 3", len(m.Vertices))
	}
	// Faces that collapse to repeated indices are dropped.
	m2 := NewMesh(0, 0)
	x := m2.AddVertex(V(0, 0, 0))
	y := m2.AddVertex(V(1e-12, 0, 0))
	z := m2.AddVertex(V(0, 1, 0))
	m2.AddFace(x, y, z)
	m2.WeldVertices(1e-9)
	if len(m2.Faces) != 0 {
		t.Errorf("degenerate face survived welding: %v", m2.Faces)
	}
}

func TestCentroidDegenerateFallsBack(t *testing.T) {
	m := NewMesh(0, 0)
	m.AddVertex(V(0, 0, 0))
	m.AddVertex(V(2, 0, 0))
	m.AddVertex(V(0, 2, 0))
	m.AddFace(0, 1, 2) // a flat patch: zero enclosed volume
	want := V(2.0/3, 2.0/3, 0)
	if got := m.Centroid(); !got.NearEqual(want, 1e-12) {
		t.Errorf("degenerate centroid = %v, want vertex mean %v", got, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := Box(V(0, 0, 0), V(1, 1, 1))
	c := m.Clone()
	c.Vertices[0] = V(99, 99, 99)
	c.Faces[0] = [3]int{0, 1, 2}
	if m.Vertices[0] == c.Vertices[0] {
		t.Error("Clone shares vertex storage")
	}
}

// Property: volume is invariant under random rigid motion for random boxes.
func TestQuickVolumeRigidInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 100; i++ {
		size := V(rng.Float64()*5+0.1, rng.Float64()*5+0.1, rng.Float64()*5+0.1)
		m := BoxAt(Vec3{}, size)
		want := size.X * size.Y * size.Z
		m.Transform(Transform{R: randomRotation(rng), T: randomVec(rng)})
		if !almostEq(m.Volume(), want, 1e-9*(1+want)) {
			t.Fatalf("volume %v, want %v", m.Volume(), want)
		}
	}
}
