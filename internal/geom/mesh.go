package geom

import (
	"fmt"
	"math"
	"sort"
)

// Mesh is an indexed triangle mesh. Faces index into Vertices and are
// oriented counter-clockwise when viewed from outside (outward normals),
// which the exact integral properties (Volume, Centroid, moments) rely on.
type Mesh struct {
	Vertices []Vec3
	Faces    [][3]int
}

// NewMesh returns an empty mesh with capacity hints.
func NewMesh(nv, nf int) *Mesh {
	return &Mesh{
		Vertices: make([]Vec3, 0, nv),
		Faces:    make([][3]int, 0, nf),
	}
}

// Clone returns a deep copy of m.
func (m *Mesh) Clone() *Mesh {
	c := &Mesh{
		Vertices: make([]Vec3, len(m.Vertices)),
		Faces:    make([][3]int, len(m.Faces)),
	}
	copy(c.Vertices, m.Vertices)
	copy(c.Faces, m.Faces)
	return c
}

// AddVertex appends v and returns its index.
func (m *Mesh) AddVertex(v Vec3) int {
	m.Vertices = append(m.Vertices, v)
	return len(m.Vertices) - 1
}

// AddFace appends the triangle (a, b, c).
func (m *Mesh) AddFace(a, b, c int) {
	m.Faces = append(m.Faces, [3]int{a, b, c})
}

// Triangle returns the three vertices of face i.
func (m *Mesh) Triangle(i int) (Vec3, Vec3, Vec3) {
	f := m.Faces[i]
	return m.Vertices[f[0]], m.Vertices[f[1]], m.Vertices[f[2]]
}

// FaceArea returns the area of face i.
func (m *Mesh) FaceArea(i int) float64 {
	a, b, c := m.Triangle(i)
	return 0.5 * b.Sub(a).Cross(c.Sub(a)).Len()
}

// FaceNormal returns the (unnormalized) outward normal of face i, whose
// length equals twice the face area.
func (m *Mesh) FaceNormal(i int) Vec3 {
	a, b, c := m.Triangle(i)
	return b.Sub(a).Cross(c.Sub(a))
}

// SurfaceArea returns the total surface area of the mesh.
func (m *Mesh) SurfaceArea() float64 {
	total := 0.0
	for i := range m.Faces {
		total += m.FaceArea(i)
	}
	return total
}

// Volume returns the signed enclosed volume of the mesh, computed exactly
// by the divergence theorem (sum of signed tetrahedra against the origin).
// For a closed mesh with outward-oriented faces the result is positive.
func (m *Mesh) Volume() float64 {
	vol := 0.0
	for _, f := range m.Faces {
		a, b, c := m.Vertices[f[0]], m.Vertices[f[1]], m.Vertices[f[2]]
		vol += a.Dot(b.Cross(c))
	}
	return vol / 6
}

// Centroid returns the volume centroid of the closed mesh (the centroid of
// the enclosed solid, not of the surface). It is exact for closed meshes.
// For meshes with near-zero volume the vertex average is returned instead.
func (m *Mesh) Centroid() Vec3 {
	var acc Vec3
	vol := 0.0
	for _, f := range m.Faces {
		a, b, c := m.Vertices[f[0]], m.Vertices[f[1]], m.Vertices[f[2]]
		v := a.Dot(b.Cross(c)) // 6 × signed tet volume
		vol += v
		// Tet centroid = (0+a+b+c)/4, weighted by signed volume.
		acc = acc.Add(a.Add(b).Add(c).Scale(v / 4))
	}
	if math.Abs(vol) < 1e-300 {
		return m.VertexCentroid()
	}
	return acc.Scale(1 / vol)
}

// VertexCentroid returns the arithmetic mean of the vertices.
func (m *Mesh) VertexCentroid() Vec3 {
	if len(m.Vertices) == 0 {
		return Vec3{}
	}
	var acc Vec3
	for _, v := range m.Vertices {
		acc = acc.Add(v)
	}
	return acc.Scale(1 / float64(len(m.Vertices)))
}

// Bounds returns the axis-aligned bounding box (min, max) of the mesh
// vertices. An empty mesh yields two zero vectors.
func (m *Mesh) Bounds() (min, max Vec3) {
	if len(m.Vertices) == 0 {
		return Vec3{}, Vec3{}
	}
	min, max = m.Vertices[0], m.Vertices[0]
	for _, v := range m.Vertices[1:] {
		min = min.Min(v)
		max = max.Max(v)
	}
	return min, max
}

// Extent returns the size of the bounding box along each axis.
func (m *Mesh) Extent() Vec3 {
	min, max := m.Bounds()
	return max.Sub(min)
}

// Transform applies t to every vertex in place and returns m. When the
// linear part of t has negative determinant (a reflection), face winding is
// flipped so normals stay outward.
func (m *Mesh) Transform(t Transform) *Mesh {
	for i := range m.Vertices {
		m.Vertices[i] = t.Apply(m.Vertices[i])
	}
	if t.R.Det() < 0 {
		m.FlipFaces()
	}
	return m
}

// Translate shifts every vertex by d in place and returns m.
func (m *Mesh) Translate(d Vec3) *Mesh { return m.Transform(Translation(d)) }

// ScaleUniform scales every vertex by s about the origin in place and
// returns m.
func (m *Mesh) ScaleUniform(s float64) *Mesh { return m.Transform(Scaling(s)) }

// Rotate applies the rotation r about the origin in place and returns m.
func (m *Mesh) Rotate(r Mat3) *Mesh { return m.Transform(Rotation(r)) }

// FlipFaces reverses the winding of every face in place (inverting all
// normals) and returns m.
func (m *Mesh) FlipFaces() *Mesh {
	for i, f := range m.Faces {
		m.Faces[i] = [3]int{f[0], f[2], f[1]}
	}
	return m
}

// Merge appends a copy of other's geometry into m and returns m. The two
// meshes are assumed to be disjoint solids (or intentionally overlapping;
// integral properties then add their signed contributions).
func (m *Mesh) Merge(other *Mesh) *Mesh {
	base := len(m.Vertices)
	m.Vertices = append(m.Vertices, other.Vertices...)
	for _, f := range other.Faces {
		m.Faces = append(m.Faces, [3]int{f[0] + base, f[1] + base, f[2] + base})
	}
	return m
}

// Validate checks structural soundness: every face index in range, no
// degenerate (repeated-index) faces, and all vertices finite. It returns
// the first problem found.
func (m *Mesh) Validate() error {
	n := len(m.Vertices)
	for i, v := range m.Vertices {
		if !v.IsFinite() {
			return fmt.Errorf("geom: vertex %d is not finite: %v", i, v)
		}
	}
	for i, f := range m.Faces {
		for _, idx := range f {
			if idx < 0 || idx >= n {
				return fmt.Errorf("geom: face %d references vertex %d (have %d vertices)", i, idx, n)
			}
		}
		if f[0] == f[1] || f[1] == f[2] || f[0] == f[2] {
			return fmt.Errorf("geom: face %d is degenerate: %v", i, f)
		}
	}
	return nil
}

// IsClosed reports whether every edge is shared by exactly two faces with
// opposite orientation — the watertightness condition under which Volume,
// Centroid and the moment integrals are exact.
func (m *Mesh) IsClosed() bool {
	type edge struct{ a, b int }
	count := make(map[edge]int, len(m.Faces)*3)
	for _, f := range m.Faces {
		for k := 0; k < 3; k++ {
			a, b := f[k], f[(k+1)%3]
			count[edge{a, b}]++
		}
	}
	for e, c := range count {
		if c != 1 {
			return false // duplicated directed edge
		}
		if count[edge{e.b, e.a}] != 1 {
			return false // no opposite twin
		}
	}
	return len(count) > 0
}

// WeldVertices merges vertices closer than tol (snap-to-grid hashing) and
// drops faces that become degenerate. It returns m. Welding is useful after
// Merge or file import where coincident vertices are duplicated.
func (m *Mesh) WeldVertices(tol float64) *Mesh {
	if tol <= 0 {
		tol = 1e-9
	}
	type key struct{ x, y, z int64 }
	quant := func(v Vec3) key {
		return key{
			int64(math.Round(v.X / tol)),
			int64(math.Round(v.Y / tol)),
			int64(math.Round(v.Z / tol)),
		}
	}
	remap := make([]int, len(m.Vertices))
	index := make(map[key]int, len(m.Vertices))
	verts := make([]Vec3, 0, len(m.Vertices))
	for i, v := range m.Vertices {
		k := quant(v)
		if j, ok := index[k]; ok {
			remap[i] = j
			continue
		}
		index[k] = len(verts)
		remap[i] = len(verts)
		verts = append(verts, v)
	}
	faces := m.Faces[:0]
	for _, f := range m.Faces {
		g := [3]int{remap[f[0]], remap[f[1]], remap[f[2]]}
		if g[0] == g[1] || g[1] == g[2] || g[0] == g[2] {
			continue
		}
		faces = append(faces, g)
	}
	m.Vertices = verts
	m.Faces = faces
	return m
}

// EulerCharacteristic returns V − E + F counting each undirected edge once.
// A closed orientable surface of genus g has characteristic 2−2g, so a
// topological sphere yields 2 and a torus 0.
func (m *Mesh) EulerCharacteristic() int {
	type edge struct{ a, b int }
	edges := make(map[edge]struct{}, len(m.Faces)*3)
	for _, f := range m.Faces {
		for k := 0; k < 3; k++ {
			a, b := f[k], f[(k+1)%3]
			if a > b {
				a, b = b, a
			}
			edges[edge{a, b}] = struct{}{}
		}
	}
	return len(m.Vertices) - len(edges) + len(m.Faces)
}

// AspectRatios returns the two bounding-box aspect ratios used by the
// geometric-parameters descriptor: longest/shortest and middle/shortest
// extent. Zero extents are clamped to avoid division by zero.
func (m *Mesh) AspectRatios() (longOverShort, midOverShort float64) {
	e := m.Extent()
	d := []float64{e.X, e.Y, e.Z}
	sort.Float64s(d)
	shortest := math.Max(d[0], 1e-12)
	return d[2] / shortest, d[1] / shortest
}
