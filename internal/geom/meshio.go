package geom

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// File I/O for the three interchange formats engineering tools commonly
// emit: OFF (the format the corpus is stored in), Wavefront OBJ, and STL
// (both ASCII and binary). Polygonal faces with more than three vertices
// are fan-triangulated on read.
//
// The readers treat their input as untrusted: declared counts, face
// degrees, and token lengths are bounded by ReadLimits, preallocation is
// clamped to what the stream can plausibly back, and non-finite
// coordinates are rejected, so no input can cause unbounded allocation, a
// panic, or a NaN-poisoned mesh.

// Default ReadLimits values. The vertex/triangle caps comfortably cover
// real engineering models (the densest CAD exports run to a few million
// triangles) while keeping a hostile header from requesting gigabytes.
const (
	DefaultMaxVertices   = 4 << 20  // ~4.2M vertices
	DefaultMaxTriangles  = 16 << 20 // ~16.8M triangles after fan-triangulation
	DefaultMaxFaceDegree = 255      // vertices per polygonal face record
	DefaultMaxTokenBytes = 1 << 20  // one token, line, or comment

	// maxPrealloc bounds how many vertex/face slots a reader reserves from
	// a declared count before any geometry has actually been read — the
	// same distrust the binary-STL triangle guard expresses. Growth past it
	// is amortized append, paid only for data that really arrives.
	maxPrealloc = 1 << 16
)

// ReadLimits bound what an untrusted mesh stream may declare or contain.
// Zero fields take the Default* constants; negative fields disable the
// corresponding cap.
type ReadLimits struct {
	// MaxVertices caps the vertex count (declared or accumulated).
	MaxVertices int
	// MaxTriangles caps the triangle count after fan-triangulation.
	MaxTriangles int
	// MaxFaceDegree caps the vertex count of one polygonal face record.
	MaxFaceDegree int
	// MaxTokenBytes caps one scanner token — a number, a line, or a
	// comment. Exceeding it fails the parse (bufio.ErrTooLong) instead of
	// growing the scan buffer without bound.
	MaxTokenBytes int
}

func limitOf(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return math.MaxInt
	}
	return v
}

func (l ReadLimits) withDefaults() ReadLimits {
	l.MaxVertices = limitOf(l.MaxVertices, DefaultMaxVertices)
	l.MaxTriangles = limitOf(l.MaxTriangles, DefaultMaxTriangles)
	l.MaxFaceDegree = limitOf(l.MaxFaceDegree, DefaultMaxFaceDegree)
	l.MaxTokenBytes = limitOf(l.MaxTokenBytes, DefaultMaxTokenBytes)
	return l
}

// prealloc clamps a declared element count to what a reader may reserve
// up front.
func prealloc(declared int) int { return min(declared, maxPrealloc) }

// ReadMeshFile loads a mesh with default ReadLimits, dispatching on the
// file extension (.off, .obj, .stl; case-insensitive).
func ReadMeshFile(path string) (*Mesh, error) {
	return ReadMeshFileLimits(path, ReadLimits{})
}

// ReadMeshFileLimits is ReadMeshFile with explicit input bounds.
func ReadMeshFileLimits(path string, lim ReadLimits) (*Mesh, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".off":
		return ReadOFFLimits(f, lim)
	case ".obj":
		return ReadOBJLimits(f, lim)
	case ".stl":
		return ReadSTLLimits(f, lim)
	default:
		return nil, fmt.Errorf("geom: unsupported mesh extension %q", filepath.Ext(path))
	}
}

// WriteMeshFile saves a mesh, dispatching on the file extension
// (.off, .obj, .stl — STL is written in binary form).
func WriteMeshFile(path string, m *Mesh) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	switch strings.ToLower(filepath.Ext(path)) {
	case ".off":
		err = WriteOFF(w, m)
	case ".obj":
		err = WriteOBJ(w, m)
	case ".stl":
		err = WriteSTLBinary(w, m)
	default:
		return fmt.Errorf("geom: unsupported mesh extension %q", filepath.Ext(path))
	}
	if err != nil {
		return err
	}
	return w.Flush()
}

// ReadOFF parses the Object File Format with default ReadLimits. Comments
// (#) and blank lines are skipped; faces with n>3 vertices are
// fan-triangulated.
func ReadOFF(r io.Reader) (*Mesh, error) { return ReadOFFLimits(r, ReadLimits{}) }

// ReadOFFLimits is ReadOFF with explicit input bounds. The declared
// header counts are checked against the limits before anything is
// allocated, and preallocation is clamped independently of what the
// header claims.
func ReadOFFLimits(r io.Reader, lim ReadLimits) (*Mesh, error) {
	lim = lim.withDefaults()
	sc := newTokenScanner(r, lim.MaxTokenBytes)
	head, err := sc.token()
	if err != nil {
		return nil, fmt.Errorf("geom: OFF: missing header: %w", err)
	}
	if head != "OFF" {
		return nil, fmt.Errorf("geom: OFF: bad header %q", head)
	}
	nv, err := sc.intToken()
	if err != nil {
		return nil, fmt.Errorf("geom: OFF: vertex count: %w", err)
	}
	nf, err := sc.intToken()
	if err != nil {
		return nil, fmt.Errorf("geom: OFF: face count: %w", err)
	}
	if _, err := sc.intToken(); err != nil { // edge count, ignored
		return nil, fmt.Errorf("geom: OFF: edge count: %w", err)
	}
	if nv < 0 || nf < 0 {
		return nil, fmt.Errorf("geom: OFF: negative counts (%d vertices, %d faces)", nv, nf)
	}
	if nv > lim.MaxVertices {
		return nil, fmt.Errorf("geom: OFF: declares %d vertices, limit %d", nv, lim.MaxVertices)
	}
	if nf > lim.MaxTriangles {
		return nil, fmt.Errorf("geom: OFF: declares %d faces, limit %d", nf, lim.MaxTriangles)
	}
	m := NewMesh(prealloc(nv), prealloc(nf))
	for i := 0; i < nv; i++ {
		x, err := sc.finiteToken()
		if err != nil {
			return nil, fmt.Errorf("geom: OFF: vertex %d: %w", i, err)
		}
		y, err := sc.finiteToken()
		if err != nil {
			return nil, fmt.Errorf("geom: OFF: vertex %d: %w", i, err)
		}
		z, err := sc.finiteToken()
		if err != nil {
			return nil, fmt.Errorf("geom: OFF: vertex %d: %w", i, err)
		}
		m.AddVertex(V(x, y, z))
	}
	tris := 0
	for i := 0; i < nf; i++ {
		n, err := sc.intToken()
		if err != nil {
			return nil, fmt.Errorf("geom: OFF: face %d: %w", i, err)
		}
		if n < 3 {
			return nil, fmt.Errorf("geom: OFF: face %d has %d vertices", i, n)
		}
		if n > lim.MaxFaceDegree {
			return nil, fmt.Errorf("geom: OFF: face %d has %d vertices, limit %d", i, n, lim.MaxFaceDegree)
		}
		if tris += n - 2; tris > lim.MaxTriangles {
			return nil, fmt.Errorf("geom: OFF: more than %d triangles after triangulation", lim.MaxTriangles)
		}
		idx := make([]int, n)
		for j := 0; j < n; j++ {
			idx[j], err = sc.intToken()
			if err != nil {
				return nil, fmt.Errorf("geom: OFF: face %d index %d: %w", i, j, err)
			}
			if idx[j] < 0 || idx[j] >= nv {
				return nil, fmt.Errorf("geom: OFF: face %d references vertex %d of %d", i, idx[j], nv)
			}
		}
		for j := 1; j < n-1; j++ { // fan triangulation
			m.AddFace(idx[0], idx[j], idx[j+1])
		}
	}
	return m, nil
}

// WriteOFF emits m in Object File Format.
func WriteOFF(w io.Writer, m *Mesh) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "OFF")
	fmt.Fprintf(bw, "%d %d 0\n", len(m.Vertices), len(m.Faces))
	for _, v := range m.Vertices {
		fmt.Fprintf(bw, "%.9g %.9g %.9g\n", v.X, v.Y, v.Z)
	}
	for _, f := range m.Faces {
		fmt.Fprintf(bw, "3 %d %d %d\n", f[0], f[1], f[2])
	}
	return bw.Flush()
}

// ReadOBJ parses Wavefront OBJ geometry with default ReadLimits (v and f
// records; texture/normal indices after slashes and all other record types
// are ignored). Negative (relative) indices are supported.
func ReadOBJ(r io.Reader) (*Mesh, error) { return ReadOBJLimits(r, ReadLimits{}) }

// ReadOBJLimits is ReadOBJ with explicit input bounds, applied as running
// caps while records accumulate (OBJ declares no counts up front).
func ReadOBJLimits(r io.Reader, lim ReadLimits) (*Mesh, error) {
	lim = lim.withDefaults()
	m := NewMesh(0, 0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 4096), lim.MaxTokenBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		switch fields[0] {
		case "v":
			if len(fields) < 4 {
				return nil, fmt.Errorf("geom: OBJ line %d: short vertex", lineNo)
			}
			if len(m.Vertices) >= lim.MaxVertices {
				return nil, fmt.Errorf("geom: OBJ line %d: more than %d vertices", lineNo, lim.MaxVertices)
			}
			var c [3]float64
			for i := 0; i < 3; i++ {
				x, err := strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("geom: OBJ line %d: %w", lineNo, err)
				}
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return nil, fmt.Errorf("geom: OBJ line %d: non-finite coordinate %q", lineNo, fields[i+1])
				}
				c[i] = x
			}
			m.AddVertex(V(c[0], c[1], c[2]))
		case "f":
			if len(fields) < 4 {
				return nil, fmt.Errorf("geom: OBJ line %d: face with <3 vertices", lineNo)
			}
			if len(fields)-1 > lim.MaxFaceDegree {
				return nil, fmt.Errorf("geom: OBJ line %d: face with %d vertices, limit %d", lineNo, len(fields)-1, lim.MaxFaceDegree)
			}
			if len(m.Faces)+len(fields)-3 > lim.MaxTriangles {
				return nil, fmt.Errorf("geom: OBJ line %d: more than %d triangles", lineNo, lim.MaxTriangles)
			}
			idx := make([]int, 0, len(fields)-1)
			for _, fd := range fields[1:] {
				s := fd
				if k := strings.IndexByte(s, '/'); k >= 0 {
					s = s[:k]
				}
				n, err := strconv.Atoi(s)
				if err != nil {
					return nil, fmt.Errorf("geom: OBJ line %d: bad index %q: %w", lineNo, fd, err)
				}
				if n < 0 {
					n = len(m.Vertices) + 1 + n
				}
				if n < 1 || n > len(m.Vertices) {
					return nil, fmt.Errorf("geom: OBJ line %d: index %d out of range", lineNo, n)
				}
				idx = append(idx, n-1)
			}
			for j := 1; j < len(idx)-1; j++ {
				m.AddFace(idx[0], idx[j], idx[j+1])
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// WriteOBJ emits m as Wavefront OBJ.
func WriteOBJ(w io.Writer, m *Mesh) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# exported by threedess/internal/geom")
	for _, v := range m.Vertices {
		fmt.Fprintf(bw, "v %.9g %.9g %.9g\n", v.X, v.Y, v.Z)
	}
	for _, f := range m.Faces {
		fmt.Fprintf(bw, "f %d %d %d\n", f[0]+1, f[1]+1, f[2]+1)
	}
	return bw.Flush()
}

// ReadSTL parses an STL stream with default ReadLimits, auto-detecting
// ASCII vs binary form. STL carries no connectivity, so coincident
// vertices are welded after loading to recover a usable indexed mesh.
func ReadSTL(r io.Reader) (*Mesh, error) { return ReadSTLLimits(r, ReadLimits{}) }

// ReadSTLLimits is ReadSTL with explicit input bounds.
func ReadSTLLimits(r io.Reader, lim ReadLimits) (*Mesh, error) {
	lim = lim.withDefaults()
	br := bufio.NewReader(r)
	head, err := br.Peek(5)
	if err != nil {
		return nil, fmt.Errorf("geom: STL: %w", err)
	}
	if string(head) == "solid" {
		// ASCII unless the "solid" header is a lie (some binary exporters
		// start with "solid" too); a real ASCII file contains "facet".
		probe, _ := br.Peek(512)
		if strings.Contains(string(probe), "facet") {
			return readSTLASCII(br, lim)
		}
	}
	return readSTLBinary(br, lim)
}

func readSTLASCII(r io.Reader, lim ReadLimits) (*Mesh, error) {
	m := NewMesh(0, 0)
	sc := newTokenScanner(r, lim.MaxTokenBytes)
	for {
		tok, err := sc.token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if tok != "vertex" {
			continue
		}
		if len(m.Vertices) >= 3*lim.MaxTriangles || len(m.Vertices) >= lim.MaxVertices {
			return nil, fmt.Errorf("geom: STL: more than %d vertices", min(3*lim.MaxTriangles, lim.MaxVertices))
		}
		x, err := sc.finiteToken()
		if err != nil {
			return nil, fmt.Errorf("geom: STL vertex: %w", err)
		}
		y, err := sc.finiteToken()
		if err != nil {
			return nil, fmt.Errorf("geom: STL vertex: %w", err)
		}
		z, err := sc.finiteToken()
		if err != nil {
			return nil, fmt.Errorf("geom: STL vertex: %w", err)
		}
		m.AddVertex(V(x, y, z))
	}
	if len(m.Vertices)%3 != 0 {
		return nil, fmt.Errorf("geom: STL: %d vertices is not a multiple of 3", len(m.Vertices))
	}
	for i := 0; i+2 < len(m.Vertices); i += 3 {
		m.AddFace(i, i+1, i+2)
	}
	return m.WeldVertices(0), nil
}

func readSTLBinary(r io.Reader, lim ReadLimits) (*Mesh, error) {
	header := make([]byte, 80)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("geom: binary STL header: %w", err)
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("geom: binary STL count: %w", err)
	}
	// The historical 50M guard still applies even when the configured
	// limit is larger; either way the count is attacker-controlled, so
	// preallocation below is clamped rather than trusted.
	if int64(count) > 50_000_000 || int64(count) > int64(lim.MaxTriangles) {
		return nil, fmt.Errorf("geom: binary STL claims %d triangles; refusing", count)
	}
	m := NewMesh(prealloc(int(count)*3), prealloc(int(count)))
	buf := make([]byte, 50) // 12 normal + 36 vertex + 2 attribute bytes
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("geom: binary STL triangle %d: %w", i, err)
		}
		base := len(m.Vertices)
		for v := 0; v < 3; v++ {
			off := 12 + v*12
			x := math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
			y := math.Float32frombits(binary.LittleEndian.Uint32(buf[off+4:]))
			z := math.Float32frombits(binary.LittleEndian.Uint32(buf[off+8:]))
			if !V(float64(x), float64(y), float64(z)).IsFinite() {
				return nil, fmt.Errorf("geom: binary STL triangle %d: non-finite vertex", i)
			}
			m.AddVertex(V(float64(x), float64(y), float64(z)))
		}
		m.AddFace(base, base+1, base+2)
	}
	return m.WeldVertices(0), nil
}

// WriteSTLBinary emits m as binary STL.
func WriteSTLBinary(w io.Writer, m *Mesh) error {
	header := make([]byte, 80)
	copy(header, "threedess binary STL export")
	if _, err := w.Write(header); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(m.Faces))); err != nil {
		return err
	}
	buf := make([]byte, 50)
	for i := range m.Faces {
		n := m.FaceNormal(i).Normalize()
		a, b, c := m.Triangle(i)
		put := func(off int, v Vec3) {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(v.X)))
			binary.LittleEndian.PutUint32(buf[off+4:], math.Float32bits(float32(v.Y)))
			binary.LittleEndian.PutUint32(buf[off+8:], math.Float32bits(float32(v.Z)))
		}
		put(0, n)
		put(12, a)
		put(24, b)
		put(36, c)
		buf[48], buf[49] = 0, 0
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// tokenScanner yields whitespace-separated tokens, skipping '#' comments to
// end of line (as used by OFF).
type tokenScanner struct {
	sc *bufio.Scanner
}

// newTokenScanner bounds the scan buffer at maxToken bytes: a single
// token or an unterminated comment longer than that fails the scan
// (bufio.ErrTooLong) instead of buffering attacker-sized data.
func newTokenScanner(r io.Reader, maxToken int) *tokenScanner {
	if maxToken <= 0 || maxToken > math.MaxInt32 {
		maxToken = math.MaxInt32
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, min(4096, maxToken)), maxToken)
	sc.Split(splitTokensSkipComments)
	return &tokenScanner{sc: sc}
}

func splitTokensSkipComments(data []byte, atEOF bool) (advance int, token []byte, err error) {
	i := 0
	for {
		// Skip whitespace.
		for i < len(data) && (data[i] == ' ' || data[i] == '\t' || data[i] == '\n' || data[i] == '\r') {
			i++
		}
		// Skip comment to end of line.
		if i < len(data) && data[i] == '#' {
			j := i
			for j < len(data) && data[j] != '\n' {
				j++
			}
			if j == len(data) && !atEOF {
				return 0, nil, nil // need more data to find EOL
			}
			i = j
			continue
		}
		break
	}
	if i == len(data) {
		if atEOF {
			return len(data), nil, nil
		}
		return i, nil, nil
	}
	start := i
	for i < len(data) && data[i] != ' ' && data[i] != '\t' && data[i] != '\n' && data[i] != '\r' && data[i] != '#' {
		i++
	}
	if i == len(data) && !atEOF {
		return start, nil, nil // token may continue
	}
	return i, data[start:i], nil
}

func (t *tokenScanner) token() (string, error) {
	if t.sc.Scan() {
		return t.sc.Text(), nil
	}
	if err := t.sc.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

func (t *tokenScanner) intToken() (int, error) {
	s, err := t.token()
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(s)
}

func (t *tokenScanner) floatToken() (float64, error) {
	s, err := t.token()
	if err != nil {
		return 0, err
	}
	return strconv.ParseFloat(s, 64)
}

// finiteToken parses a coordinate, rejecting NaN and ±Inf: the interchange
// formats have no legitimate use for them, and a non-finite vertex poisons
// every downstream integral and index structure.
func (t *tokenScanner) finiteToken() (float64, error) {
	v, err := t.floatToken()
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("geom: non-finite coordinate %g", v)
	}
	return v, nil
}
