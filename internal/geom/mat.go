package geom

import (
	"fmt"
	"math"
)

// Mat3 is a 3×3 matrix in row-major order.
type Mat3 [3][3]float64

// Identity3 returns the 3×3 identity matrix.
func Identity3() Mat3 {
	return Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// MatFromRows builds a Mat3 whose rows are r0, r1, r2.
func MatFromRows(r0, r1, r2 Vec3) Mat3 {
	return Mat3{
		{r0.X, r0.Y, r0.Z},
		{r1.X, r1.Y, r1.Z},
		{r2.X, r2.Y, r2.Z},
	}
}

// MatFromCols builds a Mat3 whose columns are c0, c1, c2.
func MatFromCols(c0, c1, c2 Vec3) Mat3 {
	return Mat3{
		{c0.X, c1.X, c2.X},
		{c0.Y, c1.Y, c2.Y},
		{c0.Z, c1.Z, c2.Z},
	}
}

// Row returns the i-th row of m as a vector.
func (m Mat3) Row(i int) Vec3 { return Vec3{m[i][0], m[i][1], m[i][2]} }

// Col returns the j-th column of m as a vector.
func (m Mat3) Col(j int) Vec3 { return Vec3{m[0][j], m[1][j], m[2][j]} }

// MulVec returns m · v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z,
		m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z,
		m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z,
	}
}

// Mul returns the matrix product m · n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[i][0]*n[0][j] + m[i][1]*n[1][j] + m[i][2]*n[2][j]
		}
	}
	return r
}

// Transpose returns the transpose of m.
func (m Mat3) Transpose() Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[j][i]
		}
	}
	return r
}

// Scale returns m with every entry multiplied by s.
func (m Mat3) Scale(s float64) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[i][j] * s
		}
	}
	return r
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

// Trace returns the trace of m.
func (m Mat3) Trace() float64 { return m[0][0] + m[1][1] + m[2][2] }

// Inverse returns the inverse of m. It returns an error when m is singular
// (|det| below 1e-300).
func (m Mat3) Inverse() (Mat3, error) {
	d := m.Det()
	if math.Abs(d) < 1e-300 {
		return Mat3{}, fmt.Errorf("geom: matrix is singular (det=%g)", d)
	}
	inv := Mat3{
		{m[1][1]*m[2][2] - m[1][2]*m[2][1], m[0][2]*m[2][1] - m[0][1]*m[2][2], m[0][1]*m[1][2] - m[0][2]*m[1][1]},
		{m[1][2]*m[2][0] - m[1][0]*m[2][2], m[0][0]*m[2][2] - m[0][2]*m[2][0], m[0][2]*m[1][0] - m[0][0]*m[1][2]},
		{m[1][0]*m[2][1] - m[1][1]*m[2][0], m[0][1]*m[2][0] - m[0][0]*m[2][1], m[0][0]*m[1][1] - m[0][1]*m[1][0]},
	}
	return inv.Scale(1 / d), nil
}

// IsSymmetric reports whether m is symmetric within eps.
func (m Mat3) IsSymmetric(eps float64) bool {
	return math.Abs(m[0][1]-m[1][0]) <= eps &&
		math.Abs(m[0][2]-m[2][0]) <= eps &&
		math.Abs(m[1][2]-m[2][1]) <= eps
}

// IsRotation reports whether m is a proper rotation (orthonormal with
// determinant +1) within eps.
func (m Mat3) IsRotation(eps float64) bool {
	mt := m.Mul(m.Transpose())
	id := Identity3()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(mt[i][j]-id[i][j]) > eps {
				return false
			}
		}
	}
	return math.Abs(m.Det()-1) <= eps
}

// RotationX returns the rotation matrix about the X axis by angle radians.
func RotationX(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{{1, 0, 0}, {0, c, -s}, {0, s, c}}
}

// RotationY returns the rotation matrix about the Y axis by angle radians.
func RotationY(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{{c, 0, s}, {0, 1, 0}, {-s, 0, c}}
}

// RotationZ returns the rotation matrix about the Z axis by angle radians.
func RotationZ(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{{c, -s, 0}, {s, c, 0}, {0, 0, 1}}
}

// RotationAxisAngle returns the rotation about the (not necessarily unit)
// axis by angle radians, via Rodrigues' formula. A zero axis yields the
// identity.
func RotationAxisAngle(axis Vec3, angle float64) Mat3 {
	u := axis.Normalize()
	if u.Len() == 0 {
		return Identity3()
	}
	c, s := math.Cos(angle), math.Sin(angle)
	t := 1 - c
	return Mat3{
		{c + u.X*u.X*t, u.X*u.Y*t - u.Z*s, u.X*u.Z*t + u.Y*s},
		{u.Y*u.X*t + u.Z*s, c + u.Y*u.Y*t, u.Y*u.Z*t - u.X*s},
		{u.Z*u.X*t - u.Y*s, u.Z*u.Y*t + u.X*s, c + u.Z*u.Z*t},
	}
}

// Transform is an affine map x ↦ R·x + T with a linear part R (typically a
// rotation combined with scaling) and translation T.
type Transform struct {
	R Mat3
	T Vec3
}

// IdentityTransform returns the identity transform.
func IdentityTransform() Transform { return Transform{R: Identity3()} }

// Apply maps the point p through the transform.
func (t Transform) Apply(p Vec3) Vec3 { return t.R.MulVec(p).Add(t.T) }

// Compose returns the transform equivalent to applying u first, then t.
func (t Transform) Compose(u Transform) Transform {
	return Transform{R: t.R.Mul(u.R), T: t.R.MulVec(u.T).Add(t.T)}
}

// Translation returns a pure translation by d.
func Translation(d Vec3) Transform { return Transform{R: Identity3(), T: d} }

// Scaling returns a uniform scaling by s about the origin.
func Scaling(s float64) Transform { return Transform{R: Identity3().Scale(s)} }

// Rotation returns a pure rotation transform.
func Rotation(r Mat3) Transform { return Transform{R: r} }
