package geom

import (
	"math"
	"math/rand"
	"sort"
)

// SampleSurface draws n points uniformly from the surface of m (area-
// weighted triangle selection followed by uniform barycentric sampling),
// using the supplied random source for reproducibility. It is used by the
// shape-distribution extension descriptor and by tests that need surface
// point clouds.
func SampleSurface(m *Mesh, n int, rng *rand.Rand) []Vec3 {
	if n <= 0 || len(m.Faces) == 0 {
		return nil
	}
	// Cumulative area table for O(log F) triangle selection.
	cum := make([]float64, len(m.Faces))
	total := 0.0
	for i := range m.Faces {
		total += m.FaceArea(i)
		cum[i] = total
	}
	pts := make([]Vec3, 0, n)
	for k := 0; k < n; k++ {
		t := rng.Float64() * total
		i := sort.SearchFloat64s(cum, t)
		if i >= len(cum) {
			i = len(cum) - 1
		}
		a, b, c := m.Triangle(i)
		// Uniform barycentric sample (Osada et al.).
		r1 := math.Sqrt(rng.Float64())
		r2 := rng.Float64()
		p := a.Scale(1 - r1).
			Add(b.Scale(r1 * (1 - r2))).
			Add(c.Scale(r1 * r2))
		pts = append(pts, p)
	}
	return pts
}

// PairwiseDistanceHistogram samples npairs random point pairs from the
// surface of m and histograms their distances into bins buckets over
// [0, maxDist] (maxDist ≤ 0 means use the observed maximum). The histogram
// is normalized to sum to 1. This is the D2 shape distribution of Osada et
// al., provided as the extension descriptor the paper's related-work
// section discusses.
func PairwiseDistanceHistogram(m *Mesh, npairs, bins int, maxDist float64, rng *rand.Rand) []float64 {
	if bins <= 0 || npairs <= 0 {
		return nil
	}
	pts := SampleSurface(m, 2*npairs, rng)
	if len(pts) == 0 {
		return make([]float64, bins)
	}
	dists := make([]float64, 0, npairs)
	observedMax := 0.0
	for i := 0; i+1 < len(pts); i += 2 {
		d := pts[i].Dist(pts[i+1])
		dists = append(dists, d)
		if d > observedMax {
			observedMax = d
		}
	}
	if maxDist <= 0 {
		maxDist = observedMax
	}
	h := make([]float64, bins)
	if maxDist == 0 {
		return h
	}
	for _, d := range dists {
		b := int(d / maxDist * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		h[b]++
	}
	for i := range h {
		h[i] /= float64(len(dists))
	}
	return h
}
