package geom

import (
	"fmt"
	"math"
	"sort"
)

// Vec2 is a 2-component vector used by the polygon/triangulation utilities
// that back the extrusion primitives.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the 2D cross product (z-component of the 3D cross).
func (v Vec2) Cross(w Vec2) float64 { return v.X*w.Y - v.Y*w.X }

// Len returns the Euclidean norm.
func (v Vec2) Len() float64 { return math.Hypot(v.X, v.Y) }

// Polygon is a closed 2D loop given by its vertices in order (no repeated
// final vertex).
type Polygon []Vec2

// SignedArea returns the signed area of p (positive when counter-clockwise).
func (p Polygon) SignedArea() float64 {
	a := 0.0
	for i := range p {
		j := (i + 1) % len(p)
		a += p[i].Cross(p[j])
	}
	return a / 2
}

// Reverse reverses vertex order in place and returns p.
func (p Polygon) Reverse() Polygon {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Contains reports whether the point q lies strictly inside p (crossing
// parity test; boundary points are unspecified).
func (p Polygon) Contains(q Vec2) bool {
	in := false
	for i := range p {
		j := (i + 1) % len(p)
		a, b := p[i], p[j]
		if (a.Y > q.Y) != (b.Y > q.Y) {
			xc := a.X + (q.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if q.X < xc {
				in = !in
			}
		}
	}
	return in
}

// Poly builds a Polygon from a flat list of x, y coordinate pairs:
// Poly(x0, y0, x1, y1, …). It panics on an odd number of values.
func Poly(coords ...float64) Polygon {
	if len(coords)%2 != 0 {
		panic(fmt.Sprintf("geom: Poly needs x,y pairs, got %d values", len(coords)))
	}
	p := make(Polygon, len(coords)/2)
	for i := range p {
		p[i] = Vec2{coords[2*i], coords[2*i+1]}
	}
	return p
}

// XY constructs a Vec2.
func XY(x, y float64) Vec2 { return Vec2{x, y} }

// CirclePolygon returns a regular n-gon approximating the circle of the
// given radius centered at c, counter-clockwise, starting at angle phase.
func CirclePolygon(c Vec2, radius float64, n int, phase float64) Polygon {
	if n < 3 {
		n = 3
	}
	p := make(Polygon, n)
	for i := 0; i < n; i++ {
		a := phase + 2*math.Pi*float64(i)/float64(n)
		p[i] = Vec2{c.X + radius*math.Cos(a), c.Y + radius*math.Sin(a)}
	}
	return p
}

// RectPolygon returns the axis-aligned rectangle [x0,x1]×[y0,y1] as a
// counter-clockwise polygon.
func RectPolygon(x0, y0, x1, y1 float64) Polygon {
	return Polygon{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}}
}

// TriangulatePolygon triangulates the simple polygon described by outer
// (counter-clockwise) with optional holes (each a simple loop strictly
// inside outer and disjoint from the others; orientation of the holes is
// normalized internally). It returns the vertex list and triangle indices
// with counter-clockwise winding.
//
// Holes are joined to the outer boundary with bridge edges (David Eberly's
// method: connect each hole's rightmost vertex to a visible outer vertex),
// then the merged simple polygon is ear-clipped.
func TriangulatePolygon(outer Polygon, holes []Polygon) (verts []Vec2, tris [][3]int, err error) {
	if len(outer) < 3 {
		return nil, nil, fmt.Errorf("geom: outer polygon needs ≥3 vertices, got %d", len(outer))
	}
	poly := make(Polygon, len(outer))
	copy(poly, outer)
	if poly.SignedArea() < 0 {
		poly.Reverse()
	}
	// Normalize holes to clockwise and merge rightmost-first, so earlier
	// bridges never occlude later holes.
	hs := make([]Polygon, 0, len(holes))
	for _, h := range holes {
		if len(h) < 3 {
			return nil, nil, fmt.Errorf("geom: hole needs ≥3 vertices, got %d", len(h))
		}
		hc := make(Polygon, len(h))
		copy(hc, h)
		if hc.SignedArea() > 0 {
			hc.Reverse()
		}
		hs = append(hs, hc)
	}
	sort.Slice(hs, func(i, j int) bool {
		return maxXVertex(hs[i]).X > maxXVertex(hs[j]).X
	})
	for _, h := range hs {
		poly, err = bridgeHole(poly, h)
		if err != nil {
			return nil, nil, err
		}
	}
	tris, err = earClip(poly)
	if err != nil {
		return nil, nil, err
	}
	return poly, tris, nil
}

func maxXVertex(p Polygon) Vec2 {
	best := p[0]
	for _, v := range p[1:] {
		if v.X > best.X {
			best = v
		}
	}
	return best
}

// bridgeHole merges the clockwise hole into the counter-clockwise polygon
// by duplicating a mutually visible vertex pair.
func bridgeHole(poly Polygon, hole Polygon) (Polygon, error) {
	// M: hole vertex with maximum x.
	mi := 0
	for i := range hole {
		if hole[i].X > hole[mi].X {
			mi = i
		}
	}
	m := hole[mi]

	// Cast a ray from M in +x; find the closest intersected polygon edge.
	// The crossing count doubles as a containment check: an even count
	// means M (and hence the hole) lies outside the polygon.
	bestT := math.Inf(1)
	bestEdge := -1
	crossings := 0
	var hit Vec2
	for i := range poly {
		j := (i + 1) % len(poly)
		a, b := poly[i], poly[j]
		if (a.Y > m.Y) == (b.Y > m.Y) {
			continue
		}
		t := a.X + (m.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
		if t < m.X {
			continue
		}
		crossings++
		if t < bestT {
			bestT = t
			bestEdge = i
			hit = Vec2{t, m.Y}
		}
	}
	if bestEdge == -1 || crossings%2 == 0 {
		return nil, fmt.Errorf("geom: hole at %v is not inside the outer polygon", m)
	}
	// Candidate visible vertex: the endpoint of the hit edge with larger x
	// (guaranteed to the right of M).
	j := (bestEdge + 1) % len(poly)
	pi := bestEdge
	if poly[j].X > poly[pi].X {
		pi = j
	}
	// If some reflex vertex lies inside triangle (M, hit, candidate), the
	// candidate may be occluded; pick the inside vertex minimizing the
	// angle to the +x ray (standard hole-bridging refinement).
	cand := pi
	minAngle := math.Inf(1)
	for i := range poly {
		v := poly[i]
		if v == m {
			continue
		}
		if pointInTriangle(v, m, hit, poly[pi]) {
			d := v.Sub(m)
			ang := math.Abs(math.Atan2(d.Y, d.X))
			if ang < minAngle {
				minAngle = ang
				cand = i
			}
		}
	}
	// Splice: poly[0..cand], M, hole[mi+1..], hole[..mi], M? — standard
	// splice duplicates both bridge endpoints:
	// ..., poly[cand], hole[mi], hole[mi+1], ..., hole[mi-1], hole[mi],
	// poly[cand], poly[cand+1], ...
	out := make(Polygon, 0, len(poly)+len(hole)+2)
	out = append(out, poly[:cand+1]...)
	for k := 0; k <= len(hole); k++ { // hole[mi] .. around .. hole[mi] again
		out = append(out, hole[(mi+k)%len(hole)])
	}
	out = append(out, poly[cand])
	out = append(out, poly[cand+1:]...)
	return out, nil
}

func pointInTriangle(p, a, b, c Vec2) bool {
	d1 := p.Sub(a).Cross(b.Sub(a))
	d2 := p.Sub(b).Cross(c.Sub(b))
	d3 := p.Sub(c).Cross(a.Sub(c))
	hasNeg := d1 < 0 || d2 < 0 || d3 < 0
	hasPos := d1 > 0 || d2 > 0 || d3 > 0
	return !(hasNeg && hasPos)
}


// earClip triangulates a simple counter-clockwise polygon (possibly with
// duplicated bridge vertices) and returns index triangles.
func earClip(poly Polygon) ([][3]int, error) {
	n := len(poly)
	if n < 3 {
		return nil, fmt.Errorf("geom: cannot triangulate polygon with %d vertices", n)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var tris [][3]int
	// Degenerate-safe ear clipping with a stall guard.
	guard := 0
	for len(idx) > 3 {
		clipped := false
		m := len(idx)
		for i := 0; i < m; i++ {
			ia, ib, ic := idx[(i+m-1)%m], idx[i], idx[(i+1)%m]
			a, b, c := poly[ia], poly[ib], poly[ic]
			cross := b.Sub(a).Cross(c.Sub(a))
			if cross <= 1e-14 { // reflex or collinear
				continue
			}
			ear := true
			for _, jv := range idx {
				if jv == ia || jv == ib || jv == ic {
					continue
				}
				q := poly[jv]
				if q == a || q == b || q == c {
					// A duplicated bridge vertex coincides with an ear
					// corner; it only blocks when the polygon walks
					// through it into the ear's interior (checked via its
					// neighbors below).
					continue
				}
				if pointInTriangle(q, a, b, c) {
					ear = false
					break
				}
			}
			if !ear {
				continue
			}
			tris = append(tris, [3]int{ia, ib, ic})
			idx = append(idx[:i], idx[i+1:]...)
			clipped = true
			break
		}
		if !clipped {
			// Relax: clip the convex vertex with smallest |area| even if
			// the containment test failed (handles collinear bridges).
			best, bestCross := -1, math.Inf(1)
			for i := 0; i < len(idx); i++ {
				m := len(idx)
				a := poly[idx[(i+m-1)%m]]
				b := poly[idx[i]]
				c := poly[idx[(i+1)%m]]
				cr := b.Sub(a).Cross(c.Sub(a))
				if cr > 0 && cr < bestCross {
					bestCross = cr
					best = i
				}
			}
			if best == -1 {
				return nil, fmt.Errorf("geom: ear clipping stalled with %d vertices left", len(idx))
			}
			m := len(idx)
			tris = append(tris, [3]int{idx[(best+m-1)%m], idx[best], idx[(best+1)%m]})
			idx = append(idx[:best], idx[best+1:]...)
		}
		if guard++; guard > 10*n {
			return nil, fmt.Errorf("geom: ear clipping did not terminate")
		}
	}
	tris = append(tris, [3]int{idx[0], idx[1], idx[2]})
	// Drop zero-area output triangles (possible at bridge duplicates).
	out := tris[:0]
	for _, t := range tris {
		a, b, c := poly[t[0]], poly[t[1]], poly[t[2]]
		if math.Abs(b.Sub(a).Cross(c.Sub(a))) > 1e-14 {
			out = append(out, t)
		}
	}
	return out, nil
}
