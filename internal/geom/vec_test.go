package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randomVec(rng *rand.Rand) Vec3 {
	return V(rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*20-10)
}

func TestVecBasicOps(t *testing.T) {
	v := V(1, 2, 3)
	w := V(4, -5, 6)
	if got := v.Add(w); got != V(5, -3, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != V(-3, 7, -3) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Mul(w); got != V(4, -10, 18) {
		t.Errorf("Mul = %v", got)
	}
	if got := v.Neg(); got != V(-1, -2, -3) {
		t.Errorf("Neg = %v", got)
	}
}

func TestVecCrossOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		v, w := randomVec(rng), randomVec(rng)
		c := v.Cross(w)
		if !almostEq(c.Dot(v), 0, 1e-9) || !almostEq(c.Dot(w), 0, 1e-9) {
			t.Fatalf("cross product not orthogonal: v=%v w=%v c=%v", v, w, c)
		}
	}
}

func TestVecCrossRightHanded(t *testing.T) {
	if got := V(1, 0, 0).Cross(V(0, 1, 0)); !got.NearEqual(V(0, 0, 1), 1e-15) {
		t.Errorf("x × y = %v, want z", got)
	}
}

func TestVecNormalize(t *testing.T) {
	if got := V(3, 4, 0).Normalize(); !got.NearEqual(V(0.6, 0.8, 0), 1e-15) {
		t.Errorf("Normalize = %v", got)
	}
	if got := (Vec3{}).Normalize(); got != (Vec3{}) {
		t.Errorf("Normalize(0) = %v, want 0", got)
	}
}

func TestVecMinMaxAbs(t *testing.T) {
	v, w := V(1, -2, 3), V(-1, 5, 2)
	if got := v.Min(w); got != V(-1, -2, 2) {
		t.Errorf("Min = %v", got)
	}
	if got := v.Max(w); got != V(1, 5, 3) {
		t.Errorf("Max = %v", got)
	}
	if got := v.Abs(); got != V(1, 2, 3) {
		t.Errorf("Abs = %v", got)
	}
	if got := v.MaxComponent(); got != 3 {
		t.Errorf("MaxComponent = %v", got)
	}
}

func TestVecComponentAccessors(t *testing.T) {
	v := V(7, 8, 9)
	for i, want := range []float64{7, 8, 9} {
		if got := v.Component(i); got != want {
			t.Errorf("Component(%d) = %v, want %v", i, got, want)
		}
	}
	if got := v.WithComponent(1, 42); got != V(7, 42, 9) {
		t.Errorf("WithComponent = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Component(3) did not panic")
		}
	}()
	v.Component(3)
}

func TestVecIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0, 0).IsFinite() || V(0, math.Inf(1), 0).IsFinite() {
		t.Error("non-finite vector reported finite")
	}
}

func TestVecLerp(t *testing.T) {
	a, b := V(0, 0, 0), V(2, 4, 6)
	if got := a.Lerp(b, 0.5); !got.NearEqual(V(1, 2, 3), 1e-15) {
		t.Errorf("Lerp = %v", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
}

// Property: the triangle inequality holds for Dist.
func TestQuickTriangleInequality(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		a, b, c := V(ax, ay, az), V(bx, by, bz), V(cx, cy, cz)
		if !a.IsFinite() || !b.IsFinite() || !c.IsFinite() {
			return true
		}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9*(1+a.Dist(b)+b.Dist(c))
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: |v×w|² + (v·w)² = |v|²|w|² (Lagrange identity).
func TestQuickLagrangeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		v, w := randomVec(rng), randomVec(rng)
		lhs := v.Cross(w).Len2() + v.Dot(w)*v.Dot(w)
		rhs := v.Len2() * w.Len2()
		if !almostEq(lhs, rhs, 1e-6*(1+rhs)) {
			t.Fatalf("Lagrange identity violated: %v vs %v", lhs, rhs)
		}
	}
}
