package geom

import (
	"fmt"
	"math"
)

// Parametric solid primitives. Every constructor returns a closed,
// outward-oriented triangle mesh, so the exact integral machinery (volume,
// centroid, moments) applies directly. Engineering part families in
// internal/dataset are composed from these.

// Box returns the axis-aligned box [min, max].
func Box(min, max Vec3) *Mesh {
	m := NewMesh(8, 12)
	for i := 0; i < 8; i++ {
		m.AddVertex(V(
			pick(i&1 != 0, max.X, min.X),
			pick(i&2 != 0, max.Y, min.Y),
			pick(i&4 != 0, max.Z, min.Z),
		))
	}
	quads := [][4]int{
		{0, 2, 3, 1}, // z = min (viewed from -z: CCW)
		{4, 5, 7, 6}, // z = max
		{0, 1, 5, 4}, // y = min
		{2, 6, 7, 3}, // y = max
		{0, 4, 6, 2}, // x = min
		{1, 3, 7, 5}, // x = max
	}
	for _, q := range quads {
		m.AddFace(q[0], q[1], q[2])
		m.AddFace(q[0], q[2], q[3])
	}
	return m
}

// BoxAt returns a box of the given size centered at c.
func BoxAt(c Vec3, size Vec3) *Mesh {
	h := size.Scale(0.5)
	return Box(c.Sub(h), c.Add(h))
}

func pick(cond bool, a, b float64) float64 {
	if cond {
		return a
	}
	return b
}

// Extrude sweeps the counter-clockwise polygon outer (with optional holes)
// from z=z0 to z=z1, producing a closed prism. Hole walls are oriented so
// that all normals point out of the solid.
func Extrude(outer Polygon, holes []Polygon, z0, z1 float64) (*Mesh, error) {
	if z1 < z0 {
		z0, z1 = z1, z0
	}
	if z1-z0 <= 0 {
		return nil, fmt.Errorf("geom: Extrude with zero height")
	}
	verts, tris, err := TriangulatePolygon(outer, holes)
	if err != nil {
		return nil, err
	}
	m := NewMesh(2*len(verts), 2*len(tris)+6*len(verts))

	addWalls := func(loop Polygon, ccw bool) {
		l := make(Polygon, len(loop))
		copy(l, loop)
		if (l.SignedArea() > 0) != ccw {
			l.Reverse()
		}
		base := len(m.Vertices)
		for _, p := range l {
			m.AddVertex(V(p.X, p.Y, z0))
			m.AddVertex(V(p.X, p.Y, z1))
		}
		n := len(l)
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			a0 := base + 2*i
			a1 := base + 2*i + 1
			b0 := base + 2*j
			b1 := base + 2*j + 1
			m.AddFace(a0, b0, b1)
			m.AddFace(a0, b1, a1)
		}
	}
	addWalls(outer, true)
	for _, h := range holes {
		addWalls(h, false) // clockwise traversal flips wall normals outward of the solid
	}

	// Caps from the triangulation (verts includes bridge duplicates).
	capBase0 := len(m.Vertices)
	for _, p := range verts {
		m.AddVertex(V(p.X, p.Y, z0))
	}
	capBase1 := len(m.Vertices)
	for _, p := range verts {
		m.AddVertex(V(p.X, p.Y, z1))
	}
	for _, t := range tris {
		m.AddFace(capBase0+t[0], capBase0+t[2], capBase0+t[1]) // bottom: -z
		m.AddFace(capBase1+t[0], capBase1+t[1], capBase1+t[2]) // top: +z
	}
	m.WeldVertices(1e-9)
	return m, nil
}

// Lathe revolves the closed profile polygon (given in the (r, z) half-plane
// with r ≥ 0, counter-clockwise) around the Z axis with the given number of
// angular segments, producing a closed solid of revolution. Profile
// vertices with r = 0 collapse to poles and are welded.
func Lathe(profile Polygon, segments int) (*Mesh, error) {
	if len(profile) < 3 {
		return nil, fmt.Errorf("geom: Lathe profile needs ≥3 vertices, got %d", len(profile))
	}
	if segments < 3 {
		segments = 3
	}
	p := make(Polygon, len(profile))
	copy(p, profile)
	if p.SignedArea() < 0 {
		p.Reverse()
	}
	for i, v := range p {
		if v.X < -1e-12 {
			return nil, fmt.Errorf("geom: Lathe profile vertex %d has negative radius %g", i, v.X)
		}
	}
	n := len(p)
	m := NewMesh(n*segments, 2*n*segments)
	at := func(i, s int) Vec3 {
		a := 2 * math.Pi * float64(s%segments) / float64(segments)
		r, z := p[i].X, p[i].Y
		return V(r*math.Cos(a), r*math.Sin(a), z)
	}
	idx := make([][]int, n)
	for i := 0; i < n; i++ {
		idx[i] = make([]int, segments)
		for s := 0; s < segments; s++ {
			idx[i][s] = m.AddVertex(at(i, s))
		}
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		for s := 0; s < segments; s++ {
			t := (s + 1) % segments
			a0, b0 := idx[i][s], idx[i][t]
			a1, b1 := idx[j][s], idx[j][t]
			m.AddFace(a0, b0, b1)
			m.AddFace(a0, b1, a1)
		}
	}
	m.WeldVertices(1e-9)
	return m, nil
}

// Cylinder returns a solid capped cylinder of the given radius between
// z = 0 and z = height, with the given number of angular segments.
func Cylinder(radius, height float64, segments int) *Mesh {
	m, err := Lathe(Polygon{{0, 0}, {radius, 0}, {radius, height}, {0, height}}, segments)
	if err != nil {
		panic("geom: Cylinder: " + err.Error()) // profile is always valid
	}
	return m
}

// Tube returns a hollow cylinder (annular cross-section) with the given
// inner and outer radii between z = 0 and z = height.
func Tube(inner, outer, height float64, segments int) (*Mesh, error) {
	if inner <= 0 || inner >= outer {
		return nil, fmt.Errorf("geom: Tube radii must satisfy 0 < inner < outer, got %g, %g", inner, outer)
	}
	return Lathe(Polygon{{inner, 0}, {outer, 0}, {outer, height}, {inner, height}}, segments)
}

// Cone returns a solid cone frustum from radius r0 at z = 0 to radius r1 at
// z = height. Either radius (but not both) may be zero.
func Cone(r0, r1, height float64, segments int) (*Mesh, error) {
	if r0 <= 0 && r1 <= 0 {
		return nil, fmt.Errorf("geom: Cone needs a positive radius")
	}
	return Lathe(Polygon{{0, 0}, {r0, 0}, {r1, height}, {0, height}}, segments)
}

// Sphere returns a UV sphere of the given radius centered at the origin,
// with rings latitude bands and segments longitude bands.
func Sphere(radius float64, rings, segments int) *Mesh {
	if rings < 2 {
		rings = 2
	}
	// Semicircular profile from the south to the north pole.
	profile := make(Polygon, 0, rings+1)
	for i := 0; i <= rings; i++ {
		phi := math.Pi * float64(i) / float64(rings) // 0..π from -z to +z
		profile = append(profile, Vec2{radius * math.Sin(phi), -radius * math.Cos(phi)})
	}
	m, err := Lathe(profile, segments)
	if err != nil {
		panic("geom: Sphere: " + err.Error())
	}
	return m
}

// Torus returns a torus with the given major (center-to-tube) and minor
// (tube) radii, lying in the XY plane centered at the origin.
func Torus(major, minor float64, majorSegments, minorSegments int) (*Mesh, error) {
	if minor <= 0 || minor >= major {
		return nil, fmt.Errorf("geom: Torus radii must satisfy 0 < minor < major, got %g, %g", minor, major)
	}
	profile := CirclePolygon(Vec2{major, 0}, minor, minorSegments, 0)
	return Lathe(profile, majorSegments)
}

// TubeAlongPath sweeps a circular cross-section of the given radius along a
// 3D polyline path using parallel-transport frames. When closed is true the
// path is treated as a loop; otherwise the ends are capped with triangle
// fans. The path must contain at least two (three when closed) points.
func TubeAlongPath(path []Vec3, radius float64, segments int, closed bool) (*Mesh, error) {
	minPts := 2
	if closed {
		minPts = 3
	}
	if len(path) < minPts {
		return nil, fmt.Errorf("geom: TubeAlongPath needs ≥%d points, got %d", minPts, len(path))
	}
	if segments < 3 {
		segments = 3
	}
	n := len(path)
	tangent := func(i int) Vec3 {
		var t Vec3
		if closed {
			t = path[(i+1)%n].Sub(path[(i+n-1)%n])
		} else if i == 0 {
			t = path[1].Sub(path[0])
		} else if i == n-1 {
			t = path[n-1].Sub(path[n-2])
		} else {
			t = path[i+1].Sub(path[i-1])
		}
		return t.Normalize()
	}
	// Initial frame.
	t0 := tangent(0)
	up := V(0, 0, 1)
	if math.Abs(t0.Dot(up)) > 0.9 {
		up = V(1, 0, 0)
	}
	u := t0.Cross(up).Normalize()
	v := t0.Cross(u).Normalize()

	m := NewMesh(n*segments+2, 2*n*segments)
	rings := make([][]int, n)
	prevT := t0
	for i := 0; i < n; i++ {
		ti := tangent(i)
		// Parallel-transport the frame: rotate by the minimal rotation
		// taking prevT to ti.
		axis := prevT.Cross(ti)
		if s := axis.Len(); s > 1e-12 {
			angle := math.Atan2(s, prevT.Dot(ti))
			r := RotationAxisAngle(axis, angle)
			u = r.MulVec(u).Normalize()
			v = r.MulVec(v).Normalize()
		}
		prevT = ti
		rings[i] = make([]int, segments)
		for s := 0; s < segments; s++ {
			a := 2 * math.Pi * float64(s) / float64(segments)
			off := u.Scale(radius * math.Cos(a)).Add(v.Scale(radius * math.Sin(a)))
			rings[i][s] = m.AddVertex(path[i].Add(off))
		}
	}
	last := n - 1
	if closed {
		last = n
	}
	for i := 0; i < last; i++ {
		r0 := rings[i%n]
		r1 := rings[(i+1)%n]
		for s := 0; s < segments; s++ {
			t := (s + 1) % segments
			m.AddFace(r0[s], r1[s], r1[t])
			m.AddFace(r0[s], r1[t], r0[t])
		}
	}
	if !closed {
		// Cap the ends with center fans.
		c0 := m.AddVertex(path[0])
		c1 := m.AddVertex(path[n-1])
		for s := 0; s < segments; s++ {
			t := (s + 1) % segments
			m.AddFace(c0, rings[0][s], rings[0][t])
			m.AddFace(c1, rings[n-1][t], rings[n-1][s])
		}
	}
	// A sweep with inconsistent handedness (possible for exotic frames)
	// would yield negative volume; normalize to outward orientation.
	if m.Volume() < 0 {
		m.FlipFaces()
	}
	return m, nil
}

// HexPrism returns a hexagonal prism with the given across-flats width
// between z = 0 and z = height (the shape of a nut or bolt head).
func HexPrism(acrossFlats, height float64, holes []Polygon) (*Mesh, error) {
	// Circumradius from across-flats width.
	r := acrossFlats / math.Sqrt(3)
	hexagon := CirclePolygon(Vec2{}, r, 6, math.Pi/6)
	return Extrude(hexagon, holes, 0, height)
}
