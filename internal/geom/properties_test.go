package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomConvexPolygon builds a convex CCW polygon by sorting random angles.
func randomConvexPolygon(rng *rand.Rand, n int) Polygon {
	angles := make([]float64, n)
	for i := range angles {
		angles[i] = rng.Float64() * 2 * math.Pi
	}
	// Sort.
	for i := 1; i < n; i++ {
		for j := i; j > 0 && angles[j] < angles[j-1]; j-- {
			angles[j], angles[j-1] = angles[j-1], angles[j]
		}
	}
	r := 1 + rng.Float64()*9
	p := make(Polygon, n)
	for i, a := range angles {
		p[i] = Vec2{r * math.Cos(a), r * math.Sin(a)}
	}
	return p
}

// Property: extrusion volume = polygon area × height, for arbitrary
// convex polygons.
func TestQuickExtrudeVolumeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for trial := 0; trial < 60; trial++ {
		poly := randomConvexPolygon(rng, 5+rng.Intn(10))
		area := poly.SignedArea()
		if area < 1e-6 {
			continue // degenerate draw (coincident angles)
		}
		h := 0.5 + rng.Float64()*5
		m, err := Extrude(poly, nil, 0, h)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := area * h
		if math.Abs(m.Volume()-want) > 1e-6*want {
			t.Fatalf("trial %d: volume %v, want %v", trial, m.Volume(), want)
		}
		if !m.IsClosed() {
			t.Fatalf("trial %d: extrusion not closed", trial)
		}
	}
}

// polygonCentroid returns the area centroid (interior for convex input).
func polygonCentroid(p Polygon) Vec2 {
	var cx, cy, a float64
	for i := range p {
		j := (i + 1) % len(p)
		cr := p[i].Cross(p[j])
		cx += (p[i].X + p[j].X) * cr
		cy += (p[i].Y + p[j].Y) * cr
		a += cr
	}
	return Vec2{cx / (3 * a), cy / (3 * a)}
}

// Property: triangulation of a convex polygon with a contained hole
// preserves area.
func TestQuickTriangulationAreaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 40; trial++ {
		outer := randomConvexPolygon(rng, 6+rng.Intn(8))
		area := outer.SignedArea()
		if area < 1 {
			continue
		}
		// Place the hole at the centroid (guaranteed interior for a
		// convex polygon), sized well below the centroid-to-boundary
		// distance.
		c := polygonCentroid(outer)
		if !outer.Contains(c) {
			continue
		}
		minDist := math.Inf(1)
		for i := range outer {
			j := (i + 1) % len(outer)
			a, b := outer[i], outer[j]
			ab := b.Sub(a)
			tt := c.Sub(a).Dot(ab) / ab.Dot(ab)
			if tt < 0 {
				tt = 0
			} else if tt > 1 {
				tt = 1
			}
			p := a.Add(ab.Scale(tt))
			if d := math.Hypot(p.X-c.X, p.Y-c.Y); d < minDist {
				minDist = d
			}
		}
		if minDist < 0.05 {
			continue // sliver polygon: no room for a hole
		}
		hole := CirclePolygon(c, math.Min(0.3, minDist/4), 12, rng.Float64())
		verts, tris, err := TriangulatePolygon(outer, []Polygon{hole})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := 0.0
		for _, tr := range tris {
			a, b, c := verts[tr[0]], verts[tr[1]], verts[tr[2]]
			got += b.Sub(a).Cross(c.Sub(a)) / 2
		}
		want := area - math.Abs(hole.SignedArea())
		if math.Abs(got-want) > 1e-6*want {
			t.Fatalf("trial %d: area %v, want %v", trial, got, want)
		}
	}
}

// Property: point containment of convex polygons matches the half-plane
// test.
func TestQuickPolygonContainsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 50; trial++ {
		poly := randomConvexPolygon(rng, 5+rng.Intn(6))
		if poly.SignedArea() < 1 {
			continue
		}
		for k := 0; k < 20; k++ {
			q := Vec2{rng.Float64()*24 - 12, rng.Float64()*24 - 12}
			// Half-plane test for convex CCW polygons.
			inside := true
			onEdge := false
			for i := range poly {
				j := (i + 1) % len(poly)
				cr := poly[j].Sub(poly[i]).Cross(q.Sub(poly[i]))
				if math.Abs(cr) < 1e-9 {
					onEdge = true
				}
				if cr < 0 {
					inside = false
				}
			}
			if onEdge {
				continue // boundary is unspecified
			}
			if got := poly.Contains(q); got != inside {
				t.Fatalf("trial %d: Contains(%v) = %v, half-plane says %v", trial, q, got, inside)
			}
		}
	}
}

// Property: surface area is invariant under rigid motion for lathed
// solids.
func TestQuickLatheRigidAreaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	profile := Polygon{{1, 0}, {3, 0}, {3, 2}, {2, 3}, {1, 2}}
	m, err := Lathe(profile, 24)
	if err != nil {
		t.Fatal(err)
	}
	area := m.SurfaceArea()
	vol := m.Volume()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := m.Clone()
		c.Transform(Transform{R: randomRotation(r), T: randomVec(r)})
		return math.Abs(c.SurfaceArea()-area) < 1e-9*area &&
			math.Abs(c.Volume()-vol) < 1e-9*vol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// Property: Euler characteristic of an extruded polygon with h holes is
// 2 − 2h (genus = number of through-holes).
func TestQuickExtrudeGenusProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	for holes := 0; holes <= 4; holes++ {
		outer := RectPolygon(0, 0, 30, 8)
		var hs []Polygon
		for i := 0; i < holes; i++ {
			cx := 4 + float64(i)*6 + rng.Float64()
			hs = append(hs, CirclePolygon(Vec2{cx, 4}, 1.2, 12, rng.Float64()))
		}
		m, err := Extrude(outer, hs, 0, 2)
		if err != nil {
			t.Fatalf("%d holes: %v", holes, err)
		}
		if got, want := m.EulerCharacteristic(), 2-2*holes; got != want {
			t.Errorf("%d holes: Euler characteristic %d, want %d", holes, got, want)
		}
	}
}

func TestLatheFullRevolutionMatchesTorus(t *testing.T) {
	// Lathe of a circle profile equals the Torus constructor.
	profile := CirclePolygon(Vec2{5, 0}, 1, 32, 0)
	lathed, err := Lathe(profile, 48)
	if err != nil {
		t.Fatal(err)
	}
	torus, err := Torus(5, 1, 48, 32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lathed.Volume()-torus.Volume()) > 1e-6*torus.Volume() {
		t.Errorf("lathed %v vs torus %v", lathed.Volume(), torus.Volume())
	}
}

func TestPolyConstructor(t *testing.T) {
	p := Poly(0, 0, 2, 0, 2, 2, 0, 2)
	if len(p) != 4 || p[2] != (Vec2{2, 2}) {
		t.Errorf("Poly = %v", p)
	}
	if XY(3, 4) != (Vec2{3, 4}) {
		t.Error("XY broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("odd coordinate count did not panic")
		}
	}()
	Poly(1, 2, 3)
}

func TestVec2Ops(t *testing.T) {
	a, b := Vec2{3, 4}, Vec2{1, -2}
	if a.Add(b) != (Vec2{4, 2}) || a.Sub(b) != (Vec2{2, 6}) {
		t.Error("Add/Sub broken")
	}
	if a.Scale(2) != (Vec2{6, 8}) {
		t.Error("Scale broken")
	}
	if a.Dot(b) != 3-8 {
		t.Error("Dot broken")
	}
	if a.Cross(b) != -6-4 {
		t.Error("Cross broken")
	}
	if a.Len() != 5 {
		t.Error("Len broken")
	}
}
