package geom

import (
	"math"
	"math/rand"
	"testing"
)

// scramble flips a random subset of faces.
func scramble(m *Mesh, rng *rand.Rand, frac float64) int {
	n := 0
	for i, f := range m.Faces {
		if rng.Float64() < frac {
			m.Faces[i] = [3]int{f[0], f[2], f[1]}
			n++
		}
	}
	return n
}

func TestOrientConsistentlyRestoresSolid(t *testing.T) {
	rng := rand.New(rand.NewSource(260))
	builders := []func() *Mesh{
		func() *Mesh { return Box(V(0, 0, 0), V(2, 3, 4)) },
		func() *Mesh { return Sphere(1.5, 10, 14) },
		func() *Mesh { return Cylinder(1, 3, 18) },
		func() *Mesh {
			m, err := Torus(3, 1, 24, 12)
			if err != nil {
				t.Fatal(err)
			}
			return m
		},
	}
	for bi, build := range builders {
		for trial := 0; trial < 10; trial++ {
			m := build()
			want := m.Volume()
			scramble(m, rng, 0.3+0.4*rng.Float64())
			if _, err := m.OrientConsistently(); err != nil {
				t.Fatalf("builder %d trial %d: %v", bi, trial, err)
			}
			if !m.IsClosed() {
				t.Fatalf("builder %d trial %d: not closed after repair", bi, trial)
			}
			if math.Abs(m.Volume()-want) > 1e-9*want {
				t.Fatalf("builder %d trial %d: volume %v, want %v", bi, trial, m.Volume(), want)
			}
		}
	}
}

func TestOrientConsistentlyFullyInverted(t *testing.T) {
	m := Box(V(0, 0, 0), V(1, 1, 1)).FlipFaces()
	flipped, err := m.OrientConsistently()
	if err != nil {
		t.Fatal(err)
	}
	if flipped != len(m.Faces) {
		t.Errorf("flipped %d of %d faces", flipped, len(m.Faces))
	}
	if got := m.Volume(); math.Abs(got-1) > 1e-12 {
		t.Errorf("volume = %v", got)
	}
}

func TestOrientConsistentlyAlreadyCoherent(t *testing.T) {
	m := Sphere(1, 8, 10)
	flipped, err := m.OrientConsistently()
	if err != nil {
		t.Fatal(err)
	}
	if flipped != 0 {
		t.Errorf("flipped %d faces of a coherent mesh", flipped)
	}
}

func TestOrientConsistentlyMultipleComponents(t *testing.T) {
	rng := rand.New(rand.NewSource(261))
	m := Box(V(0, 0, 0), V(1, 1, 1))
	m.Merge(Box(V(5, 5, 5), V(7, 7, 7)))
	m.Merge(Sphere(0.8, 6, 8).Translate(V(-5, 0, 0)))
	want := m.Volume()
	scramble(m, rng, 0.5)
	if _, err := m.OrientConsistently(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Volume()-want) > 1e-9*want {
		t.Errorf("multi-component volume %v, want %v", m.Volume(), want)
	}
}

func TestOrientConsistentlyNonManifold(t *testing.T) {
	// Three triangles sharing one edge.
	m := NewMesh(0, 0)
	a := m.AddVertex(V(0, 0, 0))
	b := m.AddVertex(V(1, 0, 0))
	c := m.AddVertex(V(0, 1, 0))
	d := m.AddVertex(V(0, 0, 1))
	e := m.AddVertex(V(0, -1, 0))
	m.AddFace(a, b, c)
	m.AddFace(a, b, d)
	m.AddFace(a, b, e)
	if _, err := m.OrientConsistently(); err == nil {
		t.Error("non-manifold mesh accepted")
	}
}

func TestOrientThenExtractPipeline(t *testing.T) {
	// A scrambled import must, after repair, produce the same features as
	// the pristine mesh.
	rng := rand.New(rand.NewSource(262))
	pristine := Box(V(0, 0, 0), V(4, 2, 1))
	scrambled := pristine.Clone()
	scramble(scrambled, rng, 0.6)
	if _, err := scrambled.OrientConsistently(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(pristine.Volume()-scrambled.Volume()) > 1e-12 {
		t.Errorf("volumes diverge after repair")
	}
	if pristine.Centroid() != scrambled.Centroid() {
		t.Errorf("centroids diverge after repair")
	}
}
