package geom

import "fmt"

// Mesh repair for imported files. CAD exports (especially STL and OBJ
// from mixed toolchains) frequently arrive with inconsistent triangle
// winding; every integral property this system computes assumes coherent
// outward orientation, so ingestion can call OrientConsistently first.

// OrientConsistently rewinds faces so that adjacent triangles traverse
// their shared edge in opposite directions (coherent orientation), then
// flips the whole mesh if its signed volume is negative, leaving normals
// outward. It returns the number of faces that were flipped.
//
// The mesh must be manifold along shared edges (each undirected edge on
// at most two faces); non-manifold edges make a coherent orientation
// ambiguous and produce an error. Disconnected components are oriented
// independently and each component's sign is fixed by its own signed
// volume.
func (m *Mesh) OrientConsistently() (flipped int, err error) {
	type edgeKey struct{ a, b int }
	und := func(a, b int) edgeKey {
		if a > b {
			a, b = b, a
		}
		return edgeKey{a, b}
	}
	// Map undirected edge -> incident faces (at most 2 for manifold).
	incident := make(map[edgeKey][]int, len(m.Faces)*3/2)
	for fi, f := range m.Faces {
		for k := 0; k < 3; k++ {
			e := und(f[k], f[(k+1)%3])
			incident[e] = append(incident[e], fi)
			if len(incident[e]) > 2 {
				return 0, fmt.Errorf("geom: non-manifold edge (%d,%d) shared by >2 faces", e.a, e.b)
			}
		}
	}
	// hasDirected reports whether face fi traverses a→b in that order.
	hasDirected := func(fi, a, b int) bool {
		f := m.Faces[fi]
		for k := 0; k < 3; k++ {
			if f[k] == a && f[(k+1)%3] == b {
				return true
			}
		}
		return false
	}
	flipFace := func(fi int) {
		f := m.Faces[fi]
		m.Faces[fi] = [3]int{f[0], f[2], f[1]}
	}

	visited := make([]bool, len(m.Faces))
	var component []int
	for seed := range m.Faces {
		if visited[seed] {
			continue
		}
		// BFS across shared edges, flipping neighbors into coherence with
		// the face they were reached from.
		component = component[:0]
		queue := []int{seed}
		visited[seed] = true
		for len(queue) > 0 {
			fi := queue[0]
			queue = queue[1:]
			component = append(component, fi)
			f := m.Faces[fi]
			for k := 0; k < 3; k++ {
				a, b := f[k], f[(k+1)%3]
				for _, nb := range incident[und(a, b)] {
					if nb == fi || visited[nb] {
						continue
					}
					// Coherent neighbors traverse the shared edge in the
					// opposite direction (b→a). If the neighbor also goes
					// a→b, flip it.
					if hasDirected(nb, a, b) {
						flipFace(nb)
						flipped++
					}
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		// Fix the component's global sign via its signed volume.
		vol := 0.0
		for _, fi := range component {
			a, b, c := m.Triangle(fi)
			vol += a.Dot(b.Cross(c))
		}
		if vol < 0 {
			for _, fi := range component {
				flipFace(fi)
			}
			flipped += len(component)
		}
	}
	return flipped, nil
}
