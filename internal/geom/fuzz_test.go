package geom

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

// The parser fuzz targets prove the untrusted-input contract of the mesh
// readers: on arbitrary bytes they never panic, never retain more geometry
// than the configured ReadLimits allow, and every mesh they do return
// passes structural validation for index range and finiteness.

// fuzzLimits are deliberately tiny so the fuzzer can reach every cap
// quickly and an accidental unbounded allocation fails fast.
var fuzzLimits = ReadLimits{
	MaxVertices:   4096,
	MaxTriangles:  8192,
	MaxFaceDegree: 16,
	MaxTokenBytes: 1 << 14,
}

// checkParsed asserts the post-conditions shared by all three readers.
func checkParsed(t *testing.T, m *Mesh, lim ReadLimits) {
	t.Helper()
	if m == nil {
		t.Fatal("nil mesh with nil error")
	}
	if len(m.Vertices) > lim.MaxVertices {
		t.Fatalf("%d vertices exceeds cap %d", len(m.Vertices), lim.MaxVertices)
	}
	if len(m.Faces) > lim.MaxTriangles {
		t.Fatalf("%d triangles exceeds cap %d", len(m.Faces), lim.MaxTriangles)
	}
	for i, v := range m.Vertices {
		if !v.IsFinite() {
			t.Fatalf("vertex %d is not finite: %v", i, v)
		}
	}
	for i, f := range m.Faces {
		for _, idx := range f {
			if idx < 0 || idx >= len(m.Vertices) {
				t.Fatalf("face %d references vertex %d of %d", i, idx, len(m.Vertices))
			}
		}
	}
}

// seedMeshOFF serializes a few real solids so the fuzzer starts from
// well-formed inputs (the examples/ corpora are built from these same
// primitive generators).
func seedMeshes() []*Mesh {
	return []*Mesh{
		Box(V(0, 0, 0), V(2, 1, 1)),
		Cylinder(0.5, 2, 12),
		Sphere(1, 6, 8),
	}
}

func FuzzReadOFF(f *testing.F) {
	for _, m := range seedMeshes() {
		var buf bytes.Buffer
		if err := WriteOFF(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1 2\n"))
	f.Add([]byte("OFF\n1000000000 1000000000 0\n"))
	f.Add([]byte("OFF\n3 1 0\n0 0 nan\n1 0 0\n0 1 0\n3 0 1 2\n"))
	f.Add([]byte("OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1 9\n"))
	f.Add([]byte("# comment only"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadOFFLimits(bytes.NewReader(data), fuzzLimits)
		if err != nil {
			return
		}
		checkParsed(t, m, fuzzLimits)
	})
}

func FuzzReadOBJ(f *testing.F) {
	for _, m := range seedMeshes() {
		var buf bytes.Buffer
		if err := WriteOBJ(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n"))
	f.Add([]byte("v 0 0 inf\n"))
	f.Add([]byte("f 1/2/3 -1 4\n"))
	f.Add([]byte(strings.Repeat("v 0 0 0\n", 64)))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadOBJLimits(bytes.NewReader(data), fuzzLimits)
		if err != nil {
			return
		}
		checkParsed(t, m, fuzzLimits)
	})
}

func FuzzReadSTL(f *testing.F) {
	for _, m := range seedMeshes() {
		var buf bytes.Buffer
		if err := WriteSTLBinary(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte("solid x\nfacet normal 0 0 1\nouter loop\nvertex 0 0 0\nvertex 1 0 0\nvertex 0 1 0\nendloop\nendfacet\nendsolid x\n"))
	// Binary header claiming far more triangles than the body carries.
	claim := make([]byte, 84)
	claim[80], claim[81], claim[82], claim[83] = 0xff, 0xff, 0xff, 0x7f
	f.Add(claim)
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadSTLLimits(bytes.NewReader(data), fuzzLimits)
		if err != nil {
			return
		}
		checkParsed(t, m, fuzzLimits)
	})
}

// TestReadLimitsEnforced drives each documented cap with a crafted input
// and asserts the reader errors instead of allocating.
func TestReadLimitsEnforced(t *testing.T) {
	lim := ReadLimits{MaxVertices: 8, MaxTriangles: 8, MaxFaceDegree: 4, MaxTokenBytes: 64}
	cases := []struct {
		name string
		run  func() (*Mesh, error)
	}{
		{"off vertex bomb", func() (*Mesh, error) {
			return ReadOFFLimits(strings.NewReader("OFF\n2000000000 1 0\n"), lim)
		}},
		{"off face bomb", func() (*Mesh, error) {
			return ReadOFFLimits(strings.NewReader("OFF\n3 2000000000 0\n"), lim)
		}},
		{"off face degree", func() (*Mesh, error) {
			return ReadOFFLimits(strings.NewReader(
				"OFF\n5 1 0\n0 0 0\n1 0 0\n0 1 0\n1 1 0\n.5 .5 1\n5 0 1 2 3 4\n"), lim)
		}},
		{"off huge token", func() (*Mesh, error) {
			return ReadOFFLimits(strings.NewReader("OFF\n1 0 0\n"+strings.Repeat("9", 1024)+" 0 0\n"), lim)
		}},
		{"off unterminated comment", func() (*Mesh, error) {
			return ReadOFFLimits(strings.NewReader("#"+strings.Repeat("x", 1024)), lim)
		}},
		{"off nan vertex", func() (*Mesh, error) {
			return ReadOFFLimits(strings.NewReader("OFF\n3 1 0\n0 0 NaN\n1 0 0\n0 1 0\n3 0 1 2\n"), lim)
		}},
		{"obj vertex bomb", func() (*Mesh, error) {
			return ReadOBJLimits(strings.NewReader(strings.Repeat("v 0 0 0\n", 9)), lim)
		}},
		{"obj face degree", func() (*Mesh, error) {
			return ReadOBJLimits(strings.NewReader("v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3 1 2 3\n"), lim)
		}},
		{"obj inf vertex", func() (*Mesh, error) {
			return ReadOBJLimits(strings.NewReader("v 0 0 Inf\n"), lim)
		}},
		{"stl ascii vertex bomb", func() (*Mesh, error) {
			var b strings.Builder
			b.WriteString("solid x\nfacet\n")
			for i := 0; i < 30; i++ {
				b.WriteString("vertex 0 0 0\n")
			}
			return ReadSTLLimits(strings.NewReader(b.String()), lim)
		}},
		{"stl binary triangle bomb", func() (*Mesh, error) {
			data := make([]byte, 84)
			data[80], data[81] = 0xff, 0xff // 65535 > MaxTriangles
			return ReadSTLLimits(bytes.NewReader(data), lim)
		}},
	}
	for _, tc := range cases {
		if _, err := tc.run(); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}

// TestBinarySTLPreallocClamped feeds a header that declares the maximum
// tolerated triangle count but carries no payload; the reader must fail on
// the missing body without having reserved gigabytes for the claim.
func TestBinarySTLPreallocClamped(t *testing.T) {
	data := make([]byte, 84)
	// 50M triangles: passes the count guard under default limits, then
	// must hit EOF on triangle 0.
	count := uint32(50_000_000)
	data[80] = byte(count)
	data[81] = byte(count >> 8)
	data[82] = byte(count >> 16)
	data[83] = byte(count >> 24)
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	_, err := ReadSTL(bytes.NewReader(data))
	runtime.ReadMemStats(&after)
	if err == nil {
		t.Fatal("expected error for truncated binary STL")
	}
	// The old reader preallocated count*3 vertices (3.6 GB) before reading
	// anything; the clamped reader reserves at most maxPrealloc entries.
	if grown := after.TotalAlloc - before.TotalAlloc; grown > 64<<20 {
		t.Errorf("parsing a truncated 50M-triangle claim allocated %d bytes", grown)
	}
}

// TestDefaultLimitsRoundTrip ensures the default caps don't reject real
// meshes written by our own writers.
func TestDefaultLimitsRoundTrip(t *testing.T) {
	for _, m := range seedMeshes() {
		var off, obj, stl bytes.Buffer
		if err := WriteOFF(&off, m); err != nil {
			t.Fatal(err)
		}
		if err := WriteOBJ(&obj, m); err != nil {
			t.Fatal(err)
		}
		if err := WriteSTLBinary(&stl, m); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadOFF(&off); err != nil {
			t.Errorf("OFF round-trip: %v", err)
		}
		if _, err := ReadOBJ(&obj); err != nil {
			t.Errorf("OBJ round-trip: %v", err)
		}
		if _, err := ReadSTL(&stl); err != nil {
			t.Errorf("STL round-trip: %v", err)
		}
	}
}

