package geom

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func meshesEquivalent(t *testing.T, a, b *Mesh, tol float64) {
	t.Helper()
	if math.Abs(a.Volume()-b.Volume()) > tol*(1+math.Abs(a.Volume())) {
		t.Errorf("volume mismatch: %v vs %v", a.Volume(), b.Volume())
	}
	if math.Abs(a.SurfaceArea()-b.SurfaceArea()) > tol*(1+a.SurfaceArea()) {
		t.Errorf("area mismatch: %v vs %v", a.SurfaceArea(), b.SurfaceArea())
	}
	if !a.Centroid().NearEqual(b.Centroid(), tol) {
		t.Errorf("centroid mismatch: %v vs %v", a.Centroid(), b.Centroid())
	}
}

func TestOFFRoundTrip(t *testing.T) {
	orig := Sphere(1.5, 8, 12)
	var buf bytes.Buffer
	if err := WriteOFF(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOFF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Vertices) != len(orig.Vertices) || len(back.Faces) != len(orig.Faces) {
		t.Fatalf("size mismatch: %d/%d vs %d/%d",
			len(back.Vertices), len(back.Faces), len(orig.Vertices), len(orig.Faces))
	}
	meshesEquivalent(t, orig, back, 1e-6)
}

func TestOFFCommentsAndPolygons(t *testing.T) {
	src := `OFF
# a comment line
4 1 0
0 0 0
1 0 0  # trailing comment
1 1 0
0 1 0
4 0 1 2 3
`
	m, err := ReadOFF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Vertices) != 4 {
		t.Errorf("vertices = %d, want 4", len(m.Vertices))
	}
	if len(m.Faces) != 2 { // quad fan-triangulated
		t.Errorf("faces = %d, want 2", len(m.Faces))
	}
}

func TestOFFErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":      "OOF\n1 0 0\n0 0 0\n",
		"missing counts":  "OFF\n",
		"short vertex":    "OFF\n1 0 0\n0 0\n",
		"bad face index":  "OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n3 0 1 9\n",
		"tiny face":       "OFF\n3 1 0\n0 0 0\n1 0 0\n0 1 0\n2 0 1\n",
		"negative counts": "OFF\n-1 0 0\n",
	}
	for name, src := range cases {
		if _, err := ReadOFF(strings.NewReader(src)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestOBJRoundTrip(t *testing.T) {
	orig := Cylinder(1, 2, 16)
	var buf bytes.Buffer
	if err := WriteOBJ(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOBJ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	meshesEquivalent(t, orig, back, 1e-6)
}

func TestOBJFeatures(t *testing.T) {
	src := `# comment
v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
vn 0 0 1
vt 0 0
f 1/1/1 2/2/1 3/3/1 4/4/1
f -4 -3 -2
g group-records-ignored
`
	m, err := ReadOBJ(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Vertices) != 4 {
		t.Errorf("vertices = %d", len(m.Vertices))
	}
	if len(m.Faces) != 3 { // quad → 2 + 1 relative-index triangle
		t.Errorf("faces = %d, want 3", len(m.Faces))
	}
}

func TestOBJErrors(t *testing.T) {
	for name, src := range map[string]string{
		"bad coord":    "v a b c\n",
		"short vertex": "v 1 2\n",
		"bad index":    "v 0 0 0\nf 1 2 9\n",
		"short face":   "v 0 0 0\nv 1 0 0\nf 1 2\n",
	} {
		if _, err := ReadOBJ(strings.NewReader(src)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestSTLBinaryRoundTrip(t *testing.T) {
	orig := Box(V(0, 0, 0), V(1, 2, 3))
	var buf bytes.Buffer
	if err := WriteSTLBinary(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSTL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// STL loses connectivity; welding restores it.
	if !back.IsClosed() {
		t.Error("STL round trip should produce closed mesh after welding")
	}
	meshesEquivalent(t, orig, back, 1e-5)
}

func TestSTLASCII(t *testing.T) {
	src := `solid test
facet normal 0 0 1
  outer loop
    vertex 0 0 0
    vertex 1 0 0
    vertex 0 1 0
  endloop
endfacet
facet normal 0 0 -1
  outer loop
    vertex 0 0 0
    vertex 0 1 0
    vertex 1 0 0
  endloop
endfacet
endsolid test
`
	m, err := ReadSTL(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Faces) != 2 {
		t.Errorf("faces = %d, want 2", len(m.Faces))
	}
	if len(m.Vertices) != 3 { // welded
		t.Errorf("vertices = %d, want 3 after welding", len(m.Vertices))
	}
}

func TestMeshFileDispatch(t *testing.T) {
	dir := t.TempDir()
	orig := Sphere(1, 6, 8)
	for _, ext := range []string{".off", ".obj", ".stl"} {
		path := filepath.Join(dir, "shape"+ext)
		if err := WriteMeshFile(path, orig); err != nil {
			t.Fatalf("%s write: %v", ext, err)
		}
		back, err := ReadMeshFile(path)
		if err != nil {
			t.Fatalf("%s read: %v", ext, err)
		}
		meshesEquivalent(t, orig, back, 1e-5)
	}
	if err := WriteMeshFile(filepath.Join(dir, "shape.xyz"), orig); err == nil {
		t.Error("unknown extension accepted for write")
	}
	if _, err := ReadMeshFile(filepath.Join(dir, "missing.off")); err == nil {
		t.Error("missing file read succeeded")
	}
	bad := filepath.Join(dir, "bad.xyz")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMeshFile(bad); err == nil {
		t.Error("unknown extension accepted for read")
	}
}
