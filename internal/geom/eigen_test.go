package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randomSymmetric3(rng *rand.Rand) Mat3 {
	a, b, c := rng.NormFloat64()*5, rng.NormFloat64()*5, rng.NormFloat64()*5
	d, e, f := rng.NormFloat64()*5, rng.NormFloat64()*5, rng.NormFloat64()*5
	return Mat3{{a, d, e}, {d, b, f}, {e, f, c}}
}

func TestEigenSym3Diagonal(t *testing.T) {
	m := Mat3{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}}
	vals, vecs := EigenSym3(m)
	want := [3]float64{3, 2, 1}
	for i := range vals {
		if !almostEq(vals[i], want[i], 1e-12) {
			t.Errorf("vals = %v, want %v", vals, want)
		}
	}
	// First eigenvector should be ±e_x.
	v0 := vecs.Col(0)
	if !almostEq(math.Abs(v0.X), 1, 1e-9) {
		t.Errorf("first eigenvector = %v, want ±x", v0)
	}
}

func TestEigenSym3Reconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 300; i++ {
		m := randomSymmetric3(rng)
		vals, vecs := EigenSym3(m)
		// Check M·v = λ·v per eigenpair.
		for k := 0; k < 3; k++ {
			v := vecs.Col(k)
			mv := m.MulVec(v)
			lv := v.Scale(vals[k])
			if !mv.NearEqual(lv, 1e-7*(1+math.Abs(vals[k]))) {
				t.Fatalf("M·v ≠ λ·v: M=%v λ=%v v=%v (Mv=%v λv=%v)", m, vals[k], v, mv, lv)
			}
		}
		// Descending order.
		if vals[0] < vals[1]-1e-12 || vals[1] < vals[2]-1e-12 {
			t.Fatalf("eigenvalues not descending: %v", vals)
		}
		// Trace and determinant preserved.
		if !almostEq(vals[0]+vals[1]+vals[2], m.Trace(), 1e-8*(1+math.Abs(m.Trace()))) {
			t.Fatalf("trace mismatch: %v vs %v", vals[0]+vals[1]+vals[2], m.Trace())
		}
		if !almostEq(vals[0]*vals[1]*vals[2], m.Det(), 1e-6*(1+math.Abs(m.Det()))) {
			t.Fatalf("det mismatch: %v vs %v", vals[0]*vals[1]*vals[2], m.Det())
		}
	}
}

func TestEigenSym3Orthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		_, vecs := EigenSym3(randomSymmetric3(rng))
		vtv := vecs.Transpose().Mul(vecs)
		if !matNearIdentity(vtv, 1e-9) {
			t.Fatalf("eigenvectors not orthonormal: VᵀV = %v", vtv)
		}
	}
}

func TestEigenSymNMatches3x3(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 100; i++ {
		m := randomSymmetric3(rng)
		vals3, _ := EigenSym3(m)
		a := [][]float64{
			{m[0][0], m[0][1], m[0][2]},
			{m[1][0], m[1][1], m[1][2]},
			{m[2][0], m[2][1], m[2][2]},
		}
		valsN, err := EigenSymN(a)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			if !almostEq(vals3[k], valsN[k], 1e-8*(1+math.Abs(vals3[k]))) {
				t.Fatalf("EigenSymN mismatch: %v vs %v", vals3, valsN)
			}
		}
	}
}

func TestEigenSymNLarger(t *testing.T) {
	// Known spectrum: adjacency matrix of the path graph P4 has eigenvalues
	// ±(1±√5)/2 = ±golden ratios.
	a := [][]float64{
		{0, 1, 0, 0},
		{1, 0, 1, 0},
		{0, 1, 0, 1},
		{0, 0, 1, 0},
	}
	vals, err := EigenSymN(a)
	if err != nil {
		t.Fatal(err)
	}
	phi := (1 + math.Sqrt(5)) / 2
	psi := (math.Sqrt(5) - 1) / 2
	want := []float64{phi, psi, -psi, -phi}
	for i := range want {
		if !almostEq(vals[i], want[i], 1e-9) {
			t.Errorf("P4 spectrum: got %v, want %v", vals, want)
			break
		}
	}
}

func TestEigenSymNErrors(t *testing.T) {
	if _, err := EigenSymN(nil); err == nil {
		t.Error("expected error for empty matrix")
	}
	if _, err := EigenSymN([][]float64{{1, 2}, {2}}); err == nil {
		t.Error("expected error for ragged matrix")
	}
}

func TestEigenSymNDoesNotModifyInput(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 2}}
	if _, err := EigenSymN(a); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 2 || a[0][1] != 1 || a[1][0] != 1 || a[1][1] != 2 {
		t.Errorf("input modified: %v", a)
	}
}

// Property: the spectrum is invariant under similarity by a rotation.
func TestEigenRotationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		m := randomSymmetric3(rng)
		r := randomRotation(rng)
		rotated := r.Mul(m).Mul(r.Transpose())
		v1, _ := EigenSym3(m)
		v2, _ := EigenSym3(rotated)
		for k := 0; k < 3; k++ {
			if !almostEq(v1[k], v2[k], 1e-7*(1+math.Abs(v1[k]))) {
				t.Fatalf("spectrum changed under rotation: %v vs %v", v1, v2)
			}
		}
	}
}
