package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSampleSurfacePointsOnSurface(t *testing.T) {
	m := Box(V(0, 0, 0), V(2, 2, 2))
	rng := rand.New(rand.NewSource(30))
	pts := SampleSurface(m, 1000, rng)
	if len(pts) != 1000 {
		t.Fatalf("got %d points", len(pts))
	}
	onFace := func(p Vec3) bool {
		eps := 1e-9
		onBoundary := func(x float64) bool { return math.Abs(x) < eps || math.Abs(x-2) < eps }
		inRange := p.X >= -eps && p.X <= 2+eps && p.Y >= -eps && p.Y <= 2+eps && p.Z >= -eps && p.Z <= 2+eps
		return inRange && (onBoundary(p.X) || onBoundary(p.Y) || onBoundary(p.Z))
	}
	for _, p := range pts {
		if !onFace(p) {
			t.Fatalf("sample %v not on box surface", p)
		}
	}
}

func TestSampleSurfaceAreaWeighting(t *testing.T) {
	// A box that is 10× longer in x: the four long faces carry most of the
	// area, so most samples should have extreme y or z, not extreme x.
	m := Box(V(0, 0, 0), V(10, 1, 1))
	rng := rand.New(rand.NewSource(31))
	pts := SampleSurface(m, 4000, rng)
	capCount := 0
	for _, p := range pts {
		if math.Abs(p.X) < 1e-9 || math.Abs(p.X-10) < 1e-9 {
			capCount++
		}
	}
	// Caps are 2/42 ≈ 4.8% of the area; allow generous slack.
	if frac := float64(capCount) / float64(len(pts)); frac > 0.10 {
		t.Errorf("cap fraction %v too high for area weighting", frac)
	}
}

func TestSampleSurfaceEdgeCases(t *testing.T) {
	if got := SampleSurface(NewMesh(0, 0), 10, rand.New(rand.NewSource(1))); got != nil {
		t.Errorf("sampling empty mesh = %v", got)
	}
	if got := SampleSurface(Box(V(0, 0, 0), V(1, 1, 1)), 0, rand.New(rand.NewSource(1))); got != nil {
		t.Errorf("sampling 0 points = %v", got)
	}
}

func TestSampleSurfaceDeterministic(t *testing.T) {
	m := Sphere(1, 8, 8)
	a := SampleSurface(m, 50, rand.New(rand.NewSource(42)))
	b := SampleSurface(m, 50, rand.New(rand.NewSource(42)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different samples")
		}
	}
}

func TestPairwiseDistanceHistogram(t *testing.T) {
	m := Sphere(1, 16, 16)
	rng := rand.New(rand.NewSource(32))
	h := PairwiseDistanceHistogram(m, 2000, 16, 2.0, rng)
	if len(h) != 16 {
		t.Fatalf("bins = %d", len(h))
	}
	sum := 0.0
	for _, v := range h {
		if v < 0 {
			t.Fatalf("negative bin: %v", h)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram sum = %v, want 1", sum)
	}
	// No pair of points on a unit sphere is farther than the diameter.
	// With maxDist=2 the last bin collects near-antipodal pairs only; the
	// first bin should be small but the middle mass must dominate.
	if h[0] > 0.2 {
		t.Errorf("suspiciously many near-zero distances: %v", h[0])
	}
}

func TestPairwiseDistanceHistogramAutoMax(t *testing.T) {
	m := Box(V(0, 0, 0), V(1, 1, 1))
	rng := rand.New(rand.NewSource(33))
	h := PairwiseDistanceHistogram(m, 500, 8, 0, rng)
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("auto-max histogram sum = %v", sum)
	}
	if got := PairwiseDistanceHistogram(m, 0, 8, 0, rng); got != nil {
		t.Errorf("0 pairs should give nil, got %v", got)
	}
	if got := PairwiseDistanceHistogram(m, 10, 0, 0, rng); got != nil {
		t.Errorf("0 bins should give nil, got %v", got)
	}
}
