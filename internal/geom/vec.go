// Package geom provides the geometric kernel for 3DESS: vectors, matrices,
// symmetric eigensolvers, triangle meshes with exact integral properties,
// mesh file I/O (OFF, OBJ, STL), and parametric primitives used to build
// engineering shapes.
//
// The package is self-contained (standard library only) and is the
// substrate every feature extractor in the system builds on.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a 3-component vector (or point) with float64 precision.
type Vec3 struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vec3.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Mul returns the component-wise product of v and w.
func (v Vec3) Mul(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v · w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns the Euclidean norm of v.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Len2 returns the squared Euclidean norm of v.
func (v Vec3) Len2() float64 { return v.Dot(v) }

// Dist returns the Euclidean distance between v and w.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Len() }

// Normalize returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Min returns the component-wise minimum of v and w.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum of v and w.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// Abs returns the component-wise absolute value of v.
func (v Vec3) Abs() Vec3 {
	return Vec3{math.Abs(v.X), math.Abs(v.Y), math.Abs(v.Z)}
}

// Component returns the i-th component (0=X, 1=Y, 2=Z).
func (v Vec3) Component(i int) float64 {
	switch i {
	case 0:
		return v.X
	case 1:
		return v.Y
	case 2:
		return v.Z
	}
	panic(fmt.Sprintf("geom: Vec3 component index %d out of range", i))
}

// WithComponent returns a copy of v with the i-th component set to x.
func (v Vec3) WithComponent(i int, x float64) Vec3 {
	switch i {
	case 0:
		v.X = x
	case 1:
		v.Y = x
	case 2:
		v.Z = x
	default:
		panic(fmt.Sprintf("geom: Vec3 component index %d out of range", i))
	}
	return v
}

// MaxComponent returns the largest component of v.
func (v Vec3) MaxComponent() float64 { return math.Max(v.X, math.Max(v.Y, v.Z)) }

// IsFinite reports whether every component of v is finite (not NaN/Inf).
func (v Vec3) IsFinite() bool {
	ok := func(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
	return ok(v.X) && ok(v.Y) && ok(v.Z)
}

// NearEqual reports whether v and w differ by at most eps in every
// component.
func (v Vec3) NearEqual(w Vec3, eps float64) bool {
	return math.Abs(v.X-w.X) <= eps && math.Abs(v.Y-w.Y) <= eps && math.Abs(v.Z-w.Z) <= eps
}

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }

// Lerp returns the linear interpolation between v and w at parameter t
// (t=0 gives v, t=1 gives w).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 { return v.Add(w.Sub(v).Scale(t)) }
