package geom

import (
	"math"
	"math/rand"
	"testing"
)

func randomRotation(rng *rand.Rand) Mat3 {
	axis := randomVec(rng)
	for axis.Len() < 1e-6 {
		axis = randomVec(rng)
	}
	return RotationAxisAngle(axis, rng.Float64()*2*math.Pi)
}

func TestMatIdentity(t *testing.T) {
	id := Identity3()
	v := V(1, 2, 3)
	if got := id.MulVec(v); got != v {
		t.Errorf("I·v = %v", got)
	}
	if got := id.Det(); got != 1 {
		t.Errorf("det(I) = %v", got)
	}
	if got := id.Trace(); got != 3 {
		t.Errorf("tr(I) = %v", got)
	}
}

func TestMatMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		a := MatFromRows(randomVec(rng), randomVec(rng), randomVec(rng))
		b := MatFromRows(randomVec(rng), randomVec(rng), randomVec(rng))
		v := randomVec(rng)
		lhs := a.Mul(b).MulVec(v)
		rhs := a.MulVec(b.MulVec(v))
		if !lhs.NearEqual(rhs, 1e-6*(1+lhs.Len())) {
			t.Fatalf("(AB)v ≠ A(Bv): %v vs %v", lhs, rhs)
		}
	}
}

func TestMatInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		m := MatFromRows(randomVec(rng), randomVec(rng), randomVec(rng))
		if math.Abs(m.Det()) < 1e-3 {
			continue
		}
		inv, err := m.Inverse()
		if err != nil {
			t.Fatalf("Inverse: %v", err)
		}
		prod := m.Mul(inv)
		if !prod.IsRotation(1e-6) && !matNearIdentity(prod, 1e-6) {
			t.Fatalf("M·M⁻¹ not identity: %v", prod)
		}
	}
}

func matNearIdentity(m Mat3, eps float64) bool {
	id := Identity3()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(m[i][j]-id[i][j]) > eps {
				return false
			}
		}
	}
	return true
}

func TestMatSingularInverse(t *testing.T) {
	m := MatFromRows(V(1, 2, 3), V(2, 4, 6), V(0, 0, 1))
	if _, err := m.Inverse(); err == nil {
		t.Error("expected error inverting singular matrix")
	}
}

func TestRotationsAreProper(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		r := randomRotation(rng)
		if !r.IsRotation(1e-9) {
			t.Fatalf("RotationAxisAngle produced non-rotation: %v (det=%v)", r, r.Det())
		}
	}
	for _, r := range []Mat3{RotationX(0.7), RotationY(-1.3), RotationZ(2.9)} {
		if !r.IsRotation(1e-12) {
			t.Errorf("axis rotation is not proper: %v", r)
		}
	}
}

func TestRotationPreservesLength(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		r := randomRotation(rng)
		v := randomVec(rng)
		if !almostEq(r.MulVec(v).Len(), v.Len(), 1e-9*(1+v.Len())) {
			t.Fatalf("rotation changed length: %v", v)
		}
	}
}

func TestRotationZQuarterTurn(t *testing.T) {
	r := RotationZ(math.Pi / 2)
	if got := r.MulVec(V(1, 0, 0)); !got.NearEqual(V(0, 1, 0), 1e-12) {
		t.Errorf("Rz(90°)·x = %v, want y", got)
	}
}

func TestRotationAxisAngleZeroAxis(t *testing.T) {
	if got := RotationAxisAngle(Vec3{}, 1.0); !matNearIdentity(got, 0) {
		t.Errorf("zero axis should give identity, got %v", got)
	}
}

func TestMatRowColAccessors(t *testing.T) {
	m := MatFromRows(V(1, 2, 3), V(4, 5, 6), V(7, 8, 9))
	if got := m.Row(1); got != V(4, 5, 6) {
		t.Errorf("Row(1) = %v", got)
	}
	if got := m.Col(2); got != V(3, 6, 9) {
		t.Errorf("Col(2) = %v", got)
	}
	if got := MatFromCols(V(1, 4, 7), V(2, 5, 8), V(3, 6, 9)); got != m {
		t.Errorf("MatFromCols = %v", got)
	}
	if got := m.Transpose().Transpose(); got != m {
		t.Errorf("double transpose = %v", got)
	}
}

func TestTransformCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 100; i++ {
		a := Transform{R: randomRotation(rng), T: randomVec(rng)}
		b := Transform{R: randomRotation(rng), T: randomVec(rng)}
		p := randomVec(rng)
		lhs := a.Compose(b).Apply(p)
		rhs := a.Apply(b.Apply(p))
		if !lhs.NearEqual(rhs, 1e-9*(1+lhs.Len())) {
			t.Fatalf("compose mismatch: %v vs %v", lhs, rhs)
		}
	}
}

func TestTransformBuilders(t *testing.T) {
	p := V(1, 1, 1)
	if got := Translation(V(1, 2, 3)).Apply(p); got != V(2, 3, 4) {
		t.Errorf("Translation = %v", got)
	}
	if got := Scaling(2).Apply(p); got != V(2, 2, 2) {
		t.Errorf("Scaling = %v", got)
	}
	if got := IdentityTransform().Apply(p); got != p {
		t.Errorf("Identity = %v", got)
	}
}
