package geom

import (
	"math"
	"testing"
)

// Analytic-volume checks: discretized solids must converge to the closed
// form within the discretization tolerance.

func TestCylinderVolumeArea(t *testing.T) {
	const r, h = 2.0, 5.0
	const segs = 256
	m := Cylinder(r, h, segs)
	if !m.IsClosed() {
		t.Fatal("cylinder not closed")
	}
	wantVol := math.Pi * r * r * h
	if got := m.Volume(); math.Abs(got-wantVol) > 0.01*wantVol {
		t.Errorf("volume = %v, want ≈%v", got, wantVol)
	}
	wantArea := 2*math.Pi*r*h + 2*math.Pi*r*r
	if got := m.SurfaceArea(); math.Abs(got-wantArea) > 0.01*wantArea {
		t.Errorf("area = %v, want ≈%v", got, wantArea)
	}
	if got := m.Centroid(); !got.NearEqual(V(0, 0, h/2), 1e-6) {
		t.Errorf("centroid = %v, want (0,0,%v)", got, h/2)
	}
}

func TestTubeVolume(t *testing.T) {
	const ri, ro, h = 1.0, 2.0, 3.0
	m, err := Tube(ri, ro, h, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsClosed() {
		t.Fatal("tube not closed")
	}
	want := math.Pi * (ro*ro - ri*ri) * h
	if got := m.Volume(); math.Abs(got-want) > 0.01*want {
		t.Errorf("volume = %v, want ≈%v", got, want)
	}
	// Genus 1: Euler characteristic 0.
	if got := m.EulerCharacteristic(); got != 0 {
		t.Errorf("tube Euler characteristic = %d, want 0", got)
	}
}

func TestTubeBadRadii(t *testing.T) {
	if _, err := Tube(2, 1, 1, 8); err == nil {
		t.Error("inner ≥ outer accepted")
	}
	if _, err := Tube(0, 1, 1, 8); err == nil {
		t.Error("zero inner radius accepted")
	}
}

func TestConeVolume(t *testing.T) {
	const r, h = 3.0, 4.0
	m, err := Cone(r, 0, h, 256)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pi * r * r * h / 3
	if got := m.Volume(); math.Abs(got-want) > 0.01*want {
		t.Errorf("cone volume = %v, want ≈%v", got, want)
	}
	// Frustum.
	f, err := Cone(2, 1, 3, 256)
	if err != nil {
		t.Fatal(err)
	}
	wantF := math.Pi * 3.0 / 3 * (4 + 2 + 1)
	if got := f.Volume(); math.Abs(got-wantF) > 0.01*wantF {
		t.Errorf("frustum volume = %v, want ≈%v", got, wantF)
	}
	if _, err := Cone(0, 0, 1, 8); err == nil {
		t.Error("double-zero-radius cone accepted")
	}
}

func TestSphereVolumeArea(t *testing.T) {
	const r = 2.0
	m := Sphere(r, 64, 128)
	if !m.IsClosed() {
		t.Fatal("sphere not closed")
	}
	wantVol := 4.0 / 3 * math.Pi * r * r * r
	if got := m.Volume(); math.Abs(got-wantVol) > 0.01*wantVol {
		t.Errorf("volume = %v, want ≈%v", got, wantVol)
	}
	wantArea := 4 * math.Pi * r * r
	if got := m.SurfaceArea(); math.Abs(got-wantArea) > 0.01*wantArea {
		t.Errorf("area = %v, want ≈%v", got, wantArea)
	}
	if got := m.EulerCharacteristic(); got != 2 {
		t.Errorf("sphere Euler characteristic = %d, want 2", got)
	}
}

func TestTorusVolume(t *testing.T) {
	const R, r = 3.0, 1.0
	m, err := Torus(R, r, 128, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsClosed() {
		t.Fatal("torus not closed")
	}
	want := 2 * math.Pi * math.Pi * R * r * r
	if got := m.Volume(); math.Abs(got-want) > 0.01*want {
		t.Errorf("volume = %v, want ≈%v", got, want)
	}
	if got := m.EulerCharacteristic(); got != 0 {
		t.Errorf("torus Euler characteristic = %d, want 0", got)
	}
	if _, err := Torus(1, 2, 8, 8); err == nil {
		t.Error("minor ≥ major accepted")
	}
}

func TestExtrudeRect(t *testing.T) {
	m, err := Extrude(RectPolygon(0, 0, 2, 3), nil, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsClosed() {
		t.Fatal("extruded rect not closed")
	}
	if got := m.Volume(); !almostEq(got, 24, 1e-9) {
		t.Errorf("volume = %v, want 24", got)
	}
}

func TestExtrudePlateWithHole(t *testing.T) {
	outer := RectPolygon(0, 0, 10, 10)
	hole := CirclePolygon(Vec2{5, 5}, 2, 64, 0)
	m, err := Extrude(outer, []Polygon{hole}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsClosed() {
		t.Fatal("plate with hole not closed")
	}
	want := 100 - math.Pi*4
	if got := m.Volume(); math.Abs(got-want) > 0.01*want {
		t.Errorf("volume = %v, want ≈%v", got, want)
	}
	// Through-hole plate is a torus topologically.
	if got := m.EulerCharacteristic(); got != 0 {
		t.Errorf("Euler characteristic = %d, want 0", got)
	}
}

func TestExtrudePlateWithMultipleHoles(t *testing.T) {
	outer := RectPolygon(0, 0, 20, 10)
	holes := []Polygon{
		CirclePolygon(Vec2{4, 5}, 1.5, 32, 0),
		CirclePolygon(Vec2{10, 5}, 1.5, 32, 0.3),
		CirclePolygon(Vec2{16, 5}, 1.5, 32, 0.7),
	}
	m, err := Extrude(outer, holes, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsClosed() {
		t.Fatal("3-hole plate not closed")
	}
	want := (200 - 3*math.Pi*1.5*1.5) * 2
	if got := m.Volume(); math.Abs(got-want) > 0.02*want {
		t.Errorf("volume = %v, want ≈%v", got, want)
	}
	// Genus 3 surface: χ = 2 − 2·3 = −4.
	if got := m.EulerCharacteristic(); got != -4 {
		t.Errorf("Euler characteristic = %d, want -4", got)
	}
}

func TestExtrudeErrors(t *testing.T) {
	if _, err := Extrude(RectPolygon(0, 0, 1, 1), nil, 2, 2); err == nil {
		t.Error("zero-height extrusion accepted")
	}
	if _, err := Extrude(Polygon{{0, 0}, {1, 0}}, nil, 0, 1); err == nil {
		t.Error("2-vertex outer polygon accepted")
	}
	if _, err := Extrude(RectPolygon(0, 0, 1, 1), []Polygon{CirclePolygon(Vec2{9, 9}, 0.1, 8, 0)}, 0, 1); err == nil {
		t.Error("hole outside outer polygon accepted")
	}
}

func TestLatheLShapeProfile(t *testing.T) {
	// An L-profile of revolution (flanged bushing): analytic volume is the
	// sum of two tubes.
	profile := Polygon{{1, 0}, {4, 0}, {4, 1}, {2, 1}, {2, 3}, {1, 3}}
	m, err := Lathe(profile, 256)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsClosed() {
		t.Fatal("lathed L-profile not closed")
	}
	want := math.Pi*(16-1)*1 + math.Pi*(4-1)*2
	if got := m.Volume(); math.Abs(got-want) > 0.01*want {
		t.Errorf("volume = %v, want ≈%v", got, want)
	}
}

func TestLatheErrors(t *testing.T) {
	if _, err := Lathe(Polygon{{0, 0}, {1, 1}}, 8); err == nil {
		t.Error("2-vertex profile accepted")
	}
	if _, err := Lathe(Polygon{{-1, 0}, {1, 0}, {1, 1}}, 8); err == nil {
		t.Error("negative-radius profile accepted")
	}
}

func TestTubeAlongPathStraight(t *testing.T) {
	// A straight swept tube is a cylinder.
	path := []Vec3{{0, 0, 0}, {0, 0, 1}, {0, 0, 2}, {0, 0, 3}}
	m, err := TubeAlongPath(path, 0.5, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsClosed() {
		t.Fatal("swept tube not closed")
	}
	want := math.Pi * 0.25 * 3
	if got := m.Volume(); math.Abs(got-want) > 0.02*want {
		t.Errorf("volume = %v, want ≈%v", got, want)
	}
}

func TestTubeAlongPathClosedRing(t *testing.T) {
	// A circular closed sweep approximates a torus.
	const R, r = 3.0, 0.5
	n := 128
	path := make([]Vec3, n)
	for i := range path {
		a := 2 * math.Pi * float64(i) / float64(n)
		path[i] = V(R*math.Cos(a), R*math.Sin(a), 0)
	}
	m, err := TubeAlongPath(path, r, 32, true)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsClosed() {
		t.Fatal("closed sweep not closed")
	}
	want := 2 * math.Pi * math.Pi * R * r * r
	if got := m.Volume(); math.Abs(got-want) > 0.02*want {
		t.Errorf("volume = %v, want ≈%v", got, want)
	}
}

func TestTubeAlongPathErrors(t *testing.T) {
	if _, err := TubeAlongPath([]Vec3{{0, 0, 0}}, 1, 8, false); err == nil {
		t.Error("1-point path accepted")
	}
	if _, err := TubeAlongPath([]Vec3{{0, 0, 0}, {1, 0, 0}}, 1, 8, true); err == nil {
		t.Error("2-point closed path accepted")
	}
}

func TestHexPrism(t *testing.T) {
	const af, h = 2.0, 1.0
	m, err := HexPrism(af, h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsClosed() {
		t.Fatal("hex prism not closed")
	}
	// Hexagon area = √3/2 · af².
	want := math.Sqrt(3) / 2 * af * af * h
	if got := m.Volume(); math.Abs(got-want) > 1e-6*want {
		t.Errorf("volume = %v, want %v", got, want)
	}
	// A nut: hex prism with a circular hole.
	nut, err := HexPrism(af, h, []Polygon{CirclePolygon(Vec2{}, 0.5, 32, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if !nut.IsClosed() {
		t.Fatal("nut not closed")
	}
	wantNut := want - math.Pi*0.25*h
	if got := nut.Volume(); math.Abs(got-wantNut) > 0.01*wantNut {
		t.Errorf("nut volume = %v, want ≈%v", got, wantNut)
	}
}

func TestPolygonBasics(t *testing.T) {
	sq := RectPolygon(0, 0, 2, 2)
	if got := sq.SignedArea(); !almostEq(got, 4, 1e-12) {
		t.Errorf("SignedArea = %v", got)
	}
	if got := sq.Reverse().SignedArea(); !almostEq(got, -4, 1e-12) {
		t.Errorf("reversed SignedArea = %v", got)
	}
	sq.Reverse()
	if !sq.Contains(Vec2{1, 1}) {
		t.Error("square should contain its center")
	}
	if sq.Contains(Vec2{3, 1}) {
		t.Error("square should not contain outside point")
	}
	circle := CirclePolygon(Vec2{0, 0}, 1, 360, 0)
	if got := circle.SignedArea(); math.Abs(got-math.Pi) > 0.001*math.Pi {
		t.Errorf("circle area = %v, want ≈π", got)
	}
}

func TestTriangulationPreservesArea(t *testing.T) {
	outer := RectPolygon(0, 0, 8, 6)
	holes := []Polygon{
		CirclePolygon(Vec2{2, 3}, 1, 24, 0),
		CirclePolygon(Vec2{6, 3}, 1, 24, 0.5),
	}
	verts, tris, err := TriangulatePolygon(outer, holes)
	if err != nil {
		t.Fatal(err)
	}
	area := 0.0
	for _, tr := range tris {
		a, b, c := verts[tr[0]], verts[tr[1]], verts[tr[2]]
		area += b.Sub(a).Cross(c.Sub(a)) / 2
	}
	want := 48 - 2*CirclePolygon(Vec2{}, 1, 24, 0).SignedArea()
	if math.Abs(area-want) > 1e-9*want {
		t.Errorf("triangulated area = %v, want %v", area, want)
	}
	// All output triangles CCW.
	for _, tr := range tris {
		a, b, c := verts[tr[0]], verts[tr[1]], verts[tr[2]]
		if b.Sub(a).Cross(c.Sub(a)) <= 0 {
			t.Fatalf("clockwise triangle in output: %v", tr)
		}
	}
}
