// Package colstore maintains contiguous columnar copies of the descriptor
// vectors held by a shapedb.DB, one store per feature kind.
//
// A Store lays the snapshot out structure-of-arrays style: an id column,
// one flat []float64 per feature dimension, and one quantized []uint8 per
// dimension (a 256-cell scalar grid in the spirit of the VA-file). The
// float columns make the exact weighted-distance kernel a tight
// cache-friendly loop; the byte columns drive a cheap coarse filter whose
// per-dimension cell distance is a provable lower bound on the true
// per-dimension distance, so a two-stage top-k search can prune most rows
// and still return exactly the results an exhaustive scan would.
//
// Stores are immutable once published. A Manager watches the owning DB
// (via Version / CommitNotify) and republishes per-kind stores when the
// record set mutates, appending in place when the snapshot merely grew and
// rebuilding from scratch otherwise.
package colstore

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"threedess/internal/features"
	"threedess/internal/rtree"
	"threedess/internal/shapedb"
	"threedess/internal/workpool"
)

const (
	// qCells is the number of quantization cells per dimension. One byte
	// per dimension per row keeps the coarse pass at ~dim bytes of memory
	// traffic per row instead of ~8*dim.
	qCells = 256

	// blockRows is the unit of work for the coarse filter: lower bounds
	// are accumulated column-at-a-time into a reusable buffer of this many
	// rows, and cancellation is checked between blocks.
	blockRows = 1024

	// rebuildAppendFrac forces a full rebuild (fresh quantization grid and
	// R-tree) once the rows appended since the last full build exceed this
	// fraction of the tree's coverage. Appended rows are clamped into the
	// existing grid (still safe — edge cells are half-infinite) and are
	// invisible to the seeding tree (still safe — a subset k-th distance
	// only loosens the bound), so this is a performance knob, not a
	// correctness one.
	rebuildAppendFrac = 4 // rebuild when appended > treeRows/4
)

// Candidate is one row surviving a store search, resolved back to its
// snapshot record. Dist is bit-identical to core.WeightedDistance over the
// same vectors: both accumulate w[d]*diff^2 in ascending dimension order
// and take a single square root.
type Candidate struct {
	Rec  *shapedb.Record
	Dist float64
}

// Stats reports how much work a single search actually did, for tests and
// benchmark introspection.
type Stats struct {
	Rows       int  // rows considered by the coarse pass
	ExactEvals int  // rows that needed the exact kernel
	TreeSeeded bool // whether the R-tree supplied an initial bound
}

// Store is an immutable columnar snapshot of every record carrying one
// feature kind, ordered by ascending record ID.
type Store struct {
	kind    features.Kind
	dim     int
	version int64 // shapedb.DB.Version at snapshot time

	ids  []int64           // id column, ascending
	recs []*shapedb.Record // recs[i] owns ids[i]; aligned with the columns
	cols [][]float64       // cols[d][i] = dimension d of row i

	// Quantized mirror of cols. Cell c of dimension d covers
	// [qlo[d]+c*qstep[d], qlo[d]+(c+1)*qstep[d]] with cells 0 and
	// qCells-1 extended to -Inf/+Inf so rows appended outside the
	// original grid still quantize safely.
	qcols [][]uint8
	qlo   []float64
	qstep []float64

	// tree is an STR-packed R-tree over rows [0, treeRows) used only to
	// seed the top-k pruning bound. After an incremental append it covers
	// a prefix of the store; nil when the kind has no rows.
	tree     *rtree.Tree
	treeRows int
}

// Kind returns the feature kind this store indexes.
func (s *Store) Kind() features.Kind { return s.kind }

// Dim returns the dimensionality of the indexed vectors.
func (s *Store) Dim() int { return s.dim }

// Len returns the number of rows.
func (s *Store) Len() int { return len(s.ids) }

// Version returns the DB mutation counter the snapshot was taken at.
func (s *Store) Version() int64 { return s.version }

// IDs returns a copy of the id column.
func (s *Store) IDs() []int64 {
	out := make([]int64, len(s.ids))
	copy(out, s.ids)
	return out
}

// Records returns the snapshot records backing the rows, in row order.
// Callers must not mutate the returned records.
func (s *Store) Records() []*shapedb.Record {
	out := make([]*shapedb.Record, len(s.recs))
	copy(out, s.recs)
	return out
}

// build constructs a store for kind from a snapshot. prev, when non-nil
// and still a row-for-row prefix of the new snapshot (pointer identity),
// donates its quantization grid and seeding tree so only the appended
// suffix is processed.
func build(kind features.Kind, dim int, recs []*shapedb.Record, version int64, prev *Store) (*Store, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("colstore: feature kind %v has no dimensionality", kind)
	}
	rows := make([]*shapedb.Record, 0, len(recs))
	for _, rec := range recs {
		if _, ok := rec.Features[kind]; ok {
			rows = append(rows, rec)
		}
	}
	if prev != nil && prev.dim == dim && prev.canAppend(rows) {
		return prev.appendRows(rows, version)
	}
	s := &Store{
		kind:    kind,
		dim:     dim,
		version: version,
		ids:     make([]int64, len(rows)),
		recs:    rows,
		cols:    make([][]float64, dim),
		qcols:   make([][]uint8, dim),
		qlo:     make([]float64, dim),
		qstep:   make([]float64, dim),
	}
	for d := 0; d < dim; d++ {
		s.cols[d] = make([]float64, len(rows))
		s.qcols[d] = make([]uint8, len(rows))
	}
	for i, rec := range rows {
		v := rec.Features[kind]
		if len(v) != dim {
			return nil, fmt.Errorf("colstore: record %d has %d-dim %v vector, want %d", rec.ID, len(v), kind, dim)
		}
		s.ids[i] = rec.ID
		for d := 0; d < dim; d++ {
			s.cols[d][i] = v[d]
		}
	}
	for d := 0; d < dim; d++ {
		s.buildGrid(d)
	}
	if err := s.buildTree(); err != nil {
		return nil, err
	}
	return s, nil
}

// canAppend reports whether rows extends this store's rows by pointer
// identity, and the appended tail is small enough to skip a full rebuild.
func (s *Store) canAppend(rows []*shapedb.Record) bool {
	if len(rows) < len(s.recs) {
		return false
	}
	for i, rec := range s.recs {
		if rows[i] != rec {
			return false
		}
	}
	appended := len(rows) - s.treeRows
	return appended <= maxInt(blockRows, s.treeRows/rebuildAppendFrac)
}

// appendRows publishes a new store sharing s's grid and tree, with the
// suffix of rows quantized into the existing (half-infinite-edged) grid.
func (s *Store) appendRows(rows []*shapedb.Record, version int64) (*Store, error) {
	n := len(rows)
	ns := &Store{
		kind:     s.kind,
		dim:      s.dim,
		version:  version,
		ids:      make([]int64, n),
		recs:     rows,
		cols:     make([][]float64, s.dim),
		qcols:    make([][]uint8, s.dim),
		qlo:      s.qlo,
		qstep:    s.qstep,
		tree:     s.tree,
		treeRows: s.treeRows,
	}
	copy(ns.ids, s.ids)
	for d := 0; d < s.dim; d++ {
		ns.cols[d] = make([]float64, n)
		copy(ns.cols[d], s.cols[d])
		ns.qcols[d] = make([]uint8, n)
		copy(ns.qcols[d], s.qcols[d])
	}
	for i := len(s.recs); i < n; i++ {
		rec := rows[i]
		v := rec.Features[ns.kind]
		if len(v) != ns.dim {
			return nil, fmt.Errorf("colstore: record %d has %d-dim %v vector, want %d", rec.ID, len(v), ns.kind, ns.dim)
		}
		ns.ids[i] = rec.ID
		for d := 0; d < ns.dim; d++ {
			ns.cols[d][i] = v[d]
			ns.qcols[d][i] = ns.quantize(d, v[d])
		}
	}
	return ns, nil
}

// buildGrid derives dimension d's quantization grid from its column and
// fills the byte column.
func (s *Store) buildGrid(d int) {
	col := s.cols[d]
	if len(col) == 0 {
		s.qlo[d], s.qstep[d] = 0, 0
		return
	}
	lo, hi := col[0], col[0]
	for _, v := range col[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	s.qlo[d] = lo
	s.qstep[d] = (hi - lo) / qCells
	qc := s.qcols[d]
	for i, v := range col {
		qc[i] = s.quantize(d, v)
	}
}

// quantize maps v into a cell of dimension d's grid and then nudges the
// cell until the cell's own boundary arithmetic — the exact expressions
// the query LUT evaluates — provably contains v. Without the fix-up a
// rounded multiply could park v one cell high or low, making the "lower
// bound" overshoot the true distance and prune a legitimate result.
func (s *Store) quantize(d int, v float64) uint8 {
	lo, step := s.qlo[d], s.qstep[d]
	c := 0
	if step > 0 {
		c = int((v - lo) / step)
		if c < 0 {
			c = 0
		} else if c > qCells-1 {
			c = qCells - 1
		}
	}
	for c > 0 && lo+float64(c)*step > v {
		c--
	}
	for c < qCells-1 && lo+float64(c+1)*step < v {
		c++
	}
	return uint8(c)
}

// buildTree STR-packs an R-tree over every row for bound seeding.
func (s *Store) buildTree() error {
	s.treeRows = len(s.ids)
	if len(s.ids) == 0 {
		s.tree = nil
		return nil
	}
	items := make([]rtree.BulkItem, len(s.ids))
	buf := make([]float64, len(s.ids)*s.dim)
	for i, id := range s.ids {
		p := buf[i*s.dim : (i+1)*s.dim]
		for d := 0; d < s.dim; d++ {
			p[d] = s.cols[d][i]
		}
		items[i] = rtree.BulkItem{ID: id, Point: p}
	}
	tr, err := rtree.BulkLoad(s.dim, rtree.DefaultMaxEntries, items)
	if err != nil {
		return err
	}
	s.tree = tr
	return nil
}

// rowOf returns the row index of record id, or -1.
func (s *Store) rowOf(id int64) int {
	i := sort.Search(len(s.ids), func(i int) bool { return s.ids[i] >= id })
	if i < len(s.ids) && s.ids[i] == id {
		return i
	}
	return -1
}

// DistSq computes the squared weighted distance from q to row, with the
// same ascending-dimension accumulation order as core.WeightedDistance so
// math.Sqrt of the result is bit-identical to the exact-scan distance.
// A nil w means unit weights.
func (s *Store) DistSq(row int, q, w []float64) float64 {
	sum := 0.0
	if w == nil {
		for d := 0; d < s.dim; d++ {
			diff := q[d] - s.cols[d][row]
			sum += diff * diff
		}
		return sum
	}
	for d := 0; d < s.dim; d++ {
		diff := q[d] - s.cols[d][row]
		sum += w[d] * diff * diff
	}
	return sum
}

// buildLUT materializes the per-query lookup table: lut[d*qCells+c] is the
// weighted squared distance from q[d] to the nearest point of cell c, a
// lower bound on w[d]*(q[d]-x[d])^2 for every x quantized into that cell.
func (s *Store) buildLUT(q, w []float64) []float64 {
	lut := make([]float64, s.dim*qCells)
	for d := 0; d < s.dim; d++ {
		lo, step := s.qlo[d], s.qstep[d]
		wd := 1.0
		if w != nil {
			wd = w[d]
		}
		qd := q[d]
		row := lut[d*qCells : (d+1)*qCells]
		for c := 0; c < qCells; c++ {
			var diff float64
			if c > 0 { // cell 0 extends to -Inf
				if cellLo := lo + float64(c)*step; qd < cellLo {
					diff = cellLo - qd
				}
			}
			if c < qCells-1 { // top cell extends to +Inf
				if cellHi := lo + float64(c+1)*step; qd > cellHi {
					diff = qd - cellHi
				}
			}
			row[c] = wd * diff * diff
		}
	}
	return lut
}

// CoarseLowerBound2 evaluates the quantized lower bound for a single row
// the same way the block scan does. Exposed so property tests can assert
// bound safety (lb^2 <= true dist^2) row by row.
func (s *Store) CoarseLowerBound2(row int, q, w []float64) float64 {
	lut := s.buildLUT(q, w)
	sum := 0.0
	for d := 0; d < s.dim; d++ {
		sum += lut[d*qCells+int(s.qcols[d][row])]
	}
	return sum
}

func (s *Store) checkQuery(q, w []float64) error {
	if len(q) != s.dim {
		return fmt.Errorf("colstore: query has %d dims, store %v has %d", len(q), s.kind, s.dim)
	}
	if w != nil && len(w) != s.dim {
		return fmt.Errorf("colstore: weights have %d dims, store %v has %d", len(w), s.kind, s.dim)
	}
	return nil
}

// topkHeap is a bounded max-heap of (dist2, row) pairs ordered by
// (dist2, id) so the retained set matches the exact scan's tie-break.
type topkHeap struct {
	s     *Store
	dist2 []float64
	rows  []int
	k     int
}

func (h *topkHeap) less(i, j int) bool { // true when i sorts after j (max-heap)
	if h.dist2[i] != h.dist2[j] {
		return h.dist2[i] > h.dist2[j]
	}
	return h.s.ids[h.rows[i]] > h.s.ids[h.rows[j]]
}

func (h *topkHeap) swap(i, j int) {
	h.dist2[i], h.dist2[j] = h.dist2[j], h.dist2[i]
	h.rows[i], h.rows[j] = h.rows[j], h.rows[i]
}

func (h *topkHeap) down(i int) {
	n := len(h.rows)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.swap(i, m)
		i = m
	}
}

func (h *topkHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			return
		}
		h.swap(i, p)
		i = p
	}
}

// offer considers (dist2, row) for membership in the retained top-k.
func (h *topkHeap) offer(dist2 float64, row int) {
	if len(h.rows) < h.k {
		h.dist2 = append(h.dist2, dist2)
		h.rows = append(h.rows, row)
		h.up(len(h.rows) - 1)
		return
	}
	// Replace the max when the candidate's (dist2, id) pair sorts first.
	if dist2 > h.dist2[0] {
		return
	}
	if dist2 == h.dist2[0] && h.s.ids[row] > h.s.ids[h.rows[0]] {
		return
	}
	h.dist2[0], h.rows[0] = dist2, row
	h.down(0)
}

// pruneBound2 is the squared distance above which a lower bound proves a
// row cannot enter the heap. +Inf until the heap is full.
func (h *topkHeap) pruneBound2() float64 {
	if len(h.rows) < h.k {
		return math.Inf(1)
	}
	return h.dist2[0]
}

// SearchTopK returns the exact k nearest rows to q under the weighted
// metric, ordered by (distance, id) — the same set, order, and bitwise
// distances an exhaustive scan over the snapshot would produce. The
// coarse quantized pass skips the exact kernel for every row whose lower
// bound exceeds the running k-th distance; the R-tree seeds that bound so
// pruning bites from the first block. workers shards the scan.
func (s *Store) SearchTopK(ctx context.Context, q, w []float64, k, workers int) ([]Candidate, Stats, error) {
	var st Stats
	if err := s.checkQuery(q, w); err != nil {
		return nil, st, err
	}
	if k <= 0 || len(s.ids) == 0 {
		return nil, st, nil
	}
	if k > len(s.ids) {
		k = len(s.ids)
	}
	st.Rows = len(s.ids)

	// Seed the pruning bound with the exact k-th distance among the
	// tree's rows. The tree may cover only a prefix of the store (after
	// appends); a subset's k-th distance is >= the full set's, so the
	// seed can only be loose, never unsafe. The bound is recomputed from
	// the float columns rather than taken from the tree's sqrt'd result
	// so it is comparable with DistSq without rounding hazards.
	seed2 := math.Inf(1)
	if s.tree != nil && s.tree.Len() >= k {
		if nn := s.tree.NearestNeighborsWeighted(k, q, w); len(nn) == k {
			if row := s.rowOf(nn[k-1].ID); row >= 0 {
				seed2 = s.DistSq(row, q, w)
				st.TreeSeeded = true
			}
		}
	}

	lut := s.buildLUT(q, w)
	shards := scanShards(workers, len(s.ids))
	heaps := make([]*topkHeap, len(shards))
	evals := make([]int, len(shards))
	errs := make([]error, len(shards))
	runShard := func(si int) {
		sh := shards[si]
		h := &topkHeap{s: s, k: k}
		heaps[si] = h
		var acc [blockRows]float64
		for lo := sh.Lo; lo < sh.Hi; lo += blockRows {
			if err := ctx.Err(); err != nil {
				errs[si] = err
				return
			}
			hi := lo + blockRows
			if hi > sh.Hi {
				hi = sh.Hi
			}
			blk := acc[:hi-lo]
			for d := 0; d < s.dim; d++ {
				lrow := lut[d*qCells : (d+1)*qCells]
				qc := s.qcols[d][lo:hi]
				if d == 0 {
					for i, c := range qc {
						blk[i] = lrow[c]
					}
					continue
				}
				for i, c := range qc {
					blk[i] += lrow[c]
				}
			}
			bound2 := seed2
			if hb := h.pruneBound2(); hb < bound2 {
				bound2 = hb
			}
			for i, lb2 := range blk {
				if lb2 > bound2 {
					continue
				}
				d2 := s.DistSq(lo+i, q, w)
				evals[si]++
				h.offer(d2, lo+i)
				if hb := h.pruneBound2(); hb < bound2 {
					bound2 = hb
				}
			}
		}
	}
	if len(shards) == 1 {
		runShard(0)
	} else {
		var wg sync.WaitGroup
		for si := range shards {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				runShard(si)
			}(si)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}

	// Merge shard heaps and emit the global (dist, id)-ordered top-k.
	type scored struct {
		row   int
		dist2 float64
	}
	var all []scored
	for si, h := range heaps {
		st.ExactEvals += evals[si]
		if h == nil {
			continue
		}
		for i := range h.rows {
			all = append(all, scored{row: h.rows[i], dist2: h.dist2[i]})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].dist2 != all[j].dist2 {
			return all[i].dist2 < all[j].dist2
		}
		return s.ids[all[i].row] < s.ids[all[j].row]
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]Candidate, len(all))
	for i, sc := range all {
		out[i] = Candidate{Rec: s.recs[sc.row], Dist: math.Sqrt(sc.dist2)}
	}
	return out, st, nil
}

// SearchRadius returns every row within radius of q under the weighted
// metric (distance <= radius), ordered by (distance, id). The coarse pass
// prunes with a hair of slack so borderline rows are always re-checked by
// the exact kernel; callers applying a different boundary predicate (e.g.
// a similarity threshold) should pass a radius with their own margin and
// re-filter. A negative radius returns nothing; +Inf returns every row.
func (s *Store) SearchRadius(ctx context.Context, q, w []float64, radius float64, workers int) ([]Candidate, Stats, error) {
	var st Stats
	if err := s.checkQuery(q, w); err != nil {
		return nil, st, err
	}
	if len(s.ids) == 0 || radius < 0 || math.IsNaN(radius) {
		return nil, st, nil
	}
	st.Rows = len(s.ids)
	bound2 := radius * radius
	lut := s.buildLUT(q, w)
	shards := scanShards(workers, len(s.ids))
	parts := make([][]Candidate, len(shards))
	evals := make([]int, len(shards))
	errs := make([]error, len(shards))
	runShard := func(si int) {
		sh := shards[si]
		var acc [blockRows]float64
		for lo := sh.Lo; lo < sh.Hi; lo += blockRows {
			if err := ctx.Err(); err != nil {
				errs[si] = err
				return
			}
			hi := lo + blockRows
			if hi > sh.Hi {
				hi = sh.Hi
			}
			blk := acc[:hi-lo]
			for d := 0; d < s.dim; d++ {
				lrow := lut[d*qCells : (d+1)*qCells]
				qc := s.qcols[d][lo:hi]
				if d == 0 {
					for i, c := range qc {
						blk[i] = lrow[c]
					}
					continue
				}
				for i, c := range qc {
					blk[i] += lrow[c]
				}
			}
			for i, lb2 := range blk {
				if lb2 > bound2 {
					continue
				}
				evals[si]++
				d2 := s.DistSq(lo+i, q, w)
				if d := math.Sqrt(d2); d <= radius {
					parts[si] = append(parts[si], Candidate{Rec: s.recs[lo+i], Dist: d})
				}
			}
		}
	}
	if len(shards) == 1 {
		runShard(0)
	} else {
		var wg sync.WaitGroup
		for si := range shards {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				runShard(si)
			}(si)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}
	var out []Candidate
	for si := range parts {
		st.ExactEvals += evals[si]
		out = append(out, parts[si]...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Rec.ID < out[j].Rec.ID
	})
	return out, st, nil
}

// scanShards splits n rows across workers, collapsing to a single inline
// shard when parallelism cannot pay for itself.
func scanShards(workers, n int) []workpool.Shard {
	if n <= blockRows {
		return []workpool.Shard{{Lo: 0, Hi: n}}
	}
	return workpool.Shards(workers, n)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Manager publishes per-kind stores kept in sync with a DB. Queries call
// Store, which refreshes lazily when the DB's version moved; Watch keeps
// the refresh off the query path by rebuilding as commits land.
type Manager struct {
	db    *shapedb.DB
	mu    sync.Mutex
	slots map[features.Kind]*slot
}

type slot struct {
	mu  sync.Mutex // serializes rebuilds of one kind
	cur atomic.Pointer[Store]
}

// NewManager returns a Manager over db with no stores built yet.
func NewManager(db *shapedb.DB) *Manager {
	return &Manager{db: db, slots: make(map[features.Kind]*slot)}
}

// ErrNoDB is returned by Store when the manager has no backing database.
var ErrNoDB = errors.New("colstore: manager has no database")

func (m *Manager) slot(kind features.Kind) *slot {
	m.mu.Lock()
	defer m.mu.Unlock()
	sl, ok := m.slots[kind]
	if !ok {
		sl = &slot{}
		m.slots[kind] = sl
	}
	return sl
}

// Store returns a store for kind whose snapshot is no older than the DB
// version observed on entry, building or refreshing it if needed. The
// returned store is immutable and safe for concurrent searches.
func (m *Manager) Store(kind features.Kind) (*Store, error) {
	if m == nil || m.db == nil {
		return nil, ErrNoDB
	}
	if !kind.Valid() {
		return nil, fmt.Errorf("colstore: invalid feature kind %d", int(kind))
	}
	sl := m.slot(kind)
	if s := sl.cur.Load(); s != nil && s.version == m.db.Version() {
		return s, nil
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	recs, ver := m.db.SnapshotVersion()
	if s := sl.cur.Load(); s != nil && s.version == ver {
		return s, nil
	}
	s, err := build(kind, m.db.Options().Dim(kind), recs, ver, sl.cur.Load())
	if err != nil {
		return nil, err
	}
	sl.cur.Store(s)
	return s, nil
}

// Cached returns the current store for kind without refreshing, or nil.
func (m *Manager) Cached(kind features.Kind) *Store {
	if m == nil || m.db == nil {
		return nil
	}
	return m.slot(kind).cur.Load()
}

// Watch rebuilds stale stores as DB commits land, until ctx is done. Only
// kinds that have been requested at least once (via Store or a prior Watch
// refresh of them) are maintained. Safe to run concurrently with queries;
// query-time staleness checks in Store remain the correctness path, Watch
// just moves the rebuild cost off it.
func (m *Manager) Watch(ctx context.Context) {
	if m == nil || m.db == nil {
		return
	}
	for {
		// Grab the notification channel before reading versions so a
		// commit between the check and the wait still wakes us.
		ch := m.db.CommitNotify()
		m.refreshStale()
		select {
		case <-ctx.Done():
			return
		case <-ch:
		}
	}
}

func (m *Manager) refreshStale() {
	m.mu.Lock()
	kinds := make([]features.Kind, 0, len(m.slots))
	for k := range m.slots {
		kinds = append(kinds, k)
	}
	m.mu.Unlock()
	for _, k := range kinds {
		// Store re-checks staleness under the slot lock.
		_, _ = m.Store(k)
	}
}
