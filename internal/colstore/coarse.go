package colstore

import (
	"context"
	"math"
	"sort"
	"sync"
)

// Coarse search: the quantized filter stage of the two-stage scan served
// as the answer, with the exact re-rank skipped entirely. Each row is
// scored by its LUT lower bound, so a coarse distance never exceeds the
// true weighted distance and the ranking is approximate. This is the
// brownout tier: under overload a coarse answer costs one byte load and
// one table add per dimension per row — no float column traffic, no exact
// kernel — and callers must mark responses produced this way as degraded.

// SearchCoarseTopK returns the k rows with the smallest quantized
// lower-bound distances to q, ordered by (coarse distance, id). The
// result set and distances are approximate: each Dist is the sqrt of the
// row's lower bound, <= the true weighted distance.
func (s *Store) SearchCoarseTopK(ctx context.Context, q, w []float64, k, workers int) ([]Candidate, Stats, error) {
	var st Stats
	if err := s.checkQuery(q, w); err != nil {
		return nil, st, err
	}
	if k <= 0 || len(s.ids) == 0 {
		return nil, st, nil
	}
	if k > len(s.ids) {
		k = len(s.ids)
	}
	st.Rows = len(s.ids)

	lut := s.buildLUT(q, w)
	shards := scanShards(workers, len(s.ids))
	heaps := make([]*topkHeap, len(shards))
	errs := make([]error, len(shards))
	runShard := func(si int) {
		sh := shards[si]
		h := &topkHeap{s: s, k: k}
		heaps[si] = h
		var acc [blockRows]float64
		for lo := sh.Lo; lo < sh.Hi; lo += blockRows {
			if err := ctx.Err(); err != nil {
				errs[si] = err
				return
			}
			hi := lo + blockRows
			if hi > sh.Hi {
				hi = sh.Hi
			}
			blk := acc[:hi-lo]
			accumulateLUT(blk, lut, s.qcols, lo, hi)
			bound2 := h.pruneBound2()
			for i, lb2 := range blk {
				if lb2 > bound2 {
					continue
				}
				h.offer(lb2, lo+i)
				if hb := h.pruneBound2(); hb < bound2 {
					bound2 = hb
				}
			}
		}
	}
	if len(shards) == 1 {
		runShard(0)
	} else {
		var wg sync.WaitGroup
		for si := range shards {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				runShard(si)
			}(si)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}

	type scored struct {
		row int
		lb2 float64
	}
	var all []scored
	for _, h := range heaps {
		if h == nil {
			continue
		}
		for i := range h.rows {
			all = append(all, scored{row: h.rows[i], lb2: h.dist2[i]})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].lb2 != all[j].lb2 {
			return all[i].lb2 < all[j].lb2
		}
		return s.ids[all[i].row] < s.ids[all[j].row]
	})
	if len(all) > k {
		all = all[:k]
	}
	out := make([]Candidate, len(all))
	for i, sc := range all {
		out[i] = Candidate{Rec: s.recs[sc.row], Dist: math.Sqrt(sc.lb2)}
	}
	return out, st, nil
}

// SearchCoarseRadius returns every row whose quantized lower bound is
// within radius of q, ordered by (coarse distance, id). Because the bound
// is a lower bound, the set is a superset of the true radius result —
// rows are missed never, over-included sometimes, and distances read low.
func (s *Store) SearchCoarseRadius(ctx context.Context, q, w []float64, radius float64, workers int) ([]Candidate, Stats, error) {
	var st Stats
	if err := s.checkQuery(q, w); err != nil {
		return nil, st, err
	}
	if len(s.ids) == 0 || radius < 0 || math.IsNaN(radius) {
		return nil, st, nil
	}
	st.Rows = len(s.ids)
	bound2 := radius * radius
	lut := s.buildLUT(q, w)
	shards := scanShards(workers, len(s.ids))
	parts := make([][]Candidate, len(shards))
	errs := make([]error, len(shards))
	runShard := func(si int) {
		sh := shards[si]
		var acc [blockRows]float64
		for lo := sh.Lo; lo < sh.Hi; lo += blockRows {
			if err := ctx.Err(); err != nil {
				errs[si] = err
				return
			}
			hi := lo + blockRows
			if hi > sh.Hi {
				hi = sh.Hi
			}
			blk := acc[:hi-lo]
			accumulateLUT(blk, lut, s.qcols, lo, hi)
			for i, lb2 := range blk {
				if lb2 > bound2 {
					continue
				}
				parts[si] = append(parts[si], Candidate{Rec: s.recs[lo+i], Dist: math.Sqrt(lb2)})
			}
		}
	}
	if len(shards) == 1 {
		runShard(0)
	} else {
		var wg sync.WaitGroup
		for si := range shards {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				runShard(si)
			}(si)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}
	var out []Candidate
	for si := range parts {
		out = append(out, parts[si]...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].Rec.ID < out[j].Rec.ID
	})
	return out, st, nil
}

// accumulateLUT sums the per-dimension LUT lower bounds for rows [lo, hi)
// into blk — the shared inner loop of the coarse filter and coarse-only
// search.
func accumulateLUT(blk, lut []float64, qcols [][]uint8, lo, hi int) {
	for d := 0; d < len(qcols); d++ {
		lrow := lut[d*qCells : (d+1)*qCells]
		qc := qcols[d][lo:hi]
		if d == 0 {
			for i, c := range qc {
				blk[i] = lrow[c]
			}
			continue
		}
		for i, c := range qc {
			blk[i] += lrow[c]
		}
	}
}
