package colstore

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/shapedb"
)

const testKind = features.PrincipalMoments

func openDB(t *testing.T, dir string) *shapedb.DB {
	t.Helper()
	db, err := shapedb.Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func insertVec(t *testing.T, db *shapedb.DB, v features.Vector) int64 {
	t.Helper()
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	id, err := db.Insert("v", 0, mesh, features.Set{testKind: v})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func randVec(rng *rand.Rand, dim int, spread float64) features.Vector {
	v := make(features.Vector, dim)
	for d := range v {
		v[d] = (rng.Float64() - 0.5) * spread
	}
	return v
}

// TestCoarseBoundNeverExceedsTrueDistance is the safety property the whole
// two-stage design rests on: for every row, query, and weighting — across
// spread-out, clustered, constant-dimension, and out-of-grid appended
// data — the quantized lower bound must not exceed the exact squared
// distance, or a true top-k member could be pruned.
func TestCoarseBoundNeverExceedsTrueDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := openDB(t, "")
	dim := db.Options().Dim(testKind)
	spreads := []float64{1e-9, 1, 1000, 1e9}
	for i := 0; i < 400; i++ {
		v := randVec(rng, dim, spreads[i%len(spreads)])
		if i%17 == 0 {
			v[rng.Intn(dim)] = 42 // recurring exact value → near-constant dim
		}
		insertVec(t, db, v)
	}
	mgr := NewManager(db)
	st, err := mgr.Store(testKind)
	if err != nil {
		t.Fatal(err)
	}
	// Appends quantize into the existing grid; out-of-range values land in
	// the half-infinite edge cells and must stay safe.
	for i := 0; i < 50; i++ {
		insertVec(t, db, randVec(rng, dim, 1e12))
	}
	if st, err = mgr.Store(testKind); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		q := randVec(rng, dim, spreads[trial%len(spreads)]*2)
		w := make([]float64, dim)
		for d := range w {
			w[d] = rng.Float64() * 5
		}
		if trial%3 == 0 {
			w = nil
		}
		for row := 0; row < st.Len(); row++ {
			lb2 := st.CoarseLowerBound2(row, q, w)
			d2 := st.DistSq(row, q, w)
			if lb2 > d2 {
				t.Fatalf("trial %d row %d: lower bound %g exceeds true dist² %g", trial, row, lb2, d2)
			}
		}
	}
}

// bruteTopK ranks every row exactly with the store's own kernel.
func bruteTopK(st *Store, q, w []float64, k int) []Candidate {
	type rowDist struct {
		row int
		d2  float64
	}
	all := make([]rowDist, st.Len())
	for i := range all {
		all[i] = rowDist{i, st.DistSq(i, q, w)}
	}
	for i := 1; i < len(all); i++ { // insertion sort keeps the test dependency-free
		for j := i; j > 0 && (all[j].d2 < all[j-1].d2 ||
			(all[j].d2 == all[j-1].d2 && st.ids[all[j].row] < st.ids[all[j-1].row])); j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if len(all) > k {
		all = all[:k]
	}
	out := make([]Candidate, len(all))
	for i, rd := range all {
		out[i] = Candidate{Rec: st.recs[rd.row], Dist: math.Sqrt(rd.d2)}
	}
	return out
}

func TestSearchTopKMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	db := openDB(t, "")
	dim := db.Options().Dim(testKind)
	for i := 0; i < 500; i++ {
		v := make(features.Vector, dim)
		for d := range v {
			v[d] = float64(rng.Intn(6)) // coarse grid → constant ties
		}
		insertVec(t, db, v)
	}
	st, err := NewManager(db).Store(testKind)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := randVec(rng, dim, 12)
		w := make([]float64, dim)
		for d := range w {
			w[d] = rng.Float64() * 3
		}
		k := 1 + rng.Intn(30)
		for _, workers := range []int{1, 4} {
			got, stats, err := st.SearchTopK(context.Background(), q, w, k, workers)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteTopK(st, q, w, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i].Rec.ID != want[i].Rec.ID || got[i].Dist != want[i].Dist {
					t.Fatalf("trial %d workers=%d: result %d = (%d, %v), want (%d, %v)",
						trial, workers, i, got[i].Rec.ID, got[i].Dist, want[i].Rec.ID, want[i].Dist)
				}
			}
			if stats.ExactEvals > stats.Rows {
				t.Fatalf("trial %d: %d exact evals over %d rows", trial, stats.ExactEvals, stats.Rows)
			}
		}
	}
}

func TestSearchRadiusMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := openDB(t, "")
	dim := db.Options().Dim(testKind)
	for i := 0; i < 300; i++ {
		insertVec(t, db, randVec(rng, dim, 10))
	}
	st, err := NewManager(db).Store(testKind)
	if err != nil {
		t.Fatal(err)
	}
	q := randVec(rng, dim, 10)
	w := []float64{2, 0.5, 1}[:dim]
	for _, radius := range []float64{0, 0.5, 3, 20, math.Inf(1)} {
		got, _, err := st.SearchRadius(context.Background(), q, w, radius, 2)
		if err != nil {
			t.Fatal(err)
		}
		var want []Candidate
		for _, c := range bruteTopK(st, q, w, st.Len()) {
			if c.Dist <= radius {
				want = append(want, c)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("radius %g: %d results, want %d", radius, len(got), len(want))
		}
		for i := range got {
			if got[i].Rec.ID != want[i].Rec.ID || got[i].Dist != want[i].Dist {
				t.Fatalf("radius %g: result %d mismatch", radius, i)
			}
		}
	}
}

// TestAppendFastPathSharesTree pins the incremental maintenance contract:
// a small append publishes a new store that reuses the previous grid and
// seeding tree (which then covers a prefix), while a large append or a
// delete forces a full rebuild.
func TestAppendFastPathSharesTree(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	db := openDB(t, "")
	dim := db.Options().Dim(testKind)
	for i := 0; i < 100; i++ {
		insertVec(t, db, randVec(rng, dim, 5))
	}
	mgr := NewManager(db)
	s1, err := mgr.Store(testKind)
	if err != nil {
		t.Fatal(err)
	}
	var lastID int64
	for i := 0; i < 20; i++ {
		lastID = insertVec(t, db, randVec(rng, dim, 5))
	}
	s2, err := mgr.Store(testKind)
	if err != nil {
		t.Fatal(err)
	}
	if s2 == s1 {
		t.Fatal("store not republished after insert")
	}
	if s2.tree != s1.tree || s2.treeRows != s1.Len() {
		t.Errorf("small append rebuilt the tree (treeRows %d, prev len %d)", s2.treeRows, s1.Len())
	}
	if s2.Len() != 120 {
		t.Errorf("appended store has %d rows, want 120", s2.Len())
	}
	if _, err := db.Delete(lastID); err != nil {
		t.Fatal(err)
	}
	s3, err := mgr.Store(testKind)
	if err != nil {
		t.Fatal(err)
	}
	if s3.tree == s2.tree {
		t.Error("delete did not force a full rebuild")
	}
	if s3.treeRows != s3.Len() || s3.Len() != 119 {
		t.Errorf("rebuilt store: treeRows %d, len %d, want both 119", s3.treeRows, s3.Len())
	}
	if got := db.Version(); s3.Version() != got {
		t.Errorf("store version %d, db version %d", s3.Version(), got)
	}
}

// trippingCtx turns cancelled after its first Err call, so cancellation
// lands inside the block scan.
type trippingCtx struct {
	context.Context
	calls atomic.Int32
}

func (c *trippingCtx) Err() error {
	if c.calls.Add(1) > 1 {
		return context.Canceled
	}
	return nil
}

func TestSearchHonorsCancellationBetweenBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	db := openDB(t, "")
	dim := db.Options().Dim(testKind)
	for i := 0; i < 3*blockRows; i++ {
		insertVec(t, db, randVec(rng, dim, 5))
	}
	st, err := NewManager(db).Store(testKind)
	if err != nil {
		t.Fatal(err)
	}
	q := randVec(rng, dim, 5)
	if _, _, err := st.SearchTopK(&trippingCtx{Context: context.Background()}, q, nil, 5, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchTopK mid-scan cancel: err = %v", err)
	}
	if _, _, err := st.SearchRadius(&trippingCtx{Context: context.Background()}, q, nil, 1, 1); !errors.Is(err, context.Canceled) {
		t.Errorf("SearchRadius mid-scan cancel: err = %v", err)
	}
}

// TestManagerStaysCoherentUnderMutation drives a durable DB through
// inserts, deletes, quarantines, compaction, and a replica reset while a
// Watch loop and concurrent readers run — the -race gate for the
// CommitNotify-driven maintenance path. At the end the store must agree
// exactly with the database.
func TestManagerStaysCoherentUnderMutation(t *testing.T) {
	db := openDB(t, t.TempDir())
	dim := db.Options().Dim(testKind)
	rng := rand.New(rand.NewSource(26))
	var ids []int64
	for i := 0; i < 300; i++ {
		ids = append(ids, insertVec(t, db, randVec(rng, dim, 10)))
	}
	mgr := NewManager(db)
	if _, err := mgr.Store(testKind); err != nil { // register the kind for Watch
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mgr.Watch(ctx)
	}()
	// Concurrent readers: every published store must be internally
	// consistent regardless of what the mutator is doing.
	readErr := make(chan error, 1)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for ctx.Err() == nil {
				st, err := mgr.Store(testKind)
				if err != nil {
					select {
					case readErr <- err:
					default:
					}
					return
				}
				q := randVec(rng, dim, 10)
				res, _, err := st.SearchTopK(context.Background(), q, nil, 5, 2)
				if err != nil {
					select {
					case readErr <- err:
					default:
					}
					return
				}
				for i := 1; i < len(res); i++ {
					if res[i].Dist < res[i-1].Dist {
						select {
						case readErr <- errors.New("unsorted results"):
						default:
						}
						return
					}
				}
			}
		}(int64(100 + r))
	}

	// Mutator: the sequence exercises append, rebuild, quarantine (a
	// delete under the hood), compaction, and replica reset.
	for i := 0; i < 60; i++ {
		ids = append(ids, insertVec(t, db, randVec(rng, dim, 10)))
	}
	for i := 0; i < 40; i++ {
		if _, err := db.Delete(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	db.Quarantine(ids[0], shapedb.ScrubBitRot, "test")
	db.Quarantine(ids[1], shapedb.ScrubBitRot, "test")
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		insertVec(t, db, randVec(rng, dim, 10))
	}
	if err := db.ResetReplica(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		insertVec(t, db, randVec(rng, dim, 10))
	}

	// Give Watch a moment to chase the tail, then verify convergence via
	// the query path (which must refresh regardless of Watch timing).
	time.Sleep(20 * time.Millisecond)
	cancel()
	wg.Wait()
	select {
	case err := <-readErr:
		t.Fatalf("concurrent reader: %v", err)
	default:
	}

	st, err := mgr.Store(testKind)
	if err != nil {
		t.Fatal(err)
	}
	recs, ver := db.SnapshotVersion()
	var want []int64
	for _, rec := range recs {
		if _, ok := rec.Features[testKind]; ok {
			want = append(want, rec.ID)
		}
	}
	got := st.IDs()
	if len(got) != len(want) {
		t.Fatalf("store has %d rows, db has %d matching records", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: store id %d, db id %d", i, got[i], want[i])
		}
	}
	if st.Version() != ver {
		t.Errorf("store version %d, db version %d", st.Version(), ver)
	}
}
