package eval

import (
	"math"
	"sync"
	"testing"

	"threedess/internal/features"
)

// A second shared corpus carrying the extension descriptors too.
var (
	extOnce   sync.Once
	extCorpus *Corpus
	extErr    error
)

func sharedExtCorpus(t *testing.T) *Corpus {
	t.Helper()
	extOnce.Do(func() {
		extCorpus, extErr = BuildCorpus(42, features.Options{}, features.AllKinds)
	})
	if extErr != nil {
		t.Fatal(extErr)
	}
	return extCorpus
}

func TestCompareClusterings(t *testing.T) {
	c := sharedCorpus(t)
	rows, err := c.CompareClusterings(features.PrincipalMoments, 26, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Algorithm] = true
		if r.Purity <= 0 || r.Purity > 1 {
			t.Errorf("%s purity = %v", r.Algorithm, r.Purity)
		}
		if r.SSE < 0 {
			t.Errorf("%s SSE = %v", r.Algorithm, r.SSE)
		}
		if r.K < 2 {
			t.Errorf("%s K = %d", r.Algorithm, r.K)
		}
		// Clustering on a descriptor that groups families must beat the
		// trivial purity of one-cluster-per-everything.
		if r.Purity < 0.3 {
			t.Errorf("%s purity %v suspiciously low", r.Algorithm, r.Purity)
		}
	}
	for _, want := range []string{"kmeans", "som", "ga"} {
		if !names[want] {
			t.Errorf("algorithm %s missing", want)
		}
	}
	if _, err := c.CompareClusterings(features.ShapeDistribution, 5, 1); err == nil {
		t.Error("missing feature accepted")
	}
}

func TestExtendedStrategiesRun(t *testing.T) {
	c := sharedExtCorpus(t)
	rows, err := c.AverageEffectiveness(append(PaperStrategies(), ExtendedStrategies()...))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	var d2, eig float64
	for _, r := range rows {
		if r.AvgRecallGroupSize < 0 || r.AvgRecallGroupSize > 1 {
			t.Errorf("%s out of range", r.Strategy.Name)
		}
		switch r.Strategy.Name {
		case "shape-distribution D2 (ext)":
			d2 = r.AvgRecallGroupSize
		case "eigenvalues (one-shot)":
			eig = r.AvgRecallGroupSize
		}
	}
	// The D2 histogram is a dense geometric descriptor; it should at
	// least beat the degenerate skeletal-graph eigenvalues.
	if d2 <= eig {
		t.Errorf("D2 (%v) should beat eigenvalues (%v)", d2, eig)
	}
}

func TestMultiStepKeepAblation(t *testing.T) {
	c := sharedCorpus(t)
	rows, err := c.MultiStepKeepAblation([]int{10, 15, 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AvgRecallGroupSize <= 0 || r.AvgRecallAt10 <= 0 {
			t.Errorf("%s: zero metrics", r.Label)
		}
	}
	// The ablation's point: a moderate cut beats no cut at the
	// group-size policy (keep=25 barely filters, so topology re-ranking
	// has more impostors to mis-rank).
	if rows[1].AvgRecallGroupSize < rows[2].AvgRecallGroupSize {
		t.Logf("note: keep-15 (%v) vs keep-25 (%v)", rows[1].AvgRecallGroupSize, rows[2].AvgRecallGroupSize)
	}
}

func TestAveragePrecision(t *testing.T) {
	rel := map[int64]bool{1: true, 2: true}
	// Relevant at ranks 1 and 3: AP = (1/1 + 2/3)/2.
	got := AveragePrecision([]int64{1, 9, 2, 8}, rel)
	want := (1.0 + 2.0/3) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("AP = %v, want %v", got, want)
	}
	if AveragePrecision([]int64{1, 2}, nil) != 0 {
		t.Error("empty relevant AP != 0")
	}
	if AveragePrecision(nil, rel) != 0 {
		t.Error("empty ranking AP != 0")
	}
	if AveragePrecision([]int64{1, 2}, rel) != 1 {
		t.Error("perfect ranking AP != 1")
	}
}

func TestMeanAveragePrecisionOrdering(t *testing.T) {
	c := sharedCorpus(t)
	pm, err := c.MeanAveragePrecision(Strategy{Name: "pm", Kind: features.PrincipalMoments})
	if err != nil {
		t.Fatal(err)
	}
	eig, err := c.MeanAveragePrecision(Strategy{Name: "eig", Kind: features.Eigenvalues})
	if err != nil {
		t.Fatal(err)
	}
	if pm <= 0 || pm > 1 || eig < 0 || eig > 1 {
		t.Fatalf("MAP out of range: pm %v, eig %v", pm, eig)
	}
	// MAP must agree with the paper's quality ordering at the extremes.
	if pm <= eig {
		t.Errorf("MAP(principal moments)=%v should beat MAP(eigenvalues)=%v", pm, eig)
	}
}
