package eval

import (
	"context"
	"fmt"

	"threedess/internal/core"
	"threedess/internal/features"
)

// Strategy is one retrieval strategy of the Figure 15/16 comparison:
// either a one-shot search with a single feature vector or the multi-step
// refinement sequence.
type Strategy struct {
	Name  string
	Kind  features.Kind // one-shot feature (when Steps is empty)
	Steps []core.Step   // multi-step sequence (overrides Kind when set)
}

// IsMultiStep reports whether the strategy is a multi-step sequence.
func (s Strategy) IsMultiStep() bool { return len(s.Steps) > 0 }

// PaperStrategies returns the five strategies of Figures 15–16: the four
// one-shot feature vectors in the paper's order, and the multi-step
// strategy. The multi-step configuration narrows the candidate set with
// principal moments and re-ranks the survivors by the skeletal-graph
// eigenvalues — the two most complementary descriptors on this corpus
// (mass distribution + topology), exercising exactly the synergy the
// paper's conclusion calls for ("other information is required to improve
// the selectiveness of the eigenvalues"). The paper's own Figure 13/14
// example sequence (moment invariants → geometric parameters) is provided
// by MultiStepMIGP.
func PaperStrategies() []Strategy {
	return []Strategy{
		{Name: "moment-invariants (one-shot)", Kind: features.MomentInvariants},
		{Name: "geometric-params (one-shot)", Kind: features.GeometricParams},
		{Name: "principal-moments (one-shot)", Kind: features.PrincipalMoments},
		{Name: "eigenvalues (one-shot)", Kind: features.Eigenvalues},
		{Name: "multi-step (PM → eigenvalues)", Steps: MultiStepPMEig()},
	}
}

// MultiStepPMEig is the Figure-15 multi-step configuration: retrieve by
// principal moments, keep the best 15, re-rank by eigenvalues.
func MultiStepPMEig() []core.Step {
	return []core.Step{
		{Feature: features.PrincipalMoments, Keep: 15},
		{Feature: features.Eigenvalues},
	}
}

// MultiStepMIGP is the paper's §4.2 example sequence (Figures 13–14):
// retrieve by moment invariants, re-rank by geometric parameters.
func MultiStepMIGP() []core.Step {
	return []core.Step{
		{Feature: features.MomentInvariants},
		{Feature: features.GeometricParams},
	}
}

// Retrieve runs the strategy for queryID, returning exactly k results with
// the query shape excluded. Multi-step uses the paper's candidate size of
// 30 (plus one to absorb the query shape itself).
func (c *Corpus) Retrieve(queryID int64, s Strategy, k int) ([]core.Result, error) {
	query, err := c.Engine.QueryFeatures(queryID)
	if err != nil {
		return nil, err
	}
	var res []core.Result
	if s.IsMultiStep() {
		res, err = c.Engine.SearchMultiStep(context.Background(), query, core.MultiStepOptions{
			Steps:         s.Steps,
			CandidateSize: 31,
			K:             k + 1,
		})
	} else {
		res, err = c.Engine.SearchTopK(context.Background(), query, core.Options{Feature: s.Kind, K: k + 1})
	}
	if err != nil {
		return nil, fmt.Errorf("eval: strategy %q: %w", s.Name, err)
	}
	res = core.ExcludeID(res, queryID)
	if len(res) > k {
		res = res[:k]
	}
	return res, nil
}

// EffectivenessRow aggregates one strategy's average precision and recall
// over the 26 group queries, under both retrieval policies of §4.2:
// retrieve as many shapes as the group size (where precision = recall),
// and retrieve a fixed 10 shapes.
type EffectivenessRow struct {
	Strategy Strategy
	// AvgRecallGroupSize is the |R| = |A| policy (Figure 15, first
	// series; precision equals recall here).
	AvgRecallGroupSize float64
	// AvgRecallAt10 and AvgPrecisionAt10 are the |R| = 10 policy
	// (Figure 15 second series and Figure 16).
	AvgRecallAt10    float64
	AvgPrecisionAt10 float64
}

// AverageEffectiveness runs every strategy over the 26 group queries —
// the Figure 15/16 experiment.
func (c *Corpus) AverageEffectiveness(strategies []Strategy) ([]EffectivenessRow, error) {
	if strategies == nil {
		strategies = PaperStrategies()
	}
	queries := c.GroupQueryIDs()
	if len(queries) == 0 {
		return nil, fmt.Errorf("eval: corpus has no group queries")
	}
	rows := make([]EffectivenessRow, 0, len(strategies))
	for _, s := range strategies {
		var sumGS, sumR10, sumP10 float64
		for _, qid := range queries {
			relevant := c.RelevantSet(qid)
			// Policy 1: |R| = |A|.
			kGS := len(relevant)
			if kGS > 0 {
				res, err := c.Retrieve(qid, s, kGS)
				if err != nil {
					return nil, err
				}
				_, r := PrecisionRecall(resultIDs(res), relevant)
				sumGS += r
			}
			// Policy 2: |R| = 10.
			res, err := c.Retrieve(qid, s, 10)
			if err != nil {
				return nil, err
			}
			p, r := PrecisionRecall(resultIDs(res), relevant)
			sumP10 += p
			sumR10 += r
		}
		n := float64(len(queries))
		rows = append(rows, EffectivenessRow{
			Strategy:           s,
			AvgRecallGroupSize: sumGS / n,
			AvgRecallAt10:      sumR10 / n,
			AvgPrecisionAt10:   sumP10 / n,
		})
	}
	return rows, nil
}

// MultiStepExample reproduces the Figure 13/14 comparison for one query:
// the one-shot baseline (principal moments in the paper) versus the
// multi-step strategy, both retrieving 30 candidates and presenting 10.
type MultiStepExample struct {
	QueryID                         int64
	OneShotPrecision, OneShotRecall float64
	MultiPrecision, MultiRecall     float64
	OneShot, Multi                  []core.Result
}

// RunMultiStepExample executes the comparison.
func (c *Corpus) RunMultiStepExample(queryID int64, oneShot features.Kind, steps []core.Step) (*MultiStepExample, error) {
	relevant := c.RelevantSet(queryID)
	one, err := c.Retrieve(queryID, Strategy{Name: "one-shot", Kind: oneShot}, 10)
	if err != nil {
		return nil, err
	}
	multi, err := c.Retrieve(queryID, Strategy{Name: "multi-step", Steps: steps}, 10)
	if err != nil {
		return nil, err
	}
	ex := &MultiStepExample{QueryID: queryID, OneShot: one, Multi: multi}
	ex.OneShotPrecision, ex.OneShotRecall = PrecisionRecall(resultIDs(one), relevant)
	ex.MultiPrecision, ex.MultiRecall = PrecisionRecall(resultIDs(multi), relevant)
	return ex, nil
}
