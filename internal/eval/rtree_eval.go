package eval

import (
	"fmt"
	"math/rand"

	"threedess/internal/features"
	"threedess/internal/rtree"
)

// RTreeEfficiencyRow measures one index-efficiency data point of the §2.3
// experiment: how many R-tree nodes a k-NN query visits versus the total
// node count (an optimal search touches about one root-to-leaf path; a
// scan touches everything).
type RTreeEfficiencyRow struct {
	Points     int     // indexed points
	Dim        int     // dimensionality
	K          int     // neighbors requested
	Height     int     // tree height
	TotalNodes int     // approximate node count (entries / fanout, summed per level)
	AvgAccess  float64 // mean nodes visited per query
	ScanFrac   float64 // AvgAccess / TotalNodes
}

// RTreeSyntheticEfficiency builds synthetic uniform databases of the given
// sizes and measures k-NN node accesses — the "large synthetic databases"
// half of the §2.3 claim.
func RTreeSyntheticEfficiency(sizes []int, dim, k, queries int, seed int64) ([]RTreeEfficiencyRow, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]RTreeEfficiencyRow, 0, len(sizes))
	for _, n := range sizes {
		items := make([]rtree.BulkItem, n)
		for i := range items {
			p := make(rtree.Point, dim)
			for d := range p {
				p[d] = rng.Float64() * 100
			}
			items[i] = rtree.BulkItem{ID: int64(i), Point: p}
		}
		tr, err := rtree.BulkLoad(dim, rtree.DefaultMaxEntries, items)
		if err != nil {
			return nil, err
		}
		row := measureKNN(tr, dim, k, queries, rng)
		row.Points = n
		out = append(out, row)
	}
	return out, nil
}

// RTreeRealEfficiency measures k-NN node accesses against the real corpus
// index of the given feature — the "small real databases" half of §2.3.
func (c *Corpus) RTreeRealEfficiency(kind features.Kind, k, queries int, seed int64) (RTreeEfficiencyRow, error) {
	// Rebuild a standalone tree from the stored vectors so measurements
	// are isolated from engine bookkeeping.
	var items []rtree.BulkItem
	dim := 0
	for _, id := range c.DB.IDs() {
		rec, ok := c.DB.Get(id)
		if !ok {
			continue
		}
		v, ok := rec.Features[kind]
		if !ok {
			continue
		}
		dim = len(v)
		items = append(items, rtree.BulkItem{ID: id, Point: rtree.Point(v)})
	}
	if len(items) == 0 {
		return RTreeEfficiencyRow{}, fmt.Errorf("eval: no vectors for %v", kind)
	}
	tr, err := rtree.BulkLoad(dim, rtree.DefaultMaxEntries, items)
	if err != nil {
		return RTreeEfficiencyRow{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	row := measureKNN(tr, dim, k, queries, rng)
	row.Points = len(items)
	return row, nil
}

func measureKNN(tr *rtree.Tree, dim, k, queries int, rng *rand.Rand) RTreeEfficiencyRow {
	// Estimate total node count from size, fanout, and height.
	total := 0
	level := (tr.Len() + rtree.DefaultMaxEntries - 1) / rtree.DefaultMaxEntries
	for level >= 1 {
		total += level
		if level == 1 {
			break
		}
		level = (level + rtree.DefaultMaxEntries - 1) / rtree.DefaultMaxEntries
	}
	tr.ResetStats()
	for q := 0; q < queries; q++ {
		p := make(rtree.Point, dim)
		for d := range p {
			p[d] = rng.Float64() * 100
		}
		tr.NearestNeighbors(k, p)
	}
	avg := float64(tr.NodeAccesses()) / float64(queries)
	frac := 1.0
	if total > 0 {
		frac = avg / float64(total)
		if frac > 1 {
			frac = 1
		}
	}
	return RTreeEfficiencyRow{
		Dim:        dim,
		K:          k,
		Height:     tr.Height(),
		TotalNodes: total,
		AvgAccess:  avg,
		ScanFrac:   frac,
	}
}
