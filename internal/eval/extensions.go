package eval

import (
	"fmt"
	"math/rand"

	"threedess/internal/cluster"
	"threedess/internal/core"
	"threedess/internal/features"
)

// The experiments in this file go beyond the paper's figures: they
// evaluate the pieces the paper implements but does not measure (the three
// clustering algorithms of §2.2) and the extension descriptors
// (higher-order invariants from the architecture diagram and the D2 shape
// distribution from related work), plus ablations of the reproduction's
// own design choices.

// ClusteringRow reports one clustering algorithm's quality on the corpus.
type ClusteringRow struct {
	Algorithm  string
	K          int
	Purity     float64 // vs ground-truth groups (noise = its own label)
	Silhouette float64
	SSE        float64
}

// CompareClusterings runs k-means, SOM, and GA over the corpus's vectors
// of the given kind with k clusters and scores each against the
// ground-truth classification — quantifying the §2.2 claim that the
// system organizes the database with these three algorithms.
func (c *Corpus) CompareClusterings(kind features.Kind, k int, seed int64) ([]ClusteringRow, error) {
	var points [][]float64
	var labels []int
	for i, id := range c.IDByIndex {
		rec, ok := c.DB.Get(id)
		if !ok {
			continue
		}
		v, ok := rec.Features[kind]
		if !ok {
			return nil, fmt.Errorf("eval: shape %s lacks feature %v", rec.Name, kind)
		}
		points = append(points, v)
		// Noise shapes get unique labels so merging them is penalized.
		if rec.Group == 0 {
			labels = append(labels, 1000+i)
		} else {
			labels = append(labels, rec.Group)
		}
	}
	run := func(name string, fn func(*rand.Rand) (*cluster.Result, error)) (ClusteringRow, error) {
		res, err := fn(rand.New(rand.NewSource(seed)))
		if err != nil {
			return ClusteringRow{}, fmt.Errorf("eval: %s clustering: %w", name, err)
		}
		return ClusteringRow{
			Algorithm:  name,
			K:          res.K(),
			Purity:     cluster.Purity(res.Assignments, labels),
			Silhouette: cluster.Silhouette(points, res.Assignments),
			SSE:        res.SSE(points),
		}, nil
	}
	var rows []ClusteringRow
	km, err := run("kmeans", func(rng *rand.Rand) (*cluster.Result, error) {
		return cluster.KMeans(points, k, rng, 100)
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, km)
	rows1, err := run("som", func(rng *rand.Rand) (*cluster.Result, error) {
		rowsN := 1
		for rowsN*rowsN < k {
			rowsN++
		}
		return cluster.SOM(points, cluster.SOMOptions{Rows: rowsN, Cols: (k + rowsN - 1) / rowsN}, rng)
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, rows1)
	ga, err := run("ga", func(rng *rand.Rand) (*cluster.Result, error) {
		return cluster.GA(points, cluster.GAOptions{K: k}, rng)
	})
	if err != nil {
		return nil, err
	}
	rows = append(rows, ga)
	return rows, nil
}

// ExtendedStrategies returns one-shot strategies for the two extension
// descriptors, for comparing them against the paper's four.
func ExtendedStrategies() []Strategy {
	return []Strategy{
		{Name: "higher-order invariants (ext)", Kind: features.HigherOrder},
		{Name: "shape-distribution D2 (ext)", Kind: features.ShapeDistribution},
	}
}

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Label              string
	AvgRecallGroupSize float64
	AvgRecallAt10      float64
}

// MultiStepKeepAblation sweeps the Keep parameter of the recommended
// multi-step chain, quantifying how sensitive the §4.2 gain is to the
// candidate cut.
func (c *Corpus) MultiStepKeepAblation(keeps []int) ([]AblationRow, error) {
	out := make([]AblationRow, 0, len(keeps))
	for _, keep := range keeps {
		s := Strategy{
			Name: fmt.Sprintf("PM keep-%d → eigenvalues", keep),
			Steps: []core.Step{
				{Feature: features.PrincipalMoments, Keep: keep},
				{Feature: features.Eigenvalues},
			},
		}
		rows, err := c.AverageEffectiveness([]Strategy{s})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationRow{
			Label:              s.Name,
			AvgRecallGroupSize: rows[0].AvgRecallGroupSize,
			AvgRecallAt10:      rows[0].AvgRecallAt10,
		})
	}
	return out, nil
}
