package eval

import (
	"context"
	"fmt"

	"threedess/internal/core"
	"threedess/internal/features"
)

// PrecisionRecall evaluates Equations 4.1–4.2 for a retrieved list
// against a relevant set. The query shape must already be excluded from
// both (RelevantSet and the Exclude* helpers handle that). An empty
// retrieval has precision 0 by convention; an empty relevant set has
// recall 0.
func PrecisionRecall(retrieved []int64, relevant map[int64]bool) (precision, recall float64) {
	if len(retrieved) == 0 {
		return 0, 0
	}
	hits := 0
	for _, id := range retrieved {
		if relevant[id] {
			hits++
		}
	}
	precision = float64(hits) / float64(len(retrieved))
	if len(relevant) > 0 {
		recall = float64(hits) / float64(len(relevant))
	}
	return precision, recall
}

// PRPoint is one point of a precision-recall curve: the threshold it was
// measured at plus the resulting precision and recall.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
	Retrieved int
}

// DefaultThresholds returns the similarity sweep used for the Figure 8–12
// curves: 0.00, 0.05, …, 1.00.
func DefaultThresholds() []float64 {
	out := make([]float64, 0, 21)
	for i := 0; i <= 20; i++ {
		out = append(out, float64(i)/20)
	}
	return out
}

// PRCurve sweeps the similarity threshold for one query shape and feature
// vector, evaluating precision and recall at each threshold — the §4.1
// methodology behind Figures 8–12. The query shape itself is excluded.
func (c *Corpus) PRCurve(queryID int64, kind features.Kind, thresholds []float64) ([]PRPoint, error) {
	query, err := c.Engine.QueryFeatures(queryID)
	if err != nil {
		return nil, err
	}
	relevant := c.RelevantSet(queryID)
	if len(thresholds) == 0 {
		thresholds = DefaultThresholds()
	}
	out := make([]PRPoint, 0, len(thresholds))
	for _, t := range thresholds {
		res, err := c.Engine.SearchThreshold(context.Background(), query, core.Options{Feature: kind, Threshold: t})
		if err != nil {
			return nil, err
		}
		res = core.ExcludeID(res, queryID)
		ids := resultIDs(res)
		p, r := PrecisionRecall(ids, relevant)
		out = append(out, PRPoint{Threshold: t, Precision: p, Recall: r, Retrieved: len(ids)})
	}
	return out, nil
}

// PRCurves computes the Figure 8–12 family: for each of the five
// representative queries, one curve per core feature vector.
func (c *Corpus) PRCurves(thresholds []float64) (map[int64]map[features.Kind][]PRPoint, error) {
	out := map[int64]map[features.Kind][]PRPoint{}
	for _, qid := range c.RepresentativeQueryIDs() {
		byKind := map[features.Kind][]PRPoint{}
		for _, kind := range features.CoreKinds {
			curve, err := c.PRCurve(qid, kind, thresholds)
			if err != nil {
				return nil, fmt.Errorf("eval: PR curve for query %d feature %v: %w", qid, kind, err)
			}
			byKind[kind] = curve
		}
		out[qid] = byKind
	}
	return out, nil
}

// ThresholdQueryExample reproduces the Figure 7 scenario: a single
// threshold query (moment invariants at similarity 0.85 in the paper) with
// the resulting precision and recall.
func (c *Corpus) ThresholdQueryExample(queryID int64, kind features.Kind, threshold float64) (precision, recall float64, results []core.Result, err error) {
	query, err := c.Engine.QueryFeatures(queryID)
	if err != nil {
		return 0, 0, nil, err
	}
	res, err := c.Engine.SearchThreshold(context.Background(), query, core.Options{Feature: kind, Threshold: threshold})
	if err != nil {
		return 0, 0, nil, err
	}
	res = core.ExcludeID(res, queryID)
	p, r := PrecisionRecall(resultIDs(res), c.RelevantSet(queryID))
	return p, r, res, nil
}

func resultIDs(res []core.Result) []int64 {
	out := make([]int64, len(res))
	for i, r := range res {
		out[i] = r.ID
	}
	return out
}

// AveragePrecision computes the standard IR average precision of a ranked
// retrieval list against a relevant set: the mean of precision@rank over
// the ranks where a relevant shape appears, divided by |relevant| (so
// missing relevant shapes count as zero). It returns 0 for an empty
// relevant set.
func AveragePrecision(ranked []int64, relevant map[int64]bool) float64 {
	if len(relevant) == 0 {
		return 0
	}
	hits := 0
	sum := 0.0
	for rank, id := range ranked {
		if relevant[id] {
			hits++
			sum += float64(hits) / float64(rank+1)
		}
	}
	return sum / float64(len(relevant))
}

// MeanAveragePrecision evaluates a strategy's MAP over the 26 group
// queries, ranking the full database for each query (|R| = everything) —
// a rank-quality summary complementing the paper's fixed-|R| metrics.
func (c *Corpus) MeanAveragePrecision(s Strategy) (float64, error) {
	queries := c.GroupQueryIDs()
	if len(queries) == 0 {
		return 0, fmt.Errorf("eval: corpus has no group queries")
	}
	total := 0.0
	n := c.DB.Len()
	for _, qid := range queries {
		res, err := c.Retrieve(qid, s, n)
		if err != nil {
			return 0, err
		}
		total += AveragePrecision(resultIDs(res), c.RelevantSet(qid))
	}
	return total / float64(len(queries)), nil
}
