// Package eval implements the paper's evaluation methodology (§4):
// precision/recall over the manually-classified 113-shape corpus,
// threshold-swept precision-recall curves for representative queries
// (Figures 8–12), the one-shot vs multi-step comparison (Figures 13–16),
// and the R-tree efficiency measurements of §2.3.
package eval

import (
	"fmt"

	"threedess/internal/core"
	"threedess/internal/dataset"
	"threedess/internal/features"
	"threedess/internal/shapedb"
	"threedess/internal/workpool"
)

// Corpus is the evaluation database: the generated 113-shape corpus with
// all descriptors extracted and indexed, plus the ground-truth
// classification map.
type Corpus struct {
	DB     *shapedb.DB
	Engine *core.Engine
	// IDByIndex maps corpus indices (dataset.Generate order) to DB ids.
	IDByIndex []int64
	// Shapes holds the generated metadata (meshes included).
	Shapes []dataset.Shape
}

// BuildCorpus generates the corpus with the given seed, extracts the
// requested feature kinds for every shape in parallel, and loads an
// in-memory database. kinds nil means the four core descriptors.
func BuildCorpus(seed int64, opts features.Options, kinds []features.Kind) (*Corpus, error) {
	if kinds == nil {
		kinds = features.CoreKinds
	}
	shapes, err := dataset.Generate(seed)
	if err != nil {
		return nil, err
	}
	ext := features.NewExtractor(opts)

	// Extraction fans out on the shared worker pool (Options.Workers, ≤ 0
	// = one worker per logical CPU) — the same pool bulk ingest uses.
	sets := make([]features.Set, len(shapes))
	errs := make([]error, len(shapes))
	workpool.ForEachN(ext.Options().Workers, len(shapes), func(i int) {
		sets[i], errs[i] = ext.Extract(shapes[i].Mesh, kinds)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("eval: extracting %s: %w", shapes[i].Name, err)
		}
	}

	db, err := shapedb.Open("", opts)
	if err != nil {
		return nil, err
	}
	c := &Corpus{
		DB:        db,
		Engine:    core.NewEngine(db),
		IDByIndex: make([]int64, len(shapes)),
		Shapes:    shapes,
	}
	for i, s := range shapes {
		id, err := db.Insert(s.Name, s.Group, s.Mesh, sets[i])
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("eval: inserting %s: %w", s.Name, err)
		}
		c.IDByIndex[i] = id
	}
	return c, nil
}

// Close releases the corpus database.
func (c *Corpus) Close() error { return c.DB.Close() }

// RelevantSet returns the ground-truth relevant shapes for a query id:
// the other members of its group ("we do not count the query shape
// itself"). Noise shapes have an empty relevant set.
func (c *Corpus) RelevantSet(queryID int64) map[int64]bool {
	group := c.DB.GroupOf(queryID)
	out := map[int64]bool{}
	if group == 0 {
		return out
	}
	for _, id := range c.DB.GroupMembers(group) {
		if id != queryID {
			out[id] = true
		}
	}
	return out
}

// GroupQueryIDs returns one query per group (the first member of each of
// the 26 groups) — the paper's "from each of the twenty six groups,
// choose one shape as query model".
func (c *Corpus) GroupQueryIDs() []int64 {
	out := make([]int64, 0, dataset.NumGroups)
	for g := 1; g <= dataset.NumGroups; g++ {
		members := c.DB.GroupMembers(g)
		if len(members) > 0 {
			out = append(out, members[0])
		}
	}
	return out
}

// RepresentativeQueryIDs returns the DB ids of the five Figure-6
// representative query shapes.
func (c *Corpus) RepresentativeQueryIDs() []int64 {
	idxs := dataset.RepresentativeQueries(c.Shapes)
	out := make([]int64, len(idxs))
	for i, idx := range idxs {
		out[i] = c.IDByIndex[idx]
	}
	return out
}
