package eval

import (
	"math"
	"sync"
	"testing"

	"threedess/internal/dataset"
	"threedess/internal/features"
)

// The corpus takes a few seconds to extract; share one across tests.
var (
	corpusOnce sync.Once
	corpus     *Corpus
	corpusErr  error
)

func sharedCorpus(t *testing.T) *Corpus {
	t.Helper()
	corpusOnce.Do(func() {
		corpus, corpusErr = BuildCorpus(42, features.Options{}, nil)
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpus
}

func TestBuildCorpus(t *testing.T) {
	c := sharedCorpus(t)
	if c.DB.Len() != dataset.TotalShapes {
		t.Fatalf("DB has %d shapes, want %d", c.DB.Len(), dataset.TotalShapes)
	}
	if len(c.IDByIndex) != dataset.TotalShapes {
		t.Fatalf("IDByIndex = %d", len(c.IDByIndex))
	}
	for i, id := range c.IDByIndex {
		rec, ok := c.DB.Get(id)
		if !ok {
			t.Fatalf("index %d id %d missing", i, id)
		}
		if rec.Name != c.Shapes[i].Name {
			t.Fatalf("index %d name %q vs %q", i, rec.Name, c.Shapes[i].Name)
		}
		for _, k := range features.CoreKinds {
			if _, ok := rec.Features[k]; !ok {
				t.Fatalf("shape %s missing feature %v", rec.Name, k)
			}
		}
	}
}

func TestRelevantSet(t *testing.T) {
	c := sharedCorpus(t)
	queries := c.GroupQueryIDs()
	if len(queries) != dataset.NumGroups {
		t.Fatalf("group queries = %d", len(queries))
	}
	for _, qid := range queries {
		g := c.DB.GroupOf(qid)
		size, _ := dataset.GroupSize(g)
		rel := c.RelevantSet(qid)
		if len(rel) != size-1 {
			t.Errorf("group %d relevant set = %d, want %d", g, len(rel), size-1)
		}
		if rel[qid] {
			t.Errorf("query %d in its own relevant set", qid)
		}
	}
	// A noise shape has no relevant set.
	var noiseID int64 = -1
	for i, s := range c.Shapes {
		if s.Group == 0 {
			noiseID = c.IDByIndex[i]
			break
		}
	}
	if noiseID == -1 {
		t.Fatal("no noise shape found")
	}
	if got := c.RelevantSet(noiseID); len(got) != 0 {
		t.Errorf("noise relevant set = %d", len(got))
	}
}

func TestPrecisionRecallFunction(t *testing.T) {
	rel := map[int64]bool{1: true, 2: true, 3: true, 4: true}
	p, r := PrecisionRecall([]int64{1, 2, 9, 10}, rel)
	if p != 0.5 || r != 0.5 {
		t.Errorf("P=%v R=%v, want 0.5/0.5", p, r)
	}
	p, r = PrecisionRecall(nil, rel)
	if p != 0 || r != 0 {
		t.Errorf("empty retrieval P=%v R=%v", p, r)
	}
	p, r = PrecisionRecall([]int64{9}, map[int64]bool{})
	if p != 0 || r != 0 {
		t.Errorf("empty relevant P=%v R=%v", p, r)
	}
	p, r = PrecisionRecall([]int64{1, 2, 3, 4}, rel)
	if p != 1 || r != 1 {
		t.Errorf("perfect P=%v R=%v", p, r)
	}
}

func TestPRCurveEndpoints(t *testing.T) {
	c := sharedCorpus(t)
	qid := c.RepresentativeQueryIDs()[0]
	curve, err := c.PRCurve(qid, features.PrincipalMoments, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 21 {
		t.Fatalf("curve points = %d", len(curve))
	}
	// Threshold 0 retrieves everything: recall 1, precision = |A|/112.
	first := curve[0]
	if first.Recall != 1 {
		t.Errorf("recall at threshold 0 = %v", first.Recall)
	}
	rel := len(c.RelevantSet(qid))
	wantP := float64(rel) / float64(dataset.TotalShapes-1)
	if math.Abs(first.Precision-wantP) > 1e-9 {
		t.Errorf("precision at threshold 0 = %v, want %v", first.Precision, wantP)
	}
	// Retrieved counts weakly decrease as the threshold rises; P and R
	// stay in range.
	for i, pt := range curve {
		if pt.Precision < 0 || pt.Precision > 1 || pt.Recall < 0 || pt.Recall > 1 {
			t.Errorf("point %d out of range: %+v", i, pt)
		}
		if i > 0 && pt.Retrieved > curve[i-1].Retrieved {
			t.Errorf("retrieved count increased with threshold at %d", i)
		}
	}
}

func TestPRCurvesAllRepresentatives(t *testing.T) {
	c := sharedCorpus(t)
	curves, err := c.PRCurves(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 5 {
		t.Fatalf("queries = %d", len(curves))
	}
	for qid, byKind := range curves {
		if len(byKind) != len(features.CoreKinds) {
			t.Errorf("query %d has %d kinds", qid, len(byKind))
		}
	}
}

func TestThresholdQueryExample(t *testing.T) {
	c := sharedCorpus(t)
	qid := c.RepresentativeQueryIDs()[0]
	p, r, res, err := c.ThresholdQueryExample(qid, features.MomentInvariants, 0.85)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0 || p > 1 || r < 0 || r > 1 {
		t.Errorf("P=%v R=%v", p, r)
	}
	for _, rr := range res {
		if rr.ID == qid {
			t.Error("query shape in results")
		}
		if rr.Similarity < 0.85-1e-9 {
			t.Errorf("similarity %v below threshold", rr.Similarity)
		}
	}
}

func TestRetrieveExcludesQueryAndSizes(t *testing.T) {
	c := sharedCorpus(t)
	qid := c.GroupQueryIDs()[0]
	for _, s := range PaperStrategies() {
		res, err := c.Retrieve(qid, s, 10)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if len(res) != 10 {
			t.Errorf("%s: retrieved %d, want 10", s.Name, len(res))
		}
		for _, r := range res {
			if r.ID == qid {
				t.Errorf("%s: query shape retrieved", s.Name)
			}
		}
	}
}

func TestAverageEffectiveness(t *testing.T) {
	c := sharedCorpus(t)
	rows, err := c.AverageEffectiveness(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]EffectivenessRow{}
	for _, row := range rows {
		byName[row.Strategy.Name] = row
		for _, v := range []float64{row.AvgRecallGroupSize, row.AvgRecallAt10, row.AvgPrecisionAt10} {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Errorf("%s: out-of-range metric %v", row.Strategy.Name, v)
			}
		}
		// With |R|=10 > |A| for every group, recall ≥ precision·(10/|A|) —
		// weaker sanity: recall ≥ precision (since |A| ≤ 7 < 10).
		if row.AvgRecallAt10 < row.AvgPrecisionAt10-1e-9 {
			t.Errorf("%s: recall@10 %v < precision@10 %v", row.Strategy.Name,
				row.AvgRecallAt10, row.AvgPrecisionAt10)
		}
	}
	// The paper's ordering of one-shot effectiveness: principal moments >
	// moment invariants > geometric parameters > eigenvalues (§5).
	eig := byName["eigenvalues (one-shot)"].AvgRecallGroupSize
	pm := byName["principal-moments (one-shot)"].AvgRecallGroupSize
	mi := byName["moment-invariants (one-shot)"].AvgRecallGroupSize
	gp := byName["geometric-params (one-shot)"].AvgRecallGroupSize
	if !(pm > mi && mi > gp && gp > eig) {
		t.Errorf("one-shot ordering violated: PM=%.3f MI=%.3f GP=%.3f Eig=%.3f "+
			"(want PM > MI > GP > Eig)", pm, mi, gp, eig)
	}
	// Multi-step beats every one-shot strategy on both policies (the
	// headline §4.2 claim).
	multi := byName["multi-step (PM → eigenvalues)"]
	for name, row := range byName {
		if row.Strategy.IsMultiStep() {
			continue
		}
		if multi.AvgRecallAt10 < row.AvgRecallAt10-1e-9 {
			t.Errorf("multi-step recall@10 %v below one-shot %s %v",
				multi.AvgRecallAt10, name, row.AvgRecallAt10)
		}
		if multi.AvgRecallGroupSize < row.AvgRecallGroupSize-1e-9 {
			t.Errorf("multi-step recall@|A| %v below one-shot %s %v",
				multi.AvgRecallGroupSize, name, row.AvgRecallGroupSize)
		}
	}
	// The paper reports the multi-step margin over the best one-shot
	// (principal moments) as large (+51%); require a clear gain here.
	if multi.AvgRecallGroupSize < pm*1.05 {
		t.Errorf("multi-step %.3f not clearly above principal moments %.3f",
			multi.AvgRecallGroupSize, pm)
	}
}

func TestRunMultiStepExample(t *testing.T) {
	c := sharedCorpus(t)
	qid := c.GroupQueryIDs()[0] // the size-8 plate group
	ex, err := c.RunMultiStepExample(qid, features.PrincipalMoments, MultiStepMIGP())
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.OneShot) != 10 || len(ex.Multi) != 10 {
		t.Errorf("result sizes = %d, %d", len(ex.OneShot), len(ex.Multi))
	}
	for _, v := range []float64{ex.OneShotPrecision, ex.OneShotRecall, ex.MultiPrecision, ex.MultiRecall} {
		if v < 0 || v > 1 {
			t.Errorf("metric out of range: %v", v)
		}
	}
}

func TestRTreeSyntheticEfficiency(t *testing.T) {
	rows, err := RTreeSyntheticEfficiency([]int{1000, 10000}, 3, 10, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.AvgAccess <= 0 {
			t.Errorf("no accesses recorded: %+v", r)
		}
		if r.ScanFrac > 0.5 {
			t.Errorf("k-NN touches %v of the tree — not efficient", r.ScanFrac)
		}
	}
	// Larger database → smaller visited fraction.
	if rows[1].ScanFrac > rows[0].ScanFrac {
		t.Errorf("scan fraction grew with size: %v -> %v", rows[0].ScanFrac, rows[1].ScanFrac)
	}
}

func TestRTreeRealEfficiency(t *testing.T) {
	c := sharedCorpus(t)
	row, err := c.RTreeRealEfficiency(features.PrincipalMoments, 10, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Points != dataset.TotalShapes {
		t.Errorf("points = %d", row.Points)
	}
	if row.AvgAccess <= 0 {
		t.Error("no accesses")
	}
	if _, err := c.RTreeRealEfficiency(features.ShapeDistribution, 10, 5, 1); err == nil {
		t.Error("missing feature accepted")
	}
}
