package moments

import (
	"fmt"
	"math"

	"threedess/internal/geom"
)

// DefaultTargetVolume is the constant C that Equation 3.3 scales every
// model's volume to.
const DefaultTargetVolume = 1.0

// Normalization records the canonicalizing transform produced by Normalize:
// the original model maps to the canonical model by
//
//	x_canonical = Rotation · (Scale · (x + Translation))
//
// i.e. translate the centroid to the origin, scale to the target volume,
// then rotate onto the principal axes.
type Normalization struct {
	Translation geom.Vec3 // −centroid of the original model
	Scale       float64   // uniform scale factor (Equation 3.3)
	Rotation    geom.Mat3 // proper rotation onto principal axes

	OriginalVolume  float64
	OriginalSurface float64
}

// Apply maps a point of the original model into the canonical frame.
func (n *Normalization) Apply(p geom.Vec3) geom.Vec3 {
	return n.Rotation.MulVec(p.Add(n.Translation).Scale(n.Scale))
}

// Normalize transforms mesh into the paper's canonical form (§3.1) in
// place and returns the applied normalization:
//
//  1. translation criterion (3.2): centroid at the origin,
//  2. scale criterion (3.3): volume equal to targetVolume,
//  3. orientation criterion (3.4): principal axes of the second-order
//     central moments aligned with the coordinate axes, ordered
//     µxx ≥ µyy ≥ µzz, and
//  4. ambiguity resolution: the maximum extent lies in the positive
//     half-space along X and Y; the Z axis sign keeps the rotation proper.
//
// Normalize fails when the mesh volume is non-positive (open or inverted
// meshes have no meaningful canonical solid form).
func Normalize(mesh *geom.Mesh, targetVolume float64) (*Normalization, error) {
	if targetVolume <= 0 {
		return nil, fmt.Errorf("moments: target volume must be positive, got %g", targetVolume)
	}
	s := OfMesh(mesh)
	vol := s.Volume()
	if vol <= 1e-300 {
		return nil, fmt.Errorf("moments: cannot normalize mesh with volume %g (mesh must be closed and outward-oriented)", vol)
	}
	norm := &Normalization{
		OriginalVolume:  vol,
		OriginalSurface: mesh.SurfaceArea(),
	}

	// (1) Translate the centroid to the origin.
	norm.Translation = s.Centroid().Neg()
	mesh.Translate(norm.Translation)

	// (2) Scale the volume to the constant.
	norm.Scale = math.Cbrt(targetVolume / vol)
	mesh.ScaleUniform(norm.Scale)

	// (3) Rotate onto principal axes. The central second moments of the
	// translated/scaled mesh are the raw second moments now.
	s = OfMesh(mesh)
	_, vecs := EigenOrientation(s)
	mesh.Rotate(vecs)

	// (4) Half-space disambiguation on X and Y; Z sign fixed by det = +1.
	min, max := mesh.Bounds()
	flip := geom.Identity3()
	if -min.X > max.X {
		flip[0][0] = -1
	}
	if -min.Y > max.Y {
		flip[1][1] = -1
	}
	// Choose the Z sign that keeps flip·vecs a proper rotation.
	if flip.Mul(vecs).Det() < 0 {
		flip[2][2] = -1
	}
	if flip != geom.Identity3() {
		mesh.Rotate(flip)
	}
	norm.Rotation = flip.Mul(vecs)
	return norm, nil
}

// EigenOrientation computes the principal-moment eigenvalues (descending)
// of the second-moment matrix of s and the proper-or-improper rotation that
// maps the model onto its principal axes (rows are the eigenvectors). The
// caller resolves the sign ambiguity.
func EigenOrientation(s *Set) (vals [3]float64, rot geom.Mat3) {
	vals, vecs := geom.EigenSym3(s.SecondMomentMatrix())
	// Columns of vecs are eigenvectors; the rotation x ↦ Vᵀx maps the
	// eigenvector for the largest eigenvalue onto +X, and so on, giving
	// µxx ≥ µyy ≥ µzz in the rotated frame.
	return vals, vecs.Transpose()
}

// PrincipalMoments returns the eigenvalues of the second-order central
// moment matrix of s in descending order — the paper's principal-moments
// feature (§3.5.3). s should already be central (or the model already
// centroid-aligned).
func PrincipalMoments(s *Set) [3]float64 {
	vals, _ := geom.EigenSym3(s.SecondMomentMatrix())
	return vals
}

// InertiaTensor returns the (unit-density) inertia tensor of the solid
// about its centroid,
//
//	[ µ020+µ002   −µ110      −µ101    ]
//	[ −µ110      µ200+µ002   −µ011    ]
//	[ −µ101      −µ011      µ200+µ020 ]
//
// computed from central moments — the mass property an engineer asks a
// CAD kernel for, provided here because the search pipeline already has
// every ingredient.
func InertiaTensor(central *Set) geom.Mat3 {
	m200 := central.M(2, 0, 0)
	m020 := central.M(0, 2, 0)
	m002 := central.M(0, 0, 2)
	m110 := central.M(1, 1, 0)
	m101 := central.M(1, 0, 1)
	m011 := central.M(0, 1, 1)
	return geom.Mat3{
		{m020 + m002, -m110, -m101},
		{-m110, m200 + m002, -m011},
		{-m101, -m011, m200 + m020},
	}
}
