package moments

import (
	"math"
	"math/rand"
	"testing"

	"threedess/internal/geom"
)

func TestSphereMomentsAnalytic(t *testing.T) {
	// Solid sphere of radius R centered at origin:
	// m000 = 4/3 π R³, m200 = 4π/15 R⁵, odd moments 0.
	const R = 1.5
	s := OfMesh(geom.Sphere(R, 48, 96))
	wantVol := 4.0 / 3 * math.Pi * R * R * R
	if math.Abs(s.Volume()-wantVol) > 0.005*wantVol {
		t.Errorf("volume = %v, want %v", s.Volume(), wantVol)
	}
	want200 := 4 * math.Pi / 15 * math.Pow(R, 5)
	for _, lmn := range [][3]int{{2, 0, 0}, {0, 2, 0}, {0, 0, 2}} {
		got := s.M(lmn[0], lmn[1], lmn[2])
		if math.Abs(got-want200) > 0.01*want200 {
			t.Errorf("m_%v = %v, want %v", lmn, got, want200)
		}
	}
	for _, lmn := range [][3]int{{1, 0, 0}, {1, 1, 0}, {3, 0, 0}, {1, 1, 1}} {
		if got := s.M(lmn[0], lmn[1], lmn[2]); math.Abs(got) > 1e-3 {
			t.Errorf("odd moment m_%v = %v, want ≈0", lmn, got)
		}
	}
	// Sphere invariants: I200 = I020 = I002, cross terms 0 ⇒
	// F1 = 3·I200, F2 = 3·I200², F3 = I200³.
	inv := InvariantsOf(s.Central())
	i200 := inv.F1 / 3
	if math.Abs(inv.F2-3*i200*i200) > 0.01*inv.F2 {
		t.Errorf("sphere F2 = %v, want %v", inv.F2, 3*i200*i200)
	}
	if math.Abs(inv.F3-i200*i200*i200) > 0.01*inv.F3 {
		t.Errorf("sphere F3 = %v, want %v", inv.F3, i200*i200*i200)
	}
}

// Property: moments are additive over disjoint solids.
func TestQuickMomentAdditivity(t *testing.T) {
	rng := rand.New(rand.NewSource(210))
	for trial := 0; trial < 40; trial++ {
		a := geom.Box(
			geom.V(rng.Float64()*5, rng.Float64()*5, rng.Float64()*5),
			geom.V(6+rng.Float64()*3, 6+rng.Float64()*3, 6+rng.Float64()*3),
		)
		b := geom.Box(
			geom.V(20+rng.Float64()*5, rng.Float64()*5, rng.Float64()*5),
			geom.V(26+rng.Float64()*3, 6+rng.Float64()*3, 6+rng.Float64()*3),
		)
		sa, sb := OfMesh(a), OfMesh(b)
		merged := OfMesh(a.Clone().Merge(b))
		for l := 0; l <= 2; l++ {
			for m := 0; m <= 2-l; m++ {
				for n := 0; n <= 2-l-m; n++ {
					want := sa.M(l, m, n) + sb.M(l, m, n)
					got := merged.M(l, m, n)
					if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
						t.Fatalf("trial %d: m_%d%d%d = %v, want %v", trial, l, m, n, got, want)
					}
				}
			}
		}
	}
}

// Property: Central() is idempotent (central moments of central moments).
func TestCentralIdempotent(t *testing.T) {
	s := OfMesh(lShape())
	c1 := s.Central()
	c2 := c1.Central()
	for l := 0; l <= MaxOrder; l++ {
		for m := 0; m <= MaxOrder-l; m++ {
			for n := 0; n <= MaxOrder-l-m; n++ {
				a, b := c1.M(l, m, n), c2.M(l, m, n)
				if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
					t.Fatalf("µ_%d%d%d changed on second centering: %v vs %v", l, m, n, a, b)
				}
			}
		}
	}
}

// Property: raw moments scale as s^(l+m+n+3) under uniform scaling about
// the origin.
func TestQuickMomentScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	base := geom.Box(geom.V(1, 2, 3), geom.V(3, 5, 7))
	s0 := OfMesh(base)
	for trial := 0; trial < 30; trial++ {
		k := 0.3 + rng.Float64()*3
		scaled := OfMesh(base.Clone().ScaleUniform(k))
		for l := 0; l <= 2; l++ {
			for m := 0; m <= 2-l; m++ {
				for n := 0; n <= 2-l-m; n++ {
					want := s0.M(l, m, n) * math.Pow(k, float64(l+m+n+3))
					got := scaled.M(l, m, n)
					if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
						t.Fatalf("scaling law broken for m_%d%d%d: %v vs %v", l, m, n, got, want)
					}
				}
			}
		}
	}
}

// Property: the second-moment matrix transforms as R·M·Rᵀ under rotation
// of a centered solid.
func TestQuickSecondMomentRotationLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	base := lShape()
	if _, err := Normalize(base, 1); err != nil {
		t.Fatal(err)
	}
	m0 := OfMesh(base).SecondMomentMatrix()
	for trial := 0; trial < 30; trial++ {
		r := randomRotation(rng)
		rotated := OfMesh(base.Clone().Rotate(r)).SecondMomentMatrix()
		want := r.Mul(m0).Mul(r.Transpose())
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if math.Abs(rotated[i][j]-want[i][j]) > 1e-7*(1+math.Abs(want[i][j])) {
					t.Fatalf("rotation law broken at (%d,%d): %v vs %v", i, j, rotated[i][j], want[i][j])
				}
			}
		}
	}
}

func TestOfPointsEmpty(t *testing.T) {
	s := OfPoints(nil, 1)
	if s.Volume() != 0 {
		t.Errorf("empty point moments volume = %v", s.Volume())
	}
	if got := s.Centroid(); got != (geom.Vec3{}) {
		t.Errorf("empty centroid = %v", got)
	}
}

func TestTorusMomentsAnalytic(t *testing.T) {
	// Torus (major R, minor r) centered at origin in the XY plane:
	// V = 2π²Rr², µ002 (about the central plane) = V·r²/4.
	const R, r = 3.0, 0.8
	mesh, err := geom.Torus(R, r, 96, 48)
	if err != nil {
		t.Fatal(err)
	}
	s := OfMesh(mesh)
	v := 2 * math.Pi * math.Pi * R * r * r
	if math.Abs(s.Volume()-v) > 0.01*v {
		t.Errorf("torus volume = %v, want %v", s.Volume(), v)
	}
	want002 := v * r * r / 4
	if got := s.M(0, 0, 2); math.Abs(got-want002) > 0.02*want002 {
		t.Errorf("torus µ002 = %v, want %v", got, want002)
	}
}

func TestInertiaTensorBoxAnalytic(t *testing.T) {
	// Unit-density box a×b×c about its centroid:
	// Ixx = V(b²+c²)/12, products of inertia zero.
	const a, b, c = 2.0, 3.0, 4.0
	v := a * b * c
	it := InertiaTensor(OfMesh(geom.Box(geom.V(0, 0, 0), geom.V(a, b, c))).Central())
	wantXX := v * (b*b + c*c) / 12
	wantYY := v * (a*a + c*c) / 12
	wantZZ := v * (a*a + b*b) / 12
	if math.Abs(it[0][0]-wantXX) > 1e-9*wantXX {
		t.Errorf("Ixx = %v, want %v", it[0][0], wantXX)
	}
	if math.Abs(it[1][1]-wantYY) > 1e-9*wantYY {
		t.Errorf("Iyy = %v, want %v", it[1][1], wantYY)
	}
	if math.Abs(it[2][2]-wantZZ) > 1e-9*wantZZ {
		t.Errorf("Izz = %v, want %v", it[2][2], wantZZ)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if i != j && math.Abs(it[i][j]) > 1e-9 {
				t.Errorf("product of inertia I[%d][%d] = %v", i, j, it[i][j])
			}
		}
	}
}

func TestInertiaTensorSphereAnalytic(t *testing.T) {
	// Solid sphere: I = 2/5 M R² on the diagonal (M = volume here).
	const R = 1.3
	it := InertiaTensor(OfMesh(geom.Sphere(R, 48, 96)).Central())
	m := 4.0 / 3 * math.Pi * R * R * R
	want := 2.0 / 5 * m * R * R
	for i := 0; i < 3; i++ {
		if math.Abs(it[i][i]-want) > 0.01*want {
			t.Errorf("I[%d][%d] = %v, want %v", i, i, it[i][i], want)
		}
	}
}
