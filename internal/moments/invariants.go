package moments

import "math"

// Moment invariants (§3.5.1 of the paper): quantities derived from the
// second-order central moments that are invariant to translation, uniform
// scaling, and rotation.
//
// Scaling invariance follows Equation 3.6's construction: each central
// moment µ_lmn is divided by µ₀₀₀^((l+m+n+3)/3), so for second order the
// divisor is µ₀₀₀^(5/3). Orientation invariance comes from taking the
// coefficients of the characteristic polynomial of the I-matrix
// (Equations 3.7–3.9): F1 = trace, F2 = sum of principal 2×2 minors,
// F3 = determinant.

// Invariants holds the three moment invariants F1, F2, F3.
type Invariants struct {
	F1, F2, F3 float64
}

// ScaleInvariant returns I_lmn = µ_lmn / µ000^((l+m+n+3)/3), the
// scale-normalized central moment from §3.5.1.
func ScaleInvariant(central *Set, l, m, n int) float64 {
	v := central.Volume()
	if v <= 0 {
		return 0
	}
	order := float64(l + m + n)
	return central.M(l, m, n) / math.Pow(v, (order+3)/3)
}

// InvariantsOf computes F1, F2, F3 from the central moments of a solid.
// The input must be central moments (use Set.Central on raw moments);
// volume must be positive.
func InvariantsOf(central *Set) Invariants {
	i200 := ScaleInvariant(central, 2, 0, 0)
	i020 := ScaleInvariant(central, 0, 2, 0)
	i002 := ScaleInvariant(central, 0, 0, 2)
	i110 := ScaleInvariant(central, 1, 1, 0)
	i101 := ScaleInvariant(central, 1, 0, 1)
	i011 := ScaleInvariant(central, 0, 1, 1)

	f1 := i200 + i020 + i002
	f2 := i002*i200 + i002*i020 + i020*i200 -
		i101*i101 - i110*i110 - i011*i011
	f3 := i002*i200*i020 + 2*i110*i011*i101 -
		i101*i101*i020 - i011*i011*i200 - i110*i110*i002
	return Invariants{F1: f1, F2: f2, F3: f3}
}

// HigherOrderInvariants returns rotation- and scale-invariant combinations
// of third- and fourth-order central moments. These implement the
// "Higher order invariants" box of the paper's architecture diagram
// (Figure 1) as an extension descriptor.
//
// The third-order invariants follow Sadjadi & Hall's construction for the
// ternary cubic; the fourth-order entries are the simplest rotation
// invariants of the quartic (full contractions).
func HigherOrderInvariants(central *Set) []float64 {
	i := func(l, m, n int) float64 { return ScaleInvariant(central, l, m, n) }

	// Third order.
	j300, j030, j003 := i(3, 0, 0), i(0, 3, 0), i(0, 0, 3)
	j210, j201 := i(2, 1, 0), i(2, 0, 1)
	j120, j021 := i(1, 2, 0), i(0, 2, 1)
	j102, j012 := i(1, 0, 2), i(0, 1, 2)
	j111 := i(1, 1, 1)

	// Full contraction of the cubic with itself (norm invariant).
	g1 := j300*j300 + j030*j030 + j003*j003 +
		3*(j210*j210+j201*j201+j120*j120+j021*j021+j102*j102+j012*j012) +
		6*j111*j111
	// Contraction through one shared index ("vector" invariant: |∇·T|²).
	vx := j300 + j120 + j102
	vy := j030 + j210 + j012
	vz := j003 + j201 + j021
	g2 := vx*vx + vy*vy + vz*vz

	// Fourth order.
	k400, k040, k004 := i(4, 0, 0), i(0, 4, 0), i(0, 0, 4)
	k220, k202, k022 := i(2, 2, 0), i(2, 0, 2), i(0, 2, 2)
	// Trace of the quartic contracted over two index pairs.
	g3 := k400 + k040 + k004 + 2*(k220+k202+k022)

	return []float64{g1, g2, g3}
}
