package moments

import (
	"math"
	"math/rand"
	"testing"

	"threedess/internal/geom"
)

func TestNormalizeCriteria(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for i := 0; i < 40; i++ {
		m := lShape()
		m.ScaleUniform(0.3 + rng.Float64()*4)
		m.Rotate(randomRotation(rng))
		m.Translate(geom.V(rng.NormFloat64()*8, rng.NormFloat64()*8, rng.NormFloat64()*8))

		norm, err := Normalize(m, DefaultTargetVolume)
		if err != nil {
			t.Fatal(err)
		}
		s := OfMesh(m)
		// Criterion 3.2: centroid at origin.
		if got := s.Centroid(); !got.NearEqual(geom.Vec3{}, 1e-8) {
			t.Fatalf("centroid after normalize = %v", got)
		}
		// Criterion 3.3: volume equals the constant.
		if got := s.Volume(); !almostEq(got, DefaultTargetVolume, 1e-8) {
			t.Fatalf("volume after normalize = %v", got)
		}
		// Criterion 3.4: products of inertia vanish.
		for _, lmn := range [][3]int{{1, 1, 0}, {1, 0, 1}, {0, 1, 1}} {
			if got := s.M(lmn[0], lmn[1], lmn[2]); math.Abs(got) > 1e-7 {
				t.Fatalf("µ_%v after normalize = %v, want 0", lmn, got)
			}
		}
		// Ordering µxx ≥ µyy ≥ µzz.
		if s.M(2, 0, 0) < s.M(0, 2, 0)-1e-9 || s.M(0, 2, 0) < s.M(0, 0, 2)-1e-9 {
			t.Fatalf("principal moments not ordered: %v %v %v",
				s.M(2, 0, 0), s.M(0, 2, 0), s.M(0, 0, 2))
		}
		// Half-space rule on X and Y.
		min, max := m.Bounds()
		if -min.X > max.X+1e-9 || -min.Y > max.Y+1e-9 {
			t.Fatalf("half-space rule violated: bounds %v %v", min, max)
		}
		// The recorded rotation must be proper.
		if !norm.Rotation.IsRotation(1e-6) {
			t.Fatalf("recorded rotation not proper: det=%v", norm.Rotation.Det())
		}
	}
}

func TestNormalizeCanonicalFormIsPoseInvariant(t *testing.T) {
	// Two arbitrarily posed copies of the same shape must normalize to
	// (nearly) the same canonical geometry — the point of §3.1.
	rng := rand.New(rand.NewSource(51))
	base := lShape()
	canonical := base.Clone()
	if _, err := Normalize(canonical, 1); err != nil {
		t.Fatal(err)
	}
	ref := OfMesh(canonical)

	for i := 0; i < 25; i++ {
		m := base.Clone()
		m.ScaleUniform(0.5 + rng.Float64()*2)
		m.Rotate(randomRotation(rng))
		m.Translate(geom.V(rng.NormFloat64()*5, rng.NormFloat64()*5, rng.NormFloat64()*5))
		if _, err := Normalize(m, 1); err != nil {
			t.Fatal(err)
		}
		s := OfMesh(m)
		for _, lmn := range [][3]int{{2, 0, 0}, {0, 2, 0}, {0, 0, 2}, {3, 0, 0}, {0, 3, 0}} {
			a := ref.M(lmn[0], lmn[1], lmn[2])
			b := s.M(lmn[0], lmn[1], lmn[2])
			if !almostEq(a, b, 1e-6*(1+math.Abs(a))) {
				t.Fatalf("canonical moment µ_%v differs: %v vs %v", lmn, a, b)
			}
		}
	}
}

func TestNormalizeIdempotent(t *testing.T) {
	m := lShape()
	if _, err := Normalize(m, 1); err != nil {
		t.Fatal(err)
	}
	before := OfMesh(m)
	norm, err := Normalize(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(norm.Scale, 1, 1e-9) {
		t.Errorf("second normalize scale = %v, want 1", norm.Scale)
	}
	if !norm.Translation.NearEqual(geom.Vec3{}, 1e-9) {
		t.Errorf("second normalize translation = %v, want 0", norm.Translation)
	}
	after := OfMesh(m)
	if !almostEq(before.M(2, 0, 0), after.M(2, 0, 0), 1e-9) {
		t.Errorf("second normalize changed µ200: %v vs %v", before.M(2, 0, 0), after.M(2, 0, 0))
	}
}

func TestNormalizeApplyMatchesMesh(t *testing.T) {
	orig := lShape()
	probe := orig.Vertices[7]
	m := orig.Clone()
	norm, err := Normalize(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := norm.Apply(probe); !got.NearEqual(m.Vertices[7], 1e-9) {
		t.Errorf("Apply(%v) = %v, mesh has %v", probe, got, m.Vertices[7])
	}
}

func TestNormalizeRecordsOriginals(t *testing.T) {
	m := geom.Box(geom.V(0, 0, 0), geom.V(2, 2, 2))
	area := m.SurfaceArea()
	norm, err := Normalize(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(norm.OriginalVolume, 8, 1e-9) {
		t.Errorf("OriginalVolume = %v", norm.OriginalVolume)
	}
	if !almostEq(norm.OriginalSurface, area, 1e-9) {
		t.Errorf("OriginalSurface = %v", norm.OriginalSurface)
	}
	if !almostEq(norm.Scale, 0.5, 1e-9) {
		t.Errorf("Scale = %v, want 0.5", norm.Scale)
	}
}

func TestNormalizeErrors(t *testing.T) {
	if _, err := Normalize(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)), -1); err == nil {
		t.Error("negative target volume accepted")
	}
	open := geom.NewMesh(0, 0)
	open.AddVertex(geom.V(0, 0, 0))
	open.AddVertex(geom.V(1, 0, 0))
	open.AddVertex(geom.V(0, 1, 0))
	open.AddFace(0, 1, 2)
	if _, err := Normalize(open, 1); err == nil {
		t.Error("zero-volume mesh accepted")
	}
	inverted := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)).FlipFaces()
	if _, err := Normalize(inverted, 1); err == nil {
		t.Error("inverted mesh accepted")
	}
}

func TestPrincipalMomentsOrderedAndRotationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	base := lShape()
	if _, err := Normalize(base, 1); err != nil {
		t.Fatal(err)
	}
	ref := PrincipalMoments(OfMesh(base).Central())
	if ref[0] < ref[1] || ref[1] < ref[2] {
		t.Fatalf("principal moments not descending: %v", ref)
	}
	for i := 0; i < 30; i++ {
		m := base.Clone()
		m.Rotate(randomRotation(rng))
		got := PrincipalMoments(OfMesh(m).Central())
		for k := 0; k < 3; k++ {
			if !almostEq(got[k], ref[k], 1e-7*(1+ref[k])) {
				t.Fatalf("principal moments changed under rotation: %v vs %v", got, ref)
			}
		}
	}
}
