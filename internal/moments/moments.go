// Package moments computes volume moments of 3D solids and implements the
// moment-based normalization pipeline of §3.1 of the paper (translation,
// scale, and principal-axes orientation normalization).
//
// Mesh moments are exact: the solid is decomposed into signed tetrahedra
// against the origin and each monomial x^l y^m z^n is integrated in closed
// form over every tetrahedron via multinomial expansion on the unit simplex
// (∫_Δ u^a v^b w^c du dv dw = a! b! c! / (a+b+c+3)! with Jacobian 6V).
// For closed, outward-oriented meshes there is no sampling or
// discretization error.
package moments

import (
	"fmt"
	"math"

	"threedess/internal/geom"
)

// MaxOrder is the highest total moment order (l+m+n) the Set type stores.
// The paper's descriptors need order ≤ 2; orders 3-4 serve the
// "higher order invariants" extension and the half-space disambiguation
// rule during normalization.
const MaxOrder = 4

// Set holds all moments m_lmn with l+m+n ≤ MaxOrder, indexed by the three
// exponents.
type Set struct {
	m [MaxOrder + 1][MaxOrder + 1][MaxOrder + 1]float64
}

// M returns the raw moment m_lmn (Equation 3.1 of the paper). It panics if
// any exponent is negative or l+m+n exceeds MaxOrder.
func (s *Set) M(l, m, n int) float64 {
	if l < 0 || m < 0 || n < 0 || l+m+n > MaxOrder {
		panic(fmt.Sprintf("moments: order (%d,%d,%d) out of range", l, m, n))
	}
	return s.m[l][m][n]
}

// set stores a moment value.
func (s *Set) set(l, m, n int, v float64) { s.m[l][m][n] = v }

// Volume returns m_000, the volume of the solid.
func (s *Set) Volume() float64 { return s.m[0][0][0] }

// Centroid returns the first-order moment ratio (m100, m010, m001)/m000.
// A zero-volume set yields the zero vector.
func (s *Set) Centroid() geom.Vec3 {
	v := s.Volume()
	if math.Abs(v) < 1e-300 {
		return geom.Vec3{}
	}
	return geom.V(s.m[1][0][0]/v, s.m[0][1][0]/v, s.m[0][0][1]/v)
}

// SecondMomentMatrix returns the symmetric matrix of second-order moments
//
//	[ m200 m110 m101 ]
//	[ m110 m020 m011 ]
//	[ m101 m011 m002 ]
//
// (Equation 3.10 of the paper, built from raw moments).
func (s *Set) SecondMomentMatrix() geom.Mat3 {
	return geom.Mat3{
		{s.m[2][0][0], s.m[1][1][0], s.m[1][0][1]},
		{s.m[1][1][0], s.m[0][2][0], s.m[0][1][1]},
		{s.m[1][0][1], s.m[0][1][1], s.m[0][0][2]},
	}
}

// Central converts raw moments into central moments µ_lmn (moments about
// the centroid). All orders up to MaxOrder are transformed using the
// binomial shift theorem.
func (s *Set) Central() *Set {
	c := s.Centroid()
	out := &Set{}
	for l := 0; l <= MaxOrder; l++ {
		for m := 0; m <= MaxOrder-l; m++ {
			for n := 0; n <= MaxOrder-l-m; n++ {
				// µ_lmn = Σ C(l,i)C(m,j)C(n,k) (−cx)^(l−i) (−cy)^(m−j)
				//          (−cz)^(n−k) m_ijk
				acc := 0.0
				for i := 0; i <= l; i++ {
					for j := 0; j <= m; j++ {
						for k := 0; k <= n; k++ {
							acc += binom(l, i) * binom(m, j) * binom(n, k) *
								intPow(-c.X, l-i) * intPow(-c.Y, m-j) * intPow(-c.Z, n-k) *
								s.m[i][j][k]
						}
					}
				}
				out.set(l, m, n, acc)
			}
		}
	}
	return out
}

// OfMesh computes all moments of the closed mesh up to MaxOrder, exactly.
func OfMesh(mesh *geom.Mesh) *Set {
	s := &Set{}
	for _, f := range mesh.Faces {
		a := mesh.Vertices[f[0]]
		b := mesh.Vertices[f[1]]
		c := mesh.Vertices[f[2]]
		accumulateTetraMoments(s, a, b, c)
	}
	return s
}

// OfPoints computes moments of a weighted point mass distribution: each
// point contributes weight w to every monomial. This backs the voxel-grid
// moment path (points are voxel centers, w is the cell volume).
func OfPoints(points []geom.Vec3, w float64) *Set {
	s := &Set{}
	var px, py, pz [MaxOrder + 1]float64
	for _, p := range points {
		px[0], py[0], pz[0] = 1, 1, 1
		for i := 1; i <= MaxOrder; i++ {
			px[i] = px[i-1] * p.X
			py[i] = py[i-1] * p.Y
			pz[i] = pz[i-1] * p.Z
		}
		for l := 0; l <= MaxOrder; l++ {
			for m := 0; m <= MaxOrder-l; m++ {
				for n := 0; n <= MaxOrder-l-m; n++ {
					s.m[l][m][n] += w * px[l] * py[m] * pz[n]
				}
			}
		}
	}
	return s
}

// accumulateTetraMoments adds the exact monomial integrals over the signed
// tetrahedron (0, a, b, c) to s.
//
// With the parameterization x = u·a + v·b + w·c over the unit simplex
// {u,v,w ≥ 0, u+v+w ≤ 1} and Jacobian 6V (V the signed tet volume),
//
//	∫ x^l y^m z^n dV = 6V · Σ (multinomial expansion terms)
//	                        · a!b!c!/(a+b+c+3)!   per (u^a v^b w^c) term.
func accumulateTetraMoments(s *Set, a, b, c geom.Vec3) {
	sixV := a.Dot(b.Cross(c)) // 6 × signed volume
	if sixV == 0 {
		return
	}
	// Components per axis for the three simplex directions.
	ax := [3]float64{a.X, b.X, c.X}
	ay := [3]float64{a.Y, b.Y, c.Y}
	az := [3]float64{a.Z, b.Z, c.Z}

	for l := 0; l <= MaxOrder; l++ {
		for m := 0; m <= MaxOrder-l; m++ {
			for n := 0; n <= MaxOrder-l-m; n++ {
				s.m[l][m][n] += sixV * tetraMonomialIntegral(ax, ay, az, l, m, n)
			}
		}
	}
}

// tetraMonomialIntegral returns ∫_Δ (Σuᵢaxᵢ)^l (Σuᵢayᵢ)^m (Σuᵢazᵢ)^n du
// over the unit simplex, where u₀,u₁,u₂ are the barycentric parameters.
// It expands the three powers multinomially and integrates term-wise.
func tetraMonomialIntegral(ax, ay, az [3]float64, l, m, n int) float64 {
	total := 0.0
	// Expand (u0·ax0 + u1·ax1 + u2·ax2)^l over compositions (i0,i1,i2).
	forCompositions(l, func(i [3]int, coefX float64) {
		cx := coefX * intPow(ax[0], i[0]) * intPow(ax[1], i[1]) * intPow(ax[2], i[2])
		if cx == 0 {
			return
		}
		forCompositions(m, func(j [3]int, coefY float64) {
			cy := coefY * intPow(ay[0], j[0]) * intPow(ay[1], j[1]) * intPow(ay[2], j[2])
			if cy == 0 {
				return
			}
			forCompositions(n, func(k [3]int, coefZ float64) {
				cz := coefZ * intPow(az[0], k[0]) * intPow(az[1], k[1]) * intPow(az[2], k[2])
				if cz == 0 {
					return
				}
				p0 := i[0] + j[0] + k[0]
				p1 := i[1] + j[1] + k[1]
				p2 := i[2] + j[2] + k[2]
				total += cx * cy * cz * simplexIntegral(p0, p1, p2)
			})
		})
	})
	return total
}

// forCompositions calls fn for every composition (i0,i1,i2) of p into three
// non-negative parts, with the multinomial coefficient p!/(i0!i1!i2!).
func forCompositions(p int, fn func(idx [3]int, coef float64)) {
	for i0 := 0; i0 <= p; i0++ {
		for i1 := 0; i1 <= p-i0; i1++ {
			i2 := p - i0 - i1
			coef := factorial(p) / (factorial(i0) * factorial(i1) * factorial(i2))
			fn([3]int{i0, i1, i2}, coef)
		}
	}
}

// simplexIntegral returns ∫_Δ u^a v^b w^c du dv dw over the unit 3-simplex
// = a! b! c! / (a+b+c+3)!.
func simplexIntegral(a, b, c int) float64 {
	return factorial(a) * factorial(b) * factorial(c) / factorial(a+b+c+3)
}

// binom returns the binomial coefficient C(n, k) as a float64.
func binom(n, k int) float64 {
	return factorial(n) / (factorial(k) * factorial(n-k))
}

// factorial returns n! as a float64 (exact for the small n used here).
func factorial(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

// intPow returns x^n for small non-negative integer n.
func intPow(x float64, n int) float64 {
	p := 1.0
	for i := 0; i < n; i++ {
		p *= x
	}
	return p
}
