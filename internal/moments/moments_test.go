package moments

import (
	"math"
	"math/rand"
	"testing"

	"threedess/internal/geom"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// boxMoment returns the analytic raw moment of the box [0,a]×[0,b]×[0,c]:
// ∫ x^l y^m z^n = a^(l+1)/(l+1) · b^(m+1)/(m+1) · c^(n+1)/(n+1).
func boxMoment(a, b, c float64, l, m, n int) float64 {
	f := func(s float64, p int) float64 {
		return math.Pow(s, float64(p+1)) / float64(p+1)
	}
	return f(a, l) * f(b, m) * f(c, n)
}

// lShape returns an asymmetric closed solid (two merged boxes).
func lShape() *geom.Mesh {
	m := geom.Box(geom.V(0, 0, 0), geom.V(4, 1, 1))
	m.Merge(geom.Box(geom.V(0, 1, 0), geom.V(1, 3, 1)))
	return m
}

func randomRotation(rng *rand.Rand) geom.Mat3 {
	axis := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	for axis.Len() < 1e-6 {
		axis = geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	return geom.RotationAxisAngle(axis, rng.Float64()*2*math.Pi)
}

func TestOfMeshBoxAllOrders(t *testing.T) {
	const a, b, c = 2.0, 3.0, 1.5
	s := OfMesh(geom.Box(geom.V(0, 0, 0), geom.V(a, b, c)))
	for l := 0; l <= MaxOrder; l++ {
		for m := 0; m <= MaxOrder-l; m++ {
			for n := 0; n <= MaxOrder-l-m; n++ {
				want := boxMoment(a, b, c, l, m, n)
				got := s.M(l, m, n)
				if !almostEq(got, want, 1e-9*(1+math.Abs(want))) {
					t.Errorf("m_%d%d%d = %v, want %v", l, m, n, got, want)
				}
			}
		}
	}
}

func TestOfMeshBoxOffsetFromOrigin(t *testing.T) {
	// Exactness must not depend on the solid containing the origin.
	const x0, y0, z0 = 5.0, -3.0, 7.0
	s := OfMesh(geom.Box(geom.V(x0, y0, z0), geom.V(x0+1, y0+2, z0+1)))
	if got := s.Volume(); !almostEq(got, 2, 1e-9) {
		t.Errorf("volume = %v", got)
	}
	if got := s.Centroid(); !got.NearEqual(geom.V(x0+0.5, y0+1, z0+0.5), 1e-9) {
		t.Errorf("centroid = %v", got)
	}
	// m200 about origin: ∫(x)² over [x0,x0+1] × area 2.
	wantM200 := (math.Pow(x0+1, 3) - math.Pow(x0, 3)) / 3 * 2
	if got := s.M(2, 0, 0); !almostEq(got, wantM200, 1e-9*math.Abs(wantM200)) {
		t.Errorf("m200 = %v, want %v", got, wantM200)
	}
}

func TestMomentOutOfRangePanics(t *testing.T) {
	s := &Set{}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for order > MaxOrder")
		}
	}()
	s.M(3, 1, 1)
}

func TestCentralMomentsBox(t *testing.T) {
	const a, b, c = 2.0, 3.0, 1.5
	// Box positioned away from the origin; central moments must match the
	// origin-centered analytic values.
	s := OfMesh(geom.Box(geom.V(10, 20, 30), geom.V(10+a, 20+b, 30+c))).Central()
	if got := s.Centroid(); !got.NearEqual(geom.Vec3{}, 1e-9) {
		t.Errorf("central centroid = %v, want 0", got)
	}
	// µ200 of a centered box = a³bc/12.
	if got, want := s.M(2, 0, 0), a*a*a*b*c/12; !almostEq(got, want, 1e-9*want) {
		t.Errorf("µ200 = %v, want %v", got, want)
	}
	if got, want := s.M(0, 2, 0), b*b*b*a*c/12; !almostEq(got, want, 1e-9*want) {
		t.Errorf("µ020 = %v, want %v", got, want)
	}
	// Odd central moments of a symmetric solid vanish.
	for _, lmn := range [][3]int{{1, 0, 0}, {3, 0, 0}, {1, 1, 0}, {1, 1, 1}, {2, 1, 0}} {
		if got := s.M(lmn[0], lmn[1], lmn[2]); !almostEq(got, 0, 1e-9) {
			t.Errorf("µ_%v = %v, want 0", lmn, got)
		}
	}
}

func TestOfPointsMatchesAnalytic(t *testing.T) {
	// A dense grid of point masses inside a unit cube approximates the
	// continuous moments.
	const n = 20
	pts := make([]geom.Vec3, 0, n*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				pts = append(pts, geom.V(
					(float64(i)+0.5)/n,
					(float64(j)+0.5)/n,
					(float64(k)+0.5)/n,
				))
			}
		}
	}
	s := OfPoints(pts, 1.0/float64(n*n*n))
	if got := s.Volume(); !almostEq(got, 1, 1e-9) {
		t.Errorf("volume = %v", got)
	}
	if got := s.M(2, 0, 0); !almostEq(got, 1.0/3, 1e-3) {
		t.Errorf("m200 = %v, want ≈1/3", got)
	}
	if got := s.M(1, 1, 0); !almostEq(got, 0.25, 1e-3) {
		t.Errorf("m110 = %v, want ≈1/4", got)
	}
}

func TestMeshAndVoxelMomentsAgree(t *testing.T) {
	mesh := lShape()
	exact := OfMesh(mesh)
	// Brute-force voxel point approximation of the same L-shape.
	var pts []geom.Vec3
	const h = 0.05
	for x := h / 2; x < 4; x += h {
		for y := h / 2; y < 3; y += h {
			for z := h / 2; z < 1; z += h {
				if (y <= 1) || (x <= 1 && y <= 3) {
					pts = append(pts, geom.V(x, y, z))
				}
			}
		}
	}
	approx := OfPoints(pts, h*h*h)
	if !almostEq(exact.Volume(), approx.Volume(), 0.02*exact.Volume()) {
		t.Errorf("volumes: exact %v, voxel %v", exact.Volume(), approx.Volume())
	}
	if !exact.Centroid().NearEqual(approx.Centroid(), 0.02) {
		t.Errorf("centroids: exact %v, voxel %v", exact.Centroid(), approx.Centroid())
	}
	if !almostEq(exact.M(2, 0, 0), approx.M(2, 0, 0), 0.03*exact.M(2, 0, 0)) {
		t.Errorf("m200: exact %v, voxel %v", exact.M(2, 0, 0), approx.M(2, 0, 0))
	}
}

func TestInvariantsBoxAnalytic(t *testing.T) {
	// For a centered box with extents a,b,c and volume V=abc:
	// I200 = a²/12 · V^(... ) — directly: µ200 = a³bc/12 = V·a²/12, so
	// I200 = (a²/12)·V^(-2/3). F1 = (a²+b²+c²)/12 · V^(-2/3).
	const a, b, c = 2.0, 3.0, 1.5
	v := a * b * c
	inv := InvariantsOf(OfMesh(geom.Box(geom.V(0, 0, 0), geom.V(a, b, c))).Central())
	wantF1 := (a*a + b*b + c*c) / 12 * math.Pow(v, -2.0/3)
	if !almostEq(inv.F1, wantF1, 1e-9*wantF1) {
		t.Errorf("F1 = %v, want %v", inv.F1, wantF1)
	}
	// Axis-aligned box: cross moments vanish, so F2 and F3 are the
	// symmetric functions of the diagonal.
	i200 := a * a / 12 * math.Pow(v, -2.0/3)
	i020 := b * b / 12 * math.Pow(v, -2.0/3)
	i002 := c * c / 12 * math.Pow(v, -2.0/3)
	if want := i200*i020 + i020*i002 + i200*i002; !almostEq(inv.F2, want, 1e-9*want) {
		t.Errorf("F2 = %v, want %v", inv.F2, want)
	}
	if want := i200 * i020 * i002; !almostEq(inv.F3, want, 1e-9*want) {
		t.Errorf("F3 = %v, want %v", inv.F3, want)
	}
}

// The headline property: F1, F2, F3 are invariant under arbitrary rigid
// motion + uniform scaling of an asymmetric solid.
func TestInvariantsRigidScaleInvariance(t *testing.T) {
	base := lShape()
	ref := InvariantsOf(OfMesh(base).Central())
	rng := rand.New(rand.NewSource(40))
	for i := 0; i < 60; i++ {
		m := base.Clone()
		scale := 0.2 + rng.Float64()*5
		m.ScaleUniform(scale)
		m.Rotate(randomRotation(rng))
		m.Translate(geom.V(rng.NormFloat64()*10, rng.NormFloat64()*10, rng.NormFloat64()*10))
		inv := InvariantsOf(OfMesh(m).Central())
		if !almostEq(inv.F1, ref.F1, 1e-6*(1+math.Abs(ref.F1))) ||
			!almostEq(inv.F2, ref.F2, 1e-6*(1+math.Abs(ref.F2))) ||
			!almostEq(inv.F3, ref.F3, 1e-6*(1+math.Abs(ref.F3))) {
			t.Fatalf("invariants changed: %+v vs %+v (scale=%v)", inv, ref, scale)
		}
	}
}

func TestInvariantsDiscriminate(t *testing.T) {
	// Different shapes must give different invariants.
	cube := InvariantsOf(OfMesh(geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))).Central())
	slab := InvariantsOf(OfMesh(geom.Box(geom.V(0, 0, 0), geom.V(4, 2, 0.25))).Central())
	if almostEq(cube.F1, slab.F1, 1e-6) {
		t.Error("cube and slab have identical F1")
	}
}

func TestHigherOrderInvariantsInvariance(t *testing.T) {
	base := lShape()
	ref := HigherOrderInvariants(OfMesh(base).Central())
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 40; i++ {
		m := base.Clone()
		m.ScaleUniform(0.5 + rng.Float64()*3)
		m.Rotate(randomRotation(rng))
		m.Translate(geom.V(rng.NormFloat64()*5, rng.NormFloat64()*5, rng.NormFloat64()*5))
		got := HigherOrderInvariants(OfMesh(m).Central())
		for k := range ref {
			if !almostEq(got[k], ref[k], 1e-5*(1+math.Abs(ref[k]))) {
				t.Fatalf("higher-order invariant %d changed: %v vs %v", k, got[k], ref[k])
			}
		}
	}
}

func TestScaleInvariantZeroVolume(t *testing.T) {
	if got := ScaleInvariant(&Set{}, 2, 0, 0); got != 0 {
		t.Errorf("zero-volume scale invariant = %v", got)
	}
}
