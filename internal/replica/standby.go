package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"threedess/internal/shapedb"
)

// Paths of the replication protocol endpoints (served by internal/server,
// consumed here; kept in one place so the two sides cannot drift).
const (
	StatePath  = "/api/replication/state"
	StreamPath = "/api/replication/stream"
	FencePath  = "/api/replication/fence"
)

// PrimaryHeader is set on "not primary" rejections and carries the
// advertised URL of the node that is, so clients and standbys can
// re-resolve without a discovery service.
const PrimaryHeader = "X-Replica-Primary"

// SecretHeader carries the shared replication secret on every protocol
// request (state/stream/fence). A primary configured with a peer secret
// refuses requests without the matching value, keeping the journal stream
// and the fencing endpoint away from arbitrary clients that can reach the
// API port.
const SecretHeader = "X-Replica-Secret"

// Stream response headers: the epoch and committed offset the returned
// bytes were read against, and the primary's fencing term.
const (
	EpochHeader     = "X-Repl-Epoch"
	CommittedHeader = "X-Repl-Committed"
	TermHeader      = "X-Repl-Term"
)

// StandbyConfig tunes the standby loop. Zero values take the defaults.
type StandbyConfig struct {
	// Heartbeat is the cadence of contact with the primary: the long-poll
	// window of stream requests and the retry pause after a failure.
	Heartbeat time.Duration
	// FailoverAfter is the failover budget: how long the primary may be
	// silent before the standby starts promotion. It should cover several
	// heartbeats so one dropped poll doesn't trigger a failover.
	FailoverAfter time.Duration
	// ChunkBytes caps one stream pull (default 1 MiB).
	ChunkBytes int
	// Transport overrides the HTTP transport (the chaos suite injects
	// network faults here).
	Transport http.RoundTripper
	// Secret is sent in the X-Replica-Secret header of every protocol
	// request. Must match the primary's configured peer secret (empty on
	// both sides = open trusted-network mode).
	Secret string
	// MarkerDir, when set, is where the applied-offset marker file is
	// written (on epoch changes, promotion, and drain), letting a
	// restarted standby resume streaming instead of re-bootstrapping.
	MarkerDir string
	// OnPromote is called once after this standby promotes itself.
	OnPromote func(term int64)
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c StandbyConfig) withDefaults() StandbyConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = 500 * time.Millisecond
	}
	if c.FailoverAfter <= 0 {
		c.FailoverAfter = 6 * c.Heartbeat
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 1 << 20
	}
	return c
}

// Standby pulls the primary's journal into db, tracks lag, and promotes
// itself (behind the fencing handshake) when the primary goes silent past
// the failover budget. One Standby drives one database.
type Standby struct {
	db   *shapedb.DB
	node *Node
	cfg  StandbyConfig
	http *http.Client

	// epoch is the primary journal incarnation being streamed (0 =
	// unknown, forces a state fetch + bootstrap decision), applied the
	// local journal length — the byte-identical-prefix invariant makes
	// these two numbers the entire replication state.
	epoch   int64
	applied int64

	cancel context.CancelFunc
	done   chan struct{}
}

// errEpochChanged is the internal signal that the primary's journal
// identity moved and the standby must re-handshake.
var errEpochChanged = errors.New("replica: primary epoch changed")

// errNotPrimary is returned when the polled node refuses the stream
// because it is not the primary.
var errNotPrimary = errors.New("replica: peer is not primary")

// NewStandby wires a standby over db and node (built with
// NewStandbyNode). If a marker file exists in
// cfg.MarkerDir and its epoch still matches the primary, streaming resumes
// from the local journal's length; otherwise the first contact bootstraps.
func NewStandby(db *shapedb.DB, node *Node, cfg StandbyConfig) *Standby {
	cfg = cfg.withDefaults()
	s := &Standby{
		db:   db,
		node: node,
		cfg:  cfg,
		http: &http.Client{Transport: cfg.Transport},
		done: make(chan struct{}),
	}
	// The local journal length is authoritative for the applied offset (a
	// crash mid-append was already truncated away by recovery); the marker
	// only contributes the primary epoch those bytes belong to.
	s.applied = db.ReplState().Committed
	if m, ok := LoadMarker(cfg.MarkerDir); ok {
		s.epoch = m.Epoch
	}
	return s
}

// Start launches the standby loop. Stop must be called before the database
// is closed.
func (s *Standby) Start(ctx context.Context) {
	ctx, s.cancel = context.WithCancel(ctx)
	go func() {
		defer close(s.done)
		s.run(ctx)
	}()
}

// Stop halts the loop, then drains: one final bounded catch-up pull (so a
// graceful shutdown doesn't strand committed frames on the primary) and a
// synced marker write recording the applied offset. The ctx bounds the
// drain, not the halt.
func (s *Standby) Stop(ctx context.Context) error {
	if s.cancel != nil {
		s.cancel()
		<-s.done
	}
	return s.Drain(ctx)
}

// Drain performs the final flush of the replication stream: while the
// primary is reachable and has committed frames past our applied offset,
// pull and apply them; then durably write the applied-offset marker. Safe
// to call on a promoted node (it only writes the marker).
func (s *Standby) Drain(ctx context.Context) error {
	if s.node.Role() == RoleStandby {
		for ctx.Err() == nil {
			st, err := s.fetchState(ctx)
			if err != nil || st.Epoch != s.epoch || st.Committed <= s.applied {
				break
			}
			if err := s.streamOnce(ctx, 0); err != nil {
				break
			}
		}
	}
	return s.writeMarker(true)
}

// run is the standby loop: handshake with the primary, stream frames, and
// watch the failover budget.
func (s *Standby) run(ctx context.Context) {
	for ctx.Err() == nil && s.node.Role() == RoleStandby {
		if err := s.iterate(ctx); err != nil {
			s.checkFailover(ctx)
			s.sleep(ctx, s.cfg.Heartbeat)
		}
	}
}

// iterate performs one handshake + stream session. It returns an error
// when the primary is unreachable or refused us (the caller then weighs
// failover); epoch changes and retargets are handled internally and
// surface as a nil error so the loop re-enters immediately.
func (s *Standby) iterate(ctx context.Context) error {
	st, err := s.fetchState(ctx)
	if err != nil {
		return err
	}
	s.node.markContact()
	if st.Term > s.node.Term() {
		s.node.adoptTerm(st.Term, st.Primary)
	}
	if st.Role != RolePrimary.String() {
		// We are polling a non-primary (it stepped down, or we were
		// misconfigured): follow its pointer if it has one.
		if st.Primary != "" && st.Primary != s.node.PrimaryURL() {
			s.logf("replica: peer is %s, following primary pointer to %s", st.Role, st.Primary)
			s.node.adoptTerm(s.node.Term(), st.Primary)
			return nil
		}
		return errNotPrimary
	}
	if st.Epoch == 0 {
		return fmt.Errorf("replica: primary has no durable journal (in-memory store cannot be replicated)")
	}
	if st.Epoch != s.epoch {
		// Handshake: unfamiliar epoch (first contact, primary restart, or
		// compaction). Discard the local copy and bootstrap from zero —
		// within one epoch bytes never change, across epochs nothing is
		// assumed.
		s.logf("replica: bootstrapping from %s (epoch %d, committed %d)", s.node.PrimaryURL(), st.Epoch, st.Committed)
		s.node.resetCaughtUp()
		if err := s.db.ResetReplica(); err != nil {
			return fmt.Errorf("replica: resetting local store for bootstrap: %w", err)
		}
		s.applied = 0
		s.epoch = st.Epoch
		if err := s.writeMarker(false); err != nil {
			s.logf("replica: writing marker: %v", err)
		}
	}
	for ctx.Err() == nil && s.node.Role() == RoleStandby {
		if err := s.streamOnce(ctx, s.cfg.Heartbeat); err != nil {
			if errors.Is(err, errEpochChanged) {
				return nil // re-handshake immediately
			}
			return err
		}
	}
	return nil
}

// streamOnce pulls one chunk (long-polling up to wait when the primary has
// nothing new), applies it, and publishes progress.
func (s *Standby) streamOnce(ctx context.Context, wait time.Duration) error {
	chunk, committed, err := s.fetchChunk(ctx, wait)
	if err != nil {
		return err
	}
	s.node.markContact()
	if len(chunk) > 0 {
		newOff, err := s.db.ApplyReplicated(s.applied, chunk)
		if err != nil {
			// A diverged or corrupt chunk: force a clean re-handshake
			// rather than guessing.
			s.logf("replica: applying replicated chunk at %d: %v (re-bootstrapping)", s.applied, err)
			s.epoch = 0
			return errEpochChanged
		}
		s.applied = newOff
	}
	s.node.setProgress(s.epoch, s.applied, committed, true)
	return nil
}

// checkFailover promotes this standby if the primary has been silent past
// the failover budget AND this standby has fully caught up at least once
// in the current epoch. The caught-up precondition is load-bearing: a
// standby that never finished its bootstrap holds only a prefix of the
// journal, and while every *acknowledged* write is inside that prefix once
// sync-acks are active, writes acknowledged before this standby first
// attached are not — promoting would serve a store missing acknowledged
// data. Such a standby stays read-only and keeps retrying instead.
func (s *Standby) checkFailover(ctx context.Context) {
	since, ever := s.node.sinceContact()
	if !ever || since < s.cfg.FailoverAfter {
		return
	}
	if !s.node.CaughtUp() {
		s.logf("replica: primary silent for %s but standby never caught up; refusing promotion", since.Round(time.Millisecond))
		return
	}
	s.promote(ctx)
}

// promote runs the fencing handshake and, if it wins, flips this node to
// primary. The handshake offers the old primary term+1: a reachable
// primary steps down before we take writes (never two writable nodes that
// can talk); a refusal means a newer primary exists and we fall in behind
// it; only silence lets us proceed unilaterally — and then the old
// primary, cut off from standby acks, cannot acknowledge writes anyway.
func (s *Standby) promote(ctx context.Context) {
	newTerm := s.node.Term() + 1
	resp, err := s.fence(ctx, newTerm)
	if err == nil && !resp.Accepted {
		s.logf("replica: promotion to term %d refused (current term %d, primary %s)", newTerm, resp.Term, resp.Primary)
		s.node.adoptTerm(resp.Term, resp.Primary)
		return
	}
	if err != nil {
		s.logf("replica: old primary unreachable during fence (%v); promoting unilaterally", err)
	}
	if !s.node.Promote(newTerm) {
		s.logf("replica: promotion to term %d lost a race", newTerm)
		return
	}
	s.logf("replica: PROMOTED to primary at term %d (applied offset %d)", newTerm, s.applied)
	if err := s.writeMarker(true); err != nil {
		s.logf("replica: writing marker after promotion: %v", err)
	}
	if s.cfg.OnPromote != nil {
		s.cfg.OnPromote(newTerm)
	}
}

// --- HTTP plumbing ---

func (s *Standby) fetchState(ctx context.Context) (StateResponse, error) {
	var out StateResponse
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Heartbeat+2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.node.PrimaryURL()+StatePath, nil)
	if err != nil {
		return out, err
	}
	s.authorize(req)
	resp, err := s.http.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return out, fmt.Errorf("replica: state fetch: HTTP %d: %s", resp.StatusCode, body)
	}
	return out, json.NewDecoder(resp.Body).Decode(&out)
}

// fetchChunk pulls raw frames [applied, committed) from the primary. A 409
// means our epoch is stale (errEpochChanged); a 503 with a primary header
// retargets. The request's off parameter doubles as our durable-apply
// attestation — the primary's sync-ack gate reads it.
func (s *Standby) fetchChunk(ctx context.Context, wait time.Duration) ([]byte, int64, error) {
	ctx, cancel := context.WithTimeout(ctx, wait+10*time.Second)
	defer cancel()
	url := fmt.Sprintf("%s%s?epoch=%d&off=%d&max=%d&wait=%d",
		s.node.PrimaryURL(), StreamPath, s.epoch, s.applied, s.cfg.ChunkBytes, wait.Milliseconds())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, 0, err
	}
	s.authorize(req)
	resp, err := s.http.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		chunk, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, 0, err
		}
		committed, _ := strconv.ParseInt(resp.Header.Get(CommittedHeader), 10, 64)
		if term, err := strconv.ParseInt(resp.Header.Get(TermHeader), 10, 64); err == nil && term > s.node.Term() {
			s.node.adoptTerm(term, "")
		}
		return chunk, committed, nil
	case http.StatusConflict:
		s.epoch = 0
		io.Copy(io.Discard, resp.Body)
		return nil, 0, errEpochChanged
	default:
		if p := resp.Header.Get(PrimaryHeader); p != "" && p != s.node.PrimaryURL() {
			s.node.adoptTerm(s.node.Term(), p)
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, 0, fmt.Errorf("replica: stream: HTTP %d: %s", resp.StatusCode, body)
	}
}

func (s *Standby) fence(ctx context.Context, term int64) (FenceResponse, error) {
	var out FenceResponse
	ctx, cancel := context.WithTimeout(ctx, s.cfg.Heartbeat+2*time.Second)
	defer cancel()
	body, err := json.Marshal(FenceRequest{Term: term, Primary: s.node.SelfURL()})
	if err != nil {
		return out, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, s.node.PrimaryURL()+FencePath, bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/json")
	s.authorize(req)
	resp, err := s.http.Do(req)
	if err != nil {
		return out, err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return out, err
	}
	return out, nil
}

// authorize stamps the shared replication secret on a protocol request.
func (s *Standby) authorize(req *http.Request) {
	if s.cfg.Secret != "" {
		req.Header.Set(SecretHeader, s.cfg.Secret)
	}
}

func (s *Standby) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func (s *Standby) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// --- applied-offset marker ---

// MarkerName is the file in the data directory recording the replication
// position a cleanly-stopped standby left off at.
const MarkerName = "replica.state"

// Marker is the durable record of a standby's replication position: which
// primary epoch its local journal bytes belong to and how far they reach.
// The local journal itself is authoritative for the byte count (crash
// recovery may truncate a torn tail below Applied); the epoch is what a
// restart cannot reconstruct locally.
type Marker struct {
	Epoch   int64  `json:"epoch"`
	Applied int64  `json:"applied"`
	Term    int64  `json:"term"`
	Primary string `json:"primary"`
}

// LoadMarker reads the marker from dir ("" or missing file = none).
func LoadMarker(dir string) (Marker, bool) {
	var m Marker
	if dir == "" {
		return m, false
	}
	data, err := os.ReadFile(filepath.Join(dir, MarkerName))
	if err != nil {
		return m, false
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, false
	}
	return m, m.Epoch != 0
}

// writeMarker persists the current position atomically (write temp,
// rename); sync additionally fsyncs the file before the rename, used for
// the final drain write where the marker is the point of the exercise.
func (s *Standby) writeMarker(sync bool) error {
	if s.cfg.MarkerDir == "" {
		return nil
	}
	m := Marker{Epoch: s.epoch, Applied: s.applied, Term: s.node.Term(), Primary: s.node.PrimaryURL()}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	path := filepath.Join(s.cfg.MarkerDir, MarkerName)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
