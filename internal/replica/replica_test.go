package replica

import (
	"context"
	"errors"
	"testing"
	"time"

	"threedess/internal/shapedb"
)

func TestFenceAndPromoteTerms(t *testing.T) {
	p := NewPrimaryNode("http://a")
	if p.Role() != RolePrimary || p.Term() != 1 {
		t.Fatalf("primary starts role=%v term=%d", p.Role(), p.Term())
	}

	// Equal or lower terms never fence.
	if resp := p.Fence(1, "http://b"); resp.Accepted {
		t.Error("fence at equal term accepted")
	}
	if resp := p.Fence(0, "http://b"); resp.Accepted {
		t.Error("fence at lower term accepted")
	}
	if p.Role() != RolePrimary {
		t.Fatal("refused fences demoted the primary")
	}

	// A higher term steps the primary down and re-points it.
	resp := p.Fence(2, "http://b")
	if !resp.Accepted || p.Role() != RoleStandby || p.Term() != 2 || p.PrimaryURL() != "http://b" {
		t.Fatalf("fence(2) = %+v; node role=%v term=%d primary=%s", resp, p.Role(), p.Term(), p.PrimaryURL())
	}
	if p.Status().StepDowns != 1 {
		t.Errorf("StepDowns = %d, want 1", p.Status().StepDowns)
	}

	s := NewStandbyNode("http://b", "http://a")
	if !s.Promote(1) {
		t.Fatal("standby promotion at term 1 refused")
	}
	if s.Role() != RolePrimary || s.PrimaryURL() != "http://b" {
		t.Fatalf("after promote: role=%v primary=%s", s.Role(), s.PrimaryURL())
	}
	// A promoted node cannot promote again, and a stale term never wins.
	if s.Promote(2) {
		t.Error("promoted a node that is already primary")
	}

	// Promotion loses to a fence that installed a newer term first.
	s2 := NewStandbyNode("http://c", "http://a")
	s2.Fence(5, "http://d")
	if s2.Promote(3) {
		t.Error("promotion at term 3 won against installed term 5 — two writable primaries possible")
	}
}

func TestWaitAckedGating(t *testing.T) {
	n := NewPrimaryNode("http://a")
	st := shapedb.ReplState{Epoch: 7, Committed: 100}
	cur := func() shapedb.ReplState { return st }

	// No standby ever attached: writes ack immediately.
	if err := n.WaitAcked(context.Background(), st, cur, 10*time.Millisecond); err != nil {
		t.Fatalf("unattached WaitAcked = %v", err)
	}

	// Attached but behind: the wait times out.
	n.ObserveAck(7, 50)
	if err := n.WaitAcked(context.Background(), st, cur, 20*time.Millisecond); !errors.Is(err, ErrAckTimeout) {
		t.Fatalf("behind WaitAcked = %v, want ErrAckTimeout", err)
	}

	// A concurrent ack covering the offset releases the wait.
	done := make(chan error, 1)
	go func() {
		done <- n.WaitAcked(context.Background(), st, cur, 2*time.Second)
	}()
	time.Sleep(5 * time.Millisecond)
	n.ObserveAck(7, 100)
	if err := <-done; err != nil {
		t.Fatalf("acked WaitAcked = %v", err)
	}

	// Already covered: returns without blocking.
	if err := n.WaitAcked(context.Background(), st, cur, time.Millisecond); err != nil {
		t.Fatalf("covered WaitAcked = %v", err)
	}

	// Context cancellation beats the timeout.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := n.WaitAcked(ctx, shapedb.ReplState{Epoch: 7, Committed: 999}, cur, time.Second); !errors.Is(err, ErrAckCanceled) {
		t.Fatalf("canceled WaitAcked = %v, want ErrAckCanceled", err)
	}
}

func TestWaitAckedAcrossEpochChange(t *testing.T) {
	n := NewPrimaryNode("http://a")
	target := shapedb.ReplState{Epoch: 7, Committed: 100}
	// A compaction replaced the journal (epoch 9) after the write landed;
	// the standby re-bootstrapped and attests full coverage of the new
	// file, which contains every live record including the write.
	cur := func() shapedb.ReplState { return shapedb.ReplState{Epoch: 9, Committed: 40} }
	n.ObserveAck(9, 40)
	if err := n.WaitAcked(context.Background(), target, cur, 20*time.Millisecond); err != nil {
		t.Fatalf("cross-epoch WaitAcked = %v", err)
	}
	// Not yet caught up with the new file: keep waiting.
	n2 := NewPrimaryNode("http://a")
	n2.ObserveAck(9, 10)
	if err := n2.WaitAcked(context.Background(), target, cur, 20*time.Millisecond); !errors.Is(err, ErrAckTimeout) {
		t.Fatalf("cross-epoch behind WaitAcked = %v, want ErrAckTimeout", err)
	}
}

func TestPromoteClearsAckLatch(t *testing.T) {
	n := NewStandbyNode("http://b", "http://a")
	n.ObserveAck(1, 10) // some peer streamed from us while we were standby
	if !n.Promote(2) {
		t.Fatal("promotion refused")
	}
	if n.StandbyAttached() {
		t.Error("promotion kept the ack latch: the new primary would wait on a standby it does not have")
	}
	st := shapedb.ReplState{Epoch: 3, Committed: 10}
	if err := n.WaitAcked(context.Background(), st, func() shapedb.ReplState { return st }, 10*time.Millisecond); err != nil {
		t.Fatalf("freshly promoted WaitAcked = %v", err)
	}
}

func TestCaughtUpLatch(t *testing.T) {
	n := NewStandbyNode("http://b", "http://a")
	if n.CaughtUp() {
		t.Fatal("fresh standby reports caught up")
	}
	n.setProgress(1, 50, 100, true)
	if n.CaughtUp() {
		t.Fatal("behind standby reports caught up")
	}
	n.setProgress(1, 100, 100, true)
	if !n.CaughtUp() {
		t.Fatal("standby at committed offset not caught up")
	}
	// The latch survives falling behind again (new writes arriving), but
	// resets on re-bootstrap.
	n.setProgress(1, 100, 200, true)
	if !n.CaughtUp() {
		t.Fatal("latch dropped by new primary writes")
	}
	n.resetCaughtUp()
	if n.CaughtUp() {
		t.Fatal("latch survived reset")
	}
}

func TestMarkerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := &Standby{
		node:    NewStandbyNode("http://b", "http://a"),
		cfg:     StandbyConfig{MarkerDir: dir}.withDefaults(),
		epoch:   42,
		applied: 1234,
	}
	if err := s.writeMarker(true); err != nil {
		t.Fatal(err)
	}
	m, ok := LoadMarker(dir)
	if !ok || m.Epoch != 42 || m.Applied != 1234 || m.Primary != "http://a" {
		t.Fatalf("LoadMarker = %+v, %v", m, ok)
	}
	if _, ok := LoadMarker(t.TempDir()); ok {
		t.Error("marker loaded from empty dir")
	}
	if _, ok := LoadMarker(""); ok {
		t.Error("marker loaded from blank dir")
	}
}
