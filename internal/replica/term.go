package replica

import "sync"

// TermFence is the reusable core of the fencing-token machinery the
// failover protocol runs on (see Node.Fence): a monotonically advancing
// term paired with the identity of its holder. Any distributed procedure
// that must survive a superseded driver — promotion, and now live shard
// rebalancing — funnels its term decisions through one of these, so the
// acceptance rule is written (and tested) exactly once:
//
//   - a higher term always wins and adopts its holder;
//   - the current term is idempotent for the SAME holder (a crashed driver
//     that resumed, or a retried push);
//   - the current term from a DIFFERENT holder is rejected — two drivers
//     at one term means a split brain, and first-writer-wins keeps exactly
//     one of them alive;
//   - a lower term is always rejected (the stale driver learns it was
//     superseded from the Current() value it gets back).
type TermFence struct {
	mu     sync.Mutex
	term   int64
	holder string
}

// Observe applies the acceptance rule to (term, holder) and reports
// whether the caller holds the fence afterwards. On acceptance the fence
// adopts the pair; on rejection it is unchanged.
func (f *TermFence) Observe(term int64, holder string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch {
	case term > f.term:
		f.term, f.holder = term, holder
		return true
	case term == f.term && holder == f.holder:
		return true
	default:
		return false
	}
}

// Current returns the fence's term and holder.
func (f *TermFence) Current() (int64, string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.term, f.holder
}
