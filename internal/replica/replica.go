// Package replica implements warm-standby replication for the shape
// database: a primary streams committed journal frames over HTTP to a
// standby that replays them into its own store and serves read-only
// queries, with automatic promotion on primary failure.
//
// The design in one paragraph: the journal is already an append-only,
// CRC-framed, fsync-before-ack log, so replication is log shipping of raw
// bytes — the standby's journal is a byte-for-byte prefix of the
// primary's, and progress is a single byte offset scoped by an epoch that
// changes whenever the file's identity does (restart, compaction). Writes
// on the primary are acknowledged only after the standby's next stream
// request attests it has durably applied them (the request's offset IS the
// ack), which is what makes "zero acknowledged-write loss" literal: any
// 2xx insert is on both disks before the client sees it. Failover is
// fencing-token based: the standby promotes after a heartbeat budget of
// silence, first offering the old primary a higher term; a reachable
// primary steps down (one writable node), and an unreachable-but-alive one
// is still harmless because without standby acks its own writes time out
// rather than acknowledge — the sync-ack rule doubles as the split-brain
// guard. A true network partition therefore costs availability on the old
// primary, never acknowledged data (CP, not AP).
package replica

import (
	"context"
	"errors"
	"sync"
	"time"

	"threedess/internal/shapedb"
)

// ErrAckTimeout is returned by WaitAcked when the standby did not attest
// the write within the budget. The write is journaled locally and will
// replicate when the standby returns; the caller should fail the request
// (not acknowledge it) and let the client retry under its idempotency key.
var ErrAckTimeout = errors.New("replica: write not replicated within ack budget")

// ErrAckCanceled is returned by WaitAcked when the request context ended
// before the standby attested the write.
var ErrAckCanceled = errors.New("replica: ack wait canceled")

// Role is a node's current replication role.
type Role int32

const (
	// RoleStandby replays the primary's journal and serves read-only
	// queries; mutating requests are refused with a pointer to the primary.
	RoleStandby Role = iota
	// RolePrimary accepts writes and serves the replication stream.
	RolePrimary
)

func (r Role) String() string {
	if r == RolePrimary {
		return "primary"
	}
	return "standby"
}

// Wire types of the replication protocol (JSON bodies; the stream itself
// is raw journal bytes with offsets in headers).

// StateResponse is GET /api/replication/state: who the node thinks it is
// and where its journal stands.
type StateResponse struct {
	Role      string `json:"role"`
	Term      int64  `json:"term"`
	Epoch     int64  `json:"epoch"`
	Committed int64  `json:"committed"`
	Advertise string `json:"advertise"`
	Primary   string `json:"primary"`
}

// FenceRequest is POST /api/replication/fence: the caller claims the
// primary role at Term, naming Primary as the new write endpoint. A node
// receiving a higher term than its own steps down (or stays standby) and
// accepts; an equal-or-lower term is refused, telling the caller it is
// stale.
type FenceRequest struct {
	Term    int64  `json:"term"`
	Primary string `json:"primary"`
}

// FenceResponse reports whether the fence took and the receiver's
// (possibly newer) term and primary, so a stale caller can resynchronize.
type FenceResponse struct {
	Accepted bool   `json:"accepted"`
	Term     int64  `json:"term"`
	Primary  string `json:"primary"`
}

// Status is the operator view served at /api/admin/replication.
type Status struct {
	Role    string `json:"role"`
	Term    int64  `json:"term"`
	Self    string `json:"self"`
	Primary string `json:"primary"`
	// Standby progress (meaningful when Role == "standby").
	Epoch         int64 `json:"epoch,omitempty"`
	Applied       int64 `json:"applied"`
	Committed     int64 `json:"committed"`
	Lag           int64 `json:"lag"`
	CaughtUp      bool  `json:"caught_up"`
	LastContactMS int64 `json:"last_contact_ms"`
	// StalenessMS bounds how old served reads may be: ms since the standby
	// last observed itself fully caught up (-1 = never; 0 on a primary).
	StalenessMS int64 `json:"staleness_ms"`
	Promotions    int64 `json:"promotions"`
	StepDowns     int64 `json:"step_downs"`
	// Primary-side ack tracking (meaningful when Role == "primary").
	StandbyAttached bool  `json:"standby_attached"`
	AckedOffset     int64 `json:"acked_offset"`
}

// Node is the replication identity and coordination state one process
// carries: its role, fencing term, who it believes the primary is, the
// standby's replay progress (updated by Standby), and the primary-side ack
// watermark (updated by the stream handler, waited on by write handlers).
// All methods are safe for concurrent use.
type Node struct {
	mu      sync.Mutex
	self    string
	role    Role
	term    int64
	primary string

	// Standby replay progress.
	epoch       int64
	applied     int64
	committed   int64
	caughtUp    bool
	lastContact time.Time
	// lastSynced is the last instant the standby observed itself fully
	// caught up with the primary's committed offset. It bounds read
	// staleness: every commit older than lastSynced is applied locally, so
	// data served from this standby is at most time.Since(lastSynced) old.
	lastSynced time.Time
	promotions int64
	stepDowns  int64

	// Primary-side ack watermark: the highest offset (within ackEpoch) a
	// standby has attested durable by requesting the stream from it.
	// attached latches once any standby has connected; until then the
	// primary runs standalone and sync-ack gating is off (there is no
	// standby to fail over to, so waiting would only block bring-up).
	attached bool
	ackEpoch int64
	ackOff   int64
	// ackWake is closed and replaced whenever the watermark moves, waking
	// every WaitAcked.
	ackWake chan struct{}
}

// NewPrimaryNode builds the node state for a process starting as primary,
// advertising self (the URL peers and clients should reach it at).
func NewPrimaryNode(self string) *Node {
	return &Node{self: self, role: RolePrimary, term: 1, primary: self, ackWake: make(chan struct{})}
}

// NewStandbyNode builds the node state for a process starting as standby
// of the primary at the given URL.
func NewStandbyNode(self, primary string) *Node {
	return &Node{self: self, role: RoleStandby, term: 0, primary: primary, ackWake: make(chan struct{})}
}

// Role returns the node's current role.
func (n *Node) Role() Role {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role
}

// Term returns the node's current fencing term.
func (n *Node) Term() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.term
}

// PrimaryURL returns the advertised URL of the node this node believes is
// primary (its own when it is the primary).
func (n *Node) PrimaryURL() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.primary
}

// SelfURL returns the node's own advertised URL.
func (n *Node) SelfURL() string { return n.self }

// Fence applies a peer's claim to the primary role at term. A term above
// the node's own is accepted: a primary steps down to standby (this is the
// fencing that prevents two writable primaries when the nodes can talk),
// a standby re-points at the new primary. An equal-or-lower term is
// refused — the caller is stale and should adopt the returned state.
func (n *Node) Fence(term int64, primary string) FenceResponse {
	n.mu.Lock()
	defer n.mu.Unlock()
	if term <= n.term {
		return FenceResponse{Accepted: false, Term: n.term, Primary: n.primary}
	}
	if n.role == RolePrimary {
		n.role = RoleStandby
		n.stepDowns++
	}
	n.term = term
	n.primary = primary
	return FenceResponse{Accepted: true, Term: n.term, Primary: n.primary}
}

// Promote flips a standby to primary at the given term. It refuses when
// the node is no longer a standby or the term is not an advance (a
// concurrent Fence installed a newer primary while this promotion was in
// flight — the promotion loses).
func (n *Node) Promote(term int64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role != RoleStandby || term <= n.term {
		return false
	}
	n.role = RolePrimary
	n.term = term
	n.primary = n.self
	n.promotions++
	// A freshly promoted primary has no standby yet: clear the ack state
	// so sync gating re-latches when one attaches.
	n.attached = false
	n.ackEpoch = 0
	n.ackOff = 0
	return true
}

// adoptTerm raises the node's term without changing role, used by the
// standby when it observes a newer term from the primary.
func (n *Node) adoptTerm(term int64, primary string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if term > n.term {
		n.term = term
		if primary != "" {
			n.primary = primary
		}
	}
}

// setProgress records the standby's replay position (called by Standby).
func (n *Node) setProgress(epoch, applied, committed int64, contact bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.epoch = epoch
	n.applied = applied
	n.committed = committed
	if applied >= committed {
		n.caughtUp = true
		if contact {
			// The primary just told us its committed offset and we have
			// applied all of it: our view is current as of this instant.
			n.lastSynced = time.Now()
		}
	}
	if contact {
		n.lastContact = time.Now()
	}
}

// Staleness bounds how old the data this node serves may be. A primary is
// never stale. A standby's bound is the time since it last observed itself
// fully caught up with the primary's committed offset; ok is false when it
// never has (bootstrap or mid-re-bootstrap — nothing can be promised).
func (n *Node) Staleness() (time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.role == RolePrimary {
		return 0, true
	}
	if n.lastSynced.IsZero() {
		return 0, false
	}
	return time.Since(n.lastSynced), true
}

// markContact refreshes the standby's last-contact clock without touching
// progress (a state poll that carried no new frames).
func (n *Node) markContact() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lastContact = time.Now()
}

// sinceContact reports how long ago the primary last answered, and whether
// it ever has.
func (n *Node) sinceContact() (time.Duration, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.lastContact.IsZero() {
		return 0, false
	}
	return time.Since(n.lastContact), true
}

// resetCaughtUp clears the caught-up latch (the standby is about to
// re-bootstrap and will be stale until the new snapshot is applied).
func (n *Node) resetCaughtUp() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.caughtUp = false
}

// CaughtUp reports whether the standby has at some point fully caught up
// with the primary's committed offset (the /readyz gate: a standby serving
// from a half-applied snapshot would answer queries from a store missing
// acknowledged data).
func (n *Node) CaughtUp() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.caughtUp
}

// ObserveAck records a standby's stream request at (epoch, off) — the
// standby's attestation that bytes [0, off) of the epoch's journal are
// durably applied on its side. Called by the primary's stream handler.
func (n *Node) ObserveAck(epoch, off int64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.attached = true
	if epoch != n.ackEpoch {
		n.ackEpoch = epoch
		n.ackOff = off
	} else if off > n.ackOff {
		n.ackOff = off
	} else {
		return
	}
	close(n.ackWake)
	n.ackWake = make(chan struct{})
}

// StandbyAttached reports whether a standby has ever connected to this
// node's stream. Sync-ack gating is inert until it has.
func (n *Node) StandbyAttached() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.attached
}

func (n *Node) ackState() (epoch, off int64, wake <-chan struct{}) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ackEpoch, n.ackOff, n.ackWake
}

// Acked reports whether the write that left the journal at target is
// durably applied on the standby. cur re-reads the journal's live state:
// when a compaction has changed the epoch since the write, the original
// offset is meaningless, so the conservative condition is "the standby has
// fully caught up with the current file" — correct because a compacted
// journal contains every live record, and rare because compactions are.
func acked(ackEpoch, ackOff int64, target, cur shapedb.ReplState) bool {
	if ackEpoch == target.Epoch {
		return ackOff >= target.Committed
	}
	return ackEpoch == cur.Epoch && ackOff >= cur.Committed
}

// WaitAcked blocks until the standby has durably applied the write that
// left the journal at target, the context is done, or the timeout expires.
// It returns nil on ack, the context error, or ErrAckTimeout. cur reports
// the journal's current state (see acked). A node with no standby ever
// attached returns nil immediately — sync gating begins at first attach.
func (n *Node) WaitAcked(ctx context.Context, target shapedb.ReplState, cur func() shapedb.ReplState, timeout time.Duration) error {
	if !n.StandbyAttached() {
		return nil
	}
	var timeoutCh <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutCh = timer.C
	}
	for {
		ackEpoch, ackOff, wake := n.ackState()
		if acked(ackEpoch, ackOff, target, cur()) {
			return nil
		}
		select {
		case <-wake:
		case <-ctx.Done():
			return ErrAckCanceled
		case <-timeoutCh:
			return ErrAckTimeout
		}
	}
}

// Status snapshots the node for the admin endpoint.
func (n *Node) Status() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := Status{
		Role:            n.role.String(),
		Term:            n.term,
		Self:            n.self,
		Primary:         n.primary,
		Epoch:           n.epoch,
		Applied:         n.applied,
		Committed:       n.committed,
		Lag:             n.committed - n.applied,
		CaughtUp:        n.caughtUp,
		Promotions:      n.promotions,
		StepDowns:       n.stepDowns,
		StandbyAttached: n.attached,
		AckedOffset:     n.ackOff,
	}
	if !n.lastContact.IsZero() {
		st.LastContactMS = time.Since(n.lastContact).Milliseconds()
	} else {
		st.LastContactMS = -1
	}
	if n.role == RolePrimary {
		st.StalenessMS = 0
	} else if !n.lastSynced.IsZero() {
		st.StalenessMS = time.Since(n.lastSynced).Milliseconds()
	} else {
		st.StalenessMS = -1
	}
	return st
}
