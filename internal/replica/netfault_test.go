package replica

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func faultClient(t *testing.T) (*FaultRT, *httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Write([]byte("ok"))
	}))
	t.Cleanup(srv.Close)
	return NewFaultRT(nil), srv, &hits
}

func TestFaultRTPassThrough(t *testing.T) {
	rt, srv, hits := faultClient(t)
	c := &http.Client{Transport: rt}
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if hits.Load() != 1 || rt.Requests() != 1 {
		t.Errorf("hits=%d requests=%d, want 1/1", hits.Load(), rt.Requests())
	}
}

func TestFaultRTDropAndPartition(t *testing.T) {
	rt, srv, hits := faultClient(t)
	c := &http.Client{Transport: rt}

	rt.DropNext(2)
	for i := 0; i < 2; i++ {
		if _, err := c.Get(srv.URL); !errors.Is(err, ErrNetFault) {
			t.Fatalf("dropped request %d err = %v, want ErrNetFault", i, err)
		}
	}
	if resp, err := c.Get(srv.URL); err != nil {
		t.Fatalf("post-drop request failed: %v", err)
	} else {
		resp.Body.Close()
	}
	if hits.Load() != 1 {
		t.Errorf("server hits = %d, want 1 (drops must fail before the wire)", hits.Load())
	}

	rt.SetPartition(true)
	for i := 0; i < 3; i++ {
		if _, err := c.Get(srv.URL); !errors.Is(err, ErrNetFault) {
			t.Fatalf("partitioned request err = %v, want ErrNetFault", err)
		}
	}
	rt.SetPartition(false)
	if resp, err := c.Get(srv.URL); err != nil {
		t.Fatalf("healed request failed: %v", err)
	} else {
		resp.Body.Close()
	}
}

func TestFaultRTDelay(t *testing.T) {
	rt, srv, _ := faultClient(t)
	c := &http.Client{Transport: rt}
	rt.SetDelay(60 * time.Millisecond)
	start := time.Now()
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Errorf("delayed request returned in %s", el)
	}
}

func TestFaultRTDuplicate(t *testing.T) {
	rt, srv, hits := faultClient(t)
	c := &http.Client{Transport: rt}
	rt.DuplicateNext(1)
	resp, err := c.Post(srv.URL, "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Errorf("duplicate delivery body = %q", body)
	}
	if hits.Load() != 2 {
		t.Errorf("server hits = %d, want 2 (one request delivered twice)", hits.Load())
	}
	// Disarmed after one request.
	resp, err = c.Post(srv.URL, "text/plain", strings.NewReader("payload"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hits.Load() != 3 {
		t.Errorf("server hits = %d, want 3", hits.Load())
	}
}
