package replica

import (
	"errors"
	"io"
	"net/http"
	"sync"
	"time"
)

// FaultRT is the network-side sibling of faultfs: an http.RoundTripper
// that wraps a real transport and injects the failure modes a replication
// link sees in production — dropped requests, added latency, a full
// partition, and duplicated deliveries. The chaos suite drives the
// replication transport (and the failover client) through one of these to
// prove the protocol survives each mode; production code never constructs
// one.
//
// All knobs are safe for concurrent use and take effect on the next
// request. Drop and duplicate are armed counters (fail/duplicate the next
// N requests) rather than probabilities, so tests are deterministic.
type FaultRT struct {
	// Inner is the real transport (nil = http.DefaultTransport).
	Inner http.RoundTripper

	mu          sync.Mutex
	partitioned bool
	delay       time.Duration
	dropNext    int
	dupNext     int
	requests    int64
}

// ErrNetFault is the injected connection-level failure for dropped
// requests and partitions; it reaches callers exactly like a refused
// connection (a *url.Error wrapping this).
var ErrNetFault = errors.New("replica: injected network fault")

// NewFaultRT wraps inner (nil = http.DefaultTransport) with an unarmed
// injector: until a knob is set it is a transparent pass-through counter.
func NewFaultRT(inner http.RoundTripper) *FaultRT {
	return &FaultRT{Inner: inner}
}

// SetPartition severs (true) or heals (false) the link: while severed,
// every request fails without reaching the wire.
func (f *FaultRT) SetPartition(p bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitioned = p
}

// SetDelay adds fixed latency before every request is sent (0 disables).
func (f *FaultRT) SetDelay(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.delay = d
}

// DropNext arms the injector to fail the next n requests at the
// connection level.
func (f *FaultRT) DropNext(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropNext = n
}

// DuplicateNext arms the injector to deliver each of the next n requests
// twice: the first response is discarded and the second returned, the
// wire-level duplicate an at-least-once transport produces. Against a
// mutating endpoint this is exactly the double-delivery the idempotency
// keys exist to absorb. Requests with a body are replayed from a buffered
// copy.
func (f *FaultRT) DuplicateNext(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dupNext = n
}

// Requests returns how many requests have been attempted through the
// injector (including dropped ones).
func (f *FaultRT) Requests() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.requests
}

// plan consumes the armed state for one request.
func (f *FaultRT) plan() (drop bool, dup bool, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.requests++
	if f.partitioned {
		return true, false, 0
	}
	if f.dropNext > 0 {
		f.dropNext--
		return true, false, 0
	}
	if f.dupNext > 0 {
		f.dupNext--
		return false, true, f.delay
	}
	return false, false, f.delay
}

// RoundTrip implements http.RoundTripper.
func (f *FaultRT) RoundTrip(req *http.Request) (*http.Response, error) {
	drop, dup, delay := f.plan()
	if drop {
		return nil, ErrNetFault
	}
	if delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-req.Context().Done():
			t.Stop()
			return nil, req.Context().Err()
		case <-t.C:
		}
	}
	inner := f.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	if !dup {
		return inner.RoundTrip(req)
	}
	// Duplicate delivery: buffer the body, send twice, surface the second
	// response (the one the duplicate-suppression machinery must make
	// harmless).
	var body []byte
	if req.Body != nil {
		var err error
		body, err = io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
	}
	first, err := inner.RoundTrip(cloneRequest(req, body))
	if err == nil {
		io.Copy(io.Discard, first.Body)
		first.Body.Close()
	}
	return inner.RoundTrip(cloneRequest(req, body))
}

func cloneRequest(req *http.Request, body []byte) *http.Request {
	c := req.Clone(req.Context())
	if body != nil {
		c.Body = io.NopCloser(newByteReader(body))
		c.ContentLength = int64(len(body))
	}
	return c
}

// newByteReader avoids sharing read state between the two deliveries.
func newByteReader(b []byte) io.Reader {
	cp := make([]byte, len(b))
	copy(cp, b)
	return &byteReader{data: cp}
}

type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}
