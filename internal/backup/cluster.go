package backup

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"threedess/internal/faultfs"
	"threedess/internal/scatter"
	"threedess/internal/shapedb"
)

// ClusterManifest stamps a whole-cluster archive: how many shard
// archives it holds and the ring epoch the fleet was fenced at while
// they were taken.
type ClusterManifest struct {
	FormatVersion int      `json:"format_version"`
	RingEpoch     int64    `json:"ring_epoch"`
	Shards        []string `json:"shards"` // subdirectory per shard, in index order
}

const clusterManifestName = "cluster.json"

func shardDirName(i int) string { return fmt.Sprintf("shard-%02d", i) }

// BackupCluster captures every shard of a cluster into per-shard
// subdirectories under dir, all within one ring-epoch fence: the fleet
// must agree on a non-transitioning ring epoch before the first byte is
// read AND still hold that same epoch after the last shard finishes.
// Any rebalance racing the backup flips the epoch and fails the run,
// so a cluster archive can never mix records from two ring layouts.
// Per-shard captures are incremental exactly like BackupNode, and a
// killed run resumes the same way.
func BackupCluster(fsys faultfs.FS, srcs []Source, dir string) (*ClusterManifest, error) {
	if len(srcs) == 0 {
		return nil, fmt.Errorf("backup: cluster backup needs at least one shard source")
	}
	fence, err := ringFence(srcs)
	if err != nil {
		return nil, err
	}
	cm := &ClusterManifest{FormatVersion: FormatVersion, RingEpoch: fence}
	for i, src := range srcs {
		sub := shardDirName(i)
		if _, err := BackupNode(fsys, src, filepath.Join(dir, sub)); err != nil {
			return nil, fmt.Errorf("backup: shard %d: %w", i, err)
		}
		cm.Shards = append(cm.Shards, sub)
	}
	// Re-probe: if the ring moved while shards were streaming, some
	// archives predate the move and some postdate it — refuse the set.
	after, err := ringFence(srcs)
	if err != nil {
		return nil, err
	}
	if after != fence {
		return nil, fmt.Errorf("backup: ring epoch moved during cluster backup (%d -> %d); rerun", fence, after)
	}
	if err := writeClusterManifest(fsys, dir, cm); err != nil {
		return nil, err
	}
	return cm, nil
}

// ringFence probes every shard and returns the single ring epoch the
// fleet agrees on, refusing a transitioning or split fleet.
func ringFence(srcs []Source) (int64, error) {
	var epoch int64
	for i, src := range srcs {
		st, err := src.State()
		if err != nil {
			return 0, fmt.Errorf("backup: probing shard %d: %w", i, err)
		}
		if st.RingTransitioning {
			return 0, fmt.Errorf("backup: shard %d is mid-rebalance (ring epoch %d); wait for it to settle", i, st.RingEpoch)
		}
		if i == 0 {
			epoch = st.RingEpoch
		} else if st.RingEpoch != epoch {
			return 0, fmt.Errorf("backup: ring epoch split: shard 0 at %d, shard %d at %d", epoch, i, st.RingEpoch)
		}
	}
	return epoch, nil
}

// RestoreCluster replays a cluster archive onto dbs — which may number
// differently from the shards that were backed up. Every shard archive
// is CRC-verified, folded to its surviving record set (inserts minus
// deletes) with shapedb.ReplayExports, and each record is routed to its
// owner under a fresh len(dbs)-shard ring, landing through the same
// validate-first ImportFrames path live migration uses. Frame bytes are
// preserved verbatim, so every restored record is byte-identical to what
// its source shard had acknowledged. It returns the total records
// restored.
func RestoreCluster(fsys faultfs.FS, dir string, dbs []*shapedb.DB) (int, error) {
	cm, err := readClusterManifest(fsys, dir)
	if err != nil {
		return 0, err
	}
	ring, err := scatter.NewRing(len(dbs))
	if err != nil {
		return 0, err
	}
	for _, db := range dbs {
		if db.Len() != 0 {
			return 0, fmt.Errorf("backup: refusing cluster restore into a non-empty database (%d records)", db.Len())
		}
	}
	buckets := make([][]shapedb.ExportFrame, len(dbs))
	for _, sub := range cm.Shards {
		raw, _, err := ReadArchive(fsys, filepath.Join(dir, sub))
		if err != nil {
			return 0, fmt.Errorf("backup: shard archive %s: %w", sub, err)
		}
		exports, err := shapedb.ReplayExports(raw)
		if err != nil {
			return 0, fmt.Errorf("backup: replaying shard archive %s: %w", sub, err)
		}
		for _, ex := range exports {
			owner := ring.Owner(ex.ID)
			buckets[owner] = append(buckets[owner], ex)
		}
	}
	total := 0
	for i, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		n, err := dbs[i].ImportFrames(bucket)
		if err != nil {
			return total, fmt.Errorf("backup: importing into shard %d: %w", i, err)
		}
		total += n
	}
	return total, nil
}

func readClusterManifest(fsys faultfs.FS, dir string) (*ClusterManifest, error) {
	f, err := fsys.Open(filepath.Join(dir, clusterManifestName))
	if err != nil {
		return nil, fmt.Errorf("backup: reading cluster manifest: %w", err)
	}
	defer f.Close()
	var cm ClusterManifest
	if err := json.NewDecoder(f).Decode(&cm); err != nil {
		return nil, fmt.Errorf("backup: parsing %s: %w", clusterManifestName, err)
	}
	if cm.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("backup: unsupported cluster archive format version %d (want %d)", cm.FormatVersion, FormatVersion)
	}
	return &cm, nil
}

func writeClusterManifest(fsys faultfs.FS, dir string, cm *ClusterManifest) error {
	data, err := json.MarshalIndent(cm, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, clusterManifestName+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("backup: writing cluster manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, clusterManifestName)); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}
