package backup

import (
	"errors"
	"testing"

	"threedess/internal/faultfs"
	"threedess/internal/scatter"
	"threedess/internal/shapedb"
)

// seedSharded spreads n records with explicit ids over `shards` durable
// DBs by consistent-hash ownership — the same routing a live cluster
// uses — and returns the DBs plus the full id set.
func seedSharded(t *testing.T, shards, n int) ([]*shapedb.DB, []int64) {
	t.Helper()
	ring, err := scatter.NewRing(shards)
	if err != nil {
		t.Fatal(err)
	}
	dbs := make([]*shapedb.DB, shards)
	for i := range dbs {
		dbs[i] = openDB(t, t.TempDir())
	}
	var ids []int64
	for i := 1; i <= n; i++ {
		id := int64(i)
		db := dbs[ring.Owner(id)]
		mesh, set := testMeshSet(db, float64(i))
		if _, err := db.InsertWith("rec", i%5, mesh, set, shapedb.InsertOpts{ID: id}); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
		ids = append(ids, id)
	}
	return dbs, ids
}

func TestClusterBackupRestoreReshards(t *testing.T) {
	const n = 40
	srcDBs, ids := seedSharded(t, 4, n)

	srcs := make([]Source, len(srcDBs))
	for i, db := range srcDBs {
		srcs[i] = &DBSource{DB: db, RingInfo: func() (int64, bool) { return 7, false }}
	}
	arcDir := t.TempDir()
	cm, err := BackupCluster(faultfs.OS{}, srcs, arcDir)
	if err != nil {
		t.Fatalf("cluster backup: %v", err)
	}
	if len(cm.Shards) != 4 || cm.RingEpoch != 7 {
		t.Fatalf("bad cluster manifest: %+v", cm)
	}

	// Restore the 4-shard archive onto 6 fresh shards.
	dstDBs := make([]*shapedb.DB, 6)
	for i := range dstDBs {
		dstDBs[i] = openDB(t, t.TempDir())
	}
	total, err := RestoreCluster(faultfs.OS{}, arcDir, dstDBs)
	if err != nil {
		t.Fatalf("cluster restore: %v", err)
	}
	if total != n {
		t.Fatalf("restored %d records, want %d", total, n)
	}

	// Every record landed on its 6-ring owner, byte-equivalent in
	// content to the source copy.
	ring6, err := scatter.NewRing(6)
	if err != nil {
		t.Fatal(err)
	}
	ring4, _ := scatter.NewRing(4)
	for _, id := range ids {
		dst := dstDBs[ring6.Owner(id)]
		rec, ok := dst.Get(id)
		if !ok {
			t.Fatalf("record %d missing from its new owner (shard %d)", id, ring6.Owner(id))
		}
		src, _ := srcDBs[ring4.Owner(id)].Get(id)
		if rec.ContentCRC() != src.ContentCRC() {
			t.Fatalf("record %d content diverged across restore", id)
		}
		// Nobody else holds it.
		for s, db := range dstDBs {
			if s == ring6.Owner(id) {
				continue
			}
			if _, ok := db.Get(id); ok {
				t.Fatalf("record %d duplicated onto shard %d", id, s)
			}
		}
	}
}

func TestClusterBackupRefusesTransitioningRing(t *testing.T) {
	srcDBs, _ := seedSharded(t, 2, 6)
	srcs := []Source{
		&DBSource{DB: srcDBs[0], RingInfo: func() (int64, bool) { return 7, false }},
		&DBSource{DB: srcDBs[1], RingInfo: func() (int64, bool) { return 7, true }}, // mid-rebalance
	}
	if _, err := BackupCluster(faultfs.OS{}, srcs, t.TempDir()); err == nil {
		t.Fatal("cluster backup proceeded across a transitioning ring")
	}
}

func TestClusterBackupRefusesEpochSplit(t *testing.T) {
	srcDBs, _ := seedSharded(t, 2, 6)
	srcs := []Source{
		&DBSource{DB: srcDBs[0], RingInfo: func() (int64, bool) { return 7, false }},
		&DBSource{DB: srcDBs[1], RingInfo: func() (int64, bool) { return 8, false }},
	}
	if _, err := BackupCluster(faultfs.OS{}, srcs, t.TempDir()); err == nil {
		t.Fatal("cluster backup proceeded across a split ring epoch")
	}
}

func TestClusterRestoreRefusesNonEmptyTarget(t *testing.T) {
	srcDBs, _ := seedSharded(t, 2, 6)
	srcs := make([]Source, len(srcDBs))
	for i, db := range srcDBs {
		srcs[i] = &DBSource{DB: db}
	}
	arcDir := t.TempDir()
	if _, err := BackupCluster(faultfs.OS{}, srcs, arcDir); err != nil {
		t.Fatalf("cluster backup: %v", err)
	}
	dst := openDB(t, t.TempDir())
	mesh, set := testMeshSet(dst, 1)
	if _, err := dst.Insert("existing", 0, mesh, set); err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreCluster(faultfs.OS{}, arcDir, []*shapedb.DB{dst}); err == nil {
		t.Fatal("cluster restore into a populated store succeeded")
	}
}

func TestClusterRestoreRefusesBitRot(t *testing.T) {
	srcDBs, _ := seedSharded(t, 2, 8)
	srcs := make([]Source, len(srcDBs))
	for i, db := range srcDBs {
		srcs[i] = &DBSource{DB: db}
	}
	arcDir := t.TempDir()
	if _, err := BackupCluster(faultfs.OS{}, srcs, arcDir); err != nil {
		t.Fatalf("cluster backup: %v", err)
	}
	m, err := VerifyDir(faultfs.OS{}, arcDir+"/shard-01")
	if err != nil {
		t.Fatal(err)
	}
	fr := m.Segments[0].Frames[0]
	if err := faultfs.FlipByte(arcDir+"/shard-01/"+m.Segments[0].Name, fr.Off+fr.Size/2, 0x08); err != nil {
		t.Fatal(err)
	}
	dst := openDB(t, t.TempDir())
	_, err = RestoreCluster(faultfs.OS{}, arcDir, []*shapedb.DB{dst})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("rotten shard archive: err = %v, want *CorruptError", err)
	}
	if dst.Len() != 0 {
		t.Fatalf("refused cluster restore imported %d records", dst.Len())
	}
}
