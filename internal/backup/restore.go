package backup

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"threedess/internal/faultfs"
)

// journalFile mirrors shapedb's on-disk journal name: a node restore
// materializes exactly the file shapedb.OpenFS replays.
const journalFile = "shapes.journal"

// RestoreReport says what a node restore did: how far the archive went,
// where the replay was cut, and how many frames landed.
type RestoreReport struct {
	ReplEpoch int64 `json:"repl_epoch"`
	Committed int64 `json:"committed"` // archive end
	Cut       int64 `json:"cut"`       // offset actually restored to
	Frames    int   `json:"frames"`
}

// RestoreNode rebuilds a data directory from an archive. The archive is
// fully verified first — every CRC, every boundary — and the target is
// refused if it already holds a journal, so a corrupt or truncated
// archive can never damage existing data. pointInTime, when positive,
// cuts the replay at the largest frame boundary not beyond that journal
// offset (every manifest frame boundary is a consistent prefix, because
// the journal is a pure redo log); zero or negative restores everything.
//
// The restored journal is byte-identical to the source's committed
// prefix, so opening it with shapedb.OpenFS reproduces the source's
// records, feature bounds, and similarity normalization exactly —
// searches against the restored node are bit-identical to the source.
func RestoreNode(fsys faultfs.FS, dir, targetDir string, pointInTime int64) (*RestoreReport, error) {
	m, err := VerifyDir(fsys, dir)
	if err != nil {
		return nil, err
	}
	target := filepath.Join(targetDir, journalFile)
	if f, err := fsys.Open(target); err == nil {
		f.Close()
		return nil, fmt.Errorf("backup: refusing restore: %s already exists", target)
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	cut, frames := m.Committed, 0
	if pointInTime > 0 && pointInTime < m.Committed {
		cut = 0
	}
	for _, seg := range m.Segments {
		for _, fr := range seg.Frames {
			end := fr.Off + fr.Size
			if end > cut && pointInTime > 0 && end <= pointInTime {
				cut = end
			}
			if end <= cut {
				frames++
			}
		}
	}

	if err := fsys.MkdirAll(targetDir, 0o755); err != nil {
		return nil, err
	}
	tmp := target + ".restore"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("backup: creating restored journal: %w", err)
	}
	if err := copyPrefix(fsys, dir, m, cut, f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("backup: syncing restored journal: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := fsys.Rename(tmp, target); err != nil {
		return nil, fmt.Errorf("backup: publishing restored journal: %w", err)
	}
	if err := fsys.SyncDir(targetDir); err != nil {
		return nil, err
	}
	return &RestoreReport{ReplEpoch: m.ReplEpoch, Committed: m.Committed, Cut: cut, Frames: frames}, nil
}

// copyPrefix streams archive bytes [0, cut) into w in segment order.
func copyPrefix(fsys faultfs.FS, dir string, m *Manifest, cut int64, w io.Writer) error {
	for _, seg := range m.Segments {
		if seg.Start >= cut {
			break
		}
		n := seg.Size
		if seg.Start+n > cut {
			n = cut - seg.Start
		}
		f, err := fsys.Open(filepath.Join(dir, seg.Name))
		if err != nil {
			return fmt.Errorf("backup: opening segment %s: %w", seg.Name, err)
		}
		_, err = io.CopyN(w, f, n)
		f.Close()
		if err != nil {
			return fmt.Errorf("backup: copying segment %s: %w", seg.Name, err)
		}
	}
	return nil
}

// ReadArchive returns the verified journal bytes [0, committed) of a
// node archive — the cluster restore path folds these through
// shapedb.ReplayExports to re-route records onto a new ring.
func ReadArchive(fsys faultfs.FS, dir string) ([]byte, *Manifest, error) {
	m, err := VerifyDir(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	var buf grower
	if err := copyPrefix(fsys, dir, m, m.Committed, &buf); err != nil {
		return nil, nil, err
	}
	return buf.b, m, nil
}

type grower struct{ b []byte }

func (g *grower) Write(p []byte) (int, error) {
	g.b = append(g.b, p...)
	return len(p), nil
}
