package backup

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"threedess/internal/faultfs"
)

// FormatVersion stamps archives so a future layout change can refuse or
// translate old ones instead of misreading them.
const FormatVersion = 1

// maxFrame mirrors the journal's cap on a frame header's claimed payload
// length; anything larger marks the bytes as garbage, not a real frame.
const maxFrame = 1 << 30

// FrameInfo records one journal frame inside a segment: its absolute
// journal offset, full framed size (header + payload), and the payload
// CRC32 — re-verified by VerifyDir before any restore proceeds.
type FrameInfo struct {
	Off  int64  `json:"off"`
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc"`
}

// Segment is one archive file holding a contiguous run of journal bytes
// [Start, Start+Size). Segments tile [0, Committed) with no gaps; a full
// backup writes one, each incremental run appends another.
type Segment struct {
	Name   string      `json:"name"`
	Start  int64       `json:"start"`
	Size   int64       `json:"size"`
	Frames []FrameInfo `json:"frames"`
}

// Manifest describes a node archive: which journal incarnation it
// captured, how far, under what cluster context, and the per-frame
// checksums restore verifies against. It is rewritten atomically
// (tmp + rename + dir sync) after every segment lands, which is what
// makes a killed backup resumable: on the next run everything the
// manifest names is trusted, everything else is garbage to redo.
type Manifest struct {
	FormatVersion int       `json:"format_version"`
	ReplEpoch     int64     `json:"repl_epoch"`
	Committed     int64     `json:"committed"`
	DBVersion     int64     `json:"db_version"`
	RingEpoch     int64     `json:"ring_epoch"`
	Segments      []Segment `json:"segments"`
}

const (
	manifestName = "manifest.json"
	segmentTmp   = "segment.tmp"
)

func segmentName(start int64) string { return fmt.Sprintf("segment-%016x.bin", start) }

// CorruptError reports exactly which archive byte range failed
// verification, so an operator knows what to re-copy or discard.
type CorruptError struct {
	Segment string // segment file name
	Off     int64  // absolute journal offset of the bad frame
	Detail  string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("backup: corrupt archive: segment %s, journal offset %d: %s", e.Segment, e.Off, e.Detail)
}

// BackupNode captures src into dir. The first run writes a full backup;
// later runs against the same journal epoch append only the frames past
// the manifest's committed offset (incremental). If the source's epoch
// changed — restart, compaction, replica reset — the old chain can no
// longer be extended, so the archive is reset and recaptured in full.
// A run killed partway leaves at most a dangling temp file and is safely
// resumable: rerun and it continues from the last manifest state.
//
// The capture target is the committed offset observed at start; frames
// committed while the backup streams are picked up by the next run.
// Writes on the source are never stalled.
func BackupNode(fsys faultfs.FS, src Source, dir string) (*Manifest, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("backup: creating archive dir: %w", err)
	}
	// A crash mid-segment leaves segment.tmp; it was never named by the
	// manifest, so it is garbage to redo.
	_ = fsys.Remove(filepath.Join(dir, segmentTmp))

	st, err := src.State()
	if err != nil {
		return nil, err
	}
	m, err := readManifest(fsys, dir)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	if m != nil && m.ReplEpoch != st.Epoch {
		// Epoch moved: the archived prefix belongs to a dead journal
		// incarnation. Drop it and recapture in full.
		for _, seg := range m.Segments {
			_ = fsys.Remove(filepath.Join(dir, seg.Name))
		}
		_ = fsys.Remove(filepath.Join(dir, manifestName))
		if err := fsys.SyncDir(dir); err != nil {
			return nil, err
		}
		m = nil
	}
	if m == nil {
		m = &Manifest{FormatVersion: FormatVersion, ReplEpoch: st.Epoch}
	}
	m.DBVersion, m.RingEpoch = st.DBVersion, st.RingEpoch

	start, target := m.Committed, st.Committed
	if start > target {
		return nil, fmt.Errorf("backup: archive is ahead of source (archived %d, committed %d) at epoch %d", start, target, st.Epoch)
	}
	if start == target {
		return m, nil // nothing new
	}

	seg, err := captureSegment(fsys, src, dir, st.Epoch, start, target)
	if err != nil {
		return nil, err
	}
	m.Segments = append(m.Segments, *seg)
	m.Committed = seg.Start + seg.Size
	if err := writeManifest(fsys, dir, m); err != nil {
		return nil, err
	}
	return m, nil
}

// captureSegment streams journal bytes [start, target) into a new
// segment file, verifying every frame CRC as it lands, then publishes it
// with tmp + rename + dir sync.
func captureSegment(fsys faultfs.FS, src Source, dir string, epoch, start, target int64) (*Segment, error) {
	tmpPath := filepath.Join(dir, segmentTmp)
	f, err := fsys.OpenFile(tmpPath, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("backup: creating segment: %w", err)
	}
	defer f.Close()

	seg := &Segment{Name: segmentName(start), Start: start}
	off := start
	for off < target {
		chunk, _, err := src.Read(epoch, off, 1<<20)
		if err != nil {
			return nil, err
		}
		if len(chunk) == 0 {
			return nil, fmt.Errorf("backup: source returned no bytes at offset %d (target %d)", off, target)
		}
		frames, err := walkFrames(chunk, off, seg.Name)
		if err != nil {
			return nil, err
		}
		if n, err := f.Write(chunk); err != nil {
			return nil, fmt.Errorf("backup: writing segment: %w", err)
		} else if n < len(chunk) {
			return nil, fmt.Errorf("backup: writing segment: %w", io.ErrShortWrite)
		}
		seg.Frames = append(seg.Frames, frames...)
		off += int64(len(chunk))
	}
	if off != target {
		// Frame-aligned reads can only overshoot if the source and the
		// manifest disagree about boundaries — refuse the archive.
		return nil, fmt.Errorf("backup: segment ended at %d, expected %d (frame misalignment)", off, target)
	}
	seg.Size = off - start
	if err := f.Sync(); err != nil {
		return nil, fmt.Errorf("backup: syncing segment: %w", err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("backup: closing segment: %w", err)
	}
	if err := fsys.Rename(tmpPath, filepath.Join(dir, seg.Name)); err != nil {
		return nil, fmt.Errorf("backup: publishing segment: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return nil, err
	}
	return seg, nil
}

// walkFrames parses a frame-aligned byte run starting at absolute journal
// offset base, checking each payload against its header CRC.
func walkFrames(buf []byte, base int64, segName string) ([]FrameInfo, error) {
	var out []FrameInfo
	off := 0
	for off < len(buf) {
		if off+8 > len(buf) {
			return nil, &CorruptError{Segment: segName, Off: base + int64(off), Detail: "truncated frame header"}
		}
		size := int64(binary.LittleEndian.Uint32(buf[off:]))
		want := binary.LittleEndian.Uint32(buf[off+4:])
		if size > maxFrame {
			return nil, &CorruptError{Segment: segName, Off: base + int64(off), Detail: fmt.Sprintf("implausible frame length %d", size)}
		}
		end := off + 8 + int(size)
		if end > len(buf) {
			return nil, &CorruptError{Segment: segName, Off: base + int64(off), Detail: "truncated frame payload"}
		}
		if got := crc32.ChecksumIEEE(buf[off+8 : end]); got != want {
			return nil, &CorruptError{Segment: segName, Off: base + int64(off), Detail: fmt.Sprintf("frame CRC mismatch (stored %08x, computed %08x)", want, got)}
		}
		out = append(out, FrameInfo{Off: base + int64(off), Size: 8 + size, CRC: want})
		off = end
	}
	return out, nil
}

// VerifyDir checks an archive end to end without touching anything else:
// the manifest parses, segments tile [0, Committed) contiguously, every
// segment file has exactly its manifested size, every frame re-hashes to
// both its header CRC and its manifest CRC, and frames tile each segment
// exactly. It returns the manifest on success and a *CorruptError (or a
// structural error) naming the first problem otherwise.
func VerifyDir(fsys faultfs.FS, dir string) (*Manifest, error) {
	m, err := readManifest(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("backup: reading manifest: %w", err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("backup: unsupported archive format version %d (want %d)", m.FormatVersion, FormatVersion)
	}
	next := int64(0)
	for _, seg := range m.Segments {
		if seg.Start != next {
			return nil, fmt.Errorf("backup: archive gap: segment %s starts at %d, expected %d", seg.Name, seg.Start, next)
		}
		if err := verifySegment(fsys, dir, &seg); err != nil {
			return nil, err
		}
		next = seg.Start + seg.Size
	}
	if next != m.Committed {
		return nil, fmt.Errorf("backup: archive truncated: segments cover %d bytes, manifest commits %d", next, m.Committed)
	}
	return m, nil
}

func verifySegment(fsys faultfs.FS, dir string, seg *Segment) error {
	f, err := fsys.Open(filepath.Join(dir, seg.Name))
	if err != nil {
		return fmt.Errorf("backup: opening segment %s: %w", seg.Name, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if fi.Size() != seg.Size {
		return &CorruptError{Segment: seg.Name, Off: seg.Start, Detail: fmt.Sprintf("segment is %d bytes, manifest says %d", fi.Size(), seg.Size)}
	}
	buf := make([]byte, seg.Size)
	if _, err := io.ReadFull(f, buf); err != nil {
		return fmt.Errorf("backup: reading segment %s: %w", seg.Name, err)
	}
	next := seg.Start
	for _, fr := range seg.Frames {
		if fr.Off != next {
			return &CorruptError{Segment: seg.Name, Off: fr.Off, Detail: fmt.Sprintf("frame at %d does not abut previous end %d", fr.Off, next)}
		}
		lo := fr.Off - seg.Start
		if fr.Size < 8 || lo+fr.Size > seg.Size {
			return &CorruptError{Segment: seg.Name, Off: fr.Off, Detail: "frame extends past segment"}
		}
		b := buf[lo : lo+fr.Size]
		size := int64(binary.LittleEndian.Uint32(b[0:]))
		stored := binary.LittleEndian.Uint32(b[4:])
		if size != fr.Size-8 {
			return &CorruptError{Segment: seg.Name, Off: fr.Off, Detail: fmt.Sprintf("frame header claims %d payload bytes, manifest says %d", size, fr.Size-8)}
		}
		got := crc32.ChecksumIEEE(b[8:])
		if got != stored || got != fr.CRC {
			return &CorruptError{Segment: seg.Name, Off: fr.Off, Detail: fmt.Sprintf("frame CRC mismatch (manifest %08x, header %08x, computed %08x)", fr.CRC, stored, got)}
		}
		next = fr.Off + fr.Size
	}
	if next != seg.Start+seg.Size {
		return &CorruptError{Segment: seg.Name, Off: next, Detail: "frames do not cover segment"}
	}
	return nil
}

func readManifest(fsys faultfs.FS, dir string) (*Manifest, error) {
	f, err := fsys.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m Manifest
	if err := json.NewDecoder(f).Decode(&m); err != nil {
		return nil, fmt.Errorf("backup: parsing %s: %w", manifestName, err)
	}
	return &m, nil
}

func writeManifest(fsys faultfs.FS, dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("backup: writing manifest: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("backup: writing manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("backup: syncing manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("backup: publishing manifest: %w", err)
	}
	return fsys.SyncDir(dir)
}
