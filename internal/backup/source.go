// Package backup implements verified online backup and point-in-time
// restore for shape databases (DESIGN.md §15). A node backup captures a
// frame-aligned prefix of the live journal up to the committed offset —
// no write stall, because committed frames are immutable within a
// replication epoch — into a directory of CRC-manifested segment files.
// Incremental runs append only frames past the last manifest offset;
// restore verifies every checksum before touching the target and can cut
// the replay at an earlier journal offset (point-in-time). A cluster
// backup fans the same node procedure across every shard under a
// ring-epoch fence, and a cluster restore replays an N-shard archive
// onto M fresh shards through the migration import path.
package backup

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"threedess/internal/shapedb"
)

// ErrEpochChanged reports that the source's journal identity moved while
// a backup was being taken (restart, compaction, replica reset). The
// archive's incremental chain is broken; the caller must start a fresh
// full backup, which BackupNode does automatically on the next run.
var ErrEpochChanged = errors.New("backup: source journal epoch changed")

// State is the backup-relevant snapshot of a source node: where its
// journal stands, and the cluster context the archive will be stamped
// with so restore can refuse to mix incompatible shards.
type State struct {
	// Epoch and Committed identify the journal stream (see
	// shapedb.ReplState).
	Epoch     int64 `json:"epoch"`
	Committed int64 `json:"committed"`
	// DBVersion is the record-set version counter at snapshot time —
	// monotone per process, useful for operator sanity checks.
	DBVersion int64 `json:"db_version"`
	// RingEpoch is the cluster ring epoch the node is serving under
	// (zero when standalone); RingTransitioning reports a rebalance in
	// flight, during which cluster backups are refused.
	RingEpoch         int64 `json:"ring_epoch"`
	RingTransitioning bool  `json:"ring_transitioning"`
	// ReadOnly reports the ENOSPC fence (shapedb.ErrReadOnly). Backups
	// of a fenced node still work — the fence blocks writes, not reads.
	ReadOnly bool `json:"read_only"`
}

// Source is a node a backup can be taken from: a state probe plus
// frame-aligned journal reads. Read follows the shapedb.ReadJournal
// contract — bytes from off cut at a frame boundary, never past the
// committed offset, ErrEpochChanged if epoch no longer matches.
type Source interface {
	State() (State, error)
	Read(epoch, off int64, maxBytes int) ([]byte, State, error)
}

// DBSource backs up a database in the same process. RingInfo, when
// non-nil, supplies the cluster ring context for the archive stamp.
type DBSource struct {
	DB *shapedb.DB
	// RingInfo returns (ring epoch, transitioning). Nil means
	// standalone: epoch 0, never transitioning.
	RingInfo func() (int64, bool)
}

func (s *DBSource) State() (State, error) {
	rs := s.DB.ReplState()
	st := State{
		Epoch:     rs.Epoch,
		Committed: rs.Committed,
		DBVersion: s.DB.Version(),
		ReadOnly:  s.DB.ReadOnlyErr() != nil,
	}
	if s.RingInfo != nil {
		st.RingEpoch, st.RingTransitioning = s.RingInfo()
	}
	if rs.Epoch == 0 {
		return st, fmt.Errorf("backup: source database is not durable (no journal)")
	}
	return st, nil
}

func (s *DBSource) Read(epoch, off int64, maxBytes int) ([]byte, State, error) {
	chunk, rs, err := s.DB.ReadJournal(epoch, off, maxBytes)
	st := State{Epoch: rs.Epoch, Committed: rs.Committed}
	if errors.Is(err, shapedb.ErrReplEpoch) {
		return nil, st, fmt.Errorf("%w (have %d, source %d)", ErrEpochChanged, epoch, rs.Epoch)
	}
	return chunk, st, err
}

// HTTP endpoints a server exposes for remote backup (see
// internal/server/backup.go). The state endpoint returns a State JSON
// document; the chunk endpoint streams raw frame-aligned journal bytes.
const (
	StatePath = "/api/admin/backup"
	ChunkPath = "/api/admin/backup/chunk"

	// Chunk response headers carrying the source's journal position.
	EpochHeader     = "X-Backup-Epoch"
	CommittedHeader = "X-Backup-Committed"
)

// HTTPSource backs up a remote node over its admin API.
type HTTPSource struct {
	// BaseURL is the node's root, e.g. "http://shard-0:8080".
	BaseURL string
	// Client defaults to http.DefaultClient.
	Client *http.Client
}

func (s *HTTPSource) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

func (s *HTTPSource) State() (State, error) {
	resp, err := s.client().Get(s.BaseURL + StatePath)
	if err != nil {
		return State{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return State{}, httpError("state", resp)
	}
	var st State
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return State{}, fmt.Errorf("backup: decoding state from %s: %w", s.BaseURL, err)
	}
	return st, nil
}

func (s *HTTPSource) Read(epoch, off int64, maxBytes int) ([]byte, State, error) {
	q := url.Values{}
	q.Set("epoch", strconv.FormatInt(epoch, 10))
	q.Set("off", strconv.FormatInt(off, 10))
	q.Set("max", strconv.Itoa(maxBytes))
	resp, err := s.client().Get(s.BaseURL + ChunkPath + "?" + q.Encode())
	if err != nil {
		return nil, State{}, err
	}
	defer resp.Body.Close()
	var st State
	st.Epoch, _ = strconv.ParseInt(resp.Header.Get(EpochHeader), 10, 64)
	st.Committed, _ = strconv.ParseInt(resp.Header.Get(CommittedHeader), 10, 64)
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		return nil, st, fmt.Errorf("%w (have %d, source %d)", ErrEpochChanged, epoch, st.Epoch)
	default:
		return nil, st, httpError("chunk", resp)
	}
	chunk, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, st, fmt.Errorf("backup: reading chunk body: %w", err)
	}
	return chunk, st, nil
}

func httpError(what string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("backup: %s request failed: %s: %s", what, resp.Status, body)
}
