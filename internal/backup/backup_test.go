package backup

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"threedess/internal/core"
	"threedess/internal/faultfs"
	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/shapedb"
)

func fixedSet(opts features.Options, base float64) features.Set {
	set := features.Set{}
	for _, k := range features.CoreKinds {
		v := make(features.Vector, opts.Dim(k))
		for i := range v {
			v[i] = base + float64(i)
		}
		set[k] = v
	}
	return set
}

func openDB(t *testing.T, dir string) *shapedb.DB {
	t.Helper()
	db, err := shapedb.Open(dir, features.Options{})
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func insertN(t *testing.T, db *shapedb.DB, n int, base float64) []int64 {
	t.Helper()
	ids := make([]int64, n)
	for i := 0; i < n; i++ {
		mesh := geom.Box(geom.V(0, 0, 0), geom.V(1+base+float64(i), 1, 1))
		id, err := db.Insert("s", i, mesh, fixedSet(db.Options(), base+float64(i)))
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
		ids[i] = id
	}
	return ids
}

func nodeSource(db *shapedb.DB) *DBSource { return &DBSource{DB: db} }

func testMeshSet(db *shapedb.DB, base float64) (*geom.Mesh, features.Set) {
	return geom.Box(geom.V(0, 0, 0), geom.V(1+base, 1, 1)), fixedSet(db.Options(), base)
}

// journalBytes reads the raw committed journal of a live db.
func journalBytes(t *testing.T, db *shapedb.DB) []byte {
	t.Helper()
	st := db.ReplState()
	var out []byte
	for int64(len(out)) < st.Committed {
		chunk, _, err := db.ReadJournal(st.Epoch, int64(len(out)), 1<<20)
		if err != nil {
			t.Fatalf("ReadJournal: %v", err)
		}
		out = append(out, chunk...)
	}
	return out
}

func TestBackupRestoreRoundtripBitIdentical(t *testing.T) {
	srcDir, arcDir, dstDir := t.TempDir(), t.TempDir(), t.TempDir()
	db := openDB(t, srcDir)
	ids := insertN(t, db, 6, 0)
	if _, err := db.Delete(ids[2]); err != nil {
		t.Fatalf("delete: %v", err)
	}

	m, err := BackupNode(faultfs.OS{}, nodeSource(db), arcDir)
	if err != nil {
		t.Fatalf("backup: %v", err)
	}
	if m.Committed != db.ReplState().Committed {
		t.Fatalf("manifest committed %d, source %d", m.Committed, db.ReplState().Committed)
	}
	if _, err := VerifyDir(faultfs.OS{}, arcDir); err != nil {
		t.Fatalf("verify: %v", err)
	}

	rep, err := RestoreNode(faultfs.OS{}, arcDir, dstDir, 0)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if rep.Cut != m.Committed {
		t.Fatalf("full restore cut at %d, want %d", rep.Cut, m.Committed)
	}

	// The restored journal is byte-identical to the source's committed
	// prefix — the strongest possible equivalence.
	want := journalBytes(t, db)
	got, err := os.ReadFile(filepath.Join(dstDir, "shapes.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored journal differs from source (%d vs %d bytes)", len(got), len(want))
	}

	re := openDB(t, dstDir)
	if re.Len() != db.Len() {
		t.Fatalf("restored %d records, want %d", re.Len(), db.Len())
	}
	if _, ok := re.Get(ids[2]); ok {
		t.Fatal("deleted record resurrected by restore")
	}
}

func TestIncrementalBackupAppendsOnlyNewFrames(t *testing.T) {
	srcDir, arcDir := t.TempDir(), t.TempDir()
	db := openDB(t, srcDir)
	insertN(t, db, 3, 0)

	m1, err := BackupNode(faultfs.OS{}, nodeSource(db), arcDir)
	if err != nil {
		t.Fatalf("full backup: %v", err)
	}
	if len(m1.Segments) != 1 {
		t.Fatalf("full backup wrote %d segments, want 1", len(m1.Segments))
	}

	// Nothing new: no segment is added.
	m1b, err := BackupNode(faultfs.OS{}, nodeSource(db), arcDir)
	if err != nil {
		t.Fatalf("no-op backup: %v", err)
	}
	if len(m1b.Segments) != 1 {
		t.Fatalf("idle incremental grew to %d segments", len(m1b.Segments))
	}

	insertN(t, db, 2, 10)
	m2, err := BackupNode(faultfs.OS{}, nodeSource(db), arcDir)
	if err != nil {
		t.Fatalf("incremental backup: %v", err)
	}
	if len(m2.Segments) != 2 {
		t.Fatalf("incremental wrote %d segments, want 2", len(m2.Segments))
	}
	if m2.Segments[1].Start != m1.Committed {
		t.Fatalf("incremental starts at %d, want previous committed %d", m2.Segments[1].Start, m1.Committed)
	}
	if _, err := VerifyDir(faultfs.OS{}, arcDir); err != nil {
		t.Fatalf("verify after incremental: %v", err)
	}

	dstDir := t.TempDir()
	if _, err := RestoreNode(faultfs.OS{}, arcDir, dstDir, 0); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if re := openDB(t, dstDir); re.Len() != db.Len() {
		t.Fatalf("restored %d records, want %d", re.Len(), db.Len())
	}
}

func TestEpochChangeForcesFreshFullBackup(t *testing.T) {
	srcDir, arcDir := t.TempDir(), t.TempDir()
	db := openDB(t, srcDir)
	insertN(t, db, 3, 0)
	if _, err := BackupNode(faultfs.OS{}, nodeSource(db), arcDir); err != nil {
		t.Fatalf("backup: %v", err)
	}

	// Compaction regenerates the journal epoch; the old chain is dead.
	if _, err := db.Delete(db.IDs()[0]); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := db.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}

	m, err := BackupNode(faultfs.OS{}, nodeSource(db), arcDir)
	if err != nil {
		t.Fatalf("post-compaction backup: %v", err)
	}
	if m.ReplEpoch != db.ReplState().Epoch {
		t.Fatalf("manifest epoch %d, source %d", m.ReplEpoch, db.ReplState().Epoch)
	}
	if len(m.Segments) != 1 || m.Segments[0].Start != 0 {
		t.Fatalf("epoch change did not reset the archive: %+v", m.Segments)
	}
	dstDir := t.TempDir()
	if _, err := RestoreNode(faultfs.OS{}, arcDir, dstDir, 0); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if re := openDB(t, dstDir); re.Len() != db.Len() {
		t.Fatalf("restored %d records, want %d", re.Len(), db.Len())
	}
}

func TestPointInTimeRestoreCutsAtFrameBoundary(t *testing.T) {
	srcDir, arcDir := t.TempDir(), t.TempDir()
	db := openDB(t, srcDir)
	insertN(t, db, 2, 0)
	midpoint := db.ReplState().Committed
	insertN(t, db, 3, 50)

	if _, err := BackupNode(faultfs.OS{}, nodeSource(db), arcDir); err != nil {
		t.Fatalf("backup: %v", err)
	}

	// Cut exactly at a boundary: everything up to it, nothing after.
	dst1 := t.TempDir()
	rep, err := RestoreNode(faultfs.OS{}, arcDir, dst1, midpoint)
	if err != nil {
		t.Fatalf("restore at %d: %v", midpoint, err)
	}
	if rep.Cut != midpoint {
		t.Fatalf("cut at %d, want %d", rep.Cut, midpoint)
	}
	if re := openDB(t, dst1); re.Len() != 2 {
		t.Fatalf("point-in-time restore holds %d records, want 2", re.Len())
	}

	// A cut mid-frame rounds DOWN to the last complete frame.
	dst2 := t.TempDir()
	rep2, err := RestoreNode(faultfs.OS{}, arcDir, dst2, midpoint+1)
	if err != nil {
		t.Fatalf("restore at %d: %v", midpoint+1, err)
	}
	if rep2.Cut != midpoint {
		t.Fatalf("mid-frame cut landed at %d, want %d", rep2.Cut, midpoint)
	}
}

func TestBitFlippedArchiveRefusedAndTargetUntouched(t *testing.T) {
	srcDir, arcDir := t.TempDir(), t.TempDir()
	db := openDB(t, srcDir)
	insertN(t, db, 4, 0)
	m, err := BackupNode(faultfs.OS{}, nodeSource(db), arcDir)
	if err != nil {
		t.Fatalf("backup: %v", err)
	}

	// Rot one byte in the middle of the third frame's payload.
	victim := m.Segments[0].Frames[2]
	segPath := filepath.Join(arcDir, m.Segments[0].Name)
	if err := faultfs.FlipByte(segPath, victim.Off+victim.Size/2, 0x40); err != nil {
		t.Fatalf("FlipByte: %v", err)
	}

	dstDir := t.TempDir()
	_, err = RestoreNode(faultfs.OS{}, arcDir, dstDir, 0)
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("restore of rotten archive returned %v, want *CorruptError", err)
	}
	// The report names the exact frame.
	if ce.Segment != m.Segments[0].Name || ce.Off != victim.Off {
		t.Fatalf("corruption reported at %s offset %d, want %s offset %d", ce.Segment, ce.Off, m.Segments[0].Name, victim.Off)
	}
	// And the target directory was never touched.
	entries, err := os.ReadDir(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("refused restore wrote into the target dir: %v", entries)
	}
}

func TestTruncatedArchiveRefused(t *testing.T) {
	srcDir, arcDir := t.TempDir(), t.TempDir()
	db := openDB(t, srcDir)
	insertN(t, db, 3, 0)
	m, err := BackupNode(faultfs.OS{}, nodeSource(db), arcDir)
	if err != nil {
		t.Fatalf("backup: %v", err)
	}
	segPath := filepath.Join(arcDir, m.Segments[0].Name)
	if err := os.Truncate(segPath, m.Segments[0].Size-3); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyDir(faultfs.OS{}, arcDir); err == nil {
		t.Fatal("truncated archive verified clean")
	}
}

func TestRestoreRefusesNonEmptyTarget(t *testing.T) {
	srcDir, arcDir := t.TempDir(), t.TempDir()
	db := openDB(t, srcDir)
	insertN(t, db, 2, 0)
	if _, err := BackupNode(faultfs.OS{}, nodeSource(db), arcDir); err != nil {
		t.Fatalf("backup: %v", err)
	}
	// The source dir itself holds a journal: restore must refuse it.
	if _, err := RestoreNode(faultfs.OS{}, arcDir, srcDir, 0); err == nil {
		t.Fatal("restore over an existing journal succeeded")
	}
}

// TestCrashMidBackupResumes is the backup crash matrix: tear the archive
// filesystem at every injectable operation in turn, then rerun the backup
// on a clean filesystem and require a verified, complete, restorable
// archive every time.
func TestCrashMidBackupResumes(t *testing.T) {
	srcDir := t.TempDir()
	db := openDB(t, srcDir)
	insertN(t, db, 5, 0)

	// Count the ops of a clean run.
	counter := faultfs.NewInjector(faultfs.OS{})
	if _, err := BackupNode(counter, nodeSource(db), t.TempDir()); err != nil {
		t.Fatalf("counting run: %v", err)
	}
	total := counter.Ops()
	if total == 0 {
		t.Fatal("no injectable operations observed")
	}

	for failAt := int64(1); failAt <= total; failAt++ {
		arcDir := t.TempDir()
		inj := faultfs.NewInjector(faultfs.OS{})
		inj.FailAt, inj.Mode = failAt, faultfs.ModeCrash
		_, err := BackupNode(inj, nodeSource(db), arcDir)
		if err == nil && !inj.Fired() {
			t.Fatalf("failAt=%d: fault never fired", failAt)
		}

		// The "process" died; resume on a clean filesystem.
		m, err := BackupNode(faultfs.OS{}, nodeSource(db), arcDir)
		if err != nil {
			t.Fatalf("failAt=%d: resume: %v", failAt, err)
		}
		if m.Committed != db.ReplState().Committed {
			t.Fatalf("failAt=%d: resumed archive at %d, want %d", failAt, m.Committed, db.ReplState().Committed)
		}
		if _, err := VerifyDir(faultfs.OS{}, arcDir); err != nil {
			t.Fatalf("failAt=%d: resumed archive fails verification: %v", failAt, err)
		}
		dstDir := t.TempDir()
		if _, err := RestoreNode(faultfs.OS{}, arcDir, dstDir, 0); err != nil {
			t.Fatalf("failAt=%d: restore: %v", failAt, err)
		}
		re, err := shapedb.Open(dstDir, features.Options{})
		if err != nil {
			t.Fatalf("failAt=%d: reopen: %v", failAt, err)
		}
		n := re.Len()
		re.Close()
		if n != db.Len() {
			t.Fatalf("failAt=%d: restored %d records, want %d", failAt, n, db.Len())
		}
	}
}

// TestRestoreSearchEquivalence is the restore-equivalence property
// (satellite 4): a node that lived through inserts, degraded-extraction
// records, deletes, and a compaction epoch is backed up, restored, and
// must answer weighted searches with DeepEqual result lists — values,
// order, and ties included.
func TestRestoreSearchEquivalence(t *testing.T) {
	srcDir, arcDir, dstDir := t.TempDir(), t.TempDir(), t.TempDir()
	db := openDB(t, srcDir)
	opts := db.Options()

	// Epoch 1: plain inserts, one degraded record, a tie pair, deletes.
	ids := insertN(t, db, 5, 0)
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(3, 1, 1))
	if _, err := db.InsertFull("degraded", 9, mesh, fixedSet(opts, 2.5), []string{"skeleton"}); err != nil {
		t.Fatalf("degraded insert: %v", err)
	}
	// Two records with identical features: their similarity ties, so the
	// comparison exercises tie order too.
	for i := 0; i < 2; i++ {
		if _, err := db.Insert("twin", 7, mesh, fixedSet(opts, 4)); err != nil {
			t.Fatalf("twin insert: %v", err)
		}
	}
	if _, err := db.DeleteMany(ids[1:3]); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if err := db.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	// Epoch 2: more inserts on the compacted journal, then an
	// incremental on top of the post-compaction full backup.
	insertN(t, db, 3, 20)
	if _, err := BackupNode(faultfs.OS{}, nodeSource(db), arcDir); err != nil {
		t.Fatalf("backup: %v", err)
	}
	insertN(t, db, 2, 40)
	if _, err := BackupNode(faultfs.OS{}, nodeSource(db), arcDir); err != nil {
		t.Fatalf("incremental: %v", err)
	}

	if _, err := RestoreNode(faultfs.OS{}, arcDir, dstDir, 0); err != nil {
		t.Fatalf("restore: %v", err)
	}
	re := openDB(t, dstDir)

	srcEng, dstEng := core.NewEngine(db), core.NewEngine(re)
	query := fixedSet(opts, 3.3)
	for _, k := range features.CoreKinds {
		weights := make([]float64, opts.Dim(k))
		for i := range weights {
			weights[i] = 1 + float64(i%3) // non-uniform: the weighted scan path
		}
		opt := core.Options{Feature: k, K: 8, Weights: weights}
		want, err := srcEng.SearchTopK(context.Background(), query, opt)
		if err != nil {
			t.Fatalf("%v: source search: %v", k, err)
		}
		got, err := dstEng.SearchTopK(context.Background(), query, opt)
		if err != nil {
			t.Fatalf("%v: restored search: %v", k, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: weighted search diverged after restore:\nsrc: %+v\ndst: %+v", k, want, got)
		}
	}
}
