package shapedb

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"threedess/internal/features"
	"threedess/internal/geom"
)

// fixedFeatures builds a valid feature set with deterministic values.
func fixedFeatures(opts features.Options, base float64) features.Set {
	set := features.Set{}
	for _, k := range features.CoreKinds {
		v := make(features.Vector, opts.Dim(k))
		for i := range v {
			v[i] = base + float64(i)
		}
		set[k] = v
	}
	return set
}

func testRecord(t *testing.T, db *DB, name string, group int, base float64) int64 {
	t.Helper()
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1+base, 1, 1))
	id, err := db.Insert(name, group, mesh, fixedFeatures(db.Options(), base))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestInsertGetDelete(t *testing.T) {
	db, err := Open("", features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	id := testRecord(t, db, "widget", 3, 1)
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	rec, ok := db.Get(id)
	if !ok {
		t.Fatal("record not found")
	}
	if rec.Name != "widget" || rec.Group != 3 {
		t.Errorf("record = %+v", rec)
	}
	if db.GroupOf(id) != 3 {
		t.Errorf("GroupOf = %d", db.GroupOf(id))
	}
	ok, err = db.Delete(id)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if db.Len() != 0 {
		t.Errorf("Len after delete = %d", db.Len())
	}
	if _, ok := db.Get(id); ok {
		t.Error("deleted record still readable")
	}
	ok, err = db.Delete(id)
	if err != nil || ok {
		t.Errorf("double delete = %v, %v", ok, err)
	}
}

func TestInsertValidation(t *testing.T) {
	db, _ := Open("", features.Options{})
	defer db.Close()
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	if _, err := db.Insert("x", 0, nil, fixedFeatures(db.Options(), 0)); err == nil {
		t.Error("nil mesh accepted")
	}
	if _, err := db.Insert("x", 0, mesh, features.Set{}); err == nil {
		t.Error("empty features accepted")
	}
	bad := features.Set{features.PrincipalMoments: features.Vector{1}}
	if _, err := db.Insert("x", 0, mesh, bad); err == nil {
		t.Error("wrong-dimension feature accepted")
	}
}

func TestInsertCopiesInputs(t *testing.T) {
	db, _ := Open("", features.Options{})
	defer db.Close()
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	set := fixedFeatures(db.Options(), 2)
	id, err := db.Insert("w", 0, mesh, set)
	if err != nil {
		t.Fatal(err)
	}
	mesh.Vertices[0] = geom.V(99, 99, 99)
	set[features.PrincipalMoments][0] = 99
	rec, _ := db.Get(id)
	if rec.Mesh.Vertices[0] == geom.V(99, 99, 99) {
		t.Error("DB shares mesh storage with caller")
	}
	if rec.Features[features.PrincipalMoments][0] == 99 {
		t.Error("DB shares feature storage with caller")
	}
}

func TestKNNAndRadius(t *testing.T) {
	db, _ := Open("", features.Options{})
	defer db.Close()
	ids := make([]int64, 5)
	for i := range ids {
		ids[i] = testRecord(t, db, "s", 0, float64(i)*10)
	}
	dim := db.Options().Dim(features.PrincipalMoments)
	q := make(features.Vector, dim)
	for i := range q {
		q[i] = 21 + float64(i) // nearest to base=20 record
	}
	nn, err := db.KNN(features.PrincipalMoments, q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 2 || nn[0].ID != ids[2] {
		t.Errorf("KNN = %+v, want nearest %d", nn, ids[2])
	}
	within, err := db.WithinRadius(features.PrincipalMoments, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(within) != 1 || within[0].ID != ids[2] {
		t.Errorf("WithinRadius = %+v", within)
	}
	if _, err := db.KNN(features.Eigenvalues, q, 1); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := db.KNN(features.ShapeDistribution, make(features.Vector, db.Options().Dim(features.ShapeDistribution)), 1); err == nil {
		t.Error("missing index accepted")
	}
}

func TestDMax(t *testing.T) {
	db, _ := Open("", features.Options{})
	defer db.Close()
	if d := db.DMax(features.PrincipalMoments); d != 1e-12 {
		t.Errorf("empty DMax = %v", d)
	}
	testRecord(t, db, "a", 0, 0)
	if d := db.DMax(features.PrincipalMoments); d != 1e-12 {
		t.Errorf("single-point DMax = %v", d)
	}
	testRecord(t, db, "b", 0, 10)
	d := db.DMax(features.PrincipalMoments)
	// Two points differing by 10 in each of 3 dims: diag = 10√3.
	want := 10 * 1.7320508
	if d < want-0.01 || d > want+0.01 {
		t.Errorf("DMax = %v, want ≈%v", d, want)
	}
}

func TestGroupQueries(t *testing.T) {
	db, _ := Open("", features.Options{})
	defer db.Close()
	a := testRecord(t, db, "a", 1, 0)
	b := testRecord(t, db, "b", 1, 1)
	c := testRecord(t, db, "c", 2, 2)
	members := db.GroupMembers(1)
	if len(members) != 2 || members[0] != a || members[1] != b {
		t.Errorf("GroupMembers(1) = %v", members)
	}
	if got := db.GroupMembers(9); got != nil {
		t.Errorf("GroupMembers(9) = %v", got)
	}
	if db.GroupOf(c) != 2 || db.GroupOf(999) != 0 {
		t.Error("GroupOf wrong")
	}
	ids := db.IDs()
	if len(ids) != 3 || ids[0] != a || ids[2] != c {
		t.Errorf("IDs = %v", ids)
	}
	count := 0
	prev := int64(0)
	db.ForEach(func(r *Record) {
		if r.ID <= prev {
			t.Error("ForEach not in ascending ID order")
		}
		prev = r.ID
		count++
	})
	if count != 3 {
		t.Errorf("ForEach visited %d", count)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := testRecord(t, db, "alpha", 1, 0)
	b := testRecord(t, db, "beta", 2, 5)
	c := testRecord(t, db, "gamma", 2, 9)
	if _, err := db.Delete(b); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("reopened Len = %d, want 2", re.Len())
	}
	rec, ok := re.Get(a)
	if !ok || rec.Name != "alpha" || rec.Group != 1 {
		t.Errorf("alpha = %+v, ok=%v", rec, ok)
	}
	if _, ok := re.Get(b); ok {
		t.Error("deleted record resurrected")
	}
	// Index rebuilt: query works.
	dim := re.Options().Dim(features.PrincipalMoments)
	q := make(features.Vector, dim)
	for i := range q {
		q[i] = 9 + float64(i)
	}
	nn, err := re.KNN(features.PrincipalMoments, q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nn) != 1 || nn[0].ID != c {
		t.Errorf("reopened KNN = %+v, want %d", nn, c)
	}
	// New inserts get fresh IDs beyond the replayed maximum.
	d := testRecord(t, re, "delta", 0, 3)
	if d <= c {
		t.Errorf("new ID %d not beyond %d", d, c)
	}
	// Mesh geometry survived.
	if len(rec.Mesh.Faces) != 12 {
		t.Errorf("mesh faces = %d", len(rec.Mesh.Faces))
	}
}

func TestCrashRecoveryTruncatedJournal(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	testRecord(t, db, "a", 1, 0)
	testRecord(t, db, "b", 2, 5)
	db.Close()

	// Simulate a crash mid-append: truncate the journal inside the last
	// frame.
	path := filepath.Join(dir, journalName)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("recovered Len = %d, want 1 (torn tail dropped)", re.Len())
	}
	// The DB remains writable after recovery.
	testRecord(t, re, "c", 3, 7)
	if re.Len() != 2 {
		t.Errorf("post-recovery insert failed")
	}
}

func TestCrashRecoveryCorruptPayload(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	testRecord(t, db, "a", 1, 0)
	testRecord(t, db, "b", 2, 5)
	db.Close()

	// Flip a byte in the second frame's payload.
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Errorf("recovered Len = %d, want 1 (corrupt frame dropped)", re.Len())
	}
}

func TestCompact(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	keep := testRecord(t, db, "keep", 1, 0)
	for i := 0; i < 10; i++ {
		id := testRecord(t, db, "tmp", 0, float64(i))
		if _, err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, journalName)
	before, _ := os.Stat(path)
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Errorf("compaction did not shrink journal: %d -> %d", before.Size(), after.Size())
	}
	// Still writable and correct after compaction.
	testRecord(t, db, "post", 0, 50)
	db.Close()
	re, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Errorf("post-compact Len = %d, want 2", re.Len())
	}
	if _, ok := re.Get(keep); !ok {
		t.Error("kept record lost in compaction")
	}
}

func TestCompactInMemoryNoop(t *testing.T) {
	db, _ := Open("", features.Options{})
	defer db.Close()
	if err := db.Compact(); err != nil {
		t.Errorf("in-memory compact: %v", err)
	}
}

func TestConcurrentReadsDuringWrites(t *testing.T) {
	db, _ := Open("", features.Options{})
	defer db.Close()
	for i := 0; i < 20; i++ {
		testRecord(t, db, "seed", 0, float64(i))
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			testRecord(t, db, "w", 0, float64(100+i))
		}
	}()
	dim := db.Options().Dim(features.PrincipalMoments)
	q := make(features.Vector, dim)
	for i := 0; i < 200; i++ {
		if _, err := db.KNN(features.PrincipalMoments, q, 3); err != nil {
			t.Error(err)
			break
		}
		db.Len()
		db.DMax(features.PrincipalMoments)
	}
	<-done
	if db.Len() != 120 {
		t.Errorf("Len = %d, want 120", db.Len())
	}
}

func TestHasIndexAndStats(t *testing.T) {
	db, _ := Open("", features.Options{})
	defer db.Close()
	if db.HasIndex(features.PrincipalMoments) {
		t.Error("empty DB has index")
	}
	testRecord(t, db, "a", 0, 0)
	if !db.HasIndex(features.PrincipalMoments) {
		t.Error("index missing after insert")
	}
	_, height, count := db.IndexStats(features.PrincipalMoments)
	if height != 1 || count != 1 {
		t.Errorf("stats = height %d count %d", height, count)
	}
	if _, _, c := db.IndexStats(features.ShapeDistribution); c != 0 {
		t.Errorf("missing index stats count = %d", c)
	}
}

func TestSnapshotPointInTime(t *testing.T) {
	db, _ := Open("", features.Options{})
	defer db.Close()
	a := testRecord(t, db, "a", 1, 0)
	b := testRecord(t, db, "b", 2, 5)
	snap := db.Snapshot()
	if len(snap) != 2 || snap[0].ID != a || snap[1].ID != b {
		t.Fatalf("Snapshot = %+v", snap)
	}
	// Mutations after the snapshot are not visible in it.
	if _, err := db.Delete(a); err != nil {
		t.Fatal(err)
	}
	testRecord(t, db, "c", 0, 9)
	if len(snap) != 2 || snap[0].ID != a || snap[0].Name != "a" {
		t.Error("snapshot changed under mutation")
	}
	// Snapshot consumers may call back into the DB without deadlocking.
	for _, rec := range db.Snapshot() {
		if _, ok := db.Get(rec.ID); !ok {
			t.Errorf("callback Get(%d) failed", rec.ID)
		}
	}
	if got := db.Snapshot(); len(got) != 2 {
		t.Errorf("fresh snapshot has %d records", len(got))
	}
}

func TestGetMany(t *testing.T) {
	db, _ := Open("", features.Options{})
	defer db.Close()
	a := testRecord(t, db, "a", 1, 0)
	b := testRecord(t, db, "b", 2, 5)
	got := db.GetMany([]int64{b, 999, a})
	if len(got) != 3 {
		t.Fatalf("GetMany returned %d records", len(got))
	}
	if got[0] == nil || got[0].ID != b || got[1] != nil || got[2] == nil || got[2].ID != a {
		t.Errorf("GetMany = %+v", got)
	}
	if out := db.GetMany(nil); len(out) != 0 {
		t.Errorf("GetMany(nil) = %v", out)
	}
}

// TestConcurrentSnapshotMixedOps exercises Insert, Delete, Get, GetMany,
// Snapshot, and KNN from concurrent goroutines; run under -race it is the
// store's concurrency smoke test for the parallel execution layer.
func TestConcurrentSnapshotMixedOps(t *testing.T) {
	db, _ := Open("", features.Options{})
	defer db.Close()
	var seed []int64
	for i := 0; i < 30; i++ {
		seed = append(seed, testRecord(t, db, "seed", i%3, float64(i)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				testRecord(t, db, "w", 0, float64(1000+w*100+i))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, id := range seed[:10] {
			if _, err := db.Delete(id); err != nil {
				t.Error(err)
			}
		}
	}()
	dim := db.Options().Dim(features.PrincipalMoments)
	q := make(features.Vector, dim)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				if _, err := db.KNN(features.PrincipalMoments, q, 5); err != nil {
					t.Error(err)
					return
				}
				snap := db.Snapshot()
				prev := int64(0)
				for _, rec := range snap {
					if rec.ID <= prev {
						t.Error("snapshot not in ascending ID order")
						return
					}
					prev = rec.ID
				}
				db.GetMany(seed)
			}
		}()
	}
	wg.Wait()
	if want := 30 + 4*40 - 10; db.Len() != want {
		t.Errorf("Len = %d, want %d", db.Len(), want)
	}
}
