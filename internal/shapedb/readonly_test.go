package shapedb

import (
	"errors"
	"testing"

	"threedess/internal/faultfs"
	"threedess/internal/features"
	"threedess/internal/geom"
)

// The ENOSPC degradation contract (DESIGN.md §15): a failed journal
// append or sync fences the database read-only instead of poisoning it.
// Reads keep serving, every acknowledged write survives a reopen, the
// failed write is NOT acknowledged and NOT present after recovery, and
// compaction — which rewrites the journal from the acknowledged
// in-memory state — heals the fence once space is available again.

var errNoSpace = errors.New("no space left on device")

// fencedDB opens a durable DB through a write-injecting filesystem,
// inserts seed acknowledged records, then flips on the persistent
// write-failure regime and drives one insert into the fence.
func fencedDB(t *testing.T, dir string, seed int) (*DB, *faultfs.Injector, []int64) {
	t.Helper()
	inj := faultfs.NewInjector(faultfs.OS{})
	db, err := OpenFS(dir, features.Options{}, inj)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var acked []int64
	for i := 0; i < seed; i++ {
		acked = append(acked, testRecord(t, db, "seed", i, float64(i)))
	}
	inj.FailWritesWith(errNoSpace)
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	if _, err := db.Insert("doomed", 99, mesh, fixedFeatures(db.Options(), 99)); err == nil {
		t.Fatal("insert under full disk succeeded")
	} else if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("failing insert returned %v, want ErrReadOnly", err)
	}
	return db, inj, acked
}

func TestEnospcFencesReadOnlyNotFailStop(t *testing.T) {
	dir := t.TempDir()
	db, _, acked := fencedDB(t, dir, 3)
	defer db.Close()

	if db.ReadOnlyErr() == nil {
		t.Fatal("ReadOnlyErr nil after failed append")
	}
	st := db.Stats()
	if !st.ReadOnly || st.ReadOnlyReason == "" {
		t.Fatalf("stats do not report the fence: %+v", st)
	}

	// Further writes are refused up front with the sentinel.
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	if _, err := db.Insert("more", 1, mesh, fixedFeatures(db.Options(), 5)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("insert on fenced db: %v, want ErrReadOnly", err)
	}
	if _, err := db.Delete(acked[0]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("delete on fenced db: %v, want ErrReadOnly", err)
	}

	// Reads keep serving: every acknowledged record, queries included.
	for _, id := range acked {
		if _, ok := db.Get(id); !ok {
			t.Fatalf("acked record %d unreadable under fence", id)
		}
	}
	for _, k := range features.CoreKinds {
		if !db.HasIndex(k) {
			continue
		}
		if _, err := db.KNN(k, fixedFeatures(db.Options(), 1)[k], 2); err != nil {
			t.Fatalf("KNN under fence: %v", err)
		}
	}
}

func TestEnospcZeroAckedWriteLossOnReopen(t *testing.T) {
	dir := t.TempDir()
	db, _, acked := fencedDB(t, dir, 3)
	db.Close()

	re, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	// The fence rolled the torn append back to the last acknowledged
	// frame: recovery sees a clean journal, not a quarantined tail.
	if rep := re.Recovery(); rep.Tail != TailClean || rep.DiscardedBytes != 0 {
		t.Fatalf("recovery found garbage after fenced append: %+v", rep)
	}
	if re.Len() != len(acked) {
		t.Fatalf("recovered %d records, want %d acked", re.Len(), len(acked))
	}
	for _, id := range acked {
		if _, ok := re.Get(id); !ok {
			t.Fatalf("acked record %d lost", id)
		}
	}
	if re.ReadOnlyErr() != nil {
		t.Fatal("fresh reopen inherited the fence")
	}
}

func TestCompactHealsFenceWhenSpaceFrees(t *testing.T) {
	dir := t.TempDir()
	db, inj, acked := fencedDB(t, dir, 3)
	defer db.Close()

	// Space still exhausted: compaction's temp-file writes fail too and
	// the fence must hold.
	if err := db.Compact(); err == nil {
		t.Fatal("compact under full disk succeeded")
	}
	if db.ReadOnlyErr() == nil {
		t.Fatal("fence lifted by a failed compaction")
	}

	// Space freed: compaction rewrites the journal from acknowledged
	// state and lifts the fence.
	inj.FailWritesWith(nil)
	if err := db.Compact(); err != nil {
		t.Fatalf("compact after space freed: %v", err)
	}
	if err := db.ReadOnlyErr(); err != nil {
		t.Fatalf("fence survived a successful compaction: %v", err)
	}
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(2, 1, 1))
	id, err := db.Insert("after", 7, mesh, fixedFeatures(db.Options(), 7))
	if err != nil {
		t.Fatalf("insert after heal: %v", err)
	}

	re, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.Len() != len(acked)+1 {
		t.Fatalf("recovered %d records, want %d", re.Len(), len(acked)+1)
	}
	if _, ok := re.Get(id); !ok {
		t.Fatal("post-heal insert lost")
	}
}

func TestFencedDeleteBatchNotAcknowledged(t *testing.T) {
	dir := t.TempDir()
	db, _, acked := fencedDB(t, dir, 4)
	if _, err := db.DeleteMany(acked[:2]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("DeleteMany on fenced db: %v, want ErrReadOnly", err)
	}
	db.Close()

	re, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.Len() != len(acked) {
		t.Fatalf("unacknowledged batch delete persisted: %d records, want %d", re.Len(), len(acked))
	}
}

func TestReadJournalServesUnderFence(t *testing.T) {
	// Backup of a fenced node must work: the fence blocks writes only.
	dir := t.TempDir()
	db, _, _ := fencedDB(t, dir, 3)
	defer db.Close()

	st := db.ReplState()
	if st.Epoch == 0 || st.Committed == 0 {
		t.Fatalf("no committed journal to read: %+v", st)
	}
	got := int64(0)
	for got < st.Committed {
		chunk, _, err := db.ReadJournal(st.Epoch, got, 1<<20)
		if err != nil {
			t.Fatalf("ReadJournal under fence at %d: %v", got, err)
		}
		if len(chunk) == 0 {
			t.Fatalf("no progress at %d of %d", got, st.Committed)
		}
		got += int64(len(chunk))
	}
}
