package shapedb

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand/v2"
	"path/filepath"

	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/rtree"
)

// Replication primitives: a warm standby keeps a byte-identical copy of the
// primary's journal by pulling committed frames and appending them verbatim
// (appendRaw), so "how far has the standby got" is a plain byte offset into
// a file both sides agree on. The agreement is scoped by an epoch — a
// random token regenerated whenever the journal file's identity changes
// (every Open, every compaction, every ResetReplica) — because after any of
// those events old offsets describe bytes that no longer exist. A standby
// seeing an unfamiliar epoch discards its copy and re-bootstraps from
// offset zero; there is deliberately no delta protocol across epoch
// changes, which keeps the invariant trivial: within one epoch, bytes
// [0, committed) never change.

// ErrReplEpoch is returned by ReadJournal when the caller's epoch no longer
// matches the journal file (the primary restarted or compacted). The
// standby must re-bootstrap from offset zero at the current epoch.
var ErrReplEpoch = errors.New("shapedb: replication epoch changed")

// ErrReplOffset is returned when a replication offset does not line up with
// the journal: a ReadJournal past the committed end, or an ApplyReplicated
// whose expected offset differs from the local journal length.
var ErrReplOffset = errors.New("shapedb: replication offset mismatch")

// ErrNotDurable is returned by replication operations on an in-memory
// database, which has no journal to stream or replay.
var ErrNotDurable = errors.New("shapedb: in-memory database cannot replicate")

// ReplState identifies a point in the journal stream: the epoch naming the
// current journal file's identity and the committed byte offset (the end of
// the last fully-written, synced frame).
type ReplState struct {
	Epoch     int64 `json:"epoch"`
	Committed int64 `json:"committed"`
}

// newReplEpoch draws a fresh epoch token. Epochs are compared only for
// equality, so a random 63-bit value is enough: a collision between two
// distinct journal incarnations is vanishingly unlikely and would only
// delay a standby until its next offset mismatch.
func newReplEpoch() int64 {
	for {
		if e := rand.Int64(); e != 0 {
			return e // 0 is reserved for "unknown"
		}
	}
}

// ReplState returns the current epoch and committed offset. In-memory
// databases report a zero state.
func (db *DB) ReplState() ReplState {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.replStateLocked()
}

func (db *DB) replStateLocked() ReplState {
	if db.journal == nil || db.journal.f == nil {
		return ReplState{}
	}
	return ReplState{Epoch: db.replEpoch, Committed: db.journal.off}
}

// ReadJournal returns raw journal bytes starting at off, cut at a frame
// boundary, at most maxBytes long (except that a single frame larger than
// maxBytes is returned whole, so the stream always makes progress). It
// never returns bytes past the committed offset, and it refuses a stale
// epoch with ErrReplEpoch so a standby can never splice bytes from two
// different journal incarnations. The returned state is the journal
// position the bytes were read against.
func (db *DB) ReadJournal(epoch, off int64, maxBytes int) ([]byte, ReplState, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	st := db.replStateLocked()
	if db.journal == nil {
		return nil, st, ErrNotDurable
	}
	if db.journal.failed != nil {
		return nil, st, db.journal.failed
	}
	if epoch != db.replEpoch {
		return nil, st, ErrReplEpoch
	}
	if off < 0 || off > st.Committed {
		return nil, st, fmt.Errorf("%w: requested offset %d, committed %d", ErrReplOffset, off, st.Committed)
	}
	if off == st.Committed {
		return nil, st, nil
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	want := st.Committed - off
	if want > int64(maxBytes) {
		want = int64(maxBytes)
	}
	buf, err := db.readJournalSpan(off, want)
	if err != nil {
		return nil, st, err
	}
	// Trim to the last complete frame inside the buffer. Offsets are always
	// frame boundaries, so walking headers from the start is sound.
	end := 0
	for end+8 <= len(buf) {
		size := int64(binary.LittleEndian.Uint32(buf[end:]))
		if size > maxFrame {
			return nil, st, fmt.Errorf("shapedb: implausible frame length %d at journal offset %d", size, off+int64(end))
		}
		fe := end + 8 + int(size)
		if int64(fe) > int64(len(buf)) {
			break
		}
		end = fe
	}
	if end == 0 {
		// The first frame alone exceeds maxBytes: read it whole. The buffer
		// may be shorter than a frame header (tiny maxBytes), so fetch the
		// header explicitly before trusting its length field.
		if len(buf) < 8 {
			if buf, err = db.readJournalSpan(off, 8); err != nil {
				return nil, st, err
			}
		}
		size := int64(binary.LittleEndian.Uint32(buf))
		if size > maxFrame {
			return nil, st, fmt.Errorf("shapedb: implausible frame length %d at journal offset %d", size, off)
		}
		buf, err = db.readJournalSpan(off, 8+size)
		if err != nil {
			return nil, st, err
		}
		return buf, st, nil
	}
	return buf[:end], st, nil
}

// readJournalSpan reads [off, off+n) from the journal file through a
// separate read-only handle, leaving the append handle untouched. Callers
// hold at least the read lock, which excludes compaction's file swap.
func (db *DB) readJournalSpan(off, n int64) ([]byte, error) {
	f, err := db.fsys.Open(filepath.Join(db.dir, journalName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, fmt.Errorf("shapedb: reading journal span [%d,%d): %w", off, off+n, err)
	}
	return buf, nil
}

// parsedFrame is one decoded frame of a replication chunk, with its byte
// span relative to the chunk start.
type parsedFrame struct {
	entry     *journalEntry
	off, size int64
}

// parseFrames validates and decodes every frame in chunk. The chunk must
// consist of whole frames — a torn trailer means the transport (or a
// hostile peer) violated the protocol, and nothing is applied.
func parseFrames(chunk []byte) ([]parsedFrame, error) {
	var out []parsedFrame
	pos := int64(0)
	for pos < int64(len(chunk)) {
		if pos+8 > int64(len(chunk)) {
			return nil, fmt.Errorf("shapedb: replication chunk torn mid-header at %d", pos)
		}
		size := int64(binary.LittleEndian.Uint32(chunk[pos:]))
		want := binary.LittleEndian.Uint32(chunk[pos+4:])
		if size > maxFrame {
			return nil, fmt.Errorf("shapedb: replication frame at %d claims implausible length %d", pos, size)
		}
		end := pos + 8 + size
		if end > int64(len(chunk)) {
			return nil, fmt.Errorf("shapedb: replication chunk torn mid-payload at %d", pos)
		}
		payload := chunk[pos+8 : end]
		if crc32.ChecksumIEEE(payload) != want {
			return nil, fmt.Errorf("shapedb: replication frame at %d fails checksum", pos)
		}
		var e journalEntry
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
			return nil, fmt.Errorf("shapedb: decoding replication frame at %d: %w", pos, err)
		}
		out = append(out, parsedFrame{entry: &e, off: pos, size: end - pos})
		pos = end
	}
	return out, nil
}

// ApplyReplicated appends a chunk of raw journal frames shipped from a
// primary and applies their entries to the in-memory store. expectOff must
// equal the local journal length — the local file is a byte-for-byte prefix
// of the primary's, so any other offset means the streams have diverged and
// the caller must re-bootstrap. The chunk is validated in full before any
// byte lands; it is then written verbatim (preserving byte identity),
// synced (durable before the pull is acknowledged upstream), and finally
// applied in memory. It returns the new committed offset.
func (db *DB) ApplyReplicated(expectOff int64, chunk []byte) (int64, error) {
	frames, err := parseFrames(chunk)
	if err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.journal == nil {
		return 0, ErrNotDurable
	}
	if db.journal.failed != nil {
		return 0, db.journal.failed
	}
	base := db.journal.off
	if expectOff != base {
		return base, fmt.Errorf("%w: expected %d, local journal at %d", ErrReplOffset, expectOff, base)
	}
	for _, fr := range frames {
		if fr.entry.Op == opInsert {
			set, err := decodeFeatures(fr.entry.Features)
			if err != nil {
				return base, fmt.Errorf("shapedb: replicated entry %d: %w", fr.entry.ID, err)
			}
			// Unlike local replay, a feature mismatch here is a hard error:
			// the primary acknowledged this record under the same options a
			// correctly-configured standby runs with, so a mismatch means
			// the standby is misconfigured and silently skipping would
			// diverge the stores.
			if err := checkFeatures(db.opts, set); err != nil {
				return base, fmt.Errorf("shapedb: replicated entry %d incompatible with local options (standby misconfigured?): %w", fr.entry.ID, err)
			}
		}
	}
	if err := db.journal.appendRaw(chunk); err != nil {
		return base, err
	}
	if err := db.journal.sync(); err != nil {
		return base, err
	}
	for _, fr := range frames {
		e := fr.entry
		db.entryCount++
		switch e.Op {
		case opInsert:
			set, _ := decodeFeatures(e.Features) // validated above
			mesh := &geom.Mesh{Vertices: e.Vertices, Faces: e.Faces}
			rec := &Record{
				ID: e.ID, Name: e.Name, Group: e.Group, Mesh: mesh,
				Features: set, Degraded: e.Degraded,
				IdemKey: e.IdemKey, IdemIndex: e.IdemIdx, IdemCount: e.IdemCnt,
			}
			db.applyInsert(rec)
			db.setFrame(rec.ID, frameRef{off: base + fr.off, size: fr.size})
		case opDelete:
			db.applyDelete(e.ID)
		}
	}
	return db.journal.off, nil
}

// ResetReplica empties the database and truncates its journal to zero, the
// first step of a snapshot bootstrap: the standby then streams the
// primary's whole journal from offset zero through ApplyReplicated. Every
// in-memory structure (records, indexes, bounds, frame map, quarantine) is
// dropped; the epoch is regenerated because the old file's offsets are
// gone.
func (db *DB) ResetReplica() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.journal == nil {
		return ErrNotDurable
	}
	if db.journal.failed != nil {
		return db.journal.failed
	}
	if err := db.journal.f.Truncate(0); err != nil {
		return fmt.Errorf("shapedb: truncating journal for bootstrap: %w", err)
	}
	if _, err := db.journal.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	db.journal.off = 0
	if err := db.journal.sync(); err != nil {
		return err
	}
	db.records = make(map[int64]*Record)
	db.indexes = make(map[features.Kind]*rtree.Tree)
	db.lo = make(map[features.Kind][]float64)
	db.hi = make(map[features.Kind][]float64)
	db.frames = make(map[int64]frameRef)
	db.idem = make(map[string]map[int]int64)
	db.quarantined = make(map[int64]QuarantineInfo)
	db.liveBytes = 0
	db.entryCount = 0
	db.dirtyQuarantine = 0
	db.nextID = 1
	db.replEpoch = newReplEpoch()
	return nil
}
