package shapedb

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"math"
	"sort"

	"threedess/internal/geom"
)

// Migration primitives for live shard rebalancing (DESIGN.md §14): a
// source shard exports moved records as framed journal bytes, the
// destination imports them through the same validate-everything-first
// discipline as replication, both sides answer content CRCs so the
// migration driver can verify the copy record-by-record, and — only
// after cutover is acked fleet-wide — the source drops the moved
// records in one journaled batch.

// ExportFrame is one record shipped between shards: the exact framed
// journal bytes ([4B length][4B CRC32][gob payload]) the record is
// durable under on the source, plus the canonical content CRC used for
// post-copy verification. Shipping the source's own frame bytes means
// the destination persists precisely what the source acknowledged —
// there is no re-encode step that could silently alter a record in
// transit.
type ExportFrame struct {
	ID    int64  `json:"id"`
	Frame []byte `json:"frame"` // base64 over JSON
	CRC   uint32 `json:"crc"`
}

// encodeFrame renders a journal entry as framed bytes without touching
// any file — the in-memory store's export path, and the framing mirror
// of journal.append.
func encodeFrame(e *journalEntry) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(e); err != nil {
		return nil, fmt.Errorf("shapedb: encoding export entry: %w", err)
	}
	frame := make([]byte, 8+payload.Len())
	binary.LittleEndian.PutUint32(frame[0:], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload.Bytes()))
	copy(frame[8:], payload.Bytes())
	return frame, nil
}

// ContentCRC is the canonical content checksum of one record: a CRC32
// over a deterministic serialization of every journaled field. It is
// deliberately NOT a checksum of the frame bytes — gob encodes map
// fields in nondeterministic order, so two byte-different frames can
// hold the identical record, and migration verification must compare
// records, not encodings.
func (rec *Record) ContentCRC() uint32 {
	h := crc32.NewIEEE()
	var buf [8]byte
	putI := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	putF := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	putS := func(s string) {
		putI(int64(len(s)))
		h.Write([]byte(s))
	}
	putI(rec.ID)
	putS(rec.Name)
	putI(int64(rec.Group))
	putI(int64(len(rec.Mesh.Vertices)))
	for _, v := range rec.Mesh.Vertices {
		putF(v.X)
		putF(v.Y)
		putF(v.Z)
	}
	putI(int64(len(rec.Mesh.Faces)))
	for _, f := range rec.Mesh.Faces {
		putI(int64(f[0]))
		putI(int64(f[1]))
		putI(int64(f[2]))
	}
	names := make([]string, 0, len(rec.Features))
	for k := range rec.Features {
		names = append(names, k.String())
	}
	sort.Strings(names)
	putI(int64(len(names)))
	for _, name := range names {
		putS(name)
		var vec []float64
		for k, v := range rec.Features {
			if k.String() == name {
				vec = v
				break
			}
		}
		putI(int64(len(vec)))
		for _, x := range vec {
			putF(x)
		}
	}
	degraded := append([]string(nil), rec.Degraded...)
	sort.Strings(degraded)
	putI(int64(len(degraded)))
	for _, d := range degraded {
		putS(d)
	}
	putS(rec.IdemKey)
	putI(int64(rec.IdemIndex))
	putI(int64(rec.IdemCount))
	return h.Sum32()
}

// ExportRecords ships the given records for migration. For a durable
// store each record's exact on-disk journal frame is re-read and
// re-verified (CRC + full content agreement with memory, exactly the
// scrubber's check) before it is shipped, so a rotten frame fails the
// export instead of propagating; an in-memory store frames the record
// fresh. Unknown ids are skipped — the migration driver enumerates ids
// and exports them in separate steps, and a record deleted in between
// simply no longer needs to move.
func (db *DB) ExportRecords(ids []int64) ([]ExportFrame, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]ExportFrame, 0, len(ids))
	for _, id := range ids {
		rec, ok := db.records[id]
		if !ok {
			continue
		}
		var frame []byte
		if db.journal != nil {
			ref, ok := db.frames[id]
			if !ok {
				return nil, fmt.Errorf("shapedb: exporting %d: no journal frame recorded", id)
			}
			var err error
			if frame, err = db.readFrame(ref); err != nil {
				return nil, fmt.Errorf("shapedb: exporting %d: %w", id, err)
			}
			if state, detail := checkFrame(frame, rec); state != ScrubClean {
				return nil, fmt.Errorf("shapedb: exporting %d: frame unservable (%v): %s", id, state, detail)
			}
		} else {
			var err error
			if frame, err = encodeFrame(entryOf(rec)); err != nil {
				return nil, err
			}
		}
		out = append(out, ExportFrame{ID: id, Frame: frame, CRC: rec.ContentCRC()})
	}
	return out, nil
}

// ImportFrames lands exported records on a destination shard. The whole
// batch is validated before any byte is applied: every frame must parse
// (header, CRC, decodable insert entry matching its declared id), its
// features must satisfy the local options, and the decoded record must
// reproduce the declared content CRC. Records whose id already exists
// locally are skipped, which is what makes a re-driven copy batch
// idempotent — a migration resumed after a crash re-imports the same
// range and only the missing tail lands. Durable stores append all new
// frames verbatim and fsync once before applying, so an acknowledged
// import is as durable as an acknowledged insert. Returns how many
// records were added (skips excluded).
func (db *DB) ImportFrames(frames []ExportFrame) (int, error) {
	type staged struct {
		ef    ExportFrame
		rec   *Record
		frame parsedFrame
	}
	stage := make([]staged, 0, len(frames))
	for i, ef := range frames {
		parsed, err := parseFrames(ef.Frame)
		if err != nil {
			return 0, fmt.Errorf("shapedb: import frame %d: %w", i, err)
		}
		if len(parsed) != 1 {
			return 0, fmt.Errorf("shapedb: import frame %d holds %d journal frames, want 1", i, len(parsed))
		}
		e := parsed[0].entry
		if e.Op != opInsert || e.ID != ef.ID {
			return 0, fmt.Errorf("shapedb: import frame %d holds op=%d id=%d, want insert of %d", i, e.Op, e.ID, ef.ID)
		}
		set, err := decodeFeatures(e.Features)
		if err != nil {
			return 0, fmt.Errorf("shapedb: import record %d: %w", ef.ID, err)
		}
		if err := checkFeatures(db.opts, set); err != nil {
			return 0, fmt.Errorf("shapedb: import record %d incompatible with local options: %w", ef.ID, err)
		}
		rec := &Record{
			ID: e.ID, Name: e.Name, Group: e.Group,
			Mesh:     &geom.Mesh{Vertices: e.Vertices, Faces: e.Faces},
			Features: set, Degraded: e.Degraded,
			IdemKey: e.IdemKey, IdemIndex: e.IdemIdx, IdemCount: e.IdemCnt,
		}
		if got := rec.ContentCRC(); got != ef.CRC {
			return 0, fmt.Errorf("shapedb: import record %d content CRC %08x, declared %08x", ef.ID, got, ef.CRC)
		}
		stage = append(stage, staged{ef: ef, rec: rec, frame: parsed[0]})
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	if db.fenced != nil {
		return 0, db.fenced
	}
	fresh := stage[:0]
	for _, s := range stage {
		if _, exists := db.records[s.ef.ID]; !exists {
			fresh = append(fresh, s)
		}
	}
	if len(fresh) == 0 {
		return 0, nil
	}
	if db.journal != nil {
		if db.journal.failed != nil {
			return 0, db.journal.failed
		}
		var chunk bytes.Buffer
		for _, s := range fresh {
			chunk.Write(s.ef.Frame)
		}
		base := db.journal.off
		if err := db.journal.appendRaw(chunk.Bytes()); err != nil {
			return 0, db.fenceLocked(err)
		}
		if err := db.journal.commitFrom(base); err != nil {
			return 0, db.fenceLocked(err)
		}
		off := base
		for _, s := range fresh {
			db.entryCount++
			db.applyInsert(s.rec)
			db.setFrame(s.rec.ID, frameRef{off: off, size: int64(len(s.ef.Frame))})
			off += int64(len(s.ef.Frame))
		}
	} else {
		for _, s := range fresh {
			db.applyInsert(s.rec)
		}
	}
	db.wakeCommitWaiters()
	return len(fresh), nil
}

// ReplayExports folds a stream of raw journal frames (inserts and
// deletes, as produced by ReadJournal or a verified backup archive) down
// to the surviving live record set and re-emits each survivor as an
// ExportFrame: the exact original frame bytes plus the canonical content
// CRC. It is the bridge from a node backup to the ring/migration copy
// path — restore reads a shard's archived journal, folds it here, and
// lands the survivors on their new owners via ImportFrames, which is how
// an N-shard backup restores onto an M-shard cluster.
func ReplayExports(chunk []byte) ([]ExportFrame, error) {
	frames, err := parseFrames(chunk)
	if err != nil {
		return nil, err
	}
	live := make(map[int64]parsedFrame)
	for _, fr := range frames {
		switch fr.entry.Op {
		case opInsert:
			live[fr.entry.ID] = fr
		case opDelete:
			delete(live, fr.entry.ID)
		default:
			return nil, fmt.Errorf("shapedb: replay frame at %d holds unknown op %d", fr.off, fr.entry.Op)
		}
	}
	ids := make([]int64, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]ExportFrame, 0, len(ids))
	for _, id := range ids {
		fr := live[id]
		e := fr.entry
		set, err := decodeFeatures(e.Features)
		if err != nil {
			return nil, fmt.Errorf("shapedb: replaying record %d: %w", id, err)
		}
		rec := &Record{
			ID: e.ID, Name: e.Name, Group: e.Group,
			Mesh:     &geom.Mesh{Vertices: e.Vertices, Faces: e.Faces},
			Features: set, Degraded: e.Degraded,
			IdemKey: e.IdemKey, IdemIndex: e.IdemIdx, IdemCount: e.IdemCnt,
		}
		frame := append([]byte(nil), chunk[fr.off:fr.off+fr.size]...)
		out = append(out, ExportFrame{ID: id, Frame: frame, CRC: rec.ContentCRC()})
	}
	return out, nil
}

// RecordCRCs answers the verification round: for each requested id, the
// record's canonical content CRC, with missing ids reported separately
// (a record can legitimately vanish between enumeration and
// verification only via deletion — the driver re-checks those).
func (db *DB) RecordCRCs(ids []int64) (crcs map[int64]uint32, missing []int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	crcs = make(map[int64]uint32, len(ids))
	for _, id := range ids {
		if rec, ok := db.records[id]; ok {
			crcs[id] = rec.ContentCRC()
		} else {
			missing = append(missing, id)
		}
	}
	return crcs, missing
}

// DeleteMany removes a batch of records under one lock hold with one
// final fsync — the post-cutover drop of moved records, where a
// per-record Delete would pay thousands of syncs. Unknown ids are
// skipped (a resumed drop re-submits ids already gone). Returns how
// many records were deleted.
func (db *DB) DeleteMany(ids []int64) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.fenced != nil {
		return 0, db.fenced
	}
	base := int64(0)
	if db.journal != nil {
		base = db.journal.off
	}
	dropped := 0
	for _, id := range ids {
		if _, ok := db.records[id]; !ok {
			continue
		}
		if db.journal != nil {
			if err := db.journal.append(&journalEntry{Op: opDelete, ID: id}); err != nil {
				// The failed append was rolled back but earlier deletes of
				// this batch are already applied unsynced; fall through to
				// commitFrom, which either makes them durable or rolls the
				// whole batch's bytes back under the fence.
				db.fenceLocked(err)
				break
			}
			db.entryCount++
		}
		db.applyDelete(id)
		dropped++
	}
	if db.journal != nil && (dropped > 0 || db.fenced != nil) {
		if err := db.journal.commitFrom(base); err != nil {
			return dropped, db.fenceLocked(err)
		}
	}
	if db.fenced != nil {
		return dropped, db.fenced
	}
	if dropped > 0 {
		db.wakeCommitWaiters()
	}
	return dropped, nil
}
