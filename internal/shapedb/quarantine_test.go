package shapedb

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"threedess/internal/faultfs"
	"threedess/internal/features"
	"threedess/internal/geom"
)

// Inserting a non-finite vector must fail before anything reaches the
// journal: a poisoned journal entry would otherwise come back at every
// future Open.
func TestInsertRejectsNonFiniteFeatures(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	goodID := testRecord(t, db, "good", 0, 1)
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))

	bad := fixedFeatures(db.Options(), 2)
	bad[features.MomentInvariants][0] = math.NaN()
	if _, err := db.Insert("nan", 0, mesh, bad); err == nil {
		t.Fatal("NaN feature vector accepted")
	}
	bad[features.MomentInvariants][0] = math.Inf(1)
	if _, err := db.Insert("inf", 0, mesh, bad); err == nil {
		t.Fatal("Inf feature vector accepted")
	}
	short := fixedFeatures(db.Options(), 2)
	short[features.MomentInvariants] = short[features.MomentInvariants][:1]
	if _, err := db.Insert("short", 0, mesh, short); err == nil {
		t.Fatal("wrong-dimension feature vector accepted")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// The rejected inserts must have left no trace in the journal.
	db, err = Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", db.Len())
	}
	if _, ok := db.Get(goodID); !ok {
		t.Error("good record lost")
	}
	if rep := db.Recovery(); rep.SkippedRecords != 0 {
		t.Errorf("SkippedRecords = %d, want 0", rep.SkippedRecords)
	}
}

// A journal that somehow carries a poison record (older binary without the
// insert-time check, bit-identical corruption that still passes CRC, a
// different option set) must not panic Open or poison the index — the
// record is skipped and counted.
func TestReplaySkipsPoisonRecords(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := db.Options()
	goodID := testRecord(t, db, "good", 0, 1)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Append a poison insert behind the database's back, with a valid
	// frame and CRC so only the feature check can refuse it.
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	poison := fixedFeatures(opts, 9)
	poison[features.GeometricParams][0] = math.NaN()
	j, err := openJournal(faultfs.OS{}, filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append(&journalEntry{
		Op:       opInsert,
		ID:       99,
		Name:     "poison",
		Vertices: mesh.Vertices,
		Faces:    mesh.Faces,
		Features: encodeFeatures(poison),
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.close(); err != nil {
		t.Fatal(err)
	}

	db, err = Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (poison record skipped)", db.Len())
	}
	if _, ok := db.Get(99); ok {
		t.Error("poison record is live")
	}
	if _, ok := db.Get(goodID); !ok {
		t.Error("good record lost")
	}
	rep := db.Recovery()
	if rep.SkippedRecords != 1 {
		t.Fatalf("SkippedRecords = %d, want 1", rep.SkippedRecords)
	}
	if !strings.Contains(rep.String(), "1 invalid records skipped") {
		t.Errorf("report %q does not mention the skip", rep.String())
	}
	// The database must stay fully usable after a skip.
	if id := testRecord(t, db, "after", 0, 2); id <= goodID {
		t.Errorf("post-skip insert got id %d", id)
	}
}

// Degradation flags ride the journal through recovery and compaction.
func TestDegradedFlagsSurviveRecoveryAndCompaction(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	set := fixedFeatures(db.Options(), 1)
	delete(set, features.Eigenvalues)
	id, err := db.InsertFull("degraded", 2, mesh, set, []string{"eigenvalues"})
	if err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		rec, ok := db.Get(id)
		if !ok {
			t.Fatalf("%s: record missing", stage)
		}
		if len(rec.Degraded) != 1 || rec.Degraded[0] != "eigenvalues" {
			t.Errorf("%s: Degraded = %v", stage, rec.Degraded)
		}
		if _, ok := rec.Features[features.Eigenvalues]; ok {
			t.Errorf("%s: degraded kind present in features", stage)
		}
	}
	check("insert")

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	check("recovery")

	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	check("compaction")
}
