package shapedb

import (
	"sort"

	"threedess/internal/features"
	"threedess/internal/rtree"
)

// The index↔store reconciler. The R-tree indexes are derived state: every
// entry must correspond to exactly one live record's feature vector. The
// insert/delete paths maintain that by construction, but a long-running
// process should not *trust* it forever — a bug, a partial degraded
// re-ingest, or in-process corruption can leave orphaned entries (index
// points at nothing), missing entries (record invisible to index-backed
// search), or stale entries (wrong position). The reconciler diffs each
// index against the record set and repairs incrementally under the
// existing locks; past a divergence threshold (or when the tree's own
// structural invariants fail) it rebuilds the index offline and swaps it
// in atomically, searches continuing against the old tree meanwhile.

// KindDivergence is the reconciliation outcome for one feature kind.
type KindDivergence struct {
	Kind string `json:"kind"`
	// Entries / Records are the index size and the number of records
	// carrying this kind at diff time.
	Entries int `json:"entries"`
	Records int `json:"records"`
	// Orphans: index entries with no matching record. Missing: record
	// vectors absent from the index. Stale: entries present under the
	// right id but at the wrong position.
	Orphans int `json:"orphans"`
	Missing int `json:"missing"`
	Stale   int `json:"stale"`
	// InvariantError is the tree's CheckInvariants failure, if any —
	// it forces a rebuild regardless of the divergence count.
	InvariantError string `json:"invariant_error,omitempty"`
	// Repaired counts incremental fixes applied; Rebuilt reports the
	// index was rebuilt from the record set and swapped.
	Repaired int  `json:"repaired"`
	Rebuilt  bool `json:"rebuilt"`
}

func (d KindDivergence) divergent() int { return d.Orphans + d.Missing + d.Stale }

// ReconcileReport aggregates a reconciliation (or dry-run verification)
// pass across every indexed feature kind.
type ReconcileReport struct {
	// Kinds lists only the kinds where something was found; KindsChecked
	// counts all of them.
	Kinds        []KindDivergence `json:"kinds,omitempty"`
	KindsChecked int              `json:"kinds_checked"`
	Divergent    int              `json:"divergent"`
	Repaired     int              `json:"repaired"`
	Rebuilds     int              `json:"rebuilds"`
}

// Clean reports whether the diff found full index↔store agreement.
func (r *ReconcileReport) Clean() bool { return r.Divergent == 0 }

// entryRef pins one index entry precisely enough to delete it.
type entryRef struct {
	id int64
	pt rtree.Point
}

// kindDiff is the working state of one kind's reconciliation.
type kindDiff struct {
	kind     features.Kind
	orphans  []entryRef
	missing  []int64
	stale    []entryRef // id + the entry's current (wrong) position
	invErr   error
	entries  int
	records  int
	repaired int
	rebuilt  bool
}

func (d *kindDiff) divergent() int { return len(d.orphans) + len(d.missing) + len(d.stale) }

// diffIndexes computes the index↔store divergence for every kind under
// one read lock. Kinds are the union of indexed kinds and kinds present
// on records, so even a wholly missing index is surfaced.
func (db *DB) diffIndexes() []*kindDiff {
	db.mu.RLock()
	defer db.mu.RUnlock()
	kindSet := make(map[features.Kind]bool)
	for k := range db.indexes {
		kindSet[k] = true
	}
	for _, rec := range db.records {
		for k := range rec.Features {
			kindSet[k] = true
		}
	}
	kinds := make([]features.Kind, 0, len(kindSet))
	for k := range kindSet {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })

	var diffs []*kindDiff
	for _, k := range kinds {
		d := &kindDiff{kind: k}
		seen := make(map[int64]rtree.Point)
		if idx, ok := db.indexes[k]; ok {
			d.entries = idx.Len()
			d.invErr = idx.CheckInvariants()
			idx.ForEachEntry(func(id int64, r rtree.Rect) bool {
				pt := append(rtree.Point(nil), r.Min...)
				if _, dup := seen[id]; dup {
					// A second entry under the same id is always excess.
					d.orphans = append(d.orphans, entryRef{id: id, pt: pt})
					return true
				}
				seen[id] = pt
				return true
			})
		}
		for id, rec := range db.records {
			v, ok := rec.Features[k]
			if !ok {
				continue
			}
			d.records++
			pt, ok := seen[id]
			if !ok {
				d.missing = append(d.missing, id)
				continue
			}
			if !pointMatchesVector(pt, v) {
				d.stale = append(d.stale, entryRef{id: id, pt: pt})
			}
			delete(seen, id)
		}
		for id, pt := range seen {
			d.orphans = append(d.orphans, entryRef{id: id, pt: pt})
		}
		diffs = append(diffs, d)
	}
	return diffs
}

func pointMatchesVector(pt rtree.Point, v features.Vector) bool {
	if len(pt) != len(v) {
		return false
	}
	for i := range pt {
		if pt[i] != v[i] {
			return false
		}
	}
	return true
}

// VerifyIndexes diffs every index against the record set without
// repairing anything — the post-recovery (and post-soak) consistency
// check.
func (db *DB) VerifyIndexes() *ReconcileReport {
	return reportOf(db.diffIndexes())
}

// DefaultRebuildThreshold is the divergence fraction past which
// ReconcileIndexes rebuilds an index instead of patching it in place.
const DefaultRebuildThreshold = 0.25

// ReconcileIndexes diffs every index against the record set and repairs
// the divergence: incremental delete/re-insert under the write lock when
// the damage is bounded, a full offline rebuild-and-swap when it exceeds
// rebuildThreshold (a fraction of the larger of entry/record count; <= 0
// takes DefaultRebuildThreshold) or when the tree's structural
// invariants fail. Searches keep running against the old tree during a
// rebuild; only the final swap (plus a catch-up delta for records that
// changed mid-build) takes the write lock.
func (db *DB) ReconcileIndexes(rebuildThreshold float64) *ReconcileReport {
	if rebuildThreshold <= 0 {
		rebuildThreshold = DefaultRebuildThreshold
	}
	diffs := db.diffIndexes()
	for _, d := range diffs {
		n := d.divergent()
		if n == 0 && d.invErr == nil {
			continue
		}
		base := d.records
		if d.entries > base {
			base = d.entries
		}
		if base < 1 {
			base = 1
		}
		if d.invErr != nil || float64(n) > rebuildThreshold*float64(base) {
			db.rebuildIndex(d)
		} else {
			db.repairIndex(d)
		}
	}
	return reportOf(diffs)
}

// repairIndex applies the diff's fixes entry by entry under the write
// lock, re-validating each against the current record set (records may
// have been inserted or deleted since the diff; record ids are never
// reused, so a record that exists now with the diffed vector was there
// all along).
func (db *DB) repairIndex(d *kindDiff) {
	db.mu.Lock()
	defer db.mu.Unlock()
	idx, ok := db.indexes[d.kind]
	if !ok {
		nt, err := rtree.New(db.opts.Dim(d.kind), rtree.DefaultMaxEntries)
		if err != nil {
			return
		}
		idx, db.indexes[d.kind] = nt, nt
	}
	for _, o := range d.orphans {
		if rec, ok := db.records[o.id]; ok {
			if v, has := rec.Features[d.kind]; has && pointMatchesVector(o.pt, v) {
				continue // a live record owns this entry after all
			}
		}
		if idx.Delete(o.id, rtree.PointRect(o.pt)) {
			d.repaired++
		}
	}
	reinsert := func(id int64) {
		rec, ok := db.records[id]
		if !ok {
			return
		}
		v, has := rec.Features[d.kind]
		if !has {
			return
		}
		// Delete-then-insert guarantees exactly one entry at the right
		// position whatever the tree currently holds.
		idx.DeletePoint(id, rtree.Point(v))
		if idx.InsertPoint(id, rtree.Point(v)) == nil {
			d.repaired++
		}
	}
	for _, id := range d.missing {
		reinsert(id)
	}
	for _, s := range d.stale {
		idx.Delete(s.id, rtree.PointRect(s.pt))
		reinsert(s.id)
	}
}

// rebuildIndex rebuilds one kind's index from a snapshot of the record
// set without holding any lock, then takes the write lock only to apply
// the delta of records inserted/deleted during the build and swap the
// new tree in. Queries keep using the old tree until the swap.
func (db *DB) rebuildIndex(d *kindDiff) {
	db.mu.RLock()
	dim := db.opts.Dim(d.kind)
	vecs := make(map[int64]features.Vector, len(db.records))
	for id, rec := range db.records {
		if v, ok := rec.Features[d.kind]; ok {
			vecs[id] = v
		}
	}
	db.mu.RUnlock()

	nt, err := rtree.New(dim, rtree.DefaultMaxEntries)
	if err != nil {
		return
	}
	ids := make([]int64, 0, len(vecs))
	for id := range vecs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		// Vectors were validated at insert; an error here means the
		// record itself is corrupt, which the scrubber (not the
		// reconciler) quarantines — leave it unindexed.
		nt.InsertPoint(id, rtree.Point(vecs[id]))
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	// Catch-up delta: records are immutable and ids never reused, so the
	// only divergence a concurrent writer can have introduced is whole
	// insertions and deletions.
	for id, rec := range db.records {
		v, ok := rec.Features[d.kind]
		if !ok {
			continue
		}
		if _, had := vecs[id]; !had {
			nt.InsertPoint(id, rtree.Point(v))
		}
	}
	for id, v := range vecs {
		if _, ok := db.records[id]; !ok {
			nt.DeletePoint(id, rtree.Point(v))
		}
	}
	db.indexes[d.kind] = nt
	d.rebuilt = true
}

// reportOf folds per-kind diffs into the aggregate report.
func reportOf(diffs []*kindDiff) *ReconcileReport {
	rep := &ReconcileReport{KindsChecked: len(diffs)}
	for _, d := range diffs {
		n := d.divergent()
		rep.Divergent += n
		rep.Repaired += d.repaired
		if d.rebuilt {
			rep.Rebuilds++
		}
		if n == 0 && d.invErr == nil && !d.rebuilt {
			continue
		}
		kd := KindDivergence{
			Kind:     d.kind.String(),
			Entries:  d.entries,
			Records:  d.records,
			Orphans:  len(d.orphans),
			Missing:  len(d.missing),
			Stale:    len(d.stale),
			Repaired: d.repaired,
			Rebuilt:  d.rebuilt,
		}
		if d.invErr != nil {
			kd.InvariantError = d.invErr.Error()
		}
		rep.Kinds = append(rep.Kinds, kd)
	}
	return rep
}
