package shapedb

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"threedess/internal/faultfs"
	"threedess/internal/features"
	"threedess/internal/geom"
)

// The crash matrix: run a scripted insert/delete/compact workload against
// an injecting filesystem, failing (ModeError) or crashing (ModeCrash) at
// every injectable operation in turn, then reopen the directory with the
// real filesystem and assert recovery is prefix-consistent:
//
//   - every operation that was acknowledged (returned nil — its sync
//     succeeded) is reflected in the recovered state;
//   - at most one un-acknowledged trailing operation may additionally be
//     reflected (its bytes reached the journal but its sync failed);
//   - nothing else: no garbage records, no lost acknowledged entries.

// crashOp is one acknowledged-or-attempted workload operation.
type crashOp struct {
	insert bool
	id     int64 // delete target, or assigned id for acked inserts
	name   string
	group  int
	base   float64
	acked  bool
}

// runCrashWorkload drives the scripted workload, recording per-op
// acknowledgement. It never fails the test on op errors — those are the
// point.
func runCrashWorkload(db *DB) []crashOp {
	opts := db.Options()
	var log []crashOp
	var live []int64
	insert := func(i int) {
		base := float64(i)
		mesh := geom.Box(geom.V(0, 0, 0), geom.V(1+base, 1, 1))
		op := crashOp{insert: true, name: "s", group: i, base: base}
		id, err := db.Insert("s", i, mesh, fixedFeatures(opts, base))
		if err == nil {
			op.acked, op.id = true, id
			live = append(live, id)
		}
		log = append(log, op)
	}
	remove := func() {
		if len(live) == 0 {
			return
		}
		victim := live[0]
		op := crashOp{insert: false, id: victim}
		if ok, err := db.Delete(victim); err == nil && ok {
			op.acked = true
			live = live[1:]
		}
		log = append(log, op)
	}
	for i := 0; i < 4; i++ {
		insert(i)
	}
	remove()
	db.Compact() // error ignored: a failed compact must be a logical no-op
	for i := 4; i < 7; i++ {
		insert(i)
	}
	remove()
	insert(7)
	return log
}

// ackedState folds the acknowledged ops into the expected live set.
func ackedState(log []crashOp) map[int64]crashOp {
	state := make(map[int64]crashOp)
	for _, op := range log {
		if !op.acked {
			continue
		}
		if op.insert {
			state[op.id] = op
		} else {
			delete(state, op.id)
		}
	}
	return state
}

// checkRecovered asserts the reopened DB matches the acknowledged state,
// tolerating the one trailing un-acknowledged op whose bytes may have
// reached the journal before its sync failed.
func checkRecovered(t *testing.T, tag string, re *DB, log []crashOp) {
	t.Helper()
	want := ackedState(log)
	// The first failed op is the only one whose effect may survive: a
	// later failure can only happen after the journal was poisoned or the
	// failure left no trace (failed appends roll back).
	var pending *crashOp
	for i := range log {
		if !log[i].acked {
			pending = &log[i]
			break
		}
	}
	for id, op := range want {
		rec, ok := re.Get(id)
		if !ok {
			if pending != nil && !pending.insert && pending.id == id {
				continue // the in-flight delete may have landed
			}
			t.Errorf("%s: acknowledged record %d lost", tag, id)
			continue
		}
		if rec.Name != op.name || rec.Group != op.group {
			t.Errorf("%s: record %d = (%q, %d), want (%q, %d)", tag, id, rec.Name, rec.Group, op.name, op.group)
		}
		pm := rec.Features[features.PrincipalMoments]
		if len(pm) == 0 || pm[0] != op.base {
			t.Errorf("%s: record %d features = %v, want base %v", tag, id, pm, op.base)
		}
	}
	for _, id := range re.IDs() {
		if _, ok := want[id]; ok {
			continue
		}
		// Not acknowledged: only the pending insert may explain it.
		if pending != nil && pending.insert {
			rec, _ := re.Get(id)
			if rec != nil && rec.Group == pending.group {
				continue
			}
		}
		t.Errorf("%s: recovered unexplained record %d", tag, id)
	}
}

// TestCrashMatrixWorkload is the tentpole test: every injectable fault
// point of the workload, in both failure modes, must recover to a
// prefix-consistent state.
func TestCrashMatrixWorkload(t *testing.T) {
	// Count the workload's fault points with an unarmed injector.
	counter := faultfs.NewInjector(faultfs.OS{})
	{
		dir := t.TempDir()
		db, err := OpenFS(dir, features.Options{}, counter)
		if err != nil {
			t.Fatal(err)
		}
		openOps := counter.Ops()
		runCrashWorkload(db)
		db.Close()
		if counter.Ops() == openOps {
			t.Fatal("workload performed no injectable operations")
		}
	}
	total := counter.Ops()
	step := int64(1)
	if testing.Short() {
		step = 5 // sample the matrix; CI's fault pass runs it in full
	}
	for _, mode := range []faultfs.Mode{faultfs.ModeError, faultfs.ModeCrash} {
		for n := int64(1); n <= total; n += step {
			dir := t.TempDir()
			inj := faultfs.NewInjector(faultfs.OS{})
			inj.FailAt, inj.Mode = n, mode
			db, err := OpenFS(dir, features.Options{}, inj)
			if err != nil {
				// The fault fired during open itself (e.g. the stale-temp
				// probe); nothing was written, nothing to check.
				continue
			}
			log := runCrashWorkload(db)
			db.Close()

			re, err := Open(dir, features.Options{})
			if err != nil {
				t.Fatalf("mode=%v fail-at=%d: reopen after fault: %v", mode, n, err)
			}
			checkRecovered(t, modeTag(mode, n), re, log)
			// The recovered store must remain fully writable.
			if _, err := re.Insert("post", 99, geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)), fixedFeatures(re.Options(), 99)); err != nil {
				t.Errorf("%s: recovered DB refused insert: %v", modeTag(mode, n), err)
			}
			re.Close()
		}
	}
}

func modeTag(mode faultfs.Mode, n int64) string {
	m := "error"
	if mode == faultfs.ModeCrash {
		m = "crash"
	}
	return m + "@" + itoa(n)
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestCrashMatrixCompact focuses the matrix on compaction: whatever fault
// fires inside Compact, the live set afterwards (and after reopen) is
// exactly the live set before.
func TestCrashMatrixCompact(t *testing.T) {
	build := func(fsys faultfs.FS, dir string) (*DB, map[int64]float64) {
		db, err := OpenFS(dir, features.Options{}, fsys)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[int64]float64)
		var ids []int64
		for i := 0; i < 6; i++ {
			base := float64(i)
			mesh := geom.Box(geom.V(0, 0, 0), geom.V(1+base, 1, 1))
			id, err := db.Insert("c", i, mesh, fixedFeatures(db.Options(), base))
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
			want[id] = base
		}
		for _, id := range ids[:2] {
			if _, err := db.Delete(id); err != nil {
				t.Fatal(err)
			}
			delete(want, id)
		}
		return db, want
	}
	// Count compaction's fault points.
	counter := faultfs.NewInjector(faultfs.OS{})
	db, _ := build(counter, t.TempDir())
	pre := counter.Ops()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	compactOps := counter.Ops() - pre
	if compactOps < 4 {
		t.Fatalf("compaction has only %d fault points", compactOps)
	}
	for _, mode := range []faultfs.Mode{faultfs.ModeError, faultfs.ModeCrash} {
		for n := int64(1); n <= compactOps; n++ {
			dir := t.TempDir()
			inj := faultfs.NewInjector(faultfs.OS{})
			db, want := build(inj, dir)
			inj.FailAt, inj.Mode = inj.Ops()+n, mode
			err := db.Compact()
			if err == nil {
				t.Fatalf("%s: compaction succeeded with armed fault", modeTag(mode, n))
			}
			db.Close()

			re, rerr := Open(dir, features.Options{})
			if rerr != nil {
				t.Fatalf("%s: reopen after compaction fault: %v", modeTag(mode, n), rerr)
			}
			if re.Len() != len(want) {
				t.Errorf("%s: reopened Len = %d, want %d", modeTag(mode, n), re.Len(), len(want))
			}
			for id, base := range want {
				rec, ok := re.Get(id)
				if !ok {
					t.Errorf("%s: live record %d lost by failed compaction", modeTag(mode, n), id)
					continue
				}
				if pm := rec.Features[features.PrincipalMoments]; len(pm) == 0 || pm[0] != base {
					t.Errorf("%s: record %d features corrupted", modeTag(mode, n), id)
				}
			}
			// No stale temp file survives the reopen.
			if _, err := os.Stat(filepath.Join(dir, compactName)); !os.IsNotExist(err) {
				t.Errorf("%s: stale compaction temp not cleaned", modeTag(mode, n))
			}
			re.Close()
		}
	}
}

// journalOps parses the golden journal bytes into per-frame end offsets.
func frameEnds(t *testing.T, data []byte) []int64 {
	t.Helper()
	var ends []int64
	off := int64(0)
	for off+8 <= int64(len(data)) {
		size := int64(binary.LittleEndian.Uint32(data[off:]))
		if off+8+size > int64(len(data)) {
			t.Fatalf("golden journal has a torn frame at %d", off)
		}
		off += 8 + size
		ends = append(ends, off)
	}
	if off != int64(len(data)) {
		t.Fatalf("golden journal has %d trailing bytes", int64(len(data))-off)
	}
	return ends
}

// TestTornTailMatrix truncates a recorded journal at every byte offset and
// asserts recovery yields exactly the entries whose frames are complete,
// quarantines the rest, and leaves a journal that extends cleanly.
func TestTornTailMatrix(t *testing.T) {
	golden := t.TempDir()
	db, err := Open(golden, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 4; i++ {
		ids = append(ids, testRecord(t, db, "torn", i, float64(i)))
	}
	if _, err := db.Delete(ids[1]); err != nil {
		t.Fatal(err)
	}
	db.Close()
	data, err := os.ReadFile(filepath.Join(golden, journalName))
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, data)
	// liveAt[k] = expected live ids after replaying the first k frames.
	liveAt := make([][]int64, len(ends)+1)
	cur := []int64{}
	liveAt[0] = append([]int64(nil), cur...)
	for k := 1; k <= len(ends); k++ {
		switch {
		case k <= 4: // frames 1..4 are the inserts
			cur = append(cur, ids[k-1])
		default: // frame 5 is the delete of ids[1]
			tmp := cur[:0]
			for _, id := range cur {
				if id != ids[1] {
					tmp = append(tmp, id)
				}
			}
			cur = tmp
		}
		liveAt[k] = append([]int64(nil), cur...)
	}
	step := 1
	if testing.Short() {
		step = 23
	}
	for cut := 0; cut <= len(data); cut += step {
		dir := t.TempDir()
		path := filepath.Join(dir, journalName)
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(dir, features.Options{})
		if err != nil {
			t.Fatalf("cut=%d: open: %v", cut, err)
		}
		frames := 0
		for _, e := range ends {
			if e <= int64(cut) {
				frames++
			}
		}
		good := int64(0)
		if frames > 0 {
			good = ends[frames-1]
		}
		rep := re.Recovery()
		if rep == nil {
			t.Fatalf("cut=%d: no recovery report", cut)
		}
		if rep.Entries != frames {
			t.Errorf("cut=%d: replayed %d entries, want %d", cut, rep.Entries, frames)
		}
		if rep.GoodBytes != good || rep.TotalBytes != int64(cut) || rep.DiscardedBytes != int64(cut)-good {
			t.Errorf("cut=%d: report bytes good=%d total=%d discarded=%d, want %d/%d/%d",
				cut, rep.GoodBytes, rep.TotalBytes, rep.DiscardedBytes, good, cut, int64(cut)-good)
		}
		if rep.Degraded() != (int64(cut) > good) {
			t.Errorf("cut=%d: Degraded = %v", cut, rep.Degraded())
		}
		if rep.Degraded() && !rep.TornTail {
			t.Errorf("cut=%d: truncation misclassified as %v (not torn tail)", cut, rep.Tail)
		}
		want := liveAt[frames]
		if re.Len() != len(want) {
			t.Errorf("cut=%d: Len = %d, want %d", cut, re.Len(), len(want))
		}
		for _, id := range want {
			if _, ok := re.Get(id); !ok {
				t.Errorf("cut=%d: record %d missing", cut, id)
			}
		}
		// Quarantine holds exactly the discarded bytes.
		qdata, qerr := os.ReadFile(filepath.Join(dir, corruptName))
		if rep.Degraded() {
			if qerr != nil {
				t.Errorf("cut=%d: no quarantine file: %v", cut, qerr)
			} else if !bytes.Equal(qdata, data[good:cut]) {
				t.Errorf("cut=%d: quarantine holds %d bytes, want %d", cut, len(qdata), cut-int(good))
			}
			if rep.Quarantined == "" {
				t.Errorf("cut=%d: report missing quarantine path", cut)
			}
		} else if qerr == nil {
			t.Errorf("cut=%d: unexpected quarantine file", cut)
		}
		// The truncated journal extends cleanly: insert, reopen, verify.
		nid, err := re.Insert("after", 77, geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)), fixedFeatures(re.Options(), 77))
		if err != nil {
			t.Fatalf("cut=%d: insert after recovery: %v", cut, err)
		}
		re.Close()
		re2, err := Open(dir, features.Options{})
		if err != nil {
			t.Fatalf("cut=%d: second reopen: %v", cut, err)
		}
		if rep2 := re2.Recovery(); rep2.Degraded() {
			t.Errorf("cut=%d: second open still degraded: %v", cut, rep2)
		}
		if _, ok := re2.Get(nid); !ok {
			t.Errorf("cut=%d: post-recovery insert lost on reopen", cut)
		}
		if re2.Len() != len(want)+1 {
			t.Errorf("cut=%d: reopened Len = %d, want %d", cut, re2.Len(), len(want)+1)
		}
		re2.Close()
	}
}

// TestRecoveryReportMidFileCorruption flips a byte inside an early frame
// and asserts the report distinguishes it from a torn tail.
func TestRecoveryReportMidFileCorruption(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		testRecord(t, db, "mid", i, float64(i))
	}
	db.Close()
	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ends := frameEnds(t, data)
	if len(ends) != 3 {
		t.Fatalf("expected 3 frames, got %d", len(ends))
	}
	// Corrupt the middle of frame 2's payload.
	data[ends[0]+8+(ends[1]-ends[0])/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rep := re.Recovery()
	if rep.Entries != 1 || re.Len() != 1 {
		t.Errorf("recovered %d entries / Len %d, want 1/1", rep.Entries, re.Len())
	}
	if rep.Tail != TailBadChecksum {
		t.Errorf("Tail = %v, want bad checksum", rep.Tail)
	}
	if rep.TornTail {
		t.Error("mid-file corruption classified as torn tail")
	}
	if rep.DiscardedBytes != int64(len(data))-ends[0] {
		t.Errorf("DiscardedBytes = %d, want %d", rep.DiscardedBytes, int64(len(data))-ends[0])
	}
}
