package shapedb

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"time"

	"threedess/internal/features"
	"threedess/internal/geom"
)

// readJournalFile reads the raw journal bytes of a database directory.
func readJournalFile(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// replicateAll streams src's whole journal into dst in maxBytes-sized
// pulls, the way a standby would, and returns the number of pulls.
func replicateAll(t *testing.T, src, dst *DB, maxBytes int) int {
	t.Helper()
	pulls := 0
	for {
		st := src.ReplState()
		off := dst.ReplState().Committed
		if off >= st.Committed {
			return pulls
		}
		chunk, _, err := src.ReadJournal(st.Epoch, off, maxBytes)
		if err != nil {
			t.Fatalf("ReadJournal(off=%d): %v", off, err)
		}
		if len(chunk) == 0 {
			t.Fatalf("no progress at offset %d (committed %d)", off, st.Committed)
		}
		if _, err := dst.ApplyReplicated(off, chunk); err != nil {
			t.Fatalf("ApplyReplicated(off=%d): %v", off, err)
		}
		pulls++
	}
}

func TestReplStateDurableAndInMemory(t *testing.T) {
	mem, err := Open("", features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if st := mem.ReplState(); st.Epoch != 0 || st.Committed != 0 {
		t.Errorf("in-memory ReplState = %+v, want zero", st)
	}
	if _, _, err := mem.ReadJournal(1, 0, 0); !errors.Is(err, ErrNotDurable) {
		t.Errorf("in-memory ReadJournal err = %v, want ErrNotDurable", err)
	}
	if _, err := mem.ApplyReplicated(0, nil); !errors.Is(err, ErrNotDurable) {
		t.Errorf("in-memory ApplyReplicated err = %v, want ErrNotDurable", err)
	}
	if err := mem.ResetReplica(); !errors.Is(err, ErrNotDurable) {
		t.Errorf("in-memory ResetReplica err = %v, want ErrNotDurable", err)
	}

	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if st := db.ReplState(); st.Epoch == 0 {
		t.Error("durable database has zero epoch")
	}
	testRecord(t, db, "a", 1, 1)
	st := db.ReplState()
	if got := int64(len(readJournalFile(t, dir))); got != st.Committed {
		t.Errorf("committed = %d, journal file is %d bytes", st.Committed, got)
	}
}

func TestReadJournalFrameAlignment(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5; i++ {
		testRecord(t, db, "shape", i, float64(i))
	}
	st := db.ReplState()

	// A tiny maxBytes must still return whole frames (the first frame is
	// read whole even though it exceeds the cap).
	off := int64(0)
	for off < st.Committed {
		chunk, _, err := db.ReadJournal(st.Epoch, off, 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(chunk) == 0 {
			t.Fatalf("no progress at %d", off)
		}
		frames, err := parseFrames(chunk)
		if err != nil {
			t.Fatalf("chunk at %d is not whole frames: %v", off, err)
		}
		if len(frames) == 0 {
			t.Fatalf("chunk at %d decodes to no frames", off)
		}
		off += int64(len(chunk))
	}
	if off != st.Committed {
		t.Errorf("walked to %d, committed %d", off, st.Committed)
	}

	// Epoch and offset validation.
	if _, _, err := db.ReadJournal(st.Epoch+1, 0, 0); !errors.Is(err, ErrReplEpoch) {
		t.Errorf("stale epoch err = %v, want ErrReplEpoch", err)
	}
	if _, _, err := db.ReadJournal(st.Epoch, st.Committed+1, 0); !errors.Is(err, ErrReplOffset) {
		t.Errorf("past-end offset err = %v, want ErrReplOffset", err)
	}
	if chunk, _, err := db.ReadJournal(st.Epoch, st.Committed, 0); err != nil || len(chunk) != 0 {
		t.Errorf("read at committed = (%d bytes, %v), want empty", len(chunk), err)
	}
}

func TestApplyReplicatedByteIdentical(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, err := Open(srcDir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := Open(dstDir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.ResetReplica(); err != nil { // adopt a clean bootstrap state
		t.Fatal(err)
	}

	ids := make([]int64, 0, 6)
	for i := 0; i < 6; i++ {
		ids = append(ids, testRecord(t, src, "part", i%2, float64(i)))
	}
	if _, err := src.Delete(ids[2]); err != nil {
		t.Fatal(err)
	}

	pulls := replicateAll(t, src, dst, 200)
	if pulls < 2 {
		t.Errorf("expected a multi-pull catch-up, got %d pulls", pulls)
	}
	if got, want := readJournalFile(t, dstDir), readJournalFile(t, srcDir); !bytes.Equal(got, want) {
		t.Fatalf("journals differ: %d vs %d bytes", len(got), len(want))
	}
	if dst.Len() != src.Len() {
		t.Errorf("replica Len = %d, primary %d", dst.Len(), src.Len())
	}
	for _, id := range ids {
		srec, sok := src.Get(id)
		drec, dok := dst.Get(id)
		if sok != dok {
			t.Fatalf("id %d: presence differs (src %v, dst %v)", id, sok, dok)
		}
		if !sok {
			continue
		}
		if srec.Name != drec.Name || srec.Group != drec.Group {
			t.Errorf("id %d: record differs: %+v vs %+v", id, srec, drec)
		}
	}

	// Incremental: more writes stream on top without re-bootstrap.
	testRecord(t, src, "late", 9, 42)
	replicateAll(t, src, dst, 1<<20)
	if !bytes.Equal(readJournalFile(t, dstDir), readJournalFile(t, srcDir)) {
		t.Fatal("journals diverged after incremental catch-up")
	}

	// Searches on the replica see the replicated records.
	set := fixedFeatures(dst.Options(), 42)
	kind := features.CoreKinds[0]
	got, err := dst.KNN(kind, set[kind], 1)
	if err != nil || len(got) == 0 {
		t.Fatalf("replica KNN = %v, %v", got, err)
	}
}

func TestApplyReplicatedOffsetMismatch(t *testing.T) {
	srcDir := t.TempDir()
	src, err := Open(srcDir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	testRecord(t, src, "a", 1, 1)
	st := src.ReplState()
	chunk, _, err := src.ReadJournal(st.Epoch, 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	dst, err := Open(t.TempDir(), features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if _, err := dst.ApplyReplicated(999, chunk); !errors.Is(err, ErrReplOffset) {
		t.Errorf("offset-mismatch err = %v, want ErrReplOffset", err)
	}
	// A torn chunk applies nothing.
	before := dst.ReplState().Committed
	if _, err := dst.ApplyReplicated(before, chunk[:len(chunk)-3]); err == nil {
		t.Error("torn chunk applied without error")
	}
	if dst.ReplState().Committed != before {
		t.Error("torn chunk advanced the journal")
	}
}

func TestResetReplica(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	testRecord(t, db, "a", 1, 1)
	before := db.ReplState()
	if err := db.ResetReplica(); err != nil {
		t.Fatal(err)
	}
	after := db.ReplState()
	if db.Len() != 0 || after.Committed != 0 {
		t.Errorf("after reset: Len=%d committed=%d", db.Len(), after.Committed)
	}
	if after.Epoch == before.Epoch {
		t.Error("ResetReplica kept the old epoch")
	}
	if len(readJournalFile(t, dir)) != 0 {
		t.Error("journal file not truncated")
	}
	// The store is writable again and IDs restart.
	id := testRecord(t, db, "fresh", 1, 2)
	if id != 1 {
		t.Errorf("first id after reset = %d, want 1", id)
	}
}

func TestCompactionChangesEpoch(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ids := []int64{}
	for i := 0; i < 4; i++ {
		ids = append(ids, testRecord(t, db, "x", i, float64(i)))
	}
	for _, id := range ids[:2] {
		if _, err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	before := db.ReplState()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	after := db.ReplState()
	if after.Epoch == before.Epoch {
		t.Error("compaction kept the old epoch — stale standby offsets would alias new bytes")
	}
	if _, _, err := db.ReadJournal(before.Epoch, 0, 0); !errors.Is(err, ErrReplEpoch) {
		t.Errorf("post-compaction read at old epoch err = %v, want ErrReplEpoch", err)
	}
}

func TestIdempotencyKeysJournaled(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	set := fixedFeatures(db.Options(), 1)

	// A batch is answerable only once complete.
	id0, err := db.InsertWith("b0", 1, mesh, set, InsertOpts{IdemKey: "batch", IdemIndex: 0, IdemCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.IdempotentIDs("batch"); ok {
		t.Error("incomplete batch reported as applied")
	}
	id1, err := db.InsertWith("b1", 1, mesh, set, InsertOpts{IdemKey: "batch", IdemIndex: 1, IdemCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	ids, ok := db.IdempotentIDs("batch")
	if !ok || len(ids) != 2 || ids[0] != id0 || ids[1] != id1 {
		t.Fatalf("IdempotentIDs = %v, %v; want [%d %d]", ids, ok, id0, id1)
	}
	if _, ok := db.IdempotentIDs("unknown"); ok {
		t.Error("unknown key reported as applied")
	}

	// Keys survive restart (journal replay).
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db, err = Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if ids, ok := db.IdempotentIDs("batch"); !ok || len(ids) != 2 {
		t.Fatalf("after reopen: IdempotentIDs = %v, %v", ids, ok)
	}

	// Keys survive compaction.
	testRecord(t, db, "filler", 1, 5)
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if ids, ok := db.IdempotentIDs("batch"); !ok || len(ids) != 2 {
		t.Fatalf("after compaction: IdempotentIDs = %v, %v", ids, ok)
	}

	// Deleting a member makes the batch incomplete again: a retry must
	// re-run rather than answer with a half-deleted result.
	if _, err := db.Delete(id1); err != nil {
		t.Fatal(err)
	}
	if _, ok := db.IdempotentIDs("batch"); ok {
		t.Error("batch with deleted member still reported as applied")
	}
}

func TestIdempotencyKeysReplicate(t *testing.T) {
	src, err := Open(t.TempDir(), features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := Open(t.TempDir(), features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	if err := dst.ResetReplica(); err != nil {
		t.Fatal(err)
	}

	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	set := fixedFeatures(src.Options(), 1)
	id, err := src.InsertWith("keyed", 1, mesh, set, InsertOpts{IdemKey: "k1"})
	if err != nil {
		t.Fatal(err)
	}
	replicateAll(t, src, dst, 1<<20)
	ids, ok := dst.IdempotentIDs("k1")
	if !ok || len(ids) != 1 || ids[0] != id {
		t.Fatalf("replica IdempotentIDs = %v, %v; want [%d] — a promoted standby could not dedup retries", ids, ok, id)
	}
}

func TestCommitNotifyWakesOnCommitAndEpochChange(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	wake := db.CommitNotify()
	select {
	case <-wake:
		t.Fatal("CommitNotify fired before any commit")
	default:
	}

	awaited := func(ch <-chan struct{}, what string) {
		t.Helper()
		select {
		case <-ch:
		case <-time.After(2 * time.Second):
			t.Fatalf("%s did not wake CommitNotify", what)
		}
	}

	id := testRecord(t, db, "wake", 1, 1)
	awaited(wake, "insert")

	wake = db.CommitNotify()
	if _, err := db.Delete(id); err != nil {
		t.Fatal(err)
	}
	awaited(wake, "delete")

	// Compaction regenerates the epoch; waiters polling the old epoch must
	// wake to observe it (and answer the standby's 409 re-handshake).
	testRecord(t, db, "live", 1, 2)
	wake = db.CommitNotify()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	awaited(wake, "compaction epoch change")

	wake = db.CommitNotify()
	if err := db.ResetReplica(); err != nil {
		t.Fatal(err)
	}
	awaited(wake, "replica reset")
}
