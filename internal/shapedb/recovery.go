package shapedb

import "fmt"

// TailState classifies what replay found after the last intact journal
// frame.
type TailState uint8

const (
	// TailClean: the journal ends exactly at a frame boundary.
	TailClean TailState = iota
	// TailTornHeader: fewer than 8 header bytes follow the last intact
	// frame — the classic crash-mid-append signature.
	TailTornHeader
	// TailTornPayload: a full header whose claimed payload extends past
	// the end of the file — the append was cut off mid-payload.
	TailTornPayload
	// TailBadChecksum: a complete frame whose payload fails CRC32 —
	// bit rot or an overwritten region rather than a simple short write.
	TailBadChecksum
	// TailImplausibleLength: a header claiming a payload larger than any
	// real append produces; the header bytes themselves are garbage.
	TailImplausibleLength
	// TailUndecodable: the CRC matched but the gob payload would not
	// decode — a frame written by an incompatible or corrupted encoder.
	TailUndecodable
)

func (s TailState) String() string {
	switch s {
	case TailClean:
		return "clean"
	case TailTornHeader:
		return "torn header"
	case TailTornPayload:
		return "torn payload"
	case TailBadChecksum:
		return "bad checksum"
	case TailImplausibleLength:
		return "implausible length"
	case TailUndecodable:
		return "undecodable payload"
	}
	return fmt.Sprintf("tail(%d)", uint8(s))
}

// MarshalText renders the state by name so JSON reports stay readable.
func (s TailState) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the textual form back (admin API clients decode
// the reports they fetch).
func (s *TailState) UnmarshalText(text []byte) error {
	for c := TailClean; c <= TailUndecodable; c++ {
		if c.String() == string(text) {
			*s = c
			return nil
		}
	}
	return fmt.Errorf("shapedb: unknown tail state %q", text)
}

// RecoveryReport describes what journal replay recovered and what it had
// to discard. Open returns the database even when bytes were discarded
// (degraded recovery); callers decide whether a non-clean report is worth
// refusing service over, and the 3dess server logs it at startup.
type RecoveryReport struct {
	// Entries is the number of intact entries replayed; Inserts and
	// Deletes break it down by operation.
	Entries, Inserts, Deletes int
	// TotalBytes is the journal size found on disk; GoodBytes is the
	// length of the intact prefix. DiscardedBytes = TotalBytes − GoodBytes
	// is the garbage that followed it.
	TotalBytes, GoodBytes, DiscardedBytes int64
	// Tail classifies the first bad frame (TailClean when none).
	Tail TailState
	// TornTail is true when the garbage is consistent with a single
	// append cut off by a crash: a short header or payload reaching the
	// end of the file. False for mid-file corruption — an intact-looking
	// region that fails CRC or decode with further data behind it, which
	// means entries beyond the corruption were lost too.
	TornTail bool
	// Quarantined is the path the discarded tail was copied to before the
	// journal was truncated ("" when nothing was discarded).
	Quarantined string
	// SkippedRecords counts intact, decodable insert entries that were
	// nevertheless refused at replay because their feature vectors would
	// violate index invariants (wrong dimension for the database's options,
	// or non-finite coordinates). Applying such a record would poison the
	// R-tree for every future query, so replay drops it instead.
	SkippedRecords int
}

// finish seals the report once replay stops, deriving the discard span and
// the torn-tail classification. badFrameEnd is the file offset just past
// the frame replay rejected (0 when the frame was never fully read).
func (r *RecoveryReport) finish(tail TailState, badFrameEnd int64) {
	r.Tail = tail
	r.DiscardedBytes = r.TotalBytes - r.GoodBytes
	switch tail {
	case TailClean:
		r.TornTail = false
	case TailTornHeader, TailTornPayload:
		// A short read can only happen at the end of the file.
		r.TornTail = true
	case TailBadChecksum, TailUndecodable:
		// The bad frame was fully present. If it reaches EOF exactly it
		// is the torn final append (header durable, payload half-written
		// then padded by nothing); anything after it means mid-file
		// corruption, so entries beyond the bad frame were lost too.
		r.TornTail = badFrameEnd == r.TotalBytes
	case TailImplausibleLength:
		r.TornTail = false
	}
}

// Degraded reports whether recovery discarded any bytes.
func (r *RecoveryReport) Degraded() bool { return r.DiscardedBytes > 0 }

// String renders the report for startup logs.
func (r *RecoveryReport) String() string {
	if r == nil {
		return "in-memory (no journal)"
	}
	skipped := ""
	if r.SkippedRecords > 0 {
		skipped = fmt.Sprintf(", %d invalid records skipped", r.SkippedRecords)
	}
	if !r.Degraded() {
		return fmt.Sprintf("clean: %d entries (%d inserts, %d deletes), %d bytes%s",
			r.Entries, r.Inserts, r.Deletes, r.GoodBytes, skipped)
	}
	kind := "mid-file corruption"
	if r.TornTail {
		kind = "torn tail"
	}
	return fmt.Sprintf("degraded: %d entries (%d inserts, %d deletes) recovered%s, %d/%d bytes discarded (%s: %s), quarantined to %s",
		r.Entries, r.Inserts, r.Deletes, skipped, r.DiscardedBytes, r.TotalBytes, kind, r.Tail, r.Quarantined)
}
