// Package shapedb is the DATABASE tier of 3DESS (§2.3): a concurrency-safe
// shape record store with per-feature R-tree indexes kept in sync on every
// insert and delete, durable via an append-only CRC-checked journal with
// crash recovery and compaction. It substitutes for the paper's Oracle 8i
// installation while preserving the architecture: "the multi-dimensional
// index is built on top of [the] database".
package shapedb

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"threedess/internal/faultfs"
	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/rtree"
)

// Record is one stored shape: identity, ground-truth group (0 = none),
// geometry, and its extracted feature vectors. Degraded lists the stable
// names of feature kinds whose extraction was skipped on a
// valid-but-nasty mesh (see features.Degradation); such a record is
// searchable through every descriptor it does carry.
type Record struct {
	ID       int64
	Name     string
	Group    int
	Mesh     *geom.Mesh
	Features features.Set
	Degraded []string
	// IdemKey ties the record to the client idempotency key it was
	// inserted under ("" = none). IdemIndex/IdemCount place it inside that
	// key's batch (0 of 1 for a single insert), so a retried request can be
	// answered with the original IDs only when every record of the batch is
	// still present. The fields are journaled, survive replay, compaction,
	// and replication, which is what makes insert retries safe across
	// failover.
	IdemKey   string
	IdemIndex int
	IdemCount int
}

// DB is the shape database.
type DB struct {
	mu      sync.RWMutex
	opts    features.Options
	records map[int64]*Record
	nextID  int64
	indexes map[features.Kind]*rtree.Tree
	// Feature-space bounds per kind, maintained on insert, used for the
	// dmax of Equation 4.4. Deletes do not shrink the bounds (a stable
	// upper bound keeps similarity values comparable over time).
	lo, hi map[features.Kind][]float64

	journal  *journal
	dir      string
	fsys     faultfs.FS
	recovery *RecoveryReport

	// frames maps each live record to its insert frame in the current
	// journal file, so the scrubber can re-verify the on-disk bytes a
	// record was acknowledged with. liveBytes is the running sum of those
	// frame sizes and entryCount the total frames in the journal file
	// (live + superseded); both feed the compaction trigger policy.
	frames     map[int64]frameRef
	liveBytes  int64
	entryCount int
	// quarantined holds records the scrubber pulled out of service:
	// removed from records and every index, kept here for inspection.
	// dirtyQuarantine counts quarantines whose (possibly rotten) frames
	// are still in the journal file — reset when compaction rewrites it.
	quarantined     map[int64]QuarantineInfo
	dirtyQuarantine int
	// compacting rejects a second concurrent Compact with
	// ErrCompactionInProgress instead of queueing a redundant rewrite
	// behind the first (admin trigger racing the policy timer).
	compacting atomic.Bool
	// replEpoch names the current journal file incarnation for the
	// replication protocol (see replication.go): regenerated on every Open,
	// compaction, and ResetReplica, because each of those invalidates byte
	// offsets into the previous file.
	replEpoch int64
	// commitWake, when non-nil, is closed whenever the journal's
	// replication state moves (bytes committed, epoch regenerated), waking
	// CommitNotify waiters such as the stream long-poll. Lazily created;
	// guarded by mu.
	commitWake chan struct{}
	// idem maps an idempotency key to its batch positions (index → id) so
	// a retried insert can be answered with the original IDs. Maintained by
	// applyInsert/applyDelete, so replay and replication rebuild it.
	idem map[string]map[int]int64
	// version counts record-set mutations (inserts, deletes, quarantines,
	// replica resets). Derived read-side structures — the columnar
	// descriptor store above all — compare it against the version their
	// snapshot was built from to detect staleness cheaply.
	version int64
	// fenced, when non-nil, is the read-only fence: a journal append or
	// sync failed (disk full, I/O error) but the file was rolled back to
	// the last acknowledged frame boundary, so reads, searches,
	// replication reads, and backups keep serving while every mutation is
	// refused with this error (wrapping ErrReadOnly). A successful
	// compaction — which rewrites the journal from the in-memory state
	// holding exactly the acknowledged writes — clears it.
	fenced error
}

// frameRef locates one record's insert frame in the journal file.
type frameRef struct {
	off, size int64
}

const (
	journalName = "shapes.journal"
	compactName = journalName + ".compact"
	corruptName = journalName + ".corrupt"
)

// Open creates or reopens a shape database on the real filesystem. dir ==
// "" gives a purely in-memory store; otherwise the journal in dir is
// replayed and new operations are appended to it.
func Open(dir string, opts features.Options) (*DB, error) {
	return OpenFS(dir, opts, faultfs.OS{})
}

// OpenFS is Open with an explicit filesystem, the entry point of the
// fault-injection harness. Recovery is degraded, not refused: a torn or
// corrupt journal tail is quarantined to shapes.journal.corrupt, truncated
// off, and reported via Recovery() — the intact prefix always opens.
func OpenFS(dir string, opts features.Options, fsys faultfs.FS) (*DB, error) {
	db := &DB{
		opts:        features.NewExtractor(opts).Options(),
		records:     make(map[int64]*Record),
		indexes:     make(map[features.Kind]*rtree.Tree),
		lo:          make(map[features.Kind][]float64),
		hi:          make(map[features.Kind][]float64),
		nextID:      1,
		dir:         dir,
		fsys:        fsys,
		frames:      make(map[int64]frameRef),
		quarantined: make(map[int64]QuarantineInfo),
		idem:        make(map[string]map[int]int64),
		replEpoch:   newReplEpoch(),
	}
	if dir == "" {
		return db, nil
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shapedb: creating %s: %w", dir, err)
	}
	// A leftover compaction temp file means a crash mid-compact; the real
	// journal is still authoritative, so discard the partial rewrite.
	if err := fsys.Remove(filepath.Join(dir, compactName)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("shapedb: removing stale compaction file: %w", err)
	}
	path := filepath.Join(dir, journalName)
	var skipped int
	rep, err := replayJournal(fsys, path, func(e *journalEntry, off, size int64) error {
		db.entryCount++
		switch e.Op {
		case opInsert:
			set, err := decodeFeatures(e.Features)
			if err != nil {
				return fmt.Errorf("shapedb: journal entry %d: %w", e.ID, err)
			}
			// A decodable entry can still carry vectors the index must not
			// see — non-finite coordinates, or dimensions from a different
			// option set than this open. Applying it would panic deep in
			// applyInsert (and poison MBRs); skip it and report instead.
			if checkFeatures(db.opts, set) != nil {
				skipped++
				return nil
			}
			mesh := &geom.Mesh{Vertices: e.Vertices, Faces: e.Faces}
			rec := &Record{
				ID: e.ID, Name: e.Name, Group: e.Group, Mesh: mesh, Features: set, Degraded: e.Degraded,
				IdemKey: e.IdemKey, IdemIndex: e.IdemIdx, IdemCount: e.IdemCnt,
			}
			db.applyInsert(rec)
			db.setFrame(rec.ID, frameRef{off: off, size: size})
		case opDelete:
			db.applyDelete(e.ID)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.SkippedRecords = skipped
	if rep.Degraded() {
		if err := quarantineTail(fsys, dir, rep); err != nil {
			return nil, fmt.Errorf("shapedb: quarantining corrupt journal tail: %w", err)
		}
	}
	db.recovery = rep
	j, err := openJournal(fsys, path)
	if err != nil {
		return nil, err
	}
	db.journal = j
	return db, nil
}

// Recovery returns the report of the journal replay that opened this
// database (nil for in-memory stores). A Degraded() report means bytes
// were discarded; the quarantined tail is kept next to the journal for
// inspection.
func (db *DB) Recovery() *RecoveryReport { return db.recovery }

// quarantineTail copies the discarded garbage after the intact journal
// prefix to shapes.journal.corrupt, then truncates the journal back to the
// prefix, so the next append extends intact data instead of burying the
// garbage mid-file. The quarantine file is synced before the journal is
// cut, and the directory afterwards, so a crash between the two steps
// loses nothing.
func quarantineTail(fsys faultfs.FS, dir string, rep *RecoveryReport) error {
	path := filepath.Join(dir, journalName)
	f, err := fsys.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Seek(rep.GoodBytes, io.SeekStart); err != nil {
		return err
	}
	tail := make([]byte, rep.DiscardedBytes)
	if _, err := io.ReadFull(f, tail); err != nil {
		return err
	}
	qpath := filepath.Join(dir, corruptName)
	q, err := fsys.OpenFile(qpath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := q.Write(tail); err != nil {
		q.Close()
		return err
	}
	if err := q.Sync(); err != nil {
		q.Close()
		return err
	}
	if err := q.Close(); err != nil {
		return err
	}
	if err := f.Truncate(rep.GoodBytes); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return err
	}
	rep.Quarantined = qpath
	return nil
}

// Close releases the journal. The DB must not be used afterwards.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.journal == nil {
		return nil
	}
	err := db.journal.close()
	db.journal = nil
	return err
}

// Options returns the feature configuration the database was opened with.
func (db *DB) Options() features.Options { return db.opts }

// Len returns the number of stored shapes.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.records)
}

// Insert stores a shape and indexes every feature vector in its set. It
// returns the assigned database ID.
func (db *DB) Insert(name string, group int, mesh *geom.Mesh, set features.Set) (int64, error) {
	return db.InsertFull(name, group, mesh, set, nil)
}

// InsertOpts carries the optional fields of InsertWith.
type InsertOpts struct {
	// Degraded lists feature kinds skipped during extraction.
	Degraded []string
	// IdemKey attributes the insert to a client idempotency key ("" =
	// none); IdemIndex/IdemCount place it inside that key's batch. A single
	// keyed insert uses index 0, count 1.
	IdemKey   string
	IdemIndex int
	IdemCount int
	// ID requests an explicit record id instead of the next sequential one
	// (0 = assign sequentially). Sharded clusters allocate ids centrally so
	// every shard's records live in one global id space; an id already in
	// use fails the insert with ErrIDExists. The sequential counter always
	// advances past explicit ids, so the two schemes can coexist.
	ID int64
}

// ErrIDExists reports an explicit-id insert whose id is already taken.
var ErrIDExists = errors.New("shapedb: id already exists")

// ErrReadOnly marks the database fenced read-only after a journal write
// failure (typically disk exhaustion): the failed write was rolled back
// and never acknowledged, reads keep serving, and every mutation is
// refused with an error wrapping this sentinel until a successful
// compaction (freed space) heals the fence.
var ErrReadOnly = errors.New("shapedb: database is read-only")

// fenceLocked flips the database read-only with the given cause (the
// first cause wins) and returns the fence error. Callers hold the write
// lock.
func (db *DB) fenceLocked(cause error) error {
	if db.fenced == nil {
		db.fenced = fmt.Errorf("%w: journal write failed: %v", ErrReadOnly, cause)
		db.wakeCommitWaiters()
	}
	return db.fenced
}

// ReadOnlyErr returns the read-only fence error (nil when the database
// accepts writes). The serving layer maps it to 503 + Retry-After.
func (db *DB) ReadOnlyErr() error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.fenced
}

// InsertFull is Insert carrying per-kind degradation flags (stable feature
// kind names whose extraction was skipped; see features.Degradation). The
// flags are journaled with the record and survive recovery.
func (db *DB) InsertFull(name string, group int, mesh *geom.Mesh, set features.Set, degraded []string) (int64, error) {
	return db.InsertWith(name, group, mesh, set, InsertOpts{Degraded: degraded})
}

// InsertWith is the full insert entry point: degradation flags plus
// idempotency attribution (see InsertOpts), all journaled with the record.
//
// The shape is validated before anything is journaled: the mesh must be
// structurally sound and every feature vector must have the configured
// dimension and finite coordinates. A single NaN coordinate would
// otherwise corrupt R-tree MBR invariants and the feature-space bounds
// behind every future similarity value.
func (db *DB) InsertWith(name string, group int, mesh *geom.Mesh, set features.Set, o InsertOpts) (int64, error) {
	if mesh == nil {
		return 0, fmt.Errorf("shapedb: nil mesh")
	}
	if err := mesh.Validate(); err != nil {
		return 0, fmt.Errorf("shapedb: invalid mesh for %q: %w", name, err)
	}
	if len(set) == 0 {
		return 0, fmt.Errorf("shapedb: empty feature set for %q", name)
	}
	if err := checkFeatures(db.opts, set); err != nil {
		return 0, fmt.Errorf("shapedb: %q: %w", name, err)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.fenced != nil {
		return 0, db.fenced
	}
	id := db.nextID
	if o.ID != 0 {
		if o.ID < 0 {
			return 0, fmt.Errorf("shapedb: explicit id %d for %q must be positive", o.ID, name)
		}
		if _, taken := db.records[o.ID]; taken {
			return 0, fmt.Errorf("shapedb: %q wants id %d: %w", name, o.ID, ErrIDExists)
		}
		id = o.ID
	}
	rec := &Record{
		ID:        id,
		Name:      name,
		Group:     group,
		Mesh:      mesh.Clone(),
		Features:  set.Clone(),
		Degraded:  append([]string(nil), o.Degraded...),
		IdemKey:   o.IdemKey,
		IdemIndex: o.IdemIndex,
		IdemCount: o.IdemCount,
	}
	if rec.IdemKey != "" && rec.IdemCount <= 0 {
		rec.IdemCount = 1
	}
	ref, err := db.logInsert(rec)
	if err != nil {
		return 0, err
	}
	db.applyInsert(rec)
	if db.journal != nil {
		db.entryCount++
		db.setFrame(rec.ID, ref)
	}
	db.wakeCommitWaiters()
	return rec.ID, nil
}

// setFrame records (or replaces) a live record's journal frame location,
// keeping the liveBytes running sum in step. Callers hold the write lock.
func (db *DB) setFrame(id int64, ref frameRef) {
	if old, ok := db.frames[id]; ok {
		db.liveBytes -= old.size
	}
	db.frames[id] = ref
	db.liveBytes += ref.size
}

// dropFrame forgets a record's frame (the record was deleted or
// quarantined; its bytes in the journal are now dead weight).
func (db *DB) dropFrame(id int64) {
	if ref, ok := db.frames[id]; ok {
		db.liveBytes -= ref.size
		delete(db.frames, id)
	}
}

// checkFeatures rejects vectors that would violate index invariants:
// wrong dimension for the database's options, or non-finite coordinates.
func checkFeatures(opts features.Options, set features.Set) error {
	for k, v := range set {
		if want := opts.Dim(k); len(v) != want {
			return fmt.Errorf("feature %v has dimension %d, want %d", k, len(v), want)
		}
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("feature %v has non-finite coordinate %g at dimension %d", k, x, i)
			}
		}
	}
	return nil
}

// logInsert journals the record and returns the frame it was written to
// (zero ref for in-memory stores). A write or sync failure fences the
// database read-only: the frame was rolled back (or the journal poisoned
// if even that failed), so the insert was never acknowledged and the
// in-memory state still holds exactly the acknowledged history.
func (db *DB) logInsert(rec *Record) (frameRef, error) {
	if db.journal == nil {
		return frameRef{}, nil
	}
	e := entryOf(rec)
	off := db.journal.off
	if err := db.journal.append(e); err != nil {
		return frameRef{}, db.fenceLocked(err)
	}
	if err := db.journal.commitFrom(off); err != nil {
		return frameRef{}, db.fenceLocked(err)
	}
	return frameRef{off: off, size: db.journal.off - off}, nil
}

// entryOf frames a record as its journal insert entry.
func entryOf(rec *Record) *journalEntry {
	return &journalEntry{
		Op:       opInsert,
		ID:       rec.ID,
		Name:     rec.Name,
		Group:    rec.Group,
		Vertices: rec.Mesh.Vertices,
		Faces:    rec.Mesh.Faces,
		Features: encodeFeatures(rec.Features),
		Degraded: rec.Degraded,
		IdemKey:  rec.IdemKey,
		IdemIdx:  rec.IdemIndex,
		IdemCnt:  rec.IdemCount,
	}
}

// applyInsert mutates in-memory state; callers hold the write lock (or are
// single-threaded replay).
func (db *DB) applyInsert(rec *Record) {
	db.version++
	db.records[rec.ID] = rec
	if rec.ID >= db.nextID {
		db.nextID = rec.ID + 1
	}
	if rec.IdemKey != "" {
		m := db.idem[rec.IdemKey]
		if m == nil {
			m = make(map[int]int64)
			db.idem[rec.IdemKey] = m
		}
		m[rec.IdemIndex] = rec.ID
	}
	for k, v := range rec.Features {
		idx, ok := db.indexes[k]
		if !ok {
			var err error
			idx, err = rtree.New(len(v), rtree.DefaultMaxEntries)
			if err != nil {
				panic("shapedb: index creation: " + err.Error())
			}
			db.indexes[k] = idx
		}
		if err := idx.InsertPoint(rec.ID, rtree.Point(v)); err != nil {
			// Dimensions were validated up front; a failure here means
			// non-finite features slipped in.
			panic("shapedb: index insert: " + err.Error())
		}
		db.growBounds(k, v)
	}
}

func (db *DB) growBounds(k features.Kind, v features.Vector) {
	lo, ok := db.lo[k]
	if !ok {
		db.lo[k] = append([]float64(nil), v...)
		db.hi[k] = append([]float64(nil), v...)
		return
	}
	hi := db.hi[k]
	for i := range v {
		if v[i] < lo[i] {
			lo[i] = v[i]
		}
		if v[i] > hi[i] {
			hi[i] = v[i]
		}
	}
}

// Delete removes a shape. It reports whether the id existed.
func (db *DB) Delete(id int64) (bool, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.fenced != nil {
		return false, db.fenced
	}
	if _, ok := db.records[id]; !ok {
		return false, nil
	}
	if db.journal != nil {
		off := db.journal.off
		if err := db.journal.append(&journalEntry{Op: opDelete, ID: id}); err != nil {
			return false, db.fenceLocked(err)
		}
		if err := db.journal.commitFrom(off); err != nil {
			return false, db.fenceLocked(err)
		}
		db.entryCount++
	}
	db.applyDelete(id)
	db.wakeCommitWaiters()
	return true, nil
}

func (db *DB) applyDelete(id int64) {
	rec, ok := db.records[id]
	if !ok {
		return
	}
	db.version++
	for k, v := range rec.Features {
		if idx, ok := db.indexes[k]; ok {
			idx.DeletePoint(id, rtree.Point(v))
		}
	}
	delete(db.records, id)
	db.dropFrame(id)
	if rec.IdemKey != "" {
		if m := db.idem[rec.IdemKey]; m != nil {
			delete(m, rec.IdemIndex)
			if len(m) == 0 {
				delete(db.idem, rec.IdemKey)
			}
		}
	}
}

// IdempotentIDs answers a retried keyed insert: the IDs originally assigned
// under the idempotency key, in batch order. It reports false when the key
// is unknown or its batch is incomplete (a partial insert, or members since
// deleted) — an incomplete answer would hide records from the retrier, so
// the caller re-runs the insert instead.
func (db *DB) IdempotentIDs(key string) ([]int64, bool) {
	if key == "" {
		return nil, false
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := db.idem[key]
	if m == nil {
		return nil, false
	}
	var count int
	for _, id := range m {
		count = db.records[id].IdemCount
		break
	}
	if count <= 0 || len(m) != count {
		return nil, false
	}
	ids := make([]int64, count)
	for i := 0; i < count; i++ {
		id, ok := m[i]
		if !ok {
			return nil, false
		}
		ids[i] = id
	}
	return ids, true
}

// Get returns a copy-safe reference to the record with the given id.
// Callers must not mutate the returned record.
func (db *DB) Get(id int64) (*Record, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	rec, ok := db.records[id]
	return rec, ok
}

// Snapshot returns every live record in ascending ID order, copied out
// under one brief read lock. The returned slice is owned by the caller and
// never mutated by the DB; the *Record values are shared and must be
// treated as immutable. Records deleted after the call remain visible in
// the snapshot — iteration sees a consistent point-in-time view and never
// holds the database lock, so snapshot consumers are free to call back
// into the DB (and to be scanned in parallel).
func (db *DB) Snapshot() []*Record {
	recs, _ := db.SnapshotVersion()
	return recs
}

// SnapshotVersion is Snapshot paired with the mutation version the
// snapshot reflects, read under the same lock so the pair is consistent.
// A later Version() call returning the same number means the record set
// has not changed since the snapshot was taken.
func (db *DB) SnapshotVersion() ([]*Record, int64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	recs := make([]*Record, 0, len(db.records))
	for _, rec := range db.records {
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs, db.version
}

// Version returns the record-set mutation counter: it increases on every
// insert, delete, quarantine, and replica reset (local, replayed, or
// replicated), and is stable while the record set is unchanged. Derived
// structures snapshot it via SnapshotVersion and compare to detect
// staleness without diffing records.
func (db *DB) Version() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.version
}

// ForEach calls fn for every record in ascending ID order. fn must not
// mutate records. fn must not assume it can call back into the DB: the
// historical contract is that callbacks run as if the read lock were held
// (earlier implementations did hold it across the iteration, where a
// callback touching the DB with a writer queued would deadlock). New code
// should iterate a Snapshot() instead, whose lock-free contract is
// explicit.
func (db *DB) ForEach(fn func(*Record)) {
	for _, r := range db.Snapshot() {
		fn(r)
	}
}

// GetMany returns the records for the given ids under a single read lock,
// aligned with ids (out[i] is nil when ids[i] is not stored). It replaces
// per-id Get loops on read paths that resolve many neighbors at once.
func (db *DB) GetMany(ids []int64) []*Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]*Record, len(ids))
	for i, id := range ids {
		out[i] = db.records[id]
	}
	return out
}

// IDs returns every stored ID in ascending order.
func (db *DB) IDs() []int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ids := make([]int64, 0, len(db.records))
	for id := range db.records {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// GroupOf returns the ground-truth group of a shape (0 when unknown).
func (db *DB) GroupOf(id int64) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if rec, ok := db.records[id]; ok {
		return rec.Group
	}
	return 0
}

// GroupMembers returns the IDs in the given ground-truth group.
func (db *DB) GroupMembers(group int) []int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []int64
	for id, rec := range db.records {
		if rec.Group == group {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasIndex reports whether any stored shape carries the feature kind.
func (db *DB) HasIndex(k features.Kind) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	idx, ok := db.indexes[k]
	return ok && idx.Len() > 0
}

// KNN returns the k nearest stored shapes to the query vector under the
// unweighted Euclidean metric of the kind's index.
func (db *DB) KNN(k features.Kind, query features.Vector, n int) ([]rtree.Neighbor, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	idx, ok := db.indexes[k]
	if !ok {
		return nil, fmt.Errorf("shapedb: no index for feature %v", k)
	}
	if len(query) != idx.Dim() {
		return nil, fmt.Errorf("shapedb: query dimension %d, index dimension %d", len(query), idx.Dim())
	}
	return idx.NearestNeighbors(n, rtree.Point(query)), nil
}

// WithinRadius returns every stored shape within the given feature-space
// distance of the query vector, nearest first.
func (db *DB) WithinRadius(k features.Kind, query features.Vector, radius float64) ([]rtree.Neighbor, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	idx, ok := db.indexes[k]
	if !ok {
		return nil, fmt.Errorf("shapedb: no index for feature %v", k)
	}
	if len(query) != idx.Dim() {
		return nil, fmt.Errorf("shapedb: query dimension %d, index dimension %d", len(query), idx.Dim())
	}
	return idx.WithinRadius(rtree.Point(query), radius), nil
}

// DMax returns the diagonal of the feature-space bounding box of the
// stored vectors of kind k — the normalizer of Equation 4.4. It is at
// least 1e-12 so similarity computation never divides by zero.
func (db *DB) DMax(k features.Kind) float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	lo, ok := db.lo[k]
	if !ok {
		return 1e-12
	}
	hi := db.hi[k]
	sum := 0.0
	for i := range lo {
		d := hi[i] - lo[i]
		sum += d * d
	}
	if d := math.Sqrt(sum); d > 1e-12 {
		return d
	}
	return 1e-12
}

// Bounds returns copies of the feature-space bounding box (lo, hi) of the
// stored vectors of kind k, or ok=false when no vector of that kind is
// stored. A cluster coordinator merges per-shard boxes elementwise into
// the global box, whose diagonal reproduces this database's DMax exactly.
func (db *DB) Bounds(k features.Kind) (lo, hi []float64, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	l, ok := db.lo[k]
	if !ok {
		return nil, nil, false
	}
	return append([]float64(nil), l...), append([]float64(nil), db.hi[k]...), true
}

// MaxID returns the highest record id ever assigned (0 for a fresh
// database), including ids whose records were since deleted — the safe
// seed for an external id allocator.
func (db *DB) MaxID() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.nextID - 1
}

// DimRanges returns the per-dimension extent (hi − lo) of the stored
// vectors of kind k, or nil when no vector of that kind is stored. Used to
// put heterogeneous dimensions on a common scale (e.g. by the relevance-
// feedback weight reconfiguration).
func (db *DB) DimRanges(k features.Kind) []float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	lo, ok := db.lo[k]
	if !ok {
		return nil
	}
	hi := db.hi[k]
	out := make([]float64, len(lo))
	for i := range lo {
		out[i] = hi[i] - lo[i]
	}
	return out
}

// IndexStats returns (node accesses, tree height, entry count) for the
// kind's index, for the §2.3 efficiency experiments.
func (db *DB) IndexStats(k features.Kind) (accesses, height, count int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	idx, ok := db.indexes[k]
	if !ok {
		return 0, 0, 0
	}
	return idx.NodeAccesses(), idx.Height(), idx.Len()
}

// ErrCompactionInProgress is returned by Compact when another compaction
// is already running (the admin trigger racing the policy timer); the
// caller's work is being done by the in-flight call.
var ErrCompactionInProgress = errors.New("shapedb: compaction already in progress")

// Compact rewrites the journal to contain exactly the live records,
// dropping deleted history: the live set is written to a temp file, synced,
// renamed over the journal, and the parent directory is synced so the
// rename itself survives a crash. No-op for in-memory databases. At most
// one compaction runs at a time; a concurrent call returns
// ErrCompactionInProgress immediately rather than queueing a redundant
// rewrite. On failure the original journal stays authoritative (a stale
// temp file is discarded by the next Open); if the journal handle cannot
// be restored the database degrades to read-only — reads keep working,
// writes return the fence error.
//
// Compaction is also the heal path out of the read-only fence (and out of
// a poisoned journal): it writes a brand-new file from the in-memory
// state — which holds exactly the acknowledged writes, because a failed
// append is rolled back before it is ever applied — and atomically
// renames it into place, so it deliberately proceeds when the journal is
// fenced or poisoned. Full success clears the fence.
func (db *DB) Compact() error {
	if !db.compacting.CompareAndSwap(false, true) {
		return ErrCompactionInProgress
	}
	defer db.compacting.Store(false)
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.journal == nil {
		return nil
	}
	path := filepath.Join(db.dir, journalName)
	tmp := filepath.Join(db.dir, compactName)
	nj, err := newJournal(db.fsys, tmp)
	if err != nil {
		return err
	}
	ids := make([]int64, 0, len(db.records))
	for id := range db.records {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	newFrames := make(map[int64]frameRef, len(ids))
	for _, id := range ids {
		rec := db.records[id]
		e := entryOf(rec)
		off := nj.off
		if err := nj.append(e); err != nil {
			nj.close()
			db.fsys.Remove(tmp)
			return err
		}
		newFrames[id] = frameRef{off: off, size: nj.off - off}
	}
	if err := nj.sync(); err != nil {
		nj.close()
		db.fsys.Remove(tmp)
		return err
	}
	if err := nj.close(); err != nil {
		db.fsys.Remove(tmp)
		return err
	}
	if err := db.journal.close(); err != nil {
		db.fsys.Remove(tmp)
		return err
	}
	// From here the old handle is gone: any failure must leave db.journal
	// non-nil (reopened or poisoned), never nil — nil means "in-memory"
	// and would silently stop journaling a durable store.
	if err := db.fsys.Rename(tmp, path); err != nil {
		db.fsys.Remove(tmp)
		db.reopenJournal(path)
		return fmt.Errorf("shapedb: compaction rename: %w", err)
	}
	// The rename landed: the file at path is the compacted live set, so
	// the frame map switches over even if the directory sync below fails.
	db.adoptFrames(newFrames)
	if err := db.fsys.SyncDir(db.dir); err != nil {
		// The rename happened but may not be durable; the content at
		// path is the compacted live set either way, so keep serving
		// from it and surface the error.
		db.reopenJournal(path)
		return fmt.Errorf("shapedb: syncing directory after compaction: %w", err)
	}
	db.reopenJournal(path)
	if db.journal.failed != nil {
		return db.journal.failed
	}
	// The journal is a freshly-written, synced, renamed file and the append
	// handle is live again: the write path is whole, so a read-only fence
	// from an earlier append failure is healed.
	db.fenced = nil
	return nil
}

// adoptFrames switches the frame map to a freshly compacted journal's
// layout and resets the dead-weight counters the compaction policy reads.
// The replication epoch is regenerated here: byte offsets into the old
// journal file mean nothing against the rewrite, so standbys streaming at
// the old epoch are told to re-bootstrap rather than silently fed bytes
// from a different file.
func (db *DB) adoptFrames(newFrames map[int64]frameRef) {
	db.frames = newFrames
	db.liveBytes = 0
	for _, ref := range newFrames {
		db.liveBytes += ref.size
	}
	db.entryCount = len(newFrames)
	db.dirtyQuarantine = 0
	db.replEpoch = newReplEpoch()
	db.wakeCommitWaiters()
}

// reopenJournal re-establishes the append handle at path, poisoning the
// journal and fencing the database read-only when the open fails.
func (db *DB) reopenJournal(path string) {
	j, err := openJournal(db.fsys, path)
	if err != nil {
		db.journal = poisonedJournal(err)
		db.fenceLocked(err)
		return
	}
	db.journal = j
}
