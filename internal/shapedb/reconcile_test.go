package shapedb

import (
	"testing"

	"threedess/internal/faultfs"
	"threedess/internal/features"
)

func TestVerifyIndexesCleanOnFreshDB(t *testing.T) {
	db, _ := openTestDB(t)
	for i := 0; i < 10; i++ {
		testRecord(t, db, "v", i%3, float64(i))
	}
	rep := db.VerifyIndexes()
	if !rep.Clean() {
		t.Fatalf("fresh DB diverges: %+v", rep)
	}
	if rep.KindsChecked != len(features.CoreKinds) {
		t.Fatalf("checked %d kinds, want %d", rep.KindsChecked, len(features.CoreKinds))
	}
}

func TestReconcileRepairsMissingEntry(t *testing.T) {
	db, _ := openTestDB(t)
	var ids []int64
	for i := 0; i < 10; i++ {
		ids = append(ids, testRecord(t, db, "m", 0, float64(i)))
	}
	k := features.CoreKinds[0]
	victim := ids[3]
	if !db.FaultDropIndexEntry(k, victim) {
		t.Fatal("fault hook failed to drop entry")
	}
	// The record is now invisible to this kind's index-backed search.
	q := fixedFeatures(db.Options(), 3)[k]
	nn, err := db.KNN(k, q, len(ids))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nn {
		if n.ID == victim {
			t.Fatal("dropped entry still returned by KNN")
		}
	}
	rep := db.VerifyIndexes()
	if rep.Divergent != 1 || len(rep.Kinds) != 1 || rep.Kinds[0].Missing != 1 {
		t.Fatalf("diff after drop: %+v", rep)
	}
	rep = db.ReconcileIndexes(0)
	if rep.Repaired != 1 || rep.Rebuilds != 0 {
		t.Fatalf("reconcile: %+v", rep)
	}
	if rep2 := db.VerifyIndexes(); !rep2.Clean() {
		t.Fatalf("still divergent after reconcile: %+v", rep2)
	}
	// The record is searchable again.
	nn, err = db.KNN(k, q, len(ids))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range nn {
		found = found || n.ID == victim
	}
	if !found {
		t.Fatal("repaired entry not returned by KNN")
	}
}

func TestReconcileRemovesOrphan(t *testing.T) {
	db, _ := openTestDB(t)
	for i := 0; i < 8; i++ {
		testRecord(t, db, "o", 0, float64(i))
	}
	k := features.CoreKinds[0]
	ghost := int64(424242)
	v := fixedFeatures(db.Options(), 99)[k]
	if err := db.FaultInjectOrphan(k, ghost, v); err != nil {
		t.Fatal(err)
	}
	rep := db.VerifyIndexes()
	if rep.Divergent != 1 || len(rep.Kinds) != 1 || rep.Kinds[0].Orphans != 1 {
		t.Fatalf("diff after orphan injection: %+v", rep)
	}
	if rep = db.ReconcileIndexes(0); rep.Repaired != 1 {
		t.Fatalf("reconcile: %+v", rep)
	}
	if rep2 := db.VerifyIndexes(); !rep2.Clean() {
		t.Fatalf("still divergent: %+v", rep2)
	}
	nn, err := db.KNN(k, v, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nn {
		if n.ID == ghost {
			t.Fatal("orphan still returned by KNN after reconcile")
		}
	}
}

func TestReconcileEscalatesToRebuild(t *testing.T) {
	db, _ := openTestDB(t)
	var ids []int64
	for i := 0; i < 20; i++ {
		ids = append(ids, testRecord(t, db, "rb", 0, float64(i)))
	}
	k := features.CoreKinds[1]
	// Drop over half the entries: way past any sane rebuild threshold.
	for _, id := range ids[:12] {
		if !db.FaultDropIndexEntry(k, id) {
			t.Fatalf("failed to drop %d", id)
		}
	}
	rep := db.ReconcileIndexes(0.25)
	if rep.Rebuilds != 1 {
		t.Fatalf("expected a rebuild, got %+v", rep)
	}
	if rep2 := db.VerifyIndexes(); !rep2.Clean() {
		t.Fatalf("divergent after rebuild: %+v", rep2)
	}
	// Rebuild must not disturb the other kinds.
	for _, kind := range features.CoreKinds {
		if got := db.Len(); got != 20 {
			t.Fatalf("Len = %d", got)
		}
		nn, err := db.KNN(kind, fixedFeatures(db.Options(), 5)[kind], 20)
		if err != nil {
			t.Fatal(err)
		}
		if len(nn) != 20 {
			t.Fatalf("%v KNN returned %d of 20", kind, len(nn))
		}
	}
}

// blockingRenameFS stalls Rename until released, keeping a compaction
// in-flight long enough for a second call to race it.
type blockingRenameFS struct {
	faultfs.FS
	entered chan struct{}
	release chan struct{}
}

func (b *blockingRenameFS) Rename(oldpath, newpath string) error {
	b.entered <- struct{}{}
	<-b.release
	return b.FS.Rename(oldpath, newpath)
}

func TestCompactConcurrentInvocationGuard(t *testing.T) {
	// entered is buffered so renames after the choreographed one (the
	// final sanity compaction below) pass straight through; release is
	// closed once, and a closed channel never blocks receivers.
	bfs := &blockingRenameFS{
		FS:      faultfs.OS{},
		entered: make(chan struct{}, 4),
		release: make(chan struct{}),
	}
	db, err := OpenFS(t.TempDir(), features.Options{}, bfs)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var ids []int64
	for i := 0; i < 6; i++ {
		ids = append(ids, testRecord(t, db, "g", 0, float64(i)))
	}
	for _, id := range ids[:3] {
		if _, err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	first := make(chan error, 1)
	go func() { first <- db.Compact() }()
	<-bfs.entered // first compaction is mid-rename, still holding the guard
	// The racing call must return the sentinel immediately — it cannot
	// block on db.mu (the first holds it) because the guard is checked
	// before the lock.
	if err := db.Compact(); err != ErrCompactionInProgress {
		t.Fatalf("racing Compact returned %v, want ErrCompactionInProgress", err)
	}
	close(bfs.release)
	if err := <-first; err != nil {
		t.Fatalf("first Compact failed: %v", err)
	}
	// Guard released: a later compaction succeeds.
	if err := db.Compact(); err != nil {
		t.Fatalf("post-race Compact failed: %v", err)
	}
	st := db.Stats()
	if st.LiveRecords != 3 || st.DeadEntries != 0 {
		t.Fatalf("post-compaction stats: %+v", st)
	}
}
