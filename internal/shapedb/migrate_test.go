package shapedb

import (
	"path/filepath"
	"strings"
	"testing"

	"threedess/internal/faultfs"
	"threedess/internal/features"
)

// Migration primitive tests: byte-exact export/import between stores,
// idempotent re-imports (what makes resumed copy batches safe), corrupt
// frames refused before any byte is applied, and the batched
// verification/drop helpers the rebalance driver calls.

func exportAll(t *testing.T, db *DB) []ExportFrame {
	t.Helper()
	frames, err := db.ExportRecords(db.IDs())
	if err != nil {
		t.Fatal(err)
	}
	return frames
}

func TestExportImportRoundTrip(t *testing.T) {
	for _, srcDir := range []string{"", t.TempDir()} {
		src, err := Open(srcDir, features.Options{})
		if err != nil {
			t.Fatal(err)
		}
		ids := []int64{
			testRecord(t, src, "gear", 1, 1),
			testRecord(t, src, "bracket", 2, 2),
			testRecord(t, src, "housing", 1, 3),
		}
		frames := exportAll(t, src)
		if len(frames) != 3 {
			t.Fatalf("exported %d frames, want 3", len(frames))
		}

		dstDir := t.TempDir()
		dst, err := Open(dstDir, features.Options{})
		if err != nil {
			t.Fatal(err)
		}
		added, err := dst.ImportFrames(frames)
		if err != nil || added != 3 {
			t.Fatalf("ImportFrames = %d, %v", added, err)
		}
		// Re-import of the identical batch is a no-op: that is what makes a
		// resumed copy batch safe to re-drive after a coordinator crash.
		added, err = dst.ImportFrames(frames)
		if err != nil || added != 0 {
			t.Fatalf("re-import = %d, %v; want 0, nil", added, err)
		}
		for _, id := range ids {
			a, ok1 := src.Get(id)
			b, ok2 := dst.Get(id)
			if !ok1 || !ok2 {
				t.Fatalf("id %d missing after import (src %v dst %v)", id, ok1, ok2)
			}
			if a.ContentCRC() != b.ContentCRC() {
				t.Fatalf("id %d content CRC diverged across the copy", id)
			}
			if a.Name != b.Name || a.Group != b.Group {
				t.Fatalf("id %d metadata diverged: %q/%d vs %q/%d", id, a.Name, a.Group, b.Name, b.Group)
			}
		}
		src.Close()
		dst.Close()

		// An acknowledged import must be as durable as an acknowledged
		// insert: reopen the destination and find every record.
		re, err := Open(dstDir, features.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if re.Len() != 3 {
			t.Fatalf("reopened destination holds %d records, want 3", re.Len())
		}
		re.Close()
	}
}

// A corrupt frame (or a lying content CRC) fails the whole batch before
// any record is applied — rot must not propagate between shards.
func TestImportRejectsCorruption(t *testing.T) {
	src, _ := Open("", features.Options{})
	defer src.Close()
	testRecord(t, src, "gear", 1, 1)
	testRecord(t, src, "cam", 2, 2)
	good := exportAll(t, src)

	bitflip := exportAll(t, src)
	bitflip[1].Frame = append([]byte(nil), bitflip[1].Frame...)
	bitflip[1].Frame[len(bitflip[1].Frame)-1] ^= 0x40

	badCRC := exportAll(t, src)
	badCRC[0].CRC ^= 0xdeadbeef

	wrongID := exportAll(t, src)
	wrongID[0].ID = 999

	for name, frames := range map[string][]ExportFrame{
		"bitflip": bitflip, "badCRC": badCRC, "wrongID": wrongID,
	} {
		dst, _ := Open("", features.Options{})
		if added, err := dst.ImportFrames(frames); err == nil {
			t.Errorf("%s: import succeeded (added %d)", name, added)
		} else if added != 0 || dst.Len() != 0 {
			t.Errorf("%s: partial apply: added %d, len %d", name, added, dst.Len())
		}
		dst.Close()
	}

	dst, _ := Open("", features.Options{})
	defer dst.Close()
	if added, err := dst.ImportFrames(good); err != nil || added != 2 {
		t.Fatalf("clean import after rejects = %d, %v", added, err)
	}
}

// ContentCRC compares records, not encodings: identical content hashes
// identically (whatever gob's map ordering did), any field change is
// visible.
func TestContentCRCDetectsChanges(t *testing.T) {
	db, _ := Open("", features.Options{})
	defer db.Close()
	id := testRecord(t, db, "gear", 1, 1)
	rec, _ := db.Get(id)
	base := rec.ContentCRC()
	if rec.ContentCRC() != base {
		t.Fatal("ContentCRC not deterministic")
	}
	mod := *rec
	mod.Name = "gear-v2"
	if mod.ContentCRC() == base {
		t.Error("name change invisible to ContentCRC")
	}
	mod = *rec
	mod.Group = 7
	if mod.ContentCRC() == base {
		t.Error("group change invisible to ContentCRC")
	}
}

func TestRecordCRCsReportsMissing(t *testing.T) {
	db, _ := Open("", features.Options{})
	defer db.Close()
	a := testRecord(t, db, "gear", 1, 1)
	b := testRecord(t, db, "cam", 2, 2)
	crcs, missing := db.RecordCRCs([]int64{a, 777, b, 888})
	if len(crcs) != 2 {
		t.Fatalf("got %d CRCs, want 2", len(crcs))
	}
	if len(missing) != 2 || missing[0] != 777 || missing[1] != 888 {
		t.Fatalf("missing = %v, want [777 888]", missing)
	}
}

func TestDeleteManyDurable(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 6; i++ {
		ids = append(ids, testRecord(t, db, "part", i, float64(i)))
	}
	// Drop four (two of them twice over — a resumed drop re-submits ids
	// already gone) and keep two.
	drop := []int64{ids[0], ids[2], ids[0], 999, ids[4], ids[5]}
	n, err := db.DeleteMany(drop)
	if err != nil || n != 4 {
		t.Fatalf("DeleteMany = %d, %v; want 4", n, err)
	}
	if db.Len() != 2 {
		t.Fatalf("len %d after batch delete, want 2", db.Len())
	}
	db.Close()
	re, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("reopened store holds %d records, want 2", re.Len())
	}
	for _, id := range []int64{ids[1], ids[3]} {
		if _, ok := re.Get(id); !ok {
			t.Errorf("surviving id %d lost across reopen", id)
		}
	}
}

// A durable source whose on-disk frame rotted refuses to export it — the
// same checkFrame discipline as the scrubber.
func TestExportRefusesRottenFrame(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	id := testRecord(t, db, "gear", 1, 1)
	off, size, ok := db.FrameSpan(id)
	if !ok {
		t.Fatalf("FrameSpan(%d) missing", id)
	}
	if err := faultfs.FlipByte(filepath.Join(dir, journalName), off+8+size/2, 0x40); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ExportRecords([]int64{id}); err == nil {
		t.Fatal("export shipped a rotten frame")
	} else if !strings.Contains(err.Error(), "unservable") {
		t.Fatalf("unexpected export error: %v", err)
	}
}
