package shapedb

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sort"

	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/rtree"
)

// This file holds the integrity surface the self-healing maintenance
// subsystem (internal/scrub) is built on: per-record re-verification
// against the on-disk journal frame, quarantine of records that fail,
// and the journal statistics the automatic compaction policy reads.
// Recovery at Open proves the journal was intact *once*; these
// primitives let a long-running process keep proving it.

// ScrubState classifies what re-verifying one record found.
type ScrubState uint8

const (
	// ScrubClean: the in-memory record satisfies every invariant and its
	// journal frame re-reads byte-identical (CRC and content match).
	ScrubClean ScrubState = iota
	// ScrubGone: the record no longer exists (deleted or already
	// quarantined since the scrub pass snapshotted it) — not a finding.
	ScrubGone
	// ScrubBitRot: the frame is present but wrong — CRC mismatch,
	// undecodable payload, a header disagreeing with the recorded frame
	// size, or decoded content that differs from the in-memory record.
	ScrubBitRot
	// ScrubMissingFrame: the record has no frame in the journal, or the
	// frame's bytes cannot be read back at all.
	ScrubMissingFrame
	// ScrubInvariant: the in-memory record itself violates an invariant
	// the insert path enforces (feature dimension/finiteness, mesh
	// structure) — in-process corruption rather than disk rot.
	ScrubInvariant
)

func (s ScrubState) String() string {
	switch s {
	case ScrubClean:
		return "clean"
	case ScrubGone:
		return "gone"
	case ScrubBitRot:
		return "bit-rot"
	case ScrubMissingFrame:
		return "missing-frame"
	case ScrubInvariant:
		return "invariant-violation"
	}
	return fmt.Sprintf("scrub(%d)", uint8(s))
}

// MarshalText renders the state for JSON reports.
func (s ScrubState) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the textual form back (admin API clients decode
// the reports they fetch).
func (s *ScrubState) UnmarshalText(text []byte) error {
	for c := ScrubClean; c <= ScrubInvariant; c++ {
		if c.String() == string(text) {
			*s = c
			return nil
		}
	}
	return fmt.Errorf("shapedb: unknown scrub state %q", text)
}

// ScrubFinding is the result of re-verifying one record.
type ScrubFinding struct {
	ID     int64      `json:"id"`
	State  ScrubState `json:"state"`
	Detail string     `json:"detail,omitempty"`
}

// VerifyRecord re-verifies one stored record: the in-memory invariants
// the insert path enforced (feature dimensions, finiteness, mesh
// structure), and — for durable stores — that the record's journal frame
// still reads back with a valid CRC and decodes to exactly the record
// being served. It holds the read lock for the duration (including the
// frame read), which keeps the frame map consistent with the journal
// file even while compaction is racing; frames are small, so the hold is
// brief and shared with concurrent queries.
func (db *DB) VerifyRecord(id int64) ScrubFinding {
	db.mu.RLock()
	defer db.mu.RUnlock()
	f := ScrubFinding{ID: id}
	rec, ok := db.records[id]
	if !ok {
		f.State = ScrubGone
		return f
	}
	if err := checkFeatures(db.opts, rec.Features); err != nil {
		f.State, f.Detail = ScrubInvariant, err.Error()
		return f
	}
	if rec.Mesh == nil {
		f.State, f.Detail = ScrubInvariant, "nil mesh"
		return f
	}
	if err := rec.Mesh.Validate(); err != nil {
		f.State, f.Detail = ScrubInvariant, err.Error()
		return f
	}
	if db.journal == nil {
		f.State = ScrubClean
		return f
	}
	ref, ok := db.frames[id]
	if !ok {
		f.State, f.Detail = ScrubMissingFrame, "no journal frame recorded"
		return f
	}
	frame, err := db.readFrame(ref)
	if err != nil {
		f.State, f.Detail = ScrubMissingFrame, err.Error()
		return f
	}
	if state, detail := checkFrame(frame, rec); state != ScrubClean {
		f.State, f.Detail = state, detail
		return f
	}
	f.State = ScrubClean
	return f
}

// readFrame reads one frame's bytes from the journal file through a
// fresh descriptor, so the append handle's position is never disturbed.
func (db *DB) readFrame(ref frameRef) ([]byte, error) {
	path := filepath.Join(db.dir, journalName)
	jf, err := db.fsys.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening journal: %w", err)
	}
	defer jf.Close()
	if _, err := jf.Seek(ref.off, io.SeekStart); err != nil {
		return nil, fmt.Errorf("seeking to frame: %w", err)
	}
	buf := make([]byte, ref.size)
	if _, err := io.ReadFull(jf, buf); err != nil {
		return nil, fmt.Errorf("reading frame: %w", err)
	}
	return buf, nil
}

// checkFrame verifies one framed journal record against the in-memory
// record it backs: header sanity, CRC, decodability, and full content
// agreement (a CRC-valid frame that differs from memory means the
// in-memory copy drifted, which is just as unservable as disk rot).
func checkFrame(frame []byte, rec *Record) (ScrubState, string) {
	if len(frame) < 8 {
		return ScrubBitRot, "frame shorter than header"
	}
	size := binary.LittleEndian.Uint32(frame[0:])
	want := binary.LittleEndian.Uint32(frame[4:])
	if int64(size) != int64(len(frame))-8 {
		return ScrubBitRot, fmt.Sprintf("frame header claims %d payload bytes, frame holds %d", size, len(frame)-8)
	}
	payload := frame[8:]
	if got := crc32.ChecksumIEEE(payload); got != want {
		return ScrubBitRot, fmt.Sprintf("CRC mismatch: frame %08x, payload %08x", want, got)
	}
	var e journalEntry
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
		return ScrubBitRot, "CRC matches but payload does not decode: " + err.Error()
	}
	if e.Op != opInsert || e.ID != rec.ID {
		return ScrubBitRot, fmt.Sprintf("frame holds op=%d id=%d, want insert of %d", e.Op, e.ID, rec.ID)
	}
	if e.Name != rec.Name || e.Group != rec.Group {
		return ScrubBitRot, "frame metadata differs from memory"
	}
	set, err := decodeFeatures(e.Features)
	if err != nil {
		return ScrubBitRot, "frame features undecodable: " + err.Error()
	}
	if !featureSetsEqual(set, rec.Features) {
		return ScrubBitRot, "frame feature vectors differ from memory"
	}
	if !meshEqual(e.Vertices, e.Faces, rec) {
		return ScrubBitRot, "frame geometry differs from memory"
	}
	return ScrubClean, ""
}

func featureSetsEqual(a, b features.Set) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

func meshEqual(vertices []geom.Vec3, faces [][3]int, rec *Record) bool {
	if len(vertices) != len(rec.Mesh.Vertices) || len(faces) != len(rec.Mesh.Faces) {
		return false
	}
	for i, v := range vertices {
		if v != rec.Mesh.Vertices[i] {
			return false
		}
	}
	for i, f := range faces {
		if f != rec.Mesh.Faces[i] {
			return false
		}
	}
	return true
}

// FrameSpan reports where a record's insert frame lives in the journal
// file (false for in-memory stores or unknown ids). It exists for
// integrity tooling and fault-injection tests that need to corrupt a
// specific record's bytes.
func (db *DB) FrameSpan(id int64) (off, size int64, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ref, found := db.frames[id]
	return ref.off, ref.size, found
}

// QuarantineInfo describes one record pulled out of service.
type QuarantineInfo struct {
	ID     int64      `json:"id"`
	Name   string     `json:"name"`
	State  ScrubState `json:"state"`
	Detail string     `json:"detail,omitempty"`
}

// Quarantine removes a record from service — out of the record map and
// every index, so no query can return it — and remembers why. The
// journal gets a best-effort delete entry (ignored if the journal is
// poisoned); the authoritative heal is the next compaction, which
// rewrites the journal without the record and clears the rotten frame
// from disk. It reports whether the id was live.
func (db *DB) Quarantine(id int64, state ScrubState, detail string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.records[id]
	if !ok {
		return false
	}
	if db.journal != nil && db.fenced == nil {
		// A failed append only means the next restart replays the insert
		// (and re-quarantines it if still rotten); service-side removal
		// below does not depend on it. commitFrom rolls a failed sync back
		// rather than poisoning, and a fenced journal is skipped outright —
		// quarantine must keep pulling rotten records out of service even
		// when the disk is full.
		off := db.journal.off
		if err := db.journal.append(&journalEntry{Op: opDelete, ID: id}); err == nil {
			if db.journal.commitFrom(off) == nil {
				db.entryCount++
			}
		}
	}
	db.applyDelete(id)
	db.quarantined[id] = QuarantineInfo{ID: id, Name: rec.Name, State: state, Detail: detail}
	db.dirtyQuarantine++
	db.wakeCommitWaiters()
	return true
}

// Quarantined returns every quarantined record's info, ascending by id.
func (db *DB) Quarantined() []QuarantineInfo {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]QuarantineInfo, 0, len(db.quarantined))
	for _, info := range db.quarantined {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IsQuarantined reports whether id has been quarantined.
func (db *DB) IsQuarantined(id int64) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.quarantined[id]
	return ok
}

// JournalStats is the compaction policy's view of journal dead weight.
type JournalStats struct {
	// Durable is false for in-memory stores (everything else is zero).
	Durable bool `json:"durable"`
	// JournalBytes is the journal file size; LiveBytes the portion
	// occupied by live records' frames. Their ratio is the write
	// amplification automatic compaction triggers on.
	JournalBytes int64 `json:"journal_bytes"`
	LiveBytes    int64 `json:"live_bytes"`
	// LiveRecords / JournalEntries / DeadEntries count records served,
	// frames in the file, and frames that are dead weight (deletes plus
	// the inserts they superseded, skipped records, quarantines).
	LiveRecords    int `json:"live_records"`
	JournalEntries int `json:"journal_entries"`
	DeadEntries    int `json:"dead_entries"`
	// Quarantined counts records currently out of service;
	// UnhealedQuarantine those whose (possibly rotten) frames are still
	// in the journal file — nonzero until a compaction rewrites it.
	Quarantined        int `json:"quarantined"`
	UnhealedQuarantine int `json:"unhealed_quarantine"`
	// ReadOnly reports the write fence: a journal append or sync failed
	// (disk full), the failed frame was rolled back, and every mutation is
	// refused until a successful compaction heals the fence. Reads keep
	// serving throughout. ReadOnlyReason carries the fencing cause.
	ReadOnly       bool   `json:"read_only,omitempty"`
	ReadOnlyReason string `json:"read_only_reason,omitempty"`
}

// Amplification returns JournalBytes/LiveBytes (0 when nothing live).
func (s JournalStats) Amplification() float64 {
	if s.LiveBytes <= 0 {
		if s.JournalBytes > 0 {
			return float64(s.JournalBytes)
		}
		return 0
	}
	return float64(s.JournalBytes) / float64(s.LiveBytes)
}

// Stats returns the current journal statistics.
func (db *DB) Stats() JournalStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	st := JournalStats{
		LiveRecords:        len(db.records),
		Quarantined:        len(db.quarantined),
		UnhealedQuarantine: db.dirtyQuarantine,
	}
	if db.fenced != nil {
		st.ReadOnly = true
		st.ReadOnlyReason = db.fenced.Error()
	}
	if db.journal == nil {
		return st
	}
	st.Durable = true
	st.JournalBytes = db.journal.off
	st.LiveBytes = db.liveBytes
	st.JournalEntries = db.entryCount
	st.DeadEntries = db.entryCount - len(db.frames)
	return st
}

// FaultDropIndexEntry removes id's entry from the kind's index while
// leaving the record in place — an index↔store divergence no correct
// code path produces. It exists ONLY for fault-injection tests of the
// reconciler; production code must never call it.
func (db *DB) FaultDropIndexEntry(k features.Kind, id int64) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.records[id]
	if !ok {
		return false
	}
	v, ok := rec.Features[k]
	if !ok {
		return false
	}
	idx, ok := db.indexes[k]
	if !ok {
		return false
	}
	return idx.DeletePoint(id, rtree.Point(v))
}

// FaultInjectOrphan inserts an index entry for an id that has no record
// — the inverse divergence of FaultDropIndexEntry, equally test-only.
func (db *DB) FaultInjectOrphan(k features.Kind, id int64, v features.Vector) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	idx, ok := db.indexes[k]
	if !ok {
		return fmt.Errorf("shapedb: no index for %v", k)
	}
	return idx.InsertPoint(id, rtree.Point(v))
}
