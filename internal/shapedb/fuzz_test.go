package shapedb

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"threedess/internal/faultfs"
	"threedess/internal/features"
	"threedess/internal/geom"
)

// FuzzReplayJournal feeds arbitrary byte streams to the journal replayer
// and asserts it never panics, never reports inconsistent byte accounting,
// and only yields entries that passed the CRC gate (round-tripping a
// journal it wrote itself recovers every entry).
func FuzzReplayJournal(f *testing.F) {
	// Seed 1: a genuine two-entry journal.
	dir := f.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		f.Fatal(err)
	}
	opts := db.Options()
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	for i := 0; i < 2; i++ {
		set := features.Set{}
		for _, k := range features.CoreKinds {
			v := make(features.Vector, opts.Dim(k))
			for d := range v {
				v[d] = float64(i + d)
			}
			set[k] = v
		}
		if _, err := db.Insert("fz", i, mesh, set); err != nil {
			f.Fatal(err)
		}
	}
	db.Close()
	valid, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])    // torn tail
	f.Add(valid[3 : len(valid)-5]) // misaligned
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4})             // implausible length
	f.Add([]byte{8, 0, 0, 0, 0, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8}) // bad CRC
	garbage := make([]byte, 300)
	for i := range garbage {
		garbage[i] = byte(i * 13)
	}
	f.Add(garbage)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), journalName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		entries := 0
		rep, err := replayJournal(faultfs.OS{}, path, func(e *journalEntry, off, size int64) error {
			entries++
			if e == nil {
				t.Fatal("replay yielded nil entry")
			}
			if off < 0 || size <= 8 || off+size > int64(len(data)) {
				t.Fatalf("replay yielded out-of-range frame [%d, %d+%d)", off, off, size)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("replay returned I/O error on in-memory-sized input: %v", err)
		}
		if rep.Entries != entries {
			t.Fatalf("report counts %d entries, callback saw %d", rep.Entries, entries)
		}
		if rep.TotalBytes != int64(len(data)) {
			t.Fatalf("TotalBytes = %d, want %d", rep.TotalBytes, len(data))
		}
		if rep.GoodBytes+rep.DiscardedBytes != rep.TotalBytes {
			t.Fatalf("byte accounting broken: good %d + discarded %d != total %d",
				rep.GoodBytes, rep.DiscardedBytes, rep.TotalBytes)
		}
		if rep.GoodBytes < 0 || rep.DiscardedBytes < 0 {
			t.Fatalf("negative byte counts: %+v", rep)
		}
		if rep.Entries > 0 && rep.GoodBytes < int64(rep.Entries)*9 {
			// Every frame is at least 8 header bytes + 1 payload byte
			// (gob never encodes an entry to zero bytes).
			t.Fatalf("%d entries in %d good bytes", rep.Entries, rep.GoodBytes)
		}
		if (rep.Tail == TailClean) == (rep.DiscardedBytes != 0) {
			t.Fatalf("tail state %v inconsistent with %d discarded bytes", rep.Tail, rep.DiscardedBytes)
		}
		// Every intact frame the replayer accepted must re-verify: walk
		// the good prefix and check the CRC gate held.
		off := int64(0)
		for i := 0; i < rep.Entries; i++ {
			size := int64(binary.LittleEndian.Uint32(data[off:]))
			if off+8+size > rep.GoodBytes {
				t.Fatalf("entry %d frame exceeds good prefix", i)
			}
			off += 8 + size
		}
		if off != rep.GoodBytes {
			t.Fatalf("frames end at %d, good prefix %d", off, rep.GoodBytes)
		}
	})
}
