package shapedb

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"threedess/internal/faultfs"
	"threedess/internal/features"
	"threedess/internal/geom"
)

// The journal is the durability substrate standing in for the paper's
// Oracle 8i record store: an append-only log of insert/delete operations,
// each framed as [4-byte length][4-byte CRC32][gob payload]. Replay
// rebuilds the store; a torn or corrupt tail (from a crash mid-append) is
// detected by the checksum, quarantined, and truncated away, so recovery
// never reads garbage and new appends never land after it. All file
// operations go through a faultfs.FS so the crash-matrix tests can fail or
// tear any of them deterministically.

type journalOp byte

const (
	opInsert journalOp = 1
	opDelete journalOp = 2
)

// maxFrame caps a frame header's claimed payload length. A length beyond
// it cannot come from a real append and marks the frame as garbage rather
// than a torn tail.
const maxFrame = 1 << 30

// journalEntry is the gob-encoded payload of one journal record.
type journalEntry struct {
	Op    journalOp
	ID    int64
	Name  string
	Group int
	// Mesh geometry, flattened for gob.
	Vertices []geom.Vec3
	Faces    [][3]int
	// Features keyed by the stable string names.
	Features map[string][]float64
	// Degraded lists feature kinds skipped by per-kind extraction
	// degradation (stable names). Absent in pre-degradation journals,
	// which gob decodes as nil.
	Degraded []string
	// Idempotency attribution (see Record): the client key this insert was
	// made under and its position/size within that key's batch. Absent in
	// older journals, which gob decodes as zero values.
	IdemKey string
	IdemIdx int
	IdemCnt int
}

func encodeFeatures(set features.Set) map[string][]float64 {
	out := make(map[string][]float64, len(set))
	for k, v := range set {
		out[k.String()] = append([]float64(nil), v...)
	}
	return out
}

func decodeFeatures(raw map[string][]float64) (features.Set, error) {
	out := make(features.Set, len(raw))
	for name, v := range raw {
		k, err := features.ParseKind(name)
		if err != nil {
			return nil, err
		}
		out[k] = append(features.Vector(nil), v...)
	}
	return out, nil
}

type journal struct {
	fsys faultfs.FS
	f    faultfs.File
	// off is the end of the last fully-written frame. A failed append
	// rolls the file back to it so the next frame never lands after a
	// torn one.
	off int64
	// failed poisons the journal after an unrecoverable write/sync error
	// (fail-stop: after a failed fsync the page cache can no longer be
	// trusted, so further appends would risk acknowledging lost data).
	failed error
}

// openJournal opens (or creates) a journal for appending.
func openJournal(fsys faultfs.FS, path string) (*journal, error) {
	return openJournalFlags(fsys, path, os.O_CREATE|os.O_RDWR)
}

// newJournal creates an empty journal, truncating any previous file —
// used for the compaction temp file, whose leftovers must not survive.
func newJournal(fsys faultfs.FS, path string) (*journal, error) {
	return openJournalFlags(fsys, path, os.O_CREATE|os.O_RDWR|os.O_TRUNC)
}

func openJournalFlags(fsys faultfs.FS, path string, flags int) (*journal, error) {
	f, err := fsys.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	// Position at the end for appends; replay reads from the start via a
	// separate descriptor in replayJournal.
	off, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &journal{fsys: fsys, f: f, off: off}, nil
}

// poisonedJournal returns a journal that refuses every operation with err.
// It keeps a durable DB from silently degrading to in-memory mode when the
// real journal could not be (re)opened.
func poisonedJournal(err error) *journal {
	return &journal{failed: fmt.Errorf("shapedb: journal unavailable: %w", err)}
}

// append frames and persists one entry. On a write error it rolls the file
// back to the last good frame boundary; if even that fails, the journal is
// poisoned and every later operation returns the poisoning error.
func (j *journal) append(e *journalEntry) error {
	if j.failed != nil {
		return j.failed
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(e); err != nil {
		return fmt.Errorf("shapedb: encoding journal entry: %w", err)
	}
	var frame bytes.Buffer
	var header [8]byte
	binary.LittleEndian.PutUint32(header[0:], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(header[4:], crc32.ChecksumIEEE(payload.Bytes()))
	frame.Write(header[:])
	frame.Write(payload.Bytes())
	n, err := j.f.Write(frame.Bytes())
	if err == nil && n < frame.Len() {
		err = io.ErrShortWrite
	}
	if err != nil {
		if rerr := j.rollback(); rerr != nil {
			j.failed = fmt.Errorf("shapedb: journal append failed (%v) and rollback failed: %w", err, rerr)
		}
		return fmt.Errorf("shapedb: appending journal entry: %w", err)
	}
	j.off += int64(frame.Len())
	return nil
}

// appendRaw persists pre-framed bytes exactly as given — the replication
// path, where a standby must end up with a byte-identical journal. The
// caller has already CRC-verified and decoded the frames; re-encoding them
// through append would reorder gob map fields and break the byte-for-byte
// equivalence the replication protocol's offsets are defined over. Failure
// semantics match append: rollback to the last good boundary, poisoning on
// a failed rollback.
func (j *journal) appendRaw(frames []byte) error {
	if j.failed != nil {
		return j.failed
	}
	n, err := j.f.Write(frames)
	if err == nil && n < len(frames) {
		err = io.ErrShortWrite
	}
	if err != nil {
		if rerr := j.rollback(); rerr != nil {
			j.failed = fmt.Errorf("shapedb: raw journal append failed (%v) and rollback failed: %w", err, rerr)
		}
		return fmt.Errorf("shapedb: appending raw journal frames: %w", err)
	}
	j.off += int64(len(frames))
	return nil
}

// rollback truncates the file back to the last good frame boundary and
// repositions the write offset there.
func (j *journal) rollback() error {
	if err := j.f.Truncate(j.off); err != nil {
		return err
	}
	_, err := j.f.Seek(j.off, io.SeekStart)
	return err
}

// commitFrom syncs everything appended since prevOff. On a sync failure
// the unsynced suffix is rolled back to prevOff — every earlier frame was
// covered by its own successful fsync, so truncating away only the new,
// never-acknowledged bytes leaves the file coherent at the last
// acknowledged boundary, and the journal stays fully usable for reads,
// replication, and backup. The journal is poisoned only when the rollback
// itself fails, because then no boundary can be trusted anymore.
func (j *journal) commitFrom(prevOff int64) error {
	if j.failed != nil {
		return j.failed
	}
	err := j.f.Sync()
	if err == nil {
		return nil
	}
	j.off = prevOff
	if rerr := j.rollback(); rerr != nil {
		j.failed = fmt.Errorf("shapedb: journal sync failed (%v) and rollback failed: %w", err, rerr)
		return j.failed
	}
	return fmt.Errorf("shapedb: journal sync failed: %w", err)
}

// sync flushes the journal to stable storage. A sync failure poisons the
// journal: the kernel may have dropped the dirty pages, so nothing after
// this point can be promised durable. Write paths that can roll the
// unsynced suffix back use commitFrom instead, which degrades to a
// read-only fence rather than fail-stop.
func (j *journal) sync() error {
	if j.failed != nil {
		return j.failed
	}
	if err := j.f.Sync(); err != nil {
		j.failed = fmt.Errorf("shapedb: journal sync failed, journal disabled: %w", err)
		return j.failed
	}
	return nil
}

func (j *journal) close() error {
	if j.f == nil {
		return nil
	}
	return j.f.Close()
}

// replayJournal reads every intact entry from the journal file, calling fn
// for each with the frame's file offset and full framed size (header +
// payload), and returns a report of what it found: how many entries were
// replayed, how many bytes of trailing garbage follow the intact prefix,
// and how the garbage was classified (torn tail from a crash mid-append
// vs. corruption with further data behind it). A missing file yields an
// empty report. The error is non-nil only for I/O failures or an fn error
// — corruption itself never fails recovery, it is reported.
func replayJournal(fsys faultfs.FS, path string, fn func(e *journalEntry, off, size int64) error) (*RecoveryReport, error) {
	rep := &RecoveryReport{}
	f, err := fsys.Open(path)
	if os.IsNotExist(err) {
		return rep, nil
	}
	if err != nil {
		return rep, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return rep, err
	}
	rep.TotalBytes = fi.Size()
	for {
		var header [8]byte
		_, err := io.ReadFull(f, header[:])
		if err == io.EOF {
			rep.finish(TailClean, 0)
			return rep, nil
		}
		if err != nil {
			if err == io.ErrUnexpectedEOF {
				rep.finish(TailTornHeader, 0)
				return rep, nil
			}
			return rep, err
		}
		size := binary.LittleEndian.Uint32(header[0:])
		want := binary.LittleEndian.Uint32(header[4:])
		remaining := rep.TotalBytes - rep.GoodBytes - 8
		if size > maxFrame {
			// An append never writes a frame this large; the header
			// itself is garbage (not just a torn payload).
			rep.finish(TailImplausibleLength, 0)
			return rep, nil
		}
		if int64(size) > remaining {
			// The header claims more payload than the file holds: the
			// append was cut off before the payload landed. Checking
			// against the real file size also keeps a hostile length
			// from forcing a huge allocation.
			rep.finish(TailTornPayload, 0)
			return rep, nil
		}
		frameEnd := rep.GoodBytes + 8 + int64(size)
		payload := make([]byte, size)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				rep.finish(TailTornPayload, 0)
				return rep, nil
			}
			return rep, err
		}
		if crc32.ChecksumIEEE(payload) != want {
			rep.finish(TailBadChecksum, frameEnd)
			return rep, nil
		}
		var e journalEntry
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
			rep.finish(TailUndecodable, frameEnd)
			return rep, nil
		}
		if err := fn(&e, rep.GoodBytes, 8+int64(size)); err != nil {
			return rep, err
		}
		rep.Entries++
		switch e.Op {
		case opInsert:
			rep.Inserts++
		case opDelete:
			rep.Deletes++
		}
		rep.GoodBytes += 8 + int64(size)
	}
}
