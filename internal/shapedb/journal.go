package shapedb

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"threedess/internal/features"
	"threedess/internal/geom"
)

// The journal is the durability substrate standing in for the paper's
// Oracle 8i record store: an append-only log of insert/delete operations,
// each framed as [4-byte length][4-byte CRC32][gob payload]. Replay
// rebuilds the store; a torn or corrupt tail (from a crash mid-append) is
// detected by the checksum and discarded, so recovery never reads garbage.

type journalOp byte

const (
	opInsert journalOp = 1
	opDelete journalOp = 2
)

// journalEntry is the gob-encoded payload of one journal record.
type journalEntry struct {
	Op    journalOp
	ID    int64
	Name  string
	Group int
	// Mesh geometry, flattened for gob.
	Vertices []geom.Vec3
	Faces    [][3]int
	// Features keyed by the stable string names.
	Features map[string][]float64
}

func encodeFeatures(set features.Set) map[string][]float64 {
	out := make(map[string][]float64, len(set))
	for k, v := range set {
		out[k.String()] = append([]float64(nil), v...)
	}
	return out
}

func decodeFeatures(raw map[string][]float64) (features.Set, error) {
	out := make(features.Set, len(raw))
	for name, v := range raw {
		k, err := features.ParseKind(name)
		if err != nil {
			return nil, err
		}
		out[k] = append(features.Vector(nil), v...)
	}
	return out, nil
}

type journal struct {
	f *os.File
}

func openJournal(path string) (*journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	// Position at the end for appends; replay reads from the start via a
	// separate descriptor-less pass in replayJournal.
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &journal{f: f}, nil
}

// append frames and persists one entry.
func (j *journal) append(e *journalEntry) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(e); err != nil {
		return fmt.Errorf("shapedb: encoding journal entry: %w", err)
	}
	var frame bytes.Buffer
	var header [8]byte
	binary.LittleEndian.PutUint32(header[0:], uint32(payload.Len()))
	binary.LittleEndian.PutUint32(header[4:], crc32.ChecksumIEEE(payload.Bytes()))
	frame.Write(header[:])
	frame.Write(payload.Bytes())
	if _, err := j.f.Write(frame.Bytes()); err != nil {
		return fmt.Errorf("shapedb: appending journal entry: %w", err)
	}
	return nil
}

// sync flushes the journal to stable storage.
func (j *journal) sync() error { return j.f.Sync() }

func (j *journal) close() error { return j.f.Close() }

// replayJournal reads every intact entry from the journal file, stopping
// silently at the first truncated or corrupt frame (crash recovery
// semantics). A missing file yields no entries.
func replayJournal(path string, fn func(*journalEntry) error) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	for {
		var header [8]byte
		if _, err := io.ReadFull(f, header[:]); err != nil {
			return nil // clean EOF or torn header: stop
		}
		size := binary.LittleEndian.Uint32(header[0:])
		want := binary.LittleEndian.Uint32(header[4:])
		if size > 1<<30 {
			return nil // implausible length: treat as corrupt tail
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != want {
			return nil // corrupt frame
		}
		var e journalEntry
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
			return nil // undecodable frame
		}
		if err := fn(&e); err != nil {
			return err
		}
	}
}
