package shapedb

import (
	"os"
	"path/filepath"
	"testing"

	"threedess/internal/faultfs"
	"threedess/internal/features"
)

func openTestDB(t *testing.T) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, dir
}

func TestVerifyRecordClean(t *testing.T) {
	db, _ := openTestDB(t)
	ids := make([]int64, 0, 5)
	for i := 0; i < 5; i++ {
		ids = append(ids, testRecord(t, db, "r", i, float64(i)))
	}
	for _, id := range ids {
		if f := db.VerifyRecord(id); f.State != ScrubClean {
			t.Fatalf("record %d: %s (%s), want clean", id, f.State, f.Detail)
		}
	}
	if f := db.VerifyRecord(99999); f.State != ScrubGone {
		t.Fatalf("unknown id: %s, want gone", f.State)
	}
}

func TestVerifyRecordInMemory(t *testing.T) {
	db, err := Open("", features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	id := testRecord(t, db, "mem", 0, 1)
	if f := db.VerifyRecord(id); f.State != ScrubClean {
		t.Fatalf("in-memory record: %s (%s), want clean", f.State, f.Detail)
	}
	st := db.Stats()
	if st.Durable {
		t.Fatal("in-memory store reports durable")
	}
}

func TestVerifyRecordDetectsBitRot(t *testing.T) {
	db, dir := openTestDB(t)
	var ids []int64
	for i := 0; i < 4; i++ {
		ids = append(ids, testRecord(t, db, "rot", i, float64(i)))
	}
	victim := ids[1]
	off, size, ok := db.FrameSpan(victim)
	if !ok || size <= 8 {
		t.Fatalf("FrameSpan(%d) = %d,%d,%v", victim, off, size, ok)
	}
	// Flip a payload byte: CRC must catch it.
	path := filepath.Join(dir, journalName)
	if err := faultfs.FlipByte(path, off+8+size/3, 0x40); err != nil {
		t.Fatal(err)
	}
	f := db.VerifyRecord(victim)
	if f.State != ScrubBitRot {
		t.Fatalf("flipped payload: %s (%s), want bit-rot", f.State, f.Detail)
	}
	// The other records' frames are untouched.
	for _, id := range ids {
		if id == victim {
			continue
		}
		if f := db.VerifyRecord(id); f.State != ScrubClean {
			t.Fatalf("record %d: %s (%s), want clean", id, f.State, f.Detail)
		}
	}
	// Flip a header byte on another record: caught as header/CRC damage.
	off2, _, _ := db.FrameSpan(ids[2])
	if err := faultfs.FlipByte(path, off2+5, 0x01); err != nil {
		t.Fatal(err)
	}
	if f := db.VerifyRecord(ids[2]); f.State != ScrubBitRot {
		t.Fatalf("flipped header: %s (%s), want bit-rot", f.State, f.Detail)
	}
}

func TestVerifyRecordDetectsTruncatedFrame(t *testing.T) {
	db, dir := openTestDB(t)
	id := testRecord(t, db, "trunc", 0, 1)
	off, _, _ := db.FrameSpan(id)
	path := filepath.Join(dir, journalName)
	if err := os.Truncate(path, off+4); err != nil {
		t.Fatal(err)
	}
	if f := db.VerifyRecord(id); f.State != ScrubMissingFrame {
		t.Fatalf("truncated frame: %s (%s), want missing-frame", f.State, f.Detail)
	}
}

func TestQuarantineRemovesFromService(t *testing.T) {
	db, _ := openTestDB(t)
	var ids []int64
	for i := 0; i < 6; i++ {
		ids = append(ids, testRecord(t, db, "q", 1, float64(i)))
	}
	victim := ids[2]
	if !db.Quarantine(victim, ScrubBitRot, "test") {
		t.Fatal("quarantine of live record returned false")
	}
	if db.Quarantine(victim, ScrubBitRot, "again") {
		t.Fatal("second quarantine of same id returned true")
	}
	if _, ok := db.Get(victim); ok {
		t.Fatal("quarantined record still served by Get")
	}
	if !db.IsQuarantined(victim) {
		t.Fatal("IsQuarantined false after quarantine")
	}
	// No index may return it.
	opts := db.Options()
	for _, k := range features.CoreKinds {
		q := fixedFeatures(opts, 2)[k]
		nn, err := db.KNN(k, q, len(ids))
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range nn {
			if n.ID == victim {
				t.Fatalf("%v KNN returned quarantined record", k)
			}
		}
	}
	infos := db.Quarantined()
	if len(infos) != 1 || infos[0].ID != victim || infos[0].State != ScrubBitRot {
		t.Fatalf("Quarantined() = %+v", infos)
	}
	st := db.Stats()
	if st.Quarantined != 1 || st.UnhealedQuarantine != 1 {
		t.Fatalf("stats after quarantine: %+v", st)
	}
	// Compaction heals: the journal is rewritten without the record.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	st = db.Stats()
	if st.UnhealedQuarantine != 0 {
		t.Fatalf("UnhealedQuarantine = %d after compaction", st.UnhealedQuarantine)
	}
	if st.Quarantined != 1 {
		t.Fatalf("Quarantined = %d after compaction, info should persist", st.Quarantined)
	}
	// Everything still live verifies clean post-compaction (frames moved).
	for _, id := range ids {
		if id == victim {
			continue
		}
		if f := db.VerifyRecord(id); f.State != ScrubClean {
			t.Fatalf("record %d after compaction: %s (%s)", id, f.State, f.Detail)
		}
	}
}

func TestJournalStatsAccounting(t *testing.T) {
	db, _ := openTestDB(t)
	var ids []int64
	for i := 0; i < 8; i++ {
		ids = append(ids, testRecord(t, db, "s", 0, float64(i)))
	}
	st := db.Stats()
	if !st.Durable || st.LiveRecords != 8 || st.JournalEntries != 8 || st.DeadEntries != 0 {
		t.Fatalf("fresh stats: %+v", st)
	}
	if st.LiveBytes != st.JournalBytes {
		t.Fatalf("all-live journal: LiveBytes %d != JournalBytes %d", st.LiveBytes, st.JournalBytes)
	}
	for _, id := range ids[:4] {
		if _, err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	st = db.Stats()
	// 4 deletes add 4 entries and kill 4 inserts: 8 dead of 12.
	if st.LiveRecords != 4 || st.JournalEntries != 12 || st.DeadEntries != 8 {
		t.Fatalf("post-delete stats: %+v", st)
	}
	if st.Amplification() <= 1 {
		t.Fatalf("amplification %v after deleting half", st.Amplification())
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	st = db.Stats()
	if st.LiveRecords != 4 || st.JournalEntries != 4 || st.DeadEntries != 0 {
		t.Fatalf("post-compaction stats: %+v", st)
	}
	if st.LiveBytes != st.JournalBytes {
		t.Fatalf("compacted journal not fully live: %+v", st)
	}
}

func TestFrameTrackingSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []int64
	for i := 0; i < 5; i++ {
		ids = append(ids, testRecord(t, db, "ro", 0, float64(i)))
	}
	if _, err := db.Delete(ids[0]); err != nil {
		t.Fatal(err)
	}
	spans := map[int64][2]int64{}
	for _, id := range ids[1:] {
		off, size, ok := db.FrameSpan(id)
		if !ok {
			t.Fatalf("no frame for %d before reopen", id)
		}
		spans[id] = [2]int64{off, size}
	}
	db.Close()

	db2, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, id := range ids[1:] {
		off, size, ok := db2.FrameSpan(id)
		if !ok {
			t.Fatalf("no frame for %d after reopen", id)
		}
		if want := spans[id]; off != want[0] || size != want[1] {
			t.Fatalf("frame for %d moved across reopen: got %d,%d want %d,%d", id, off, size, want[0], want[1])
		}
		if f := db2.VerifyRecord(id); f.State != ScrubClean {
			t.Fatalf("record %d after reopen: %s (%s)", id, f.State, f.Detail)
		}
	}
	if _, _, ok := db2.FrameSpan(ids[0]); ok {
		t.Fatal("deleted record has a frame after reopen")
	}
	st := db2.Stats()
	if st.JournalEntries != 6 || st.DeadEntries != 2 {
		t.Fatalf("reopened stats: %+v", st)
	}
}
