package shapedb

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"threedess/internal/features"
	"threedess/internal/geom"
)

func TestReplayEmptyJournalFile(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatalf("empty journal: %v", err)
	}
	defer db.Close()
	if db.Len() != 0 {
		t.Errorf("Len = %d", db.Len())
	}
	// Still writable.
	testRecord(t, db, "a", 1, 0)
	if db.Len() != 1 {
		t.Error("insert after empty journal failed")
	}
}

func TestReplayGarbageJournalFile(t *testing.T) {
	dir := t.TempDir()
	garbage := make([]byte, 333)
	for i := range garbage {
		garbage[i] = byte(i * 7)
	}
	if err := os.WriteFile(filepath.Join(dir, journalName), garbage, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatalf("garbage journal: %v", err)
	}
	defer db.Close()
	if db.Len() != 0 {
		t.Errorf("recovered %d records from garbage", db.Len())
	}
}

func TestReplayImplausibleLengthFrame(t *testing.T) {
	dir := t.TempDir()
	// A frame header claiming 2 GiB payload.
	frame := []byte{0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4}
	if err := os.WriteFile(filepath.Join(dir, journalName), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatalf("implausible frame: %v", err)
	}
	defer db.Close()
	if db.Len() != 0 {
		t.Errorf("Len = %d", db.Len())
	}
	// The guard is no longer a silent clean-EOF: the report counts the
	// discarded bytes and classifies the tail.
	rep := db.Recovery()
	if rep == nil || !rep.Degraded() {
		t.Fatalf("implausible length not reported: %v", rep)
	}
	if rep.Tail != TailImplausibleLength {
		t.Errorf("Tail = %v, want implausible length", rep.Tail)
	}
	if rep.DiscardedBytes != int64(len(frame)) {
		t.Errorf("DiscardedBytes = %d, want %d", rep.DiscardedBytes, len(frame))
	}
	if rep.TornTail {
		t.Error("garbage header classified as torn tail")
	}
	if rep.Quarantined == "" {
		t.Error("discarded tail not quarantined")
	}
}

func TestJournalSurvivesManyOperations(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var live []int64
	for i := 0; i < 60; i++ {
		id := testRecord(t, db, "s", i%5, float64(i))
		live = append(live, id)
		if i%3 == 2 {
			victim := live[0]
			live = live[1:]
			if _, err := db.Delete(victim); err != nil {
				t.Fatal(err)
			}
		}
	}
	wantLen := db.Len()
	db.Close()

	re, err := Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != wantLen {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), wantLen)
	}
	for _, id := range live {
		if _, ok := re.Get(id); !ok {
			t.Errorf("live record %d lost", id)
		}
	}
}

func TestDimRanges(t *testing.T) {
	db, _ := Open("", features.Options{})
	defer db.Close()
	if got := db.DimRanges(features.PrincipalMoments); got != nil {
		t.Errorf("empty DimRanges = %v", got)
	}
	testRecord(t, db, "a", 0, 0)
	testRecord(t, db, "b", 0, 10)
	ranges := db.DimRanges(features.PrincipalMoments)
	dim := db.Options().Dim(features.PrincipalMoments)
	if len(ranges) != dim {
		t.Fatalf("ranges dim = %d", len(ranges))
	}
	for i, r := range ranges {
		if r != 10 {
			t.Errorf("range[%d] = %v, want 10", i, r)
		}
	}
}

func TestConcurrentMixedOperations(t *testing.T) {
	db, _ := Open("", features.Options{})
	defer db.Close()
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	opts := db.Options()
	mkSet := func(base float64) features.Set {
		set := features.Set{}
		for _, k := range features.CoreKinds {
			v := make(features.Vector, opts.Dim(k))
			for i := range v {
				v[i] = base + float64(i)
			}
			set[k] = v
		}
		return set
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []int64
			for i := 0; i < 50; i++ {
				id, err := db.Insert("w", w, mesh, mkSet(float64(w*100+i)))
				if err != nil {
					t.Error(err)
					return
				}
				mine = append(mine, id)
				if i%4 == 3 {
					if _, err := db.Delete(mine[0]); err != nil {
						t.Error(err)
						return
					}
					mine = mine[1:]
				}
				q := make(features.Vector, opts.Dim(features.PrincipalMoments))
				if _, err := db.KNN(features.PrincipalMoments, q, 3); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// 4 workers × (50 inserts − 12 deletes) = 152 survivors.
	if got := db.Len(); got != 4*(50-12) {
		t.Errorf("Len = %d, want %d", got, 4*(50-12))
	}
}
