// Package voxel converts triangle meshes into binary voxel models (§3.2 of
// the paper): the shape's bounding box is divided into N³ equal cells and a
// cell is set when it intersects the solid. The package also provides the
// morphological and connectivity operations the skeletonization stage
// builds on.
package voxel

import (
	"fmt"

	"threedess/internal/geom"
)

// Grid is a dense binary voxel grid of Nx×Ny×Nz cells over an axis-aligned
// box in model space. Occupancy is bit-packed.
type Grid struct {
	Nx, Ny, Nz int
	Origin     geom.Vec3 // model-space position of the (0,0,0) cell corner
	Cell       float64   // edge length of each (cubic) cell

	bits []uint64
}

// NewGrid allocates an empty grid. Dimensions must be positive and the
// cell size must be positive.
func NewGrid(nx, ny, nz int, origin geom.Vec3, cell float64) (*Grid, error) {
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("voxel: grid dimensions must be positive, got %d×%d×%d", nx, ny, nz)
	}
	if cell <= 0 {
		return nil, fmt.Errorf("voxel: cell size must be positive, got %g", cell)
	}
	n := nx * ny * nz
	return &Grid{
		Nx: nx, Ny: ny, Nz: nz,
		Origin: origin,
		Cell:   cell,
		bits:   make([]uint64, (n+63)/64),
	}, nil
}

// MustNewGrid is NewGrid for statically valid parameters; it panics on
// error.
func MustNewGrid(nx, ny, nz int, origin geom.Vec3, cell float64) *Grid {
	g, err := NewGrid(nx, ny, nz, origin, cell)
	if err != nil {
		panic(err)
	}
	return g
}

// Clone returns a deep copy of g.
func (g *Grid) Clone() *Grid {
	c := *g
	c.bits = make([]uint64, len(g.bits))
	copy(c.bits, g.bits)
	return &c
}

// In reports whether (i, j, k) is a valid cell index.
func (g *Grid) In(i, j, k int) bool {
	return i >= 0 && i < g.Nx && j >= 0 && j < g.Ny && k >= 0 && k < g.Nz
}

func (g *Grid) index(i, j, k int) int { return (k*g.Ny+j)*g.Nx + i }

// Get reports whether cell (i, j, k) is set. Out-of-range indices read as
// empty, which lets neighborhood scans run without bounds checks.
func (g *Grid) Get(i, j, k int) bool {
	if !g.In(i, j, k) {
		return false
	}
	idx := g.index(i, j, k)
	return g.bits[idx>>6]&(1<<(idx&63)) != 0
}

// Set sets or clears cell (i, j, k). Out-of-range indices are ignored.
func (g *Grid) Set(i, j, k int, v bool) {
	if !g.In(i, j, k) {
		return
	}
	idx := g.index(i, j, k)
	if v {
		g.bits[idx>>6] |= 1 << (idx & 63)
	} else {
		g.bits[idx>>6] &^= 1 << (idx & 63)
	}
}

// Count returns the number of set cells.
func (g *Grid) Count() int {
	n := 0
	for _, w := range g.bits {
		n += popcount(w)
	}
	return n
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Center returns the model-space center of cell (i, j, k).
func (g *Grid) Center(i, j, k int) geom.Vec3 {
	return g.Origin.Add(geom.V(
		(float64(i)+0.5)*g.Cell,
		(float64(j)+0.5)*g.Cell,
		(float64(k)+0.5)*g.Cell,
	))
}

// CellOf returns the cell indices containing the model-space point p. The
// result may be out of range; check with In.
func (g *Grid) CellOf(p geom.Vec3) (i, j, k int) {
	d := p.Sub(g.Origin)
	return int(d.X / g.Cell), int(d.Y / g.Cell), int(d.Z / g.Cell)
}

// ForEachSet calls fn for every set cell.
func (g *Grid) ForEachSet(fn func(i, j, k int)) {
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				if g.Get(i, j, k) {
					fn(i, j, k)
				}
			}
		}
	}
}

// SetCenters returns the model-space centers of all set cells.
func (g *Grid) SetCenters() []geom.Vec3 {
	pts := make([]geom.Vec3, 0, g.Count())
	g.ForEachSet(func(i, j, k int) {
		pts = append(pts, g.Center(i, j, k))
	})
	return pts
}

// Volume returns the total volume of the set cells (count × cell³).
func (g *Grid) Volume() float64 {
	return float64(g.Count()) * g.Cell * g.Cell * g.Cell
}

// Equal reports whether g and h have identical dimensions and occupancy.
// Origin/cell metadata is not compared.
func (g *Grid) Equal(h *Grid) bool {
	if g.Nx != h.Nx || g.Ny != h.Ny || g.Nz != h.Nz {
		return false
	}
	for i := range g.bits {
		if g.bits[i] != h.bits[i] {
			return false
		}
	}
	return true
}

// Union sets every cell of g that is set in h (dimensions must match).
func (g *Grid) Union(h *Grid) error {
	if g.Nx != h.Nx || g.Ny != h.Ny || g.Nz != h.Nz {
		return fmt.Errorf("voxel: union of mismatched grids %d×%d×%d vs %d×%d×%d",
			g.Nx, g.Ny, g.Nz, h.Nx, h.Ny, h.Nz)
	}
	for i := range g.bits {
		g.bits[i] |= h.bits[i]
	}
	return nil
}

// Neighbors6 holds the 6-connected (face) neighbor offsets.
var Neighbors6 = [6][3]int{
	{1, 0, 0}, {-1, 0, 0},
	{0, 1, 0}, {0, -1, 0},
	{0, 0, 1}, {0, 0, -1},
}

// Neighbors26 holds the 26-connected (face+edge+vertex) neighbor offsets.
var Neighbors26 = func() [][3]int {
	var out [][3]int
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				out = append(out, [3]int{dx, dy, dz})
			}
		}
	}
	return out
}()
