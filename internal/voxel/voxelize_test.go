package voxel

import (
	"math"
	"testing"

	"threedess/internal/geom"
)

func TestVoxelizeBoxVolume(t *testing.T) {
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(2, 2, 2))
	g, err := Voxelize(mesh, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Voxel volume ≈ mesh volume within one surface shell.
	vol := g.Volume()
	if math.Abs(vol-8) > 0.2*8 {
		t.Errorf("voxel volume = %v, want ≈8", vol)
	}
	// The interior center must be set; far corners of the padded grid not.
	i, j, k := g.CellOf(geom.V(1, 1, 1))
	if !g.Get(i, j, k) {
		t.Error("box center voxel unset")
	}
	if g.Get(0, 0, 0) {
		t.Error("padding corner voxel set")
	}
}

func TestVoxelizeSphereVolume(t *testing.T) {
	mesh := geom.Sphere(1, 24, 32)
	g, err := Voxelize(mesh, 48)
	if err != nil {
		t.Fatal(err)
	}
	want := 4.0 / 3 * math.Pi
	if got := g.Volume(); math.Abs(got-want) > 0.15*want {
		t.Errorf("sphere voxel volume = %v, want ≈%v", got, want)
	}
	// Single 26-connected component.
	if n, _ := g.Components(26); n != 1 {
		t.Errorf("sphere components = %d", n)
	}
}

func TestVoxelizeTubeKeepsHoleOpen(t *testing.T) {
	mesh, err := geom.Tube(0.6, 1.0, 2.0, 64)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Voxelize(mesh, 40)
	if err != nil {
		t.Fatal(err)
	}
	// The axis of the tube must be empty (hole), the wall solid.
	i, j, k := g.CellOf(geom.V(0, 0, 1))
	if g.Get(i, j, k) {
		t.Error("tube axis voxel set — hole was filled")
	}
	i, j, k = g.CellOf(geom.V(0.8, 0, 1))
	if !g.Get(i, j, k) {
		t.Error("tube wall voxel unset")
	}
	want := math.Pi * (1 - 0.36) * 2
	if got := g.Volume(); math.Abs(got-want) > 0.25*want {
		t.Errorf("tube voxel volume = %v, want ≈%v", got, want)
	}
}

func TestVoxelizeCavitySubtracts(t *testing.T) {
	// Outer box with a flipped inner box = hollow shell. The signed
	// winding fill must leave the cavity empty.
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(4, 4, 4))
	mesh.Merge(geom.Box(geom.V(1, 1, 1), geom.V(3, 3, 3)).FlipFaces())
	g, err := Voxelize(mesh, 40)
	if err != nil {
		t.Fatal(err)
	}
	i, j, k := g.CellOf(geom.V(2, 2, 2))
	if g.Get(i, j, k) {
		t.Error("cavity center voxel set")
	}
	i, j, k = g.CellOf(geom.V(0.5, 2, 2))
	if !g.Get(i, j, k) {
		t.Error("shell wall voxel unset")
	}
}

func TestVoxelizeSurfaceIsShell(t *testing.T) {
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(2, 2, 2))
	surf, err := VoxelizeSurface(mesh, 24)
	if err != nil {
		t.Fatal(err)
	}
	solid, err := Voxelize(mesh, 24)
	if err != nil {
		t.Fatal(err)
	}
	if surf.Count() == 0 {
		t.Fatal("surface voxelization empty")
	}
	if surf.Count() >= solid.Count() {
		t.Errorf("surface (%d) should have fewer voxels than solid (%d)", surf.Count(), solid.Count())
	}
	// Box center not in the shell.
	i, j, k := surf.CellOf(geom.V(1, 1, 1))
	if surf.Get(i, j, k) {
		t.Error("surface voxelization contains interior cell")
	}
	// Every surface voxel is also in the solid.
	ok := true
	surf.ForEachSet(func(i, j, k int) {
		if !solid.Get(i, j, k) {
			ok = false
		}
	})
	if !ok {
		t.Error("surface voxel missing from solid voxelization")
	}
}

func TestVoxelizeThinPlateIsConnected(t *testing.T) {
	// A plate thinner than one voxel must still produce a connected shell
	// (caught by the surface pass even when no center is interior).
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 0.05))
	g, err := Voxelize(mesh, 32)
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() == 0 {
		t.Fatal("thin plate voxelization empty")
	}
	if n, _ := g.Components(26); n != 1 {
		t.Errorf("thin plate components = %d", n)
	}
}

func TestVoxelizeErrors(t *testing.T) {
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1))
	if _, err := Voxelize(mesh, 1); err == nil {
		t.Error("resolution 1 accepted")
	}
	if _, err := Voxelize(geom.NewMesh(0, 0), 16); err == nil {
		t.Error("empty mesh accepted")
	}
	degenerate := geom.NewMesh(0, 0)
	degenerate.AddVertex(geom.V(0, 0, 0))
	degenerate.AddVertex(geom.V(0, 0, 0))
	degenerate.AddVertex(geom.V(0, 0, 0))
	degenerate.AddFace(0, 1, 2)
	if _, err := Voxelize(degenerate, 16); err == nil {
		t.Error("zero-extent mesh accepted")
	}
}

func TestTriBoxOverlap(t *testing.T) {
	// Triangle crossing the box.
	if !triBoxOverlap(geom.V(0, 0, 0), 1, geom.V(-2, 0, 0), geom.V(2, 0.1, 0), geom.V(0, 0, 2)) {
		t.Error("crossing triangle reported separate")
	}
	// Triangle fully outside.
	if triBoxOverlap(geom.V(0, 0, 0), 1, geom.V(5, 5, 5), geom.V(6, 5, 5), geom.V(5, 6, 5)) {
		t.Error("distant triangle reported overlapping")
	}
	// Triangle fully inside.
	if !triBoxOverlap(geom.V(0, 0, 0), 1, geom.V(-0.2, 0, 0), geom.V(0.2, 0.1, 0), geom.V(0, 0.2, 0.1)) {
		t.Error("contained triangle reported separate")
	}
	// Plane near but not touching the box (separating normal axis).
	if triBoxOverlap(geom.V(0, 0, 0), 1, geom.V(-5, -5, 1.5), geom.V(5, -5, 1.5), geom.V(0, 5, 1.5)) {
		t.Error("plane above box reported overlapping")
	}
}
