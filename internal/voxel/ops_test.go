package voxel

import (
	"testing"

	"threedess/internal/geom"
)

func blockGrid(t *testing.T) *Grid {
	t.Helper()
	g := MustNewGrid(10, 10, 10, geom.Vec3{}, 1)
	for k := 3; k <= 6; k++ {
		for j := 3; j <= 6; j++ {
			for i := 3; i <= 6; i++ {
				g.Set(i, j, k, true)
			}
		}
	}
	return g
}

func TestDilateGrowsErodeShrinks(t *testing.T) {
	g := blockGrid(t)
	n0 := g.Count()
	d := g.Dilate(6)
	if d.Count() <= n0 {
		t.Errorf("dilate did not grow: %d -> %d", n0, d.Count())
	}
	e := g.Erode(6)
	if e.Count() >= n0 {
		t.Errorf("erode did not shrink: %d -> %d", n0, e.Count())
	}
	// Original ⊆ dilated; eroded ⊆ original.
	ok := true
	g.ForEachSet(func(i, j, k int) {
		if !d.Get(i, j, k) {
			ok = false
		}
	})
	if !ok {
		t.Error("dilation lost a cell")
	}
	ok = true
	e.ForEachSet(func(i, j, k int) {
		if !g.Get(i, j, k) {
			ok = false
		}
	})
	if !ok {
		t.Error("erosion added a cell")
	}
}

func TestErodeDilateClosing(t *testing.T) {
	// Erosion then dilation of a solid block recovers the block under 6-
	// connectivity (a 4³ block erodes to 2³ and dilates back within it).
	g := blockGrid(t)
	round := g.Erode(6).Dilate(6)
	ok := true
	round.ForEachSet(func(i, j, k int) {
		if !g.Get(i, j, k) {
			ok = false
		}
	})
	if !ok {
		t.Error("erode∘dilate escaped the original set")
	}
}

func TestBoundary(t *testing.T) {
	g := blockGrid(t)
	b := g.Boundary()
	// A 4³ block has 4³−2³ = 56 boundary cells.
	if got := b.Count(); got != 56 {
		t.Errorf("boundary count = %d, want 56", got)
	}
	// The innermost cells are not boundary.
	if b.Get(4, 4, 4) || b.Get(5, 5, 5) {
		t.Error("interior cell in boundary")
	}
}

func TestComponents(t *testing.T) {
	g := MustNewGrid(10, 10, 10, geom.Vec3{}, 1)
	g.Set(1, 1, 1, true)
	g.Set(1, 1, 2, true) // same 6-component
	g.Set(5, 5, 5, true) // separate
	g.Set(6, 6, 6, true) // diagonal: 26-connected to (5,5,5), 6-separate
	if n, _ := g.Components(6); n != 3 {
		t.Errorf("6-components = %d, want 3", n)
	}
	if n, _ := g.Components(26); n != 2 {
		t.Errorf("26-components = %d, want 2", n)
	}
	labels6 := func() []int { _, l := g.Components(6); return l }()
	if labels6[g.index(1, 1, 1)] != labels6[g.index(1, 1, 2)] {
		t.Error("adjacent cells in different components")
	}
	if labels6[g.index(0, 0, 0)] != -1 {
		t.Error("unset cell labeled")
	}
}

func TestComponentsEmpty(t *testing.T) {
	g := MustNewGrid(3, 3, 3, geom.Vec3{}, 1)
	if n, _ := g.Components(26); n != 0 {
		t.Errorf("empty grid components = %d", n)
	}
}

func TestLargestComponent(t *testing.T) {
	g := MustNewGrid(12, 12, 12, geom.Vec3{}, 1)
	// Small blob.
	g.Set(1, 1, 1, true)
	// Large blob.
	for i := 5; i < 9; i++ {
		g.Set(i, 5, 5, true)
	}
	lc := g.LargestComponent(26)
	if lc.Count() != 4 {
		t.Errorf("largest component count = %d, want 4", lc.Count())
	}
	if lc.Get(1, 1, 1) {
		t.Error("small blob survived")
	}
	// Single component: unchanged.
	single := MustNewGrid(4, 4, 4, geom.Vec3{}, 1)
	single.Set(2, 2, 2, true)
	if got := single.LargestComponent(6); !got.Equal(single) {
		t.Error("single component changed")
	}
}
