package voxel

import (
	"fmt"
	"math"
	"sort"

	"threedess/internal/geom"
)

// Voxelize converts a closed mesh into a solid binary voxel model. The
// mesh bounding box (padded by one cell) is discretized into cubic cells
// whose size makes the longest side span resolution cells. A cell is set
// when it intersects the surface (triangle–box overlap) or lies inside the
// solid (column winding test), matching the paper's "assign one to a voxel
// if it contains a part of the CAD model" rule.
func Voxelize(mesh *geom.Mesh, resolution int) (*Grid, error) {
	g, err := newGridForMesh(mesh, resolution)
	if err != nil {
		return nil, err
	}
	markSurface(g, mesh)
	fillInterior(g, mesh)
	return g, nil
}

// VoxelizeSurface voxelizes only the surface shell of the mesh.
func VoxelizeSurface(mesh *geom.Mesh, resolution int) (*Grid, error) {
	g, err := newGridForMesh(mesh, resolution)
	if err != nil {
		return nil, err
	}
	markSurface(g, mesh)
	return g, nil
}

func newGridForMesh(mesh *geom.Mesh, resolution int) (*Grid, error) {
	if resolution < 2 {
		return nil, fmt.Errorf("voxel: resolution must be ≥ 2, got %d", resolution)
	}
	if len(mesh.Faces) == 0 {
		return nil, fmt.Errorf("voxel: cannot voxelize empty mesh")
	}
	min, max := mesh.Bounds()
	ext := max.Sub(min)
	longest := ext.MaxComponent()
	if longest <= 0 {
		return nil, fmt.Errorf("voxel: mesh has zero extent")
	}
	cell := longest / float64(resolution)
	// Pad by one cell on each side so surface voxels never land on the
	// boundary and the exterior stays connected.
	origin := min.Sub(geom.V(cell, cell, cell))
	nx := int(math.Ceil(ext.X/cell)) + 2
	ny := int(math.Ceil(ext.Y/cell)) + 2
	nz := int(math.Ceil(ext.Z/cell)) + 2
	return NewGrid(nx, ny, nz, origin, cell)
}

// markSurface sets every cell whose box overlaps a triangle.
func markSurface(g *Grid, mesh *geom.Mesh) {
	h := g.Cell / 2
	for fi := range mesh.Faces {
		a, b, c := mesh.Triangle(fi)
		lo := a.Min(b).Min(c)
		hi := a.Max(b).Max(c)
		i0, j0, k0 := g.CellOf(lo)
		i1, j1, k1 := g.CellOf(hi)
		for k := maxInt(k0, 0); k <= minInt(k1, g.Nz-1); k++ {
			for j := maxInt(j0, 0); j <= minInt(j1, g.Ny-1); j++ {
				for i := maxInt(i0, 0); i <= minInt(i1, g.Nx-1); i++ {
					if g.Get(i, j, k) {
						continue
					}
					center := g.Center(i, j, k)
					if triBoxOverlap(center, h, a, b, c) {
						g.Set(i, j, k, true)
					}
				}
			}
		}
	}
}

// fillInterior sets the cells whose centers lie inside the solid using a
// column winding test: for each (j, k) column a ray is cast along +x and
// the crossing directions of the (outward-oriented) surface accumulate a
// winding count; centers with positive winding are interior. Because the
// count is signed, inward-oriented void surfaces (cavities built with
// flipped meshes) subtract correctly.
func fillInterior(g *Grid, mesh *geom.Mesh) {
	type crossing struct {
		x    float64
		sign int // +1 entering solid, −1 leaving (for a +x ray)
	}
	cols := make([][]crossing, g.Ny*g.Nz)
	// Deterministic sub-cell jitter avoids rays passing exactly through
	// triangle edges/vertices of axis-aligned models.
	jy := g.Cell * 0.51e-3
	jz := g.Cell * 0.49e-3

	for fi := range mesh.Faces {
		a, b, c := mesh.Triangle(fi)
		n := b.Sub(a).Cross(c.Sub(a))
		if math.Abs(n.X) < 1e-300 {
			continue // parallel to the ray; no crossing
		}
		lo := a.Min(b).Min(c)
		hi := a.Max(b).Max(c)
		_, j0, k0 := g.CellOf(lo)
		_, j1, k1 := g.CellOf(hi)
		for k := maxInt(k0, 0); k <= minInt(k1, g.Nz-1); k++ {
			for j := maxInt(j0, 0); j <= minInt(j1, g.Ny-1); j++ {
				p := g.Center(0, j, k)
				y := p.Y + jy
				z := p.Z + jz
				// 2D barycentric test in the YZ plane.
				d00y, d00z := b.Y-a.Y, b.Z-a.Z
				d01y, d01z := c.Y-a.Y, c.Z-a.Z
				den := d00y*d01z - d00z*d01y
				if math.Abs(den) < 1e-300 {
					continue
				}
				py, pz := y-a.Y, z-a.Z
				u := (py*d01z - pz*d01y) / den
				v := (d00y*pz - d00z*py) / den
				if u < 0 || v < 0 || u+v > 1 {
					continue
				}
				x := a.X + u*(b.X-a.X) + v*(c.X-a.X)
				sign := 1
				if n.X > 0 {
					sign = -1
				}
				ci := k*g.Ny + j
				cols[ci] = append(cols[ci], crossing{x, sign})
			}
		}
	}
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			events := cols[k*g.Ny+j]
			if len(events) == 0 {
				continue
			}
			sort.Slice(events, func(a, b int) bool { return events[a].x < events[b].x })
			winding := 0
			ei := 0
			for i := 0; i < g.Nx; i++ {
				x := g.Center(i, j, k).X
				for ei < len(events) && events[ei].x <= x {
					winding += events[ei].sign
					ei++
				}
				if winding > 0 {
					g.Set(i, j, k, true)
				}
			}
		}
	}
}

// triBoxOverlap reports whether the triangle (a, b, c) intersects the cube
// centered at boxCenter with half-size h, using the separating axis
// theorem (Akenine-Möller's 13-axis test).
func triBoxOverlap(boxCenter geom.Vec3, h float64, a, b, c geom.Vec3) bool {
	v0 := a.Sub(boxCenter)
	v1 := b.Sub(boxCenter)
	v2 := c.Sub(boxCenter)

	// Axis test helpers: project the triangle onto axis, compare with box
	// projection radius.
	axisTest := func(ax geom.Vec3, rad float64) bool {
		p0 := ax.Dot(v0)
		p1 := ax.Dot(v1)
		p2 := ax.Dot(v2)
		mn := math.Min(p0, math.Min(p1, p2))
		mx := math.Max(p0, math.Max(p1, p2))
		return mn > rad || mx < -rad
	}

	// 1) Box axes (AABB of the triangle vs the box).
	if math.Min(v0.X, math.Min(v1.X, v2.X)) > h || math.Max(v0.X, math.Max(v1.X, v2.X)) < -h {
		return false
	}
	if math.Min(v0.Y, math.Min(v1.Y, v2.Y)) > h || math.Max(v0.Y, math.Max(v1.Y, v2.Y)) < -h {
		return false
	}
	if math.Min(v0.Z, math.Min(v1.Z, v2.Z)) > h || math.Max(v0.Z, math.Max(v1.Z, v2.Z)) < -h {
		return false
	}

	// 2) Nine cross-product axes e_i × f_j.
	f0 := v1.Sub(v0)
	f1 := v2.Sub(v1)
	f2 := v0.Sub(v2)
	for _, f := range []geom.Vec3{f0, f1, f2} {
		axes := []geom.Vec3{
			{X: 0, Y: -f.Z, Z: f.Y}, // e0 × f
			{X: f.Z, Y: 0, Z: -f.X}, // e1 × f
			{X: -f.Y, Y: f.X, Z: 0}, // e2 × f
		}
		for _, ax := range axes {
			rad := h * (math.Abs(ax.X) + math.Abs(ax.Y) + math.Abs(ax.Z))
			if axisTest(ax, rad) {
				return false
			}
		}
	}

	// 3) Triangle normal axis (plane vs box).
	n := f0.Cross(f1)
	d := n.Dot(v0)
	rad := h * (math.Abs(n.X) + math.Abs(n.Y) + math.Abs(n.Z))
	return math.Abs(d) <= rad
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
