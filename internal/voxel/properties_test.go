package voxel

import (
	"math"
	"math/rand"
	"testing"

	"threedess/internal/geom"
)

// Property: voxelized volume of random boxes converges to the analytic
// volume within a one-voxel surface shell.
func TestQuickVoxelVolumeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(240))
	for trial := 0; trial < 25; trial++ {
		size := geom.V(2+rng.Float64()*8, 2+rng.Float64()*8, 2+rng.Float64()*8)
		m := geom.BoxAt(geom.Vec3{}, size)
		// Random rigid pose.
		axis := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
		m.Rotate(geom.RotationAxisAngle(axis, rng.Float64()*6.28))
		m.Translate(geom.V(rng.NormFloat64()*5, rng.NormFloat64()*5, rng.NormFloat64()*5))

		g, err := Voxelize(m, 40)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := size.X * size.Y * size.Z
		got := g.Volume()
		// The surface shell adds roughly area × cell to the volume.
		cell := g.Cell
		slack := m.SurfaceArea()*cell + 0.05*want
		if math.Abs(got-want) > slack {
			t.Fatalf("trial %d: voxel volume %v, analytic %v (slack %v)", trial, got, want, slack)
		}
	}
}

// Property: every voxelized closed solid has exactly one 26-connected
// component (the primitives are connected solids).
func TestQuickVoxelConnectivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(241))
	gens := []func() (*geom.Mesh, error){
		func() (*geom.Mesh, error) {
			return geom.Cone(1+rng.Float64()*3, rng.Float64()*2, 2+rng.Float64()*4, 20)
		},
		func() (*geom.Mesh, error) {
			major := 3 + rng.Float64()*2
			return geom.Torus(major, 0.5+rng.Float64()*0.8, 28, 14)
		},
		func() (*geom.Mesh, error) {
			return geom.Tube(0.5+rng.Float64(), 2+rng.Float64(), 1+rng.Float64()*4, 24)
		},
		func() (*geom.Mesh, error) {
			return geom.Sphere(1+rng.Float64()*2, 12, 16), nil
		},
	}
	for trial := 0; trial < 20; trial++ {
		m, err := gens[trial%len(gens)]()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g, err := Voxelize(m, 28)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if n, _ := g.Components(26); n != 1 {
			t.Fatalf("trial %d: %d components", trial, n)
		}
	}
}

// Property: CellOf(Center(i,j,k)) round-trips for in-range cells.
func TestQuickCellCenterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(242))
	for trial := 0; trial < 50; trial++ {
		g := MustNewGrid(3+rng.Intn(20), 3+rng.Intn(20), 3+rng.Intn(20),
			geom.V(rng.NormFloat64()*10, rng.NormFloat64()*10, rng.NormFloat64()*10),
			0.1+rng.Float64()*2)
		i, j, k := rng.Intn(g.Nx), rng.Intn(g.Ny), rng.Intn(g.Nz)
		gi, gj, gk := g.CellOf(g.Center(i, j, k))
		if gi != i || gj != j || gk != k {
			t.Fatalf("round trip (%d,%d,%d) -> (%d,%d,%d)", i, j, k, gi, gj, gk)
		}
	}
}

// Property: dilation then erosion (closing) is extensive; erosion then
// dilation (opening) is anti-extensive.
func TestQuickMorphologyOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(243))
	for trial := 0; trial < 10; trial++ {
		g := MustNewGrid(20, 20, 20, geom.Vec3{}, 1)
		for n := 0; n < 200; n++ {
			g.Set(2+rng.Intn(16), 2+rng.Intn(16), 2+rng.Intn(16), true)
		}
		closing := g.Dilate(6).Erode(6)
		opening := g.Erode(6).Dilate(6)
		bad := false
		g.ForEachSet(func(i, j, k int) {
			if !closing.Get(i, j, k) {
				bad = true // closing must contain the original
			}
		})
		if bad {
			t.Fatalf("trial %d: closing not extensive", trial)
		}
		opening.ForEachSet(func(i, j, k int) {
			if !g.Get(i, j, k) {
				bad = true // opening must be contained in the original
			}
		})
		if bad {
			t.Fatalf("trial %d: opening not anti-extensive", trial)
		}
	}
}

// The winding fill must agree between a solid and the same solid
// represented as outer + inner(flipped) + material in between.
func TestVoxelizeNestedCavities(t *testing.T) {
	// Box with a cavity that itself contains a smaller solid box:
	// outer [0,10]³ minus [2,8]³ plus [4,6]³.
	m := geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10))
	m.Merge(geom.Box(geom.V(2, 2, 2), geom.V(8, 8, 8)).FlipFaces())
	m.Merge(geom.Box(geom.V(4, 4, 4), geom.V(6, 6, 6)))
	g, err := Voxelize(m, 40)
	if err != nil {
		t.Fatal(err)
	}
	check := func(p geom.Vec3, want bool, what string) {
		i, j, k := g.CellOf(p)
		if g.Get(i, j, k) != want {
			t.Errorf("%s at %v: got %v, want %v", what, p, !want, want)
		}
	}
	check(geom.V(1, 5, 5), true, "outer shell")
	check(geom.V(3, 5, 5), false, "cavity")
	check(geom.V(5, 5, 5), true, "inner core")
	want := 1000 - 216 + 8
	if got := g.Volume(); math.Abs(got-float64(want)) > 0.15*float64(want) {
		t.Errorf("nested volume = %v, want ≈%d", got, want)
	}
}

func TestToMeshClosedAndExactVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(244))
	for trial := 0; trial < 8; trial++ {
		g := MustNewGrid(12, 12, 12, geom.V(-1, 2, 0.5), 0.5)
		for n := 0; n < 80; n++ {
			g.Set(1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10), true)
		}
		m := g.ToMesh()
		if err := m.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Random scatter may contain edge-only contacts (non-manifold),
		// but the enclosed volume is exact regardless.
		want := g.Volume()
		if math.Abs(m.Volume()-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: mesh volume %v, voxel volume %v", trial, m.Volume(), want)
		}
	}
}

func TestToMeshVoxelizedSolidIsClosed(t *testing.T) {
	mesh := geom.Sphere(1, 16, 20)
	g, err := Voxelize(mesh, 20)
	if err != nil {
		t.Fatal(err)
	}
	m := g.ToMesh()
	if !m.IsClosed() {
		t.Error("voxelized sphere boundary mesh not closed")
	}
	if math.Abs(m.Volume()-g.Volume()) > 1e-9*(1+g.Volume()) {
		t.Errorf("mesh volume %v vs voxel volume %v", m.Volume(), g.Volume())
	}
}

func TestToMeshEmptyGrid(t *testing.T) {
	g := MustNewGrid(4, 4, 4, geom.Vec3{}, 1)
	m := g.ToMesh()
	if len(m.Faces) != 0 {
		t.Errorf("empty grid produced %d faces", len(m.Faces))
	}
}

func TestToMeshSingleVoxelIsCube(t *testing.T) {
	g := MustNewGrid(3, 3, 3, geom.Vec3{}, 2)
	g.Set(1, 1, 1, true)
	m := g.ToMesh()
	if len(m.Vertices) != 8 || len(m.Faces) != 12 {
		t.Errorf("single voxel: %d vertices, %d faces", len(m.Vertices), len(m.Faces))
	}
	if math.Abs(m.Volume()-8) > 1e-12 {
		t.Errorf("volume = %v, want 8 (cell=2)", m.Volume())
	}
}
