package voxel

import "threedess/internal/geom"

// ToMesh converts the set voxels into a triangle mesh of their boundary:
// one quad (two triangles) for every voxel face adjacent to an empty
// cell, with outward orientation. The enclosed volume equals Volume()
// exactly, and for voxel sets without edge-only or corner-only contacts
// the mesh is watertight — handy for exporting voxel models and skeletons
// to standard viewers. (A pair of voxels touching only along a lattice
// edge makes that edge non-manifold: four boundary faces meet there.)
func (g *Grid) ToMesh() *geom.Mesh {
	m := geom.NewMesh(0, 0)
	// corner returns the model-space position of the (i, j, k) lattice
	// corner (not cell center).
	corner := func(i, j, k int) geom.Vec3 {
		return g.Origin.Add(geom.V(
			float64(i)*g.Cell,
			float64(j)*g.Cell,
			float64(k)*g.Cell,
		))
	}
	// For each face direction, the four corner offsets in CCW order when
	// viewed from outside (normal pointing along the direction).
	type face struct {
		di, dj, dk int
		c          [4][3]int
	}
	faces := []face{
		{+1, 0, 0, [4][3]int{{1, 0, 0}, {1, 1, 0}, {1, 1, 1}, {1, 0, 1}}}, // +x
		{-1, 0, 0, [4][3]int{{0, 0, 0}, {0, 0, 1}, {0, 1, 1}, {0, 1, 0}}}, // -x
		{0, +1, 0, [4][3]int{{0, 1, 0}, {0, 1, 1}, {1, 1, 1}, {1, 1, 0}}}, // +y
		{0, -1, 0, [4][3]int{{0, 0, 0}, {1, 0, 0}, {1, 0, 1}, {0, 0, 1}}}, // -y
		{0, 0, +1, [4][3]int{{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {0, 1, 1}}}, // +z
		{0, 0, -1, [4][3]int{{0, 0, 0}, {0, 1, 0}, {1, 1, 0}, {1, 0, 0}}}, // -z
	}
	g.ForEachSet(func(i, j, k int) {
		for _, f := range faces {
			if g.Get(i+f.di, j+f.dj, k+f.dk) {
				continue // interior face
			}
			var idx [4]int
			for c := 0; c < 4; c++ {
				idx[c] = m.AddVertex(corner(i+f.c[c][0], j+f.c[c][1], k+f.c[c][2]))
			}
			m.AddFace(idx[0], idx[1], idx[2])
			m.AddFace(idx[0], idx[2], idx[3])
		}
	})
	return m.WeldVertices(g.Cell * 1e-6)
}
