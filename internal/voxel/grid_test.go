package voxel

import (
	"testing"

	"threedess/internal/geom"
)

func TestGridBasics(t *testing.T) {
	g := MustNewGrid(4, 5, 6, geom.V(1, 2, 3), 0.5)
	if g.Count() != 0 {
		t.Errorf("new grid count = %d", g.Count())
	}
	g.Set(1, 2, 3, true)
	if !g.Get(1, 2, 3) {
		t.Error("set cell reads unset")
	}
	if g.Count() != 1 {
		t.Errorf("count = %d", g.Count())
	}
	g.Set(1, 2, 3, false)
	if g.Get(1, 2, 3) || g.Count() != 0 {
		t.Error("clear failed")
	}
}

func TestGridOutOfRange(t *testing.T) {
	g := MustNewGrid(2, 2, 2, geom.Vec3{}, 1)
	if g.Get(-1, 0, 0) || g.Get(0, 5, 0) || g.Get(0, 0, 2) {
		t.Error("out-of-range Get should be false")
	}
	g.Set(-1, 0, 0, true)
	g.Set(9, 9, 9, true)
	if g.Count() != 0 {
		t.Error("out-of-range Set should be ignored")
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := NewGrid(0, 1, 1, geom.Vec3{}, 1); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := NewGrid(1, 1, 1, geom.Vec3{}, 0); err == nil {
		t.Error("zero cell size accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewGrid did not panic")
		}
	}()
	MustNewGrid(-1, 1, 1, geom.Vec3{}, 1)
}

func TestGridCenterAndCellOf(t *testing.T) {
	g := MustNewGrid(10, 10, 10, geom.V(1, 1, 1), 0.5)
	c := g.Center(2, 3, 4)
	want := geom.V(1+2.5*0.5, 1+3.5*0.5, 1+4.5*0.5)
	if !c.NearEqual(want, 1e-12) {
		t.Errorf("Center = %v, want %v", c, want)
	}
	i, j, k := g.CellOf(c)
	if i != 2 || j != 3 || k != 4 {
		t.Errorf("CellOf(Center) = %d,%d,%d", i, j, k)
	}
}

func TestGridCloneEqualUnion(t *testing.T) {
	g := MustNewGrid(3, 3, 3, geom.Vec3{}, 1)
	g.Set(0, 0, 0, true)
	g.Set(1, 1, 1, true)
	c := g.Clone()
	if !g.Equal(c) {
		t.Error("clone not equal")
	}
	c.Set(2, 2, 2, true)
	if g.Equal(c) {
		t.Error("modified clone still equal")
	}
	if err := g.Union(c); err != nil {
		t.Fatal(err)
	}
	if !g.Get(2, 2, 2) {
		t.Error("union missed a cell")
	}
	other := MustNewGrid(2, 2, 2, geom.Vec3{}, 1)
	if err := g.Union(other); err == nil {
		t.Error("mismatched union accepted")
	}
	if g.Equal(other) {
		t.Error("grids of different shape reported equal")
	}
}

func TestGridForEachSetAndCenters(t *testing.T) {
	g := MustNewGrid(3, 3, 3, geom.Vec3{}, 1)
	g.Set(0, 1, 2, true)
	g.Set(2, 0, 1, true)
	seen := 0
	g.ForEachSet(func(i, j, k int) {
		if !g.Get(i, j, k) {
			t.Errorf("ForEachSet visited unset cell %d,%d,%d", i, j, k)
		}
		seen++
	})
	if seen != 2 {
		t.Errorf("visited %d cells, want 2", seen)
	}
	if got := len(g.SetCenters()); got != 2 {
		t.Errorf("SetCenters len = %d", got)
	}
	if got := g.Volume(); got != 2 {
		t.Errorf("Volume = %v, want 2 (cell=1)", got)
	}
}

func TestNeighborTables(t *testing.T) {
	if len(Neighbors26) != 26 {
		t.Errorf("Neighbors26 has %d entries", len(Neighbors26))
	}
	seen := map[[3]int]bool{}
	for _, d := range Neighbors26 {
		if d == [3]int{0, 0, 0} {
			t.Error("Neighbors26 contains origin")
		}
		if seen[d] {
			t.Errorf("duplicate offset %v", d)
		}
		seen[d] = true
	}
	for _, d := range Neighbors6 {
		if !seen[d] {
			t.Errorf("6-neighbor %v missing from 26-neighborhood", d)
		}
	}
}
