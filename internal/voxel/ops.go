package voxel

// Morphological and connectivity operations on binary grids.

// Dilate returns a new grid where every cell within the given connectivity
// (6 or 26) of a set cell is set.
func (g *Grid) Dilate(connectivity int) *Grid {
	out := g.Clone()
	neighbors := neighborOffsets(connectivity)
	g.ForEachSet(func(i, j, k int) {
		for _, d := range neighbors {
			out.Set(i+d[0], j+d[1], k+d[2], true)
		}
	})
	return out
}

// Erode returns a new grid keeping only cells whose full neighborhood
// (given connectivity) is set; boundary cells (with out-of-range
// neighbors) are always eroded.
func (g *Grid) Erode(connectivity int) *Grid {
	out, _ := NewGrid(g.Nx, g.Ny, g.Nz, g.Origin, g.Cell)
	neighbors := neighborOffsets(connectivity)
	g.ForEachSet(func(i, j, k int) {
		for _, d := range neighbors {
			if !g.Get(i+d[0], j+d[1], k+d[2]) {
				return
			}
		}
		out.Set(i, j, k, true)
	})
	return out
}

// Boundary returns the set cells that have at least one unset 6-neighbor
// (the border voxels).
func (g *Grid) Boundary() *Grid {
	out, _ := NewGrid(g.Nx, g.Ny, g.Nz, g.Origin, g.Cell)
	g.ForEachSet(func(i, j, k int) {
		for _, d := range Neighbors6 {
			if !g.Get(i+d[0], j+d[1], k+d[2]) {
				out.Set(i, j, k, true)
				return
			}
		}
	})
	return out
}

// Components labels the connected components of the set cells under the
// given connectivity (6 or 26). It returns the number of components and a
// label grid (flattened, -1 for unset cells).
func (g *Grid) Components(connectivity int) (count int, labels []int) {
	neighbors := neighborOffsets(connectivity)
	labels = make([]int, g.Nx*g.Ny*g.Nz)
	for i := range labels {
		labels[i] = -1
	}
	var stack [][3]int
	for k := 0; k < g.Nz; k++ {
		for j := 0; j < g.Ny; j++ {
			for i := 0; i < g.Nx; i++ {
				if !g.Get(i, j, k) || labels[g.index(i, j, k)] != -1 {
					continue
				}
				// Flood-fill a new component.
				stack = append(stack[:0], [3]int{i, j, k})
				labels[g.index(i, j, k)] = count
				for len(stack) > 0 {
					p := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, d := range neighbors {
						x, y, z := p[0]+d[0], p[1]+d[1], p[2]+d[2]
						if g.Get(x, y, z) && labels[g.index(x, y, z)] == -1 {
							labels[g.index(x, y, z)] = count
							stack = append(stack, [3]int{x, y, z})
						}
					}
				}
				count++
			}
		}
	}
	return count, labels
}

// LargestComponent returns a grid containing only the largest connected
// component (given connectivity). An empty grid is returned unchanged.
func (g *Grid) LargestComponent(connectivity int) *Grid {
	count, labels := g.Components(connectivity)
	if count <= 1 {
		return g.Clone()
	}
	sizes := make([]int, count)
	for _, l := range labels {
		if l >= 0 {
			sizes[l]++
		}
	}
	best := 0
	for c, s := range sizes {
		if s > sizes[best] {
			best = c
		}
	}
	out, _ := NewGrid(g.Nx, g.Ny, g.Nz, g.Origin, g.Cell)
	g.ForEachSet(func(i, j, k int) {
		if labels[g.index(i, j, k)] == best {
			out.Set(i, j, k, true)
		}
	})
	return out
}

func neighborOffsets(connectivity int) [][3]int {
	if connectivity == 6 {
		return Neighbors6[:]
	}
	return Neighbors26
}
