package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var fsys OS
	path := filepath.Join(dir, "f")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Rename(path, path+"2"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path + "2")
	if err != nil || string(data) != "hello" {
		t.Fatalf("read back %q, %v", data, err)
	}
	if err := fsys.Remove(path + "2"); err != nil {
		t.Fatal(err)
	}
}

// TestInjectorCountsAndFails runs the same op sequence twice: once unarmed
// to count, then armed at every fault point, asserting exactly the N-th op
// fails with ErrInjected and the rest succeed.
func TestInjectorCountsAndFails(t *testing.T) {
	workload := func(fsys FS, dir string) []error {
		var errs []error
		f, err := fsys.OpenFile(filepath.Join(dir, "j"), os.O_CREATE|os.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		_, werr := f.Write([]byte("0123456789")) // op 1
		errs = append(errs, werr)
		errs = append(errs, f.Sync()) // op 2
		f.Close()
		rerr := fsys.Rename(filepath.Join(dir, "j"), filepath.Join(dir, "k")) // op 3
		errs = append(errs, rerr)
		errs = append(errs, fsys.SyncDir(dir)) // op 4
		target := "k"
		if rerr != nil {
			target = "j" // rename failed: the original file is still there
		}
		errs = append(errs, fsys.Remove(filepath.Join(dir, target))) // op 5
		return errs
	}
	counter := NewInjector(OS{})
	workload(counter, t.TempDir())
	total := counter.Ops()
	if total != 5 {
		t.Fatalf("counted %d ops, want 5", total)
	}
	for n := int64(1); n <= total; n++ {
		inj := NewInjector(OS{})
		inj.FailAt, inj.Mode = n, ModeError
		errs := workload(inj, t.TempDir())
		for i, err := range errs {
			if int64(i+1) == n {
				if !errors.Is(err, ErrInjected) {
					t.Errorf("fail-at %d: op %d err = %v, want ErrInjected", n, i+1, err)
				}
			} else if err != nil {
				t.Errorf("fail-at %d: op %d err = %v, want nil", n, i+1, err)
			}
		}
		if !inj.Fired() {
			t.Errorf("fail-at %d: fault never fired", n)
		}
	}
}

// TestInjectorCrashTearsWriteAndStops checks ModeCrash persists half the
// failing write and refuses every later operation.
func TestInjectorCrashTearsWriteAndStops(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{})
	inj.FailAt, inj.Mode = 2, ModeCrash
	path := filepath.Join(dir, "j")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("aaaa")); err != nil { // op 1: fine
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("bbbbbb")); !errors.Is(err, ErrCrashed) { // op 2: crash
		t.Fatalf("crash write err = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync err = %v", err)
	}
	if _, err := inj.OpenFile(path, os.O_RDWR, 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open err = %v", err)
	}
	if err := inj.Rename(path, path+"2"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename err = %v", err)
	}
	// The torn write persisted exactly half its buffer.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(data), "aaaabbb"; got != want {
		t.Fatalf("file after crash = %q, want %q", got, want)
	}
}

// TestInjectorErrorModeTearsWriteAndContinues checks ModeError leaves the
// injector alive: the armed op fails (with a torn write) and later ops
// succeed.
func TestInjectorErrorModeTearsWriteAndContinues(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{})
	inj.FailAt, inj.Mode = 1, ModeError
	path := filepath.Join(dir, "j")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("xxxx")); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write err = %v", err)
	}
	if _, err := f.Write([]byte("yy")); err != nil {
		t.Fatalf("write after ModeError fault: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after ModeError fault: %v", err)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if got, want := string(data), "xxyy"; got != want {
		t.Fatalf("file = %q, want %q (torn half + later write)", got, want)
	}
}

// TestFailWritesWithRegime checks the persistent disk-full shape: every
// write tears and returns the configured error, syncs and reads keep
// working, and clearing the regime restores writes.
func TestFailWritesWithRegime(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS{})
	path := filepath.Join(dir, "j")
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("good")); err != nil {
		t.Fatalf("write before regime: %v", err)
	}

	noSpace := errors.New("no space left on device")
	inj.FailWritesWith(noSpace)
	if _, err := f.Write([]byte("XXXX")); !errors.Is(err, noSpace) {
		t.Fatalf("write in regime err = %v, want the configured error", err)
	}
	if _, err := f.Write([]byte("YYYY")); !errors.Is(err, noSpace) {
		t.Fatalf("regime must persist across writes, got %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync in regime: %v (disk-full leaves fsync of old data working)", err)
	}

	inj.FailWritesWith(nil)
	if _, err := f.Write([]byte("more")); err != nil {
		t.Fatalf("write after clearing regime: %v", err)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	// Each failing 4-byte write persisted a 2-byte torn prefix.
	if got, want := string(data), "goodXXYYmore"; got != want {
		t.Fatalf("file = %q, want %q", got, want)
	}
}
