// Package faultfs abstracts the filesystem operations of the durability
// path so crash-recovery code can be exercised under injected failures.
// Two implementations exist: OS, a passthrough to the os package, and
// Injector, which wraps another FS and deterministically fails (or
// "crashes": tears the in-flight write and refuses everything afterwards)
// at the N-th injectable operation. Production code always runs on OS;
// the injector exists so tests can enumerate every fault point of a
// workload and prove recovery from each one.
package faultfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// File is the subset of *os.File the durability path uses.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Name() string
}

// FS is the filesystem surface of the durability path. Every mutation the
// journal and its compaction perform goes through one of these methods, so
// an injecting implementation sees (and can fail) each step.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm os.FileMode) error
	// SyncDir fsyncs the directory itself, making preceding creates and
	// renames inside it durable. POSIX does not promise a rename survives
	// a crash until the parent directory is synced.
	SyncDir(dir string) error
}

// OS is the passthrough FS used outside tests.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) Open(name string) (File, error) { return os.Open(name) }

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Op classifies one injectable operation.
type Op uint8

const (
	OpOpen Op = iota
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpSyncDir
)

func (op Op) String() string {
	switch op {
	case OpOpen:
		return "open"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpSyncDir:
		return "syncdir"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Mode selects how an injected fault manifests.
type Mode uint8

const (
	// ModeError makes the N-th operation fail with ErrInjected and leaves
	// the injector running: later operations succeed. A failing write
	// still persists a torn prefix of its buffer, like ENOSPC mid-write.
	ModeError Mode = iota
	// ModeCrash makes the N-th operation tear (writes persist only a
	// prefix; renames, syncs, and removes do nothing) and then marks the
	// injector crashed: every later operation fails with ErrCrashed, as
	// if the process died at that instant. Tests then reopen the
	// directory with a clean FS to simulate the post-crash restart.
	ModeCrash
)

// ErrInjected is returned by the operation an Injector was armed to fail.
var ErrInjected = errors.New("faultfs: injected failure")

// ErrCrashed is returned by every operation after a ModeCrash fault fired.
var ErrCrashed = errors.New("faultfs: filesystem crashed")

// Injector wraps an FS and deterministically fails the N-th injectable
// operation (1-based, counting only write-side ops: write, sync, rename,
// remove, syncdir — opens and reads always pass through). A zero FailAt
// never fires, which makes an unarmed injector a pure op counter: run the
// workload once, read Ops(), then re-run it FailAt=1..Ops() to enumerate
// every fault point.
type Injector struct {
	Inner  FS
	FailAt int64
	Mode   Mode

	mu      sync.Mutex
	ops     int64
	crashed bool
	fired   bool
	// writeErr, when non-nil, makes every file write fail with it (after a
	// torn prefix lands) until cleared — the disk-full regime, as opposed
	// to the one-shot FailAt fault. See FailWritesWith.
	writeErr error
}

// NewInjector wraps inner with an unarmed injector (a pure op counter).
func NewInjector(inner FS) *Injector {
	return &Injector{Inner: inner}
}

// Ops returns how many injectable operations have been observed.
func (in *Injector) Ops() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

// Fired reports whether the armed fault has fired.
func (in *Injector) Fired() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// step counts one injectable operation and reports whether it must fail.
// The returned error is nil (proceed), ErrInjected, or ErrCrashed.
func (in *Injector) step() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.crashed {
		return ErrCrashed
	}
	in.ops++
	if in.FailAt > 0 && in.ops == in.FailAt {
		in.fired = true
		if in.Mode == ModeCrash {
			in.crashed = true
			return ErrCrashed
		}
		return ErrInjected
	}
	return nil
}

// dead reports whether the injector has crashed (used by non-counted ops
// like open and read, which fail after a crash but never trigger one).
func (in *Injector) dead() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed
}

// FailWritesWith puts the injector into a persistent write-failure regime:
// every subsequent file write persists only a torn prefix of its buffer
// and returns err — the disk-full (ENOSPC) shape, where the filesystem
// stays alive, reads and syncs keep working, but no append can land.
// Unlike the one-shot FailAt fault, the regime holds until
// FailWritesWith(nil) clears it (space was freed). Writes in the regime
// still count as injectable ops, so FailAt enumeration stays coherent.
func (in *Injector) FailWritesWith(err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.writeErr = err
}

// writeFailure returns the persistent write error currently armed (nil
// when writes pass through).
func (in *Injector) writeFailure() error {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.writeErr
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if in.dead() {
		return nil, ErrCrashed
	}
	f, err := in.Inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectedFile{File: f, in: in}, nil
}

func (in *Injector) Open(name string) (File, error) {
	if in.dead() {
		return nil, ErrCrashed
	}
	f, err := in.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injectedFile{File: f, in: in}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.step(); err != nil {
		return err
	}
	return in.Inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err := in.step(); err != nil {
		return err
	}
	return in.Inner.Remove(name)
}

func (in *Injector) MkdirAll(dir string, perm os.FileMode) error {
	if in.dead() {
		return ErrCrashed
	}
	return in.Inner.MkdirAll(dir, perm)
}

func (in *Injector) SyncDir(dir string) error {
	if err := in.step(); err != nil {
		return err
	}
	return in.Inner.SyncDir(dir)
}

// injectedFile routes the write-side file ops through the injector.
type injectedFile struct {
	File
	in *Injector
}

// Write persists only the first half of the buffer when its fault fires —
// the torn write a crash or ENOSPC mid-append leaves behind. The same
// torn-prefix semantics apply under a FailWritesWith regime, except the
// failure repeats for every write until the regime is cleared.
func (f *injectedFile) Write(p []byte) (int, error) {
	if err := f.in.step(); err != nil {
		n, _ := f.File.Write(p[:len(p)/2])
		return n, err
	}
	if err := f.in.writeFailure(); err != nil {
		n, _ := f.File.Write(p[:len(p)/2])
		return n, err
	}
	return f.File.Write(p)
}

func (f *injectedFile) Sync() error {
	if err := f.in.step(); err != nil {
		return err
	}
	return f.File.Sync()
}

func (f *injectedFile) Truncate(size int64) error {
	if err := f.in.step(); err != nil {
		return err
	}
	return f.File.Truncate(size)
}

func (f *injectedFile) Read(p []byte) (int, error) {
	if f.in.dead() {
		return 0, ErrCrashed
	}
	return f.File.Read(p)
}

func (f *injectedFile) Close() error {
	// Close is not a fault point (it cannot lose acknowledged data on its
	// own), but a crashed filesystem refuses it like everything else.
	if f.in.dead() {
		f.File.Close()
		return ErrCrashed
	}
	return f.File.Close()
}

// FlipByte XORs mask into the byte of the file at off — the bit-rot
// injection used by integrity-scrub tests. It deliberately bypasses the
// FS abstraction and writes through the os package directly: bit rot
// happens underneath the filesystem API (media decay, firmware bugs),
// not through it, so no injectable operation should observe it.
func FlipByte(path string, off int64, mask byte) error {
	if mask == 0 {
		return fmt.Errorf("faultfs: FlipByte with zero mask flips nothing")
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= mask
	if _, err := f.WriteAt(b[:], off); err != nil {
		return err
	}
	return f.Close()
}
