package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randomPoints(n, dim int, rng *rand.Rand) []Point {
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, dim)
		for d := range p {
			p[d] = rng.Float64() * 100
		}
		pts[i] = p
	}
	return pts
}

// linearKNN is the brute-force reference for k-NN.
func linearKNN(pts []Point, q Point, k int) []Neighbor {
	out := make([]Neighbor, 0, len(pts))
	for i, p := range pts {
		out = append(out, Neighbor{ID: int64(i), Dist: Dist(p, q)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

func buildTree(t *testing.T, pts []Point, dim, capacity int) *Tree {
	t.Helper()
	tr, err := New(dim, capacity)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		if err := tr.InsertPoint(int64(i), p); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 8); err == nil {
		t.Error("zero dimension accepted")
	}
	tr, err := New(3, 2) // below minimum fan-out: raised to 4
	if err != nil {
		t.Fatal(err)
	}
	if tr.maxEntries != 4 {
		t.Errorf("maxEntries = %d, want 4", tr.maxEntries)
	}
}

func TestInsertValidation(t *testing.T) {
	tr, _ := New(3, 8)
	if err := tr.InsertPoint(1, Point{1, 2}); err == nil {
		t.Error("wrong dimension accepted")
	}
	if err := tr.InsertPoint(1, Point{1, 2, math.NaN()}); err == nil {
		t.Error("NaN coordinate accepted")
	}
	if err := tr.InsertPoint(1, Point{1, 2, math.Inf(1)}); err == nil {
		t.Error("Inf coordinate accepted")
	}
}

func TestRectValidation(t *testing.T) {
	if _, err := NewRect(Point{0, 0}, Point{1}); err == nil {
		t.Error("mismatched corners accepted")
	}
	if _, err := NewRect(Point{2, 0}, Point{1, 1}); err == nil {
		t.Error("inverted rect accepted")
	}
	r, err := NewRect(Point{0, 0}, Point{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.Area() != 6 {
		t.Errorf("Area = %v", r.Area())
	}
}

func TestRectOps(t *testing.T) {
	a, _ := NewRect(Point{0, 0}, Point{2, 2})
	b, _ := NewRect(Point{1, 1}, Point{3, 3})
	c, _ := NewRect(Point{5, 5}, Point{6, 6})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("overlapping rects not intersecting")
	}
	if a.Intersects(c) {
		t.Error("distant rects intersecting")
	}
	if !a.Contains(Rect{Point{0.5, 0.5}, Point{1, 1}}) {
		t.Error("containment failed")
	}
	if a.Contains(b) {
		t.Error("partial overlap reported contained")
	}
	ub := rectBox(a)
	boxEnlarge(ub, rectBox(b))
	if u := boxRect(ub); u.Min[0] != 0 || u.Max[1] != 3 {
		t.Errorf("union = %v", u)
	}
}

func TestMinDist(t *testing.T) {
	r, _ := NewRect(Point{0, 0}, Point{2, 2})
	if d := r.MinDist(Point{1, 1}); d != 0 {
		t.Errorf("inside MinDist = %v", d)
	}
	if d := r.MinDist(Point{5, 2}); d != 3 {
		t.Errorf("side MinDist = %v", d)
	}
	if d := r.MinDist(Point{5, 6}); math.Abs(d-5) > 1e-12 {
		t.Errorf("corner MinDist = %v, want 5", d)
	}
}

func TestSearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	pts := randomPoints(500, 3, rng)
	tr := buildTree(t, pts, 3, 8)
	for trial := 0; trial < 50; trial++ {
		lo := Point{rng.Float64() * 80, rng.Float64() * 80, rng.Float64() * 80}
		hi := Point{lo[0] + rng.Float64()*30, lo[1] + rng.Float64()*30, lo[2] + rng.Float64()*30}
		q, _ := NewRect(lo, hi)
		want := map[int64]bool{}
		for i, p := range pts {
			if p[0] >= lo[0] && p[0] <= hi[0] && p[1] >= lo[1] && p[1] <= hi[1] && p[2] >= lo[2] && p[2] <= hi[2] {
				want[int64(i)] = true
			}
		}
		got := map[int64]bool{}
		tr.Search(q, func(id int64, _ Rect) bool {
			got[id] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing id %d", trial, id)
			}
		}
	}
}

func TestSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	pts := randomPoints(200, 2, rng)
	tr := buildTree(t, pts, 2, 8)
	count := 0
	all, _ := NewRect(Point{0, 0}, Point{100, 100})
	tr.Search(all, func(int64, Rect) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestKNNMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, dim := range []int{2, 3, 5} {
		pts := randomPoints(400, dim, rng)
		tr := buildTree(t, pts, dim, 8)
		for trial := 0; trial < 30; trial++ {
			q := randomPoints(1, dim, rng)[0]
			for _, k := range []int{1, 5, 17} {
				want := linearKNN(pts, q, k)
				got := tr.NearestNeighbors(k, q)
				if len(got) != len(want) {
					t.Fatalf("dim %d k %d: got %d results", dim, k, len(got))
				}
				for i := range got {
					if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
						t.Fatalf("dim %d k %d rank %d: got %+v, want %+v", dim, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestKNNOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	pts := randomPoints(300, 4, rng)
	tr := buildTree(t, pts, 4, 8)
	res := tr.NearestNeighbors(50, randomPoints(1, 4, rng)[0])
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("k-NN results not in increasing distance order")
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	tr, _ := New(2, 8)
	if got := tr.NearestNeighbors(3, Point{0, 0}); got != nil {
		t.Errorf("empty tree k-NN = %v", got)
	}
	tr.InsertPoint(7, Point{1, 1})
	if got := tr.NearestNeighbors(0, Point{0, 0}); got != nil {
		t.Errorf("k=0 = %v", got)
	}
	got := tr.NearestNeighbors(10, Point{0, 0})
	if len(got) != 1 || got[0].ID != 7 {
		t.Errorf("k>size = %v", got)
	}
	if got := tr.NearestNeighbors(1, Point{0}); got != nil {
		t.Errorf("wrong-dimension query = %v", got)
	}
}

func TestWithinRadiusMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	pts := randomPoints(400, 3, rng)
	tr := buildTree(t, pts, 3, 8)
	for trial := 0; trial < 30; trial++ {
		q := randomPoints(1, 3, rng)[0]
		radius := rng.Float64() * 40
		want := map[int64]float64{}
		for i, p := range pts {
			if d := Dist(p, q); d <= radius {
				want[int64(i)] = d
			}
		}
		got := tr.WithinRadius(q, radius)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), len(want))
		}
		for i := 1; i < len(got); i++ {
			if got[i].Dist < got[i-1].Dist {
				t.Fatal("radius results not sorted")
			}
		}
		for _, n := range got {
			if _, ok := want[n.ID]; !ok {
				t.Fatalf("unexpected id %d", n.ID)
			}
		}
	}
}

func TestWithinRadiusEdgeCases(t *testing.T) {
	tr, _ := New(2, 8)
	if got := tr.WithinRadius(Point{0, 0}, 5); got != nil {
		t.Errorf("empty tree = %v", got)
	}
	tr.InsertPoint(1, Point{1, 0})
	if got := tr.WithinRadius(Point{0, 0}, -1); got != nil {
		t.Errorf("negative radius = %v", got)
	}
	if got := tr.WithinRadius(Point{0, 0}, 1); len(got) != 1 {
		t.Errorf("boundary point missing: %v", got)
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	pts := randomPoints(300, 3, rng)
	tr := buildTree(t, pts, 3, 8)
	// Delete half the points in random order.
	perm := rng.Perm(len(pts))
	deleted := map[int64]bool{}
	for _, i := range perm[:150] {
		if !tr.DeletePoint(int64(i), pts[i]) {
			t.Fatalf("delete of existing point %d failed", i)
		}
		deleted[int64(i)] = true
	}
	if tr.Len() != 150 {
		t.Errorf("Len = %d, want 150", tr.Len())
	}
	// Deleted points are gone, surviving ones still found.
	all, _ := NewRect(Point{0, 0, 0}, Point{100, 100, 100})
	found := map[int64]bool{}
	tr.Search(all, func(id int64, _ Rect) bool {
		found[id] = true
		return true
	})
	for id := range deleted {
		if found[id] {
			t.Fatalf("deleted id %d still present", id)
		}
	}
	if len(found) != 150 {
		t.Errorf("found %d entries after deletes", len(found))
	}
	// k-NN still correct after heavy deletion.
	var survivors []Point
	var survivorIDs []int64
	for i, p := range pts {
		if !deleted[int64(i)] {
			survivors = append(survivors, p)
			survivorIDs = append(survivorIDs, int64(i))
		}
	}
	q := randomPoints(1, 3, rng)[0]
	got := tr.NearestNeighbors(5, q)
	bestDist := math.Inf(1)
	var bestID int64
	for j, p := range survivors {
		if d := Dist(p, q); d < bestDist {
			bestDist, bestID = d, survivorIDs[j]
		}
	}
	if got[0].ID != bestID {
		t.Errorf("post-delete NN = %d, want %d", got[0].ID, bestID)
	}
}

func TestDeleteMissing(t *testing.T) {
	tr, _ := New(2, 8)
	tr.InsertPoint(1, Point{1, 1})
	if tr.DeletePoint(2, Point{1, 1}) {
		t.Error("deleted wrong id")
	}
	if tr.DeletePoint(1, Point{2, 2}) {
		t.Error("deleted wrong location")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestDeleteAllThenReuse(t *testing.T) {
	tr, _ := New(2, 4)
	pts := randomPoints(100, 2, rand.New(rand.NewSource(66)))
	for i, p := range pts {
		tr.InsertPoint(int64(i), p)
	}
	for i, p := range pts {
		if !tr.DeletePoint(int64(i), p) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tr.Len())
	}
	if tr.Height() != 1 {
		t.Errorf("Height = %d after deleting all", tr.Height())
	}
	// Tree remains usable.
	tr.InsertPoint(999, Point{5, 5})
	got := tr.NearestNeighbors(1, Point{5, 5})
	if len(got) != 1 || got[0].ID != 999 {
		t.Errorf("reuse after empty failed: %v", got)
	}
}

func TestInsertRectAndSearch(t *testing.T) {
	tr, _ := New(2, 8)
	r1, _ := NewRect(Point{0, 0}, Point{2, 2})
	r2, _ := NewRect(Point{10, 10}, Point{12, 12})
	tr.InsertRect(1, r1)
	tr.InsertRect(2, r2)
	q, _ := NewRect(Point{1, 1}, Point{3, 3})
	var ids []int64
	tr.Search(q, func(id int64, _ Rect) bool {
		ids = append(ids, id)
		return true
	})
	if len(ids) != 1 || ids[0] != 1 {
		t.Errorf("rect search = %v", ids)
	}
	if !tr.Delete(1, r1) {
		t.Error("rect delete failed")
	}
}

func TestHeightGrowth(t *testing.T) {
	tr, _ := New(2, 4)
	if tr.Height() != 1 {
		t.Errorf("empty height = %d", tr.Height())
	}
	rng := rand.New(rand.NewSource(67))
	for i, p := range randomPoints(500, 2, rng) {
		tr.InsertPoint(int64(i), p)
	}
	if h := tr.Height(); h < 3 {
		t.Errorf("height after 500 inserts at fan-out 4 = %d, want ≥3", h)
	}
	if tr.Len() != 500 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestNodeAccessesPruning(t *testing.T) {
	// k-NN on an indexed set must touch far fewer nodes than exist.
	rng := rand.New(rand.NewSource(68))
	pts := randomPoints(5000, 3, rng)
	tr := buildTree(t, pts, 3, 16)
	tr.ResetStats()
	tr.NearestNeighbors(10, Point{50, 50, 50})
	accesses := tr.NodeAccesses()
	if accesses == 0 {
		t.Fatal("no node accesses recorded")
	}
	// A full scan would touch every node; pruned search should visit a
	// small fraction. With 5000 points and fan-out 16 there are ≥313 leaf
	// nodes.
	if accesses > 150 {
		t.Errorf("k-NN visited %d nodes — pruning ineffective", accesses)
	}
}
