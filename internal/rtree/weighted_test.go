package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func weightedDist(a, b Point, w []float64) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		sum += wi * d * d
	}
	return math.Sqrt(sum)
}

// bruteWeightedKNN ranks the points by weighted distance with the same
// (dist, id) tie-break the tree uses.
func bruteWeightedKNN(pts map[int64]Point, q Point, w []float64, k int) []Neighbor {
	out := make([]Neighbor, 0, len(pts))
	for id, p := range pts {
		out = append(out, Neighbor{ID: id, Dist: weightedDist(q, p, w)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

func TestNearestNeighborsWeightedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		dim := 2 + trial%4
		tr, err := New(dim, 8)
		if err != nil {
			t.Fatal(err)
		}
		pts := make(map[int64]Point)
		n := 50 + rng.Intn(400)
		for i := 0; i < n; i++ {
			p := make(Point, dim)
			for d := range p {
				// Coarse grid so exact distance ties occur regularly.
				p[d] = float64(rng.Intn(12))
			}
			id := int64(i + 1)
			pts[id] = p
			if err := tr.InsertPoint(id, p); err != nil {
				t.Fatal(err)
			}
		}
		w := make([]float64, dim)
		for d := range w {
			w[d] = rng.Float64() * 3
		}
		if trial%5 == 0 {
			w[rng.Intn(dim)] = 0 // zero weights collapse a dimension
		}
		q := make(Point, dim)
		for d := range q {
			q[d] = rng.Float64() * 12
		}
		k := 1 + rng.Intn(n+5)
		got := tr.NearestNeighborsWeighted(k, q, w)
		want := bruteWeightedKNN(pts, q, w, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d neighbors, want %d", trial, len(got), len(want))
		}
		// Equal-distance entries may pop in either order (a tied entry can
		// surface before the node holding its twin expands), so assert the
		// distance sequence — which pins the exact k-NN set up to ties —
		// and that every reported (id, dist) pair is truthful and unique.
		seen := make(map[int64]bool)
		for i := range got {
			if got[i].Dist != want[i].Dist {
				t.Fatalf("trial %d: neighbor %d dist = %v, want %v", trial, i, got[i].Dist, want[i].Dist)
			}
			if seen[got[i].ID] {
				t.Fatalf("trial %d: duplicate neighbor id %d", trial, got[i].ID)
			}
			seen[got[i].ID] = true
			if td := weightedDist(q, pts[got[i].ID], w); td != got[i].Dist {
				t.Fatalf("trial %d: neighbor %d reports dist %v, true dist %v", trial, i, got[i].Dist, td)
			}
		}
	}
}

func TestWithinRadiusWeightedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dim := 3
	tr, err := New(dim, 8)
	if err != nil {
		t.Fatal(err)
	}
	pts := make(map[int64]Point)
	for i := 0; i < 300; i++ {
		p := make(Point, dim)
		for d := range p {
			p[d] = rng.Float64() * 10
		}
		id := int64(i + 1)
		pts[id] = p
		if err := tr.InsertPoint(id, p); err != nil {
			t.Fatal(err)
		}
	}
	w := []float64{2.5, 0.5, 1}
	q := Point{5, 5, 5}
	for _, radius := range []float64{0, 1, 3, 8, 100} {
		got := tr.WithinRadiusWeighted(q, radius, w)
		var want []Neighbor
		for _, nb := range bruteWeightedKNN(pts, q, w, len(pts)) {
			if nb.Dist <= radius {
				want = append(want, nb)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("radius %g: got %d, want %d", radius, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("radius %g: result %d = %+v, want %+v", radius, i, got[i], want[i])
			}
		}
	}
}

func TestWeightedQueriesRejectBadWeights(t *testing.T) {
	tr, _ := New(3, 8)
	_ = tr.InsertPoint(1, Point{1, 2, 3})
	q := Point{0, 0, 0}
	for _, w := range [][]float64{
		{1, 2},              // wrong dimension
		{1, -1, 1},          // negative
		{1, math.NaN(), 1},  // NaN
		{1, math.Inf(1), 1}, // +Inf
	} {
		if got := tr.NearestNeighborsWeighted(1, q, w); got != nil {
			t.Errorf("kNN with weights %v = %v, want nil", w, got)
		}
		if got := tr.WithinRadiusWeighted(q, 100, w); got != nil {
			t.Errorf("ball with weights %v = %v, want nil", w, got)
		}
	}
	// nil weights fall back to the unweighted metric.
	if got := tr.NearestNeighborsWeighted(1, q, nil); len(got) != 1 {
		t.Errorf("kNN with nil weights = %v", got)
	}
}
