package rtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBulkLoadMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	pts := randomPoints(2000, 4, rng)
	items := make([]BulkItem, len(pts))
	for i, p := range pts {
		items[i] = BulkItem{ID: int64(i), Point: p}
	}
	tr, err := BulkLoad(4, 16, items)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != len(pts) {
		t.Fatalf("Len = %d", tr.Len())
	}
	for trial := 0; trial < 20; trial++ {
		q := randomPoints(1, 4, rng)[0]
		want := linearKNN(pts, q, 10)
		got := tr.NearestNeighbors(10, q)
		for i := range want {
			if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
				t.Fatalf("trial %d rank %d: %+v vs %+v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoad(3, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.NearestNeighbors(5, Point{0, 0, 0}); got != nil {
		t.Errorf("empty bulk tree k-NN = %v", got)
	}
}

func TestBulkLoadSmall(t *testing.T) {
	// Fewer items than one node.
	items := []BulkItem{
		{ID: 1, Point: Point{1, 1}},
		{ID: 2, Point: Point{2, 2}},
	}
	tr, err := BulkLoad(2, 8, items)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 {
		t.Errorf("height = %d, want 1", tr.Height())
	}
	got := tr.NearestNeighbors(1, Point{0, 0})
	if len(got) != 1 || got[0].ID != 1 {
		t.Errorf("NN = %v", got)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	if _, err := BulkLoad(0, 8, nil); err == nil {
		t.Error("zero dimension accepted")
	}
	items := []BulkItem{{ID: 1, Point: Point{1}}}
	if _, err := BulkLoad(2, 8, items); err == nil {
		t.Error("wrong-dimension item accepted")
	}
	items = []BulkItem{{ID: 1, Point: Point{math.NaN(), 0}}}
	if _, err := BulkLoad(2, 8, items); err == nil {
		t.Error("NaN item accepted")
	}
}

func TestBulkLoadBetterPackedThanIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pts := randomPoints(3000, 3, rng)
	items := make([]BulkItem, len(pts))
	for i, p := range pts {
		items[i] = BulkItem{ID: int64(i), Point: p}
	}
	packed, err := BulkLoad(3, 16, items)
	if err != nil {
		t.Fatal(err)
	}
	incremental := buildTree(t, pts, 3, 16)

	q := Point{50, 50, 50}
	packed.ResetStats()
	packed.NearestNeighbors(10, q)
	pAcc := packed.NodeAccesses()
	incremental.ResetStats()
	incremental.NearestNeighbors(10, q)
	iAcc := incremental.NodeAccesses()
	// STR packing should not be dramatically worse; typically it is
	// better. Allow slack — this is a structural sanity check, not a
	// micro-benchmark.
	if pAcc > 3*iAcc+10 {
		t.Errorf("packed tree accesses %d vs incremental %d", pAcc, iAcc)
	}
	if packed.Height() > incremental.Height() {
		t.Errorf("packed height %d > incremental %d", packed.Height(), incremental.Height())
	}
}

// Property-based: for random point sets, 1-NN through the index equals the
// brute-force minimum.
func TestQuickNearestNeighborProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 20 + r.Intn(200)
		pts := randomPoints(n, 3, r)
		tr := buildTree(t, pts, 3, 4+r.Intn(12))
		q := randomPoints(1, 3, r)[0]
		got := tr.NearestNeighbors(1, q)
		want := linearKNN(pts, q, 1)
		return len(got) == 1 && math.Abs(got[0].Dist-want[0].Dist) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}
