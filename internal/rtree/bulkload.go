package rtree

import (
	"fmt"
	"math"
	"sort"
)

// BulkItem is one (id, point) pair for bulk loading.
type BulkItem struct {
	ID    int64
	Point Point
}

// bulkEntry is one build-time entry of the STR packer: a flat box plus
// either a child node (upper levels) or a payload id (leaf level).
type bulkEntry struct {
	box   []float64
	child *node
	id    int64
}

// BulkLoad builds a packed R-tree over the items using Sort-Tile-Recursive
// (STR) packing, which produces near-optimal leaf utilization and low MBR
// overlap — the preferred way to index a static corpus before serving
// queries.
func BulkLoad(dim, maxEntries int, items []BulkItem) (*Tree, error) {
	t, err := New(dim, maxEntries)
	if err != nil {
		return nil, err
	}
	entries := make([]bulkEntry, 0, len(items))
	// One contiguous backing array for every leaf box keeps the build
	// allocation-light and the copies into node storage sequential.
	backing := make([]float64, 2*dim*len(items))
	for n, it := range items {
		if err := t.checkPoint(it.Point); err != nil {
			return nil, fmt.Errorf("rtree: bulk item %d: %w", it.ID, err)
		}
		box := backing[n*2*dim : (n+1)*2*dim]
		copy(box, it.Point)
		copy(box[dim:], it.Point)
		entries = append(entries, bulkEntry{box: box, id: it.ID})
	}
	t.size = len(entries)
	if len(entries) == 0 {
		return t, nil
	}
	level := t.strPack(entries, 0, t.maxEntries, true)
	for len(level) > 1 {
		parents := make([]bulkEntry, len(level))
		for i, n := range level {
			box := make([]float64, 2*dim)
			t.nodeBoxInto(box, n)
			parents[i] = bulkEntry{box: box, child: n}
		}
		level = t.strPack(parents, 0, t.maxEntries, false)
	}
	t.root = level[0]
	return t, nil
}

// packNode copies a run of bulk entries into one flat node.
func (t *Tree) packNode(entries []bulkEntry, leaf bool) *node {
	n := &node{leaf: leaf}
	n.boxes = make([]float64, 0, len(entries)*2*t.dim)
	for _, e := range entries {
		n.boxes = append(n.boxes, e.box...)
		if leaf {
			n.ids = append(n.ids, e.id)
		} else {
			n.children = append(n.children, e.child)
		}
	}
	return n
}

// strPack tiles the entries into nodes of up to capacity entries, sorting
// recursively along each dimension. Sub-ranges are sorted in place; the
// slab boundaries are fixed before recursion, so the ranges stay disjoint.
func (t *Tree) strPack(entries []bulkEntry, axis, capacity int, leaf bool) []*node {
	if len(entries) <= capacity {
		return []*node{t.packNode(entries, leaf)}
	}
	dim := t.dim
	center := func(e bulkEntry, d int) float64 { return (e.box[d] + e.box[dim+d]) / 2 }
	sort.Slice(entries, func(i, j int) bool { return center(entries[i], axis) < center(entries[j], axis) })

	nodesNeeded := int(math.Ceil(float64(len(entries)) / float64(capacity)))
	if axis == dim-1 {
		// Last axis: cut into runs of `capacity`.
		out := make([]*node, 0, nodesNeeded)
		for start := 0; start < len(entries); start += capacity {
			end := start + capacity
			if end > len(entries) {
				end = len(entries)
			}
			out = append(out, t.packNode(entries[start:end], leaf))
		}
		return out
	}
	// Slice into ~√-balanced slabs along this axis and recurse.
	slabs := int(math.Ceil(math.Pow(float64(nodesNeeded), 1/float64(dim-axis))))
	slabSize := int(math.Ceil(float64(len(entries)) / float64(slabs)))
	var out []*node
	for start := 0; start < len(entries); start += slabSize {
		end := start + slabSize
		if end > len(entries) {
			end = len(entries)
		}
		out = append(out, t.strPack(entries[start:end], axis+1, capacity, leaf)...)
	}
	return out
}
