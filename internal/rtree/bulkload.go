package rtree

import (
	"fmt"
	"math"
	"sort"
)

// BulkItem is one (id, point) pair for bulk loading.
type BulkItem struct {
	ID    int64
	Point Point
}

// BulkLoad builds a packed R-tree over the items using Sort-Tile-Recursive
// (STR) packing, which produces near-optimal leaf utilization and low MBR
// overlap — the preferred way to index a static corpus before serving
// queries.
func BulkLoad(dim, maxEntries int, items []BulkItem) (*Tree, error) {
	t, err := New(dim, maxEntries)
	if err != nil {
		return nil, err
	}
	entries := make([]entry, 0, len(items))
	for _, it := range items {
		if err := t.checkPoint(it.Point); err != nil {
			return nil, fmt.Errorf("rtree: bulk item %d: %w", it.ID, err)
		}
		entries = append(entries, entry{rect: PointRect(it.Point), id: it.ID})
	}
	t.size = len(entries)
	if len(entries) == 0 {
		return t, nil
	}
	level := strPack(entries, dim, 0, maxEntries, true)
	for len(level) > 1 {
		parentEntries := make([]entry, len(level))
		for i, n := range level {
			parentEntries[i] = entry{rect: nodeRect(n), child: n}
		}
		level = strPack(parentEntries, dim, 0, maxEntries, false)
	}
	t.root = level[0]
	return t, nil
}

// strPack tiles the entries into nodes of up to capacity entries, sorting
// recursively along each dimension.
func strPack(entries []entry, dim, axis, capacity int, leaf bool) []*node {
	if len(entries) <= capacity {
		return []*node{{leaf: leaf, entries: entries}}
	}
	center := func(e entry, d int) float64 { return (e.rect.Min[d] + e.rect.Max[d]) / 2 }
	sort.Slice(entries, func(i, j int) bool { return center(entries[i], axis) < center(entries[j], axis) })

	nodesNeeded := int(math.Ceil(float64(len(entries)) / float64(capacity)))
	if axis == dim-1 {
		// Last axis: cut into runs of `capacity`.
		out := make([]*node, 0, nodesNeeded)
		for start := 0; start < len(entries); start += capacity {
			end := start + capacity
			if end > len(entries) {
				end = len(entries)
			}
			chunk := make([]entry, end-start)
			copy(chunk, entries[start:end])
			out = append(out, &node{leaf: leaf, entries: chunk})
		}
		return out
	}
	// Slice into ~√-balanced slabs along this axis and recurse.
	slabs := int(math.Ceil(math.Pow(float64(nodesNeeded), 1/float64(dim-axis))))
	slabSize := int(math.Ceil(float64(len(entries)) / float64(slabs)))
	var out []*node
	for start := 0; start < len(entries); start += slabSize {
		end := start + slabSize
		if end > len(entries) {
			end = len(entries)
		}
		chunk := make([]entry, end-start)
		copy(chunk, entries[start:end])
		out = append(out, strPack(chunk, dim, axis+1, capacity, leaf)...)
	}
	return out
}
