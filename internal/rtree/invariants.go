package rtree

import "fmt"

// ForEachEntry calls fn for every stored (leaf) entry. fn returning false
// stops the walk early. Unlike Search it visits everything and does not
// touch the node-access counter — it is an administrative walk, used by
// the shapedb index↔store reconciler to diff index contents against the
// record set, not a query.
func (t *Tree) ForEachEntry(fn func(id int64, r Rect) bool) {
	t.forEachEntry(t.root, fn)
}

func (t *Tree) forEachEntry(n *node, fn func(id int64, r Rect) bool) bool {
	if n.leaf {
		for i := range n.ids {
			if !fn(n.ids[i], boxRect(t.nbox(n, i))) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !t.forEachEntry(c, fn) {
			return false
		}
	}
	return true
}

// CheckInvariants walks the whole tree and verifies the structural
// invariants every query's correctness rests on:
//
//   - every leaf sits at the same depth (the tree is height-balanced);
//   - every internal entry's box is exactly the tight bounding box of its
//     child's entries (MinDist pruning and Contains-guided deletes both
//     assume tightness — a too-small box loses entries, a too-large one
//     only wastes work, and neither should exist);
//   - node entry counts respect Guttman's bounds: at most maxEntries
//     everywhere; at least minEntries in non-root nodes; an internal root
//     has at least 2 entries;
//   - the flat arrays are consistent: a node's boxes array holds exactly
//     2·dim floats per entry, leaves carry ids and no children, internal
//     nodes carry children and no ids; Len() equals the number of leaf
//     entries.
//
// It returns the first violation found (nil when the tree is sound). The
// reconciler runs it before trusting an index's contents, and escalates
// to a full rebuild when it fails.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return fmt.Errorf("rtree: nil root")
	}
	stride := 2 * t.dim
	leafDepth := -1
	count := 0
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		cnt := n.count()
		if cnt > t.maxEntries {
			return fmt.Errorf("rtree: node at depth %d has %d entries, max %d", depth, cnt, t.maxEntries)
		}
		isRoot := n == t.root
		if !isRoot && cnt < t.minEntries {
			return fmt.Errorf("rtree: non-root node at depth %d has %d entries, min %d", depth, cnt, t.minEntries)
		}
		if isRoot && !n.leaf && cnt < 2 {
			return fmt.Errorf("rtree: internal root has %d entries, want >= 2", cnt)
		}
		if len(n.boxes) != cnt*stride {
			return fmt.Errorf("rtree: node at depth %d holds %d box floats for %d entries (stride %d)",
				depth, len(n.boxes), cnt, stride)
		}
		if n.leaf {
			if len(n.children) != 0 {
				return fmt.Errorf("rtree: leaf at depth %d carries %d child nodes", depth, len(n.children))
			}
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("rtree: leaf at depth %d, others at %d", depth, leafDepth)
			}
			count += cnt
			return nil
		}
		if len(n.ids) != 0 {
			return fmt.Errorf("rtree: internal node at depth %d carries %d payload ids", depth, len(n.ids))
		}
		tight := make([]float64, stride)
		for i, c := range n.children {
			if c == nil {
				return fmt.Errorf("rtree: internal entry %d at depth %d has nil child", i, depth)
			}
			if c.count() == 0 {
				return fmt.Errorf("rtree: internal entry %d at depth %d points at an empty node", i, depth)
			}
			t.nodeBoxInto(tight, c)
			if !boxEqual(t.nbox(n, i), tight) {
				return fmt.Errorf("rtree: internal entry %d at depth %d has box %v, tight box %v",
					i, depth, t.nbox(n, i), tight)
			}
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: Len() = %d but tree holds %d leaf entries", t.size, count)
	}
	return nil
}
