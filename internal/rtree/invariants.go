package rtree

import "fmt"

// ForEachEntry calls fn for every stored (leaf) entry. fn returning false
// stops the walk early. Unlike Search it visits everything and does not
// touch the node-access counter — it is an administrative walk, used by
// the shapedb index↔store reconciler to diff index contents against the
// record set, not a query.
func (t *Tree) ForEachEntry(fn func(id int64, r Rect) bool) {
	t.forEachEntry(t.root, fn)
}

func (t *Tree) forEachEntry(n *node, fn func(id int64, r Rect) bool) bool {
	for _, e := range n.entries {
		if n.leaf {
			if !fn(e.id, e.rect) {
				return false
			}
		} else if !t.forEachEntry(e.child, fn) {
			return false
		}
	}
	return true
}

// CheckInvariants walks the whole tree and verifies the structural
// invariants every query's correctness rests on:
//
//   - every leaf sits at the same depth (the tree is height-balanced);
//   - every internal entry's rectangle is exactly the tight bounding box
//     of its child's entries (MinDist pruning and Contains-guided deletes
//     both assume tightness — a too-small box loses entries, a too-large
//     one only wastes work, and neither should exist);
//   - node entry counts respect Guttman's bounds: at most maxEntries
//     everywhere; at least minEntries in non-root nodes; an internal root
//     has at least 2 entries;
//   - internal entries carry children and no payload, leaf entries carry
//     no children; Len() equals the number of leaf entries.
//
// It returns the first violation found (nil when the tree is sound). The
// reconciler runs it before trusting an index's contents, and escalates
// to a full rebuild when it fails.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return fmt.Errorf("rtree: nil root")
	}
	leafDepth := -1
	count := 0
	var walk func(n *node, depth int) error
	walk = func(n *node, depth int) error {
		if len(n.entries) > t.maxEntries {
			return fmt.Errorf("rtree: node at depth %d has %d entries, max %d", depth, len(n.entries), t.maxEntries)
		}
		isRoot := n == t.root
		if !isRoot && len(n.entries) < t.minEntries {
			return fmt.Errorf("rtree: non-root node at depth %d has %d entries, min %d", depth, len(n.entries), t.minEntries)
		}
		if isRoot && !n.leaf && len(n.entries) < 2 {
			return fmt.Errorf("rtree: internal root has %d entries, want >= 2", len(n.entries))
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("rtree: leaf at depth %d, others at %d", depth, leafDepth)
			}
			for _, e := range n.entries {
				if e.child != nil {
					return fmt.Errorf("rtree: leaf entry %d carries a child node", e.id)
				}
				if len(e.rect.Min) != t.dim || len(e.rect.Max) != t.dim {
					return fmt.Errorf("rtree: leaf entry %d has dimension %d, tree dimension %d", e.id, len(e.rect.Min), t.dim)
				}
			}
			count += len(n.entries)
			return nil
		}
		for i, e := range n.entries {
			if e.child == nil {
				return fmt.Errorf("rtree: internal entry %d at depth %d has nil child", i, depth)
			}
			if len(e.child.entries) == 0 {
				return fmt.Errorf("rtree: internal entry %d at depth %d points at an empty node", i, depth)
			}
			tight := nodeRect(e.child)
			if !rectEqual(e.rect, tight) {
				return fmt.Errorf("rtree: internal entry %d at depth %d has box %v/%v, tight box %v/%v",
					i, depth, e.rect.Min, e.rect.Max, tight.Min, tight.Max)
			}
			if err := walk(e.child, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rtree: Len() = %d but tree holds %d leaf entries", t.size, count)
	}
	return nil
}
