package rtree

import (
	"math/rand"
	"testing"
)

// checkSound fails the test if the tree violates any structural invariant
// or if ForEachEntry disagrees with Len about the stored entry set.
func checkSound(t *testing.T, tr *Tree, wantIDs map[int64]Point) {
	t.Helper()
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated: %v", err)
	}
	got := make(map[int64]Point, tr.Len())
	tr.ForEachEntry(func(id int64, r Rect) bool {
		if _, dup := got[id]; dup {
			t.Fatalf("ForEachEntry visited id %d twice", id)
		}
		got[id] = append(Point(nil), r.Min...)
		return true
	})
	if len(got) != tr.Len() {
		t.Fatalf("ForEachEntry saw %d entries, Len() = %d", len(got), tr.Len())
	}
	if wantIDs == nil {
		return
	}
	if len(got) != len(wantIDs) {
		t.Fatalf("tree holds %d entries, want %d", len(got), len(wantIDs))
	}
	for id, p := range wantIDs {
		gp, ok := got[id]
		if !ok {
			t.Fatalf("id %d missing from tree", id)
		}
		for d := range p {
			if gp[d] != p[d] {
				t.Fatalf("id %d stored at %v, want %v", id, gp, p)
			}
		}
	}
}

func TestCheckInvariantsEmptyAndSmall(t *testing.T) {
	tr, err := New(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkSound(t, tr, map[int64]Point{})
	want := map[int64]Point{}
	for i := int64(0); i < 3; i++ {
		p := Point{float64(i), float64(i * 2), float64(i * 3)}
		if err := tr.InsertPoint(i, p); err != nil {
			t.Fatal(err)
		}
		want[i] = p
		checkSound(t, tr, want)
	}
}

// TestCheckInvariantsRandomWorkload drives a random mix of inserts and
// deletes (with enough pressure to force splits, condense-tree orphan
// reinsertion, and root collapses) and checks every structural invariant
// after each batch.
func TestCheckInvariantsRandomWorkload(t *testing.T) {
	for _, capacity := range []int{4, 8, 16} {
		rng := rand.New(rand.NewSource(int64(42 + capacity)))
		tr, err := New(2, capacity)
		if err != nil {
			t.Fatal(err)
		}
		live := map[int64]Point{}
		var ids []int64
		nextID := int64(0)
		for round := 0; round < 60; round++ {
			// Insert a batch.
			for i := 0; i < 25; i++ {
				p := Point{rng.Float64() * 100, rng.Float64() * 100}
				if err := tr.InsertPoint(nextID, p); err != nil {
					t.Fatal(err)
				}
				live[nextID] = p
				ids = append(ids, nextID)
				nextID++
			}
			// Delete a random ~40% of what is live.
			rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
			cut := len(ids) * 2 / 5
			for _, id := range ids[:cut] {
				if !tr.DeletePoint(id, live[id]) {
					t.Fatalf("capacity %d: delete of live id %d failed", capacity, id)
				}
				delete(live, id)
			}
			ids = ids[cut:]
			checkSound(t, tr, live)
		}
		// Drain to empty: condense-tree must keep the invariants through
		// every intermediate shrink and the final root collapse.
		for _, id := range ids {
			if !tr.DeletePoint(id, live[id]) {
				t.Fatalf("capacity %d: drain delete of id %d failed", capacity, id)
			}
			delete(live, id)
			if len(live)%37 == 0 {
				checkSound(t, tr, live)
			}
		}
		checkSound(t, tr, map[int64]Point{})
	}
}

// TestForEachEntryEarlyStop checks the walk honors fn returning false.
func TestForEachEntryEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := buildTree(t, randomPoints(200, 3, rng), 3, 8)
	seen := 0
	tr.ForEachEntry(func(id int64, r Rect) bool {
		seen++
		return seen < 10
	})
	if seen != 10 {
		t.Fatalf("walk visited %d entries after stop at 10", seen)
	}
}

// TestCheckInvariantsDetectsDamage corrupts a tree on purpose and checks
// the walk reports it — a checker that cannot fail is worthless.
func TestCheckInvariantsDetectsDamage(t *testing.T) {
	build := func() *Tree {
		rng := rand.New(rand.NewSource(11))
		return buildTree(t, randomPoints(300, 2, rng), 2, 4)
	}

	t.Run("size-mismatch", func(t *testing.T) {
		tr := build()
		tr.size++
		if err := tr.CheckInvariants(); err == nil {
			t.Fatal("inflated size not detected")
		}
	})

	t.Run("loose-box", func(t *testing.T) {
		tr := build()
		if tr.root.leaf {
			t.Skip("tree did not split")
		}
		tr.root.boxes[tr.dim] += 5 // first entry's max[0]: no longer tight
		if err := tr.CheckInvariants(); err == nil {
			t.Fatal("loose bounding box not detected")
		}
	})

	t.Run("lost-entry", func(t *testing.T) {
		tr := build()
		if tr.root.leaf {
			t.Skip("tree did not split")
		}
		// Drop a leaf entry without updating ancestors: breaks either the
		// tight-box invariant or (if the box happens to stay tight) the
		// size accounting.
		n := tr.root
		for !n.leaf {
			n = n.children[0]
		}
		tr.removeEntry(n, len(n.ids)-1)
		if err := tr.CheckInvariants(); err == nil {
			t.Fatal("dropped leaf entry not detected")
		}
	})
}
