package rtree

import (
	"math"
	"testing"
)

// A non-finite coordinate admitted into the tree would poison every MBR on
// its insertion path (NaN comparisons are always false, so enlargement and
// MinDist computations silently misorder), corrupting results for keys that
// were perfectly valid. These tests pin the reject-at-the-door behaviour.

func TestInsertRejectsNonFinite(t *testing.T) {
	tr, err := New(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		f := float64(i)
		if err := tr.InsertPoint(i, Point{f, f * 2, f * 3}); err != nil {
			t.Fatal(err)
		}
	}
	before := tr.Len()

	bads := []Point{
		{math.NaN(), 0, 0},
		{0, math.NaN(), 0},
		{0, 0, math.NaN()},
		{math.Inf(1), 0, 0},
		{0, math.Inf(-1), 0},
		{1, 2}, // wrong dimension
	}
	for _, p := range bads {
		if err := tr.InsertPoint(100, p); err == nil {
			t.Errorf("InsertPoint(%v) accepted a bad point", p)
		}
		if err := tr.InsertRect(100, Rect{Min: Point{0, 0, 0}, Max: p}); err == nil {
			t.Errorf("InsertRect with max %v accepted a bad rect", p)
		}
	}
	if tr.Len() != before {
		t.Fatalf("Len changed from %d to %d after rejected inserts", before, tr.Len())
	}

	// The tree must still answer queries correctly after the rejections.
	nn := tr.NearestNeighbors(1, Point{0, 0, 0})
	if len(nn) != 1 || nn[0].ID != 0 {
		t.Fatalf("NearestNeighbors after rejects = %v, want id 0", nn)
	}
}

func TestQueriesRejectNonFinitePoints(t *testing.T) {
	tr, err := New(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.InsertPoint(1, Point{1, 1}); err != nil {
		t.Fatal(err)
	}
	bad := Point{math.NaN(), 0}
	if nn := tr.NearestNeighbors(1, bad); nn != nil {
		t.Errorf("NearestNeighbors on a NaN query returned %v, want nil", nn)
	}
	if nn := tr.WithinRadius(bad, 1); nn != nil {
		t.Errorf("WithinRadius on a NaN query returned %v, want nil", nn)
	}
}
