// Package rtree implements a dynamic R-tree (Guttman) over points and
// rectangles in arbitrary dimension, with window search, ball (threshold)
// search, and best-first k-nearest-neighbor search with MBR pruning — the
// multidimensional access method the DATABASE tier of the paper builds on
// top of its record store (§2.3).
//
// Nodes use an RBush-style flat layout (the idiom of tidwall/rtree): one
// contiguous []float64 holds every entry's box (2·dim coordinates per
// entry, min corner then max corner) next to a parallel child-pointer or
// payload-id slice, so scanning a node during search or k-NN is one
// sequential read with no per-entry pointer chasing or allocation.
//
// Best-first k-NN and ball search come in unweighted and weighted forms;
// the weighted forms prune with the weighted MinDist bound, which remains
// a valid lower bound of the weighted Euclidean metric of Equation 4.3
// (every squared per-dimension term is scaled by the same non-negative
// weight in both the bound and the true distance).
//
// The tree also counts node accesses per query so the paper's index
// efficiency claim ("almost optimal for small real databases and efficient
// for large synthetic databases") can be measured.
package rtree

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Point is a position in feature space.
type Point []float64

// Rect is an axis-aligned (hyper-)rectangle: the tight bounding box
// representation used by the paper, stored as its two diagonal corners.
type Rect struct {
	Min, Max Point
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p Point) Rect {
	min := make(Point, len(p))
	max := make(Point, len(p))
	copy(min, p)
	copy(max, p)
	return Rect{Min: min, Max: max}
}

// NewRect validates and returns a rectangle.
func NewRect(min, max Point) (Rect, error) {
	if len(min) != len(max) {
		return Rect{}, fmt.Errorf("rtree: corner dimensions differ: %d vs %d", len(min), len(max))
	}
	for i := range min {
		if min[i] > max[i] {
			return Rect{}, fmt.Errorf("rtree: min[%d]=%g > max[%d]=%g", i, min[i], i, max[i])
		}
	}
	return Rect{Min: min, Max: max}, nil
}

// Area returns the hyper-volume of r.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// Intersects reports whether r and s overlap (touching counts).
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Min {
		if r.Min[i] > s.Max[i] || r.Max[i] < s.Min[i] {
			return false
		}
	}
	return true
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// MinDist returns the minimum Euclidean distance from p to any point of r
// (zero when p is inside) — the k-NN pruning bound of Roussopoulos et al.
func (r Rect) MinDist(p Point) float64 {
	sum := 0.0
	for i := range p {
		var d float64
		switch {
		case p[i] < r.Min[i]:
			d = r.Min[i] - p[i]
		case p[i] > r.Max[i]:
			d = p[i] - r.Max[i]
		}
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// ---------------------------------------------------------------------------
// Flat box helpers. A "box" is one entry's rectangle stored inline in its
// node's boxes array: len(b) == 2*dim, min corner in b[:dim], max corner in
// b[dim:]. The dimension is implied by the slice length.

// rectBox flattens a Rect into box form (allocates).
func rectBox(r Rect) []float64 {
	b := make([]float64, len(r.Min)*2)
	copy(b, r.Min)
	copy(b[len(r.Min):], r.Max)
	return b
}

// boxRect materializes a box back into a Rect (allocates copies, so the
// caller may retain it).
func boxRect(b []float64) Rect {
	d := len(b) / 2
	min := make(Point, d)
	max := make(Point, d)
	copy(min, b[:d])
	copy(max, b[d:])
	return Rect{Min: min, Max: max}
}

func boxArea(b []float64) float64 {
	d := len(b) / 2
	a := 1.0
	for i := 0; i < d; i++ {
		a *= b[d+i] - b[i]
	}
	return a
}

// boxUnionArea returns the area of the bounding box of a and b without
// materializing it.
func boxUnionArea(a, b []float64) float64 {
	d := len(a) / 2
	area := 1.0
	for i := 0; i < d; i++ {
		lo := a[i]
		if b[i] < lo {
			lo = b[i]
		}
		hi := a[d+i]
		if b[d+i] > hi {
			hi = b[d+i]
		}
		area *= hi - lo
	}
	return area
}

// boxEnlargement returns how much a's area grows to cover b.
func boxEnlargement(a, b []float64) float64 {
	return boxUnionArea(a, b) - boxArea(a)
}

// boxEnlarge grows a in place to cover b.
func boxEnlarge(a, b []float64) {
	d := len(a) / 2
	for i := 0; i < d; i++ {
		if b[i] < a[i] {
			a[i] = b[i]
		}
		if b[d+i] > a[d+i] {
			a[d+i] = b[d+i]
		}
	}
}

func boxIntersects(a, b []float64) bool {
	d := len(a) / 2
	for i := 0; i < d; i++ {
		if a[i] > b[d+i] || a[d+i] < b[i] {
			return false
		}
	}
	return true
}

// boxContains reports whether a fully contains b.
func boxContains(a, b []float64) bool {
	d := len(a) / 2
	for i := 0; i < d; i++ {
		if b[i] < a[i] || b[d+i] > a[d+i] {
			return false
		}
	}
	return true
}

func boxEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// boxMinDist is Rect.MinDist over the flat form: the minimum distance from
// p to any point of the box under the (optionally weighted) Euclidean
// metric. With w == nil the metric is unweighted. Since every squared
// per-dimension term is scaled by the same non-negative weight as in the
// true weighted distance, the result lower-bounds the weighted distance
// from p to every point inside the box — the provably-safe pruning bound
// of the weighted k-NN.
func boxMinDist(b []float64, p Point, w []float64) float64 {
	d := len(p)
	sum := 0.0
	for i := 0; i < d; i++ {
		var dd float64
		switch {
		case p[i] < b[i]:
			dd = b[i] - p[i]
		case p[i] > b[d+i]:
			dd = p[i] - b[d+i]
		}
		if w != nil {
			sum += w[i] * dd * dd
		} else {
			sum += dd * dd
		}
	}
	return math.Sqrt(sum)
}

// ---------------------------------------------------------------------------

// node is one R-tree node in flat layout: boxes holds the entries'
// rectangles inline (2·dim floats per entry), parallel to children (for
// internal nodes) or ids (for leaves).
type node struct {
	leaf     bool
	boxes    []float64
	children []*node
	ids      []int64
}

// count returns the number of entries in n.
func (n *node) count() int {
	if n.leaf {
		return len(n.ids)
	}
	return len(n.children)
}

// Tree is a dynamic R-tree. It is not safe for concurrent mutation; wrap
// with a lock for shared use (internal/shapedb does).
type Tree struct {
	dim        int
	maxEntries int
	minEntries int
	root       *node
	size       int

	// accesses counts nodes visited by queries since the last ResetStats.
	// It is atomic so concurrent read-only queries (which the shape
	// database issues under a shared read lock) stay race-free.
	accesses atomic.Int64
}

// DefaultMaxEntries is the default node fan-out.
const DefaultMaxEntries = 16

// New creates an R-tree for the given dimensionality and node capacity.
// maxEntries < 4 is raised to 4; minEntries is maxEntries/2 (Guttman's
// quadratic-split recommendation).
func New(dim, maxEntries int) (*Tree, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("rtree: dimension must be positive, got %d", dim)
	}
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &Tree{
		dim:        dim,
		maxEntries: maxEntries,
		minEntries: maxEntries / 2,
		root:       &node{leaf: true},
	}, nil
}

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// NodeAccesses returns the number of nodes visited by queries since the
// last ResetStats.
func (t *Tree) NodeAccesses() int { return int(t.accesses.Load()) }

// ResetStats zeroes the node-access counter.
func (t *Tree) ResetStats() { t.accesses.Store(0) }

// Height returns the height of the tree (1 for a single leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// nbox returns entry i's box inside n (aliases the node's storage).
func (t *Tree) nbox(n *node, i int) []float64 {
	s := 2 * t.dim
	return n.boxes[i*s : i*s+s]
}

func (t *Tree) checkPoint(p Point) error {
	if len(p) != t.dim {
		return fmt.Errorf("rtree: point dimension %d, tree dimension %d", len(p), t.dim)
	}
	for i, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("rtree: non-finite coordinate %g at dimension %d", v, i)
		}
	}
	return nil
}

func (t *Tree) checkWeights(w []float64) error {
	if w == nil {
		return nil
	}
	if len(w) != t.dim {
		return fmt.Errorf("rtree: %d weights for tree dimension %d", len(w), t.dim)
	}
	for i, v := range w {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("rtree: invalid weight %g at dimension %d", v, i)
		}
	}
	return nil
}

// InsertPoint stores id at position p.
func (t *Tree) InsertPoint(id int64, p Point) error {
	if err := t.checkPoint(p); err != nil {
		return err
	}
	box := make([]float64, 2*t.dim)
	copy(box, p)
	copy(box[t.dim:], p)
	t.insertLeafEntry(box, id)
	t.size++
	return nil
}

// InsertRect stores id with bounding rectangle r.
func (t *Tree) InsertRect(id int64, r Rect) error {
	if err := t.checkPoint(r.Min); err != nil {
		return err
	}
	if err := t.checkPoint(r.Max); err != nil {
		return err
	}
	t.insertLeafEntry(rectBox(r), id)
	t.size++
	return nil
}

// pathStep is one level of a root-to-node traversal: the node, and its
// entry index within its parent (undefined for the root).
type pathStep struct {
	n   *node
	idx int
}

// insertLeafEntry places a leaf entry via Guttman ChooseLeaf and fixes the
// path upward (splits included). It does not touch t.size — callers do,
// which lets condense reinsert orphans without double counting.
func (t *Tree) insertLeafEntry(box []float64, id int64) {
	path := t.chooseLeaf(box)
	leaf := path[len(path)-1].n
	leaf.boxes = append(leaf.boxes, box...)
	leaf.ids = append(leaf.ids, id)
	t.adjustPath(path)
}

// chooseLeaf descends to the leaf needing least enlargement (Guttman CL),
// returning the full root-to-leaf path.
func (t *Tree) chooseLeaf(box []float64) []pathStep {
	path := make([]pathStep, 0, 8)
	n := t.root
	path = append(path, pathStep{n: n})
	for !n.leaf {
		best := 0
		bestEnl := math.Inf(1)
		bestArea := math.Inf(1)
		for i := range n.children {
			nb := t.nbox(n, i)
			enl := boxEnlargement(nb, box)
			area := boxArea(nb)
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		n = n.children[best]
		path = append(path, pathStep{n: n, idx: best})
	}
	return path
}

// adjustPath fixes bounding boxes upward from a modified node and splits
// overflowing nodes.
func (t *Tree) adjustPath(path []pathStep) {
	for pi := len(path) - 1; pi >= 0; pi-- {
		n := path[pi].n
		if n.count() > t.maxEntries {
			a, b := t.splitNode(n)
			if pi == 0 {
				// Root split: grow the tree.
				root := &node{leaf: false}
				t.appendChild(root, a)
				t.appendChild(root, b)
				t.root = root
			} else {
				parent := path[pi-1].n
				t.setChild(parent, path[pi].idx, a)
				t.appendChild(parent, b)
			}
		} else if pi > 0 {
			parent := path[pi-1].n
			t.nodeBoxInto(t.nbox(parent, path[pi].idx), n)
		}
	}
}

// appendChild appends c with its tight box as a new entry of internal
// node n.
func (t *Tree) appendChild(n *node, c *node) {
	s := 2 * t.dim
	n.boxes = append(n.boxes, make([]float64, s)...)
	t.nodeBoxInto(n.boxes[len(n.boxes)-s:], c)
	n.children = append(n.children, c)
}

// setChild replaces entry i of internal node n with child c and its tight
// box.
func (t *Tree) setChild(n *node, i int, c *node) {
	n.children[i] = c
	t.nodeBoxInto(t.nbox(n, i), c)
}

// nodeBoxInto writes the tight bounding box of n's entries into dst
// (len 2·dim). n must have at least one entry.
func (t *Tree) nodeBoxInto(dst []float64, n *node) {
	s := 2 * t.dim
	copy(dst, n.boxes[:s])
	cnt := n.count()
	for i := 1; i < cnt; i++ {
		boxEnlarge(dst, n.boxes[i*s:i*s+s])
	}
}

// nodeRect returns the tight bounding box of n as a Rect (allocates).
func (t *Tree) nodeRect(n *node) Rect {
	box := make([]float64, 2*t.dim)
	t.nodeBoxInto(box, n)
	return boxRect(box)
}

// appendEntryFrom copies entry i of src onto the end of dst (same level,
// same leaf-ness).
func (t *Tree) appendEntryFrom(dst, src *node, i int) {
	dst.boxes = append(dst.boxes, t.nbox(src, i)...)
	if src.leaf {
		dst.ids = append(dst.ids, src.ids[i])
	} else {
		dst.children = append(dst.children, src.children[i])
	}
}

// removeEntry deletes entry i of n, compacting the flat arrays.
func (t *Tree) removeEntry(n *node, i int) {
	s := 2 * t.dim
	copy(n.boxes[i*s:], n.boxes[(i+1)*s:])
	n.boxes = n.boxes[:len(n.boxes)-s]
	if n.leaf {
		n.ids = append(n.ids[:i], n.ids[i+1:]...)
	} else {
		n.children = append(n.children[:i], n.children[i+1:]...)
	}
}

// splitNode performs Guttman's quadratic split, returning two nodes.
func (t *Tree) splitNode(n *node) (*node, *node) {
	cnt := n.count()
	// Pick seeds: the pair wasting the most area.
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < cnt; i++ {
		bi := t.nbox(n, i)
		ai := boxArea(bi)
		for j := i + 1; j < cnt; j++ {
			bj := t.nbox(n, j)
			d := boxUnionArea(bi, bj) - ai - boxArea(bj)
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	a := &node{leaf: n.leaf}
	b := &node{leaf: n.leaf}
	t.appendEntryFrom(a, n, s1)
	t.appendEntryFrom(b, n, s2)
	ra := append([]float64(nil), t.nbox(n, s1)...)
	rb := append([]float64(nil), t.nbox(n, s2)...)

	rest := make([]int, 0, cnt-2)
	for i := 0; i < cnt; i++ {
		if i != s1 && i != s2 {
			rest = append(rest, i)
		}
	}
	for len(rest) > 0 {
		// If one group needs all remaining entries to reach minEntries,
		// assign them all.
		if a.count()+len(rest) == t.minEntries {
			for _, i := range rest {
				t.appendEntryFrom(a, n, i)
				boxEnlarge(ra, t.nbox(n, i))
			}
			break
		}
		if b.count()+len(rest) == t.minEntries {
			for _, i := range rest {
				t.appendEntryFrom(b, n, i)
				boxEnlarge(rb, t.nbox(n, i))
			}
			break
		}
		// PickNext: entry with maximum preference difference.
		bestIdx, bestDiff := 0, -1.0
		for ri, i := range rest {
			eb := t.nbox(n, i)
			diff := math.Abs(boxEnlargement(ra, eb) - boxEnlargement(rb, eb))
			if diff > bestDiff {
				bestIdx, bestDiff = ri, diff
			}
		}
		i := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		eb := t.nbox(n, i)
		d1 := boxEnlargement(ra, eb)
		d2 := boxEnlargement(rb, eb)
		toA := d1 < d2 ||
			(d1 == d2 && boxArea(ra) < boxArea(rb)) ||
			(d1 == d2 && boxArea(ra) == boxArea(rb) && a.count() <= b.count())
		if toA {
			t.appendEntryFrom(a, n, i)
			boxEnlarge(ra, eb)
		} else {
			t.appendEntryFrom(b, n, i)
			boxEnlarge(rb, eb)
		}
	}
	return a, b
}

// Delete removes the entry with the given id whose rectangle matches r
// exactly (use PointRect for point entries). It reports whether an entry
// was removed.
func (t *Tree) Delete(id int64, r Rect) bool {
	if len(r.Min) != t.dim || len(r.Max) != t.dim {
		return false
	}
	box := rectBox(r)
	path := make([]pathStep, 0, 8)
	path = append(path, pathStep{n: t.root})
	if !t.findLeaf(t.root, box, id, &path) {
		return false
	}
	leaf := path[len(path)-1].n
	for i := 0; i < len(leaf.ids); i++ {
		if leaf.ids[i] == id && boxEqual(t.nbox(leaf, i), box) {
			t.removeEntry(leaf, i)
			break
		}
	}
	t.size--
	t.condense(path)
	// Shrink the root when it has a single child.
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if t.root.count() == 0 {
		t.root = &node{leaf: true}
	}
	return true
}

// DeletePoint removes the point entry (id, p).
func (t *Tree) DeletePoint(id int64, p Point) bool {
	return t.Delete(id, PointRect(p))
}

// findLeaf extends path down to the leaf holding (id, box), reporting
// whether it was found.
func (t *Tree) findLeaf(n *node, box []float64, id int64, path *[]pathStep) bool {
	if n.leaf {
		for i := range n.ids {
			if n.ids[i] == id && boxEqual(t.nbox(n, i), box) {
				return true
			}
		}
		return false
	}
	for i, c := range n.children {
		if boxContains(t.nbox(n, i), box) {
			*path = append(*path, pathStep{n: c, idx: i})
			if t.findLeaf(c, box, id, path) {
				return true
			}
			*path = (*path)[:len(*path)-1]
		}
	}
	return false
}

// condense removes underfull nodes along the path and reinserts their
// orphaned entries (Guttman CT).
func (t *Tree) condense(path []pathStep) {
	type orphan struct {
		box []float64
		id  int64
	}
	var orphans []orphan
	for pi := len(path) - 1; pi > 0; pi-- {
		n := path[pi].n
		parent := path[pi-1].n
		idx := path[pi].idx
		if n.count() < t.minEntries {
			// Remove this node from its parent and stash its entries.
			t.collectLeafEntries(n, func(box []float64, id int64) {
				orphans = append(orphans, orphan{box: append([]float64(nil), box...), id: id})
			})
			t.removeEntry(parent, idx)
			// Parent indices of siblings after idx shifted; the path above
			// only references the parent and upward, so this is safe.
		} else if n.count() > 0 {
			t.nodeBoxInto(t.nbox(parent, idx), n)
		}
	}
	for _, o := range orphans {
		t.insertLeafEntry(o.box, o.id)
	}
}

// collectLeafEntries calls fn for every leaf entry under n. The box slice
// aliases node storage; fn must copy if it retains it.
func (t *Tree) collectLeafEntries(n *node, fn func(box []float64, id int64)) {
	if n.leaf {
		for i := range n.ids {
			fn(t.nbox(n, i), n.ids[i])
		}
		return
	}
	for _, c := range n.children {
		t.collectLeafEntries(c, fn)
	}
}

// Search calls fn for every entry whose rectangle intersects query. fn
// returning false stops the search early.
func (t *Tree) Search(query Rect, fn func(id int64, r Rect) bool) {
	t.search(t.root, rectBox(query), fn)
}

func (t *Tree) search(n *node, qb []float64, fn func(id int64, r Rect) bool) bool {
	t.accesses.Add(1)
	cnt := n.count()
	for i := 0; i < cnt; i++ {
		if !boxIntersects(t.nbox(n, i), qb) {
			continue
		}
		if n.leaf {
			if !fn(n.ids[i], boxRect(t.nbox(n, i))) {
				return false
			}
		} else if !t.search(n.children[i], qb, fn) {
			return false
		}
	}
	return true
}

// Neighbor is one k-NN result.
type Neighbor struct {
	ID   int64
	Dist float64
}

// NearestNeighbors returns the k entries nearest to p in increasing
// distance order, using best-first traversal with MinDist pruning.
func (t *Tree) NearestNeighbors(k int, p Point) []Neighbor {
	return t.knn(k, p, nil)
}

// NearestNeighborsWeighted is NearestNeighbors under the weighted
// Euclidean metric of Equation 4.3 (w == nil means uniform weights).
// Weights must be non-negative and finite with one weight per dimension;
// invalid weights return nil. The weighted MinDist bound keeps the
// best-first traversal exact under the weighted metric.
func (t *Tree) NearestNeighborsWeighted(k int, p Point, w []float64) []Neighbor {
	if err := t.checkWeights(w); err != nil {
		return nil
	}
	return t.knn(k, p, w)
}

func (t *Tree) knn(k int, p Point, w []float64) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	if err := t.checkPoint(p); err != nil {
		return nil
	}
	pq := &minHeap{}
	pq.push(heapItem{dist: 0, node: t.root})
	var out []Neighbor
	for pq.len() > 0 {
		it := pq.pop()
		if it.node != nil {
			t.accesses.Add(1)
			n := it.node
			cnt := n.count()
			for i := 0; i < cnt; i++ {
				d := boxMinDist(t.nbox(n, i), p, w)
				if n.leaf {
					pq.push(heapItem{dist: d, id: n.ids[i], isEntry: true})
				} else {
					pq.push(heapItem{dist: d, node: n.children[i]})
				}
			}
			continue
		}
		// An entry popped before any remaining node/entry is final.
		out = append(out, Neighbor{ID: it.id, Dist: it.dist})
		if len(out) == k {
			return out
		}
	}
	return out
}

// WithinRadius returns every entry within Euclidean distance radius of p,
// in increasing distance order. This implements the paper's threshold
// query: similarity ≥ s corresponds to distance ≤ (1−s)·dmax.
func (t *Tree) WithinRadius(p Point, radius float64) []Neighbor {
	return t.ball(p, radius, nil)
}

// WithinRadiusWeighted is WithinRadius under the weighted Euclidean
// metric (w == nil means uniform weights; invalid weights return nil).
func (t *Tree) WithinRadiusWeighted(p Point, radius float64, w []float64) []Neighbor {
	if err := t.checkWeights(w); err != nil {
		return nil
	}
	return t.ball(p, radius, w)
}

func (t *Tree) ball(p Point, radius float64, w []float64) []Neighbor {
	if t.size == 0 || radius < 0 {
		return nil
	}
	if err := t.checkPoint(p); err != nil {
		return nil
	}
	pq := &minHeap{}
	pq.push(heapItem{dist: 0, node: t.root})
	var out []Neighbor
	for pq.len() > 0 {
		it := pq.pop()
		if it.dist > radius {
			break
		}
		if it.node != nil {
			t.accesses.Add(1)
			n := it.node
			cnt := n.count()
			for i := 0; i < cnt; i++ {
				d := boxMinDist(t.nbox(n, i), p, w)
				if d > radius {
					continue
				}
				if n.leaf {
					pq.push(heapItem{dist: d, id: n.ids[i], isEntry: true})
				} else {
					pq.push(heapItem{dist: d, node: n.children[i]})
				}
			}
			continue
		}
		out = append(out, Neighbor{ID: it.id, Dist: it.dist})
	}
	return out
}

// heapItem is either a node (child pointer set) or a result entry.
type heapItem struct {
	dist    float64
	node    *node
	id      int64
	isEntry bool
}

// minHeap is a binary min-heap over heapItem.dist. Entries tie-break
// before nodes so results pop deterministically.
type minHeap struct {
	items []heapItem
}

func (h *minHeap) len() int { return len(h.items) }

func (h *minHeap) less(i, j int) bool {
	if h.items[i].dist != h.items[j].dist {
		return h.items[i].dist < h.items[j].dist
	}
	if h.items[i].isEntry != h.items[j].isEntry {
		return h.items[i].isEntry
	}
	return h.items[i].id < h.items[j].id
}

func (h *minHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *minHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.items) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}
