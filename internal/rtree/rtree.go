// Package rtree implements a dynamic R-tree (Guttman) over points and
// rectangles in arbitrary dimension, with window search, ball (threshold)
// search, and best-first k-nearest-neighbor search with MBR pruning — the
// multidimensional access method the DATABASE tier of the paper builds on
// top of its record store (§2.3).
//
// The tree also counts node accesses per query so the paper's index
// efficiency claim ("almost optimal for small real databases and efficient
// for large synthetic databases") can be measured.
package rtree

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Point is a position in feature space.
type Point []float64

// Rect is an axis-aligned (hyper-)rectangle: the tight bounding box
// representation used by the paper, stored as its two diagonal corners.
type Rect struct {
	Min, Max Point
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p Point) Rect {
	min := make(Point, len(p))
	max := make(Point, len(p))
	copy(min, p)
	copy(max, p)
	return Rect{Min: min, Max: max}
}

// NewRect validates and returns a rectangle.
func NewRect(min, max Point) (Rect, error) {
	if len(min) != len(max) {
		return Rect{}, fmt.Errorf("rtree: corner dimensions differ: %d vs %d", len(min), len(max))
	}
	for i := range min {
		if min[i] > max[i] {
			return Rect{}, fmt.Errorf("rtree: min[%d]=%g > max[%d]=%g", i, min[i], i, max[i])
		}
	}
	return Rect{Min: min, Max: max}, nil
}

func (r Rect) clone() Rect {
	min := make(Point, len(r.Min))
	max := make(Point, len(r.Max))
	copy(min, r.Min)
	copy(max, r.Max)
	return Rect{Min: min, Max: max}
}

// Area returns the hyper-volume of r.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// Intersects reports whether r and s overlap (touching counts).
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Min {
		if r.Min[i] > s.Max[i] || r.Max[i] < s.Min[i] {
			return false
		}
	}
	return true
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// enlarge grows r in place to cover s.
func (r *Rect) enlarge(s Rect) {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] {
			r.Min[i] = s.Min[i]
		}
		if s.Max[i] > r.Max[i] {
			r.Max[i] = s.Max[i]
		}
	}
}

// union returns the bounding rectangle of r and s.
func (r Rect) union(s Rect) Rect {
	u := r.clone()
	u.enlarge(s)
	return u
}

// enlargement returns how much r's area grows to cover s.
func (r Rect) enlargement(s Rect) float64 {
	return r.union(s).Area() - r.Area()
}

// MinDist returns the minimum Euclidean distance from p to any point of r
// (zero when p is inside) — the k-NN pruning bound of Roussopoulos et al.
func (r Rect) MinDist(p Point) float64 {
	sum := 0.0
	for i := range p {
		var d float64
		switch {
		case p[i] < r.Min[i]:
			d = r.Min[i] - p[i]
		case p[i] > r.Max[i]:
			d = p[i] - r.Max[i]
		}
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Dist returns the Euclidean distance between two points.
func Dist(a, b Point) float64 {
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

type entry struct {
	rect  Rect
	child *node // non-nil for internal entries
	id    int64 // leaf payload
}

type node struct {
	leaf    bool
	entries []entry
}

// Tree is a dynamic R-tree. It is not safe for concurrent mutation; wrap
// with a lock for shared use (internal/shapedb does).
type Tree struct {
	dim        int
	maxEntries int
	minEntries int
	root       *node
	size       int

	// accesses counts nodes visited by queries since the last ResetStats.
	// It is atomic so concurrent read-only queries (which the shape
	// database issues under a shared read lock) stay race-free.
	accesses atomic.Int64
}

// DefaultMaxEntries is the default node fan-out.
const DefaultMaxEntries = 16

// New creates an R-tree for the given dimensionality and node capacity.
// maxEntries < 4 is raised to 4; minEntries is maxEntries/2 (Guttman's
// quadratic-split recommendation).
func New(dim, maxEntries int) (*Tree, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("rtree: dimension must be positive, got %d", dim)
	}
	if maxEntries < 4 {
		maxEntries = 4
	}
	return &Tree{
		dim:        dim,
		maxEntries: maxEntries,
		minEntries: maxEntries / 2,
		root:       &node{leaf: true},
	}, nil
}

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// NodeAccesses returns the number of nodes visited by queries since the
// last ResetStats.
func (t *Tree) NodeAccesses() int { return int(t.accesses.Load()) }

// ResetStats zeroes the node-access counter.
func (t *Tree) ResetStats() { t.accesses.Store(0) }

// Height returns the height of the tree (1 for a single leaf).
func (t *Tree) Height() int {
	h := 1
	for n := t.root; !n.leaf; n = n.entries[0].child {
		h++
	}
	return h
}

func (t *Tree) checkPoint(p Point) error {
	if len(p) != t.dim {
		return fmt.Errorf("rtree: point dimension %d, tree dimension %d", len(p), t.dim)
	}
	for i, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("rtree: non-finite coordinate %g at dimension %d", v, i)
		}
	}
	return nil
}

// InsertPoint stores id at position p.
func (t *Tree) InsertPoint(id int64, p Point) error {
	if err := t.checkPoint(p); err != nil {
		return err
	}
	return t.insert(entry{rect: PointRect(p), id: id})
}

// InsertRect stores id with bounding rectangle r.
func (t *Tree) InsertRect(id int64, r Rect) error {
	if err := t.checkPoint(r.Min); err != nil {
		return err
	}
	if err := t.checkPoint(r.Max); err != nil {
		return err
	}
	return t.insert(entry{rect: r.clone(), id: id})
}

func (t *Tree) insert(e entry) error {
	leaf := t.chooseLeaf(t.root, e, nil)
	leaf.node.entries = append(leaf.node.entries, e)
	t.adjustPath(leaf)
	t.size++
	return nil
}

// path element for insert/delete traversals.
type pathElem struct {
	node   *node
	parent *pathElem
	// index of this node's entry within the parent.
	parentIdx int
}

// chooseLeaf descends to the leaf needing least enlargement (Guttman CL).
func (t *Tree) chooseLeaf(n *node, e entry, parent *pathElem) *pathElem {
	return t.chooseLeafFrom(&pathElem{node: n, parent: parent}, e)
}

func (t *Tree) chooseLeafFrom(p *pathElem, e entry) *pathElem {
	n := p.node
	if n.leaf {
		return p
	}
	best := 0
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i := range n.entries {
		enl := n.entries[i].rect.enlargement(e.rect)
		area := n.entries[i].rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	child := &pathElem{node: n.entries[best].child, parent: p, parentIdx: best}
	return t.chooseLeafFrom(child, e)
}

// adjustPath fixes bounding rectangles upward from a modified node and
// splits overflowing nodes.
func (t *Tree) adjustPath(p *pathElem) {
	for p != nil {
		n := p.node
		if len(n.entries) > t.maxEntries {
			a, b := t.splitNode(n)
			if p.parent == nil {
				// Root split: grow the tree.
				t.root = &node{
					leaf: false,
					entries: []entry{
						{rect: nodeRect(a), child: a},
						{rect: nodeRect(b), child: b},
					},
				}
			} else {
				parent := p.parent.node
				parent.entries[p.parentIdx] = entry{rect: nodeRect(a), child: a}
				parent.entries = append(parent.entries, entry{rect: nodeRect(b), child: b})
			}
		} else if p.parent != nil {
			p.parent.node.entries[p.parentIdx].rect = nodeRect(n)
		}
		p = p.parent
	}
}

func nodeRect(n *node) Rect {
	r := n.entries[0].rect.clone()
	for _, e := range n.entries[1:] {
		r.enlarge(e.rect)
	}
	return r
}

// splitNode performs Guttman's quadratic split, returning two nodes.
func (t *Tree) splitNode(n *node) (*node, *node) {
	entries := n.entries
	// Pick seeds: the pair wasting the most area.
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			d := entries[i].rect.union(entries[j].rect).Area() -
				entries[i].rect.Area() - entries[j].rect.Area()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	a := &node{leaf: n.leaf, entries: []entry{entries[s1]}}
	b := &node{leaf: n.leaf, entries: []entry{entries[s2]}}
	ra := entries[s1].rect.clone()
	rb := entries[s2].rect.clone()

	rest := make([]entry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for len(rest) > 0 {
		// If one group needs all remaining entries to reach minEntries,
		// assign them all.
		if len(a.entries)+len(rest) == t.minEntries {
			for _, e := range rest {
				a.entries = append(a.entries, e)
				ra.enlarge(e.rect)
			}
			break
		}
		if len(b.entries)+len(rest) == t.minEntries {
			for _, e := range rest {
				b.entries = append(b.entries, e)
				rb.enlarge(e.rect)
			}
			break
		}
		// PickNext: entry with maximum preference difference.
		bestIdx, bestDiff := 0, -1.0
		for i, e := range rest {
			d1 := ra.enlargement(e.rect)
			d2 := rb.enlargement(e.rect)
			diff := math.Abs(d1 - d2)
			if diff > bestDiff {
				bestIdx, bestDiff = i, diff
			}
		}
		e := rest[bestIdx]
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
		d1 := ra.enlargement(e.rect)
		d2 := rb.enlargement(e.rect)
		toA := d1 < d2 ||
			(d1 == d2 && ra.Area() < rb.Area()) ||
			(d1 == d2 && ra.Area() == rb.Area() && len(a.entries) <= len(b.entries))
		if toA {
			a.entries = append(a.entries, e)
			ra.enlarge(e.rect)
		} else {
			b.entries = append(b.entries, e)
			rb.enlarge(e.rect)
		}
	}
	return a, b
}

// Delete removes the entry with the given id whose rectangle matches r
// exactly (use PointRect for point entries). It reports whether an entry
// was removed.
func (t *Tree) Delete(id int64, r Rect) bool {
	leafPath := t.findLeaf(&pathElem{node: t.root}, id, r)
	if leafPath == nil {
		return false
	}
	n := leafPath.node
	for i := range n.entries {
		if n.entries[i].id == id && rectEqual(n.entries[i].rect, r) {
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
			break
		}
	}
	t.size--
	t.condense(leafPath)
	// Shrink the root when it has a single child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if len(t.root.entries) == 0 {
		t.root = &node{leaf: true}
	}
	return true
}

// DeletePoint removes the point entry (id, p).
func (t *Tree) DeletePoint(id int64, p Point) bool {
	return t.Delete(id, PointRect(p))
}

func rectEqual(a, b Rect) bool {
	for i := range a.Min {
		if a.Min[i] != b.Min[i] || a.Max[i] != b.Max[i] {
			return false
		}
	}
	return true
}

func (t *Tree) findLeaf(p *pathElem, id int64, r Rect) *pathElem {
	n := p.node
	if n.leaf {
		for i := range n.entries {
			if n.entries[i].id == id && rectEqual(n.entries[i].rect, r) {
				return p
			}
		}
		return nil
	}
	for i := range n.entries {
		if n.entries[i].rect.Contains(r) {
			child := &pathElem{node: n.entries[i].child, parent: p, parentIdx: i}
			if found := t.findLeaf(child, id, r); found != nil {
				return found
			}
		}
	}
	return nil
}

// condense removes underfull nodes along the path and reinserts their
// orphaned entries (Guttman CT).
func (t *Tree) condense(p *pathElem) {
	var orphans []entry
	for p.parent != nil {
		n := p.node
		parent := p.parent.node
		if len(n.entries) < t.minEntries {
			// Remove this node from its parent and stash its entries.
			orphans = append(orphans, collectLeafEntries(n)...)
			parent.entries = append(parent.entries[:p.parentIdx], parent.entries[p.parentIdx+1:]...)
			// Parent indices of siblings after parentIdx shifted; the path
			// above only references p.parent and upward, so this is safe.
		} else if len(n.entries) > 0 {
			parent.entries[p.parentIdx].rect = nodeRect(n)
		}
		p = p.parent
	}
	for _, e := range orphans {
		leaf := t.chooseLeaf(t.root, e, nil)
		leaf.node.entries = append(leaf.node.entries, e)
		t.adjustPath(leaf)
	}
}

func collectLeafEntries(n *node) []entry {
	if n.leaf {
		out := make([]entry, len(n.entries))
		copy(out, n.entries)
		return out
	}
	var out []entry
	for _, e := range n.entries {
		out = append(out, collectLeafEntries(e.child)...)
	}
	return out
}

// Search calls fn for every entry whose rectangle intersects query. fn
// returning false stops the search early.
func (t *Tree) Search(query Rect, fn func(id int64, r Rect) bool) {
	t.search(t.root, query, fn)
}

func (t *Tree) search(n *node, query Rect, fn func(id int64, r Rect) bool) bool {
	t.accesses.Add(1)
	for _, e := range n.entries {
		if !e.rect.Intersects(query) {
			continue
		}
		if n.leaf {
			if !fn(e.id, e.rect) {
				return false
			}
		} else if !t.search(e.child, query, fn) {
			return false
		}
	}
	return true
}

// Neighbor is one k-NN result.
type Neighbor struct {
	ID   int64
	Dist float64
}

// NearestNeighbors returns the k entries nearest to p in increasing
// distance order, using best-first traversal with MinDist pruning.
func (t *Tree) NearestNeighbors(k int, p Point) []Neighbor {
	if k <= 0 || t.size == 0 {
		return nil
	}
	if err := t.checkPoint(p); err != nil {
		return nil
	}
	pq := &minHeap{}
	pq.push(heapItem{dist: 0, node: t.root})
	var out []Neighbor
	for pq.len() > 0 {
		it := pq.pop()
		if it.node != nil {
			t.accesses.Add(1)
			for _, e := range it.node.entries {
				d := e.rect.MinDist(p)
				if it.node.leaf {
					pq.push(heapItem{dist: d, id: e.id, isEntry: true})
				} else {
					pq.push(heapItem{dist: d, node: e.child})
				}
			}
			continue
		}
		// An entry popped before any remaining node/entry is final.
		out = append(out, Neighbor{ID: it.id, Dist: it.dist})
		if len(out) == k {
			return out
		}
	}
	return out
}

// WithinRadius returns every entry within Euclidean distance radius of p,
// in increasing distance order. This implements the paper's threshold
// query: similarity ≥ s corresponds to distance ≤ (1−s)·dmax.
func (t *Tree) WithinRadius(p Point, radius float64) []Neighbor {
	if t.size == 0 || radius < 0 {
		return nil
	}
	if err := t.checkPoint(p); err != nil {
		return nil
	}
	pq := &minHeap{}
	pq.push(heapItem{dist: 0, node: t.root})
	var out []Neighbor
	for pq.len() > 0 {
		it := pq.pop()
		if it.dist > radius {
			break
		}
		if it.node != nil {
			t.accesses.Add(1)
			for _, e := range it.node.entries {
				d := e.rect.MinDist(p)
				if d > radius {
					continue
				}
				if it.node.leaf {
					pq.push(heapItem{dist: d, id: e.id, isEntry: true})
				} else {
					pq.push(heapItem{dist: d, node: e.child})
				}
			}
			continue
		}
		out = append(out, Neighbor{ID: it.id, Dist: it.dist})
	}
	return out
}

// heapItem is either a node (child pointer set) or a result entry.
type heapItem struct {
	dist    float64
	node    *node
	id      int64
	isEntry bool
}

// minHeap is a binary min-heap over heapItem.dist. Entries tie-break
// before nodes so results pop deterministically.
type minHeap struct {
	items []heapItem
}

func (h *minHeap) len() int { return len(h.items) }

func (h *minHeap) less(i, j int) bool {
	if h.items[i].dist != h.items[j].dist {
		return h.items[i].dist < h.items[j].dist
	}
	if h.items[i].isEntry != h.items[j].isEntry {
		return h.items[i].isEntry
	}
	return h.items[i].id < h.items[j].id
}

func (h *minHeap) push(it heapItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *minHeap) pop() heapItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.items) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.items) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
	return top
}
