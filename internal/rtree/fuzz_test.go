package rtree

import (
	"math"
	"math/rand"
	"testing"
)

// referenceStore is a brute-force oracle mirroring the tree's contents.
type referenceStore struct {
	points map[int64]Point
}

func (r *referenceStore) knn(q Point, k int) []Neighbor {
	out := make([]Neighbor, 0, len(r.points))
	for id, p := range r.points {
		out = append(out, Neighbor{ID: id, Dist: Dist(p, q)})
	}
	// insertion sort is fine at these sizes
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && (out[j].Dist < out[j-1].Dist ||
			(out[j].Dist == out[j-1].Dist && out[j].ID < out[j-1].ID)); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if k > len(out) {
		k = len(out)
	}
	return out[:k]
}

// TestFuzzInsertDeleteQuery interleaves random inserts, deletes, and
// queries, checking the tree against the oracle at every step.
func TestFuzzInsertDeleteQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(220))
	const dim = 3
	tr, err := New(dim, 6)
	if err != nil {
		t.Fatal(err)
	}
	ref := &referenceStore{points: map[int64]Point{}}
	nextID := int64(1)
	randPoint := func() Point {
		p := make(Point, dim)
		for d := range p {
			p[d] = rng.Float64() * 50
		}
		return p
	}
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(ref.points) == 0: // insert
			p := randPoint()
			if err := tr.InsertPoint(nextID, p); err != nil {
				t.Fatal(err)
			}
			ref.points[nextID] = p
			nextID++
		case op < 8: // delete a random existing id
			var victim int64
			for id := range ref.points {
				victim = id
				break
			}
			if !tr.DeletePoint(victim, ref.points[victim]) {
				t.Fatalf("step %d: delete of %d failed", step, victim)
			}
			delete(ref.points, victim)
		default: // k-NN check
			q := randPoint()
			k := 1 + rng.Intn(8)
			got := tr.NearestNeighbors(k, q)
			want := ref.knn(q, k)
			if len(got) != len(want) {
				t.Fatalf("step %d: got %d results, want %d", step, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
					t.Fatalf("step %d rank %d: dist %v vs %v", step, i, got[i].Dist, want[i].Dist)
				}
			}
		}
		if tr.Len() != len(ref.points) {
			t.Fatalf("step %d: Len %d vs oracle %d", step, tr.Len(), len(ref.points))
		}
	}
	// Structural sanity at the end.
	if err := tr.validate(); err != nil {
		t.Fatal(err)
	}
}

// validate checks R-tree invariants: every child MBR is contained in (and
// tight within) its parent entry's rectangle, and all leaves sit at the
// same depth.
func (t *Tree) validate() error {
	leafDepth := -1
	var walk func(n *node, depth int, bound *Rect) error
	walk = func(n *node, depth int, bound *Rect) error {
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return errDepth(depth, leafDepth)
			}
		}
		for i := 0; i < n.count(); i++ {
			rect := boxRect(t.nbox(n, i))
			if bound != nil && !bound.Contains(rect) {
				return errBounds(rect, *bound)
			}
			if !n.leaf {
				child := n.children[i]
				if err := walk(child, depth+1, &rect); err != nil {
					return err
				}
				if tight := t.nodeRect(child); !boxEqual(rectBox(tight), rectBox(rect)) {
					return errTight(rect, tight)
				}
			}
		}
		return nil
	}
	return walk(t.root, 0, nil)
}

type treeInvariantError string

func (e treeInvariantError) Error() string { return string(e) }

func errDepth(got, want int) error {
	return treeInvariantError("rtree: leaves at different depths")
}

func errBounds(child, parent Rect) error {
	return treeInvariantError("rtree: child rect escapes parent entry")
}

func errTight(stored, tight Rect) error {
	return treeInvariantError("rtree: parent entry rect not tight")
}
