package scrub

import (
	"fmt"
	"testing"

	"threedess/internal/faultfs"
	"threedess/internal/features"
	"threedess/internal/shapedb"
)

// TestTriggeredCompactionCrashMatrix proves the ISSUE's crash-safety
// claim for *policy-triggered* compaction: arm a fault at every
// injectable filesystem operation inside a compaction the policy engine
// itself decided to run, and assert each failure is a logical no-op —
// the in-memory live set is untouched, the maintainer records the error
// instead of crashing, and a clean reopen of the directory recovers
// exactly the pre-compaction live set.
func TestTriggeredCompactionCrashMatrix(t *testing.T) {
	cfg := Config{CompactMinDead: 4}
	// build raises a store past the dead-entries trigger.
	build := func(fsys faultfs.FS, dir string) (*shapedb.DB, map[int64]float64) {
		db, err := shapedb.OpenFS(dir, features.Options{}, fsys)
		if err != nil {
			t.Fatal(err)
		}
		want := make(map[int64]float64)
		var ids []int64
		for i := 0; i < 8; i++ {
			base := float64(i)
			id := insertOne(t, db, "cm", i, base)
			ids = append(ids, id)
			want[id] = base
		}
		for _, id := range ids[:3] {
			if _, err := db.Delete(id); err != nil {
				t.Fatal(err)
			}
			delete(want, id)
		}
		return db, want
	}

	// Pass 1: unarmed injector counts the triggered compaction's ops.
	counter := faultfs.NewInjector(faultfs.OS{})
	db, _ := build(counter, t.TempDir())
	m := New(db, cfg)
	pre := counter.Ops()
	if cr := m.CompactIfNeeded(); cr == nil || cr.Trigger != "dead-entries" || cr.Error != "" {
		t.Fatalf("baseline triggered compaction: %+v", cr)
	}
	db.Close()
	total := counter.Ops() - pre
	if total < 4 {
		t.Fatalf("triggered compaction has only %d fault points", total)
	}

	for _, mode := range []faultfs.Mode{faultfs.ModeError, faultfs.ModeCrash} {
		for n := int64(1); n <= total; n++ {
			tag := fmt.Sprintf("mode=%v fail-at=%d", mode, n)
			dir := t.TempDir()
			inj := faultfs.NewInjector(faultfs.OS{})
			db, want := build(inj, dir)
			m := New(db, cfg)
			inj.FailAt, inj.Mode = inj.Ops()+n, mode

			cr := m.CompactIfNeeded()
			if cr == nil {
				t.Fatalf("%s: policy did not fire", tag)
			}
			if cr.Error == "" {
				t.Fatalf("%s: compaction reported success with armed fault", tag)
			}
			// Logical no-op, part 1: the serving state is untouched.
			if db.Len() != len(want) {
				t.Errorf("%s: in-memory Len = %d, want %d", tag, db.Len(), len(want))
			}
			for id := range want {
				if _, ok := db.Get(id); !ok {
					t.Errorf("%s: live record %d lost in memory", tag, id)
				}
			}
			st := m.Status()
			if st.LastCompact == nil || st.LastCompact.Error == "" {
				t.Errorf("%s: failed compaction not recorded in status", tag)
			}
			db.Close()

			// Logical no-op, part 2: the on-disk state recovers the same
			// live set through a clean filesystem.
			re, err := shapedb.Open(dir, features.Options{})
			if err != nil {
				t.Fatalf("%s: reopen: %v", tag, err)
			}
			if re.Len() != len(want) {
				t.Errorf("%s: reopened Len = %d, want %d", tag, re.Len(), len(want))
			}
			for id, base := range want {
				rec, ok := re.Get(id)
				if !ok {
					t.Errorf("%s: live record %d lost on disk", tag, id)
					continue
				}
				if pm := rec.Features[features.PrincipalMoments]; len(pm) == 0 || pm[0] != base {
					t.Errorf("%s: record %d features corrupted", tag, id)
				}
				// The reopened store's frames verify end to end.
				if f := re.VerifyRecord(id); f.State != shapedb.ScrubClean {
					t.Errorf("%s: record %d scrubs %v after recovery (%s)", tag, id, f.State, f.Detail)
				}
			}
			if rep := re.VerifyIndexes(); !rep.Clean() {
				t.Errorf("%s: index<->store divergence after recovery: %+v", tag, rep)
			}
			re.Close()
		}
	}
}
