package scrub

import (
	"context"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"threedess/internal/faultfs"
	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/shapedb"
)

func fixedSet(opts features.Options, base float64) features.Set {
	set := features.Set{}
	for _, k := range features.CoreKinds {
		v := make(features.Vector, opts.Dim(k))
		for i := range v {
			v[i] = base + float64(i)
		}
		set[k] = v
	}
	return set
}

func insertOne(t *testing.T, db *shapedb.DB, name string, group int, base float64) int64 {
	t.Helper()
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(1+base, 1, 1))
	id, err := db.Insert(name, group, mesh, fixedSet(db.Options(), base))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func openDB(t *testing.T) (*shapedb.DB, string) {
	t.Helper()
	dir := t.TempDir()
	db, err := shapedb.Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, dir
}

// journalPath mirrors shapedb's private layout for frame corruption.
func journalPath(dir string) string { return filepath.Join(dir, "shapes.journal") }

func TestScrubOnceCleanStore(t *testing.T) {
	db, _ := openDB(t)
	for i := 0; i < 20; i++ {
		insertOne(t, db, "c", i, float64(i))
	}
	m := New(db, Config{Workers: 4})
	rep := m.ScrubOnce(context.Background())
	if rep.Checked != 20 || rep.Clean != 20 || len(rep.Findings) != 0 {
		t.Fatalf("clean store scrub: %+v", rep)
	}
	st := m.Status()
	if st.ScrubRuns != 1 || st.LastScrub == nil || st.LastScrub.Checked != 20 {
		t.Fatalf("status after scrub: %+v", st)
	}
}

func TestScrubOnceQuarantinesBitRot(t *testing.T) {
	db, dir := openDB(t)
	var ids []int64
	for i := 0; i < 10; i++ {
		ids = append(ids, insertOne(t, db, "r", i, float64(i)))
	}
	victims := []int64{ids[2], ids[7]}
	for _, id := range victims {
		off, size, ok := db.FrameSpan(id)
		if !ok {
			t.Fatalf("no frame for %d", id)
		}
		if err := faultfs.FlipByte(journalPath(dir), off+8+(size-8)/2, 0x10); err != nil {
			t.Fatal(err)
		}
	}
	m := New(db, Config{Workers: 4, ScrubRate: 100000})
	rep := m.ScrubOnce(context.Background())
	if rep.Checked != 10 || len(rep.Findings) != 2 || rep.Quarantined != 2 {
		t.Fatalf("scrub over rotted store: %+v", rep)
	}
	for _, id := range victims {
		if !db.IsQuarantined(id) {
			t.Fatalf("victim %d not quarantined", id)
		}
		if _, ok := db.Get(id); ok {
			t.Fatalf("victim %d still served", id)
		}
	}
	// A second pass over the healed-in-memory store is clean (victims gone).
	rep = m.ScrubOnce(context.Background())
	if len(rep.Findings) != 0 || rep.Checked != 8 {
		t.Fatalf("second scrub: %+v", rep)
	}
	// Quarantine leaves dead weight; the policy heals it via compaction.
	if cr := m.CompactIfNeeded(); cr == nil || cr.Trigger != "quarantine-heal" || cr.Error != "" {
		t.Fatalf("quarantine-heal compaction: %+v", cr)
	}
	if st := db.Stats(); st.UnhealedQuarantine != 0 {
		t.Fatalf("unhealed quarantine after heal: %+v", st)
	}
}

func TestScrubRateLimiterPacesPass(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	db, _ := openDB(t)
	for i := 0; i < 30; i++ {
		insertOne(t, db, "p", i, float64(i))
	}
	m := New(db, Config{Workers: 4, ScrubRate: 100}) // 30 records at 100/s ≈ 290ms
	start := time.Now()
	rep := m.ScrubOnce(context.Background())
	elapsed := time.Since(start)
	if rep.Checked != 30 || rep.Clean != 30 {
		t.Fatalf("scrub: %+v", rep)
	}
	if elapsed < 200*time.Millisecond {
		t.Fatalf("rate-limited pass finished in %v, want >= ~290ms", elapsed)
	}
}

func TestScrubOnceHonorsCancellation(t *testing.T) {
	db, _ := openDB(t)
	for i := 0; i < 50; i++ {
		insertOne(t, db, "x", i, float64(i))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := New(db, Config{Workers: 2, ScrubRate: 10})
	rep := m.ScrubOnce(ctx)
	if !rep.Interrupted {
		t.Fatalf("cancelled scrub not marked interrupted: %+v", rep)
	}
	if rep.Checked >= 50 {
		t.Fatalf("cancelled scrub checked all %d records", rep.Checked)
	}
}

func TestCompactPolicyTriggers(t *testing.T) {
	db, _ := openDB(t)
	var ids []int64
	for i := 0; i < 20; i++ {
		ids = append(ids, insertOne(t, db, "t", i, float64(i)))
	}
	cfg := Config{CompactRatio: 2.0, CompactMinDead: 1000, CompactMinInterval: time.Hour}
	m := New(db, cfg)
	// Fresh store: amplification 1.0, nothing dead — no trigger.
	if cr := m.CompactIfNeeded(); cr != nil {
		t.Fatalf("policy fired on a fresh store: %+v", cr)
	}
	// Delete over half: amplification crosses 2.0 with dead entries.
	for _, id := range ids[:14] {
		if _, err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.Stats(); st.Amplification() < 2.0 {
		t.Fatalf("workload did not reach the ratio trigger: %+v", st)
	}
	cr := m.CompactIfNeeded()
	if cr == nil || cr.Trigger != "ratio" || cr.Error != "" {
		t.Fatalf("ratio trigger: %+v", cr)
	}
	if st := db.Stats(); st.DeadEntries != 0 || st.LiveRecords != 6 {
		t.Fatalf("stats after ratio compaction: %+v", st)
	}
	// Backoff: another eligible workload inside MinInterval stays put.
	for _, id := range ids[14:19] {
		if _, err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.Stats(); st.Amplification() >= 2.0 {
		if cr := m.CompactIfNeeded(); cr != nil {
			t.Fatalf("policy ignored MinInterval backoff: %+v", cr)
		}
	}
	// Manual trigger bypasses both policy and backoff.
	cr = m.TriggerCompact()
	if cr == nil || cr.Trigger != "manual" || cr.Error != "" {
		t.Fatalf("manual trigger: %+v", cr)
	}
	if st := db.Stats(); st.DeadEntries != 0 {
		t.Fatalf("stats after manual compaction: %+v", st)
	}
	st := m.Status()
	if st.CompactRuns != 2 || st.LastCompact == nil || st.LastCompact.Trigger != "manual" {
		t.Fatalf("status: %+v", st)
	}
}

func TestCompactDeadEntriesTrigger(t *testing.T) {
	db, _ := openDB(t)
	var ids []int64
	for i := 0; i < 12; i++ {
		ids = append(ids, insertOne(t, db, "d", i, float64(i)))
	}
	for _, id := range ids[:4] {
		if _, err := db.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	m := New(db, Config{CompactMinDead: 8}) // 4 deletes + 4 superseded inserts = 8 dead
	cr := m.CompactIfNeeded()
	if cr == nil || cr.Trigger != "dead-entries" || cr.Error != "" {
		t.Fatalf("dead-entries trigger: %+v", cr)
	}
}

func TestInMemoryStoreNeverCompacts(t *testing.T) {
	db, err := shapedb.Open("", features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	insertOne(t, db, "m", 0, 1)
	m := New(db, Config{CompactRatio: 0.1, CompactMinDead: 1})
	if cr := m.CompactIfNeeded(); cr != nil {
		t.Fatalf("policy fired on in-memory store: %+v", cr)
	}
}

func TestMaintainerBackgroundLifecycle(t *testing.T) {
	db, _ := openDB(t)
	for i := 0; i < 10; i++ {
		insertOne(t, db, "bg", i, float64(i))
	}
	m := New(db, Config{
		ScrubInterval:        5 * time.Millisecond,
		ReconcileInterval:    7 * time.Millisecond,
		CompactCheckInterval: 5 * time.Millisecond,
		CompactRatio:         2.0,
		Workers:              2,
	})
	m.Start(context.Background())
	m.Start(context.Background()) // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := m.Status()
		if st.ScrubRuns > 0 && st.ReconcileRuns > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background loops never ran: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	m.Stop()
	m.Stop() // idempotent
	st := m.Status()
	if st.Running {
		t.Fatal("status reports running after Stop")
	}
	after := st.ScrubRuns
	time.Sleep(30 * time.Millisecond)
	if got := m.Status().ScrubRuns; got != after {
		t.Fatalf("scrub loop still running after Stop: %d -> %d", after, got)
	}
}

// TestMaintenanceConcurrentMixedOps extends the DB's mixed-ops race test
// across the maintenance loops: scrubbing, reconciliation, and
// auto-compaction all run at aggressive intervals while inserts, deletes,
// and KNN queries hammer the store. Run under -race this is the
// lock-discipline proof for the whole self-healing layer.
func TestMaintenanceConcurrentMixedOps(t *testing.T) {
	db, _ := openDB(t)
	opts := db.Options()
	var seed []int64
	for i := 0; i < 20; i++ {
		seed = append(seed, insertOne(t, db, "seed", i, float64(i)))
	}
	m := New(db, Config{
		ScrubInterval:        time.Millisecond,
		ScrubRate:            0, // unthrottled: maximize interleaving
		Workers:              4,
		ReconcileInterval:    time.Millisecond,
		CompactCheckInterval: time.Millisecond,
		CompactRatio:         1.5,
		CompactMinDead:       10,
	})
	m.Start(context.Background())

	dur := 600 * time.Millisecond
	if testing.Short() {
		dur = 150 * time.Millisecond
	}
	stop := time.After(dur)
	done := make(chan struct{})
	go func() { <-stop; close(done) }()

	var wg sync.WaitGroup
	var inserted atomic.Int64
	insertedIDs := make(chan int64, 4096)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				mesh := geom.Box(geom.V(0, 0, 0), geom.V(1+rng.Float64(), 1, 1))
				id, err := db.Insert("w", w*1000+i, mesh, fixedSet(opts, rng.Float64()*50))
				if err != nil {
					panic(err)
				}
				inserted.Add(1)
				select {
				case insertedIDs <- id:
				default:
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			case id := <-insertedIDs:
				if _, err := db.Delete(id); err != nil {
					panic(err)
				}
			}
		}
	}()
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				k := features.CoreKinds[rng.Intn(len(features.CoreKinds))]
				q := fixedSet(opts, rng.Float64()*50)[k]
				if _, err := db.KNN(k, q, 5); err != nil {
					panic(err)
				}
				m.Status()
			}
		}(r)
	}
	wg.Wait()
	m.TriggerCompact()
	m.Stop()

	// Quiesced: the store must be fully self-consistent.
	if rep := db.VerifyIndexes(); !rep.Clean() {
		t.Fatalf("index<->store divergence after mixed ops: %+v", rep)
	}
	final := m.ScrubOnce(context.Background())
	if len(final.Findings) != 0 {
		t.Fatalf("scrub findings after mixed ops: %+v", final.Findings)
	}
	for _, id := range seed {
		if _, ok := db.Get(id); !ok {
			t.Fatalf("seed record %d lost", id)
		}
	}
	if inserted.Load() == 0 {
		t.Fatal("no traffic ran")
	}
}
