package scrub

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"threedess/internal/faultfs"
	"threedess/internal/features"
	"threedess/internal/geom"
	"threedess/internal/shapedb"
)

// TestChaosSoakBitRotUnderTraffic is the acceptance test for the
// self-healing layer: mixed ingest/delete/query traffic runs against the
// store while bit-flips are injected into live journal frames underneath
// it. The scrubber must find and quarantine every flipped record, no
// query may ever return a record after it was quarantined, no clean
// record may be falsely quarantined, and the store must end the soak in
// full index↔store agreement.
//
// Automatic compaction is deliberately disabled during the soak: a
// compaction rewrites the journal from the intact in-memory copies,
// which *heals* flips before the scrubber has seen them — correct
// behavior, but it would turn "found every flip" into an untestable
// race. The healing path is exercised at the end, after detection is
// proven.
func TestChaosSoakBitRotUnderTraffic(t *testing.T) {
	db, dir := openDB(t)
	opts := db.Options()

	// Victims: seeded records the traffic never deletes, so every flip
	// stays detectable until the scrubber reaches it.
	nVictims := 40
	dur := 1500 * time.Millisecond
	if testing.Short() {
		nVictims, dur = 12, 400*time.Millisecond
	}
	victims := make([]int64, 0, nVictims)
	for i := 0; i < nVictims; i++ {
		victims = append(victims, insertOne(t, db, "victim", i, float64(i)))
	}
	// Frame spans are stable for the whole soak because compaction is off.
	type span struct{ off, size int64 }
	spans := make(map[int64]span, nVictims)
	for _, id := range victims {
		off, size, ok := db.FrameSpan(id)
		if !ok || size <= 9 {
			t.Fatalf("victim %d has no usable frame (%d,%d,%v)", id, off, size, ok)
		}
		spans[id] = span{off, size}
	}

	m := New(db, Config{
		ScrubInterval: 2 * time.Millisecond,
		ScrubRate:     0, // full speed: every victim re-checked many times
		Workers:       4,
		// Reconciliation runs too — it must coexist with scrubbing and
		// never be confused by quarantine-driven index deletions.
		ReconcileInterval:    5 * time.Millisecond,
		CompactCheckInterval: 0, // see the doc comment
	})
	m.Start(context.Background())

	done := make(chan struct{})
	var wg sync.WaitGroup

	// Flip loop: one victim at a time, always recorded as flipped BEFORE
	// the bytes change, so detection accounting can never miss one.
	var flipMu sync.Mutex
	flipped := make(map[int64]bool, nVictims)
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(4242))
		interval := dur / time.Duration(nVictims+1)
		for _, id := range victims {
			select {
			case <-done:
				return
			case <-time.After(interval):
			}
			sp := spans[id]
			// Flip a random payload byte (offset 8+ skips the header; a
			// header flip is equally detectable but exercises less).
			payloadOff := sp.off + 8 + rng.Int63n(sp.size-8)
			flipMu.Lock()
			flipped[id] = true
			flipMu.Unlock()
			if err := faultfs.FlipByte(journalPath(dir), payloadOff, 1<<uint(rng.Intn(8))); err != nil {
				panic(err)
			}
		}
	}()

	// Ingest workers.
	insertedIDs := make(chan int64, 8192)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				mesh := geom.Box(geom.V(0, 0, 0), geom.V(1+rng.Float64(), 1, 1))
				id, err := db.Insert("traffic", 1000+w, mesh, fixedSet(opts, 100+rng.Float64()*50))
				if err != nil {
					panic(err)
				}
				select {
				case insertedIDs <- id:
				default:
				}
			}
		}(w)
	}
	// Deleter: only ever deletes traffic records, never victims.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			case id := <-insertedIDs:
				if _, err := db.Delete(id); err != nil {
					panic(err)
				}
			}
		}
	}()
	// Query workers: snapshot the quarantine set, query, and assert no
	// result was already quarantined at snapshot time. (A record
	// quarantined *between* snapshot and query is a benign race; one
	// served after its quarantine was visible is the bug this hunts.)
	errs := make(chan string, 16)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				pre := make(map[int64]bool)
				for _, q := range db.Quarantined() {
					pre[q.ID] = true
				}
				k := features.CoreKinds[rng.Intn(len(features.CoreKinds))]
				q := fixedSet(opts, rng.Float64()*150)[k]
				nn, err := db.KNN(k, q, 10)
				if err != nil {
					panic(err)
				}
				for _, n := range nn {
					if pre[n.ID] {
						select {
						case errs <- "query returned quarantined record":
						default:
						}
						return
					}
				}
			}
		}(r)
	}

	time.Sleep(dur + 100*time.Millisecond)
	close(done)
	wg.Wait()
	m.Stop()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Final sweep: whatever the background passes missed gets one last
	// full-speed scrub and reconcile before the accounting.
	m.ScrubOnce(context.Background())
	m.ReconcileOnce()

	flipMu.Lock()
	nFlipped := len(flipped)
	flipMu.Unlock()
	if nFlipped == 0 {
		t.Fatal("soak flipped nothing")
	}
	quarantined := make(map[int64]bool)
	for _, q := range db.Quarantined() {
		quarantined[q.ID] = true
	}
	// 1. Detection is complete: every flip was found and quarantined.
	for id := range flipped {
		if !quarantined[id] {
			f := db.VerifyRecord(id)
			t.Errorf("flipped victim %d not quarantined (verify now says %v: %s)", id, f.State, f.Detail)
		}
		if _, ok := db.Get(id); ok {
			t.Errorf("flipped victim %d still served", id)
		}
	}
	// 2. No false positives: only flipped records were quarantined.
	for id := range quarantined {
		if !flipped[id] {
			t.Errorf("record %d quarantined without a flip", id)
		}
	}
	// 3. Unflipped victims are intact and clean.
	for _, id := range victims {
		if flipped[id] {
			continue
		}
		if f := db.VerifyRecord(id); f.State != shapedb.ScrubClean {
			t.Errorf("unflipped victim %d: %v (%s)", id, f.State, f.Detail)
		}
	}
	// 4. Post-soak the indexes agree with the store exactly.
	if rep := db.VerifyIndexes(); !rep.Clean() {
		t.Errorf("index<->store divergence after soak: %+v", rep)
	}
	// 5. The healing path: compaction rewrites the journal from intact
	// memory, after which every surviving record re-verifies clean and a
	// reopened DB sees the full live set.
	if cr := m.CompactIfNeeded(); cr == nil || cr.Trigger != "quarantine-heal" || cr.Error != "" {
		t.Fatalf("post-soak heal compaction: %+v", cr)
	}
	rep := m.ScrubOnce(context.Background())
	if len(rep.Findings) != 0 {
		t.Fatalf("scrub after heal still finds damage: %+v", rep.Findings)
	}
	liveBefore := db.Len()
	db.Close()
	re, err := shapedb.Open(dir, features.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if rr := re.Recovery(); rr.Degraded() {
		t.Fatalf("healed journal still degraded on reopen: %+v", rr)
	}
	if re.Len() != liveBefore {
		t.Fatalf("reopened Len = %d, want %d", re.Len(), liveBefore)
	}
}
