// Package scrub is the self-healing maintenance layer over a shapedb.DB:
// a background integrity scrubber that re-verifies every record against
// its on-disk journal frame and quarantines what fails, an index↔store
// reconciler that repairs R-tree divergence, and a compaction policy
// engine that rewrites the journal when write amplification, dead
// entries, or unhealed quarantines warrant it. One Maintainer owns all
// three; each also runs on demand (ScrubOnce / ReconcileOnce /
// TriggerCompact) for the admin endpoint.
//
// The division of labor: shapedb knows *how* to verify, quarantine,
// reconcile, and compact; this package decides *when*, at what rate, and
// keeps the reports.
package scrub

import (
	"context"
	"errors"
	"sync"
	"time"

	"threedess/internal/shapedb"
	"threedess/internal/workpool"
)

// Config tunes the three maintenance loops. A zero interval disables the
// corresponding background loop (the on-demand entry points still work).
type Config struct {
	// ScrubInterval is the pause between full scrub passes.
	ScrubInterval time.Duration
	// ScrubRate caps record verifications per second across all scrub
	// workers, so a pass trickles along under production traffic instead
	// of monopolizing the journal file. <= 0 means unthrottled.
	ScrubRate int
	// Workers is the scrub fan-out (resolved via workpool.Resolve).
	Workers int

	// ReconcileInterval is the pause between index↔store reconciliation
	// passes.
	ReconcileInterval time.Duration
	// DivergenceThreshold is the divergent-entry fraction past which a
	// kind's index is rebuilt and swapped instead of patched in place.
	// <= 0 takes shapedb.DefaultRebuildThreshold.
	DivergenceThreshold float64

	// CompactCheckInterval is the pause between compaction-policy
	// evaluations (the check is cheap; actual compaction only runs when
	// a trigger fires).
	CompactCheckInterval time.Duration
	// CompactRatio triggers compaction when JournalBytes/LiveBytes
	// reaches it and there is at least one dead entry to reclaim.
	// <= 0 disables the ratio trigger.
	CompactRatio float64
	// CompactMinDead triggers compaction when the journal carries at
	// least this many dead (deleted or superseded) entries. <= 0
	// disables the count trigger.
	CompactMinDead int
	// CompactMinInterval is the minimum spacing between automatic
	// compactions — backoff so a workload hovering at the trigger does
	// not compact on every check. Quarantine healing ignores it: a
	// rotten frame left mid-journal would truncate everything behind it
	// on the next restart, so it is rewritten away promptly.
	CompactMinInterval time.Duration

	// Logf receives one line per maintenance event (nil = silent).
	Logf func(format string, args ...any)
}

// DefaultConfig is the production tuning used by cmd/3dess.
func DefaultConfig() Config {
	return Config{
		ScrubInterval:        5 * time.Minute,
		ScrubRate:            2000,
		ReconcileInterval:    10 * time.Minute,
		CompactCheckInterval: time.Minute,
		CompactRatio:         2.0,
		CompactMinDead:       4096,
		CompactMinInterval:   5 * time.Minute,
	}
}

// ScrubReport summarizes one full scrub pass.
type ScrubReport struct {
	StartedAt  time.Time `json:"started_at"`
	FinishedAt time.Time `json:"finished_at"`
	// Checked counts records verified; Clean those that passed. Gone
	// counts records deleted between snapshot and verification (not a
	// finding).
	Checked int `json:"checked"`
	Clean   int `json:"clean"`
	Gone    int `json:"gone"`
	// Findings lists every record that failed verification; Quarantined
	// counts how many of them were newly pulled from service.
	Findings    []shapedb.ScrubFinding `json:"findings,omitempty"`
	Quarantined int                    `json:"quarantined"`
	// Interrupted is set when the pass stopped early (shutdown).
	Interrupted bool `json:"interrupted,omitempty"`
}

// CompactReport records one compaction attempt and why it ran.
type CompactReport struct {
	At      time.Time `json:"at"`
	Trigger string    `json:"trigger"` // "ratio", "dead-entries", "quarantine-heal", "readonly-heal", "manual"
	// Before/After are the journal stats around the rewrite.
	Before shapedb.JournalStats `json:"before"`
	After  shapedb.JournalStats `json:"after"`
	// Skipped is set when another compaction was already running.
	Skipped bool   `json:"skipped,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Status is the full maintenance picture served by the admin endpoint.
type Status struct {
	Running       bool                     `json:"running"`
	ScrubRuns     int                      `json:"scrub_runs"`
	ReconcileRuns int                      `json:"reconcile_runs"`
	CompactRuns   int                      `json:"compact_runs"`
	LastScrub     *ScrubReport             `json:"last_scrub,omitempty"`
	LastReconcile *shapedb.ReconcileReport `json:"last_reconcile,omitempty"`
	LastCompact   *CompactReport           `json:"last_compact,omitempty"`
	// Recovery is the journal replay report from startup, kept so the
	// operator can inspect what (if anything) recovery discarded long
	// after the log line scrolled away.
	Recovery    *shapedb.RecoveryReport  `json:"recovery,omitempty"`
	Journal     shapedb.JournalStats     `json:"journal"`
	Quarantined []shapedb.QuarantineInfo `json:"quarantined,omitempty"`
}

// Maintainer runs the maintenance loops over one DB.
type Maintainer struct {
	db  *shapedb.DB
	cfg Config

	mu            sync.Mutex
	running       bool
	scrubRuns     int
	reconcileRuns int
	compactRuns   int
	lastScrub     *ScrubReport
	lastReconcile *shapedb.ReconcileReport
	lastCompact   *CompactReport
	lastCompactAt time.Time

	cancel context.CancelFunc
	done   chan struct{}
}

// New builds a Maintainer; call Start to launch the background loops.
func New(db *shapedb.DB, cfg Config) *Maintainer {
	return &Maintainer{db: db, cfg: cfg}
}

func (m *Maintainer) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Start launches the background loops. Each loop sleeps its interval
// *between* passes (a slow scrub does not pile up behind its ticker).
// Loops with a zero interval are not started.
func (m *Maintainer) Start(ctx context.Context) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running {
		return
	}
	ctx, m.cancel = context.WithCancel(ctx)
	m.done = make(chan struct{})
	m.running = true
	go m.run(ctx)
}

// Stop cancels the loops and waits for in-flight passes to finish.
func (m *Maintainer) Stop() {
	m.mu.Lock()
	if !m.running {
		m.mu.Unlock()
		return
	}
	cancel, done := m.cancel, m.done
	m.mu.Unlock()
	cancel()
	<-done
	m.mu.Lock()
	m.running = false
	m.mu.Unlock()
}

func (m *Maintainer) run(ctx context.Context) {
	defer close(m.done)
	var wg sync.WaitGroup
	loop := func(interval time.Duration, pass func(context.Context)) {
		if interval <= 0 {
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := time.NewTimer(interval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
				pass(ctx)
				t.Reset(interval)
			}
		}()
	}
	loop(m.cfg.ScrubInterval, func(ctx context.Context) { m.ScrubOnce(ctx) })
	loop(m.cfg.ReconcileInterval, func(context.Context) { m.ReconcileOnce() })
	loop(m.cfg.CompactCheckInterval, func(context.Context) { m.CompactIfNeeded() })
	wg.Wait()
}

// rateLimiter spaces permits interval apart across any number of
// goroutines; the arithmetic (next-slot bookkeeping under a mutex) keeps
// the aggregate rate exact without a token-refill goroutine.
type rateLimiter struct {
	mu       sync.Mutex
	interval time.Duration
	next     time.Time
}

func newRateLimiter(perSecond int) *rateLimiter {
	if perSecond <= 0 {
		return nil
	}
	return &rateLimiter{interval: time.Second / time.Duration(perSecond)}
}

func (rl *rateLimiter) wait(ctx context.Context) error {
	if rl == nil {
		return ctx.Err()
	}
	rl.mu.Lock()
	now := time.Now()
	if rl.next.Before(now) {
		rl.next = now
	}
	d := rl.next.Sub(now)
	rl.next = rl.next.Add(rl.interval)
	rl.mu.Unlock()
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// ScrubOnce runs one full integrity pass: every record is re-verified
// against its journal frame (CRC, decode, content comparison) plus the
// in-memory invariants, sharded across Workers goroutines under the
// shared rate cap. Records that fail are quarantined — removed from
// serving — and reported. The returned report is also retained for
// Status.
func (m *Maintainer) ScrubOnce(ctx context.Context) *ScrubReport {
	rep := &ScrubReport{StartedAt: time.Now()}
	ids := m.db.IDs()
	limiter := newRateLimiter(m.cfg.ScrubRate)

	var mu sync.Mutex
	err := workpool.ForEachNCtx(ctx, m.cfg.Workers, len(ids), func(i int) {
		if limiter.wait(ctx) != nil {
			return
		}
		f := m.db.VerifyRecord(ids[i])
		mu.Lock()
		defer mu.Unlock()
		rep.Checked++
		switch f.State {
		case shapedb.ScrubClean:
			rep.Clean++
		case shapedb.ScrubGone:
			// Deleted between snapshot and verification — not damage.
			rep.Gone++
		default:
			rep.Findings = append(rep.Findings, f)
			if m.db.Quarantine(f.ID, f.State, f.Detail) {
				rep.Quarantined++
				m.logf("scrub: quarantined record %d: %s (%s)", f.ID, f.State, f.Detail)
			}
		}
	})
	rep.Interrupted = err != nil
	rep.FinishedAt = time.Now()
	if len(rep.Findings) > 0 || rep.Interrupted {
		m.logf("scrub: pass over %d records: %d clean, %d findings, %d quarantined, interrupted=%v",
			rep.Checked, rep.Clean, len(rep.Findings), rep.Quarantined, rep.Interrupted)
	}

	m.mu.Lock()
	m.scrubRuns++
	m.lastScrub = rep
	m.mu.Unlock()
	return rep
}

// ReconcileOnce runs one index↔store reconciliation pass and retains the
// report for Status.
func (m *Maintainer) ReconcileOnce() *shapedb.ReconcileReport {
	rep := m.db.ReconcileIndexes(m.cfg.DivergenceThreshold)
	if !rep.Clean() {
		m.logf("reconcile: %d divergent entries across %d kinds: %d repaired, %d rebuilds",
			rep.Divergent, len(rep.Kinds), rep.Repaired, rep.Rebuilds)
	}
	m.mu.Lock()
	m.reconcileRuns++
	m.lastReconcile = rep
	m.mu.Unlock()
	return rep
}

// CompactIfNeeded evaluates the compaction policy and, when a trigger
// fires, runs compaction online (readers and writers keep going; only
// the final swap blocks briefly). Returns the report when a compaction
// was attempted, nil when no trigger fired.
func (m *Maintainer) CompactIfNeeded() *CompactReport {
	stats := m.db.Stats()
	if !stats.Durable {
		return nil
	}
	trigger := ""
	switch {
	case stats.ReadOnly:
		// Healing the write fence: a failed append/sync (typically disk
		// full) fenced the DB read-only. Compaction rewrites the journal
		// from the acknowledged in-memory state — usually much smaller
		// than the dead-entry-laden log that filled the disk — and on
		// success lifts the fence, restoring write service without a
		// restart.
		trigger = "readonly-heal"
	case stats.UnhealedQuarantine > 0:
		// Healing: rewrite the journal from the intact in-memory copies
		// so the rotten frame cannot truncate the log on restart.
		trigger = "quarantine-heal"
	case m.cfg.CompactMinDead > 0 && stats.DeadEntries >= m.cfg.CompactMinDead:
		trigger = "dead-entries"
	case m.cfg.CompactRatio > 0 && stats.DeadEntries > 0 && stats.Amplification() >= m.cfg.CompactRatio:
		trigger = "ratio"
	default:
		return nil
	}
	if trigger != "quarantine-heal" && trigger != "readonly-heal" && m.cfg.CompactMinInterval > 0 {
		m.mu.Lock()
		tooSoon := !m.lastCompactAt.IsZero() && time.Since(m.lastCompactAt) < m.cfg.CompactMinInterval
		m.mu.Unlock()
		if tooSoon {
			return nil
		}
	}
	return m.compact(trigger, stats)
}

// TriggerCompact compacts immediately, bypassing the policy — the admin
// endpoint's manual trigger.
func (m *Maintainer) TriggerCompact() *CompactReport {
	return m.compact("manual", m.db.Stats())
}

func (m *Maintainer) compact(trigger string, before shapedb.JournalStats) *CompactReport {
	rep := &CompactReport{At: time.Now(), Trigger: trigger, Before: before}
	err := m.db.Compact()
	rep.After = m.db.Stats()
	switch {
	case errors.Is(err, shapedb.ErrCompactionInProgress):
		rep.Skipped = true
	case err != nil:
		rep.Error = err.Error()
		m.logf("compact(%s): failed: %v", trigger, err)
	default:
		m.logf("compact(%s): journal %d -> %d bytes, %d dead entries reclaimed",
			trigger, before.JournalBytes, rep.After.JournalBytes, before.DeadEntries)
	}
	m.mu.Lock()
	m.compactRuns++
	m.lastCompact = rep
	if err == nil {
		m.lastCompactAt = rep.At
	}
	m.mu.Unlock()
	return rep
}

// Status reports the current maintenance state for the admin endpoint.
func (m *Maintainer) Status() Status {
	m.mu.Lock()
	st := Status{
		Running:       m.running,
		ScrubRuns:     m.scrubRuns,
		ReconcileRuns: m.reconcileRuns,
		CompactRuns:   m.compactRuns,
		LastScrub:     m.lastScrub,
		LastReconcile: m.lastReconcile,
		LastCompact:   m.lastCompact,
	}
	m.mu.Unlock()
	st.Recovery = m.db.Recovery()
	st.Journal = m.db.Stats()
	st.Quarantined = m.db.Quarantined()
	return st
}
