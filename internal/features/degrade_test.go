package features

import (
	"strings"
	"testing"

	"threedess/internal/geom"
)

// degradedExtractor returns an extractor whose skeletal-graph branch
// always fails: VoxelResolution 1 passes the option defaulting (only ≤ 0
// is replaced) but is rejected by the voxelizer, while every
// moment-derived descriptor is unaffected.
func degradedExtractor() *Extractor {
	return NewExtractor(Options{VoxelResolution: 1})
}

func TestExtractAvailableDegradesSkeletalBranch(t *testing.T) {
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(2, 1, 1))
	set, deg, err := degradedExtractor().ExtractAvailable(mesh, CoreKinds)
	if err != nil {
		t.Fatalf("ExtractAvailable: %v", err)
	}
	if len(deg) != 1 || deg[Eigenvalues] == "" {
		t.Fatalf("degradation = %v, want eigenvalues only", deg)
	}
	if _, ok := set[Eigenvalues]; ok {
		t.Error("degraded kind still present in set")
	}
	for _, k := range []Kind{MomentInvariants, GeometricParams, PrincipalMoments} {
		if len(set[k]) == 0 {
			t.Errorf("%v missing from degraded set", k)
		}
	}
	if got := deg.Names(); len(got) != 1 || got[0] != "eigenvalues" {
		t.Errorf("Names() = %v", got)
	}
}

func TestExtractAvailableCleanOnHealthyPipeline(t *testing.T) {
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(2, 1, 1))
	e := NewExtractor(Options{VoxelResolution: 16})
	set, deg, err := e.ExtractAvailable(mesh, CoreKinds)
	if err != nil {
		t.Fatalf("ExtractAvailable: %v", err)
	}
	if len(deg) != 0 {
		t.Fatalf("unexpected degradation: %v", deg)
	}
	if len(set) != len(CoreKinds) {
		t.Fatalf("got %d kinds, want %d", len(set), len(CoreKinds))
	}
}

func TestExtractStrictFailsOnDegradation(t *testing.T) {
	mesh := geom.Box(geom.V(0, 0, 0), geom.V(2, 1, 1))
	_, err := degradedExtractor().Extract(mesh, CoreKinds)
	if err == nil {
		t.Fatal("strict Extract succeeded despite skeletal failure")
	}
	if !strings.Contains(err.Error(), "degraded") {
		t.Errorf("error %q does not mention degradation", err)
	}
	// Kinds that never touch the skeletal branch still extract strictly.
	set, err := degradedExtractor().Extract(mesh, []Kind{MomentInvariants, PrincipalMoments})
	if err != nil {
		t.Fatalf("skeleton-free strict extract: %v", err)
	}
	if len(set) != 2 {
		t.Fatalf("got %d kinds", len(set))
	}
}

func TestExtractAvailableWholeShapeFailuresStayErrors(t *testing.T) {
	// An open (single-triangle) mesh has zero volume: no descriptor is
	// meaningful, so this must remain a hard error, not a degradation.
	open := geom.NewMesh(3, 1)
	open.AddVertex(geom.V(0, 0, 0))
	open.AddVertex(geom.V(1, 0, 0))
	open.AddVertex(geom.V(0, 1, 0))
	open.AddFace(0, 1, 2)
	if _, _, err := NewExtractor(Options{}).ExtractAvailable(open, CoreKinds); err == nil {
		t.Fatal("open mesh extracted without error")
	}
}

func TestDegradationHelpers(t *testing.T) {
	var empty Degradation
	if empty.Err() != nil || len(empty.Names()) != 0 {
		t.Error("empty degradation misbehaves")
	}
	d := Degradation{Eigenvalues: "boom", MomentInvariants: "zap"}
	kinds := d.Kinds()
	if len(kinds) != 2 || kinds[0] != MomentInvariants || kinds[1] != Eigenvalues {
		t.Errorf("Kinds() = %v", kinds)
	}
	if err := d.Err(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("Err() = %v", err)
	}
}
