// Package features extracts the paper's shape feature vectors (§3.5) from
// triangle meshes: moment invariants, geometric parameters, principal
// moments, and eigenvalues of the skeletal-graph adjacency matrix — plus
// two extension descriptors (higher-order moment invariants from the
// architecture diagram, and the D2 shape distribution from related work).
//
// The Extractor orchestrates the §3 pipeline: normalization →
// voxelization → skeletonization → skeletal graph construction → feature
// collection.
package features

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"threedess/internal/geom"
	"threedess/internal/moments"
	"threedess/internal/skeleton"
	"threedess/internal/skelgraph"
	"threedess/internal/voxel"
)

// Kind identifies a feature vector type.
type Kind int

const (
	// MomentInvariants is F1–F3 of §3.5.1: rigid-motion and scale
	// invariant functions of the second-order central moments.
	MomentInvariants Kind = iota
	// GeometricParams is §3.5.2: two bounding-box aspect ratios, the
	// surface/volume compactness, the normalization scale factor, and the
	// overall volume (the latter two in log space; see geometricParams).
	GeometricParams
	// PrincipalMoments is §3.5.3: the eigenvalues of the second-order
	// moment matrix of the normalized model, in descending order.
	PrincipalMoments
	// Eigenvalues is §3.5.4: the spectrum of the typed adjacency matrix of
	// the skeletal graph, zero-padded to a fixed dimension.
	Eigenvalues
	// HigherOrder is the extension from the architecture diagram
	// (Figure 1, "Higher order invariants"): rotation/scale invariants of
	// the 3rd- and 4th-order central moments.
	HigherOrder
	// ShapeDistribution is the D2 extension (Osada et al., discussed in
	// the paper's related work): a histogram of pairwise surface-point
	// distances of the normalized model.
	ShapeDistribution

	numKinds
)

// CoreKinds are the four feature vectors evaluated in the paper.
var CoreKinds = []Kind{MomentInvariants, GeometricParams, PrincipalMoments, Eigenvalues}

// AllKinds lists every supported descriptor including extensions.
var AllKinds = []Kind{MomentInvariants, GeometricParams, PrincipalMoments, Eigenvalues, HigherOrder, ShapeDistribution}

// String implements fmt.Stringer with stable names used in serialization
// and on the wire.
func (k Kind) String() string {
	switch k {
	case MomentInvariants:
		return "moment-invariants"
	case GeometricParams:
		return "geometric-params"
	case PrincipalMoments:
		return "principal-moments"
	case Eigenvalues:
		return "eigenvalues"
	case HigherOrder:
		return "higher-order"
	case ShapeDistribution:
		return "shape-distribution"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind is the inverse of String.
func ParseKind(s string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("features: unknown feature kind %q", s)
}

// Valid reports whether k names a supported descriptor.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// Vector is one extracted feature vector.
type Vector []float64

// Clone returns a copy of v.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Set maps feature kinds to extracted vectors.
type Set map[Kind]Vector

// Clone returns a deep copy of s.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	for k, v := range s {
		out[k] = v.Clone()
	}
	return out
}

// Options configure the extraction pipeline.
type Options struct {
	// VoxelResolution is the grid resolution along the longest bounding
	// box side (default 32), used by the skeleton pipeline.
	VoxelResolution int
	// EigenDim is the fixed dimension of the eigenvalue signature
	// (default 8).
	EigenDim int
	// TargetVolume is the normalization constant C of Equation 3.3
	// (default 1).
	TargetVolume float64
	// D2Samples and D2Bins control the shape-distribution extension
	// (defaults 1024 pairs, 16 bins).
	D2Samples, D2Bins int
	// Seed makes the sampled D2 descriptor deterministic (default 1).
	Seed int64
	// Workers bounds the worker pool used by batch operations that share
	// this configuration (bulk ingest, corpus building, sharded weighted
	// scans). ≤ 0 means one worker per logical CPU. The worker count
	// never affects extracted values or assigned IDs — only throughput.
	Workers int
}

// DefaultOptions returns the pipeline configuration used across the
// system (and by the experiments).
func DefaultOptions() Options {
	return Options{
		VoxelResolution: 32,
		EigenDim:        8,
		TargetVolume:    moments.DefaultTargetVolume,
		D2Samples:       1024,
		D2Bins:          16,
		Seed:            1,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.VoxelResolution <= 0 {
		o.VoxelResolution = d.VoxelResolution
	}
	if o.EigenDim <= 0 {
		o.EigenDim = d.EigenDim
	}
	if o.TargetVolume <= 0 {
		o.TargetVolume = d.TargetVolume
	}
	if o.D2Samples <= 0 {
		o.D2Samples = d.D2Samples
	}
	if o.D2Bins <= 0 {
		o.D2Bins = d.D2Bins
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Dim returns the dimensionality of the feature vector kind under the
// given options.
func (o Options) Dim(k Kind) int {
	o = o.withDefaults()
	switch k {
	case MomentInvariants:
		return 3
	case GeometricParams:
		return 5
	case PrincipalMoments:
		return 3
	case Eigenvalues:
		return o.EigenDim
	case HigherOrder:
		return 3
	case ShapeDistribution:
		return o.D2Bins
	}
	return 0
}

// Extractor runs the feature-extraction pipeline of §3.
type Extractor struct {
	opts Options
}

// NewExtractor returns an extractor; zero option fields take defaults.
func NewExtractor(opts Options) *Extractor {
	return &Extractor{opts: opts.withDefaults()}
}

// Options returns the resolved options.
func (e *Extractor) Options() Options { return e.opts }

// Degradation maps each feature kind whose extraction was skipped to the
// reason. A nil/empty map means every requested descriptor was produced.
// Only branch-local failures degrade (today: the skeletal-graph branch
// behind Eigenvalues); defects that invalidate every descriptor — an open
// mesh, a non-positive volume — remain hard errors.
type Degradation map[Kind]string

// Kinds returns the degraded kinds in ascending order.
func (d Degradation) Kinds() []Kind {
	out := make([]Kind, 0, len(d))
	for k := range d {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Names returns the degraded kinds' stable string names in ascending kind
// order — the representation stored with a record and sent on the wire.
func (d Degradation) Names() []string {
	kinds := d.Kinds()
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out
}

// Err folds the degradation into a single error (nil when empty), for
// callers that need the historical all-or-nothing Extract contract.
func (d Degradation) Err() error {
	if len(d) == 0 {
		return nil
	}
	parts := make([]string, 0, len(d))
	for _, k := range d.Kinds() {
		parts = append(parts, fmt.Sprintf("%v: %s", k, d[k]))
	}
	return fmt.Errorf("features: degraded extraction: %s", strings.Join(parts, "; "))
}

// Extract computes the requested feature vectors of the mesh. The input
// mesh is not modified (the pipeline normalizes a private copy). The mesh
// must be closed and outward-oriented. Any branch failure fails the whole
// extraction; ingestion paths that prefer partial results use
// ExtractAvailable.
func (e *Extractor) Extract(mesh *geom.Mesh, kinds []Kind) (Set, error) {
	set, deg, err := e.ExtractAvailable(mesh, kinds)
	if err != nil {
		return nil, err
	}
	if err := deg.Err(); err != nil {
		return nil, err
	}
	return set, nil
}

// ExtractAvailable computes the requested feature vectors, degrading
// per-kind instead of failing whole-shape: when the skeletal-graph branch
// fails (or panics) on a valid-but-nasty mesh, the moment/geometric/
// principal-moment descriptors are still returned and the skipped kinds
// are reported in the Degradation map. The error is non-nil only for
// defects that invalidate every descriptor (invalid kind, non-positive
// volume, normalization failure).
func (e *Extractor) ExtractAvailable(mesh *geom.Mesh, kinds []Kind) (Set, Degradation, error) {
	if len(kinds) == 0 {
		return Set{}, nil, nil
	}
	for _, k := range kinds {
		if !k.Valid() {
			return nil, nil, fmt.Errorf("features: invalid kind %v", k)
		}
	}
	// Moments of the original pose: moment invariants deliberately avoid
	// the scale/rotation normalization steps (§3.5.3's discussion).
	rawCentral := moments.OfMesh(mesh).Central()
	if rawCentral.Volume() <= 0 {
		return nil, nil, fmt.Errorf("features: mesh volume %g is not positive (mesh must be closed and outward-oriented)", rawCentral.Volume())
	}

	normMesh := mesh.Clone()
	norm, err := moments.Normalize(normMesh, e.opts.TargetVolume)
	if err != nil {
		return nil, nil, fmt.Errorf("features: normalization: %w", err)
	}
	normMoments := moments.OfMesh(normMesh)

	// The skeletal-graph branch (voxelize → thin → graph → eigenvalues)
	// dominates extraction cost and shares only the normalized mesh —
	// read-only from here on — with the moment/geometric/D2 descriptors,
	// so when both are requested the branch runs concurrently with them.
	wantSkel, wantOther := false, false
	for _, k := range kinds {
		if k == Eigenvalues {
			wantSkel = true
		} else {
			wantOther = true
		}
	}
	var (
		skelGraph *skelgraph.Graph
		skelErr   error
		skelDone  chan struct{}
	)
	if wantSkel && wantOther {
		skelDone = make(chan struct{})
		go func() {
			defer close(skelDone)
			skelGraph, skelErr = e.buildSkeletalGraph(normMesh)
		}()
	}

	out := make(Set, len(kinds))
	var deg Degradation
	for _, k := range kinds {
		if _, done := out[k]; done {
			continue
		}
		switch k {
		case MomentInvariants:
			inv := moments.InvariantsOf(rawCentral)
			out[k] = Vector{inv.F1, inv.F2, inv.F3}
		case GeometricParams:
			out[k] = geometricParams(normMesh, norm)
		case PrincipalMoments:
			pm := moments.PrincipalMoments(normMoments)
			out[k] = Vector{pm[0], pm[1], pm[2]}
		case Eigenvalues:
			if skelDone != nil {
				<-skelDone
			} else if skelGraph == nil {
				skelGraph, skelErr = e.buildSkeletalGraph(normMesh)
			}
			if skelErr != nil {
				// The skeletal branch is the only fallible one; its failure
				// leaves the moment descriptors intact, so degrade this
				// kind instead of discarding the whole extraction.
				if deg == nil {
					deg = Degradation{}
				}
				deg[k] = skelErr.Error()
				continue
			}
			out[k] = Vector(skelGraph.EigenvalueSignature(e.opts.EigenDim))
		case HigherOrder:
			out[k] = Vector(moments.HigherOrderInvariants(rawCentral))
		case ShapeDistribution:
			rng := rand.New(rand.NewSource(e.opts.Seed))
			// The normalized model has volume 1; its diameter is bounded
			// by a few units for engineering shapes — use the bounding-box
			// diagonal as the histogram range so bins are comparable
			// across shapes.
			min, max := normMesh.Bounds()
			diag := max.Sub(min).Len()
			h := geom.PairwiseDistanceHistogram(normMesh, e.opts.D2Samples, e.opts.D2Bins, diag, rng)
			out[k] = Vector(h)
		}
	}
	return out, deg, nil
}

// ExtractAll computes every supported descriptor.
func (e *Extractor) ExtractAll(mesh *geom.Mesh) (Set, error) {
	return e.Extract(mesh, AllKinds)
}

// buildSkeletalGraph runs voxelization → thinning → graph construction on
// the normalized mesh. A panic anywhere in the branch is converted into an
// error: the branch runs on its own goroutine when overlapped with the
// moment descriptors, where an escaped panic would kill the process rather
// than the request, and hostile geometry is exactly what reaches the edge
// cases of the voxel/thinning code.
func (e *Extractor) buildSkeletalGraph(normMesh *geom.Mesh) (g *skelgraph.Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			g, err = nil, fmt.Errorf("features: skeletal-graph branch panicked: %v", r)
		}
	}()
	grid, err := voxel.Voxelize(normMesh, e.opts.VoxelResolution)
	if err != nil {
		return nil, fmt.Errorf("features: voxelization: %w", err)
	}
	skel := skeleton.Thin(grid, skeleton.DefaultOptions())
	return skelgraph.Build(skel), nil
}

// geometricParams assembles the §3.5.2 vector exactly as the paper lists
// it: two bounding-box aspect ratios (taken from the normalized model so
// they are pose-invariant), the ratio of overall surface area to volume,
// the scaling factor used to normalize the model, and the overall volume.
// The raw scale/volume terms have a much larger dynamic range than the
// ratios — a property the paper's own evaluation reflects (geometric
// parameters rank mid-tier).
func geometricParams(normMesh *geom.Mesh, norm *moments.Normalization) Vector {
	longAR, midAR := normMesh.AspectRatios()
	// Surface/volume as the dimensionless compactness S/V^(2/3) (the
	// surface area of the volume-1 normalized model), and the overall
	// volume as the characteristic length V^(1/3), so all five entries
	// live on commensurate scales while still carrying the paper's
	// size-sensitive information.
	charLen := math.Cbrt(norm.OriginalVolume)
	return Vector{
		longAR,
		midAR,
		normMesh.SurfaceArea(),
		norm.Scale,
		charLen,
	}
}
