package features

import (
	"math"
	"math/rand"
	"testing"

	"threedess/internal/geom"
)

func testMesh() *geom.Mesh {
	// Asymmetric L-shaped solid.
	m := geom.Box(geom.V(0, 0, 0), geom.V(4, 1, 1))
	m.Merge(geom.Box(geom.V(0, 1, 0), geom.V(1, 3, 1)))
	return m
}

func randomRigid(rng *rand.Rand) geom.Transform {
	axis := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	for axis.Len() < 1e-6 {
		axis = geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	return geom.Transform{
		R: geom.RotationAxisAngle(axis, rng.Float64()*2*math.Pi),
		T: geom.V(rng.NormFloat64()*5, rng.NormFloat64()*5, rng.NormFloat64()*5),
	}
}

func vecNear(a, b Vector, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol*(1+math.Abs(a[i])) {
			return false
		}
	}
	return true
}

func TestKindStringsRoundTrip(t *testing.T) {
	for _, k := range AllKinds {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if got != k {
			t.Errorf("round trip %v -> %v", k, got)
		}
	}
	if _, err := ParseKind("nonsense"); err == nil {
		t.Error("ParseKind accepted nonsense")
	}
	if Kind(99).Valid() {
		t.Error("Kind(99) valid")
	}
	if Kind(99).String() == "" {
		t.Error("Kind(99) String empty")
	}
}

func TestExtractDimensions(t *testing.T) {
	e := NewExtractor(Options{})
	set, err := e.ExtractAll(testMesh())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range AllKinds {
		v, ok := set[k]
		if !ok {
			t.Fatalf("missing kind %v", k)
		}
		if len(v) != e.Options().Dim(k) {
			t.Errorf("%v: dim %d, want %d", k, len(v), e.Options().Dim(k))
		}
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Errorf("%v[%d] = %v", k, i, x)
			}
		}
	}
}

func TestExtractSubset(t *testing.T) {
	e := NewExtractor(Options{})
	set, err := e.Extract(testMesh(), []Kind{PrincipalMoments})
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 1 {
		t.Errorf("set has %d kinds, want 1", len(set))
	}
	if _, ok := set[PrincipalMoments]; !ok {
		t.Error("requested kind missing")
	}
	empty, err := e.Extract(testMesh(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(empty) != 0 {
		t.Errorf("nil kinds produced %d entries", len(empty))
	}
	if _, err := e.Extract(testMesh(), []Kind{Kind(42)}); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestExtractDoesNotModifyInput(t *testing.T) {
	m := testMesh()
	v0 := m.Vertices[0]
	vol := m.Volume()
	e := NewExtractor(Options{})
	if _, err := e.ExtractAll(m); err != nil {
		t.Fatal(err)
	}
	if m.Vertices[0] != v0 || m.Volume() != vol {
		t.Error("Extract modified the input mesh")
	}
}

func TestRigidInvarianceOfDescriptors(t *testing.T) {
	e := NewExtractor(Options{})
	base := testMesh()
	ref, err := e.Extract(base, []Kind{MomentInvariants, PrincipalMoments, GeometricParams, HigherOrder})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(100))
	for i := 0; i < 10; i++ {
		m := base.Clone()
		m.Transform(randomRigid(rng))
		got, err := e.Extract(m, []Kind{MomentInvariants, PrincipalMoments, GeometricParams, HigherOrder})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []Kind{MomentInvariants, PrincipalMoments, GeometricParams, HigherOrder} {
			if !vecNear(ref[k], got[k], 1e-5) {
				t.Fatalf("%v changed under rigid motion:\n  ref %v\n  got %v", k, ref[k], got[k])
			}
		}
	}
}

func TestScaleBehaviour(t *testing.T) {
	e := NewExtractor(Options{})
	base := testMesh()
	ref, err := e.Extract(base, []Kind{MomentInvariants, PrincipalMoments, GeometricParams})
	if err != nil {
		t.Fatal(err)
	}
	scaled := base.Clone().ScaleUniform(2.5)
	got, err := e.Extract(scaled, []Kind{MomentInvariants, PrincipalMoments, GeometricParams})
	if err != nil {
		t.Fatal(err)
	}
	// Moment invariants and principal moments (of the normalized model)
	// are scale invariant.
	if !vecNear(ref[MomentInvariants], got[MomentInvariants], 1e-6) {
		t.Errorf("moment invariants changed under scaling")
	}
	if !vecNear(ref[PrincipalMoments], got[PrincipalMoments], 1e-6) {
		t.Errorf("principal moments changed under scaling")
	}
	// Geometric params: ratios (dims 0-2) invariant, scale/volume (3-4)
	// must change.
	for d := 0; d < 3; d++ {
		if math.Abs(ref[GeometricParams][d]-got[GeometricParams][d]) > 1e-6*(1+math.Abs(ref[GeometricParams][d])) {
			t.Errorf("geometric ratio dim %d changed under scaling", d)
		}
	}
	if math.Abs(ref[GeometricParams][4]-got[GeometricParams][4]) < 0.1 {
		t.Errorf("volume dim did not change under scaling: %v vs %v",
			ref[GeometricParams][4], got[GeometricParams][4])
	}
}

func TestPrincipalMomentsDescending(t *testing.T) {
	e := NewExtractor(Options{})
	set, err := e.Extract(testMesh(), []Kind{PrincipalMoments})
	if err != nil {
		t.Fatal(err)
	}
	pm := set[PrincipalMoments]
	if pm[0] < pm[1] || pm[1] < pm[2] {
		t.Errorf("principal moments not descending: %v", pm)
	}
	if pm[2] <= 0 {
		t.Errorf("principal moments must be positive for a solid: %v", pm)
	}
}

func TestEigenvaluesDistinguishTopology(t *testing.T) {
	e := NewExtractor(Options{})
	torus, err := geom.Torus(3, 1, 48, 24)
	if err != nil {
		t.Fatal(err)
	}
	bar := geom.Box(geom.V(0, 0, 0), geom.V(10, 1, 1))
	st, err := e.Extract(torus, []Kind{Eigenvalues})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := e.Extract(bar, []Kind{Eigenvalues})
	if err != nil {
		t.Fatal(err)
	}
	if vecNear(st[Eigenvalues], sb[Eigenvalues], 1e-9) {
		t.Errorf("torus and bar eigenvalue signatures identical: %v", st[Eigenvalues])
	}
}

func TestExtractionDeterministic(t *testing.T) {
	e := NewExtractor(Options{})
	a, err := e.ExtractAll(testMesh())
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.ExtractAll(testMesh())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range AllKinds {
		if !vecNear(a[k], b[k], 0) {
			t.Errorf("%v not deterministic: %v vs %v", k, a[k], b[k])
		}
	}
}

func TestExtractErrorsOnOpenMesh(t *testing.T) {
	open := geom.NewMesh(0, 0)
	open.AddVertex(geom.V(0, 0, 0))
	open.AddVertex(geom.V(1, 0, 0))
	open.AddVertex(geom.V(0, 1, 0))
	open.AddFace(0, 1, 2)
	e := NewExtractor(Options{})
	if _, err := e.Extract(open, CoreKinds); err == nil {
		t.Error("open mesh accepted")
	}
	inverted := geom.Box(geom.V(0, 0, 0), geom.V(1, 1, 1)).FlipFaces()
	if _, err := e.Extract(inverted, CoreKinds); err == nil {
		t.Error("inverted mesh accepted")
	}
}

func TestSetClone(t *testing.T) {
	s := Set{PrincipalMoments: Vector{1, 2, 3}}
	c := s.Clone()
	c[PrincipalMoments][0] = 99
	if s[PrincipalMoments][0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	d := DefaultOptions()
	if o != d {
		t.Errorf("withDefaults = %+v, want %+v", o, d)
	}
	custom := Options{VoxelResolution: 64}.withDefaults()
	if custom.VoxelResolution != 64 || custom.EigenDim != d.EigenDim {
		t.Errorf("partial defaults wrong: %+v", custom)
	}
	if (Options{}).Dim(Kind(77)) != 0 {
		t.Error("unknown kind Dim != 0")
	}
}

func TestShapeDistributionProperties(t *testing.T) {
	e := NewExtractor(Options{D2Samples: 512, D2Bins: 8})
	set, err := e.Extract(testMesh(), []Kind{ShapeDistribution})
	if err != nil {
		t.Fatal(err)
	}
	h := set[ShapeDistribution]
	if len(h) != 8 {
		t.Fatalf("bins = %d", len(h))
	}
	sum := 0.0
	for _, v := range h {
		if v < 0 {
			t.Fatalf("negative bin in %v", h)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("histogram sum = %v", sum)
	}
}

// TestExtractOverlapMatchesSerial asserts that the concurrent
// skeletal-graph branch produces bit-identical vectors to one-kind-at-a-
// time extraction (which never overlaps), for every descriptor.
func TestExtractOverlapMatchesSerial(t *testing.T) {
	ext := NewExtractor(Options{})
	m := geom.Box(geom.V(0, 0, 0), geom.V(4, 1, 1))
	m.Merge(geom.Box(geom.V(0, 1, 0), geom.V(1, 3, 1)))
	all, err := ext.Extract(m, AllKinds)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range AllKinds {
		solo, err := ext.Extract(m, []Kind{k})
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if len(all[k]) != len(solo[k]) {
			t.Fatalf("%v: overlap dim %d, serial dim %d", k, len(all[k]), len(solo[k]))
		}
		for i := range solo[k] {
			if all[k][i] != solo[k][i] {
				t.Errorf("%v[%d]: overlap %v != serial %v", k, i, all[k][i], solo[k][i])
			}
		}
	}
}

func TestOptionsWorkersDefault(t *testing.T) {
	ext := NewExtractor(Options{Workers: 7})
	if got := ext.Options().Workers; got != 7 {
		t.Errorf("Workers = %d, want 7", got)
	}
	if got := NewExtractor(Options{}).Options().Workers; got != 0 {
		t.Errorf("zero Workers resolved to %d, want 0 (runtime default)", got)
	}
}
