package scatter

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
)

// PartialHeader names the shards whose slice of the corpus is missing
// from a degraded answer, comma-joined in shard order. Absent when every
// shard contributed.
const PartialHeader = "X-Partial-Results"

// Query is one scatter-gather search. The query is always a resolved
// feature vector — the coordinator (or its HTTP layer) resolves
// query-by-id and query-by-example down to a vector before fan-out, so
// shards never re-extract features.
type Query struct {
	// Feature is the descriptor name ("moments", ...).
	Feature string
	// Vector is the query point in that descriptor's space.
	Vector []float64
	// Weights are the per-dimension weights of Equation 4.3 (nil =
	// uniform).
	Weights []float64
	// Threshold switches to similarity-threshold search when non-nil;
	// otherwise K bounds a top-k search.
	Threshold *float64
	K         int
	// ScanMode is passed through to the shards ("", "auto", "exact",
	// "two-stage"); every mode returns identical results.
	ScanMode string
	// ExcludeID drops a shape from the merged results (query-by-id always
	// retrieves the query shape itself).
	ExcludeID int64
}

// Result is one merged result row. The JSON tags mirror the server's
// SearchResult so coordinator answers are indistinguishable from
// single-node answers.
type Result struct {
	ID         int64   `json:"id"`
	Name       string  `json:"name"`
	Group      int     `json:"group"`
	Distance   float64 `json:"distance"`
	Similarity float64 `json:"similarity"`
}

// Outcome is a merged search answer. Missing lists the shards (in shard
// order) whose corpus slice is absent because they stayed down past their
// retry budget; empty Missing means the answer is bit-identical to a
// single-node scan over the whole corpus.
type Outcome struct {
	Results []Result
	Missing []string
}

// shardSearchReq mirrors the server's SearchRequest fields the
// coordinator uses — a resolved query vector plus the global dmax
// override that makes per-shard similarity values (and threshold
// filtering) agree with a single-node scan.
type shardSearchReq struct {
	QueryVector []float64 `json:"query_vector"`
	Feature     string    `json:"feature"`
	Threshold   *float64  `json:"threshold,omitempty"`
	K           int       `json:"k,omitempty"`
	Weights     []float64 `json:"weights,omitempty"`
	ScanMode    string    `json:"scan_mode,omitempty"`
	DMax        *float64  `json:"dmax,omitempty"`
}

// shardBounds mirrors the server's /api/cluster/bounds answer: the
// feature-space bounding box of the shard's stored vectors of one kind,
// plus the shard's data version (journal sequence) so coordinators can
// tag cached answers with the fleet-wide data state.
type shardBounds struct {
	Count   int       `json:"count"`
	Lo      []float64 `json:"lo,omitempty"`
	Hi      []float64 `json:"hi,omitempty"`
	Version int64     `json:"version,omitempty"`
}

// BoundsSet is the outcome of the bounds round: everything the search
// round needs (the global dmax and which shards survived), plus the
// per-shard data versions that make a coherent cache tag.
type BoundsSet struct {
	Feature string
	DMax    float64
	Epoch   int64
	missing []bool
	bounds  []shardBounds
}

// Complete reports whether every shard contributed its bounds — a
// prerequisite for caching the final answer.
func (b *BoundsSet) Complete() bool {
	for _, m := range b.missing {
		if m {
			return false
		}
	}
	return true
}

// VersionTag folds the ring epoch and every shard's data version into
// one value, changing whenever any shard's corpus slice changes (even by
// a write that bypassed this coordinator) or the topology moves. Two
// coordinators observing the same fleet state compute the same tag, so
// ETags agree across coordinators.
func (b *BoundsSet) VersionTag() int64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(b.Epoch)
	for i, sb := range b.bounds {
		put(int64(i))
		put(sb.Version)
	}
	return int64(h.Sum64())
}

// CollectBounds runs the bounds round: every fleet shard reports the
// bounding box of its stored vectors for the feature, its record count,
// and its data version. A shard that cannot answer is marked missing —
// its box is unknown, so including its rows in a later search round
// could disagree with the dmax the others were told to use. A 4xx from
// any shard (bad feature name, etc.) fails the round.
func (c *Coordinator) CollectBounds(ctx context.Context, feature string) (*BoundsSet, error) {
	n := c.NumShards()
	b := &BoundsSet{
		Feature: feature,
		Epoch:   c.Epoch(),
		missing: make([]bool, n),
		bounds:  make([]shardBounds, n),
	}
	path := "/api/cluster/bounds?feature=" + url.QueryEscape(feature)
	errs := c.ForEach(ctx, func(ctx context.Context, i int, sc *ShardClient) error {
		return sc.Call(ctx, http.MethodGet, path, nil, &b.bounds[i])
	})
	for i, err := range errs {
		if err != nil {
			if status := HTTPStatus(err); status >= 400 && status < 500 {
				return nil, err // the query names a bad feature, etc.
			}
			b.missing[i] = true
		}
	}
	b.DMax = mergeDMax(b.bounds, b.missing)
	return b, nil
}

// SearchBounds runs the search round against the shards that survived a
// prior CollectBounds, and merges the partials into the canonical order.
func (c *Coordinator) SearchBounds(ctx context.Context, q Query, b *BoundsSet) (*Outcome, error) {
	if len(q.Vector) == 0 {
		return nil, fmt.Errorf("scatter: query has no vector")
	}
	n := c.NumShards()
	if len(b.missing) != n {
		// The topology moved between rounds (a concurrent self-heal);
		// restart from a fresh bounds round rather than mixing views.
		nb, err := c.CollectBounds(ctx, b.Feature)
		if err != nil {
			return nil, err
		}
		*b = *nb
	}
	missing := append([]bool(nil), b.missing...)
	dmax := b.DMax

	req := shardSearchReq{
		QueryVector: q.Vector,
		Feature:     q.Feature,
		Threshold:   q.Threshold,
		ScanMode:    q.ScanMode,
		DMax:        &dmax,
		// Nil weights are canonicalized to explicit uniform ones:
		// arithmetically identical under Equation 4.3, but they steer every
		// shard onto the weighted-scan path, whose (distance, id) tie order
		// is canonical — the unweighted path's R-tree traversal order is
		// not, and the merge must not depend on it.
		Weights: q.Weights,
	}
	if req.Weights == nil {
		req.Weights = uniformWeights(len(q.Vector))
	}
	if q.Threshold == nil {
		req.K = q.K
		if q.ExcludeID != 0 {
			req.K++ // absorb the query shape, which is always retrieved
		}
	}
	partials := make([][]Result, n)
	errs := c.ForEach(ctx, func(ctx context.Context, i int, sc *ShardClient) error {
		if missing[i] {
			return nil
		}
		return sc.Call(ctx, http.MethodPost, "/api/search", req, &partials[i])
	})
	for i, err := range errs {
		if err != nil {
			if status := HTTPStatus(err); status >= 400 && status < 500 {
				return nil, err
			}
			missing[i] = true
			partials[i] = nil
		}
	}

	out := &Outcome{}
	anyAlive := false
	for i, m := range missing {
		if m {
			out.Missing = append(out.Missing, ShardName(i))
		} else {
			anyAlive = true
		}
	}
	if !anyAlive {
		return nil, ErrNoShards
	}

	// Merge: concatenate and re-sort into the canonical order. Each
	// partial is already its shard's top-(K) slice, so for top-k the
	// global top-K is a subset of the union; for threshold every matching
	// row is present. During a migration's double-routing window a moved
	// record exists on both its old and new owner, so equal ids collapse
	// to one row (they are byte-identical copies — verified by CRC before
	// cutover — and adjacent after the sort). Truncation happens after the
	// exclude so dropping the query shape cannot cost a legitimate row.
	for _, p := range partials {
		out.Results = append(out.Results, p...)
	}
	sort.Slice(out.Results, func(i, j int) bool {
		if out.Results[i].Distance != out.Results[j].Distance {
			return out.Results[i].Distance < out.Results[j].Distance
		}
		return out.Results[i].ID < out.Results[j].ID
	})
	dedup := out.Results[:0]
	for i, r := range out.Results {
		if i > 0 && r.ID == dedup[len(dedup)-1].ID {
			continue
		}
		dedup = append(dedup, r)
	}
	out.Results = dedup
	if q.ExcludeID != 0 {
		kept := out.Results[:0]
		for _, r := range out.Results {
			if r.ID != q.ExcludeID {
				kept = append(kept, r)
			}
		}
		out.Results = kept
	}
	if q.Threshold == nil && len(out.Results) > q.K {
		out.Results = out.Results[:q.K]
	}
	return out, nil
}

// Search fans the query out over every shard and merges the per-shard
// partial results into the canonical (distance, id) order.
//
// Two fan-out rounds make the merged answer bit-identical to a
// single-node scan: the first collects per-shard feature-space bounding
// boxes, which merge exactly (elementwise min/max) into the global box;
// its diagonal — computed with the same summation order as
// shapedb.DMax — is sent back as a dmax override, so every shard computes
// Equation-4.4 similarities (and threshold cutoffs) against the global
// normalizer instead of its local one. Distances are dmax-independent, and
// the merge re-sorts by the same (distance ascending, id ascending) rule
// every engine path uses, so rows, order, and every float match the
// single-node answer bit for bit.
//
// A shard down past its retry budget in either round is dropped from the
// query and named in Outcome.Missing — degraded, never failed. A 4xx from
// any shard means the query itself is at fault and is returned as a
// *ShardError. Only when every shard is missing does Search fail with
// ErrNoShards.
func (c *Coordinator) Search(ctx context.Context, q Query) (*Outcome, error) {
	if len(q.Vector) == 0 {
		return nil, fmt.Errorf("scatter: query has no vector")
	}
	b, err := c.CollectBounds(ctx, q.Feature)
	if err != nil {
		return nil, err
	}
	return c.SearchBounds(ctx, q, b)
}

// ErrNoShards reports that every shard was unreachable past its retry
// budget — the one condition under which a scatter query fails rather
// than degrades.
var ErrNoShards = fmt.Errorf("scatter: no shards reachable")

// mergeDMax merges per-shard bounding boxes into the global box and
// returns its diagonal, replicating shapedb.DMax exactly: elementwise
// min/max (exact in floating point), squared extents summed in dimension
// order, sqrt, floored at 1e-12. The result is bit-identical to what a
// single node holding every vector would compute.
func mergeDMax(bounds []shardBounds, missing []bool) float64 {
	var lo, hi []float64
	for i, b := range bounds {
		if missing[i] || b.Count == 0 || len(b.Lo) == 0 {
			continue
		}
		if lo == nil {
			lo = append([]float64(nil), b.Lo...)
			hi = append([]float64(nil), b.Hi...)
			continue
		}
		for d := range lo {
			if d < len(b.Lo) && b.Lo[d] < lo[d] {
				lo[d] = b.Lo[d]
			}
			if d < len(b.Hi) && b.Hi[d] > hi[d] {
				hi[d] = b.Hi[d]
			}
		}
	}
	if lo == nil {
		return 1e-12
	}
	sum := 0.0
	for i := range lo {
		d := hi[i] - lo[i]
		sum += d * d
	}
	if d := math.Sqrt(sum); d > 1e-12 {
		return d
	}
	return 1e-12
}

func uniformWeights(dim int) []float64 {
	w := make([]float64, dim)
	for i := range w {
		w[i] = 1
	}
	return w
}

// JoinMissing renders an Outcome's missing-shard list for the
// X-Partial-Results header.
func JoinMissing(missing []string) string { return strings.Join(missing, ",") }

// formatEpoch renders an epoch for the X-Ring-Epoch header.
func formatEpoch(e int64) string { return strconv.FormatInt(e, 10) }
