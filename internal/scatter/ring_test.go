package scatter

import "testing"

func TestNewRingRejectsNonPositive(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := NewRing(n); err == nil {
			t.Errorf("NewRing(%d) succeeded", n)
		}
	}
}

// Every participant builds the ring from the shard count alone, so two
// independently built rings must agree on every owner.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRing(5)
	for id := int64(1); id <= 10000; id++ {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("id %d: owners disagree (%d vs %d)", id, a.Owner(id), b.Owner(id))
		}
	}
	if a.OwnerKey("some-idem-key") != b.OwnerKey("some-idem-key") {
		t.Error("OwnerKey disagrees between identical rings")
	}
}

func TestRingOwnerInRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		r, err := NewRing(shards)
		if err != nil {
			t.Fatal(err)
		}
		if r.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", r.Shards(), shards)
		}
		for id := int64(1); id <= 2000; id++ {
			if o := r.Owner(id); o < 0 || o >= shards {
				t.Fatalf("%d shards: owner(%d) = %d", shards, id, o)
			}
		}
	}
}

// With 64 vnodes per shard the load should stay within a factor ~2 of
// even — the property the coordinator's id allocator and the per-shard
// corpus slices depend on.
func TestRingDistribution(t *testing.T) {
	const shards, ids = 4, 100000
	r, err := NewRing(shards)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for id := int64(1); id <= ids; id++ {
		counts[r.Owner(id)]++
	}
	for s, n := range counts {
		frac := float64(n) / ids
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("shard %d owns %.1f%% of ids (counts %v)", s, 100*frac, counts)
		}
	}
}

// A single-shard ring owns everything: the cluster of one must behave
// exactly like a standalone node.
func TestRingSingleShardOwnsAll(t *testing.T) {
	r, err := NewRing(1)
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(1); id <= 1000; id++ {
		if r.Owner(id) != 0 {
			t.Fatalf("owner(%d) = %d", id, r.Owner(id))
		}
	}
	if r.OwnerKey("anything") != 0 {
		t.Error("OwnerKey != 0 on a single-shard ring")
	}
}

func TestShardName(t *testing.T) {
	if got := ShardName(3); got != "shard-3" {
		t.Errorf("ShardName(3) = %q", got)
	}
}
