// Package scatter implements the scatter-gather search cluster of a
// sharded 3DESS deployment: the corpus is partitioned across N shard nodes
// by consistent hashing on shape id, and a coordinator fans weighted
// queries out over the existing HTTP surface, merging per-shard partial
// top-k results into an answer bit-identical (including tie order) to a
// single-node scan when every shard is healthy.
//
// The robustness machinery is the point of the package: per-shard
// deadlines derived from the request context, bounded retries with
// exponential backoff and jitter across shard replicas, hedged requests
// for straggler shards, and graceful degradation — a shard that stays down
// past its retry budget costs its slice of the corpus, never the query.
package scatter

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is how many virtual nodes each shard contributes to the ring.
// More vnodes smooth the key distribution; 64 keeps the per-shard load
// within a few percent of even while the ring stays tiny.
const ringVnodes = 64

// Ring is a consistent hash ring mapping shape ids onto shard indexes.
// It is immutable after construction and safe for concurrent use. Every
// participant of a cluster (coordinator, shards filtering a corpus load,
// shards validating routed inserts) builds the ring from the shard count
// alone, so ownership is agreed on without any coordination channel.
type Ring struct {
	shards int
	vnodes []vnode // sorted by hash
}

type vnode struct {
	hash  uint64
	shard int
}

// NewRing builds the ring for a cluster of `shards` nodes (indexes
// 0..shards-1).
func NewRing(shards int) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("scatter: ring needs at least one shard, got %d", shards)
	}
	r := &Ring{shards: shards, vnodes: make([]vnode, 0, shards*ringVnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < ringVnodes; v++ {
			r.vnodes = append(r.vnodes, vnode{hash: hashString(fmt.Sprintf("shard-%d#%d", s, v)), shard: s})
		}
	}
	sort.Slice(r.vnodes, func(i, j int) bool {
		if r.vnodes[i].hash != r.vnodes[j].hash {
			return r.vnodes[i].hash < r.vnodes[j].hash
		}
		// A 64-bit collision between vnode labels is implausible, but the
		// tiebreak keeps the sort (and therefore ownership) deterministic
		// if one ever happens.
		return r.vnodes[i].shard < r.vnodes[j].shard
	})
	return r, nil
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Owner maps a shape id onto the shard index that stores it: the first
// virtual node clockwise of the id's hash.
func (r *Ring) Owner(id int64) int { return r.ownerOf(hashID(id)) }

// OwnerKey maps an arbitrary string key onto a shard index. Routed
// inserts use the idempotency key here so a retried insert reaches the
// same shard as the original attempt and replays from its idempotency
// store instead of inserting twice.
func (r *Ring) OwnerKey(key string) int { return r.ownerOf(hashString(key)) }

func (r *Ring) ownerOf(h uint64) int {
	i := sort.Search(len(r.vnodes), func(i int) bool { return r.vnodes[i].hash >= h })
	if i == len(r.vnodes) {
		i = 0 // wrap around the ring
	}
	return r.vnodes[i].shard
}

// ShardName is the canonical display name of a shard index, used in
// X-Partial-Results headers, health reports, and errors.
func ShardName(i int) string { return fmt.Sprintf("shard-%d", i) }

func hashID(id int64) uint64 {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(id))
	h := fnv.New64a()
	h.Write(b[:])
	return mix64(h.Sum64())
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the murmur3 fmix64 finalizer. FNV-1a alone does not avalanche:
// sequential ids share a long constant byte prefix, so their raw FNV
// hashes cluster in a narrow band of the 64-bit space and a whole corpus
// can land on one vnode arc. The finalizer diffuses every input bit over
// the full word, which is what makes the ring's arcs see a uniform key
// stream.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
