package scatter

import (
	"errors"
	"fmt"
	"time"
)

// Circuit breaker: ShardClient has always counted ConsecutiveFails; the
// breaker is the piece that consults it. After BreakerAfter consecutive
// failures the breaker opens and every Call against the shard fails
// immediately with *BreakerOpenError — no connection attempt, no retry
// budget, no backoff sleeps — so a dead shard costs the coordinator one
// error allocation per query instead of a full timeout ladder. After
// BreakerCooldown one caller is let through as a half-open trial; its
// success closes the breaker, its failure re-opens it for another
// cooldown. Probes bypass the breaker (they ARE the cheap liveness
// check), and a successful probe closes it early.

type breakerState int32

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker defaults for Policy fields left zero.
const (
	DefaultBreakerAfter    = 3
	DefaultBreakerCooldown = time.Second
)

// ErrBreakerOpen matches (via errors.Is) every breaker rejection.
var ErrBreakerOpen = errors.New("scatter: circuit breaker open")

// BreakerOpenError is returned by Call/CallIdem when the shard's breaker
// rejects the request without attempting it. RetryAfter is how long until
// the next half-open trial is due (callers can surface it as a hint).
type BreakerOpenError struct {
	Shard      string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("scatter: %s circuit breaker open (next trial in %s)", e.Shard, e.RetryAfter.Round(time.Millisecond))
}

func (e *BreakerOpenError) Is(target error) bool { return target == ErrBreakerOpen }

// allowAttempt reports whether the breaker admits a request right now.
// When it refuses, retryIn is the time until the next half-open trial. A
// true return from the open state means THIS caller won the half-open
// trial slot: its outcome (markSeen/markFail) decides the next state.
func (sc *ShardClient) allowAttempt() (ok bool, retryIn time.Duration) {
	if sc.policy.BreakerAfter < 0 {
		return true, 0
	}
	switch breakerState(sc.brState.Load()) {
	case breakerClosed:
		return true, 0
	case breakerHalfOpen:
		// A trial is already in flight; everyone else waits it out.
		return false, sc.policy.BreakerCooldown
	default: // open
		until := sc.brUntil.Load()
		if now := time.Now().UnixNano(); now < until {
			return false, time.Duration(until - now)
		}
		if sc.brState.CompareAndSwap(int32(breakerOpen), int32(breakerHalfOpen)) {
			return true, 0
		}
		return false, sc.policy.BreakerCooldown
	}
}

// breakerOnSuccess closes the breaker (any successful contact proves the
// shard lives — including a half-open trial or an out-of-band probe).
func (sc *ShardClient) breakerOnSuccess() {
	if sc.policy.BreakerAfter < 0 {
		return
	}
	sc.brState.Store(int32(breakerClosed))
}

// breakerOnFailure reacts to one more consecutive failure: a failed
// half-open trial re-opens immediately; fails crossing the threshold
// open a closed breaker. Failures while already open (stragglers from
// requests launched before it opened) change nothing.
func (sc *ShardClient) breakerOnFailure(consecutive int64) {
	if sc.policy.BreakerAfter < 0 {
		return
	}
	switch breakerState(sc.brState.Load()) {
	case breakerHalfOpen:
		sc.brUntil.Store(time.Now().Add(sc.policy.BreakerCooldown).UnixNano())
		sc.brState.Store(int32(breakerOpen))
		sc.brOpens.Add(1)
	case breakerClosed:
		if consecutive >= int64(sc.policy.BreakerAfter) {
			sc.brUntil.Store(time.Now().Add(sc.policy.BreakerCooldown).UnixNano())
			if sc.brState.CompareAndSwap(int32(breakerClosed), int32(breakerOpen)) {
				sc.brOpens.Add(1)
			}
		}
	}
}

// BreakerState returns the breaker's current state name, for tests and
// operator surfaces.
func (sc *ShardClient) BreakerState() string {
	if sc.policy.BreakerAfter < 0 {
		return "disabled"
	}
	return breakerState(sc.brState.Load()).String()
}
