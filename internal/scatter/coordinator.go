package scatter

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// ShardSpec describes one shard of the cluster: the base URLs of its
// replicas (primary first, e.g. "http://shard0:8080") and an optional
// transport override so tests can inject network faults between the
// coordinator and this shard.
type ShardSpec struct {
	Endpoints []string
	Transport http.RoundTripper
}

// topology is one immutable cluster view: a RingState, its routing
// rings, and one ShardClient per fleet slot. The coordinator swaps whole
// topologies atomically at migration phase boundaries, so every query
// observes a single consistent view.
type topology struct {
	rings   *rings
	specs   []ShardSpec
	clients []*ShardClient
}

// Coordinator owns the cluster view: the versioned hash ring(s)
// partitioning shape ids over shards and one ShardClient per shard. It
// is stateless apart from the id-allocation counter — every query
// carries its own deadline and the shard clients track liveness — so a
// restarted coordinator resumes serving with no recovery step.
type Coordinator struct {
	topo   atomic.Pointer[topology]
	policy Policy

	// topoMu serializes topology swaps (SetTopology / AdoptState) so two
	// concurrent self-heals cannot interleave client reuse.
	topoMu sync.Mutex

	// Id allocation for routed inserts: seeded lazily from the max id
	// reported by shard stats, then advanced atomically. seedMu serializes
	// the one-time seeding.
	seedMu sync.Mutex
	seeded bool
	nextID atomic.Int64
}

// New builds a coordinator over the given shards at the static epoch-1
// ring state. The policy applies to every shard (zero value = defaults).
func New(specs []ShardSpec, policy Policy) (*Coordinator, error) {
	c := &Coordinator{policy: policy.withDefaults()}
	if err := c.SetTopology(StaticState(len(specs)), specs); err != nil {
		return nil, err
	}
	return c, nil
}

// SetTopology installs a new RingState over the given fleet specs
// (indexed by shard slot; must cover st.Fleet()). Clients whose endpoint
// list is unchanged are carried over from the previous topology so their
// health counters and breaker state survive the swap.
func (c *Coordinator) SetTopology(st RingState, specs []ShardSpec) error {
	r, err := buildRings(st)
	if err != nil {
		return err
	}
	if len(specs) < st.Fleet() {
		return fmt.Errorf("scatter: state needs %d shard specs, got %d", st.Fleet(), len(specs))
	}
	specs = specs[:st.Fleet()]
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	old := c.topo.Load()
	t := &topology{rings: r, specs: append([]ShardSpec(nil), specs...)}
	for i, spec := range specs {
		if len(spec.Endpoints) == 0 {
			return fmt.Errorf("scatter: %s has no endpoints", ShardName(i))
		}
		if old != nil && i < len(old.clients) && sameEndpoints(old.specs[i], spec) {
			t.clients = append(t.clients, old.clients[i])
			continue
		}
		t.clients = append(t.clients, newShardClient(i, spec.Endpoints, c.policy, spec.Transport, c))
	}
	c.topo.Store(t)
	return nil
}

func sameEndpoints(a, b ShardSpec) bool {
	return a.Transport == b.Transport && equalStrings(a.Endpoints, b.Endpoints)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AdoptState self-heals onto a newer RingState learned from a shard's
// 409 rejection. The state must carry its own endpoint list (migration
// states always do); without one, adoption only succeeds if the current
// fleet already covers the new state's slots.
func (c *Coordinator) AdoptState(st RingState) error {
	cur := c.State()
	if st.Epoch <= cur.Epoch && st.Term <= cur.Term {
		return nil // already there (or ahead): nothing to adopt
	}
	specs := c.topo.Load().specs
	if len(st.Endpoints) > 0 {
		specs = make([]ShardSpec, len(st.Endpoints))
		have := c.topo.Load()
		for i, eps := range st.Endpoints {
			specs[i] = ShardSpec{Endpoints: eps}
			// Preserve a fault-injecting transport when the slot's endpoints
			// are unchanged (test harnesses rely on this).
			if i < len(have.specs) && equalStrings(have.specs[i].Endpoints, eps) {
				specs[i].Transport = have.specs[i].Transport
			}
		}
	}
	return c.SetTopology(st, specs)
}

// State snapshots the coordinator's current RingState.
func (c *Coordinator) State() RingState { return c.topo.Load().rings.state }

// HealEpoch implements EpochHook: when a shard 409s with a RingState
// that disagrees with the coordinator's, the newer side wins — the
// coordinator adopts a newer state, or pushes its own to a stale shard.
// Returns whether the call that hit the 409 is worth retrying.
func (c *Coordinator) HealEpoch(ctx context.Context, sc *ShardClient, st RingState) bool {
	cur := c.State()
	switch {
	case st.Term > cur.Term || (st.Term == cur.Term && st.Epoch > cur.Epoch):
		return c.AdoptState(st) == nil
	case st.Term < cur.Term || st.Epoch < cur.Epoch:
		got, ok := sc.pushState(ctx, cur)
		if ok {
			return true
		}
		if got.Term > cur.Term || (got.Term == cur.Term && got.Epoch > cur.Epoch) {
			// The shard refused our push because it knew a newer state after
			// all (a migration phase landed between the 409 and the push).
			return c.AdoptState(got) == nil
		}
		return false
	default:
		// The shard's state matches what we hold NOW — the request that
		// drew the 409 was stamped before a topology swap that has since
		// landed here (a concurrent heal or the migration driver beat us to
		// it). A retry stamps the current epoch and goes through; the
		// caller's maxEpochHeals bounds any pathological ping-pong.
		return true
	}
}

// Epoch returns the coordinator's current ring epoch.
func (c *Coordinator) Epoch() int64 { return c.State().Epoch }

// Specs returns the current fleet's shard specs (indexed by slot).
func (c *Coordinator) Specs() []ShardSpec { return c.topo.Load().specs }

// NumShards returns the fleet size: every shard slot involved in the
// current state (serving + joining/draining during a migration).
func (c *Coordinator) NumShards() int { return len(c.topo.Load().clients) }

// Ring returns the current serving ring (read ownership).
func (c *Coordinator) Ring() *Ring { return c.topo.Load().rings.serving }

// Shard returns the client for shard index i.
func (c *Coordinator) Shard(i int) *ShardClient { return c.topo.Load().clients[i] }

// Owner returns the client for the shard owning the given shape id on
// the serving ring.
func (c *Coordinator) Owner(id int64) *ShardClient {
	t := c.topo.Load()
	return t.clients[t.rings.serving.Owner(id)]
}

// OwnerIndexes returns the shard indexes that may hold the given shape
// id for reads: the serving owner first, then the write-ring owner when
// it differs (a record inserted during the prepare window lives only
// there until cutover), then (during the cutover double-routing window)
// the draining ring's owner. Point reads and deletes fan over all of
// them, so every acknowledged write is reachable at every migration
// phase.
func (c *Coordinator) OwnerIndexes(id int64) []int {
	t := c.topo.Load()
	own := []int{t.rings.serving.Owner(id)}
	if w := t.rings.write.Owner(id); w != own[0] {
		own = append(own, w)
	}
	if t.rings.alt != nil {
		if a := t.rings.alt.Owner(id); a != own[0] {
			own = append(own, a)
		}
	}
	return own
}

// WriteOwnerKey maps a routing key (the idempotency key of a routed
// insert) onto the shard index that owns new records — the write ring,
// so mid-migration inserts land on their post-cutover owner.
func (c *Coordinator) WriteOwnerKey(key string) int {
	return c.topo.Load().rings.write.OwnerKey(key)
}

// writeOwnerID maps a shape id onto its write-ring owner.
func (c *Coordinator) writeOwnerID(id int64) int {
	return c.topo.Load().rings.write.Owner(id)
}

// Health snapshots every shard's liveness counters, in shard order.
func (c *Coordinator) Health() []ShardHealth {
	clients := c.topo.Load().clients
	out := make([]ShardHealth, len(clients))
	for i, sc := range clients {
		out[i] = sc.Health()
	}
	return out
}

// Probe makes one cheap liveness attempt against every shard concurrently
// and returns how many answered. Readiness endpoints call this so a
// coordinator that has not routed traffic recently still reports fresh
// shard health.
func (c *Coordinator) Probe(ctx context.Context) int {
	var healthy atomic.Int64
	var wg sync.WaitGroup
	for _, sc := range c.topo.Load().clients {
		wg.Add(1)
		go func(sc *ShardClient) {
			defer wg.Done()
			if sc.Probe(ctx) {
				healthy.Add(1)
			}
		}(sc)
	}
	wg.Wait()
	return int(healthy.Load())
}

// ForEach fans fn out over every fleet shard concurrently and returns
// the per-shard errors (nil entries for successes), indexed by shard.
// Each fn call runs under the full ShardClient policy; the caller
// decides which failures degrade the answer and which fail it.
func (c *Coordinator) ForEach(ctx context.Context, fn func(ctx context.Context, i int, sc *ShardClient) error) []error {
	clients := c.topo.Load().clients
	errs := make([]error, len(clients))
	var wg sync.WaitGroup
	for i, sc := range clients {
		wg.Add(1)
		go func(i int, sc *ShardClient) {
			defer wg.Done()
			errs[i] = fn(ctx, i, sc)
		}(i, sc)
	}
	wg.Wait()
	return errs
}

// shardStats is the slice of a shard's /api/stats answer the coordinator
// cares about.
type shardStats struct {
	Shapes int            `json:"shapes"`
	Groups map[string]int `json:"group_sizes"`
	MaxID  int64          `json:"max_id"`
}

// AllocID allocates a fresh globally-unique shape id owned by the given
// shard on the WRITE ring. On first use the counter seeds itself from
// the maximum id any reachable shard reports, so a restarted coordinator
// never reissues an id; the owning-shard constraint is satisfied by
// probing successive candidates (with N shards a candidate lands on a
// given shard with probability ~1/N, so the expected cost is N ring
// lookups).
func (c *Coordinator) AllocID(ctx context.Context, shard int) (int64, error) {
	if shard < 0 || shard >= c.NumShards() {
		return 0, fmt.Errorf("scatter: no shard %d", shard)
	}
	if err := c.seedIDs(ctx); err != nil {
		return 0, err
	}
	// 64 shards × 64 vnodes make runs of same-owner ids short; 4096
	// candidates without a hit means the ring is broken, not unlucky.
	for range 4096 {
		id := c.nextID.Add(1)
		if c.writeOwnerID(id) == shard {
			return id, nil
		}
	}
	return 0, fmt.Errorf("scatter: could not allocate an id owned by %s", ShardName(shard))
}

// seedIDs initializes the allocation counter from shard stats, once.
// Every reachable shard must answer — seeding below an unreachable
// shard's max id would hand out duplicates — so a shard outage fails
// inserts (a routing-layer judgment call: reads degrade, writes don't).
func (c *Coordinator) seedIDs(ctx context.Context) error {
	c.seedMu.Lock()
	defer c.seedMu.Unlock()
	if c.seeded {
		return nil
	}
	maxIDs := make([]int64, c.NumShards())
	errs := c.ForEach(ctx, func(ctx context.Context, i int, sc *ShardClient) error {
		var st shardStats
		if err := sc.Call(ctx, http.MethodGet, "/api/stats", nil, &st); err != nil {
			return err
		}
		maxIDs[i] = st.MaxID
		return nil
	})
	var max int64
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("scatter: seeding id allocation: %w", err)
		}
		if maxIDs[i] > max {
			max = maxIDs[i]
		}
	}
	if cur := c.nextID.Load(); max > cur {
		c.nextID.CompareAndSwap(cur, max)
	}
	c.seeded = true
	return nil
}

// BumpID advances the allocation counter past a taken id, after a shard
// answered an explicit-id insert with a conflict (another writer got
// there first). The caller then allocates again.
func (c *Coordinator) BumpID(taken int64) {
	for {
		cur := c.nextID.Load()
		if cur >= taken || c.nextID.CompareAndSwap(cur, taken) {
			return
		}
	}
}
