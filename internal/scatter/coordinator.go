package scatter

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

// ShardSpec describes one shard of the cluster: the base URLs of its
// replicas (primary first, e.g. "http://shard0:8080") and an optional
// transport override so tests can inject network faults between the
// coordinator and this shard.
type ShardSpec struct {
	Endpoints []string
	Transport http.RoundTripper
}

// Coordinator owns the cluster view: the hash ring partitioning shape ids
// over shards and one ShardClient per shard. It is stateless apart from
// the id-allocation counter — every query carries its own deadline and the
// shard clients track liveness — so a restarted coordinator resumes
// serving with no recovery step.
type Coordinator struct {
	ring    *Ring
	clients []*ShardClient
	policy  Policy

	// Id allocation for routed inserts: seeded lazily from the max id
	// reported by shard stats, then advanced atomically. seedMu serializes
	// the one-time seeding.
	seedMu sync.Mutex
	seeded bool
	nextID atomic.Int64
}

// New builds a coordinator over the given shards. The policy applies to
// every shard (zero value = defaults).
func New(specs []ShardSpec, policy Policy) (*Coordinator, error) {
	ring, err := NewRing(len(specs))
	if err != nil {
		return nil, err
	}
	policy = policy.withDefaults()
	c := &Coordinator{ring: ring, policy: policy}
	for i, spec := range specs {
		if len(spec.Endpoints) == 0 {
			return nil, fmt.Errorf("scatter: %s has no endpoints", ShardName(i))
		}
		c.clients = append(c.clients, newShardClient(i, spec.Endpoints, policy, spec.Transport))
	}
	return c, nil
}

// NumShards returns the cluster's shard count.
func (c *Coordinator) NumShards() int { return c.ring.Shards() }

// Ring returns the cluster's hash ring.
func (c *Coordinator) Ring() *Ring { return c.ring }

// Shard returns the client for shard index i.
func (c *Coordinator) Shard(i int) *ShardClient { return c.clients[i] }

// Owner returns the client for the shard owning the given shape id.
func (c *Coordinator) Owner(id int64) *ShardClient { return c.clients[c.ring.Owner(id)] }

// Health snapshots every shard's liveness counters, in shard order.
func (c *Coordinator) Health() []ShardHealth {
	out := make([]ShardHealth, len(c.clients))
	for i, sc := range c.clients {
		out[i] = sc.Health()
	}
	return out
}

// Probe makes one cheap liveness attempt against every shard concurrently
// and returns how many answered. Readiness endpoints call this so a
// coordinator that has not routed traffic recently still reports fresh
// shard health.
func (c *Coordinator) Probe(ctx context.Context) int {
	var healthy atomic.Int64
	var wg sync.WaitGroup
	for _, sc := range c.clients {
		wg.Add(1)
		go func(sc *ShardClient) {
			defer wg.Done()
			if sc.Probe(ctx) {
				healthy.Add(1)
			}
		}(sc)
	}
	wg.Wait()
	return int(healthy.Load())
}

// ForEach fans fn out over every shard concurrently and returns the
// per-shard errors (nil entries for successes), indexed by shard. Each fn
// call runs under the full ShardClient policy; the caller decides which
// failures degrade the answer and which fail it.
func (c *Coordinator) ForEach(ctx context.Context, fn func(ctx context.Context, i int, sc *ShardClient) error) []error {
	errs := make([]error, len(c.clients))
	var wg sync.WaitGroup
	for i, sc := range c.clients {
		wg.Add(1)
		go func(i int, sc *ShardClient) {
			defer wg.Done()
			errs[i] = fn(ctx, i, sc)
		}(i, sc)
	}
	wg.Wait()
	return errs
}

// shardStats is the slice of a shard's /api/stats answer the coordinator
// cares about.
type shardStats struct {
	Shapes int            `json:"shapes"`
	Groups map[string]int `json:"group_sizes"`
	MaxID  int64          `json:"max_id"`
}

// AllocID allocates a fresh globally-unique shape id owned by the given
// shard. On first use the counter seeds itself from the maximum id any
// reachable shard reports, so a restarted coordinator never reissues an
// id; the owning-shard constraint is satisfied by probing successive
// candidates (with N shards a candidate lands on a given shard with
// probability ~1/N, so the expected cost is N ring lookups).
func (c *Coordinator) AllocID(ctx context.Context, shard int) (int64, error) {
	if shard < 0 || shard >= len(c.clients) {
		return 0, fmt.Errorf("scatter: no shard %d", shard)
	}
	if err := c.seedIDs(ctx); err != nil {
		return 0, err
	}
	// 64 shards × 64 vnodes make runs of same-owner ids short; 4096
	// candidates without a hit means the ring is broken, not unlucky.
	for range 4096 {
		id := c.nextID.Add(1)
		if c.ring.Owner(id) == shard {
			return id, nil
		}
	}
	return 0, fmt.Errorf("scatter: could not allocate an id owned by %s", ShardName(shard))
}

// seedIDs initializes the allocation counter from shard stats, once.
// Every reachable shard must answer — seeding below an unreachable
// shard's max id would hand out duplicates — so a shard outage fails
// inserts (a routing-layer judgment call: reads degrade, writes don't).
func (c *Coordinator) seedIDs(ctx context.Context) error {
	c.seedMu.Lock()
	defer c.seedMu.Unlock()
	if c.seeded {
		return nil
	}
	maxIDs := make([]int64, len(c.clients))
	errs := c.ForEach(ctx, func(ctx context.Context, i int, sc *ShardClient) error {
		var st shardStats
		if err := sc.Call(ctx, http.MethodGet, "/api/stats", nil, &st); err != nil {
			return err
		}
		maxIDs[i] = st.MaxID
		return nil
	})
	var max int64
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("scatter: seeding id allocation: %w", err)
		}
		if maxIDs[i] > max {
			max = maxIDs[i]
		}
	}
	if cur := c.nextID.Load(); max > cur {
		c.nextID.CompareAndSwap(cur, max)
	}
	c.seeded = true
	return nil
}

// BumpID advances the allocation counter past a taken id, after a shard
// answered an explicit-id insert with a conflict (another writer got
// there first). The caller then allocates again.
func (c *Coordinator) BumpID(taken int64) {
	for {
		cur := c.nextID.Load()
		if cur >= taken || c.nextID.CompareAndSwap(cur, taken) {
			return
		}
	}
}
