package scatter

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// breakerPolicy is testPolicy with a tight breaker so open/half-open
// transitions happen within a test's patience.
func breakerPolicy() Policy {
	p := testPolicy()
	p.BreakerAfter = 3
	p.BreakerCooldown = 50 * time.Millisecond
	return p
}

// Enough consecutive failures open the breaker; once open, calls fail
// immediately with *BreakerOpenError and no request reaches the wire —
// a dead shard stops consuming the retry/timeout budget.
func TestBreakerOpensAndSkipsDeadShard(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	sc := newShardClient(0, []string{ts.URL}, breakerPolicy(), nil, nil)

	// One Call = 3 attempts (1 + 2 retries), each a markFail: the third
	// failure trips the breaker.
	if err := sc.Call(context.Background(), http.MethodGet, "/x", nil, nil); err == nil {
		t.Fatal("no error from an all-5xx shard")
	}
	if got := sc.BreakerState(); got != "open" {
		t.Fatalf("breaker = %q after %d consecutive fails, want open", got, sc.fails.Load())
	}
	wire := calls.Load()

	// While open: immediate BreakerOpenError, zero wire traffic, and a
	// positive cooldown hint.
	start := time.Now()
	err := sc.Call(context.Background(), http.MethodGet, "/x", nil, nil)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	var brk *BreakerOpenError
	if !errors.As(err, &brk) || brk.Shard != "shard-0" || brk.RetryAfter <= 0 {
		t.Fatalf("err = %#v, want BreakerOpenError with shard name and positive RetryAfter", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("open-breaker rejection took %v, want immediate", elapsed)
	}
	if calls.Load() != wire {
		t.Errorf("open breaker let %d requests through", calls.Load()-wire)
	}
	if h := sc.Health(); h.Breaker != "open" || h.BreakerOpens != 1 {
		t.Errorf("health = breaker %q opens %d, want open/1", h.Breaker, h.BreakerOpens)
	}
}

// After the cooldown one trial call goes through half-open; success
// closes the breaker, and subsequent calls flow normally.
func TestBreakerHalfOpenTrialCloses(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]int{"ok": 1})
	}))
	defer ts.Close()
	sc := newShardClient(0, []string{ts.URL}, breakerPolicy(), nil, nil)
	sc.Call(context.Background(), http.MethodGet, "/x", nil, nil)
	if got := sc.BreakerState(); got != "open" {
		t.Fatalf("breaker = %q, want open", got)
	}

	failing.Store(false)
	time.Sleep(60 * time.Millisecond) // past the cooldown
	var out map[string]int
	if err := sc.Call(context.Background(), http.MethodGet, "/x", nil, &out); err != nil {
		t.Fatalf("trial call after cooldown: %v", err)
	}
	if got := sc.BreakerState(); got != "closed" {
		t.Errorf("breaker = %q after successful trial, want closed", got)
	}
	if err := sc.Call(context.Background(), http.MethodGet, "/x", nil, &out); err != nil {
		t.Errorf("call after breaker closed: %v", err)
	}
}

// A failed half-open trial reopens the breaker for another full
// cooldown: exactly one request reaches the wire, and the retry that
// follows it inside the same Call is already rejected again.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	sc := newShardClient(0, []string{ts.URL}, breakerPolicy(), nil, nil)
	sc.Call(context.Background(), http.MethodGet, "/x", nil, nil)
	time.Sleep(60 * time.Millisecond)
	wire := calls.Load()
	if err := sc.Call(context.Background(), http.MethodGet, "/x", nil, nil); err == nil {
		t.Fatal("no error from an all-5xx shard")
	}
	if n := calls.Load() - wire; n != 1 {
		t.Errorf("half-open admitted %d wire requests, want exactly 1 trial", n)
	}
	if got := sc.BreakerState(); got != "open" {
		t.Errorf("breaker = %q after failed trial, want open again", got)
	}
	if opens := sc.brOpens.Load(); opens < 2 {
		t.Errorf("breaker opened %d times, want >= 2 (initial + reopen)", opens)
	}
}

// Probe bypasses the breaker (readiness probing is how an idle
// coordinator notices recovery) and a successful probe closes it early,
// without waiting out the cooldown.
func TestProbeBypassesAndClosesBreaker(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()
	p := breakerPolicy()
	p.BreakerCooldown = time.Hour // recovery must come from the probe, not time
	sc := newShardClient(0, []string{ts.URL}, p, nil, nil)
	sc.Call(context.Background(), http.MethodGet, "/x", nil, nil)
	if got := sc.BreakerState(); got != "open" {
		t.Fatalf("breaker = %q, want open", got)
	}
	failing.Store(false)
	if !sc.Probe(context.Background()) {
		t.Fatal("probe failed against a healthy shard")
	}
	if got := sc.BreakerState(); got != "closed" {
		t.Errorf("breaker = %q after successful probe, want closed", got)
	}
	if err := sc.Call(context.Background(), http.MethodGet, "/x", nil, nil); err != nil {
		t.Errorf("call after probe-closed breaker: %v", err)
	}
}

// A negative BreakerAfter disables the breaker entirely: the state
// reports "disabled" and a long failure streak never rejects a call
// without trying the wire.
func TestBreakerDisabled(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	p := breakerPolicy()
	p.BreakerAfter = -1
	sc := newShardClient(0, []string{ts.URL}, p, nil, nil)
	for i := 0; i < 3; i++ {
		if err := sc.Call(context.Background(), http.MethodGet, "/x", nil, nil); errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("disabled breaker rejected call %d", i)
		}
	}
	if got := sc.BreakerState(); got != "disabled" {
		t.Errorf("breaker state = %q, want disabled", got)
	}
	if n := calls.Load(); n != 9 {
		t.Errorf("wire saw %d attempts, want 9 (3 calls x 3 attempts, none skipped)", n)
	}
}

// Regression for the hedging channel: the loser of a hedged race (and
// every request canceled by the attempt deadline) must be able to
// deliver its reply and exit — an unbuffered channel would strand those
// goroutines forever. Run a burst of hedged calls against a straggler
// and check the goroutine count returns to baseline.
func TestAttemptHedgedDoesNotLeakGoroutines(t *testing.T) {
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release: // straggler: answers only when told
		case <-r.Context().Done():
			return
		}
		json.NewEncoder(w).Encode(map[string]int{"ok": 1})
	}))
	defer ts.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]int{"ok": 1})
	}))
	defer fast.Close()

	p := testPolicy()
	p.HedgeAfter = 5 * time.Millisecond
	sc := newShardClient(0, []string{ts.URL, fast.URL}, p, nil, nil)

	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		// Rotation starts each attempt on the straggler; the hedge to the
		// fast replica wins and the straggler's goroutine must still drain.
		var out map[string]int
		if err := sc.Call(context.Background(), http.MethodGet, "/x", nil, &out); err != nil {
			t.Fatal(err)
		}
	}
	close(release) // let the parked handlers finish server-side

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: before burst %d, after drain %d — hedged losers leaked",
		before, runtime.NumGoroutine())
}
