package scatter

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mathrand "math/rand/v2"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Policy tunes how the coordinator talks to one shard. The zero value
// takes every default below, so `scatter.Policy{}` is a production-ready
// configuration.
type Policy struct {
	// Timeout caps one attempt against one replica. The effective
	// per-attempt deadline is the smaller of Timeout and what remains of
	// the request context minus MergeMargin, so a shard can never consume
	// the whole request budget and starve the merge.
	Timeout time.Duration
	// Retries is how many additional attempts follow a failed first one
	// (connection error, timeout, 429, or 5xx). Attempts rotate across the
	// shard's replica endpoints. Negative disables retries.
	Retries int
	// BackoffBase/BackoffCap shape the exponential backoff between
	// attempts; up to 50% jitter is added so a burst of queries against a
	// recovering shard doesn't retry in lockstep.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// HedgeAfter is the straggler budget: when an attempt has neither
	// succeeded nor failed after this long, a duplicate request is sent to
	// the shard's next replica and the first response wins. Hedging only
	// fires for slow requests — a fast failure goes through the ordinary
	// retry path instead. Negative disables hedging; zero takes the
	// default.
	HedgeAfter time.Duration
	// MergeMargin is reserved from the request deadline for the
	// coordinator's own merge work; per-shard deadlines never extend into
	// it.
	MergeMargin time.Duration
	// BreakerAfter is the consecutive-failure count that opens the shard's
	// circuit breaker: while open, calls fail immediately with
	// *BreakerOpenError instead of consuming the retry/timeout budget.
	// Zero takes the default; negative disables the breaker.
	BreakerAfter int
	// BreakerCooldown is how long an open breaker rejects before admitting
	// one half-open trial request. Zero takes the default.
	BreakerCooldown time.Duration
}

// Defaults for Policy fields left zero.
const (
	DefaultTimeout     = 2 * time.Second
	DefaultRetries     = 2
	DefaultBackoffBase = 25 * time.Millisecond
	DefaultBackoffCap  = 500 * time.Millisecond
	DefaultHedgeAfter  = 250 * time.Millisecond
	DefaultMergeMargin = 50 * time.Millisecond
)

func (p Policy) withDefaults() Policy {
	if p.Timeout == 0 {
		p.Timeout = DefaultTimeout
	}
	if p.Retries == 0 {
		p.Retries = DefaultRetries
	} else if p.Retries < 0 {
		p.Retries = 0
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = DefaultBackoffBase
	}
	if p.BackoffCap <= 0 {
		p.BackoffCap = DefaultBackoffCap
	}
	if p.HedgeAfter == 0 {
		p.HedgeAfter = DefaultHedgeAfter
	}
	if p.MergeMargin <= 0 {
		p.MergeMargin = DefaultMergeMargin
	}
	if p.BreakerAfter == 0 {
		p.BreakerAfter = DefaultBreakerAfter
	}
	if p.BreakerCooldown <= 0 {
		p.BreakerCooldown = DefaultBreakerCooldown
	}
	return p
}

// ShardError is a non-2xx HTTP answer from a shard, preserved with its
// status so the coordinator can distinguish a query problem (4xx: every
// shard would refuse it the same way — propagate) from a shard problem
// (5xx: retry, then degrade).
type ShardError struct {
	Shard  string
	Status int
	Msg    string
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("scatter: %s answered HTTP %d: %s", e.Shard, e.Status, e.Msg)
}

// HTTPStatus extracts the shard-reported status from an error chain (0
// when the error is not a ShardError — a transport failure or timeout).
func HTTPStatus(err error) int {
	var se *ShardError
	if errors.As(err, &se) {
		return se.Status
	}
	return 0
}

// ShardHealth is one shard's liveness view, as tracked by its client.
type ShardHealth struct {
	Name      string   `json:"name"`
	Endpoints []string `json:"endpoints"`
	// Healthy means the last contact succeeded (no consecutive failures
	// since).
	Healthy bool `json:"healthy"`
	// LastSeen is the wall-clock time of the last successful response
	// (RFC3339, empty when the shard has never answered).
	LastSeen string `json:"last_seen,omitempty"`
	// SinceSeenMS is how long ago that was, in milliseconds (-1 when
	// never).
	SinceSeenMS int64 `json:"since_seen_ms"`
	// ConsecutiveFails counts attempts failed since the last success.
	ConsecutiveFails int64 `json:"consecutive_fails"`
	// Requests and Hedges count attempts sent (hedges included) and
	// hedged duplicates specifically.
	Requests int64 `json:"requests"`
	Hedges   int64 `json:"hedges"`
	// Breaker is the circuit breaker state: "closed", "open", "half-open",
	// or "disabled". BreakerOpens counts transitions into the open state;
	// BreakerRetryMS is the time until the next half-open trial when open.
	Breaker        string `json:"breaker"`
	BreakerOpens   int64  `json:"breaker_opens"`
	BreakerRetryMS int64  `json:"breaker_retry_ms,omitempty"`
}

// EpochHook lets the topology owner (the Coordinator) stamp its ring
// epoch on every shard call and self-heal when a shard answers 409 with
// a different RingState: adopt the shard's newer state, or push its own
// to a stale shard, then retry transparently.
type EpochHook interface {
	// Epoch is the ring epoch to stamp on outgoing requests.
	Epoch() int64
	// HealEpoch reconciles a shard's 409 RingState with the caller's view
	// and reports whether a retry is worthwhile.
	HealEpoch(ctx context.Context, sc *ShardClient, st RingState) bool
}

// maxEpochHeals bounds how many epoch reconciliations one logical call
// will attempt before surfacing the EpochError — two sides flapping
// between states must not spin a request forever.
const maxEpochHeals = 2

// ShardClient talks to one shard (and its replicas) under the policy's
// robustness machinery. It is safe for concurrent use.
type ShardClient struct {
	name      string
	index     int
	endpoints []string
	policy    Policy
	httpc     *http.Client
	hook      EpochHook // nil outside a coordinator

	mu     sync.Mutex
	cursor int // replica rotation

	lastSeenNano atomic.Int64
	fails        atomic.Int64
	requests     atomic.Int64
	hedges       atomic.Int64

	// Circuit breaker state (see breaker.go).
	brState atomic.Int32 // breakerState
	brUntil atomic.Int64 // unixnano: when the open state admits a trial
	brOpens atomic.Int64
}

// newShardClient builds the client for shard i. transport may be nil
// (http.DefaultTransport-ish pooling) and exists so chaos tests can inject
// a replica.FaultRT between coordinator and shard.
func newShardClient(i int, endpoints []string, policy Policy, transport http.RoundTripper, hook EpochHook) *ShardClient {
	if transport == nil {
		transport = &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   policy.Timeout,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			ResponseHeaderTimeout: policy.Timeout,
			IdleConnTimeout:       90 * time.Second,
			MaxIdleConnsPerHost:   16,
		}
	}
	return &ShardClient{
		name:      ShardName(i),
		index:     i,
		endpoints: append([]string(nil), endpoints...),
		policy:    policy,
		hook:      hook,
		// No client-level timeout: per-attempt contexts bound every
		// request, and a fixed client timeout would fight the
		// context-derived deadlines.
		httpc: &http.Client{Transport: transport},
	}
}

// Name returns the shard's canonical name ("shard-0").
func (sc *ShardClient) Name() string { return sc.name }

// Endpoints returns the shard's replica URLs.
func (sc *ShardClient) Endpoints() []string { return append([]string(nil), sc.endpoints...) }

// Call performs one logical request against the shard under the full
// policy: per-attempt deadlines derived from ctx, bounded retries with
// backoff+jitter rotating across replicas, and hedged duplicates for
// stragglers. A 4xx answer is returned as a *ShardError without retrying
// (the query is at fault, not the shard); connection failures, timeouts,
// 429 and 5xx are retried until the budget runs out.
func (sc *ShardClient) Call(ctx context.Context, method, path string, body, out any) error {
	return sc.CallIdem(ctx, method, path, "", body, out)
}

// CallIdem is Call with an Idempotency-Key header. Every mutating request
// a coordinator routes MUST carry one: the retry and hedging machinery
// deliberately resends requests, and only the shard-side idempotency
// machinery makes that safe for writes.
func (sc *ShardClient) CallIdem(ctx context.Context, method, path, idemKey string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		payload, err = json.Marshal(body)
		if err != nil {
			return err
		}
	}
	attempts := 1 + sc.policy.Retries
	var lastErr error
	heals := 0
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		// An open breaker rejects without attempting — the whole point is
		// that a dead shard costs nothing, so no retry budget is spent and
		// the loop exits immediately rather than backing off.
		if ok, retryIn := sc.allowAttempt(); !ok {
			return &BreakerOpenError{Shard: sc.name, RetryAfter: retryIn}
		}
		status, data, err := sc.attemptHedged(ctx, method, path, idemKey, payload)
		switch {
		case err != nil:
			// Transport-level failure or attempt timeout.
			sc.markFail()
			lastErr = err
		case status == http.StatusTooManyRequests || status >= 500:
			// Overload shed or server fault: worth another attempt. Only a
			// 5xx counts against shard health — a 429 is the admission gate
			// doing its job on a live shard.
			if status >= 500 {
				sc.markFail()
			} else {
				sc.markSeen()
			}
			lastErr = &ShardError{Shard: sc.name, Status: status, Msg: errMsg(data)}
		case status >= 400:
			// The shard is alive and rejected the request. A 409 carrying a
			// RingState is the epoch gate — reconcile topologies and retry
			// without spending the retry budget; any other 4xx is the
			// caller's problem and retrying cannot help.
			sc.markSeen()
			if status == http.StatusConflict && sc.hook != nil {
				if st, ok := decodeRingState(data); ok {
					if heals < maxEpochHeals && sc.hook.HealEpoch(ctx, sc, st) {
						heals++
						a--
						continue
					}
					return &EpochError{Shard: sc.index, State: st}
				}
			}
			return &ShardError{Shard: sc.name, Status: status, Msg: errMsg(data)}
		default:
			sc.markSeen()
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("scatter: decoding %s response from %s: %w", path, sc.name, err)
			}
			return nil
		}
		if a < attempts-1 {
			if err := sc.backoff(ctx, a+1); err != nil {
				return err
			}
		}
	}
	return fmt.Errorf("scatter: %s unavailable after %d attempts: %w", sc.name, attempts, lastErr)
}

// attemptHedged runs one attempt: a request to the next replica, plus — if
// it is still in flight after HedgeAfter — a duplicate to the replica
// after that, first answer wins. Returns (status, body, nil) for any HTTP
// answer and a non-nil error only for transport failures/timeouts.
func (sc *ShardClient) attemptHedged(ctx context.Context, method, path, idemKey string, payload []byte) (int, []byte, error) {
	budget := sc.policy.Timeout
	if dl, ok := ctx.Deadline(); ok {
		remaining := time.Until(dl) - sc.policy.MergeMargin
		if remaining <= 0 {
			return 0, nil, fmt.Errorf("scatter: no budget left for %s: %w", sc.name, context.DeadlineExceeded)
		}
		if remaining < budget {
			budget = remaining
		}
	}
	actx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()

	type reply struct {
		status int
		data   []byte
		err    error
	}
	ch := make(chan reply, 2) // buffered: a canceled loser must not leak its goroutine
	send := func(endpoint string) {
		status, data, err := sc.once(actx, method, endpoint+path, idemKey, payload)
		ch <- reply{status, data, err}
	}
	go send(sc.nextEndpoint())
	inflight := 1

	var hedgeC <-chan time.Time
	if sc.policy.HedgeAfter > 0 {
		t := time.NewTimer(sc.policy.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	var last reply
	for {
		select {
		case rep := <-ch:
			inflight--
			if rep.err == nil && rep.status != http.StatusTooManyRequests && rep.status < 500 {
				return rep.status, rep.data, nil
			}
			last = rep
			if inflight == 0 {
				// Every launched request has answered (badly). A fast
				// failure before the hedge timer goes back to the retry
				// loop — hedging is for stragglers, not for errors.
				return last.status, last.data, last.err
			}
		case <-hedgeC:
			hedgeC = nil
			if inflight > 0 {
				sc.hedges.Add(1)
				go send(sc.nextEndpoint())
				inflight++
			}
		case <-actx.Done():
			// The attempt deadline cancels the in-flight requests; their
			// replies land in the buffered channel and are discarded.
			return 0, nil, fmt.Errorf("scatter: %s attempt exceeded %s budget: %w", sc.name, budget, actx.Err())
		}
	}
}

// once sends a single HTTP request and reads the whole (bounded) body.
func (sc *ShardClient) once(ctx context.Context, method, url, idemKey string, payload []byte) (int, []byte, error) {
	sc.requests.Add(1)
	var rdr io.Reader
	if payload != nil {
		rdr = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rdr)
	if err != nil {
		return 0, nil, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	if sc.hook != nil {
		req.Header.Set(RingEpochHeader, formatEpoch(sc.hook.Epoch()))
	}
	resp, err := sc.httpc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	// Shard answers are JSON result sets; 64 MiB is far beyond any of
	// them and keeps a corrupted peer from ballooning coordinator memory.
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// Probe makes one cheap liveness attempt (no retries, no hedging, 500ms
// cap) against the shard's replicas in rotation order and records the
// outcome, so readiness endpoints reflect shards the coordinator has not
// queried recently.
func (sc *ShardClient) Probe(ctx context.Context) bool {
	actx, cancel := context.WithTimeout(ctx, 500*time.Millisecond)
	defer cancel()
	for range sc.endpoints {
		status, _, err := sc.once(actx, http.MethodGet, sc.nextEndpoint()+"/healthz", "", nil)
		if err == nil && status == http.StatusOK {
			sc.markSeen()
			return true
		}
	}
	sc.markFail()
	return false
}

// Health snapshots the shard's liveness counters.
func (sc *ShardClient) Health() ShardHealth {
	h := ShardHealth{
		Name:             sc.name,
		Endpoints:        sc.Endpoints(),
		ConsecutiveFails: sc.fails.Load(),
		Requests:         sc.requests.Load(),
		Hedges:           sc.hedges.Load(),
		SinceSeenMS:      -1,
	}
	if nano := sc.lastSeenNano.Load(); nano != 0 {
		seen := time.Unix(0, nano)
		h.LastSeen = seen.UTC().Format(time.RFC3339Nano)
		h.SinceSeenMS = time.Since(seen).Milliseconds()
	}
	h.Breaker = sc.BreakerState()
	h.BreakerOpens = sc.brOpens.Load()
	if breakerState(sc.brState.Load()) == breakerOpen {
		if rem := sc.brUntil.Load() - time.Now().UnixNano(); rem > 0 {
			h.BreakerRetryMS = time.Duration(rem).Milliseconds()
		}
	}
	h.Healthy = h.ConsecutiveFails == 0 && h.LastSeen != ""
	return h
}

func (sc *ShardClient) markSeen() {
	sc.lastSeenNano.Store(time.Now().UnixNano())
	sc.fails.Store(0)
	sc.breakerOnSuccess()
}

func (sc *ShardClient) markFail() {
	sc.breakerOnFailure(sc.fails.Add(1))
}

// nextEndpoint rotates through the shard's replicas so retries and hedges
// land on a different node than the attempt they follow.
func (sc *ShardClient) nextEndpoint() string {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	ep := sc.endpoints[sc.cursor%len(sc.endpoints)]
	sc.cursor++
	return ep
}

// backoff sleeps before retry `attempt` (1-based): exponential from
// BackoffBase, capped at BackoffCap, plus up to 50% jitter. A done ctx
// cuts the sleep short and returns its error.
func (sc *ShardClient) backoff(ctx context.Context, attempt int) error {
	d := sc.policy.BackoffBase << (attempt - 1)
	if d > sc.policy.BackoffCap {
		d = sc.policy.BackoffCap
	}
	d += time.Duration(mathrand.Int64N(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// decodeRingState extracts the "ring" field a shard's epoch-gate 409
// (and its ring-push rejection) carries. A 409 without one is an
// ordinary conflict (an id collision on insert) and must pass through
// untouched.
func decodeRingState(data []byte) (RingState, bool) {
	var body struct {
		Ring *RingState `json:"ring"`
	}
	if json.Unmarshal(data, &body) == nil && body.Ring != nil {
		return *body.Ring, true
	}
	return RingState{}, false
}

// pushState posts a RingState to the shard's ring endpoint directly —
// one attempt, no heal recursion. Returns the state the shard holds
// afterwards and whether the push was accepted.
func (sc *ShardClient) pushState(ctx context.Context, st RingState) (RingState, bool) {
	payload, err := json.Marshal(st)
	if err != nil {
		return RingState{}, false
	}
	actx, cancel := context.WithTimeout(ctx, sc.policy.Timeout)
	defer cancel()
	status, data, err := sc.once(actx, http.MethodPost, sc.nextEndpoint()+"/api/cluster/ring", "", payload)
	if err != nil {
		return RingState{}, false
	}
	if status == http.StatusOK {
		sc.markSeen()
		var got RingState
		if json.Unmarshal(data, &got) != nil {
			got = st
		}
		return got, true
	}
	if got, ok := decodeRingState(data); ok {
		return got, false
	}
	return RingState{}, false
}

// errMsg extracts the server's {"error": ...} message from an error body,
// falling back to the raw bytes.
func errMsg(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	s := string(data)
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}
