package scatter

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// testPolicy is a fully-specified fast policy for direct newShardClient
// tests (which, unlike New, do not apply defaults).
func testPolicy() Policy {
	return Policy{
		Timeout:     2 * time.Second,
		Retries:     2,
		BackoffBase: time.Millisecond,
		BackoffCap:  2 * time.Millisecond,
		HedgeAfter:  -1, // no hedging unless the test wants it
		MergeMargin: 5 * time.Millisecond,
	}.withDefaults()
}

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.Timeout != DefaultTimeout || p.Retries != DefaultRetries ||
		p.BackoffBase != DefaultBackoffBase || p.BackoffCap != DefaultBackoffCap ||
		p.HedgeAfter != DefaultHedgeAfter || p.MergeMargin != DefaultMergeMargin {
		t.Errorf("defaults not applied: %+v", p)
	}
	// Negative disables, zero defaults.
	p = Policy{Retries: -1, HedgeAfter: -time.Second}.withDefaults()
	if p.Retries != 0 {
		t.Errorf("Retries = %d, want 0 (disabled)", p.Retries)
	}
	if p.HedgeAfter >= 0 {
		t.Errorf("HedgeAfter = %v, want negative (disabled)", p.HedgeAfter)
	}
}

func TestCallRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]int{"ok": 1})
	}))
	defer ts.Close()
	sc := newShardClient(0, []string{ts.URL}, testPolicy(), nil, nil)
	var out map[string]int
	if err := sc.Call(context.Background(), http.MethodGet, "/x", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out["ok"] != 1 {
		t.Errorf("out = %v", out)
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d calls, want 3 (two 500s retried)", n)
	}
	if h := sc.Health(); !h.Healthy {
		t.Errorf("shard unhealthy after eventual success: %+v", h)
	}
}

func TestCall4xxDoesNotRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]string{"error": "no such thing"})
	}))
	defer ts.Close()
	sc := newShardClient(0, []string{ts.URL}, testPolicy(), nil, nil)
	err := sc.Call(context.Background(), http.MethodGet, "/x", nil, nil)
	if err == nil {
		t.Fatal("no error for a 404")
	}
	if HTTPStatus(err) != http.StatusNotFound {
		t.Errorf("HTTPStatus = %d, want 404 (err: %v)", HTTPStatus(err), err)
	}
	var se *ShardError
	if !errors.As(err, &se) || se.Msg != "no such thing" {
		t.Errorf("err = %v, want ShardError with server message", err)
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("server saw %d calls, want 1 (4xx must not retry)", n)
	}
	// A 4xx proves the shard alive: it must not count against health.
	if h := sc.Health(); !h.Healthy {
		t.Errorf("shard unhealthy after a 4xx answer: %+v", h)
	}
}

func TestCallExhaustsRetryBudget(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	sc := newShardClient(0, []string{ts.URL}, testPolicy(), nil, nil)
	err := sc.Call(context.Background(), http.MethodGet, "/x", nil, nil)
	if err == nil {
		t.Fatal("no error after exhausted retries")
	}
	if n := calls.Load(); n != 3 {
		t.Errorf("server saw %d calls, want 3 (1 + 2 retries)", n)
	}
	if h := sc.Health(); h.Healthy || h.ConsecutiveFails == 0 {
		t.Errorf("shard reported healthy after a 5xx streak: %+v", h)
	}
}

func Test429RetriesWithoutHealthPenalty(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(map[string]int{"ok": 1})
	}))
	defer ts.Close()
	sc := newShardClient(0, []string{ts.URL}, testPolicy(), nil, nil)
	var out map[string]int
	if err := sc.Call(context.Background(), http.MethodGet, "/x", nil, &out); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 2 {
		t.Errorf("server saw %d calls, want 2", n)
	}
	if h := sc.Health(); !h.Healthy || h.ConsecutiveFails != 0 {
		t.Errorf("a 429 dented shard health: %+v", h)
	}
}

// A straggler replica is hedged: the duplicate goes to the next replica
// and the first answer wins, well before the straggler finishes.
func TestHedgedRequestBeatsStraggler(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(400 * time.Millisecond)
		json.NewEncoder(w).Encode(map[string]string{"from": "slow"})
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]string{"from": "fast"})
	}))
	defer fast.Close()
	p := testPolicy()
	p.HedgeAfter = 30 * time.Millisecond
	sc := newShardClient(0, []string{slow.URL, fast.URL}, p, nil, nil)
	start := time.Now()
	var out map[string]string
	if err := sc.Call(context.Background(), http.MethodGet, "/x", nil, &out); err != nil {
		t.Fatal(err)
	}
	if out["from"] != "fast" {
		t.Errorf("answer came from %q, want the hedged fast replica", out["from"])
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Errorf("took %v, hedge should have answered long before the straggler", elapsed)
	}
	if h := sc.Health(); h.Hedges != 1 {
		t.Errorf("hedges = %d, want 1", h.Hedges)
	}
}

// The per-attempt budget is derived from the request context: a nearly
// expired context fails fast instead of waiting out Policy.Timeout.
func TestDeadlineBoundsAttempt(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(2 * time.Second):
		}
	}))
	defer ts.Close()
	p := testPolicy()
	p.MergeMargin = 10 * time.Millisecond
	sc := newShardClient(0, []string{ts.URL}, p, nil, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := sc.Call(ctx, http.MethodGet, "/x", nil, nil)
	if err == nil {
		t.Fatal("no error under an expired deadline")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("took %v, the context deadline should have cut the attempt short", elapsed)
	}
}

func TestBackoffHonorsCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()
	p := testPolicy()
	p.Retries = 5
	p.BackoffBase = time.Second
	p.BackoffCap = 2 * time.Second
	sc := newShardClient(0, []string{ts.URL}, p, nil, nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := sc.Call(ctx, http.MethodGet, "/x", nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("cancel took %v to cut the backoff sleep", elapsed)
	}
}

// fakeShard serves the minimal shard surface the coordinator machinery
// needs: /healthz and /api/stats with a configurable max id.
func fakeShard(t *testing.T, maxID int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			fmt.Fprint(w, `{"status":"ok"}`)
		case "/api/stats":
			json.NewEncoder(w).Encode(map[string]any{"shapes": 0, "max_id": maxID})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestAllocIDSeedsFromShardStats(t *testing.T) {
	specs := []ShardSpec{
		{Endpoints: []string{fakeShard(t, 100).URL}},
		{Endpoints: []string{fakeShard(t, 250).URL}},
	}
	c, err := New(specs, Policy{BackoffBase: time.Millisecond, BackoffCap: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for shard := 0; shard < 2; shard++ {
		id, err := c.AllocID(context.Background(), shard)
		if err != nil {
			t.Fatal(err)
		}
		if id <= 250 {
			t.Errorf("allocated id %d, want > 250 (the fleet max)", id)
		}
		if owner := c.Ring().Owner(id); owner != shard {
			t.Errorf("id %d owned by shard %d, requested %d", id, owner, shard)
		}
	}
	// A conflict report advances the counter past the taken id.
	c.BumpID(10_000)
	id, err := c.AllocID(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if id <= 10_000 {
		t.Errorf("allocated id %d after BumpID(10000)", id)
	}
}

func TestAllocIDRejectsBadShard(t *testing.T) {
	c, err := New([]ShardSpec{{Endpoints: []string{fakeShard(t, 0).URL}}}, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AllocID(context.Background(), 7); err == nil {
		t.Error("AllocID accepted an out-of-range shard index")
	}
}

func TestProbeTracksLiveness(t *testing.T) {
	ts := fakeShard(t, 0)
	c, err := New([]ShardSpec{{Endpoints: []string{ts.URL}}}, Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if n := c.Probe(context.Background()); n != 1 {
		t.Fatalf("Probe = %d healthy, want 1", n)
	}
	h := c.Health()
	if len(h) != 1 || !h[0].Healthy || h[0].LastSeen == "" {
		t.Errorf("health = %+v", h)
	}
	ts.Close()
	if n := c.Probe(context.Background()); n != 0 {
		t.Fatalf("Probe = %d healthy after shutdown, want 0", n)
	}
	if h := c.Health(); h[0].Healthy {
		t.Errorf("shard still healthy after failed probe: %+v", h[0])
	}
}
