package scatter

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"threedess/internal/shapedb"
)

// Live shard rebalancing (DESIGN.md §14). The Migrator drives a cluster
// from N shards to M through four fenced, individually-persisted
// phases:
//
//	prepare  — epoch E+1: writes route by the target ring, reads by the
//	           old one; pushed to every fleet shard before any copy.
//	copy     — every record whose target-ring owner differs from its
//	           current shard is exported (exact journal frame bytes),
//	           imported idempotently on its new owner, and CRC-verified
//	           batch by batch.
//	cutover  — epoch E+2: reads double-route over both rings (merged,
//	           deduplicated); pushed until EVERY shard acks — the gate
//	           that makes the delete below safe.
//	drop     — sources delete moved records; epoch E+3 retires the old
//	           ring.
//
// Progress lands in a rebalance.state journal (fsynced JSON lines), so
// a crashed driver resumes from the last verified batch at a higher
// fencing term instead of restarting — and a superseded driver's pushes
// and imports are rejected fleet-wide by that same term.

// ErrSuperseded reports that another driver took over the migration at
// a higher fencing term; this driver must stop immediately.
var ErrSuperseded = errors.New("scatter: migration superseded by a newer driver")

// MigrateOptions configures one rebalance run.
type MigrateOptions struct {
	// Target is the shard count to rebalance to. Zero resumes whatever an
	// existing state journal describes.
	Target int
	// Add supplies specs for new shard slots when growing (slot indexes
	// current..Target-1). Ignored on resume if the state journal already
	// names the fleet.
	Add []ShardSpec
	// BatchSize bounds how many records move per copy batch (default 64).
	BatchSize int
	// StatePath is the rebalance.state journal. Empty disables
	// persistence — the migration still runs, but cannot resume a crash.
	StatePath string
	// Holder identifies this driver for fencing (default "rebalance").
	Holder string
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// MigrationStatus is the admin view of a migration.
type MigrationStatus struct {
	Active  bool   `json:"active"`
	Phase   string `json:"phase"`
	Term    int64  `json:"term"`
	Epoch   int64  `json:"epoch"`
	From    int    `json:"from"`
	To      int    `json:"to"`
	Copied  int64  `json:"copied"`
	Dropped int64  `json:"dropped"`
	Err     string `json:"error,omitempty"`
}

// Wire types of the shard-side migration endpoints (internal/server
// implements them; the Migrator and the tests speak them).

// MovedRequest asks a shard to enumerate records it holds whose
// write-ring owner is some other shard — the records that must move.
// Paged by (After, Limit) over ascending ids.
type MovedRequest struct {
	After int64 `json:"after"`
	Limit int   `json:"limit"`
}

// MovedResponse answers MovedRequest.
type MovedResponse struct {
	IDs  []int64 `json:"ids"`
	More bool    `json:"more"`
}

// ExportRequest asks a shard to export records by id.
type ExportRequest struct {
	IDs []int64 `json:"ids"`
}

// ExportResponse carries exported records.
type ExportResponse struct {
	Records []shapedb.ExportFrame `json:"records"`
}

// ImportRequest lands exported records on their new owner, fenced by
// the driver's term.
type ImportRequest struct {
	Term    int64                 `json:"term"`
	Holder  string                `json:"holder"`
	Records []shapedb.ExportFrame `json:"records"`
}

// ImportResponse answers ImportRequest.
type ImportResponse struct {
	Added int `json:"added"`
}

// CRCRequest asks a shard for canonical content CRCs by id.
type CRCRequest struct {
	IDs []int64 `json:"ids"`
}

// CRCResponse answers CRCRequest: CRCs[i] belongs to IDs[i]; Missing
// lists requested ids the shard does not hold.
type CRCResponse struct {
	IDs     []int64  `json:"ids"`
	CRCs    []uint32 `json:"crcs"`
	Missing []int64  `json:"missing,omitempty"`
}

// DropMovedRequest tells a source shard to delete every record whose
// serving-ring owner is no longer itself — only ever sent after cutover
// was acked by the whole fleet, and fenced by the driver's term.
type DropMovedRequest struct {
	Term   int64  `json:"term"`
	Holder string `json:"holder"`
}

// DropMovedResponse answers DropMovedRequest.
type DropMovedResponse struct {
	Dropped int `json:"dropped"`
}

// migrationEvent is one fsynced JSON line of the rebalance.state
// journal.
type migrationEvent struct {
	Event     string     `json:"event"` // begin | range | source | cutover | dropped | done
	Term      int64      `json:"term,omitempty"`
	Holder    string     `json:"holder,omitempty"`
	From      int        `json:"from,omitempty"`
	To        int        `json:"to,omitempty"`
	BaseEpoch int64      `json:"base_epoch,omitempty"`
	Endpoints [][]string `json:"endpoints,omitempty"`
	Source    int        `json:"source"`
	After     int64      `json:"after,omitempty"`
	Copied    int64      `json:"copied,omitempty"`
}

// migrationPlan is what a state journal (or fresh options) resolves to.
type migrationPlan struct {
	from, to  int
	baseEpoch int64
	term      int64 // highest term seen so far (new runs fence above it)
	endpoints [][]string
	// progress
	afterBySource map[int]int64
	doneSources   map[int]bool
	cutover       bool
	droppedBy     map[int]bool
	done          bool
}

// Migrator drives one rebalance over a live Coordinator.
type Migrator struct {
	c    *Coordinator
	opts MigrateOptions

	mu     sync.Mutex
	status MigrationStatus
	stateF *os.File
}

// NewMigrator prepares a rebalance (or the resume of one) without
// starting it. Call Run to drive it.
func NewMigrator(c *Coordinator, opts MigrateOptions) *Migrator {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 64
	}
	if opts.Holder == "" {
		opts.Holder = "rebalance"
	}
	return &Migrator{c: c, opts: opts}
}

// Status snapshots the migration's progress.
func (m *Migrator) Status() MigrationStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.status
}

func (m *Migrator) setPhase(phase string) {
	m.mu.Lock()
	m.status.Phase = phase
	m.mu.Unlock()
	m.logf("rebalance: %s", phase)
}

func (m *Migrator) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

// loadPlan reads the state journal (if any) and folds in the options.
// A torn final line (crash mid-append) is ignored.
func (m *Migrator) loadPlan() (*migrationPlan, error) {
	p := &migrationPlan{
		afterBySource: map[int]int64{},
		doneSources:   map[int]bool{},
		droppedBy:     map[int]bool{},
	}
	if m.opts.StatePath != "" {
		data, err := os.ReadFile(m.opts.StatePath)
		if err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("scatter: reading %s: %w", m.opts.StatePath, err)
		}
		for _, line := range splitLines(data) {
			var ev migrationEvent
			if json.Unmarshal(line, &ev) != nil {
				continue // torn tail from a crash mid-append
			}
			switch ev.Event {
			case "begin":
				// A new begin supersedes all earlier progress (a previous,
				// completed migration — or this one restarted at a higher
				// term, whose progress events follow).
				p.from, p.to = ev.From, ev.To
				p.baseEpoch = ev.BaseEpoch
				p.endpoints = ev.Endpoints
				if ev.Term > p.term {
					p.term = ev.Term
				}
				if p.done {
					// The previous migration finished; this begin starts a
					// fresh one with clean progress.
					p.afterBySource = map[int]int64{}
					p.doneSources = map[int]bool{}
					p.droppedBy = map[int]bool{}
					p.cutover = false
					p.done = false
				}
			case "range":
				if ev.After > p.afterBySource[ev.Source] {
					p.afterBySource[ev.Source] = ev.After
				}
			case "source":
				p.doneSources[ev.Source] = true
			case "cutover":
				p.cutover = true
			case "dropped":
				p.droppedBy[ev.Source] = true
			case "done":
				p.done = true
			}
		}
	}
	cur := m.c.State()
	if p.endpoints == nil || p.done {
		// Fresh migration: the plan comes from the options.
		if m.opts.Target < 1 {
			return nil, fmt.Errorf("scatter: rebalance needs a target shard count")
		}
		if p.done {
			*p = migrationPlan{
				afterBySource: map[int]int64{},
				doneSources:   map[int]bool{},
				droppedBy:     map[int]bool{},
				term:          p.term,
			}
		}
		p.from = cur.Shards
		p.to = m.opts.Target
		p.baseEpoch = cur.Epoch
		specs := append([]ShardSpec(nil), m.c.Specs()...)
		specs = append(specs, m.opts.Add...)
		if len(specs) < maxInt(p.from, p.to) {
			return nil, fmt.Errorf("scatter: rebalance %d→%d needs %d shard specs, have %d (use Add for new shards)",
				p.from, p.to, maxInt(p.from, p.to), len(specs))
		}
		p.endpoints = make([][]string, maxInt(p.from, p.to))
		for i := range p.endpoints {
			p.endpoints[i] = specs[i].Endpoints
		}
	} else if m.opts.Target != 0 && m.opts.Target != p.to {
		return nil, fmt.Errorf("scatter: state journal describes a %d→%d migration in flight; finish or clear it before rebalancing to %d",
			p.from, p.to, m.opts.Target)
	}
	if cur.Term > p.term {
		p.term = cur.Term
	}
	if p.from == p.to {
		return nil, fmt.Errorf("scatter: cluster already has %d shards", p.to)
	}
	return p, nil
}

// LoadPlan resolves the state journal and options into a migration plan
// without running anything — the dry-run probe a restarting coordinator
// uses to decide whether an interrupted migration needs resuming. The
// error explains why there is nothing to run (no journal and no target,
// the journal's migration already finished, ...).
func (m *Migrator) LoadPlan() (from, to int, err error) {
	p, err := m.loadPlan()
	if err != nil {
		return 0, 0, err
	}
	return p.from, p.to, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func splitLines(data []byte) [][]byte {
	var out [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			if i > start {
				out = append(out, data[start:i])
			}
			start = i + 1
		}
	}
	if start < len(data) {
		out = append(out, data[start:])
	}
	return out
}

// persist appends one fsynced event line to the state journal.
func (m *Migrator) persist(ev migrationEvent) error {
	if m.opts.StatePath == "" {
		return nil
	}
	if m.stateF == nil {
		// A coordinator's -data directory may exist solely for this journal
		// (its shape store is in-memory), so nothing else has created it.
		if dir := filepath.Dir(m.opts.StatePath); dir != "." {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return fmt.Errorf("scatter: creating %s: %w", dir, err)
			}
		}
		f, err := os.OpenFile(m.opts.StatePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("scatter: opening %s: %w", m.opts.StatePath, err)
		}
		m.stateF = f
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if _, err := m.stateF.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("scatter: appending to %s: %w", m.opts.StatePath, err)
	}
	if err := m.stateF.Sync(); err != nil {
		return fmt.Errorf("scatter: syncing %s: %w", m.opts.StatePath, err)
	}
	return nil
}

// Run drives the migration to completion (or ctx cancellation / a
// fencing loss). It is safe to call again after a failure: every phase
// resumes from the persisted state.
func (m *Migrator) Run(ctx context.Context) (err error) {
	defer func() {
		m.mu.Lock()
		m.status.Active = false
		if err != nil {
			m.status.Err = err.Error()
		}
		m.mu.Unlock()
		if m.stateF != nil {
			m.stateF.Close()
			m.stateF = nil
		}
	}()

	p, err := m.loadPlan()
	if err != nil {
		return err
	}
	term := p.term + 1 // fence above every driver that came before us
	m.mu.Lock()
	m.status = MigrationStatus{Active: true, Term: term, From: p.from, To: p.to}
	m.mu.Unlock()

	if err := m.persist(migrationEvent{
		Event: "begin", Term: term, Holder: m.opts.Holder,
		From: p.from, To: p.to, BaseEpoch: p.baseEpoch, Endpoints: p.endpoints,
	}); err != nil {
		return err
	}

	specs := m.specsFor(p.endpoints)
	state1 := RingState{Epoch: p.baseEpoch + 1, Term: term, Holder: m.opts.Holder,
		Shards: p.from, Target: p.to, Endpoints: p.endpoints}
	state2 := RingState{Epoch: p.baseEpoch + 2, Term: term, Holder: m.opts.Holder,
		Shards: p.to, Draining: p.from, Endpoints: p.endpoints}
	state3 := RingState{Epoch: p.baseEpoch + 3, Term: term, Holder: m.opts.Holder,
		Shards: p.to, Endpoints: p.endpoints[:p.to]}

	writeRing, err := NewRing(p.to)
	if err != nil {
		return err
	}

	if !p.cutover {
		// Phase 1: prepare. Every fleet shard must adopt the transitional
		// state before any record moves — writes start routing by the
		// target ring the moment this lands.
		m.setPhase("prepare")
		m.setEpoch(state1.Epoch)
		if err := m.c.SetTopology(state1, specs); err != nil {
			return err
		}
		if err := m.pushAll(ctx, state1); err != nil {
			return err
		}

		// Phase 2: copy + per-batch verify, per source shard.
		m.setPhase("copy")
		for src := 0; src < p.from; src++ {
			if p.doneSources[src] {
				continue
			}
			if err := m.copySource(ctx, src, p.afterBySource[src], writeRing, term); err != nil {
				return err
			}
		}

		// Phase 3: full verification sweep — every moved id re-enumerated
		// from its source and CRC-compared against its destination, with
		// bounded repair rounds. Only a fully verified fleet cuts over.
		m.setPhase("verify")
		for src := 0; src < p.from; src++ {
			if p.doneSources[src] {
				continue
			}
			if err := m.verifySource(ctx, src, writeRing, term); err != nil {
				return err
			}
			if err := m.persist(migrationEvent{Event: "source", Source: src}); err != nil {
				return err
			}
		}

		// Phase 4: cutover. The new ring becomes authoritative for reads,
		// with the old ring double-routed until finalize. EVERY shard must
		// ack this state — it is the gate that makes the drop safe.
		m.setPhase("cutover")
		m.setEpoch(state2.Epoch)
		if err := m.c.SetTopology(state2, specs); err != nil {
			return err
		}
		if err := m.pushAll(ctx, state2); err != nil {
			return err
		}
		if err := m.persist(migrationEvent{Event: "cutover"}); err != nil {
			return err
		}
	} else {
		// Resuming after cutover: re-fence the fleet at our higher term
		// before touching anything.
		m.setPhase("cutover")
		m.setEpoch(state2.Epoch)
		if err := m.c.SetTopology(state2, specs); err != nil {
			return err
		}
		if err := m.pushAll(ctx, state2); err != nil {
			return err
		}
	}

	// Phase 5: drop. Sources delete every record the new ring routes
	// elsewhere. Safe because the whole fleet acked cutover: every reader
	// already finds the moved copies on their new owners.
	m.setPhase("drop")
	for src := 0; src < p.from; src++ {
		if p.droppedBy[src] {
			continue
		}
		var resp DropMovedResponse
		if err := m.fenced(m.c.Shard(src).Call(ctx, http.MethodPost, "/api/cluster/dropmoved",
			DropMovedRequest{Term: term, Holder: m.opts.Holder}, &resp)); err != nil {
			return fmt.Errorf("scatter: dropping moved records on %s: %w", ShardName(src), err)
		}
		m.mu.Lock()
		m.status.Dropped += int64(resp.Dropped)
		m.mu.Unlock()
		if err := m.persist(migrationEvent{Event: "dropped", Source: src}); err != nil {
			return err
		}
	}

	// Phase 6: finalize. Single-ring state at the final epoch, pushed to
	// the whole old fleet (removed shards learn they are out), then the
	// coordinator trims its own view.
	m.setPhase("finalize")
	m.setEpoch(state3.Epoch)
	if err := m.pushAll(ctx, state3); err != nil {
		return err
	}
	if err := m.c.SetTopology(state3, specs[:p.to]); err != nil {
		return err
	}
	if err := m.persist(migrationEvent{Event: "done"}); err != nil {
		return err
	}
	m.setPhase("done")
	return nil
}

func (m *Migrator) setEpoch(e int64) {
	m.mu.Lock()
	m.status.Epoch = e
	m.mu.Unlock()
}

// specsFor builds fleet specs from persisted endpoints, carrying over
// the coordinator's transports for slots whose endpoints are unchanged
// (fault-injecting test transports must survive a resume).
func (m *Migrator) specsFor(endpoints [][]string) []ShardSpec {
	have := m.c.Specs()
	specs := make([]ShardSpec, len(endpoints))
	for i, eps := range endpoints {
		specs[i] = ShardSpec{Endpoints: eps}
		if i < len(have) && equalStrings(have[i].Endpoints, eps) {
			specs[i].Transport = have[i].Transport
		}
		for _, add := range m.opts.Add {
			if equalStrings(add.Endpoints, eps) {
				specs[i].Transport = add.Transport
			}
		}
	}
	return specs
}

// pushAll pushes a RingState to every fleet shard until ALL ack,
// retrying unreachable shards with a short backoff for as long as ctx
// allows. A rejection carrying a higher term aborts with ErrSuperseded.
func (m *Migrator) pushAll(ctx context.Context, st RingState) error {
	acked := make([]bool, m.c.NumShards())
	for {
		allAcked := true
		errs := m.c.ForEach(ctx, func(ctx context.Context, i int, sc *ShardClient) error {
			if acked[i] {
				return nil
			}
			got, ok := sc.pushState(ctx, st)
			if ok {
				acked[i] = true
				return nil
			}
			if got.Term > st.Term {
				return ErrSuperseded
			}
			return fmt.Errorf("scatter: %s did not adopt epoch %d", sc.Name(), st.Epoch)
		})
		for _, err := range errs {
			if errors.Is(err, ErrSuperseded) {
				return ErrSuperseded
			}
			if err != nil {
				allAcked = false
			}
		}
		if allAcked {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("scatter: pushing ring epoch %d: %w", st.Epoch, ctx.Err())
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// fenced maps a shard's 409 epoch answer onto ErrSuperseded when it
// carries a term above ours — the one error a driver must not retry
// past.
func (m *Migrator) fenced(err error) error {
	var ee *EpochError
	if errors.As(err, &ee) {
		st := m.c.State()
		if ee.State.Term > st.Term || (ee.State.Term == st.Term && ee.State.Holder != m.opts.Holder) {
			return ErrSuperseded
		}
	}
	return err
}

// copySource moves every record off src whose write-ring owner differs,
// in verified batches: enumerate → export → import on each destination
// → CRC-check the batch on both sides → persist the range. A record
// deleted on the source mid-batch (the copy raced a client delete) is
// deleted from its destination too, so the fleet never resurrects it.
func (m *Migrator) copySource(ctx context.Context, src int, after int64, writeRing *Ring, term int64) error {
	sc := m.c.Shard(src)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var moved MovedResponse
		if err := m.fenced(sc.Call(ctx, http.MethodPost, "/api/cluster/moved",
			MovedRequest{After: after, Limit: m.opts.BatchSize}, &moved)); err != nil {
			return fmt.Errorf("scatter: enumerating moved records on %s: %w", ShardName(src), err)
		}
		if len(moved.IDs) == 0 {
			return nil
		}
		var exp ExportResponse
		if err := m.fenced(sc.Call(ctx, http.MethodPost, "/api/cluster/export",
			ExportRequest{IDs: moved.IDs}, &exp)); err != nil {
			return fmt.Errorf("scatter: exporting from %s: %w", ShardName(src), err)
		}
		if err := m.importBatch(ctx, exp.Records, writeRing, term); err != nil {
			return err
		}
		if err := m.reconcileBatch(ctx, src, moved.IDs, writeRing, term); err != nil {
			return err
		}
		after = moved.IDs[len(moved.IDs)-1]
		m.mu.Lock()
		m.status.Copied += int64(len(exp.Records))
		m.mu.Unlock()
		if err := m.persist(migrationEvent{Event: "range", Source: src, After: after, Copied: int64(len(exp.Records))}); err != nil {
			return err
		}
		if !moved.More {
			return nil
		}
	}
}

// importBatch routes exported records to their write-ring owners and
// imports them there.
func (m *Migrator) importBatch(ctx context.Context, records []shapedb.ExportFrame, writeRing *Ring, term int64) error {
	byDest := map[int][]shapedb.ExportFrame{}
	for _, rec := range records {
		byDest[writeRing.Owner(rec.ID)] = append(byDest[writeRing.Owner(rec.ID)], rec)
	}
	for dest, batch := range byDest {
		var resp ImportResponse
		if err := m.fenced(m.c.Shard(dest).Call(ctx, http.MethodPost, "/api/cluster/import",
			ImportRequest{Term: term, Holder: m.opts.Holder, Records: batch}, &resp)); err != nil {
			return fmt.Errorf("scatter: importing into %s: %w", ShardName(dest), err)
		}
	}
	return nil
}

// reconcileBatch CRC-compares one batch of moved ids between source and
// destinations and repairs differences: missing/mismatched on the
// destination → re-copy; deleted on the source since enumeration → the
// destination copy is deleted too. Every id was enumerated FROM the
// source, so a fresh client insert (which only ever lands on its
// write-ring owner) can never be mistaken for a stale copy.
func (m *Migrator) reconcileBatch(ctx context.Context, src int, ids []int64, writeRing *Ring, term int64) error {
	for round := 0; round < 5; round++ {
		srcCRCs, err := m.fetchCRCs(ctx, src, ids)
		if err != nil {
			return err
		}
		byDest := map[int][]int64{}
		for _, id := range ids {
			byDest[writeRing.Owner(id)] = append(byDest[writeRing.Owner(id)], id)
		}
		var recopy, drop []int64
		for dest, destIDs := range byDest {
			destCRCs, err := m.fetchCRCs(ctx, dest, destIDs)
			if err != nil {
				return err
			}
			for _, id := range destIDs {
				sc, onSrc := srcCRCs[id]
				dc, onDest := destCRCs[id]
				switch {
				case onSrc && (!onDest || sc != dc):
					recopy = append(recopy, id)
				case !onSrc && onDest:
					// Deleted on the source after enumeration: the copy
					// must not outlive the original.
					drop = append(drop, id)
				}
			}
			for _, id := range drop {
				if err := m.fenced(m.c.Shard(dest).Call(ctx, http.MethodDelete,
					fmt.Sprintf("/api/shapes/%d", id), nil, nil)); err != nil {
					return fmt.Errorf("scatter: dropping stale copy %d on %s: %w", id, ShardName(dest), err)
				}
			}
			drop = drop[:0]
		}
		if len(recopy) == 0 {
			return nil
		}
		var exp ExportResponse
		if err := m.fenced(m.c.Shard(src).Call(ctx, http.MethodPost, "/api/cluster/export",
			ExportRequest{IDs: recopy}, &exp)); err != nil {
			return fmt.Errorf("scatter: re-exporting from %s: %w", ShardName(src), err)
		}
		if err := m.importBatch(ctx, exp.Records, writeRing, term); err != nil {
			return err
		}
		ids = recopy
	}
	return fmt.Errorf("scatter: %s batch failed to verify after 5 repair rounds", ShardName(src))
}

func (m *Migrator) fetchCRCs(ctx context.Context, shard int, ids []int64) (map[int64]uint32, error) {
	var resp CRCResponse
	if err := m.fenced(m.c.Shard(shard).Call(ctx, http.MethodPost, "/api/cluster/crc",
		CRCRequest{IDs: ids}, &resp)); err != nil {
		return nil, fmt.Errorf("scatter: fetching CRCs from %s: %w", ShardName(shard), err)
	}
	out := make(map[int64]uint32, len(resp.IDs))
	for i, id := range resp.IDs {
		if i < len(resp.CRCs) {
			out[id] = resp.CRCs[i]
		}
	}
	return out, nil
}

// verifySource is the full post-copy sweep over one source: every moved
// id re-enumerated and CRC-verified via the same reconcile machinery as
// the copy batches.
func (m *Migrator) verifySource(ctx context.Context, src int, writeRing *Ring, term int64) error {
	sc := m.c.Shard(src)
	var after int64
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var moved MovedResponse
		if err := m.fenced(sc.Call(ctx, http.MethodPost, "/api/cluster/moved",
			MovedRequest{After: after, Limit: m.opts.BatchSize}, &moved)); err != nil {
			return fmt.Errorf("scatter: verify enumeration on %s: %w", ShardName(src), err)
		}
		if len(moved.IDs) == 0 {
			return nil
		}
		if err := m.reconcileBatch(ctx, src, moved.IDs, writeRing, term); err != nil {
			return err
		}
		after = moved.IDs[len(moved.IDs)-1]
		if !moved.More {
			return nil
		}
	}
}
