package scatter

import (
	"fmt"
	"sync"

	"threedess/internal/replica"
)

// RingEpochHeader carries the sender's ring epoch on every
// coordinator↔shard call. A shard whose own epoch differs answers 409
// with its current RingState in the body, and the caller self-heals by
// adopting the newer state (or pushing its own, if the shard is the
// stale side) and retrying.
const RingEpochHeader = "X-Ring-Epoch"

// RingState is the versioned cluster topology every participant agrees
// on. Epoch 1 is the static single-topology state a cluster boots with;
// a migration bumps the epoch three times (prepare, cutover, finalize)
// so every phase transition is observable and totally ordered.
//
// During a migration two rings are live at once:
//
//   - the SERVING ring (Shards, or Draining while it is set) still owns
//     every record for reads — nothing has moved yet, or moved copies
//     are not yet authoritative;
//   - the WRITE ring (Target while it is set, else Shards) owns all new
//     inserts, so no write lands on a source arc that is about to be
//     copied out from under it.
//
// Phase shapes:
//
//	static:   {Epoch: E,   Shards: N}
//	prepare:  {Epoch: E+1, Shards: N, Target: M}   reads old, writes new
//	cutover:  {Epoch: E+2, Shards: M, Draining: N} reads both, writes new
//	finalize: {Epoch: E+3, Shards: M}
//
// Term and Holder fence the migration driver: a shard only adopts a
// state whose (Term, Holder) passes its replica.TermFence, so a crashed
// coordinator that resumes at a higher term supersedes its earlier self,
// and a stale coordinator's pushes are rejected everywhere.
type RingState struct {
	Epoch     int64      `json:"epoch"`
	Term      int64      `json:"term"`
	Holder    string     `json:"holder,omitempty"`
	Shards    int        `json:"shards"`
	Target    int        `json:"target,omitempty"`
	Draining  int        `json:"draining,omitempty"`
	Endpoints [][]string `json:"endpoints,omitempty"`
}

// StaticState is the epoch-1 state of a freshly booted cluster of n
// shards, before any migration has run.
func StaticState(n int) RingState { return RingState{Epoch: 1, Shards: n} }

// Fleet is how many shard slots the state involves: the maximum of the
// serving, target, and draining counts. Fan-out operations (searches,
// stats, state pushes) cover the whole fleet during a migration.
func (st RingState) Fleet() int {
	n := st.Shards
	if st.Target > n {
		n = st.Target
	}
	if st.Draining > n {
		n = st.Draining
	}
	return n
}

// Transitioning reports whether the state describes a migration in
// flight (reads and writes are routed by different rings).
func (st RingState) Transitioning() bool { return st.Target > 0 || st.Draining > 0 }

// servingShards is the shard count whose ring owns records for reads.
func (st RingState) servingShards() int { return st.Shards }

// writeShards is the shard count whose ring owns new inserts.
func (st RingState) writeShards() int {
	if st.Target > 0 {
		return st.Target
	}
	return st.Shards
}

// altShards is the second read ring during the cutover double-routing
// window (the draining pre-cutover topology), or 0 when only one ring
// serves reads.
func (st RingState) altShards() int { return st.Draining }

// EpochError is the typed form of a shard's 409 epoch rejection: the
// shard's current RingState rode back in the response body. ShardClient
// surfaces it (after its own healing attempts are exhausted) so callers
// can adopt the state and retry.
type EpochError struct {
	Shard int
	State RingState
}

func (e *EpochError) Error() string {
	return fmt.Sprintf("scatter: %s is at ring epoch %d", ShardName(e.Shard), e.State.Epoch)
}

// rings caches the consistent-hash rings a RingState routes by, so the
// hot paths never rebuild vnode arrays. All three may alias when the
// state is not transitioning.
type rings struct {
	state   RingState
	serving *Ring
	write   *Ring
	alt     *Ring // nil unless double-routing (cutover window)
}

func buildRings(st RingState) (*rings, error) {
	r := &rings{state: st}
	var err error
	if r.serving, err = NewRing(st.servingShards()); err != nil {
		return nil, err
	}
	if w := st.writeShards(); w == st.servingShards() {
		r.write = r.serving
	} else if r.write, err = NewRing(w); err != nil {
		return nil, err
	}
	if a := st.altShards(); a > 0 && a != st.servingShards() {
		if r.alt, err = NewRing(a); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// ShardState is a shard node's mutable view of the cluster topology. The
// server consults it on every request: the epoch gate compares the
// caller's X-Ring-Epoch against Epoch(), and routed-insert validation
// asks WriteOwner. Adoption is fenced — see RingState.
type ShardState struct {
	index int
	fence replica.TermFence

	mu sync.Mutex
	r  *rings
}

// NewShardState boots shard `index` of a static `shards`-node cluster.
func NewShardState(index, shards int) (*ShardState, error) {
	st := StaticState(shards)
	r, err := buildRings(st)
	if err != nil {
		return nil, err
	}
	s := &ShardState{index: index, r: r}
	// Seed the fence at the static state's term (0) with no holder, so the
	// first migration's term-1 push is an advance.
	s.fence.Observe(st.Term, st.Holder)
	return s, nil
}

// NewJoiningShardState boots shard `index` as a joining node that does
// not yet appear in any adopted topology: epoch 0, so the first real
// state push (any term ≥ 1, or term 0 with a higher epoch is impossible
// — epoch 0 is below every live epoch) is adopted and every earlier
// routed call 409s with a state the coordinator recognizes as stale and
// overwrites.
func NewJoiningShardState(index int) (*ShardState, error) {
	r, err := buildRings(RingState{Epoch: 0, Shards: index + 1})
	if err != nil {
		return nil, err
	}
	return &ShardState{index: index, r: r}, nil
}

// Index returns the shard's own index.
func (s *ShardState) Index() int { return s.index }

// State snapshots the current RingState.
func (s *ShardState) State() RingState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.state
}

// Epoch returns the current ring epoch.
func (s *ShardState) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.state.Epoch
}

// Adopt applies a pushed RingState if its fencing term passes and its
// epoch does not regress within the current term. It returns the state
// in effect afterwards and whether the push was accepted. Re-adopting
// the identical state is accepted (idempotent pushes from a resumed
// migration driver).
func (s *ShardState) Adopt(st RingState) (RingState, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.r.state
	if !s.fence.Observe(st.Term, st.Holder) {
		return cur, false
	}
	if st.Term == cur.Term && st.Epoch < cur.Epoch {
		// Same driver replaying an old phase (a retried push that lost a
		// race with a newer one) — the fence can't see epoch order, so the
		// epoch check rejects it here.
		return cur, false
	}
	r, err := buildRings(st)
	if err != nil {
		return cur, false
	}
	s.r = r
	return st, true
}

// ObserveTerm validates a migration driver's fencing term on a
// data-plane migration call (import, dropmoved) without touching the
// topology. A term above the fence's is adopted — the driver proved it
// is the newest by winning the state push somewhere — and a stale term
// is rejected, so a superseded driver cannot keep landing records.
func (s *ShardState) ObserveTerm(term int64, holder string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fence.Observe(term, holder)
}

// WriteOwner maps a shape id onto the shard index that owns NEW copies
// of it — the write ring. Routed-insert validation and moved-record
// enumeration both route by this.
func (s *ShardState) WriteOwner(id int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.write.Owner(id)
}

// ServingOwner maps a shape id onto the shard index that owns it for
// reads.
func (s *ShardState) ServingOwner(id int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.r.serving.Owner(id)
}
